#!/usr/bin/env bash
# Perf-regression harness: Release-build bench/micro_dsp_fec and run its
# --micro mode, which times every optimized kernel against its kept
# reference implementation and records the results.
#
#   scripts/bench_micro.sh [--native] [jobs]
#
# Writes BENCH_MICRO.json at the repo root (kernel -> before/after ns per
# op, speedup, items/s) and echoes the BENCH_MICRO lines. --native adds
# -DSONIC_NATIVE=ON (-march=native) for numbers tuned to the build host;
# the default build is portable.
set -euo pipefail
cd "$(dirname "$0")/.."

NATIVE=OFF
if [[ "${1:-}" == "--native" ]]; then
  NATIVE=ON
  shift
fi
JOBS="${1:-$(nproc)}"

echo "== bench-micro: Release build (SONIC_NATIVE=${NATIVE}) =="
cmake -B build-bench -S . -DCMAKE_BUILD_TYPE=Release -DSONIC_NATIVE="${NATIVE}"
cmake --build build-bench -j "${JOBS}" --target micro_dsp_fec

echo "== bench-micro: before/after kernel timings =="
./build-bench/bench/micro_dsp_fec --micro --json BENCH_MICRO.json

echo "== bench-micro: wrote BENCH_MICRO.json =="
