#!/usr/bin/env bash
# Address+UndefinedBehaviorSanitizer run: the full test suite rebuilt with
# cmake -DSONIC_ASAN=ON, to catch out-of-bounds reads/writes in the
# hand-indexed byte-buffer paths (frame parsing, fountain GF(2^8)
# elimination, WebP-ish codecs) and UB in the receiver's signed/unsigned
# index arithmetic (the fine-timing underflow class of bug).
#
#   scripts/asan.sh [jobs]
set -euo pipefail
cd "$(dirname "$0")/.."
JOBS="${1:-$(nproc)}"

echo "== full test suite under Address+UBSanitizer =="
cmake -B build-asan -S . -DSONIC_ASAN=ON
cmake --build build-asan -j "$JOBS" \
  --target sonic_tests sonic_uplink_tests sonic_streaming_tests sonic_kernel_tests
ctest --test-dir build-asan --output-on-failure -j "$JOBS"

echo "asan OK"
