#!/usr/bin/env bash
# Tier-1 verification: the standard build + full test suite, then the
# broadcast-pipeline and metrics tests rebuilt and rerun under
# ThreadSanitizer (cmake -DSONIC_TSAN=ON) to catch data races in the
# pipeline's worker pool.
#
#   scripts/tier1.sh [jobs]
set -euo pipefail
cd "$(dirname "$0")/.."
JOBS="${1:-$(nproc)}"

echo "== tier-1: build + full test suite =="
cmake -B build -S .
cmake --build build -j "$JOBS"
ctest --test-dir build --output-on-failure -j "$JOBS"

echo "== tier-1: pipeline + uplink + streaming + kernel tests under ThreadSanitizer =="
cmake -B build-tsan -S . -DSONIC_TSAN=ON
cmake --build build-tsan -j "$JOBS" \
  --target sonic_tests sonic_uplink_tests sonic_streaming_tests sonic_kernel_tests
ctest --test-dir build-tsan --output-on-failure -j "$JOBS" \
  -R 'Pipeline|Metrics|ServerShards|Scheduler\.|Fountain|Carousel|Uplink|StreamReceiver|Streaming|FftPlan.CacheReturnsSharedInstance'

echo "tier-1 OK"
