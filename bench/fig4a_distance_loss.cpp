// Figure 4(a): frame loss rate vs over-the-air distance between the FM
// receiver (radio) and the SONIC client's microphone.
//
// Paper setup: sonic-10k profile, high RSSI at the radio, 10 repetitions
// per distance. Expected shape: 0% on cable ("Cable" = internal tuner or
// audio-jack), near-zero through 0.5 m, 10-20% median around 1 m, and 100%
// above ~1.1 m, with wide spread from uncontrolled speaker/mic alignment.
//
//   ./fig4a_distance_loss [--trials 10] [--frames 20] [--seed 1]
#include <cstdio>

#include "bench_util.hpp"
#include "fm/link.hpp"
#include "modem/ofdm.hpp"
#include "modem/profile.hpp"
#include "util/rng.hpp"

using namespace sonic;

int main(int argc, char** argv) {
  const int trials = bench::arg_int(argc, argv, "--trials", 10);
  const int frames = bench::arg_int(argc, argv, "--frames", 20);
  const std::uint64_t seed = static_cast<std::uint64_t>(bench::arg_int(argc, argv, "--seed", 1));

  modem::OfdmModem ofdm(*modem::profiles::get("sonic-10k"));
  util::Rng rng(seed);
  std::vector<util::Bytes> payload;
  for (int i = 0; i < frames; ++i) {
    util::Bytes f(100);
    for (auto& b : f) b = static_cast<std::uint8_t>(rng.uniform_int(256));
    payload.push_back(std::move(f));
  }
  const auto audio = ofdm.modulate(payload);

  std::printf("Figure 4(a): frame loss rate vs radio-to-receiver distance\n");
  std::printf("profile=sonic-10k  frames/trial=%d  trials=%d  (high RSSI, as in the paper)\n\n",
              frames, trials);
  std::printf("%-8s %8s %8s %8s %8s %8s   paper\n", "distance", "min%", "p25%", "median%", "p75%",
              "max%");

  struct Point {
    const char* label;
    double meters;
    const char* paper;
  };
  const Point points[] = {
      {"Cable", 0.0, "0%"},
      {"10cm", 0.1, "~0%"},
      {"20cm", 0.2, "~0-3%"},
      {"50cm", 0.5, "~0-5%"},
      {"1m", 1.0, "10-20% median"},
      {"1.1m", 1.1, "10-30%, wide spread"},
      {"1.2m", 1.2, ">1.1m: 100%"},
  };

  for (const Point& point : points) {
    std::vector<double> losses;
    for (int t = 0; t < trials; ++t) {
      fm::FmLinkConfig cfg;
      cfg.enable_rf = false;  // isolate the acoustic hop; RSSI is high
      cfg.acoustic.distance_m = point.meters;
      cfg.seed = seed * 1000 + static_cast<std::uint64_t>(t) + static_cast<std::uint64_t>(point.meters * 100);
      fm::FmLink link(cfg);
      const auto rx_audio = link.transmit(audio);
      const auto burst = ofdm.receive_one(rx_audio);
      const std::size_t ok = burst ? burst->frames_ok() : 0;
      losses.push_back(100.0 * (1.0 - static_cast<double>(ok) / frames));
    }
    const auto s = bench::box_stats(losses);
    std::printf("%-8s %8.1f %8.1f %8.1f %8.1f %8.1f   %s\n", point.label, s.min, s.p25, s.median,
                s.p75, s.max, point.paper);
  }
  std::printf("\nnote: 'Cable' covers both the internal FM tuner (user-B) and the audio\n");
  std::printf("jack (user-C) of Figure 3 — a zero-length acoustic hop either way.\n");
  return 0;
}
