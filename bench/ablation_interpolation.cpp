// Ablation: the §3.3 design choice of *left-priority* nearest-neighbor
// interpolation ("prioritizing the left pixel given that the webpage
// consists mostly of text read from left to right"), against doing nothing,
// vertical-first, and 4-neighbour averaging.
//
//   ./ablation_interpolation [--pages 12] [--width 360]
#include <cstdio>
#include <vector>

#include "bench_util.hpp"
#include "eval/quality.hpp"
#include "image/column_codec.hpp"
#include "image/interpolate.hpp"
#include "image/raster.hpp"
#include "util/rng.hpp"
#include "web/corpus.hpp"
#include "web/layout.hpp"

using namespace sonic;

int main(int argc, char** argv) {
  const int pages = bench::arg_int(argc, argv, "--pages", 12);
  const int width = bench::arg_int(argc, argv, "--width", 360);

  web::PkCorpus corpus;
  web::LayoutParams layout;
  layout.width = width;
  layout.max_height = 1500;

  const image::InterpolationMode modes[] = {
      image::InterpolationMode::kNone, image::InterpolationMode::kLeft,
      image::InterpolationMode::kUp, image::InterpolationMode::kAverage};

  std::printf("Interpolation ablation (%d pages, width %d): mean PSNR dB / text rating\n\n", pages,
              width);
  std::printf("%-8s", "loss");
  for (const auto mode : modes) std::printf(" %16s", image::interpolation_mode_name(mode));
  std::printf("\n");

  for (double loss : {0.05, 0.10, 0.20, 0.50}) {
    std::printf("%-7.0f%%", loss * 100);
    for (const auto mode : modes) {
      double psnr_acc = 0, text_acc = 0;
      for (int p = 0; p < pages; ++p) {
        const auto page =
            web::render_html(corpus.html(corpus.pages()[static_cast<std::size_t>(p * 7)], 0), layout);
        image::ColumnCodecParams params;
        params.quality = 50;
        auto segments = image::column_encode(page.image, params);
        util::Rng rng(static_cast<std::uint64_t>(p) * 31 + static_cast<std::uint64_t>(loss * 100));
        std::vector<image::ColumnSegment> kept;
        for (auto& s : segments) {
          if (!rng.bernoulli(loss)) kept.push_back(std::move(s));
        }
        auto decoded = image::column_decode(page.image.width(), page.image.height(), kept, params);
        image::interpolate_missing(decoded.image, decoded.mask, mode);
        psnr_acc += image::psnr(page.image, decoded.image);
        text_acc += eval::text_rating(page.image, decoded.image);
      }
      std::printf("   %6.1f / %4.1f", psnr_acc / pages, text_acc / pages);
    }
    std::printf("\n");
  }

  std::printf("\nreading: 'left' dominates 'up' because column-segment losses blank vertical\n");
  std::printf("runs — the informative neighbours are horizontal. 'average' ties or slightly\n");
  std::printf("beats 'left' on PSNR but costs 4 reads/pixel on the low-end client; the paper\n");
  std::printf("picks left-priority as the cheap option with the right bias for text.\n");
  return 0;
}
