// Ablation: contribution of each FEC stage in the §3.3 stack
// (crc32 + inner conv v29 + outer rs8 + bit interleaving).
//
// Sweeps the audio SNR across the decode cliff and reports frame loss for:
//   full        - v29 r3/4 + RS(16) + interleave (the sonic-10k stack)
//   no-rs       - inner code only
//   no-inter    - v29 + RS but no interleaving (bursts hit the Viterbi raw)
//   r12-heavy   - v29 r1/2 + RS(32): the robustness end of the trade
//
//   ./ablation_fec [--trials 5] [--frames 12]
#include <cstdio>

#include "bench_util.hpp"
#include "fm/acoustic.hpp"
#include "modem/ofdm.hpp"
#include "modem/profile.hpp"
#include "util/rng.hpp"

using namespace sonic;

namespace {

double run_trial(const modem::OfdmProfile& profile, double snr_db, int frames, std::uint64_t seed) {
  modem::OfdmModem modem(profile);
  util::Rng rng(seed);
  std::vector<util::Bytes> payload;
  for (int i = 0; i < frames; ++i) {
    util::Bytes f(100);
    for (auto& b : f) b = static_cast<std::uint8_t>(rng.uniform_int(256));
    payload.push_back(std::move(f));
  }
  auto audio = modem.modulate(payload);
  // AWGN at the target audio SNR.
  double power = 0;
  for (float s : audio) power += static_cast<double>(s) * s;
  power /= static_cast<double>(audio.size());
  const double sigma = std::sqrt(power / std::pow(10.0, snr_db / 10.0));
  for (auto& s : audio) s += static_cast<float>(rng.normal(0.0, sigma));
  const auto burst = modem.receive_one(audio);
  const std::size_t ok = burst ? burst->frames_ok() : 0;
  return 1.0 - static_cast<double>(ok) / frames;
}

}  // namespace

int main(int argc, char** argv) {
  const int trials = bench::arg_int(argc, argv, "--trials", 5);
  const int frames = bench::arg_int(argc, argv, "--frames", 12);

  struct Variant {
    const char* label;
    modem::OfdmProfile profile;
  };
  std::vector<Variant> variants;
  {
    Variant v{"full (v29 3/4 + rs16 + il)", *modem::profiles::get("sonic-10k")};
    variants.push_back(v);
  }
  {
    Variant v{"no-rs", *modem::profiles::get("sonic-10k")};
    v.profile.rs_nroots = 0;
    variants.push_back(v);
  }
  {
    Variant v{"r12-heavy (v29 1/2 + rs32)", *modem::profiles::get("sonic-10k")};
    v.profile.conv.rate = fec::PunctureRate::kRate1_2;
    v.profile.rs_nroots = 32;
    variants.push_back(v);
  }

  std::printf("FEC ablation: frame loss (%%) vs audio SNR, %d trials x %d frames\n\n", trials,
              frames);
  std::printf("%-28s", "variant / SNR dB");
  for (int snr = 16; snr >= 6; snr -= 2) std::printf(" %6d", snr);
  std::printf("   net kbps\n");

  for (const auto& variant : variants) {
    std::printf("%-28s", variant.label);
    for (int snr = 16; snr >= 6; snr -= 2) {
      double loss = 0;
      for (int t = 0; t < trials; ++t) {
        loss += run_trial(variant.profile, snr, frames,
                          static_cast<std::uint64_t>(snr * 100 + t) ^ 0xabcdef);
      }
      std::printf(" %6.0f", 100.0 * loss / trials);
    }
    std::printf(" %9.1f\n", variant.profile.net_bit_rate(100, 16) / 1000.0);
  }

  std::printf("\nreading: each stage buys cliff margin; the paper's combined stack (\"crc32,\n");
  std::printf("inner v29, outer rs8\") trades ~25%% of raw rate for several dB of robustness.\n");
  std::printf("The interleaver matters under bursty (acoustic) noise rather than AWGN; see\n");
  std::printf("the PacketCodec burst tests in tests/modem_test.cpp.\n");
  return 0;
}
