// Uplink reliability sweep: end-to-end request delivery over the
// fault-injecting SMS gateway (silent loss 0..50 %, duplication,
// reordering) with the client retry state machine and the idempotent
// server. Reports, per loss point, the fraction of unique requests that
// reached broadcast-complete, duplicate-broadcast count (must be zero —
// dedup + coalescing absorb every retransmission), request-to-broadcast
// latency percentiles, and the retry traffic that bought the reliability.
//
//   ./uplink_reliability [--requests 60] [--clients 20] [--horizon 4000]
#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "sms/sms.hpp"
#include "sonic/client.hpp"
#include "sonic/server.hpp"
#include "web/corpus.hpp"

namespace {

struct PointResult {
  int requests = 0;
  int delivered = 0;        // unique requests that reached the air
  int dup_broadcasts = 0;   // extra on-air copies (acceptance: 0)
  std::size_t acked = 0;
  std::size_t gave_up = 0;
  std::size_t retries = 0;
  double p50_s = 0.0;
  double p99_s = 0.0;
  int sms_segments = 0;
};

PointResult run_point(double loss, double dup, double reorder, int num_requests,
                      int num_clients, double horizon_s) {
  sonic::web::PkCorpus corpus;
  sonic::sms::SmsGatewayParams gp{3.0, 2.0, loss, 9000 + static_cast<std::uint64_t>(loss * 100)};
  gp.duplication_rate = dup;
  gp.reorder_rate = reorder;
  gp.reorder_delay_s = 20.0;
  sonic::sms::SmsGateway gateway(gp);

  sonic::core::SonicServer::Params sp;
  sp.rate_bps = 40000.0;
  sp.layout = sonic::web::LayoutParams{240, 2000, 10, 2};
  sp.transmitters = {{"lahore", 93.7, 31.52, 74.35, 40.0}};
  sonic::core::SonicServer server(&corpus, &gateway, sp);

  std::vector<sonic::core::SonicClient> clients;
  clients.reserve(static_cast<std::size_t>(num_clients));
  for (int c = 0; c < num_clients; ++c) {
    sonic::core::SonicClient::Params cp;
    char phone[32];
    std::snprintf(phone, sizeof(phone), "+92300%07d", c);
    cp.phone_number = phone;
    cp.lat = 31.52;
    cp.lon = 74.35;
    cp.uplink.ack_timeout_s = 25.0;
    cp.uplink.max_attempts = 12;
    cp.uplink.backoff_factor = 1.6;
    cp.uplink.backoff_cap_s = 150.0;
    cp.uplink.jitter_frac = 0.15;
    cp.uplink.seed = 0x11000 + static_cast<std::uint64_t>(c);
    clients.emplace_back(&gateway, cp);
  }

  // One unique URL per request, round-robin across clients, issued over the
  // first ~8 min so arrivals overlap retries and backlog.
  struct Issue {
    int client;
    std::string url;
    double at_s;
  };
  std::vector<Issue> issues;
  for (int j = 0; j < num_requests; ++j) {
    issues.push_back({j % num_clients,
                      corpus.pages()[static_cast<std::size_t>(j) % corpus.pages().size()].url,
                      8.0 * j});
  }

  std::map<std::string, double> issued_at;
  std::map<std::string, int> on_air;
  std::vector<double> latencies;
  std::size_t next_issue = 0;
  for (double t = 0.0; t <= horizon_s; t += 2.5) {
    while (next_issue < issues.size() && issues[next_issue].at_s <= t) {
      const Issue& is = issues[next_issue];
      clients[static_cast<std::size_t>(is.client)].request(is.url, t);
      issued_at[is.url] = t;
      ++next_issue;
    }
    for (auto& client : clients) client.poll_acks(t);
    server.poll_sms(t);
    for (const auto& done : server.advance(t)) {
      const std::string& url = done.bundle.metadata.url;
      if (++on_air[url] == 1) latencies.push_back(done.completed_at_s - issued_at[url]);
    }
  }

  PointResult r;
  r.requests = num_requests;
  for (const auto& [url, copies] : on_air) {
    ++r.delivered;
    r.dup_broadcasts += copies - 1;
  }
  for (const auto& client : clients) {
    r.acked += client.metrics().counter_value("uplink_acked");
    r.gave_up += client.metrics().counter_value("uplink_gave_up");
    r.retries += client.metrics().counter_value("uplink_retries") +
                 client.metrics().counter_value("uplink_server_retries");
  }
  r.p50_s = sonic::bench::percentile(latencies, 0.5);
  r.p99_s = sonic::bench::percentile(latencies, 0.99);
  r.sms_segments = gateway.segments_carried();
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  const int requests = sonic::bench::arg_int(argc, argv, "--requests", 60);
  const int clients = sonic::bench::arg_int(argc, argv, "--clients", 20);
  const double horizon = sonic::bench::arg_double(argc, argv, "--horizon", 4000.0);
  const double dup = sonic::bench::arg_double(argc, argv, "--dup", 0.2);
  const double reorder = sonic::bench::arg_double(argc, argv, "--reorder", 0.3);

  std::printf("# Uplink reliability vs silent SMS loss (dup=%.0f%%, reorder=%.0f%% by <=20 s)\n",
              dup * 100, reorder * 100);
  std::printf("# %d unique requests, %d clients, retry policy: timeout 25 s x1.6 cap 150 s, 12 attempts\n",
              requests, clients);
  bool ok = true;
  for (double loss : {0.0, 0.1, 0.2, 0.3, 0.4, 0.5}) {
    const PointResult r = run_point(loss, dup, reorder, requests, clients, horizon);
    const double ratio = static_cast<double>(r.delivered) / r.requests;
    std::printf(
        "BENCH_UPLINK loss=%.2f dup=%.2f requests=%d delivered=%d ratio=%.3f "
        "dup_broadcasts=%d acked=%zu gave_up=%zu retries=%zu p50_s=%.1f p99_s=%.1f "
        "sms_segments=%d\n",
        loss, dup, r.requests, r.delivered, ratio, r.dup_broadcasts, r.acked, r.gave_up,
        r.retries, r.p50_s, r.p99_s, r.sms_segments);
    if (ratio < 0.99 || r.dup_broadcasts != 0) ok = false;
  }
  std::printf("BENCH_UPLINK_ACCEPTANCE %s (every point: ratio >= 0.99 and zero duplicate broadcasts)\n",
              ok ? "OK" : "FAIL");
  return ok ? 0 : 1;
}
