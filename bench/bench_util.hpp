// Shared helpers for the benchmark harness binaries: tiny argv parsing and
// order statistics for the boxplot-style tables the paper's figures use.
#pragma once

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

namespace sonic::bench {

// --flag value / --flag parsing; returns default when absent.
inline double arg_double(int argc, char** argv, const char* name, double fallback) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], name) == 0) return std::atof(argv[i + 1]);
  }
  return fallback;
}

inline int arg_int(int argc, char** argv, const char* name, int fallback) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], name) == 0) return std::atoi(argv[i + 1]);
  }
  return fallback;
}

inline bool arg_flag(int argc, char** argv, const char* name) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], name) == 0) return true;
  }
  return false;
}

struct BoxStats {
  double min = 0, p25 = 0, median = 0, p75 = 0, max = 0, mean = 0;
};

inline BoxStats box_stats(std::vector<double> v) {
  BoxStats s;
  if (v.empty()) return s;
  std::sort(v.begin(), v.end());
  auto q = [&](double p) {
    const double idx = p * static_cast<double>(v.size() - 1);
    const std::size_t lo = static_cast<std::size_t>(idx);
    const std::size_t hi = std::min(lo + 1, v.size() - 1);
    const double frac = idx - static_cast<double>(lo);
    return v[lo] * (1 - frac) + v[hi] * frac;
  };
  s.min = v.front();
  s.p25 = q(0.25);
  s.median = q(0.5);
  s.p75 = q(0.75);
  s.max = v.back();
  for (double x : v) s.mean += x;
  s.mean /= static_cast<double>(v.size());
  return s;
}

inline double percentile(std::vector<double> v, double p) {
  if (v.empty()) return 0;
  std::sort(v.begin(), v.end());
  const double idx = p * static_cast<double>(v.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(idx);
  const std::size_t hi = std::min(lo + 1, v.size() - 1);
  const double frac = idx - static_cast<double>(lo);
  return v[lo] * (1 - frac) + v[hi] * frac;
}

}  // namespace sonic::bench
