// Ablation: unequal error protection — §4's proposed optimization ("a
// dynamic scheme with higher error protection for important parts of an
// image/webpage"). The top of a news page (masthead + first headline) is
// what makes a partially-received page useful; UEP repeats the frames
// covering the top region.
//
// Compares uniform vs UEP delivery at equal channel loss: coverage of the
// top region, content rating of the top region, and the byte overhead paid.
//
//   ./ablation_uep [--pages 10] [--loss 0.15] [--trials 5]
#include <cstdio>
#include <vector>

#include "bench_util.hpp"
#include "eval/quality.hpp"
#include "sonic/framing.hpp"
#include "util/rng.hpp"
#include "web/corpus.hpp"
#include "web/layout.hpp"

using namespace sonic;

namespace {

struct Outcome {
  double top_coverage = 0;
  double top_rating = 0;
  double bytes = 0;
};

image::Raster top_crop(const image::Raster& img, double fraction) {
  return img.cropped_to_height(std::max(1, static_cast<int>(img.height() * fraction)));
}

Outcome deliver(const web::RenderResult& page, const core::UepPolicy& uep, double loss,
                std::uint64_t seed) {
  const auto bundle = core::make_bundle(1, "x.pk/", page, {10, 94}, 24 * 3600, uep);
  util::Rng rng(seed);
  core::PageAssembler assembler;
  for (const auto& frame : bundle.frames) {
    if (!rng.bernoulli(loss)) assembler.push(frame);
  }
  const auto received = assembler.assemble(1, image::InterpolationMode::kLeft);
  Outcome out;
  out.bytes = static_cast<double>(bundle.total_bytes());
  if (!received) return out;
  // Top-region coverage from the pre-interpolation mask.
  const int top_rows = std::max(1, static_cast<int>(page.image.height() * 0.2));
  std::size_t got = 0;
  for (int y = 0; y < top_rows; ++y) {
    for (int x = 0; x < page.image.width(); ++x) {
      got += received->mask[static_cast<std::size_t>(y) * page.image.width() + x];
    }
  }
  out.top_coverage = static_cast<double>(got) / (static_cast<double>(top_rows) * page.image.width());
  out.top_rating = eval::content_rating(top_crop(page.image, 0.2), top_crop(received->image, 0.2));
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const int pages = bench::arg_int(argc, argv, "--pages", 10);
  const double loss = bench::arg_double(argc, argv, "--loss", 0.15);
  const int trials = bench::arg_int(argc, argv, "--trials", 5);

  web::PkCorpus corpus;
  web::LayoutParams layout{360, 1800, 12, 2};

  std::printf("UEP ablation: %.0f%% frame loss, top 20%% of page protected 2x\n\n", loss * 100);
  std::printf("%-10s %14s %14s %12s\n", "variant", "top coverage", "top rating", "bytes");

  double bytes_by_variant[2] = {0, 0};
  for (const bool uep_on : {false, true}) {
    double cov = 0, rating = 0, bytes = 0;
    int n = 0;
    for (int p = 0; p < pages; ++p) {
      const auto page =
          web::render_html(corpus.html(corpus.pages()[static_cast<std::size_t>(p * 9)], 0), layout);
      for (int t = 0; t < trials; ++t) {
        core::UepPolicy uep;
        uep.enabled = uep_on;
        const auto out = deliver(page, uep, loss, static_cast<std::uint64_t>(p * 100 + t + 7));
        cov += out.top_coverage;
        rating += out.top_rating;
        bytes += out.bytes;
        ++n;
      }
    }
    std::printf("%-10s %13.1f%% %14.1f %9.0f KB\n", uep_on ? "uep-2x" : "uniform",
                100.0 * cov / n, rating / n, bytes / n / 1024.0);
    bytes_by_variant[uep_on ? 1 : 0] = bytes / n;
  }

  std::printf("\nreading: doubling the top-region frames converts its residual loss rate\n");
  std::printf("from p to p^2, for a %.0f%% byte overhead here (the region split also breaks\n",
              100.0 * (bytes_by_variant[1] / bytes_by_variant[0] - 1.0));
  std::printf("long RLE runs; on tall pages the overhead approaches top_fraction) — the\n");
  std::printf("cheap version of the paper's proposed importance-aware protection (§4).\n");
  return 0;
}
