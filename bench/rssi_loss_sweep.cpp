// §4 "Variable RSSI": frame loss rate across receiver signal strength,
// client in cable mode (no acoustic loss), sweeping RSSI in 5 dB steps as
// with the paper's TR508 transmitter + Real FM Radio app.
//
// Paper: no losses from -65 to -85 dB; fluctuating 2-15% loss between -85
// and -90 dB; nothing received below -90 dB.
//
//   ./rssi_loss_sweep [--trials 10] [--frames 10] [--seed 3]
#include <cstdio>

#include "bench_util.hpp"
#include "fm/link.hpp"
#include "modem/ofdm.hpp"
#include "modem/profile.hpp"
#include "util/rng.hpp"

using namespace sonic;

int main(int argc, char** argv) {
  const int trials = bench::arg_int(argc, argv, "--trials", 10);
  const int frames = bench::arg_int(argc, argv, "--frames", 10);
  const std::uint64_t seed = static_cast<std::uint64_t>(bench::arg_int(argc, argv, "--seed", 3));

  modem::OfdmModem ofdm(*modem::profiles::get("sonic-10k"));
  util::Rng rng(seed);
  std::vector<util::Bytes> payload;
  for (int i = 0; i < frames; ++i) {
    util::Bytes f(100);
    for (auto& b : f) b = static_cast<std::uint8_t>(rng.uniform_int(256));
    payload.push_back(std::move(f));
  }
  const auto audio = ofdm.modulate(payload);

  std::printf("Variable RSSI experiment (§4): frame loss vs received signal strength\n");
  std::printf("client in cable mode; FM chain with 75 kHz deviation; %d trials x %d frames\n\n",
              trials, frames);
  std::printf("%-10s %8s %8s %8s   paper\n", "RSSI(dB)", "min%", "median%", "max%");

  struct Level {
    double rssi;
    const char* paper;
  };
  const Level levels[] = {
      {-65, "no losses"}, {-70, "no losses"},  {-75, "no losses"},
      {-80, "no losses"}, {-85, "no losses"},  {-88, "2-15% fluctuating"},
      {-90, "2-15% fluctuating / edge"},       {-92, "no frames below -90"},
      {-95, "no frames"},
  };

  for (const Level& level : levels) {
    std::vector<double> losses;
    for (int t = 0; t < trials; ++t) {
      fm::FmLinkConfig cfg;
      cfg.rf.rssi_db = level.rssi;
      cfg.acoustic.distance_m = 0.0;  // cable mode, per the paper's setup
      cfg.seed = seed * 100 + static_cast<std::uint64_t>(t);
      fm::FmLink link(cfg);
      const auto rx_audio = link.transmit(audio);
      const auto burst = ofdm.receive_one(rx_audio);
      const std::size_t ok = burst ? burst->frames_ok() : 0;
      losses.push_back(100.0 * (1.0 - static_cast<double>(ok) / frames));
    }
    const auto s = bench::box_stats(losses);
    std::printf("%-10.0f %8.1f %8.1f %8.1f   %s\n", level.rssi, s.min, s.median, s.max,
                level.paper);
  }
  std::printf("\nnote: the cliff is the FM threshold effect emerging from the demodulator;\n");
  std::printf("the receiver noise floor is calibrated so it lands at the paper's -85/-90 dB\n");
  std::printf("band (see DESIGN.md).\n");
  return 0;
}
