// Figure 5: user-study ratings of loss-injected screenshots.
//
// Paper setup: top-50 Pakistani pages, synthetic losses {5, 10, 20, 50}%,
// missing pixels either left dark or repaired by nearest-neighbor pixel
// interpolation; 151 students rate content understanding (question a) and
// text readability (question b) on a 0-10 Likert scale; Fig. 5 plots the
// distribution of per-page median ratings.
//
// Substitution (see DESIGN.md): raters are replaced by objective metrics
// mapped through monotone MOS calibrations — SSIM for content, edge
// coherence for text. Expected shape: interpolation gains >= 1 point at
// every loss rate; text is more loss-sensitive than content; with
// interpolation content stays "somewhat clear" (>= 6-7) through 20% loss.
//
//   ./fig5_user_study [--pages 50] [--width 360] [--seed 5]
#include <cstdio>
#include <vector>

#include "bench_util.hpp"
#include "eval/quality.hpp"
#include "image/column_codec.hpp"
#include "image/interpolate.hpp"
#include "util/rng.hpp"
#include "web/corpus.hpp"
#include "web/layout.hpp"

using namespace sonic;

namespace {

image::Raster inject_loss(const image::Raster& img, double loss, bool interpolate,
                          std::uint64_t seed) {
  image::ColumnCodecParams params;
  params.quality = 50;  // screenshots, not transport: light quantization
  auto segments = image::column_encode(img, params);
  util::Rng rng(seed);
  std::vector<image::ColumnSegment> kept;
  for (auto& s : segments) {
    if (!rng.bernoulli(loss)) kept.push_back(std::move(s));
  }
  auto decoded = image::column_decode(img.width(), img.height(), kept, params);
  if (interpolate) {
    image::interpolate_missing(decoded.image, decoded.mask, image::InterpolationMode::kLeft);
  }
  return decoded.image;
}

}  // namespace

int main(int argc, char** argv) {
  const int pages = bench::arg_int(argc, argv, "--pages", 50);
  const int width = bench::arg_int(argc, argv, "--width", 360);
  const std::uint64_t seed = static_cast<std::uint64_t>(bench::arg_int(argc, argv, "--seed", 5));

  web::PkCorpus corpus;
  web::LayoutParams layout;
  layout.width = width;
  layout.max_height = 2000 * width / 360;

  std::printf("Figure 5: per-page ratings under synthetic loss (%d pages, width %d)\n", pages,
              width);
  std::printf("question (a) content understanding <- SSIM; question (b) text readability <- edge\n");
  std::printf("coherence; both mapped to the 0-10 Likert scale (see DESIGN.md)\n\n");

  const double losses[] = {0.05, 0.10, 0.20, 0.50};

  // ratings[loss][interp][question] -> per-page values
  std::vector<double> ratings[4][2][2];

  const int n = std::min<int>(pages, static_cast<int>(corpus.pages().size()));
  for (int p = 0; p < n; ++p) {
    const auto page = web::render_html(corpus.html(corpus.pages()[static_cast<std::size_t>(p)], 0), layout);
    for (int li = 0; li < 4; ++li) {
      for (int interp = 0; interp < 2; ++interp) {
        const auto damaged =
            inject_loss(page.image, losses[li], interp == 1, seed + static_cast<std::uint64_t>(p * 8 + li * 2 + interp));
        ratings[li][interp][0].push_back(eval::content_rating(page.image, damaged));
        ratings[li][interp][1].push_back(eval::text_rating(page.image, damaged));
      }
    }
  }

  const char* questions[2] = {"content (a)", "text (b)"};
  for (int q = 0; q < 2; ++q) {
    std::printf("%s ratings (distribution of per-page scores):\n", questions[q]);
    std::printf("  %-6s %26s %26s %8s\n", "loss", "without interpolation", "with interpolation",
                "gain");
    std::printf("  %-6s %8s %8s %8s %8s %8s %8s %8s\n", "", "p25", "median", "p75", "p25", "median",
                "p75", "median");
    for (int li = 0; li < 4; ++li) {
      const auto off = bench::box_stats(ratings[li][0][q]);
      const auto on = bench::box_stats(ratings[li][1][q]);
      std::printf("  %-6.0f%% %8.1f %8.1f %8.1f %8.1f %8.1f %8.1f %+8.1f\n", losses[li] * 100,
                  off.p25, off.median, off.p75, on.p25, on.median, on.p75,
                  on.median - off.median);
    }
    std::printf("\n");
  }

  std::printf("checks against the paper:\n");
  bool interp_wins = true;
  for (int li = 0; li < 4; ++li) {
    for (int q = 0; q < 2; ++q) {
      interp_wins &= bench::box_stats(ratings[li][1][q]).median >=
                     bench::box_stats(ratings[li][0][q]).median + 1.0;
    }
  }
  std::printf("  interpolation gains >= 1 point at every loss rate: %s\n",
              interp_wins ? "yes [paper: yes]" : "NO [paper: yes]");
  const double content20 = bench::box_stats(ratings[2][1][0]).median;
  std::printf("  content at 20%% loss with interpolation: %.1f (paper: ~7, somewhat clear)\n",
              content20);
  const double text20 = bench::box_stats(ratings[2][1][1]).median;
  std::printf("  text vs content at 20%% with interpolation: %.1f vs %.1f (paper: text lower)\n",
              text20, content20);
  return 0;
}
