// Figure 4(c): evolution of the amount of data waiting to be broadcast as
// a function of transmission rate and catalog size.
//
// Paper setup: the 100-page corpus re-rendered hourly for 3 days; every
// page whose content changed is queued for re-broadcast (Q10/PH10k WebP
// sizes); the queue drains at 10/20/40 kbps (multi-frequency). N=200 doubles
// the catalog. Expected shape: at 10 kbps the backlog rarely reaches zero
// (broadcast-only mode); 20/40 kbps drain; daily pattern repeats.
//
// Per-page sizes are measured by actually rendering+encoding each page once;
// subsequent versions jitter the measured size (content churn changes page
// length a little, not its scale).
//
//   ./fig4c_backlog [--hours 48] [--width 1080] [--seed 9]
#include <cmath>
#include <cstdio>
#include <vector>

#include "bench_util.hpp"
#include "image/dct_codec.hpp"
#include "sonic/metrics.hpp"
#include "sonic/scheduler.hpp"
#include "util/rng.hpp"
#include "web/corpus.hpp"
#include "web/layout.hpp"

using namespace sonic;

namespace {

// Measured Q10/PH10k size of every page in a corpus at epoch 0.
std::vector<std::size_t> measure_sizes(const web::PkCorpus& corpus, int width) {
  web::LayoutParams layout;
  layout.width = width;
  layout.max_height = 10000 * width / 1080;
  std::vector<std::size_t> sizes;
  const double upscale = 1080.0 / width;  // report sizes at paper scale
  for (const auto& ref : corpus.pages()) {
    const auto page = web::render_html(corpus.html(ref, 0), layout);
    const double kb = static_cast<double>(image::swebp_encode(page.image, 10).size());
    sizes.push_back(static_cast<std::size_t>(kb * upscale * upscale));
  }
  return sizes;
}

struct Series {
  const char* label;
  double rate_bps;
  bool paper_drains;  // does the paper's corresponding curve reach zero?
  const web::PkCorpus* corpus;
  const std::vector<std::size_t>* sizes;
  core::BroadcastScheduler sched;
  std::vector<double> backlog_mb;
};

}  // namespace

int main(int argc, char** argv) {
  const int hours = bench::arg_int(argc, argv, "--hours", 48);
  const int width = bench::arg_int(argc, argv, "--width", 1080);
  const std::uint64_t seed = static_cast<std::uint64_t>(bench::arg_int(argc, argv, "--seed", 9));

  std::printf("Figure 4(c): data to broadcast over time (render width %d)\n", width);
  std::printf("measuring per-page Q10/PH10k sizes...\n");

  web::PkCorpus corpus100;  // 25 sites x 4 pages
  web::PkCorpus::Params big;
  big.num_sites = 50;  // N=200
  big.seed = 2024;
  web::PkCorpus corpus200(big);

  const auto sizes100 = measure_sizes(corpus100, width);
  const auto sizes200 = measure_sizes(corpus200, width);
  double total100 = 0;
  for (auto s : sizes100) total100 += static_cast<double>(s);
  std::printf("N=100 catalog: %.1f MB total, mean %.0f KB/page\n\n", total100 / 1e6,
              total100 / 100.0 / 1024.0);

  std::vector<Series> series;
  series.push_back({"Rate:10kbps N:100", 10000.0, false, &corpus100, &sizes100,
                    core::BroadcastScheduler({10000.0, 1}), {}});
  series.push_back({"Rate:20kbps N:100", 20000.0, true, &corpus100, &sizes100,
                    core::BroadcastScheduler({10000.0, 2}), {}});
  series.push_back({"Rate:40kbps N:100", 40000.0, true, &corpus100, &sizes100,
                    core::BroadcastScheduler({10000.0, 4}), {}});
  // Doubling the catalog at 20 kbps restores the 10 kbps/N:100 regime: the
  // paper's N:200 curve also hovers above zero.
  series.push_back({"Rate:20kbps N:200", 20000.0, false, &corpus200, &sizes200,
                    core::BroadcastScheduler({10000.0, 2}), {}});

  core::Metrics metrics;
  util::Rng jitter_rng(seed);
  for (int hour = 0; hour < hours; ++hour) {
    for (auto& s : series) {
      const auto& pages = s.corpus->pages();
      for (std::size_t i = 0; i < pages.size(); ++i) {
        if (!s.corpus->changed_at(pages[i], hour)) continue;
        // Version-to-version size jitter around the measured base.
        const int ver = s.corpus->version(pages[i], hour);
        util::Rng rng(seed ^ (i * 0x9e3779b97f4a7c15ull) ^ (static_cast<std::uint64_t>(ver) << 20));
        const double factor = std::exp(rng.normal(0.0, 0.10));
        const auto bytes = static_cast<std::size_t>(static_cast<double>((*s.sizes)[i]) * factor);
        s.sched.enqueue(pages[i].url, bytes, hour * 3600.0);
        metrics.counter(std::string(s.label) + " pages").add();
        metrics.counter(std::string(s.label) + " bytes").add(bytes);
      }
      for (const auto& item : s.sched.advance((hour + 1) * 3600.0)) {
        metrics.histogram(std::string(s.label) + " queue_wait_s")
            .observe(item.completed_at_s - item.enqueued_at_s);
      }
      s.backlog_mb.push_back(s.sched.backlog_bytes() / 1e6);
    }
  }

  std::printf("%5s", "hour");
  for (const auto& s : series) std::printf(" %18s", s.label);
  std::printf("\n");
  for (int hour = 0; hour < hours; ++hour) {
    std::printf("%5d", hour);
    for (const auto& s : series) std::printf(" %15.2f MB", s.backlog_mb[static_cast<std::size_t>(hour)]);
    std::printf("\n");
  }

  std::printf("\nchecks against the paper:\n");
  for (const auto& s : series) {
    int zero_hours = 0;
    double peak = 0;
    for (double b : s.backlog_mb) {
      zero_hours += b < 0.01;
      peak = std::max(peak, b);
    }
    const bool drains = zero_hours > hours / 4;
    std::printf("  %-18s peak %6.2f MB, drained in %2d/%d hours  [paper: %s — %s]\n", s.label,
                peak, zero_hours, hours, s.paper_drains ? "drains" : "rarely reaches zero",
                drains == s.paper_drains ? "ok" : "MISMATCH");
  }
  std::printf("  the amount of data does not grow indefinitely: SONIC is scalable (§4)\n");
  std::printf("\nscheduler metrics (per series):\n%s", metrics.report().c_str());
  return 0;
}
