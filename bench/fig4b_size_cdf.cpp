// Figure 4(b): CDF of rendered-webpage image sizes (WebP-class codec) under
// variable quality Q and pixel-height cap PH.
//
// Paper setup: 100 Pakistani webpages (25 landing + 75 internal), rendered
// 1080 px wide, encoded at Q in {10, 50, 90} with PH in {10k, none}.
// Expected shape: at Q10 most pages < 200 KB where Q90 needs ~700 KB;
// cropping at PH 10k saves ~100 KB for the longest pages; CDF tails reach
// ~2x the 90th percentile.
//
//   ./fig4b_size_cdf [--pages 100] [--width 1080] [--epoch 0] [--lossless]
#include <cstdio>
#include <vector>

#include "bench_util.hpp"
#include "image/dct_codec.hpp"
#include "image/lossless.hpp"
#include "web/corpus.hpp"
#include "web/layout.hpp"

using namespace sonic;

int main(int argc, char** argv) {
  const int pages = bench::arg_int(argc, argv, "--pages", 100);
  const int width = bench::arg_int(argc, argv, "--width", 1080);
  const int epoch = bench::arg_int(argc, argv, "--epoch", 0);
  const bool lossless = bench::arg_flag(argc, argv, "--lossless");

  web::PkCorpus corpus;
  web::LayoutParams layout;
  layout.width = width;
  layout.max_height = 0;  // render uncapped once; PH variants crop after
  const int ph_cap = 10000 * width / 1080;  // PH scales with render width

  struct Config {
    const char* label;
    int quality;
    bool capped;
    std::vector<double> kb;
  };
  std::vector<Config> configs = {
      {"Q:10,PH:10k", 10, true, {}},
      {"Q:10,PH:None", 10, false, {}},
      {"Q:50,PH:10k", 50, true, {}},
      {"Q:90,PH:10k", 90, true, {}},
  };

  std::printf("Figure 4(b): CDF of rendered webpage image sizes\n");
  std::printf("corpus: %d pages (%d sites x landing+3), width %d, epoch %d\n\n",
              pages, corpus.num_sites(), width, epoch);

  const int n = std::min<int>(pages, static_cast<int>(corpus.pages().size()));
  std::vector<double> lossless_kb;
  for (int i = 0; i < n; ++i) {
    const auto& ref = corpus.pages()[static_cast<std::size_t>(i)];
    const auto page = web::render_html(corpus.html(ref, epoch), layout);
    const auto capped = page.image.cropped_to_height(ph_cap);
    for (auto& cfg : configs) {
      const auto& img = cfg.capped ? capped : page.image;
      cfg.kb.push_back(static_cast<double>(image::swebp_encode(img, cfg.quality).size()) / 1024.0);
    }
    if (lossless) {
      lossless_kb.push_back(static_cast<double>(image::lossless_encode(capped).size()) / 1024.0);
    }
  }

  std::printf("%-14s", "CDF");
  for (const auto& cfg : configs) std::printf(" %13s", cfg.label);
  if (lossless) std::printf(" %13s", "lossless,10k");
  std::printf("\n");
  for (int pct = 10; pct <= 100; pct += 10) {
    std::printf("%-14.2f", pct / 100.0);
    for (const auto& cfg : configs) {
      std::printf(" %10.0f KB", bench::percentile(cfg.kb, pct / 100.0));
    }
    if (lossless) std::printf(" %10.0f KB", bench::percentile(lossless_kb, pct / 100.0));
    std::printf("\n");
  }

  const double q10_med = bench::percentile(configs[0].kb, 0.5);
  const double q90_med = bench::percentile(configs[3].kb, 0.5);
  const double q10_p90 = bench::percentile(configs[0].kb, 0.9);
  const double q10_max = bench::percentile(configs[0].kb, 1.0);
  double crop_savings_p75 = 0;
  {
    std::vector<double> savings;
    for (std::size_t i = 0; i < configs[0].kb.size(); ++i) {
      savings.push_back(configs[1].kb[i] - configs[0].kb[i]);
    }
    crop_savings_p75 = bench::percentile(savings, 0.75);
  }

  std::printf("\nchecks against the paper:\n");
  std::printf("  Q10 median %.0f KB (paper: most pages < 200 KB)%s\n", q10_med,
              q10_med < 220 ? "  [ok]" : "  [high]");
  std::printf("  Q90/Q10 median ratio %.1fx (paper: ~700 KB vs < 200 KB, ~3.5x)\n",
              q90_med / q10_med);
  std::printf("  PH10k crop saves <= %.0f KB for 75%% of pages (paper: ~100 KB)\n",
              crop_savings_p75);
  std::printf("  tail: max %.0f KB = %.1fx the p90 %.0f KB (paper: ~2x)\n", q10_max,
              q10_max / q10_p90, q10_p90);
  std::printf("  a %.0f KB tail page takes %.1f min at 10 kbps (paper: up to 6-7 min)\n", q10_max,
              q10_max * 1024.0 * 8.0 / 10000.0 / 60.0);
  return 0;
}
