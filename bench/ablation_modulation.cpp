// Ablation: why SONIC uses a Quiet-class OFDM modem instead of the simpler
// data-over-sound schemes surveyed in §2 (GGwave-class FSK reaches ~128 bps;
// AudioQR ~100 bps). Compares time-to-deliver a typical Q10 page and
// robustness at equal SNR.
//
//   ./ablation_modulation [--page_kb 200]
#include <cstdio>

#include "bench_util.hpp"
#include "modem/fsk.hpp"
#include "modem/ofdm.hpp"
#include "modem/profile.hpp"
#include "util/rng.hpp"

using namespace sonic;

namespace {

void add_awgn(std::vector<float>& samples, double snr_db, util::Rng& rng) {
  double power = 0;
  for (float s : samples) power += static_cast<double>(s) * s;
  power /= static_cast<double>(samples.size());
  const double sigma = std::sqrt(power / std::pow(10.0, snr_db / 10.0));
  for (auto& s : samples) s += static_cast<float>(rng.normal(0.0, sigma));
}

}  // namespace

int main(int argc, char** argv) {
  const double page_kb = bench::arg_double(argc, argv, "--page_kb", 200.0);

  struct Row {
    const char* name;
    double net_bps;
    double band_lo, band_hi;
  };
  std::vector<Row> rows;

  const auto sonic10k = *modem::profiles::get("sonic-10k");
  rows.push_back({"sonic-10k OFDM", sonic10k.net_bit_rate(100, 16),
                  sonic10k.first_bin() * sonic10k.subcarrier_spacing_hz(),
                  (sonic10k.first_bin() + sonic10k.num_subcarriers) * sonic10k.subcarrier_spacing_hz()});
  modem::FskProfile fsk;
  rows.push_back({"16-FSK (GGwave-class)", fsk.bit_rate() * 0.8, fsk.base_hz,
                  fsk.tone_hz(fsk.num_tones - 1)});
  rows.push_back({"AudioQR-class (datasheet)", 100.0, 17500.0, 19500.0});
  rows.push_back({"BatComm-class (datasheet)", 17000.0, 18000.0, 22000.0});

  std::printf("Modulation ablation: delivering a %.0f KB Q10 page over FM audio\n\n", page_kb);
  std::printf("%-26s %10s %14s %18s\n", "scheme", "net bps", "page delivery", "band");
  for (const auto& row : rows) {
    const double seconds = page_kb * 1024 * 8 / row.net_bps;
    char when[32];
    if (seconds < 600) {
      std::snprintf(when, sizeof(when), "%.1f min", seconds / 60);
    } else {
      std::snprintf(when, sizeof(when), "%.1f hours", seconds / 3600);
    }
    std::printf("%-26s %10.0f %14s %8.1f-%.1f kHz%s\n", row.name, row.net_bps, when,
                row.band_lo / 1000, row.band_hi / 1000,
                row.band_hi > 15000 ? "  [outside FM mono band!]" : "");
  }

  std::printf("\nnote: the ultrasonic schemes (AudioQR/BatComm) cannot ride FM broadcast at\n");
  std::printf("all — the mono channel ends at 15 kHz (Fig. 2), which is why SONIC builds an\n");
  std::printf("audible-band OFDM profile instead (§3.3).\n\n");

  // Robustness at equal SNR: OFDM+FEC vs bare FSK.
  std::printf("robustness at equal audio SNR (frame/packet success):\n");
  std::printf("%-8s %22s %22s\n", "SNR dB", "sonic-10k (16x100B)", "16-FSK (32B packet)");
  modem::OfdmModem ofdm(sonic10k);
  modem::FskModem fsk_modem(fsk);
  for (double snr : {20.0, 14.0, 10.0, 6.0}) {
    util::Rng rng(static_cast<std::uint64_t>(snr * 10));
    // OFDM.
    std::vector<util::Bytes> frames;
    for (int i = 0; i < 16; ++i) {
      util::Bytes f(100);
      for (auto& b : f) b = static_cast<std::uint8_t>(rng.uniform_int(256));
      frames.push_back(std::move(f));
    }
    auto audio = ofdm.modulate(frames);
    add_awgn(audio, snr, rng);
    const auto burst = ofdm.receive_one(audio);
    const double ofdm_ok = burst ? 100.0 * static_cast<double>(burst->frames_ok()) / 16.0 : 0.0;
    // FSK.
    int fsk_ok = 0;
    for (int t = 0; t < 4; ++t) {
      util::Bytes payload(32);
      for (auto& b : payload) b = static_cast<std::uint8_t>(rng.uniform_int(256));
      auto fa = fsk_modem.modulate(payload);
      add_awgn(fa, snr, rng);
      const auto rx = fsk_modem.demodulate(fa);
      fsk_ok += rx && *rx == payload;
    }
    std::printf("%-8.0f %21.0f%% %21.0f%%\n", snr, ofdm_ok, 100.0 * fsk_ok / 4.0);
  }
  std::printf("\nreading: FSK tones survive lower SNR (fewer bits per symbol) but are ~25x\n");
  std::printf("slower — a %.0f KB page would take hours. OFDM's FEC stack keeps it reliable\n",
              page_kb);
  std::printf("through the FM chain's operating region while sustaining 10 kbps.\n");
  return 0;
}
