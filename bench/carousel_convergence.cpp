// Carousel convergence: how a downlink-only receiver (users A/B in Fig. 3)
// recovers a popular page from the cyclic catalog broadcast, as a function
// of frame loss rate x fountain repair overhead.
//
// Setup: one station with the carousel enabled broadcasts a single popular
// page repeatedly inside one render epoch; each cycle appends a repair-frame
// tail that continues the page's rateless stream where the previous cycle
// stopped. A receiver at loss rate p keeps ~(1-p) of every cycle's frames.
// The baseline column is the seed-era behavior: one systematic pass, missing
// rows papered over by column interpolation (coverage < 1). With the
// carousel, coverage must reach 1.0 (byte-identical reconstruction) at
// >= 20 % loss with <= 30 % repair overhead.
//
// Also times a 400-frame fountain decode (acceptance: < 50 ms in Release).
//
//   ./carousel_convergence [--rounds 6] [--round-s 300] [--seed 7]
#include <chrono>
#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "fec/fountain.hpp"
#include "sms/sms.hpp"
#include "sonic/client.hpp"
#include "sonic/framing.hpp"
#include "sonic/metrics.hpp"
#include "sonic/server.hpp"
#include "util/rng.hpp"
#include "web/corpus.hpp"
#include "web/layout.hpp"

using namespace sonic;

namespace {

// One station-side run: everything a station with repair overhead `o` puts
// on the air over the bench window, in order, tagged by lane.
struct AirLog {
  double overhead = 0.0;
  std::size_t source_frames_per_cycle = 0;  // k of the popular page
  std::size_t cycles = 0;
  std::string url;
  std::vector<std::pair<util::Bytes, bool>> frames;  // (frame, from_carousel)
};

AirLog record_station(double overhead, int rounds, double round_s) {
  web::PkCorpus corpus;
  sms::SmsGateway gateway({2.0, 0.5, 0.0, 99});
  core::SonicServer::Params sp;
  sp.layout = web::LayoutParams{240, 2000, 10, 2};  // small, fast renders
  sp.carousel_enabled = true;
  sp.carousel.max_pages = 1;
  sp.carousel.repair_overhead = overhead;
  core::SonicServer server(&corpus, &gateway, sp);

  // A phone user's request seeds the popularity count; the carousel then
  // keeps the page cycling for everyone without an uplink.
  core::SonicClient::Params cp;
  cp.phone_number = "+923001110000";
  core::SonicClient requester(&gateway, cp);
  AirLog log;
  log.overhead = overhead;
  log.url = corpus.pages()[3].url;
  requester.request(log.url, 0.0);
  server.poll_sms(5.0);

  double now = 10.0;
  bool first = true;
  for (int round = 0; round < rounds; ++round) {
    now += round_s;  // all rounds inside one render epoch (same page_id)
    for (const auto& done : server.advance(now)) {
      // The user-requested pass outranks the carousel lane, so it always
      // completes first; everything after it is a carousel cycle.
      if (first) log.source_frames_per_cycle = done.bundle.frames.size();
      for (const auto& frame : done.bundle.frames) log.frames.emplace_back(frame, !first);
      first = false;
    }
  }
  log.cycles = server.carousel()->cycles_completed();
  return log;
}

struct Cell {
  double coverage = 0.0;
  bool fountain_decoded = false;
  std::size_t frames_received = 0;
  std::size_t repairs_received = 0;
  double repairs_used = 0.0;  // histogram mean (one page -> the value itself)
};

// Replays the air log into a fresh downlink-only client at loss rate p.
// `single_pass` keeps only the user-requested broadcast (the interpolation
// baseline: what a seed-era station offered a user who missed frames).
Cell receive(const AirLog& log, double loss, bool single_pass, std::uint64_t seed,
             core::Metrics& bench_metrics, const std::string& label) {
  core::SonicClient listener(nullptr, core::SonicClient::Params{});
  util::Rng rng(seed);
  for (const auto& [frame, from_carousel] : log.frames) {
    if (single_pass && from_carousel) continue;
    if (rng.bernoulli(loss)) continue;  // lost on the air
    listener.on_frame(frame);
  }
  const double now = 1e6;
  Cell cell;
  if (listener.flush(now).empty()) return cell;
  const core::ReceivedPage* page = listener.cache().get(log.url, now);
  if (page == nullptr) return cell;
  cell.coverage = page->coverage;
  cell.fountain_decoded = listener.pages_fountain_decoded() > 0;
  cell.frames_received = listener.frames_received();
  cell.repairs_received = listener.repair_frames_received();
  cell.repairs_used = listener.metrics().histogram("fountain_repairs_used").snapshot().mean();
  bench_metrics.counter(label + " frames_received").add(cell.frames_received);
  bench_metrics.counter(label + " repair_frames_received").add(cell.repairs_received);
  bench_metrics.histogram(label + " coverage").observe(cell.coverage);
  if (cell.fountain_decoded) bench_metrics.counter(label + " pages_fountain_decoded").add();
  return cell;
}

// Acceptance timing: a 400-frame page decoded from a 35 %-loss reception
// topped up with repair symbols, wall-clocked end to end.
double time_400_frame_decode_ms(std::uint64_t seed) {
  const std::size_t k = 400;
  util::Rng rng(seed);
  std::vector<util::Bytes> blocks(k);
  for (auto& b : blocks) {
    b.resize(core::kFountainBlockSize);
    for (auto& byte : b) byte = static_cast<std::uint8_t>(rng.uniform_int(256));
  }
  fec::FountainEncoder encoder(31337, blocks);
  std::vector<std::pair<bool, std::uint32_t>> feed;  // (is_source, index/seq)
  std::size_t kept = 0;
  for (std::uint32_t i = 0; i < k; ++i) {
    if (rng.bernoulli(0.35)) continue;
    feed.emplace_back(true, i);
    ++kept;
  }
  const auto target = static_cast<std::size_t>(std::ceil(static_cast<double>(k) * 1.08));
  std::vector<util::Bytes> repairs;
  for (std::uint32_t r = 0; kept + repairs.size() < target; ++r) {
    repairs.push_back(encoder.repair_symbol(r));
    feed.emplace_back(false, r);
  }

  fec::FountainDecoder decoder(31337, k, core::kFountainBlockSize);
  const auto start = std::chrono::steady_clock::now();
  std::size_t next_repair = 0;
  for (const auto& [is_source, idx] : feed) {
    if (is_source) {
      decoder.add_source(idx, blocks[idx]);
    } else {
      decoder.add_repair(idx, repairs[next_repair++]);
    }
    if (decoder.decoded()) break;
  }
  const bool ok = decoder.complete();
  const auto elapsed = std::chrono::steady_clock::now() - start;
  if (!ok) return -1.0;
  return std::chrono::duration<double, std::milli>(elapsed).count();
}

}  // namespace

int main(int argc, char** argv) {
  const int rounds = bench::arg_int(argc, argv, "--rounds", 6);
  const double round_s = bench::arg_double(argc, argv, "--round-s", 300.0);
  const auto seed = static_cast<std::uint64_t>(bench::arg_int(argc, argv, "--seed", 7));

  const std::vector<double> overheads = {0.1, 0.3, 0.5};
  const std::vector<double> losses = {0.1, 0.2, 0.35, 0.5};

  std::printf("Carousel convergence: downlink-only receiver, %d rounds x %.0f s\n", rounds,
              round_s);

  std::vector<AirLog> logs;
  for (double o : overheads) {
    logs.push_back(record_station(o, rounds, round_s));
    std::printf("  station overhead %.1f: k=%zu source frames, %zu carousel cycles aired\n", o,
                logs.back().source_frames_per_cycle, logs.back().cycles);
  }

  core::Metrics metrics;
  std::printf("\n%-8s %28s", "loss", "baseline(1 pass, interp)");
  for (double o : overheads) std::printf("   carousel oh=%.1f", o);
  std::printf("\n");

  bool acceptance_ok = true;
  for (double loss : losses) {
    // The baseline replays the same single systematic pass regardless of
    // overhead; use the first station's log for it.
    const auto base = receive(logs.front(), loss, /*single_pass=*/true, seed ^ 0xb,
                              metrics, "baseline");
    const auto k = static_cast<double>(logs.front().source_frames_per_cycle);
    std::printf("%-8.2f %15.1f%% cov (%3.0f lost)", loss, base.coverage * 100.0,
                k - static_cast<double>(base.frames_received));
    for (const auto& log : logs) {
      const auto label = "carousel oh=" + std::to_string(log.overhead).substr(0, 3);
      const auto cell = receive(log, loss, /*single_pass=*/false,
                                seed ^ static_cast<std::uint64_t>(loss * 100), metrics, label);
      std::printf("  %5.1f%% cov%s", cell.coverage * 100.0, cell.fountain_decoded ? "*" : " ");
      // Acceptance: 100 % of page bytes at >= 20 % loss with <= 30 % overhead.
      if (loss >= 0.2 && loss <= 0.35 && log.overhead <= 0.3 && cell.coverage < 1.0) {
        acceptance_ok = false;
      }
    }
    std::printf("\n");
  }
  std::printf("  (* = lossless fountain reconstruction; baseline rows below 100%% are\n"
              "   interpolated from neighboring columns — blanked detail, not real bytes)\n");

  std::printf("\n400-frame decode timing (Release target < 50 ms):\n");
  double worst_ms = 0.0;
  for (int trial = 0; trial < 5; ++trial) {
    const double ms = time_400_frame_decode_ms(seed + static_cast<std::uint64_t>(trial));
    if (ms < 0) {
      std::printf("  trial %d: decode FAILED\n", trial);
      acceptance_ok = false;
      continue;
    }
    worst_ms = std::max(worst_ms, ms);
    std::printf("  trial %d: %.2f ms\n", trial, ms);
  }
  std::printf("  worst: %.2f ms  [%s]\n", worst_ms, worst_ms < 50.0 ? "ok" : "SLOW (debug build?)");

  std::printf("\nreceiver metrics:\n%s", metrics.report().c_str());
  std::printf("\nacceptance (100%% recovery at >=20%% loss, <=30%% overhead): %s\n",
              acceptance_ok ? "ok" : "MISMATCH");
  return acceptance_ok ? 0 : 1;
}
