// Broadcast pipeline scaling: the follow-up paper's bottleneck — rendering,
// encoding and framing a popular-page catalog for an hourly refresh — run
// once serially and once on the worker pool, with byte-identity between the
// two outputs verified frame by frame. On a multi-core host the parallel
// prepare should show near-linear speedup (the acceptance bar is >= 2x on
// >= 4 cores); on fewer cores the identity check still validates the
// pipeline.
//
//   ./pipeline_scaling [--pages 50] [--width 1080] [--threads N] [--repeat 1]
#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "sonic/pipeline.hpp"
#include "web/corpus.hpp"

using namespace sonic;

namespace {

double time_prepare(core::BroadcastPipeline& pipeline, const std::vector<std::string>& urls,
                    int repeat, std::vector<core::BroadcastPipeline::Prepared>* out) {
  double best_s = 1e18;
  for (int r = 0; r < repeat; ++r) {
    // A fresh hour per repetition so every pass renders (no cache hits).
    const double now_s = static_cast<double>(r) * 24 * 3600.0;
    const auto t0 = std::chrono::steady_clock::now();
    auto prepared = pipeline.prepare(urls, now_s);
    const auto t1 = std::chrono::steady_clock::now();
    best_s = std::min(best_s, std::chrono::duration<double>(t1 - t0).count());
    if (r == 0) *out = std::move(prepared);
  }
  return best_s;
}

}  // namespace

int main(int argc, char** argv) {
  const int pages = bench::arg_int(argc, argv, "--pages", 50);
  const int width = bench::arg_int(argc, argv, "--width", 1080);
  const int hw = static_cast<int>(std::thread::hardware_concurrency());
  const int threads = bench::arg_int(argc, argv, "--threads", hw > 0 ? hw : 4);
  const int repeat = bench::arg_int(argc, argv, "--repeat", 1);

  web::PkCorpus corpus;
  std::vector<std::string> urls;
  for (int i = 0; i < pages && i < static_cast<int>(corpus.pages().size()); ++i) {
    urls.push_back(corpus.pages()[static_cast<std::size_t>(i)].url);
  }

  core::BroadcastPipeline::Params pp;
  pp.layout.width = width;
  pp.layout.max_height = 10000 * width / 1080;
  pp.cache_pages = urls.size() + 8;

  std::printf("pipeline scaling: %zu-page catalog at width %d (%d hardware cores)\n\n",
              urls.size(), width, hw);

  core::BroadcastPipeline serial(&corpus, pp);
  std::vector<core::BroadcastPipeline::Prepared> serial_out;
  const double serial_s = time_prepare(serial, urls, repeat, &serial_out);
  std::printf("  serial:   %7.2f s  (%.0f ms/page)\n", serial_s,
              serial_s * 1000.0 / static_cast<double>(urls.size()));

  pp.num_threads = threads;
  core::BroadcastPipeline parallel(&corpus, pp);
  std::vector<core::BroadcastPipeline::Prepared> parallel_out;
  const double parallel_s = time_prepare(parallel, urls, repeat, &parallel_out);
  std::printf("  parallel: %7.2f s  on %d threads\n", parallel_s, threads);

  // Byte-identity: the parallel pipeline must be indistinguishable from the
  // serial one — same page ids, same frames, bit for bit.
  std::size_t mismatches = 0;
  for (std::size_t i = 0; i < urls.size(); ++i) {
    const auto& a = serial_out[i].bundle;
    const auto& b = parallel_out[i].bundle;
    if (!a || !b || a->page_id != b->page_id || a->frames != b->frames) ++mismatches;
  }

  const double speedup = parallel_s > 0 ? serial_s / parallel_s : 0.0;
  std::printf("\n  speedup:  %.2fx   byte-identical: %s\n", speedup,
              mismatches == 0 ? "yes" : "NO (BUG)");
  std::printf("  [target: >= 2x on >= 4 cores; this host has %d]\n\n", hw);

  std::printf("serial pipeline metrics:\n%s", serial.metrics().report().c_str());
  std::printf("parallel pipeline metrics:\n%s", parallel.metrics().report().c_str());
  return mismatches == 0 ? 0 : 1;
}
