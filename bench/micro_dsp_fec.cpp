// Microbenchmarks (google-benchmark) for the hot kernels: FFT, Viterbi,
// Reed-Solomon, the image codecs and the end-to-end modem. These bound the
// CPU cost of running a SONIC client on low-end hardware.
//
// Two modes:
//
//  * default — the google-benchmark suite (BM_* cases below).
//  * --micro [--json FILE] — the perf-regression harness: every optimized
//    kernel timed against its kept reference implementation, results
//    printed as machine-readable BENCH_MICRO lines and optionally written
//    as JSON (scripts/bench_micro.sh stores them in BENCH_MICRO.json so
//    the speedups are recorded, not claimed).
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <cstring>
#include <functional>
#include <string>
#include <vector>

#include "dsp/fft.hpp"
#include "dsp/fir.hpp"
#include "fec/convolutional.hpp"
#include "fec/fountain.hpp"
#include "fec/reed_solomon.hpp"
#include "image/column_codec.hpp"
#include "image/dct_codec.hpp"
#include "modem/ofdm.hpp"
#include "modem/profile.hpp"
#include "util/rng.hpp"
#include "web/corpus.hpp"
#include "web/layout.hpp"

using namespace sonic;

namespace {

util::Bytes random_bytes(util::Rng& rng, std::size_t n) {
  util::Bytes out(n);
  for (auto& b : out) b = static_cast<std::uint8_t>(rng.uniform_int(256));
  return out;
}

std::vector<dsp::cplx> random_signal(util::Rng& rng, std::size_t n) {
  std::vector<dsp::cplx> v(n);
  for (auto& x : v) x = dsp::cplx(static_cast<float>(rng.normal()), static_cast<float>(rng.normal()));
  return v;
}

// Noisy soft bits for a payload round-tripped through `codec`.
std::vector<float> noisy_soft_bits(const fec::ConvolutionalCodec& codec, std::size_t payload_len,
                                   util::Rng& rng) {
  const auto payload = random_bytes(rng, payload_len);
  const auto coded = codec.encode(payload);
  std::vector<float> soft(codec.encoded_bits(payload_len));
  util::BitReader br(coded);
  for (auto& s : soft) {
    const float noisy = static_cast<float>(br.bit()) + static_cast<float>(rng.normal(0.0, 0.2));
    s = std::min(1.0f, std::max(0.0f, noisy));
  }
  return soft;
}

// ------------------------------------------------- google-benchmark suite ---

void BM_Fft1024(benchmark::State& state) {
  util::Rng rng(1);
  const auto data = random_signal(rng, 1024);
  const auto plan = dsp::FftPlan::get(1024);
  // Preallocated scratch restored OUTSIDE the timed region (manual timing),
  // so the benchmark isolates the transform instead of also measuring a
  // per-iteration std::vector copy.
  std::vector<dsp::cplx> scratch(1024);
  for (auto _ : state) {
    std::copy(data.begin(), data.end(), scratch.begin());
    const auto t0 = std::chrono::steady_clock::now();
    plan->forward(scratch);
    const auto t1 = std::chrono::steady_clock::now();
    benchmark::DoNotOptimize(scratch.data());
    state.SetIterationTime(std::chrono::duration<double>(t1 - t0).count());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 1024);
}
BENCHMARK(BM_Fft1024)->UseManualTime();

void BM_Fft1024Legacy(benchmark::State& state) {
  util::Rng rng(1);
  const auto data = random_signal(rng, 1024);
  std::vector<dsp::cplx> scratch(1024);
  for (auto _ : state) {
    std::copy(data.begin(), data.end(), scratch.begin());
    const auto t0 = std::chrono::steady_clock::now();
    dsp::fft_recurrence(scratch);
    const auto t1 = std::chrono::steady_clock::now();
    benchmark::DoNotOptimize(scratch.data());
    state.SetIterationTime(std::chrono::duration<double>(t1 - t0).count());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 1024);
}
BENCHMARK(BM_Fft1024Legacy)->UseManualTime();

void BM_ViterbiV29Decode100B(benchmark::State& state) {
  fec::ConvolutionalCodec codec({fec::ConvCode::kV29, fec::PunctureRate::kRate1_2});
  util::Rng rng(2);
  const auto soft = noisy_soft_bits(codec, 100, rng);
  for (auto _ : state) {
    auto out = codec.decode_soft(soft, 100);
    benchmark::DoNotOptimize(out);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * 100);
}
BENCHMARK(BM_ViterbiV29Decode100B);

void BM_ViterbiV29Decode100BReference(benchmark::State& state) {
  fec::ConvolutionalCodec codec({fec::ConvCode::kV29, fec::PunctureRate::kRate1_2});
  util::Rng rng(2);
  const auto soft = noisy_soft_bits(codec, 100, rng);
  for (auto _ : state) {
    auto out = codec.decode_soft_reference(soft, 100);
    benchmark::DoNotOptimize(out);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * 100);
}
BENCHMARK(BM_ViterbiV29Decode100BReference);

void BM_FountainXor200B(benchmark::State& state) {
  util::Rng rng(6);
  util::Bytes dst = random_bytes(rng, 200);
  const util::Bytes src = random_bytes(rng, 200);
  for (auto _ : state) {
    fec::xor_into(dst, src);
    benchmark::DoNotOptimize(dst.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * 200);
}
BENCHMARK(BM_FountainXor200B);

void BM_OfdmAnalyzeSymbol(benchmark::State& state) {
  modem::OfdmModem modem(*modem::profiles::get("sonic-10k"));
  util::Rng rng(7);
  std::vector<float> audio(static_cast<std::size_t>(modem.profile().fft_size) * 4);
  for (auto& s : audio) s = static_cast<float>(rng.uniform(-0.5, 0.5));
  for (auto _ : state) {
    auto bins = modem::OfdmKernelProbe::analyze(modem, audio, 128);
    benchmark::DoNotOptimize(bins.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          modem.profile().fft_size);
}
BENCHMARK(BM_OfdmAnalyzeSymbol);

void BM_ReedSolomonDecode(benchmark::State& state) {
  fec::ReedSolomon rs(32);
  util::Rng rng(3);
  const auto payload = random_bytes(rng, 223);
  const auto clean = rs.encode(payload);
  for (auto _ : state) {
    auto block = clean;
    block[10] ^= 0x55;
    block[100] ^= 0xaa;  // 2 errors: typical work
    auto corrected = rs.decode(block);
    benchmark::DoNotOptimize(corrected);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * 223);
}
BENCHMARK(BM_ReedSolomonDecode);

void BM_SwebpEncodeQ10(benchmark::State& state) {
  web::PkCorpus corpus;
  const auto page = web::render_html(corpus.html(corpus.pages()[0], 0),
                                     web::LayoutParams{360, 2000, 12, 2});
  for (auto _ : state) {
    auto coded = image::swebp_encode(page.image, 10);
    benchmark::DoNotOptimize(coded);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * page.image.width() *
                          page.image.height() * 3);
}
BENCHMARK(BM_SwebpEncodeQ10);

void BM_ColumnCodecEncode(benchmark::State& state) {
  web::PkCorpus corpus;
  const auto page = web::render_html(corpus.html(corpus.pages()[0], 0),
                                     web::LayoutParams{360, 2000, 12, 2});
  for (auto _ : state) {
    auto segments = image::column_encode(page.image, {10, 94});
    benchmark::DoNotOptimize(segments);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * page.image.width() *
                          page.image.height() * 3);
}
BENCHMARK(BM_ColumnCodecEncode);

void BM_OfdmModulate16Frames(benchmark::State& state) {
  modem::OfdmModem modem(*modem::profiles::get("sonic-10k"));
  util::Rng rng(4);
  std::vector<util::Bytes> frames;
  for (int i = 0; i < 16; ++i) frames.push_back(random_bytes(rng, 100));
  for (auto _ : state) {
    auto audio = modem.modulate(frames);
    benchmark::DoNotOptimize(audio);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * 1600);
}
BENCHMARK(BM_OfdmModulate16Frames);

void BM_OfdmReceive16Frames(benchmark::State& state) {
  modem::OfdmModem modem(*modem::profiles::get("sonic-10k"));
  util::Rng rng(5);
  std::vector<util::Bytes> frames;
  for (int i = 0; i < 16; ++i) frames.push_back(random_bytes(rng, 100));
  const auto audio = modem.modulate(frames);
  for (auto _ : state) {
    auto burst = modem.receive_one(audio);
    benchmark::DoNotOptimize(burst);
  }
  // Real-time factor: processed audio seconds per wall second matters for
  // the phone client.
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(audio.size()));
}
BENCHMARK(BM_OfdmReceive16Frames);

void BM_RenderCorpusPage(benchmark::State& state) {
  web::PkCorpus corpus;
  const std::string html = corpus.html(corpus.pages()[0], 0);
  for (auto _ : state) {
    auto page = web::render_html(html, web::LayoutParams{1080, 10000, 24, 2});
    benchmark::DoNotOptimize(page);
  }
}
BENCHMARK(BM_RenderCorpusPage);

// ------------------------------------------------ --micro before/after ---

// ns/op of `fn` (one op per call): warm up briefly, then time batches until
// at least `min_seconds` of measured work has accumulated.
double measure_ns_per_op(const std::function<void()>& fn, double min_seconds = 0.2) {
  using clock = std::chrono::steady_clock;
  // Warmup + batch sizing: grow the batch until one batch costs >= ~2 ms.
  std::size_t batch = 1;
  for (;;) {
    const auto t0 = clock::now();
    for (std::size_t i = 0; i < batch; ++i) fn();
    const double s = std::chrono::duration<double>(clock::now() - t0).count();
    if (s >= 2e-3 || batch >= (std::size_t{1} << 24)) break;
    batch *= 4;
  }
  double total_s = 0;
  std::size_t total_ops = 0;
  double best_ns = 0;
  while (total_s < min_seconds) {
    const auto t0 = clock::now();
    for (std::size_t i = 0; i < batch; ++i) fn();
    const double s = std::chrono::duration<double>(clock::now() - t0).count();
    const double ns = s * 1e9 / static_cast<double>(batch);
    if (best_ns == 0 || ns < best_ns) best_ns = ns;  // min over batches rejects scheduler noise
    total_s += s;
    total_ops += batch;
  }
  return best_ns;
}

struct MicroCase {
  std::string kernel;
  double items_per_op;      // for items/s (samples, bytes, ...)
  std::string items_unit;
  std::function<void()> before;
  std::function<void()> after;
};

struct MicroResult {
  std::string kernel;
  std::string items_unit;
  double before_ns_op;
  double after_ns_op;
  double speedup;
  double after_items_per_s;
};

std::vector<MicroCase> build_micro_cases() {
  std::vector<MicroCase> cases;
  auto rng = std::make_shared<util::Rng>(42);

  // FFT-1024 / FFT-4096: forward+inverse pair per op keeps the buffer
  // bounded across iterations; both variants do identical work shapes.
  for (std::size_t n : {std::size_t{1024}, std::size_t{4096}}) {
    auto buf_before = std::make_shared<std::vector<dsp::cplx>>(random_signal(*rng, n));
    auto buf_after = std::make_shared<std::vector<dsp::cplx>>(*buf_before);
    auto plan = dsp::FftPlan::get(n);
    cases.push_back(MicroCase{
        "fft_" + std::to_string(n), static_cast<double>(2 * n), "samples",
        [buf_before] {
          dsp::fft_recurrence(*buf_before);
          dsp::ifft_recurrence(*buf_before);
          benchmark::DoNotOptimize(buf_before->data());
        },
        [buf_after, plan] {
          plan->forward(*buf_after);
          plan->inverse(*buf_after);
          benchmark::DoNotOptimize(buf_after->data());
        }});
  }

  // Viterbi: the paper's inner code (V2,9) and the header code (V2,7),
  // noisy soft bits, 100-byte payloads.
  for (auto [name, code] : {std::pair{"viterbi_v29_100B", fec::ConvCode::kV29},
                            std::pair{"viterbi_v27_100B", fec::ConvCode::kV27}}) {
    auto codec = std::make_shared<fec::ConvolutionalCodec>(
        fec::ConvSpec{code, fec::PunctureRate::kRate1_2});
    auto soft = std::make_shared<std::vector<float>>(noisy_soft_bits(*codec, 100, *rng));
    cases.push_back(MicroCase{
        name, 100.0, "bytes",
        [codec, soft] {
          auto out = codec->decode_soft_reference(*soft, 100);
          benchmark::DoNotOptimize(out.data());
        },
        [codec, soft] {
          auto out = codec->decode_soft(*soft, 100);
          benchmark::DoNotOptimize(out.data());
        }});
  }

  // Fountain repair-row XOR at the carousel's typical frame size and at a
  // page-sized row.
  for (std::size_t len : {std::size_t{200}, std::size_t{4096}}) {
    auto dst_b = std::make_shared<util::Bytes>(random_bytes(*rng, len));
    auto dst_a = std::make_shared<util::Bytes>(*dst_b);
    auto src = std::make_shared<util::Bytes>(random_bytes(*rng, len));
    cases.push_back(MicroCase{
        "fountain_xor_" + std::to_string(len) + "B", static_cast<double>(len), "bytes",
        [dst_b, src] {
          fec::xor_into_reference(*dst_b, *src);
          benchmark::DoNotOptimize(dst_b->data());
        },
        [dst_a, src] {
          fec::xor_into(*dst_a, *src);
          benchmark::DoNotOptimize(dst_a->data());
        }});
  }

  // FIR block filtering: 63-tap program low-pass over a 4096-sample chunk.
  {
    auto taps = std::make_shared<std::vector<float>>(dsp::design_lowpass(6000.0, 44100.0, 63));
    auto x = std::make_shared<std::vector<float>>(4096);
    for (auto& v : *x) v = static_cast<float>(rng->normal());
    auto filt = std::make_shared<dsp::FirFilter>(*taps);
    cases.push_back(MicroCase{
        "fir_63tap_4096", 4096.0, "samples",
        [taps, x] {
          auto out = dsp::fir_reference(*taps, *x);
          benchmark::DoNotOptimize(out.data());
        },
        [filt, x] {
          auto out = filt->process(*x);
          benchmark::DoNotOptimize(out.data());
        }});
  }

  // One OFDM analyze_symbol: before = the old allocating per-call shape
  // (fresh FFT buffer + twiddle recurrence + fresh output vector), after =
  // the plan-based allocation-free member-scratch path.
  {
    auto modem = std::make_shared<modem::OfdmModem>(*modem::profiles::get("sonic-10k"));
    const std::size_t nfft = static_cast<std::size_t>(modem->profile().fft_size);
    const std::size_t nsub = static_cast<std::size_t>(modem->profile().num_subcarriers);
    const std::size_t first_bin = static_cast<std::size_t>(
        modem->profile().first_bin());
    auto audio = std::make_shared<std::vector<float>>(nfft * 4);
    for (auto& s : *audio) s = static_cast<float>(rng->uniform(-0.5, 0.5));
    cases.push_back(MicroCase{
        "ofdm_analyze_symbol", static_cast<double>(nfft), "samples",
        [audio, nfft, nsub, first_bin] {
          std::vector<dsp::cplx> spec(nfft, dsp::cplx(0, 0));
          for (std::size_t i = 0; i < nfft; ++i) spec[i] = dsp::cplx((*audio)[128 + i], 0.0f);
          dsp::fft_recurrence(spec);
          std::vector<dsp::cplx> out(nsub);
          for (std::size_t i = 0; i < nsub; ++i) out[i] = spec[first_bin + i] / 8.0f;
          benchmark::DoNotOptimize(out.data());
        },
        [modem, audio] {
          auto bins = modem::OfdmKernelProbe::analyze(*modem, *audio, 128);
          benchmark::DoNotOptimize(bins.data());
        }});
  }

  return cases;
}

int run_micro(const char* json_path) {
  const auto cases = build_micro_cases();
  std::vector<MicroResult> results;
  for (const auto& c : cases) {
    MicroResult r;
    r.kernel = c.kernel;
    r.items_unit = c.items_unit;
    r.before_ns_op = measure_ns_per_op(c.before);
    r.after_ns_op = measure_ns_per_op(c.after);
    r.speedup = r.before_ns_op / r.after_ns_op;
    r.after_items_per_s = c.items_per_op / (r.after_ns_op * 1e-9);
    std::printf("BENCH_MICRO kernel=%s before_ns_op=%.1f after_ns_op=%.1f speedup=%.2f "
                "after_items_per_s=%.3e unit=%s\n",
                r.kernel.c_str(), r.before_ns_op, r.after_ns_op, r.speedup,
                r.after_items_per_s, r.items_unit.c_str());
    results.push_back(std::move(r));
  }
  if (json_path) {
    std::FILE* f = std::fopen(json_path, "w");
    if (!f) {
      std::fprintf(stderr, "cannot write %s\n", json_path);
      return 1;
    }
    std::fprintf(f, "{\n  \"generated_by\": \"bench/micro_dsp_fec --micro\",\n  \"kernels\": [\n");
    for (std::size_t i = 0; i < results.size(); ++i) {
      const auto& r = results[i];
      std::fprintf(f,
                   "    {\"kernel\": \"%s\", \"before_ns_op\": %.1f, \"after_ns_op\": %.1f, "
                   "\"speedup\": %.2f, \"after_items_per_s\": %.3e, \"items_unit\": \"%s\"}%s\n",
                   r.kernel.c_str(), r.before_ns_op, r.after_ns_op, r.speedup,
                   r.after_items_per_s, r.items_unit.c_str(),
                   i + 1 < results.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
    std::printf("BENCH_MICRO_JSON %s\n", json_path);
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  bool micro = false;
  const char* json_path = nullptr;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--micro") == 0) micro = true;
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) json_path = argv[i + 1];
  }
  if (micro) return run_micro(json_path);
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
