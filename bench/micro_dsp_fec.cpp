// Microbenchmarks (google-benchmark) for the hot kernels: FFT, Viterbi,
// Reed-Solomon, the image codecs and the end-to-end modem. These bound the
// CPU cost of running a SONIC client on low-end hardware.
#include <benchmark/benchmark.h>

#include "dsp/fft.hpp"
#include "fec/convolutional.hpp"
#include "fec/reed_solomon.hpp"
#include "image/column_codec.hpp"
#include "image/dct_codec.hpp"
#include "modem/ofdm.hpp"
#include "modem/profile.hpp"
#include "util/rng.hpp"
#include "web/corpus.hpp"
#include "web/layout.hpp"

using namespace sonic;

namespace {

util::Bytes random_bytes(util::Rng& rng, std::size_t n) {
  util::Bytes out(n);
  for (auto& b : out) b = static_cast<std::uint8_t>(rng.uniform_int(256));
  return out;
}

void BM_Fft1024(benchmark::State& state) {
  util::Rng rng(1);
  std::vector<dsp::cplx> data(1024);
  for (auto& x : data) x = dsp::cplx(static_cast<float>(rng.normal()), static_cast<float>(rng.normal()));
  for (auto _ : state) {
    auto copy = data;
    dsp::fft(copy);
    benchmark::DoNotOptimize(copy);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 1024);
}
BENCHMARK(BM_Fft1024);

void BM_ViterbiV29Decode100B(benchmark::State& state) {
  fec::ConvolutionalCodec codec({fec::ConvCode::kV29, fec::PunctureRate::kRate1_2});
  util::Rng rng(2);
  const auto payload = random_bytes(rng, 100);
  const auto coded = codec.encode(payload);
  std::vector<float> soft(codec.encoded_bits(100));
  util::BitReader br(coded);
  for (auto& s : soft) s = static_cast<float>(br.bit());
  for (auto _ : state) {
    auto out = codec.decode_soft(soft, 100);
    benchmark::DoNotOptimize(out);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * 100);
}
BENCHMARK(BM_ViterbiV29Decode100B);

void BM_ReedSolomonDecode(benchmark::State& state) {
  fec::ReedSolomon rs(32);
  util::Rng rng(3);
  const auto payload = random_bytes(rng, 223);
  const auto clean = rs.encode(payload);
  for (auto _ : state) {
    auto block = clean;
    block[10] ^= 0x55;
    block[100] ^= 0xaa;  // 2 errors: typical work
    auto corrected = rs.decode(block);
    benchmark::DoNotOptimize(corrected);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * 223);
}
BENCHMARK(BM_ReedSolomonDecode);

void BM_SwebpEncodeQ10(benchmark::State& state) {
  web::PkCorpus corpus;
  const auto page = web::render_html(corpus.html(corpus.pages()[0], 0),
                                     web::LayoutParams{360, 2000, 12, 2});
  for (auto _ : state) {
    auto coded = image::swebp_encode(page.image, 10);
    benchmark::DoNotOptimize(coded);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * page.image.width() *
                          page.image.height() * 3);
}
BENCHMARK(BM_SwebpEncodeQ10);

void BM_ColumnCodecEncode(benchmark::State& state) {
  web::PkCorpus corpus;
  const auto page = web::render_html(corpus.html(corpus.pages()[0], 0),
                                     web::LayoutParams{360, 2000, 12, 2});
  for (auto _ : state) {
    auto segments = image::column_encode(page.image, {10, 94});
    benchmark::DoNotOptimize(segments);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * page.image.width() *
                          page.image.height() * 3);
}
BENCHMARK(BM_ColumnCodecEncode);

void BM_OfdmModulate16Frames(benchmark::State& state) {
  modem::OfdmModem modem(*modem::profiles::get("sonic-10k"));
  util::Rng rng(4);
  std::vector<util::Bytes> frames;
  for (int i = 0; i < 16; ++i) frames.push_back(random_bytes(rng, 100));
  for (auto _ : state) {
    auto audio = modem.modulate(frames);
    benchmark::DoNotOptimize(audio);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * 1600);
}
BENCHMARK(BM_OfdmModulate16Frames);

void BM_OfdmReceive16Frames(benchmark::State& state) {
  modem::OfdmModem modem(*modem::profiles::get("sonic-10k"));
  util::Rng rng(5);
  std::vector<util::Bytes> frames;
  for (int i = 0; i < 16; ++i) frames.push_back(random_bytes(rng, 100));
  const auto audio = modem.modulate(frames);
  for (auto _ : state) {
    auto burst = modem.receive_one(audio);
    benchmark::DoNotOptimize(burst);
  }
  // Real-time factor: processed audio seconds per wall second matters for
  // the phone client.
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(audio.size()));
}
BENCHMARK(BM_OfdmReceive16Frames);

void BM_RenderCorpusPage(benchmark::State& state) {
  web::PkCorpus corpus;
  const std::string html = corpus.html(corpus.pages()[0], 0);
  for (auto _ : state) {
    auto page = web::render_html(html, web::LayoutParams{1080, 10000, 24, 2});
    benchmark::DoNotOptimize(page);
  }
}
BENCHMARK(BM_RenderCorpusPage);

}  // namespace

BENCHMARK_MAIN();
