// Streaming downlink: the Figure 4(a) distance sweep run through the
// chunk-fed StreamReceiver instead of batch receive_all, feeding each trial's
// radio audio in 20 ms mic-callback chunks.
//
// Checks, per trial, that the batch result is a byte-identical prefix of the
// streaming result (identical bursts, frames, and sample indices; streaming
// may only ever find MORE bursts, because it resyncs where receive_all gives
// up) — and then runs a long broadcast-carousel stream through a capped
// buffer to show memory stays bounded however long the radio plays.
//
//   ./downlink_streaming [--trials 10] [--frames 20] [--seed 1]
//                        [--chunk 882] [--carousel-secs 100]
//
// Raise --carousel-secs (3600 = an hour of audio) for soak runs; the
// receiver's buffer stays below the cap regardless.
#include <cstdio>
#include <cstdlib>

#include "bench_util.hpp"
#include "fm/link.hpp"
#include "modem/ofdm.hpp"
#include "modem/profile.hpp"
#include "modem/stream_receiver.hpp"
#include "util/metrics.hpp"
#include "util/rng.hpp"

using namespace sonic;

namespace {

// Feeds `audio` in fixed-size chunks; returns every burst the stream yields.
std::vector<modem::RxBurst> stream_receive(modem::StreamReceiver& rx,
                                           std::span<const float> audio, std::size_t chunk) {
  std::vector<modem::RxBurst> out;
  for (std::size_t pos = 0; pos < audio.size(); pos += chunk) {
    auto got = rx.push(audio.subspan(pos, std::min(chunk, audio.size() - pos)));
    out.insert(out.end(), got.begin(), got.end());
  }
  auto tail = rx.flush();
  out.insert(out.end(), tail.begin(), tail.end());
  return out;
}

bool same_burst(const modem::RxBurst& a, const modem::RxBurst& b) {
  if (a.start_sample != b.start_sample || a.end_sample != b.end_sample ||
      a.truncated != b.truncated || a.frames.size() != b.frames.size()) {
    return false;
  }
  for (std::size_t f = 0; f < a.frames.size(); ++f) {
    if (a.frames[f].has_value() != b.frames[f].has_value()) return false;
    if (a.frames[f].has_value() && *a.frames[f] != *b.frames[f]) return false;
  }
  return true;
}

// Batch must be a byte-identical prefix of streaming.
bool batch_is_prefix(const std::vector<modem::RxBurst>& batch,
                     const std::vector<modem::RxBurst>& streaming) {
  if (streaming.size() < batch.size()) return false;
  for (std::size_t i = 0; i < batch.size(); ++i) {
    if (!same_burst(batch[i], streaming[i])) return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  const int trials = bench::arg_int(argc, argv, "--trials", 10);
  const int frames = bench::arg_int(argc, argv, "--frames", 20);
  const std::uint64_t seed = static_cast<std::uint64_t>(bench::arg_int(argc, argv, "--seed", 1));
  const std::size_t chunk = static_cast<std::size_t>(bench::arg_int(argc, argv, "--chunk", 882));
  const int carousel_secs = bench::arg_int(argc, argv, "--carousel-secs", 100);

  modem::OfdmModem ofdm(*modem::profiles::get("sonic-10k"));
  util::Rng rng(seed);
  std::vector<util::Bytes> payload;
  for (int i = 0; i < frames; ++i) {
    util::Bytes f(100);
    for (auto& b : f) b = static_cast<std::uint8_t>(rng.uniform_int(256));
    payload.push_back(std::move(f));
  }
  const auto audio = ofdm.modulate(payload);

  std::printf("Streaming downlink: Fig 4(a) distance sweep through StreamReceiver\n");
  std::printf("profile=sonic-10k  frames/trial=%d  trials=%d  chunk=%zu samples (%.0f ms)\n\n",
              frames, trials, chunk, 1000.0 * static_cast<double>(chunk) / 44100.0);
  std::printf("%-8s %8s %8s %8s  %7s %6s\n", "distance", "p25%", "median%", "p75%", "prefix",
              "extra");

  struct Point {
    const char* label;
    double meters;
  };
  const Point points[] = {
      {"Cable", 0.0}, {"10cm", 0.1}, {"20cm", 0.2}, {"50cm", 0.5},
      {"1m", 1.0},    {"1.1m", 1.1}, {"1.2m", 1.2},
  };

  bool all_prefix_ok = true;
  std::size_t peak_buffered = 0;
  for (const Point& point : points) {
    std::vector<double> losses;
    bool prefix_ok = true;
    std::size_t extra = 0;
    for (int t = 0; t < trials; ++t) {
      fm::FmLinkConfig cfg;
      cfg.enable_rf = false;  // isolate the acoustic hop, as in Fig 4(a)
      cfg.acoustic.distance_m = point.meters;
      cfg.seed = seed * 1000 + static_cast<std::uint64_t>(t) +
                 static_cast<std::uint64_t>(point.meters * 100);
      fm::FmLink link(cfg);
      const auto rx_audio = link.transmit(audio);

      const auto batch = ofdm.receive_all(rx_audio);
      modem::StreamReceiver rx(ofdm);
      const auto streamed = stream_receive(rx, rx_audio, chunk);
      peak_buffered = std::max(peak_buffered, rx.buffered_high_water());

      prefix_ok = prefix_ok && batch_is_prefix(batch, streamed);
      extra += streamed.size() - std::min(streamed.size(), batch.size());
      std::size_t ok = 0;
      for (const auto& b : streamed) ok += b.frames_ok();
      ok = std::min<std::size_t>(ok, static_cast<std::size_t>(frames));
      losses.push_back(100.0 * (1.0 - static_cast<double>(ok) / frames));
    }
    all_prefix_ok = all_prefix_ok && prefix_ok;
    const auto s = bench::box_stats(losses);
    std::printf("%-8s %8.1f %8.1f %8.1f  %7s %6zu\n", point.label, s.p25, s.median, s.p75,
                prefix_ok ? "yes" : "NO", extra);
    std::printf("BENCH_DOWNLINK distance=%s loss_p25=%.1f loss_median=%.1f loss_p75=%.1f "
                "batch_prefix_ok=%d extra_bursts=%zu\n",
                point.label, s.p25, s.median, s.p75, prefix_ok ? 1 : 0, extra);
  }

  // ---- long-run carousel: bounded memory over an arbitrarily long stream --
  const std::size_t gap = 2000;
  const std::size_t loop_len = audio.size() + gap;
  const std::size_t total_samples = static_cast<std::size_t>(carousel_secs) * 44100;
  const std::size_t loops = total_samples / loop_len + 1;

  core::Metrics metrics;
  modem::StreamReceiverParams rx_params;
  rx_params.max_buffer_samples = 4 * ofdm.min_decode_samples() + audio.size();
  rx_params.metrics = &metrics;
  modem::StreamReceiver rx(ofdm, rx_params);

  // The carousel repeats the same burst; feed it loop by loop in mic chunks
  // without ever materializing the whole stream.
  std::vector<float> loop_audio(audio.begin(), audio.end());
  loop_audio.insert(loop_audio.end(), gap, 0.0f);
  std::size_t bursts = 0, frames_ok = 0;
  for (std::size_t l = 0; l < loops; ++l) {
    for (std::size_t pos = 0; pos < loop_audio.size(); pos += chunk) {
      const auto got = rx.push(
          std::span(loop_audio).subspan(pos, std::min(chunk, loop_audio.size() - pos)));
      for (const auto& b : got) {
        ++bursts;
        frames_ok += b.frames_ok();
      }
    }
  }
  for (const auto& b : rx.flush()) {
    ++bursts;
    frames_ok += b.frames_ok();
  }

  const bool mem_ok = rx.buffered_high_water() <= rx_params.max_buffer_samples;
  const bool all_bursts = bursts == loops;
  std::printf("\ncarousel: %zu loops (%.0f s of audio), %zu bursts, %zu frames ok, "
              "peak buffered %zu / cap %zu\n",
              loops, static_cast<double>(loops * loop_len) / 44100.0, bursts, frames_ok,
              rx.buffered_high_water(), rx_params.max_buffer_samples);
  std::printf("BENCH_DOWNLINK_CAROUSEL seconds=%.0f bursts=%zu expected=%zu frames_ok=%zu "
              "peak_buffered=%zu cap=%zu sync_hits=%llu\n",
              static_cast<double>(loops * loop_len) / 44100.0, bursts, loops, frames_ok,
              rx.buffered_high_water(), rx_params.max_buffer_samples,
              static_cast<unsigned long long>(metrics.counter_value("rx_sync_hits")));

  const bool pass = all_prefix_ok && mem_ok && all_bursts;
  std::printf("BENCH_DOWNLINK_ACCEPTANCE %s (batch prefix byte-identical at every distance; "
              "carousel decoded every loop within the buffer cap)\n", pass ? "PASS" : "FAIL");
  std::printf("peak buffered across sweep: %zu samples\n", peak_buffered);
  return pass ? 0 : 1;
}
