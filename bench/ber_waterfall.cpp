// BER/FER waterfall: frame error rate vs audio SNR for every transmission
// profile — the classic link-budget curve behind the profile ladder and the
// Fig. 4(a)/RSSI cliffs. Shows where each constellation/FEC rung falls off.
//
//   ./ber_waterfall [--trials 4] [--frames 8]
#include <cstdio>

#include "bench_util.hpp"
#include "modem/ofdm.hpp"
#include "modem/profile.hpp"
#include "util/rng.hpp"

using namespace sonic;

int main(int argc, char** argv) {
  const int trials = bench::arg_int(argc, argv, "--trials", 4);
  const int frames = bench::arg_int(argc, argv, "--frames", 8);

  std::printf("Frame error rate (%%) vs audio SNR per profile (%d trials x %d frames)\n\n",
              trials, frames);
  std::printf("%-12s", "profile");
  for (int snr = 24; snr >= 4; snr -= 2) std::printf(" %5d", snr);
  std::printf("\n");

  for (const auto& profile : modem::profiles::all()) {
    modem::OfdmModem modem(profile);
    std::printf("%-12s", profile.name.c_str());
    for (int snr = 24; snr >= 4; snr -= 2) {
      double loss = 0;
      for (int t = 0; t < trials; ++t) {
        util::Rng rng(static_cast<std::uint64_t>(snr) * 131 + static_cast<std::uint64_t>(t));
        std::vector<util::Bytes> payload;
        for (int i = 0; i < frames; ++i) {
          util::Bytes f(100);
          for (auto& b : f) b = static_cast<std::uint8_t>(rng.uniform_int(256));
          payload.push_back(std::move(f));
        }
        auto audio = modem.modulate(payload);
        double power = 0;
        for (float s : audio) power += static_cast<double>(s) * s;
        power /= static_cast<double>(audio.size());
        const double sigma = std::sqrt(power / std::pow(10.0, snr / 10.0));
        for (auto& s : audio) s += static_cast<float>(rng.normal(0.0, sigma));
        const auto burst = modem.receive_one(audio);
        loss += 1.0 - static_cast<double>(burst ? burst->frames_ok() : 0) / frames;
      }
      std::printf(" %5.0f", 100.0 * loss / trials);
    }
    std::printf("\n");
  }
  std::printf("\nreading: each rung of the ladder buys ~4-6 dB; robust-2k survives where\n");
  std::printf("sonic-10k dies, at a quarter of the rate — the §3 trade SONIC exposes as\n");
  std::printf("transmission profiles.\n");
  return 0;
}
