// §3.3 / §4 rate claims: the transmission-profile ladder, with the paper's
// headline "data rates achieved by this profile reach 10 kbps" verified by
// an actual loopback transmission, plus Quiet's cable figure and the
// GGwave-class FSK baseline from §2.
//
//   ./throughput_profiles [--frames 16]
#include <chrono>
#include <cstdio>

#include "bench_util.hpp"
#include "fm/link.hpp"
#include "modem/fsk.hpp"
#include "modem/ofdm.hpp"
#include "modem/profile.hpp"
#include "util/rng.hpp"

using namespace sonic;

int main(int argc, char** argv) {
  const int frames = bench::arg_int(argc, argv, "--frames", 16);

  std::printf("SONIC transmission profiles (92-subcarrier OFDM unless noted)\n");
  std::printf("registry rungs:");
  for (const auto& name : modem::profiles::names()) std::printf(" %s", name.c_str());
  std::printf("\n\n");
  std::printf("%-12s %-9s %-5s %-4s %9s %9s %10s %8s\n", "profile", "constel", "conv", "rs",
              "raw kbps", "net kbps", "band (Hz)", "loopback");

  util::Rng rng(1);
  for (const auto& profile : modem::profiles::all()) {
    modem::OfdmModem modem(profile);
    std::vector<util::Bytes> payload;
    for (int i = 0; i < frames; ++i) {
      util::Bytes f(100);
      for (auto& b : f) b = static_cast<std::uint8_t>(rng.uniform_int(256));
      payload.push_back(std::move(f));
    }
    const auto audio = modem.modulate(payload);
    const auto burst = modem.receive_one(audio);
    const bool ok = burst && burst->frames_ok() == payload.size();
    // Effective over-the-air rate for this burst.
    const double wall_rate =
        static_cast<double>(payload.size()) * 100 * 8 / (static_cast<double>(audio.size()) / profile.sample_rate);

    char conv[8];
    std::snprintf(conv, sizeof(conv), "%s", profile.conv.rate == fec::PunctureRate::kRate1_2 ? "1/2"
                                            : profile.conv.rate == fec::PunctureRate::kRate2_3 ? "2/3"
                                                                                               : "3/4");
    std::printf("%-12s %-9s %-5s %-4d %9.1f %9.1f %5.0f-%-5.0f %8s\n", profile.name.c_str(),
                modem::constellation_name(profile.constellation), conv, profile.rs_nroots,
                profile.raw_bit_rate() / 1000.0, profile.net_bit_rate(100, frames) / 1000.0,
                profile.first_bin() * profile.subcarrier_spacing_hz(),
                (profile.first_bin() + profile.num_subcarriers) * profile.subcarrier_spacing_hz(),
                ok ? "ok" : "FAIL");
    (void)wall_rate;
  }

  // The FSK baseline (§2: GGwave reaches ~128 bps).
  modem::FskProfile fsk;
  modem::FskModem fsk_modem(fsk);
  util::Bytes small(32);
  for (auto& b : small) b = static_cast<std::uint8_t>(rng.uniform_int(256));
  const auto fsk_audio = fsk_modem.modulate(small);
  const auto fsk_rx = fsk_modem.demodulate(fsk_audio);
  std::printf("%-12s %-9s %-5s %-4s %9.2f %9.2f %5.0f-%-5.0f %8s\n", "fsk-baseline",
              "16-FSK", "-", "-", fsk.bit_rate() / 1000.0, fsk.bit_rate() / 1000.0 * 0.8,
              fsk.base_hz, fsk.tone_hz(fsk.num_tones - 1),
              fsk_rx && *fsk_rx == small ? "ok" : "FAIL");

  std::printf("\nchecks against the paper:\n");
  const auto sonic = *modem::profiles::get("sonic-10k");
  std::printf("  sonic-10k net rate %.1f kbps (paper: \"data rates ... reach 10 kbps\")\n",
              sonic.net_bit_rate(100, frames) / 1000.0);
  std::printf("  92 subcarriers at %.1f kHz carrier inside the FM mono band (30 Hz-15 kHz)\n",
              sonic.carrier_hz / 1000.0);
  std::printf("  cable-64k net %.1f kbps (Quiet: \"up to 64 kbps ... audio jack cable\")\n",
              modem::profiles::get("cable-64k")->net_bit_rate(1000, 8) / 1000.0);
  std::printf("  FSK baseline %.0f bps: the §2 motivation for OFDM (GGwave-class ~128 bps)\n",
              fsk.bit_rate());

  // End-to-end wall-clock sanity over the full FM chain.
  {
    modem::OfdmModem modem(sonic);
    std::vector<util::Bytes> payload;
    for (int i = 0; i < frames; ++i) {
      util::Bytes f(100);
      for (auto& b : f) b = static_cast<std::uint8_t>(rng.uniform_int(256));
      payload.push_back(std::move(f));
    }
    const auto audio = modem.modulate(payload);
    fm::FmLinkConfig cfg;
    cfg.rf.rssi_db = -70;
    cfg.acoustic.distance_m = 0;
    fm::FmLink link(cfg);
    const auto t0 = std::chrono::steady_clock::now();
    const auto rx = link.transmit(audio);
    const auto burst = modem.receive_one(rx);
    const auto t1 = std::chrono::steady_clock::now();
    const double air_s = static_cast<double>(audio.size()) / sonic.sample_rate;
    std::printf("  full FM chain: %zu/%d frames in %.1f s of air time (simulated in %.1f s)\n",
                burst ? burst->frames_ok() : 0, frames, air_s,
                std::chrono::duration<double>(t1 - t0).count());
  }
  return 0;
}
