#include <gtest/gtest.h>

#include <set>

#include "image/dct_codec.hpp"
#include "web/corpus.hpp"
#include "web/font.hpp"
#include "web/html.hpp"
#include "web/layout.hpp"

namespace sonic::web {
namespace {

// ------------------------------------------------------------------ HTML ---

TEST(Html, ParsesNestedStructure) {
  const Node root = parse_html("<html><body><div><p>hello <b>world</b></p></div></body></html>");
  ASSERT_EQ(root.children.size(), 1u);
  const Node& html = root.children[0];
  EXPECT_EQ(html.tag, "html");
  const Node& body = html.children[0];
  EXPECT_EQ(body.tag, "body");
  const Node& div = body.children[0];
  EXPECT_EQ(div.tag, "div");
  const Node& p = div.children[0];
  ASSERT_EQ(p.children.size(), 2u);
  EXPECT_EQ(p.children[0].type, Node::Type::kText);
  EXPECT_EQ(p.children[0].text, "hello ");
  EXPECT_EQ(p.children[1].tag, "b");
}

TEST(Html, ParsesAttributes) {
  const Node root = parse_html("<a href=\"example.pk/page\" color=red>link</a>");
  const Node& a = root.children[0];
  ASSERT_NE(a.attr("href"), nullptr);
  EXPECT_EQ(*a.attr("href"), "example.pk/page");
  ASSERT_NE(a.attr("color"), nullptr);
  EXPECT_EQ(*a.attr("color"), "red");
  EXPECT_EQ(a.attr("missing"), nullptr);
}

TEST(Html, VoidAndSelfClosingTags) {
  const Node root = parse_html("<p>a<br>b</p><img src=\"x\"/><hr>");
  EXPECT_EQ(root.children.size(), 3u);
  EXPECT_EQ(root.children[1].tag, "img");
  EXPECT_EQ(root.children[2].tag, "hr");
  const Node& p = root.children[0];
  ASSERT_EQ(p.children.size(), 3u);
  EXPECT_EQ(p.children[1].tag, "br");
  EXPECT_TRUE(p.children[1].children.empty());
}

TEST(Html, SkipsScriptStyleAndComments) {
  const Node root = parse_html(
      "<p>before</p><script>var x = '<p>not content</p>';</script>"
      "<style>p { color: red }</style><!-- comment --><p>after</p>");
  ASSERT_EQ(root.children.size(), 2u);
  EXPECT_EQ(text_content(root), "before after");
}

TEST(Html, ToleratesMalformedInput) {
  // Unclosed tags, stray brackets, mismatched closes: parse, don't crash.
  const Node a = parse_html("<div><p>unclosed");
  EXPECT_EQ(text_content(a), "unclosed");
  const Node b = parse_html("text with < stray bracket");
  EXPECT_FALSE(b.children.empty());
  const Node c = parse_html("<b>bold</i></b>");
  EXPECT_EQ(text_content(c), "bold");
  EXPECT_EQ(text_content(parse_html("")), "");
}

TEST(Html, CollapsesWhitespace) {
  const Node root = parse_html("<p>multiple     spaces\n\nand   newlines</p>");
  EXPECT_EQ(text_content(root), "multiple spaces and newlines");
}

// ------------------------------------------------------------------ Font ---

TEST(Font, GlyphsAreDistinct) {
  std::set<std::string> shapes;
  const std::string chars = "ABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789.,:!?-";
  for (char c : chars) {
    const std::uint8_t* rows = glyph_rows(c);
    shapes.insert(std::string(reinterpret_cast<const char*>(rows), kGlyphHeight));
  }
  EXPECT_EQ(shapes.size(), chars.size());
}

TEST(Font, LowercaseReusesUppercase) {
  for (char c = 'a'; c <= 'z'; ++c) {
    const std::uint8_t* lower = glyph_rows(c);
    const std::uint8_t* upper = glyph_rows(static_cast<char>(c - 'a' + 'A'));
    for (int r = 0; r < kGlyphHeight; ++r) EXPECT_EQ(lower[r], upper[r]);
  }
}

TEST(Font, DrawTextAdvances) {
  image::Raster img(200, 30, image::Rgb{255, 255, 255});
  const int advance = draw_text(img, "HELLO", 5, 5, 2, image::Rgb{0, 0, 0});
  EXPECT_EQ(advance, text_width("HELLO", 2));
  EXPECT_EQ(advance, 5 * (kGlyphWidth + 1) * 2);
  // Some pixels must be dark now.
  int dark = 0;
  for (const auto& p : img.pixels()) dark += p.r < 128;
  EXPECT_GT(dark, 20);
}

TEST(Font, UnknownGlyphIsBox) {
  const std::uint8_t* rows = glyph_rows('\x7f');
  EXPECT_EQ(rows[0], 0x1f);
  EXPECT_EQ(rows[6], 0x1f);
}

// ---------------------------------------------------------------- Layout ---

TEST(Layout, RendersAtRequestedWidth) {
  const auto page = render_html("<p>hello world</p>", LayoutParams{});
  EXPECT_EQ(page.image.width(), 1080);
  EXPECT_GT(page.image.height(), 10);
  EXPECT_LT(page.image.height(), 200);
}

TEST(Layout, TextWrapsAtMargin) {
  LayoutParams params;
  params.width = 200;
  std::string longtext = "<p>";
  for (int i = 0; i < 40; ++i) longtext += "word ";
  longtext += "</p>";
  const auto page = render_html(longtext, params);
  // 40 words cannot fit on one 200px line: must wrap to many lines.
  EXPECT_GT(page.image.height(), 100);
}

TEST(Layout, HeadingsAreTallerThanBody) {
  const auto h1 = render_html("<h1>Title</h1>", LayoutParams{});
  const auto p = render_html("<p>Title</p>", LayoutParams{});
  EXPECT_GT(h1.image.height(), p.image.height());
}

TEST(Layout, ClickMapCoversLinks) {
  const auto page = render_html(
      "<p>before</p><p><a href=\"target.pk/\">click here now</a></p><p>after</p>",
      LayoutParams{});
  ASSERT_EQ(page.click_map.size(), 1u);
  const ClickRegion& r = page.click_map[0];
  EXPECT_EQ(r.href, "target.pk/");
  EXPECT_GT(r.w, 10);
  EXPECT_GT(r.h, 5);
  // The region must lie within the image.
  EXPECT_GE(r.x, 0);
  EXPECT_GE(r.y, 0);
  EXPECT_LE(r.x + r.w, page.image.width());
  EXPECT_LE(r.y + r.h, page.image.height());
  // Hit-testing inside/outside.
  EXPECT_EQ(hit_test(page.click_map, r.x + r.w / 2, r.y + r.h / 2), "target.pk/");
  EXPECT_EQ(hit_test(page.click_map, 5, 5), "");
}

TEST(Layout, MultipleLinksGetSeparateRegions) {
  const auto page = render_html(
      "<p><a href=\"a.pk/\">first</a></p><p><a href=\"b.pk/\">second</a></p>", LayoutParams{});
  ASSERT_EQ(page.click_map.size(), 2u);
  EXPECT_EQ(page.click_map[0].href, "a.pk/");
  EXPECT_EQ(page.click_map[1].href, "b.pk/");
  EXPECT_LT(page.click_map[0].y + page.click_map[0].h, page.click_map[1].y + 1);
}

TEST(Layout, PixelHeightCapCropsPage) {
  LayoutParams capped;
  capped.max_height = 400;
  std::string lots = "<p>";
  for (int i = 0; i < 500; ++i) lots += "paragraph text here ";
  lots += "</p>";
  const auto page = render_html(lots, capped);
  EXPECT_LE(page.image.height(), 400);
  EXPECT_GT(page.full_height, 400);  // remembers the uncropped height

  LayoutParams uncapped;
  uncapped.max_height = 0;
  const auto full = render_html(lots, uncapped);
  EXPECT_GT(full.image.height(), 400);
}

TEST(Layout, ImagePlaceholderRespectsDims) {
  const auto small = render_html("<img width=\"100\" height=\"80\"/>", LayoutParams{});
  const auto big = render_html("<img width=\"100\" height=\"300\"/>", LayoutParams{});
  EXPECT_GT(big.image.height(), small.image.height() + 150);
}

TEST(Layout, DeviceScalingRescalesClickMap) {
  const auto page = render_html(
      "<p><a href=\"x.pk/\">a link with several words in it</a></p>", LayoutParams{});
  ASSERT_EQ(page.click_map.size(), 1u);
  const auto scaled = scale_for_device(page, 360);  // Redmi Go width
  EXPECT_EQ(scaled.image.width(), 360);
  ASSERT_EQ(scaled.click_map.size(), 1u);
  EXPECT_NEAR(scaled.click_map[0].x, page.click_map[0].x / 3, 2);
  EXPECT_NEAR(scaled.click_map[0].w, page.click_map[0].w / 3, 2);
  EXPECT_EQ(scaled.click_map[0].href, "x.pk/");
}

TEST(Layout, DeterministicRendering) {
  const std::string html = "<h1>Fixed</h1><p>content</p><a href=\"z.pk/\">z</a>";
  const auto a = render_html(html, LayoutParams{});
  const auto b = render_html(html, LayoutParams{});
  EXPECT_EQ(a.image.pixels(), b.image.pixels());
  EXPECT_EQ(a.click_map.size(), b.click_map.size());
}

// ---------------------------------------------------------------- Corpus ---

TEST(Corpus, Builds100Pages) {
  PkCorpus corpus;
  EXPECT_EQ(corpus.pages().size(), 100u);  // 25 landing + 75 internal
  int landings = 0;
  for (const auto& p : corpus.pages()) landings += p.landing();
  EXPECT_EQ(landings, 25);
}

TEST(Corpus, DomainsEndInPk) {
  PkCorpus corpus;
  for (int s = 0; s < corpus.num_sites(); ++s) {
    const std::string& d = corpus.domain(s);
    EXPECT_TRUE(d.size() > 3 && d.substr(d.size() - 3) == ".pk") << d;
  }
}

TEST(Corpus, FindByUrl) {
  PkCorpus corpus;
  const PageRef& first = corpus.pages()[0];
  EXPECT_EQ(corpus.find(first.url), &first);
  EXPECT_EQ(corpus.find("http://" + first.url), &first);
  EXPECT_EQ(corpus.find(corpus.domain(0)), &first);  // bare domain -> landing
  EXPECT_EQ(corpus.find("no-such-site.pk/"), nullptr);
}

TEST(Corpus, HtmlIsDeterministicPerVersion) {
  PkCorpus corpus;
  const PageRef& ref = corpus.pages()[0];
  EXPECT_EQ(corpus.html(ref, 0), corpus.html(ref, 0));
  // Same version across epochs -> identical HTML.
  for (int e = 1; e < 24; ++e) {
    if (!corpus.changed_at(ref, e)) {
      EXPECT_EQ(corpus.html(ref, e), corpus.html(ref, e - 1));
    } else {
      EXPECT_NE(corpus.html(ref, e), corpus.html(ref, e - 1));
    }
  }
}

TEST(Corpus, NewsChurnsMoreThanGovernment) {
  PkCorpus corpus;
  int news_changes = 0, gov_changes = 0, news_pages = 0, gov_pages = 0;
  for (const auto& ref : corpus.pages()) {
    if (!ref.landing()) continue;
    int changes = 0;
    for (int e = 1; e <= 72; ++e) changes += corpus.changed_at(ref, e);
    if (corpus.category(ref.site) == SiteCategory::kNews) {
      news_changes += changes;
      ++news_pages;
    } else if (corpus.category(ref.site) == SiteCategory::kGovernment) {
      gov_changes += changes;
      ++gov_pages;
    }
  }
  ASSERT_GT(news_pages, 0);
  ASSERT_GT(gov_pages, 0);
  EXPECT_GT(static_cast<double>(news_changes) / news_pages,
            5.0 * static_cast<double>(gov_changes) / gov_pages);
}

TEST(Corpus, PagesRenderAndVaryInSize) {
  // Render a few pages at reduced width; coded sizes must spread widely
  // (the Fig. 4(b) premise) and all pages must parse+render.
  PkCorpus corpus;
  LayoutParams params;
  params.width = 360;
  params.max_height = 0;  // uncapped: the size spread comes from page length
  std::vector<std::size_t> sizes;
  for (int i = 0; i < 12; ++i) {
    const auto& ref = corpus.pages()[static_cast<std::size_t>(i * 8)];
    const auto page = render_html(corpus.html(ref, 0), params);
    ASSERT_GT(page.image.height(), 100) << ref.url;
    sizes.push_back(image::swebp_encode(page.image, 10).size());
  }
  const auto [mn, mx] = std::minmax_element(sizes.begin(), sizes.end());
  EXPECT_GT(static_cast<double>(*mx), 1.5 * static_cast<double>(*mn));
}

TEST(Corpus, InternalPagesLinkBackHome) {
  PkCorpus corpus;
  const PageRef& internal = corpus.pages()[1];
  ASSERT_FALSE(internal.landing());
  const auto page = render_html(corpus.html(internal, 0), LayoutParams{});
  bool has_home_link = false;
  for (const auto& r : page.click_map) {
    if (r.href == corpus.domain(internal.site) + "/") has_home_link = true;
  }
  EXPECT_TRUE(has_home_link);
}

TEST(Corpus, Epoch0EverythingChanged) {
  PkCorpus corpus;
  for (const auto& ref : corpus.pages()) EXPECT_TRUE(corpus.changed_at(ref, 0));
}

}  // namespace
}  // namespace sonic::web
