#include <gtest/gtest.h>

#include <cmath>
#include <string>

#include "modem/fsk.hpp"
#include "modem/ofdm.hpp"
#include "modem/packet.hpp"
#include "modem/profile.hpp"
#include "modem/qam.hpp"
#include "util/rng.hpp"
#include "util/units.hpp"

namespace sonic::modem {
namespace {

using sonic::util::Bytes;
using sonic::util::Rng;

Bytes random_bytes(Rng& rng, std::size_t n) {
  Bytes out(n);
  for (auto& b : out) b = static_cast<std::uint8_t>(rng.uniform_int(256));
  return out;
}

void add_awgn(std::vector<float>& samples, double snr_db, Rng& rng) {
  double power = 0;
  for (float s : samples) power += static_cast<double>(s) * s;
  power /= static_cast<double>(samples.size());
  const double noise_power = power / sonic::util::db_to_linear(snr_db);
  const double sigma = std::sqrt(noise_power);
  for (auto& s : samples) s += static_cast<float>(rng.normal(0.0, sigma));
}

// ------------------------------------------------------------------ QAM ---

class QamTest : public ::testing::TestWithParam<Constellation> {};

TEST_P(QamTest, MapDemapRoundTrip) {
  QamMapper qam(GetParam());
  for (std::uint32_t v = 0; v < static_cast<std::uint32_t>(GetParam()); ++v) {
    EXPECT_EQ(qam.demap_hard(qam.map(v)), v) << "label " << v;
  }
}

TEST_P(QamTest, UnitAverageEnergy) {
  QamMapper qam(GetParam());
  double energy = 0;
  const int order = static_cast<int>(GetParam());
  for (std::uint32_t v = 0; v < static_cast<std::uint32_t>(order); ++v) energy += std::norm(qam.map(v));
  EXPECT_NEAR(energy / order, 1.0, 1e-4);
}

TEST_P(QamTest, SoftDemapAgreesWithHardAtHighSnr) {
  QamMapper qam(GetParam());
  const int bits = qam.bits_per_symbol();
  std::vector<float> soft(static_cast<std::size_t>(bits));
  for (std::uint32_t v = 0; v < static_cast<std::uint32_t>(GetParam()); ++v) {
    qam.demap_soft(qam.map(v), 1e-4f, soft);
    std::uint32_t recovered = 0;
    for (int b = 0; b < bits; ++b) recovered = (recovered << 1) | (soft[static_cast<std::size_t>(b)] > 0.5f ? 1u : 0u);
    EXPECT_EQ(recovered, v);
    for (float s : soft) EXPECT_TRUE(s < 0.01f || s > 0.99f);  // confident
  }
}

TEST_P(QamTest, SoftDemapUncertainNearBoundary) {
  QamMapper qam(GetParam());
  const int bits = qam.bits_per_symbol();
  std::vector<float> soft(static_cast<std::size_t>(bits));
  // A symbol exactly between the two BPSK/axis points must give ~0.5 on the
  // deciding bit.
  qam.demap_soft(cplx(0.0f, 0.0f), 0.5f, soft);
  bool any_uncertain = false;
  for (float s : soft) any_uncertain |= (s > 0.3f && s < 0.7f);
  EXPECT_TRUE(any_uncertain);
}

INSTANTIATE_TEST_SUITE_P(AllConstellations, QamTest,
                         ::testing::Values(Constellation::kBpsk, Constellation::kQpsk,
                                           Constellation::kQam16, Constellation::kQam64,
                                           Constellation::kQam256, Constellation::kQam1024),
                         [](const auto& info) { return std::string(constellation_name(info.param)); });

TEST(Qam, GrayNeighborsDifferInOneBit) {
  QamMapper qam(Constellation::kQam64);
  // Adjacent constellation points along either axis differ in exactly one
  // bit — the property that makes soft demapping effective.
  const float d = qam.min_distance();
  for (std::uint32_t v = 0; v < 64; ++v) {
    const cplx p = qam.map(v);
    for (const cplx offset : {cplx(d, 0.0f), cplx(0.0f, d)}) {
      const cplx q = p + offset;
      if (std::abs(q.real()) > 1.1f || std::abs(q.imag()) > 1.1f) continue;
      const std::uint32_t w = qam.demap_hard(q);
      if (w == v) continue;  // q landed outside the grid
      const int diff = __builtin_popcount(v ^ w);
      EXPECT_EQ(diff, 1) << "labels " << v << " vs " << w;
    }
  }
}

TEST(Qam, MinDistanceShrinksWithOrder) {
  EXPECT_GT(QamMapper(Constellation::kQpsk).min_distance(),
            QamMapper(Constellation::kQam16).min_distance());
  EXPECT_GT(QamMapper(Constellation::kQam16).min_distance(),
            QamMapper(Constellation::kQam64).min_distance());
  EXPECT_GT(QamMapper(Constellation::kQam64).min_distance(),
            QamMapper(Constellation::kQam1024).min_distance());
}

// ----------------------------------------------------------- PacketCodec ---

TEST(PacketCodec, CleanRoundTrip) {
  PacketCodec codec(PacketSpec{});
  Rng rng(1);
  for (std::size_t len : {1u, 100u, 300u, 1000u}) {
    const Bytes payload = random_bytes(rng, len);
    const Bytes coded = codec.encode(payload);
    const std::size_t nbits = codec.encoded_bits(len);
    EXPECT_EQ(coded.size(), (nbits + 7) / 8);
    std::vector<float> soft(nbits);
    util::BitReader br(coded);
    for (auto& s : soft) s = static_cast<float>(br.bit());
    const auto decoded = codec.decode(soft, len);
    ASSERT_TRUE(decoded.has_value()) << len;
    EXPECT_EQ(*decoded, payload);
  }
}

TEST(PacketCodec, SurvivesBurstErrors) {
  // The stride interleaver must spread a burst across the Viterbi input.
  PacketCodec codec(PacketSpec{{fec::ConvCode::kV29, fec::PunctureRate::kRate1_2}, 16, 223, true});
  Rng rng(2);
  const Bytes payload = random_bytes(rng, 100);
  const Bytes coded = codec.encode(payload);
  const std::size_t nbits = codec.encoded_bits(100);
  std::vector<float> soft(nbits);
  util::BitReader br(coded);
  for (auto& s : soft) s = static_cast<float>(br.bit());
  // A burst of 40 erased bits.
  const std::size_t burst_at = nbits / 3;
  for (std::size_t i = 0; i < 40; ++i) soft[burst_at + i] = 0.5f;
  const auto decoded = codec.decode(soft, 100);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, payload);
}

TEST(PacketCodec, WithoutInterleaverBurstsAreWorse) {
  // Sanity for the ablation: identical burst, interleaver off, conv-only.
  PacketSpec spec{{fec::ConvCode::kV29, fec::PunctureRate::kRate1_2}, 0, 223, false};
  PacketCodec codec(spec);
  Rng rng(3);
  const Bytes payload = random_bytes(rng, 100);
  const Bytes coded = codec.encode(payload);
  const std::size_t nbits = codec.encoded_bits(100);
  std::vector<float> soft(nbits);
  util::BitReader br(coded);
  for (auto& s : soft) s = static_cast<float>(br.bit());
  // A hard-corrupted burst (inverted, not erased) longer than the Viterbi
  // traceback can bridge without interleaving or RS.
  const std::size_t burst_at = nbits / 2;
  for (std::size_t i = 0; i < 120; ++i) soft[burst_at + i] = 1.0f - soft[burst_at + i];
  EXPECT_FALSE(codec.decode(soft, 100).has_value());
}

TEST(PacketCodec, DetectsCorruptionBeyondFec) {
  PacketCodec codec(PacketSpec{});
  Rng rng(4);
  const Bytes payload = random_bytes(rng, 100);
  const Bytes coded = codec.encode(payload);
  const std::size_t nbits = codec.encoded_bits(100);
  std::vector<float> soft(nbits);
  // Total garbage.
  for (auto& s : soft) s = static_cast<float>(rng.uniform());
  const auto decoded = codec.decode(soft, 100);
  if (decoded.has_value()) {
    // Astronomically unlikely; if FEC "decodes", CRC must have caught it.
    EXPECT_NE(*decoded, payload);
    FAIL() << "garbage decoded as valid packet";
  }
}

TEST(PacketCodec, ExpansionMatchesSpec) {
  // v29 r1/2 + rs(255,223) on 100B payload: (104+32)*2*8 bits + flush.
  PacketCodec codec(PacketSpec{{fec::ConvCode::kV29, fec::PunctureRate::kRate1_2}, 32, 223, true});
  EXPECT_EQ(codec.encoded_bits(100), ((100 + 4 + 32) * 8 + 8) * 2u);
  EXPECT_NEAR(codec.expansion(100), 2.73, 0.02);
}

TEST(Crc16, KnownVector) {
  const std::string s = "123456789";
  const std::vector<std::uint8_t> data(s.begin(), s.end());
  EXPECT_EQ(crc16_ccitt(data), 0x29b1);  // CRC-16/CCITT-FALSE check value
}

// -------------------------------------------------------------- Profiles ---

TEST(Profiles, Sonic10kMatchesPaperParameters) {
  const auto p = *profiles::get("sonic-10k");
  EXPECT_EQ(p.num_subcarriers, 92);         // §3.3: 92 subcarriers
  EXPECT_NEAR(p.carrier_hz, 9200.0, 1.0);   // §4: 9.2 kHz carrier
  EXPECT_EQ(p.conv.code, fec::ConvCode::kV29);
  EXPECT_GT(p.rs_nroots, 0);
  // The paper's headline rate: ~10 kbps net.
  EXPECT_GE(p.net_bit_rate(100, 16), 9500.0);
  EXPECT_LE(p.net_bit_rate(100, 16), 12000.0);
}

TEST(Profiles, BandFitsFmMonoChannel) {
  // §4: mono channel spans 30 Hz - 15 kHz.
  for (const auto& p : profiles::all()) {
    const double lo = p.first_bin() * p.subcarrier_spacing_hz();
    const double hi = (p.first_bin() + p.num_subcarriers) * p.subcarrier_spacing_hz();
    EXPECT_GT(lo, 30.0) << p.name;
    EXPECT_LT(hi, 15000.0) << p.name;
  }
}

TEST(Profiles, RateLadderIsOrdered) {
  EXPECT_LT(profiles::get("robust-2k")->net_bit_rate(), profiles::get("audible-7k")->net_bit_rate());
  EXPECT_LT(profiles::get("audible-7k")->net_bit_rate(), profiles::get("sonic-10k")->net_bit_rate());
  EXPECT_LT(profiles::get("sonic-10k")->net_bit_rate(), profiles::get("cable-64k")->net_bit_rate(1000, 8));
  // Quiet's cable claim: tens of kbps over the audio jack.
  EXPECT_GT(profiles::get("cable-64k")->net_bit_rate(1000, 8), 40000.0);
}

TEST(ProfileRegistry, BuiltinsRegisteredSlowestFirst) {
  const auto names = profiles::names();
  ASSERT_GE(names.size(), 4u);
  EXPECT_EQ(names[0], "robust-2k");
  EXPECT_EQ(names[1], "audible-7k");
  EXPECT_EQ(names[2], "sonic-10k");
  EXPECT_EQ(names[3], "cable-64k");
  const auto all = profiles::all();
  ASSERT_EQ(all.size(), names.size());
  for (std::size_t i = 0; i < all.size(); ++i) EXPECT_EQ(all[i].name, names[i]);
}

// The deprecated free-function wrappers must keep returning the registry's
// rungs until they are removed. This is the one deliberate call site; every
// other caller has migrated to profiles::get()/profiles::all().
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
TEST(ProfileRegistry, DeprecatedWrappersStillMatchRegistry) {
  EXPECT_EQ(profile_sonic10k().name, profiles::get("sonic-10k")->name);
  EXPECT_EQ(profile_audible7k().name, profiles::get("audible-7k")->name);
  EXPECT_EQ(profile_robust2k().name, profiles::get("robust-2k")->name);
  EXPECT_EQ(profile_cable64k().name, profiles::get("cable-64k")->name);
  EXPECT_EQ(all_profiles().size(), profiles::all().size());
}
#pragma GCC diagnostic pop

TEST(ProfileRegistry, LookupIsLooseOnPunctuationAndCase) {
  ASSERT_TRUE(profiles::get("sonic-10k").has_value());
  ASSERT_TRUE(profiles::get("sonic10k").has_value());
  ASSERT_TRUE(profiles::get("SONIC 10K").has_value());
  EXPECT_EQ(profiles::get("sonic10k")->name, "sonic-10k");
  EXPECT_EQ(profiles::get("sonic10k")->net_bit_rate(100, 16),
            profiles::get("sonic-10k")->net_bit_rate(100, 16));
  EXPECT_FALSE(profiles::get("warp-1m").has_value());
  EXPECT_FALSE(profiles::get("").has_value());
}

TEST(ProfileRegistry, RegisterCustomRung) {
  OfdmProfile custom = *profiles::get("robust-2k");
  custom.name = "test-custom-900";
  custom.constellation = Constellation::kQpsk;
  profiles::register_profile(custom);
  const auto fetched = profiles::get("testcustom900");
  ASSERT_TRUE(fetched.has_value());
  EXPECT_EQ(fetched->name, "test-custom-900");
  // Re-registering under the same loose key replaces, not duplicates.
  const auto count_before = profiles::names().size();
  custom.rs_nroots = 8;
  profiles::register_profile(custom);
  EXPECT_EQ(profiles::names().size(), count_before);
  EXPECT_EQ(profiles::get("test-custom-900")->rs_nroots, 8);

  OfdmProfile unnamed = custom;
  unnamed.name = "--- ---";
  EXPECT_THROW(profiles::register_profile(unnamed), std::invalid_argument);
}

// ------------------------------------------------------------------ OFDM ---

class OfdmLoopbackTest : public ::testing::TestWithParam<int> {};

TEST_P(OfdmLoopbackTest, CleanLoopbackAllProfiles) {
  const auto profiles = profiles::all();
  const auto& profile = profiles[static_cast<std::size_t>(GetParam())];
  OfdmModem modem(profile);
  Rng rng(10);
  std::vector<Bytes> frames;
  for (int i = 0; i < 5; ++i) frames.push_back(random_bytes(rng, 100));
  auto samples = modem.modulate(frames);
  // Prepend/append silence so sync must actually find the burst.
  std::vector<float> stream(2000, 0.0f);
  stream.insert(stream.end(), samples.begin(), samples.end());
  stream.insert(stream.end(), 3000, 0.0f);
  const auto burst = modem.receive_one(stream);
  ASSERT_TRUE(burst.has_value()) << profile.name;
  ASSERT_EQ(burst->frames.size(), frames.size());
  for (std::size_t i = 0; i < frames.size(); ++i) {
    ASSERT_TRUE(burst->frames[i].has_value()) << profile.name << " frame " << i;
    EXPECT_EQ(*burst->frames[i], frames[i]);
  }
  EXPECT_EQ(burst->frame_loss_rate(), 0.0);
  EXPECT_GT(burst->snr_db, 15.0f);
}

INSTANTIATE_TEST_SUITE_P(AllProfiles, OfdmLoopbackTest, ::testing::Values(0, 1, 2, 3),
                         [](const auto& info) {
                           std::string name = profiles::all()[static_cast<std::size_t>(info.param)].name;
                           for (auto& c : name) {
                             if (c == '-') c = '_';
                           }
                           return name;
                         });

TEST(Ofdm, NoisyLoopbackSonic10k) {
  OfdmModem modem(*profiles::get("sonic-10k"));
  Rng rng(11);
  std::vector<Bytes> frames;
  for (int i = 0; i < 10; ++i) frames.push_back(random_bytes(rng, 100));
  auto samples = modem.modulate(frames);
  add_awgn(samples, 30.0, rng);
  const auto burst = modem.receive_one(samples);
  ASSERT_TRUE(burst.has_value());
  EXPECT_EQ(burst->frames_ok(), frames.size());
}

TEST(Ofdm, RobustProfileSurvivesLowSnr) {
  OfdmModem modem(*profiles::get("robust-2k"));
  Rng rng(12);
  std::vector<Bytes> frames;
  for (int i = 0; i < 4; ++i) frames.push_back(random_bytes(rng, 100));
  auto samples = modem.modulate(frames);
  add_awgn(samples, 12.0, rng);
  const auto burst = modem.receive_one(samples);
  ASSERT_TRUE(burst.has_value());
  EXPECT_EQ(burst->frames_ok(), frames.size());
}

TEST(Ofdm, HighOrderProfileDiesAtLowSnrButRobustLives) {
  // The rate/robustness trade the profile ladder encodes.
  Rng rng(13);
  std::vector<Bytes> frames;
  for (int i = 0; i < 4; ++i) frames.push_back(random_bytes(rng, 100));

  OfdmModem fast(*profiles::get("sonic-10k"));
  auto noisy = fast.modulate(frames);
  add_awgn(noisy, 10.0, rng);
  const auto fast_burst = fast.receive_one(noisy);
  const std::size_t fast_ok = fast_burst ? fast_burst->frames_ok() : 0;
  EXPECT_LT(fast_ok, frames.size());
}

TEST(Ofdm, ReceiveAllFindsMultipleBursts) {
  OfdmModem modem(*profiles::get("sonic-10k"));
  Rng rng(14);
  std::vector<float> stream(1000, 0.0f);
  std::vector<std::vector<Bytes>> sent;
  for (int b = 0; b < 3; ++b) {
    std::vector<Bytes> frames;
    for (int i = 0; i < 3; ++i) frames.push_back(random_bytes(rng, 50));
    sent.push_back(frames);
    const auto s = modem.modulate(frames);
    stream.insert(stream.end(), s.begin(), s.end());
    stream.insert(stream.end(), 500, 0.0f);
  }
  const auto bursts = modem.receive_all(stream);
  ASSERT_EQ(bursts.size(), 3u);
  for (std::size_t b = 0; b < 3; ++b) {
    ASSERT_EQ(bursts[b].frames.size(), 3u);
    for (std::size_t i = 0; i < 3; ++i) {
      ASSERT_TRUE(bursts[b].frames[i].has_value());
      EXPECT_EQ(*bursts[b].frames[i], sent[b][i]);
    }
  }
}

TEST(Ofdm, PreambleAtOffsetZeroDecodes) {
  // No leading silence at all: the burst begins at sample 0, so the fine
  // timing search ranges over negative candidates.
  OfdmModem modem(*profiles::get("sonic-10k"));
  Rng rng(16);
  std::vector<Bytes> frames;
  for (int i = 0; i < 3; ++i) frames.push_back(random_bytes(rng, 80));
  auto samples = modem.modulate(frames);
  samples.insert(samples.end(), 3000, 0.0f);
  const auto burst = modem.receive_one(samples);
  ASSERT_TRUE(burst.has_value());
  EXPECT_EQ(burst->start_sample, 0u);
  EXPECT_EQ(burst->frames_ok(), frames.size());
}

TEST(Ofdm, TruncatedLeadingPrefixDoesNotUnderflowBurstStart) {
  // Regression: a stream cut a few samples into preamble A's cyclic prefix
  // puts the true burst start before sample 0. The fine-timing candidate for
  // that position used to compute start = b_start - sym with b_start < sym,
  // wrapping size_t to ~2^64 and decoding a burst with a garbage
  // start_sample. Such candidates are now clamped out, and the closest legal
  // alignment (a few samples late, inside the CP backoff) decodes instead.
  OfdmModem modem(*profiles::get("sonic-10k"));
  Rng rng(17);
  std::vector<Bytes> frames;
  for (int i = 0; i < 3; ++i) frames.push_back(random_bytes(rng, 80));
  auto samples = modem.modulate(frames);
  samples.insert(samples.end(), 3000, 0.0f);
  const auto chopped = std::span(samples).subspan(5);
  const auto burst = modem.receive_one(chopped);
  if (burst.has_value()) {
    EXPECT_LE(burst->start_sample, chopped.size());
    EXPECT_LE(burst->end_sample, chopped.size());
    EXPECT_EQ(burst->frames_ok(), frames.size());
  }
}

TEST(Ofdm, SilenceYieldsNothing) {
  OfdmModem modem(*profiles::get("sonic-10k"));
  std::vector<float> silence(50000, 0.0f);
  EXPECT_FALSE(modem.receive_one(silence).has_value());
}

TEST(Ofdm, PureNoiseYieldsNothing) {
  OfdmModem modem(*profiles::get("sonic-10k"));
  Rng rng(15);
  std::vector<float> noise(60000);
  for (auto& s : noise) s = static_cast<float>(rng.normal(0.0, 0.1));
  const auto burst = modem.receive_one(noise);
  if (burst.has_value()) {
    // A false sync is tolerable only if every frame is rejected.
    EXPECT_EQ(burst->frames_ok(), 0u);
  }
}

TEST(Ofdm, AmplitudeScalingTolerance) {
  // Automatic gain: the receiver must handle attenuated signals.
  OfdmModem modem(*profiles::get("sonic-10k"));
  Rng rng(16);
  std::vector<Bytes> frames{random_bytes(rng, 100)};
  auto samples = modem.modulate(frames);
  for (auto& s : samples) s *= 0.05f;  // -26 dB
  const auto burst = modem.receive_one(samples);
  ASSERT_TRUE(burst.has_value());
  EXPECT_EQ(burst->frames_ok(), 1u);
}

TEST(Ofdm, TimingOffsetHalfSymbolStillSyncs) {
  OfdmModem modem(*profiles::get("sonic-10k"));
  Rng rng(17);
  std::vector<Bytes> frames{random_bytes(rng, 100)};
  const auto samples = modem.modulate(frames);
  // Odd, non-round prefix length.
  std::vector<float> stream(777, 0.0f);
  stream.insert(stream.end(), samples.begin(), samples.end());
  const auto burst = modem.receive_one(stream);
  ASSERT_TRUE(burst.has_value());
  EXPECT_EQ(burst->frames_ok(), 1u);
  EXPECT_NEAR(static_cast<double>(burst->start_sample), 777.0, 4.0);
}

TEST(Ofdm, BurstSamplesMatchesModulateOutput) {
  OfdmModem modem(*profiles::get("sonic-10k"));
  Rng rng(18);
  for (std::size_t count : {1u, 7u}) {
    std::vector<Bytes> frames;
    for (std::size_t i = 0; i < count; ++i) frames.push_back(random_bytes(rng, 100));
    EXPECT_EQ(modem.modulate(frames).size(), modem.burst_samples(100, count));
  }
}

TEST(Ofdm, RejectsMalformedBursts) {
  OfdmModem modem(*profiles::get("sonic-10k"));
  EXPECT_THROW(modem.modulate({}), std::invalid_argument);
  EXPECT_THROW(modem.modulate({Bytes{}}), std::invalid_argument);
  EXPECT_THROW(modem.modulate({Bytes{1, 2}, Bytes{1, 2, 3}}), std::invalid_argument);
}

// ------------------------------------------------------------------- FSK ---

TEST(Fsk, CleanRoundTrip) {
  FskModem modem(FskProfile{});
  Rng rng(20);
  const Bytes payload = random_bytes(rng, 32);
  auto samples = modem.modulate(payload);
  std::vector<float> stream(1234, 0.0f);
  stream.insert(stream.end(), samples.begin(), samples.end());
  const auto decoded = modem.demodulate(stream);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, payload);
}

TEST(Fsk, NoisyRoundTrip) {
  FskModem modem(FskProfile{});
  Rng rng(21);
  const Bytes payload = random_bytes(rng, 16);
  auto samples = modem.modulate(payload);
  add_awgn(samples, 15.0, rng);
  const auto decoded = modem.demodulate(samples);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, payload);
}

TEST(Fsk, CrcRejectsHeavyCorruption) {
  FskModem modem(FskProfile{});
  Rng rng(22);
  const Bytes payload = random_bytes(rng, 16);
  auto samples = modem.modulate(payload);
  // Obliterate the data section (keep the preamble so sync works): the
  // decoder will read random symbols and the CRC must reject them.
  const std::size_t data_start = static_cast<std::size_t>(modem.profile().samples_per_symbol()) * 8;
  for (std::size_t i = data_start; i < samples.size(); ++i) {
    samples[i] = static_cast<float>(rng.normal(0.0, 0.5));
  }
  const auto decoded = modem.demodulate(samples);
  if (decoded.has_value()) {
    EXPECT_NE(*decoded, payload) << "CRC must catch corruption";
  }
}

TEST(Fsk, RateIsOrdersOfMagnitudeBelowOfdm) {
  // The motivating comparison from the paper's §2: GGwave-class FSK is
  // hundreds of bps; the OFDM profile is ~10 kbps.
  FskProfile fsk;
  EXPECT_LT(fsk.bit_rate(), 1000.0);
  EXPECT_GT(profiles::get("sonic-10k")->net_bit_rate(), 10.0 * fsk.bit_rate());
}

TEST(Fsk, RejectsBadProfiles) {
  FskProfile p;
  p.num_tones = 12;  // not a power of two
  EXPECT_THROW(FskModem{p}, std::invalid_argument);
  FskProfile q;
  q.base_hz = 21000;
  q.num_tones = 16;
  q.tone_spacing_hz = 200;
  EXPECT_THROW(FskModem{q}, std::invalid_argument);
}

}  // namespace
}  // namespace sonic::modem
