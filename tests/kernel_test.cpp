// Kernel-equivalence suite for the receiver hot-path optimization pass
// (run with `ctest -L kernel`): every optimized kernel is checked against
// its kept reference implementation —
//
//  * FftPlan vs. the legacy twiddle-recurrence kernel vs. dft_naive ground
//    truth, including the accuracy-drift regression the tables fix;
//  * branchless/word-packed Viterbi vs. the scalar per-state loop,
//    byte-identical across both codes and all puncture rates under noise;
//  * word-wide fountain xor_into vs. the byte loop on odd/unaligned spans;
//  * contiguous-window FirFilter vs. the ring-buffer reference;
//
// plus the allocation-free guarantee for the OFDM steady-state symbol path,
// verified with a real global operator new counter.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdlib>
#include <new>
#include <thread>
#include <vector>

#include "dsp/fft.hpp"
#include "dsp/fir.hpp"
#include "fec/convolutional.hpp"
#include "fec/fountain.hpp"
#include "modem/ofdm.hpp"
#include "modem/profile.hpp"
#include "util/rng.hpp"

// ------------------------------------------------------ allocation probe ---
// Counts every global operator new in this test binary. The steady-state
// OFDM symbol path must not allocate (paper §5's feature-phone CPU/memory
// budget), and "must not" is enforced here, not claimed.

namespace {
std::atomic<std::size_t> g_alloc_count{0};
}  // namespace

void* operator new(std::size_t size) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) { return ::operator new(size); }

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace sonic {
namespace {

using util::Rng;

std::vector<dsp::cplx> random_signal(Rng& rng, std::size_t n) {
  std::vector<dsp::cplx> v(n);
  for (auto& x : v) x = dsp::cplx(static_cast<float>(rng.normal()), static_cast<float>(rng.normal()));
  return v;
}

// ------------------------------------------------------------------- FFT ---

// Max |error| relative to the spectrum's peak magnitude, against the
// double-precision naive DFT.
double rel_error_vs_naive(const std::vector<dsp::cplx>& sig,
                          void (*transform)(std::span<dsp::cplx>)) {
  const auto truth = dsp::dft_naive(sig);
  auto actual = sig;
  transform(actual);
  double scale = 0, err = 0;
  for (std::size_t i = 0; i < sig.size(); ++i) {
    scale = std::max(scale, static_cast<double>(std::abs(truth[i])));
    err = std::max(err, static_cast<double>(std::abs(actual[i] - truth[i])));
  }
  return err / scale;
}

// The table-driven plan holds ~1e-7 relative error at every size; the
// legacy twiddle recurrence drifts with N (~2e-6 at 1024, ~2e-5 at 4096)
// and fails this tolerance — the accuracy bug the plan fixes.
TEST(FftAccuracy, PlanPassesTightToleranceRecurrenceDrifts) {
  constexpr double kTol = 1e-6;
  Rng rng(11);
  for (std::size_t n : {std::size_t{1024}, std::size_t{4096}}) {
    const auto sig = random_signal(rng, n);
    const double plan_err = rel_error_vs_naive(sig, &dsp::fft);
    const double rec_err = rel_error_vs_naive(sig, &dsp::fft_recurrence);
    EXPECT_LT(plan_err, kTol) << "plan drifted at n=" << n;
    EXPECT_GT(rec_err, plan_err) << "n=" << n;
    if (n >= 4096) {
      EXPECT_GT(rec_err, kTol) << "recurrence unexpectedly accurate at n=" << n
                               << " (tighten the tolerance?)";
    }
  }
}

TEST(FftPlan, MatchesLegacyForwardWithinTolerance) {
  Rng rng(12);
  for (std::size_t n : {std::size_t{64}, std::size_t{256}, std::size_t{1024}}) {
    const auto sig = random_signal(rng, n);
    auto plan_out = sig;
    auto legacy_out = sig;
    dsp::FftPlan::get(n)->forward(plan_out);
    dsp::fft_recurrence(legacy_out);
    double scale = 0;
    for (const auto& x : plan_out) scale = std::max(scale, static_cast<double>(std::abs(x)));
    for (std::size_t i = 0; i < n; ++i) {
      ASSERT_NEAR(std::abs(plan_out[i] - legacy_out[i]) / scale, 0.0, 1e-5) << "n=" << n << " i=" << i;
    }
  }
}

TEST(FftPlan, RoundTripRecoversSignal) {
  Rng rng(13);
  const auto plan = dsp::FftPlan::get(2048);
  auto sig = random_signal(rng, 2048);
  auto copy = sig;
  plan->forward(copy);
  plan->inverse(copy);
  for (std::size_t i = 0; i < sig.size(); ++i) {
    ASSERT_NEAR(copy[i].real(), sig[i].real(), 1e-3);
    ASSERT_NEAR(copy[i].imag(), sig[i].imag(), 1e-3);
  }
}

TEST(FftPlan, CacheReturnsSharedInstanceAcrossThreads) {
  const auto base = dsp::FftPlan::get(512);
  std::vector<std::shared_ptr<const dsp::FftPlan>> seen(8);
  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < seen.size(); ++t) {
    threads.emplace_back([&, t] { seen[t] = dsp::FftPlan::get(512); });
  }
  for (auto& th : threads) th.join();
  for (const auto& p : seen) EXPECT_EQ(p.get(), base.get());
}

TEST(FftPlan, RejectsBadSizes) {
  EXPECT_THROW(dsp::FftPlan(100), std::invalid_argument);
  std::vector<dsp::cplx> wrong(256);
  EXPECT_THROW(dsp::FftPlan::get(512)->forward(wrong), std::invalid_argument);
}

// --------------------------------------------------------------- Viterbi ---

TEST(ViterbiEquivalence, ByteIdenticalAcrossCodesAndRatesUnderNoise) {
  Rng rng(21);
  for (fec::ConvCode code : {fec::ConvCode::kV27, fec::ConvCode::kV29}) {
    for (fec::PunctureRate rate :
         {fec::PunctureRate::kRate1_2, fec::PunctureRate::kRate2_3, fec::PunctureRate::kRate3_4}) {
      fec::ConvolutionalCodec codec({code, rate});
      for (int trial = 0; trial < 4; ++trial) {
        const std::size_t payload = 64;
        util::Bytes data(payload);
        for (auto& b : data) b = static_cast<std::uint8_t>(rng.uniform_int(256));
        const auto coded = codec.encode(data);
        std::vector<float> soft(codec.encoded_bits(payload));
        util::BitReader br(coded);
        for (auto& s : soft) {
          // Noisy soft bits: enough noise that survivor choices genuinely
          // differ between branches, clamped to the decoder's [0,1] domain.
          const float noisy = static_cast<float>(br.bit()) + static_cast<float>(rng.normal(0.0, 0.25));
          s = std::min(1.0f, std::max(0.0f, noisy));
        }
        const auto fast = codec.decode_soft(soft, payload);
        const auto ref = codec.decode_soft_reference(soft, payload);
        ASSERT_EQ(fast, ref) << "code=" << static_cast<int>(code)
                             << " rate=" << static_cast<int>(rate) << " trial=" << trial;
      }
    }
  }
}

TEST(ViterbiEquivalence, CleanRoundTripStillDecodes) {
  Rng rng(22);
  fec::ConvolutionalCodec codec({fec::ConvCode::kV29, fec::PunctureRate::kRate1_2});
  util::Bytes data(100);
  for (auto& b : data) b = static_cast<std::uint8_t>(rng.uniform_int(256));
  const auto coded = codec.encode(data);
  EXPECT_EQ(codec.decode_hard(coded, data.size()), data);
}

// ----------------------------------------------------------- fountain XOR ---

TEST(XorIntoEquivalence, WordWideMatchesByteLoopOnOddAndUnalignedSpans) {
  Rng rng(31);
  // A shared backing buffer lets us slice at every alignment offset.
  std::vector<std::uint8_t> backing(4200);
  for (auto& b : backing) b = static_cast<std::uint8_t>(rng.uniform_int(256));
  for (std::size_t offset : {std::size_t{0}, std::size_t{1}, std::size_t{3}, std::size_t{7}}) {
    for (std::size_t len : {std::size_t{0}, std::size_t{1}, std::size_t{7}, std::size_t{8},
                            std::size_t{9}, std::size_t{63}, std::size_t{64}, std::size_t{65},
                            std::size_t{200}, std::size_t{1031}}) {
      util::Bytes dst_fast(backing.begin(), backing.begin() + static_cast<long>(len));
      util::Bytes dst_ref = dst_fast;
      const std::span<const std::uint8_t> src(backing.data() + offset, len);
      fec::xor_into(dst_fast, src);
      fec::xor_into_reference(dst_ref, src);
      ASSERT_EQ(dst_fast, dst_ref) << "offset=" << offset << " len=" << len;
    }
  }
}

TEST(XorIntoEquivalence, SelfInverse) {
  Rng rng(32);
  util::Bytes a(313), b(313);
  for (auto& x : a) x = static_cast<std::uint8_t>(rng.uniform_int(256));
  for (auto& x : b) x = static_cast<std::uint8_t>(rng.uniform_int(256));
  const util::Bytes orig = a;
  fec::xor_into(a, b);
  fec::xor_into(a, b);
  EXPECT_EQ(a, orig);
}

// ------------------------------------------------------------------- FIR ---

TEST(FirEquivalence, BlockPathMatchesRingReference) {
  Rng rng(41);
  const auto taps = dsp::design_lowpass(6000.0, 44100.0, 63);
  std::vector<float> x(5000);
  for (auto& v : x) v = static_cast<float>(rng.normal());
  dsp::FirFilter f(taps);
  const auto fast = f.process(x);
  const auto ref = dsp::fir_reference(taps, x);
  ASSERT_EQ(fast.size(), ref.size());
  for (std::size_t i = 0; i < fast.size(); ++i) ASSERT_NEAR(fast[i], ref[i], 1e-4) << i;
}

TEST(FirEquivalence, PerSampleAndBlockCallsAreBitIdentical) {
  Rng rng(42);
  const auto taps = dsp::design_lowpass(8000.0, 44100.0, 31);
  std::vector<float> x(1000);
  for (auto& v : x) v = static_cast<float>(rng.normal());
  dsp::FirFilter block(taps);
  dsp::FirFilter mixed(taps);
  const auto expect = block.process(x);
  // Interleave per-sample and block calls over the same stream.
  std::vector<float> got;
  std::size_t pos = 0;
  while (pos < x.size()) {
    if (rng.bernoulli(0.5)) {
      got.push_back(mixed.process(x[pos]));
      ++pos;
    } else {
      const std::size_t len = std::min<std::size_t>(1 + rng.uniform_int(97), x.size() - pos);
      const auto out = mixed.process(std::span(x).subspan(pos, len));
      got.insert(got.end(), out.begin(), out.end());
      pos += len;
    }
  }
  ASSERT_EQ(got.size(), expect.size());
  for (std::size_t i = 0; i < got.size(); ++i) ASSERT_EQ(got[i], expect[i]) << i;
}

// ------------------------------------------- OFDM allocation-free symbols ---

TEST(OfdmSymbolPath, SteadyStateAnalyzeAndSynthesizeDoNotAllocate) {
  modem::OfdmModem modem(*modem::profiles::get("sonic-10k"));
  Rng rng(51);
  std::vector<float> audio(static_cast<std::size_t>(modem.profile().fft_size) * 8);
  for (auto& s : audio) s = static_cast<float>(rng.uniform(-0.5, 0.5));
  std::vector<dsp::cplx> carriers(static_cast<std::size_t>(modem.profile().num_subcarriers),
                                  dsp::cplx(0.7f, -0.7f));
  std::vector<float> symbol;

  // Warm up: first calls may size the modem scratch and the output vector.
  modem::OfdmKernelProbe::synthesize(modem, carriers, symbol);
  (void)modem::OfdmKernelProbe::analyze(modem, audio, 0);

  const std::size_t before = g_alloc_count.load();
  for (int i = 0; i < 200; ++i) {
    (void)modem::OfdmKernelProbe::analyze(modem, audio, static_cast<std::size_t>(i));
    modem::OfdmKernelProbe::synthesize(modem, carriers, symbol);
  }
  const std::size_t after = g_alloc_count.load();
  EXPECT_EQ(after, before) << "steady-state symbol path allocated "
                           << (after - before) << " times in 400 kernel calls";
}

}  // namespace
}  // namespace sonic
