#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "dsp/biquad.hpp"
#include "dsp/fft.hpp"
#include "dsp/fir.hpp"
#include "dsp/goertzel.hpp"
#include "dsp/resampler.hpp"
#include "dsp/window.hpp"
#include "util/rng.hpp"
#include "util/units.hpp"

namespace sonic::dsp {
namespace {

using sonic::util::kPi;
using sonic::util::kTwoPi;
using sonic::util::Rng;

std::vector<cplx> random_signal(Rng& rng, std::size_t n) {
  std::vector<cplx> v(n);
  for (auto& x : v) x = cplx(static_cast<float>(rng.normal()), static_cast<float>(rng.normal()));
  return v;
}

// ------------------------------------------------------------------ FFT ---

TEST(Fft, MatchesNaiveDft) {
  Rng rng(1);
  for (std::size_t n : {2u, 8u, 64u, 256u}) {
    auto sig = random_signal(rng, n);
    const auto expected = dft_naive(sig);
    auto actual = sig;
    fft(actual);
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_NEAR(actual[i].real(), expected[i].real(), 1e-2) << "n=" << n << " bin=" << i;
      EXPECT_NEAR(actual[i].imag(), expected[i].imag(), 1e-2);
    }
  }
}

TEST(Fft, InverseRecoversSignal) {
  Rng rng(2);
  auto sig = random_signal(rng, 1024);
  auto copy = sig;
  fft(copy);
  ifft(copy);
  for (std::size_t i = 0; i < sig.size(); ++i) {
    EXPECT_NEAR(copy[i].real(), sig[i].real(), 1e-3);
    EXPECT_NEAR(copy[i].imag(), sig[i].imag(), 1e-3);
  }
}

TEST(Fft, ParsevalHolds) {
  Rng rng(3);
  auto sig = random_signal(rng, 512);
  double time_energy = 0;
  for (const auto& x : sig) time_energy += std::norm(x);
  auto freq = sig;
  fft(freq);
  double freq_energy = 0;
  for (const auto& x : freq) freq_energy += std::norm(x);
  EXPECT_NEAR(freq_energy / static_cast<double>(sig.size()), time_energy, time_energy * 1e-4);
}

TEST(Fft, PureToneLandsInOneBin) {
  const std::size_t n = 256;
  const std::size_t bin = 19;
  std::vector<cplx> sig(n);
  for (std::size_t t = 0; t < n; ++t) {
    const double ang = kTwoPi * static_cast<double>(bin) * static_cast<double>(t) / static_cast<double>(n);
    sig[t] = cplx(static_cast<float>(std::cos(ang)), static_cast<float>(std::sin(ang)));
  }
  fft(sig);
  for (std::size_t k = 0; k < n; ++k) {
    if (k == bin) {
      EXPECT_NEAR(std::abs(sig[k]), static_cast<double>(n), 1e-2);
    } else {
      EXPECT_LT(std::abs(sig[k]), 1e-2);
    }
  }
}

TEST(Fft, RejectsNonPowerOfTwo) {
  std::vector<cplx> sig(100);
  EXPECT_THROW(fft(sig), std::invalid_argument);
  EXPECT_FALSE(is_power_of_two(0));
  EXPECT_FALSE(is_power_of_two(3));
  EXPECT_TRUE(is_power_of_two(1024));
}

// -------------------------------------------------------------- Windows ---

TEST(Window, EndpointsAndSymmetry) {
  for (auto type : {WindowType::kHann, WindowType::kHamming, WindowType::kBlackman}) {
    const auto w = make_window(type, 65);
    EXPECT_LT(w.front(), 0.1f);
    EXPECT_LT(w.back(), 0.1f);
    EXPECT_NEAR(w[32], 1.0f, 0.01f);
    for (std::size_t i = 0; i < w.size(); ++i) EXPECT_NEAR(w[i], w[w.size() - 1 - i], 1e-5);
  }
  const auto rect = make_window(WindowType::kRect, 16);
  for (float v : rect) EXPECT_EQ(v, 1.0f);
}

// ------------------------------------------------------------------ FIR ---

TEST(Fir, LowpassPassesLowRejectsHigh) {
  const double fs = 44100;
  const auto taps = design_lowpass(5000, fs, 101);
  FirFilter f(taps);
  EXPECT_NEAR(f.magnitude_at(100, fs), 1.0, 0.01);
  EXPECT_NEAR(f.magnitude_at(2000, fs), 1.0, 0.02);
  EXPECT_LT(f.magnitude_at(10000, fs), 0.01);
  EXPECT_LT(f.magnitude_at(20000, fs), 0.01);
}

TEST(Fir, BandpassSelectsBand) {
  const double fs = 44100;
  const auto taps = design_bandpass(7000, 11000, fs, 151);
  FirFilter f(taps);
  EXPECT_NEAR(f.magnitude_at(9000, fs), 1.0, 0.05);
  EXPECT_LT(f.magnitude_at(1000, fs), 0.02);
  EXPECT_LT(f.magnitude_at(16000, fs), 0.02);
}

TEST(Fir, StreamingMatchesConvolution) {
  Rng rng(5);
  std::vector<float> x(300);
  for (auto& v : x) v = static_cast<float>(rng.normal());
  const auto taps = design_lowpass(8000, 44100, 31);
  FirFilter f(taps);
  const auto y = f.process(x);
  // Direct convolution reference.
  for (std::size_t n = 0; n < x.size(); ++n) {
    double acc = 0;
    for (std::size_t k = 0; k < taps.size(); ++k) {
      if (n >= k) acc += static_cast<double>(taps[k]) * static_cast<double>(x[n - k]);
    }
    ASSERT_NEAR(y[n], acc, 1e-4) << "n=" << n;
  }
}

TEST(Fir, ResetClearsState) {
  const auto taps = design_lowpass(8000, 44100, 31);
  FirFilter f(taps);
  f.process(1.0f);
  f.process(-1.0f);
  f.reset();
  // After reset an impulse must reproduce the taps exactly.
  std::vector<float> impulse(taps.size(), 0.0f);
  impulse[0] = 1.0f;
  const auto y = f.process(impulse);
  for (std::size_t i = 0; i < taps.size(); ++i) EXPECT_NEAR(y[i], taps[i], 1e-6);
}

TEST(Fir, RejectsBadDesigns) {
  EXPECT_THROW(design_lowpass(0, 44100, 11), std::invalid_argument);
  EXPECT_THROW(design_lowpass(30000, 44100, 11), std::invalid_argument);
  EXPECT_THROW(design_bandpass(5000, 4000, 44100, 11), std::invalid_argument);
  EXPECT_THROW(FirFilter({}), std::invalid_argument);
}

// --------------------------------------------------------------- Biquad ---

TEST(Biquad, LowpassResponse) {
  const double fs = 44100;
  auto lp = Biquad::lowpass(1000, fs);
  EXPECT_NEAR(lp.magnitude_at(50, fs), 1.0, 0.01);
  EXPECT_NEAR(lp.magnitude_at(1000, fs), 0.7071, 0.03);  // -3 dB at cutoff
  EXPECT_LT(lp.magnitude_at(10000, fs), 0.02);
}

TEST(Biquad, HighpassResponse) {
  const double fs = 44100;
  auto hp = Biquad::highpass(1000, fs);
  EXPECT_LT(hp.magnitude_at(50, fs), 0.01);
  EXPECT_NEAR(hp.magnitude_at(10000, fs), 1.0, 0.02);
}

TEST(Biquad, EmphasisPairIsTransparent) {
  // Pre-emphasis followed by de-emphasis must be ~unity across the band.
  const double fs = 192000;
  auto pre = Biquad::fm_preemphasis(50, fs);
  auto de = Biquad::fm_deemphasis(50, fs);
  for (double f : {100.0, 1000.0, 5000.0, 15000.0}) {
    EXPECT_NEAR(pre.magnitude_at(f, fs) * de.magnitude_at(f, fs), 1.0, 0.01) << f;
  }
  // And pre-emphasis really boosts the highs.
  EXPECT_GT(pre.magnitude_at(15000, fs), 3.0 * pre.magnitude_at(100, fs));
}

// ------------------------------------------------------------ Resampler ---

TEST(Resampler, PreservesSineUpsample) {
  const double in_rate = 44100, out_rate = 192000, f = 1000;
  std::vector<float> in(4410);
  for (std::size_t i = 0; i < in.size(); ++i)
    in[i] = static_cast<float>(std::sin(kTwoPi * f * static_cast<double>(i) / in_rate));
  const auto out = resample(in, in_rate, out_rate);
  EXPECT_NEAR(static_cast<double>(out.size()), in.size() * out_rate / in_rate, 2.0);
  // Compare against the ideal continuous sine (skip edges where the kernel
  // is truncated).
  for (std::size_t i = 100; i + 100 < out.size(); ++i) {
    const double expected = std::sin(kTwoPi * f * static_cast<double>(i) / out_rate);
    ASSERT_NEAR(out[i], expected, 0.02) << i;
  }
}

TEST(Resampler, PreservesSineDownsample) {
  const double in_rate = 192000, out_rate = 44100, f = 3000;
  std::vector<float> in(19200);
  for (std::size_t i = 0; i < in.size(); ++i)
    in[i] = static_cast<float>(std::sin(kTwoPi * f * static_cast<double>(i) / in_rate));
  const auto out = resample(in, in_rate, out_rate);
  for (std::size_t i = 100; i + 100 < out.size(); ++i) {
    const double expected = std::sin(kTwoPi * f * static_cast<double>(i) / out_rate);
    ASSERT_NEAR(out[i], expected, 0.05) << i;
  }
}

TEST(Resampler, TinyClockSkew) {
  // 100 ppm skew, as between two real audio clocks.
  const double ratio = 1.0001;
  Resampler r(ratio);
  std::vector<float> in(10000);
  for (std::size_t i = 0; i < in.size(); ++i)
    in[i] = static_cast<float>(std::sin(kTwoPi * 0.01 * static_cast<double>(i)));
  const auto out = r.process(in);
  EXPECT_EQ(out.size(), static_cast<std::size_t>(10000 * ratio));
  for (std::size_t i = 100; i + 100 < out.size(); ++i) {
    const double expected = std::sin(kTwoPi * 0.01 * static_cast<double>(i) / ratio);
    ASSERT_NEAR(out[i], expected, 0.02);
  }
}

TEST(Resampler, RejectsBadRatio) {
  EXPECT_THROW(Resampler(0.0), std::invalid_argument);
  EXPECT_THROW(Resampler(-1.0), std::invalid_argument);
}

// ------------------------------------------------------------- Goertzel ---

TEST(Goertzel, DetectsTonePresence) {
  const double fs = 44100;
  std::vector<float> sig(2048);
  for (std::size_t i = 0; i < sig.size(); ++i)
    sig[i] = static_cast<float>(std::sin(kTwoPi * 2500 * static_cast<double>(i) / fs));
  EXPECT_NEAR(goertzel_power(sig, 2500, fs), 1.0, 0.1);
  EXPECT_LT(goertzel_power(sig, 7000, fs), 0.01);
}

TEST(Goertzel, DiscriminatesNearbyTones) {
  const double fs = 44100;
  // Two tones 400 Hz apart, window long enough to resolve them.
  std::vector<float> sig(4096);
  for (std::size_t i = 0; i < sig.size(); ++i)
    sig[i] = static_cast<float>(std::sin(kTwoPi * 3000 * static_cast<double>(i) / fs));
  const double on = goertzel_power(sig, 3000, fs);
  const double off = goertzel_power(sig, 3400, fs);
  EXPECT_GT(on, 20 * off);
}

}  // namespace
}  // namespace sonic::dsp
