// Property-style tests: invariants that must hold across swept parameter
// ranges and adversarial (fuzzed) inputs, complementing the per-module
// example-based tests.
#include <gtest/gtest.h>

#include <cmath>
#include <string>

#include "image/column_codec.hpp"
#include "image/dct_codec.hpp"
#include "modem/ofdm.hpp"
#include "modem/profile.hpp"
#include "sms/sms.hpp"
#include "sonic/framing.hpp"
#include "sonic/scheduler.hpp"
#include "util/rng.hpp"
#include "web/corpus.hpp"
#include "web/layout.hpp"

namespace sonic {
namespace {

using sonic::util::Bytes;
using sonic::util::Rng;

// ---------------------------------------------------- column codec sweeps ---

class ColumnCodecQualityTest : public ::testing::TestWithParam<int> {};

TEST_P(ColumnCodecQualityTest, RoundTripAtEveryQuality) {
  const int quality = GetParam();
  Rng rng(static_cast<std::uint64_t>(quality));
  image::Raster img(24, 150);
  for (auto& p : img.pixels()) {
    p = {static_cast<std::uint8_t>(rng.uniform_int(256)),
         static_cast<std::uint8_t>(rng.uniform_int(256)),
         static_cast<std::uint8_t>(rng.uniform_int(256))};
  }
  image::ColumnCodecParams params;
  params.quality = quality;
  const auto segments = image::column_encode(img, params);
  const auto result = image::column_decode(img.width(), img.height(), segments, params);
  EXPECT_EQ(result.coverage(), 1.0) << quality;
  // Reconstruction error bounded by the quantizer step (plus color math).
  const double quality_db = image::psnr(img, result.image);
  EXPECT_GT(quality_db, quality >= 90 ? 28.0 : quality >= 50 ? 20.0 : 9.0) << quality;
  // Higher quality must not hurt PSNR.
}

INSTANTIATE_TEST_SUITE_P(Qualities, ColumnCodecQualityTest,
                         ::testing::Values(1, 5, 10, 25, 50, 75, 90, 100));

TEST(ColumnCodecProperty, DecodeNeverCrashesOnCorruptSegments) {
  // Fuzz: random bytes as segment data, random geometry — must never crash
  // or write out of bounds, only produce unmasked pixels.
  Rng rng(77);
  for (int trial = 0; trial < 200; ++trial) {
    std::vector<image::ColumnSegment> segments;
    const int n = 1 + static_cast<int>(rng.uniform_int(5));
    for (int i = 0; i < n; ++i) {
      image::ColumnSegment seg;
      seg.col = static_cast<std::uint16_t>(rng.uniform_int(40));       // may exceed width
      seg.row0 = static_cast<std::uint16_t>(rng.uniform_int(300));     // may exceed height
      seg.rows = static_cast<std::uint16_t>(rng.uniform_int(400));
      seg.data.resize(rng.uniform_int(120));
      for (auto& b : seg.data) b = static_cast<std::uint8_t>(rng.uniform_int(256));
      segments.push_back(std::move(seg));
    }
    const auto result = image::column_decode(20, 200, segments, {10, 94});
    EXPECT_EQ(result.mask.size(), 20u * 200u);
  }
}

// ------------------------------------------------------------ swebp fuzz ---

TEST(SwebpProperty, DecoderSurvivesBitFlips) {
  Rng rng(5);
  image::Raster img(40, 40);
  for (auto& p : img.pixels()) {
    p = {static_cast<std::uint8_t>(rng.uniform_int(256)), 128, 30};
  }
  const auto clean = image::swebp_encode(img, 40);
  for (int trial = 0; trial < 300; ++trial) {
    auto corrupt = clean;
    const int flips = 1 + static_cast<int>(rng.uniform_int(8));
    for (int i = 0; i < flips; ++i) {
      corrupt[rng.uniform_int(corrupt.size())] ^= static_cast<std::uint8_t>(1u << rng.uniform_int(8));
    }
    // Must not crash; may fail or return a damaged image.
    (void)image::swebp_decode(corrupt);
  }
}

// --------------------------------------------------------- framing fuzz ---

TEST(FramingProperty, AssemblerSurvivesArbitraryFrames) {
  Rng rng(11);
  core::PageAssembler assembler;
  for (int trial = 0; trial < 500; ++trial) {
    Bytes frame(core::kFrameSize);
    for (auto& b : frame) b = static_cast<std::uint8_t>(rng.uniform_int(256));
    assembler.push(frame);  // random headers: must never crash or overflow
  }
  // Whatever pages it believes it saw must assemble (or refuse) cleanly.
  for (std::uint32_t id : assembler.known_pages()) {
    (void)assembler.assemble(id, image::InterpolationMode::kLeft);
  }
}

TEST(FramingProperty, WrongSizedFramesAreIgnored) {
  core::PageAssembler assembler;
  assembler.push(Bytes(10, 0));
  assembler.push(Bytes(1000, 0));
  assembler.push(Bytes{});
  EXPECT_TRUE(assembler.known_pages().empty());
}

// ---------------------------------------------------- scheduler invariants ---

TEST(SchedulerProperty, ByteConservation) {
  // At every step: completed + backlog <= enqueued, and the gap (bytes of
  // the in-flight item already on air) is bounded by one item. After a full
  // drain, every enqueued byte must be accounted as completed.
  Rng rng(13);
  core::BroadcastScheduler sched({12000.0, 1});
  double enqueued = 0, completed = 0, max_item = 0;
  double now = 0;
  for (int step = 0; step < 400; ++step) {
    if (rng.bernoulli(0.4)) {
      const std::size_t bytes = 100 + rng.uniform_int(50000);
      sched.enqueue("x", bytes, now, static_cast<int>(rng.uniform_int(3)));
      enqueued += static_cast<double>(bytes);
      max_item = std::max(max_item, static_cast<double>(bytes));
    }
    now += rng.uniform(1.0, 30.0);
    for (const auto& item : sched.advance(now)) completed += static_cast<double>(item.bytes);
    const double accounted = completed + sched.backlog_bytes();
    ASSERT_LE(accounted, enqueued + 1.0) << "step " << step;
    ASSERT_GE(accounted, enqueued - max_item - 1.0) << "step " << step;
  }
  for (const auto& item : sched.advance(now + 1e7)) completed += static_cast<double>(item.bytes);
  EXPECT_NEAR(completed, enqueued, 1.0);
  EXPECT_NEAR(sched.backlog_bytes(), 0.0, 1e-6);
}

TEST(SchedulerProperty, CompletionTimesMonotoneAndCausal) {
  Rng rng(17);
  core::BroadcastScheduler sched({9000.0, 2});
  for (int i = 0; i < 30; ++i) {
    sched.enqueue("p" + std::to_string(i), 1000 + rng.uniform_int(20000), static_cast<double>(i));
  }
  double prev = 0;
  for (const auto& item : sched.advance(1e6)) {
    EXPECT_GE(item.completed_at_s, prev);
    EXPECT_GE(item.completed_at_s, item.enqueued_at_s);
    prev = item.completed_at_s;
  }
  EXPECT_NEAR(sched.backlog_bytes(), 0.0, 1e-6);
}

// ------------------------------------------------------- modem robustness ---

class OfdmFrameSizeTest : public ::testing::TestWithParam<int> {};

TEST_P(OfdmFrameSizeTest, LoopbackAcrossFrameSizes) {
  const int frame_len = GetParam();
  modem::OfdmModem modem(*modem::profiles::get("sonic-10k"));
  Rng rng(static_cast<std::uint64_t>(frame_len));
  std::vector<Bytes> frames;
  for (int i = 0; i < 3; ++i) {
    Bytes f(static_cast<std::size_t>(frame_len));
    for (auto& b : f) b = static_cast<std::uint8_t>(rng.uniform_int(256));
    frames.push_back(std::move(f));
  }
  const auto audio = modem.modulate(frames);
  const auto burst = modem.receive_one(audio);
  ASSERT_TRUE(burst.has_value()) << frame_len;
  EXPECT_EQ(burst->frames_ok(), 3u) << frame_len;
}

INSTANTIATE_TEST_SUITE_P(FrameSizes, OfdmFrameSizeTest, ::testing::Values(1, 7, 50, 100, 333, 1000));

TEST(OfdmProperty, ReceiverSurvivesTruncatedStreams) {
  modem::OfdmModem modem(*modem::profiles::get("sonic-10k"));
  Rng rng(23);
  std::vector<Bytes> frames;
  for (int i = 0; i < 4; ++i) {
    Bytes f(100);
    for (auto& b : f) b = static_cast<std::uint8_t>(rng.uniform_int(256));
    frames.push_back(std::move(f));
  }
  const auto audio = modem.modulate(frames);
  // Cut the stream at arbitrary points: never crash, never report a frame
  // that fails its CRC as valid.
  for (double frac : {0.1, 0.3, 0.5, 0.7, 0.9}) {
    std::vector<float> cut(audio.begin(),
                           audio.begin() + static_cast<std::ptrdiff_t>(audio.size() * frac));
    const auto burst = modem.receive_one(cut);
    if (burst) {
      for (std::size_t i = 0; i < burst->frames.size(); ++i) {
        if (burst->frames[i].has_value()) {
          EXPECT_EQ(*burst->frames[i], frames[i]);
        }
      }
    }
  }
}

// ------------------------------------------------------------ corpus sweep ---

TEST(CorpusProperty, EveryPageParsesRendersAndHasWorkingLinks) {
  web::PkCorpus corpus;
  web::LayoutParams layout{240, 1200, 10, 2};
  // All 100 pages (cheap small renders): must produce content and in-bounds
  // click maps pointing at real pages.
  for (const auto& ref : corpus.pages()) {
    const auto page = web::render_html(corpus.html(ref, 0), layout);
    ASSERT_GT(page.image.height(), 60) << ref.url;
    ASSERT_FALSE(page.click_map.empty()) << ref.url;
    for (const auto& region : page.click_map) {
      EXPECT_GE(region.x, 0);
      EXPECT_GE(region.y, 0);
      EXPECT_LE(region.x + region.w, page.image.width());
      EXPECT_LE(region.y + region.h, page.image.height());
      EXPECT_NE(corpus.find(region.href), nullptr) << ref.url << " -> " << region.href;
    }
  }
}

// ------------------------------------------------ SMS wire format (§3.1) ---

// Golden vectors: the exact bytes on the wire, v1 (id-less, seed era) and
// v2 (request id after the verb). These pin the protocol — an encoder
// change that breaks deployed clients must fail here first.
TEST(WireProtocol, GoldenVectors) {
  EXPECT_EQ(sms::encode_request({"khabarnama.com.pk/story-2", 31.5204, 74.3587}),
            "SONIC GET khabarnama.com.pk/story-2 @31.5204,74.3587");
  EXPECT_EQ(sms::encode_request({"khabarnama.com.pk/story-2", 31.5204, 74.3587, 7}),
            "SONIC GET 7 khabarnama.com.pk/story-2 @31.5204,74.3587");
  EXPECT_EQ(sms::encode_query({"cricket scores", 31.52, 74.35}),
            "SONIC ASK cricket scores @31.5200,74.3500");
  EXPECT_EQ(sms::encode_query({"cricket scores", 31.52, 74.35, 12}),
            "SONIC ASK 12 cricket scores @31.5200,74.3500");
  EXPECT_EQ(sms::encode_ack({"dawn.com.pk/", 135.0, 93.7, true, ""}),
            "SONIC ACK dawn.com.pk/ ETA 135s FM 93.7");
  EXPECT_EQ(sms::encode_ack({"dawn.com.pk/", 135.0, 93.7, true, "", 7}),
            "SONIC ACK 7 dawn.com.pk/ ETA 135s FM 93.7");
  EXPECT_EQ(sms::encode_ack({"bank.pk/login", 0, 0, false, "auth-pages-unsupported"}),
            "SONIC NACK bank.pk/login auth-pages-unsupported");
  EXPECT_EQ(sms::encode_ack({"dawn.com.pk/", 0, 0, false, "RETRY 30", 7}),
            "SONIC NACK 7 dawn.com.pk/ RETRY 30");

  // And the reverse direction: raw v1 bodies (what a seed-era client sends)
  // must keep parsing byte for byte.
  const auto req = sms::parse_request("SONIC GET khabarnama.com.pk/story-2 @31.5204,74.3587");
  ASSERT_TRUE(req.has_value());
  EXPECT_EQ(req->id, 0u);
  EXPECT_EQ(req->url, "khabarnama.com.pk/story-2");
  const auto shed = sms::parse_ack("SONIC NACK 7 dawn.com.pk/ RETRY 30");
  ASSERT_TRUE(shed.has_value());
  EXPECT_FALSE(shed->accepted);
  EXPECT_EQ(shed->id, 7u);
  EXPECT_EQ(shed->url, "dawn.com.pk/");
  EXPECT_DOUBLE_EQ(shed->retry_after_s, 30.0);
}

// Regression: URLs containing the ACK's own delimiters used to truncate the
// parsed URL at the first occurrence; the suffix must bind rightmost.
TEST(WireProtocol, AckUrlsContainingDelimitersParseFromTheRight) {
  const auto ack = sms::parse_ack("SONIC ACK weird.pk/a ETA 5s FM 1/page ETA 120s FM 93.7");
  ASSERT_TRUE(ack.has_value());
  EXPECT_EQ(ack->url, "weird.pk/a ETA 5s FM 1/page");
  EXPECT_DOUBLE_EQ(ack->eta_s, 120.0);
  EXPECT_NEAR(ack->frequency_mhz, 93.7, 1e-9);

  sms::RequestAck tricky{"news FM 101.pk/shows FM today", 45.0, 88.1, true, ""};
  const auto parsed = sms::parse_ack(sms::encode_ack(tricky));
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->url, tricky.url);
  EXPECT_DOUBLE_EQ(parsed->eta_s, 45.0);

  sms::RequestAck nack{"page with spaces.pk/x", 0, 0, false, "unknown-page"};
  const auto nparsed = sms::parse_ack(sms::encode_ack(nack));
  ASSERT_TRUE(nparsed.has_value());
  EXPECT_EQ(nparsed->url, nack.url);
  EXPECT_EQ(nparsed->reason, "unknown-page");
}

// Regression: encode_* used a fixed 256-byte buffer, silently truncating
// long bodies into unparseable (or wrong-URL) messages.
TEST(WireProtocol, LongBodiesEncodeWithoutTruncation) {
  std::string url = "longsite.pk/";
  url += std::string(300, 'a');
  const std::string wire = sms::encode_request({url, 31.52, 74.35, 123456789});
  EXPECT_GT(wire.size(), 300u);
  EXPECT_GT(sms::sms_segment_count(wire), 1);  // multipart on the air
  const auto parsed = sms::parse_request(wire);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->url, url);
  EXPECT_EQ(parsed->id, 123456789u);
}

namespace {

// Adversarial-but-legal URL material: spaces, '@', commas, colons, digits.
std::string random_url(Rng& rng) {
  static const std::string chars = "abcdefghijklmnopqrstuvwxyz0123456789./:@-_, ";
  const std::size_t len = 1 + rng.uniform_int(60);
  std::string url;
  for (std::size_t i = 0; i < len; ++i) url += chars[rng.uniform_int(chars.size())];
  return url;
}

bool first_token_all_digits(const std::string& url) {
  const auto sp = url.find(' ');
  const std::string token = sp == std::string::npos ? url : url.substr(0, sp);
  if (token.empty()) return false;
  for (char c : token) {
    if (c < '0' || c > '9') return false;
  }
  return true;
}

}  // namespace

TEST(WireProtocol, RequestRoundTripsOverRandomizedUrlsAndCoords) {
  Rng rng(31);
  int checked = 0;
  for (int trial = 0; trial < 500; ++trial) {
    sms::PageRequest req;
    req.url = random_url(rng);
    // Documented v1 ambiguity: an id-less URL whose first token is purely
    // numeric reads as a v2 id. Real URLs carry a dot or scheme; skip them.
    req.id = rng.bernoulli(0.5) ? static_cast<std::uint32_t>(1 + rng.uniform_int(1u << 31)) : 0;
    if (req.id == 0 && first_token_all_digits(req.url)) continue;
    req.lat = rng.uniform(-89.9999, 89.9999);
    req.lon = rng.uniform(-179.9999, 179.9999);
    const auto parsed = sms::parse_request(sms::encode_request(req));
    ASSERT_TRUE(parsed.has_value()) << sms::encode_request(req);
    EXPECT_EQ(parsed->url, req.url);
    EXPECT_EQ(parsed->id, req.id);
    EXPECT_NEAR(parsed->lat, req.lat, 1e-4);
    EXPECT_NEAR(parsed->lon, req.lon, 1e-4);
    ++checked;
  }
  EXPECT_GT(checked, 400);  // the ambiguity filter must stay rare
}

TEST(WireProtocol, QueryRoundTripsOverRandomizedText) {
  Rng rng(37);
  for (int trial = 0; trial < 300; ++trial) {
    sms::QueryRequest req;
    req.query = random_url(rng);  // queries are free text: same alphabet
    req.id = rng.bernoulli(0.5) ? static_cast<std::uint32_t>(1 + rng.uniform_int(100000)) : 0;
    if (req.id == 0 && first_token_all_digits(req.query)) continue;
    req.lat = rng.uniform(-89.9999, 89.9999);
    req.lon = rng.uniform(-179.9999, 179.9999);
    const auto parsed = sms::parse_query(sms::encode_query(req));
    ASSERT_TRUE(parsed.has_value()) << sms::encode_query(req);
    EXPECT_EQ(parsed->query, req.query);
    EXPECT_EQ(parsed->id, req.id);
  }
}

TEST(WireProtocol, AckRoundTripsOverRandomizedUrls) {
  Rng rng(41);
  for (int trial = 0; trial < 500; ++trial) {
    sms::RequestAck ack;
    ack.url = random_url(rng);
    ack.id = rng.bernoulli(0.5) ? static_cast<std::uint32_t>(1 + rng.uniform_int(100000)) : 0;
    if (ack.id == 0 && first_token_all_digits(ack.url)) continue;
    ack.accepted = true;
    ack.eta_s = std::round(rng.uniform(0.0, 9000.0));  // wire carries whole seconds
    ack.frequency_mhz = std::round(rng.uniform(870.0, 1080.0)) / 10.0;  // and 0.1 MHz
    const auto parsed = sms::parse_ack(sms::encode_ack(ack));
    ASSERT_TRUE(parsed.has_value()) << sms::encode_ack(ack);
    EXPECT_TRUE(parsed->accepted);
    EXPECT_EQ(parsed->url, ack.url);
    EXPECT_EQ(parsed->id, ack.id);
    EXPECT_NEAR(parsed->eta_s, ack.eta_s, 0.5);
    EXPECT_NEAR(parsed->frequency_mhz, ack.frequency_mhz, 0.05);
  }
}

TEST(WireProtocol, NackRoundTripsOverRandomizedUrls) {
  Rng rng(43);
  for (int trial = 0; trial < 500; ++trial) {
    sms::RequestAck nack;
    nack.url = random_url(rng);
    nack.id = rng.bernoulli(0.5) ? static_cast<std::uint32_t>(1 + rng.uniform_int(100000)) : 0;
    if (nack.id == 0 && first_token_all_digits(nack.url)) continue;
    // A URL ending in "... RETRY" plus a numeric reason would read as a
    // shed; the reason grammar is single-token, so exclude that corner.
    if (nack.url.find("RETRY") != std::string::npos) continue;
    nack.accepted = false;
    nack.reason = rng.bernoulli(0.5) ? "unknown-page" : "no-coverage";
    const auto parsed = sms::parse_ack(sms::encode_ack(nack));
    ASSERT_TRUE(parsed.has_value()) << sms::encode_ack(nack);
    EXPECT_FALSE(parsed->accepted);
    EXPECT_EQ(parsed->url, nack.url);
    EXPECT_EQ(parsed->id, nack.id);
    EXPECT_EQ(parsed->reason, nack.reason);
    EXPECT_LT(parsed->retry_after_s, 0.0);
  }
}

TEST(WireProtocol, ParsersRejectGarbageWithoutCrashing) {
  Rng rng(47);
  static const std::string chars = "SONICGETAKCKN @,.0123456789abcs FM ETA RETRY";
  for (int trial = 0; trial < 2000; ++trial) {
    std::string body;
    const std::size_t len = rng.uniform_int(80);
    for (std::size_t i = 0; i < len; ++i) body += chars[rng.uniform_int(chars.size())];
    // Must never crash; whatever parses must satisfy basic invariants.
    if (const auto req = sms::parse_request(body)) EXPECT_FALSE(req->url.empty());
    if (const auto ack = sms::parse_ack(body)) EXPECT_FALSE(ack->url.empty());
    (void)sms::parse_query(body);
  }
}

TEST(CorpusProperty, TwoInstancesAgreeExactly) {
  web::PkCorpus a, b;
  for (std::size_t i = 0; i < a.pages().size(); i += 17) {
    const auto& ref = a.pages()[i];
    EXPECT_EQ(a.html(ref, 5), b.html(b.pages()[i], 5));
    EXPECT_EQ(a.version(ref, 24), b.version(b.pages()[i], 24));
  }
}

}  // namespace
}  // namespace sonic
