#include <gtest/gtest.h>

#include "sms/sms.hpp"

namespace sonic::sms {
namespace {

TEST(SmsSegments, CountsGsm7Segments) {
  EXPECT_EQ(sms_segment_count(""), 1);
  EXPECT_EQ(sms_segment_count(std::string(160, 'a')), 1);
  EXPECT_EQ(sms_segment_count(std::string(161, 'a')), 2);
  EXPECT_EQ(sms_segment_count(std::string(306, 'a')), 2);
  EXPECT_EQ(sms_segment_count(std::string(307, 'a')), 3);
}

TEST(SmsGateway, DeliversAfterLatency) {
  SmsGateway gw({4.0, 0.0, 0.0, 1});
  ASSERT_TRUE(gw.send({"alice", "sonic", "hello", 0, 0}, 100.0));
  EXPECT_TRUE(gw.deliver_due("sonic", 100.0).empty());
  EXPECT_TRUE(gw.deliver_due("sonic", 102.0).empty());
  const auto due = gw.deliver_due("sonic", 110.0);
  ASSERT_EQ(due.size(), 1u);
  EXPECT_EQ(due[0].body, "hello");
  EXPECT_GE(due[0].deliver_at_s, 100.5);
  EXPECT_EQ(gw.in_flight(), 0u);
}

TEST(SmsGateway, OnlyDeliversToAddressee) {
  SmsGateway gw({1.0, 0.0, 0.0, 2});
  gw.send({"a", "x", "for x", 0, 0}, 0.0);
  gw.send({"a", "y", "for y", 0, 0}, 0.0);
  const auto for_x = gw.deliver_due("x", 100.0);
  ASSERT_EQ(for_x.size(), 1u);
  EXPECT_EQ(for_x[0].body, "for x");
  EXPECT_EQ(gw.in_flight(), 1u);
}

TEST(SmsGateway, LossRateDropsMessages) {
  SmsGateway gw({1.0, 0.0, 0.5, 3});
  int delivered = 0;
  const int n = 400;
  for (int i = 0; i < n; ++i) delivered += gw.send({"a", "b", "x", 0, 0}, 0.0);
  EXPECT_NEAR(static_cast<double>(delivered) / n, 0.5, 0.08);
}

TEST(SmsGateway, DeliveryOrderIsByDeliveryTime) {
  SmsGateway gw({3.0, 2.0, 0.0, 4});
  for (int i = 0; i < 10; ++i) {
    gw.send({"a", "b", "msg" + std::to_string(i), 0, 0}, static_cast<double>(i));
  }
  const auto due = gw.deliver_due("b", 1000.0);
  ASSERT_EQ(due.size(), 10u);
  for (std::size_t i = 1; i < due.size(); ++i) {
    EXPECT_GE(due[i].deliver_at_s, due[i - 1].deliver_at_s);
  }
}

TEST(SmsGateway, CountsSegmentsForBilling) {
  SmsGateway gw({1.0, 0.0, 0.0, 5});
  gw.send({"a", "b", std::string(200, 'x'), 0, 0}, 0.0);
  gw.send({"a", "b", "short", 0, 0}, 0.0);
  EXPECT_EQ(gw.segments_carried(), 3);
}

TEST(Protocol, RequestRoundTrip) {
  PageRequest req{"khabarnama.com.pk/story-2", 31.5204, 74.3587};
  const std::string wire = encode_request(req);
  EXPECT_LE(wire.size(), 160u);  // single segment
  const auto parsed = parse_request(wire);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->url, req.url);
  EXPECT_NEAR(parsed->lat, req.lat, 1e-3);
  EXPECT_NEAR(parsed->lon, req.lon, 1e-3);
}

TEST(Protocol, AckRoundTrip) {
  RequestAck ack{"dawn.com.pk/", 135.0, 93.7, true, ""};
  const auto parsed = parse_ack(encode_ack(ack));
  ASSERT_TRUE(parsed.has_value());
  EXPECT_TRUE(parsed->accepted);
  EXPECT_EQ(parsed->url, ack.url);
  EXPECT_NEAR(parsed->eta_s, 135.0, 1.0);
  EXPECT_NEAR(parsed->frequency_mhz, 93.7, 0.05);
}

TEST(Protocol, NackRoundTrip) {
  RequestAck nack{"bank.pk/login", 0, 0, false, "auth-pages-unsupported"};
  const auto parsed = parse_ack(encode_ack(nack));
  ASSERT_TRUE(parsed.has_value());
  EXPECT_FALSE(parsed->accepted);
  EXPECT_EQ(parsed->url, "bank.pk/login");
  EXPECT_EQ(parsed->reason, "auth-pages-unsupported");
}

TEST(Protocol, RejectsMalformed) {
  EXPECT_FALSE(parse_request("hello there").has_value());
  EXPECT_FALSE(parse_request("SONIC GET ").has_value());
  EXPECT_FALSE(parse_request("SONIC GET url-without-coords").has_value());
  EXPECT_FALSE(parse_ack("SONIC ACK broken").has_value());
  EXPECT_FALSE(parse_ack("").has_value());
}

TEST(Protocol, UrlsWithSpacesStillParse) {
  // The URL is delimited by the final " @", so internal spaces survive.
  const auto parsed = parse_request("SONIC GET some url @1.0,2.0");
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->url, "some url");
}

}  // namespace
}  // namespace sonic::sms
