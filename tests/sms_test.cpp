#include <gtest/gtest.h>

#include "sms/sms.hpp"

namespace sonic::sms {
namespace {

TEST(SmsSegments, CountsGsm7Segments) {
  EXPECT_EQ(sms_segment_count(""), 1);
  EXPECT_EQ(sms_segment_count(std::string(160, 'a')), 1);
  EXPECT_EQ(sms_segment_count(std::string(161, 'a')), 2);
  EXPECT_EQ(sms_segment_count(std::string(306, 'a')), 2);
  EXPECT_EQ(sms_segment_count(std::string(307, 'a')), 3);
}

TEST(SmsGateway, DeliversAfterLatency) {
  SmsGateway gw({4.0, 0.0, 0.0, 1});
  ASSERT_TRUE(gw.send({"alice", "sonic", "hello", 0, 0}, 100.0));
  EXPECT_TRUE(gw.deliver_due("sonic", 100.0).empty());
  EXPECT_TRUE(gw.deliver_due("sonic", 102.0).empty());
  const auto due = gw.deliver_due("sonic", 110.0);
  ASSERT_EQ(due.size(), 1u);
  EXPECT_EQ(due[0].body, "hello");
  EXPECT_GE(due[0].deliver_at_s, 100.5);
  EXPECT_EQ(gw.in_flight(), 0u);
}

TEST(SmsGateway, OnlyDeliversToAddressee) {
  SmsGateway gw({1.0, 0.0, 0.0, 2});
  gw.send({"a", "x", "for x", 0, 0}, 0.0);
  gw.send({"a", "y", "for y", 0, 0}, 0.0);
  const auto for_x = gw.deliver_due("x", 100.0);
  ASSERT_EQ(for_x.size(), 1u);
  EXPECT_EQ(for_x[0].body, "for x");
  EXPECT_EQ(gw.in_flight(), 1u);
}

TEST(SmsGateway, LossIsSilentSendAlwaysSucceeds) {
  // The sender has no oracle: send() accepts everything, delivery fails
  // silently inside the network.
  SmsGateway gw({1.0, 0.0, 0.5, 3});
  const int n = 400;
  for (int i = 0; i < n; ++i) EXPECT_TRUE(gw.send({"a", "b", "x", 0, 0}, 0.0));
  const auto delivered = gw.deliver_due("b", 1e9);
  EXPECT_NEAR(static_cast<double>(delivered.size()) / n, 0.5, 0.08);
  EXPECT_EQ(delivered.size() + gw.messages_lost(), static_cast<std::size_t>(n));
  EXPECT_EQ(gw.messages_accepted(), static_cast<std::size_t>(n));
}

TEST(SmsGateway, TotalLossDeliversNothingButAcceptsEverything) {
  SmsGateway gw({1.0, 0.0, 1.0, 4});
  for (int i = 0; i < 10; ++i) EXPECT_TRUE(gw.send({"a", "b", "x", 0, 0}, 0.0));
  EXPECT_TRUE(gw.deliver_due("b", 1e9).empty());
  EXPECT_EQ(gw.messages_lost(), 10u);
  EXPECT_EQ(gw.in_flight(), 0u);
}

TEST(SmsGateway, DuplicationDeliversTheMessageTwice) {
  SmsGatewayParams p{1.0, 0.0, 0.0, 5};
  p.duplication_rate = 1.0;
  SmsGateway gw(p);
  gw.send({"a", "b", "dup me", 0, 0}, 0.0);
  const auto due = gw.deliver_due("b", 1e9);
  ASSERT_EQ(due.size(), 2u);
  EXPECT_EQ(due[0].body, "dup me");
  EXPECT_EQ(due[1].body, "dup me");
  EXPECT_EQ(gw.messages_duplicated(), 1u);
}

TEST(SmsGateway, ReorderingDelaysSomeMessagesPastLaterOnes) {
  SmsGatewayParams p{4.0, 0.0, 0.0, 6};
  p.reorder_rate = 0.5;
  p.reorder_delay_s = 200.0;
  SmsGateway gw(p);
  const int n = 20;
  for (int i = 0; i < n; ++i) {
    gw.send({"a", "b", "msg" + std::to_string(i), 0, 0}, static_cast<double>(i));
  }
  EXPECT_GT(gw.messages_reordered(), 0u);
  // Some message sent earlier must now arrive after one sent later.
  const auto due = gw.deliver_due("b", 1e9);
  ASSERT_EQ(due.size(), static_cast<std::size_t>(n));
  bool inverted = false;
  for (std::size_t i = 1; i < due.size(); ++i) {
    if (due[i].sent_at_s < due[i - 1].sent_at_s) inverted = true;
  }
  EXPECT_TRUE(inverted);
}

TEST(SmsGateway, MultipartBodiesAreSuperLinearlyFragile) {
  // A 3-segment body survives only if all three segments do: at 30 %
  // per-segment loss that is 0.7^3 ~ 34 %, far below a short body's 70 %.
  SmsGatewayParams p{1.0, 0.0, 0.3, 7};
  SmsGateway gw(p);
  const int n = 400;
  const std::string long_body(400, 'x');  // 3 segments
  for (int i = 0; i < n; ++i) gw.send({"a", "long", long_body, 0, 0}, 0.0);
  for (int i = 0; i < n; ++i) gw.send({"a", "short", "x", 0, 0}, 0.0);
  const double long_ratio = static_cast<double>(gw.deliver_due("long", 1e9).size()) / n;
  const double short_ratio = static_cast<double>(gw.deliver_due("short", 1e9).size()) / n;
  EXPECT_NEAR(long_ratio, 0.343, 0.08);
  EXPECT_NEAR(short_ratio, 0.7, 0.08);
}

TEST(SmsGateway, DeliveryReportsReachTheSender) {
  SmsGatewayParams p{1.0, 0.0, 0.0, 8};
  p.delivery_reports = true;
  SmsGateway gw(p);
  gw.send({"alice", "bob", "hello bob", 0, 0}, 0.0);
  ASSERT_EQ(gw.deliver_due("bob", 100.0).size(), 1u);
  EXPECT_EQ(gw.reports_generated(), 1u);
  const auto reports = gw.deliver_due("alice", 1000.0);
  ASSERT_EQ(reports.size(), 1u);
  EXPECT_EQ(reports[0].from, std::string(kSmscNumber));
  EXPECT_EQ(reports[0].body.rfind(kDeliveryReportPrefix, 0), 0u);
  // Reports never beget reports.
  EXPECT_TRUE(gw.deliver_due("SMSC", 1e6).empty());
  EXPECT_EQ(gw.reports_generated(), 1u);
}

TEST(SmsGateway, FaultScheduleIsDeterministicPerSeed) {
  SmsGatewayParams p{3.0, 2.0, 0.2, 9};
  p.duplication_rate = 0.2;
  p.reorder_rate = 0.3;
  SmsGateway a(p), b(p);
  for (int i = 0; i < 50; ++i) {
    a.send({"u", "v", "m" + std::to_string(i), 0, 0}, static_cast<double>(i));
    b.send({"u", "v", "m" + std::to_string(i), 0, 0}, static_cast<double>(i));
  }
  const auto da = a.deliver_due("v", 1e9);
  const auto db = b.deliver_due("v", 1e9);
  ASSERT_EQ(da.size(), db.size());
  for (std::size_t i = 0; i < da.size(); ++i) {
    EXPECT_EQ(da[i].body, db[i].body);
    EXPECT_EQ(da[i].deliver_at_s, db[i].deliver_at_s);
  }
  EXPECT_EQ(a.messages_lost(), b.messages_lost());
  EXPECT_EQ(a.messages_duplicated(), b.messages_duplicated());
}

TEST(SmsGateway, CopyConservationAfterFullDrain) {
  SmsGatewayParams p{2.0, 1.0, 0.25, 10};
  p.duplication_rate = 0.15;
  SmsGateway gw(p);
  const std::size_t n = 300;
  for (std::size_t i = 0; i < n; ++i) gw.send({"a", "b", "x", 0, 0}, 0.0);
  const auto delivered = gw.deliver_due("b", 1e9);
  EXPECT_EQ(gw.in_flight(), 0u);
  EXPECT_EQ(delivered.size(), n - gw.messages_lost() + gw.messages_duplicated());
  EXPECT_EQ(gw.messages_delivered(), delivered.size());
}

TEST(SmsGateway, DeliveryOrderIsByDeliveryTime) {
  SmsGateway gw({3.0, 2.0, 0.0, 4});
  for (int i = 0; i < 10; ++i) {
    gw.send({"a", "b", "msg" + std::to_string(i), 0, 0}, static_cast<double>(i));
  }
  const auto due = gw.deliver_due("b", 1000.0);
  ASSERT_EQ(due.size(), 10u);
  for (std::size_t i = 1; i < due.size(); ++i) {
    EXPECT_GE(due[i].deliver_at_s, due[i - 1].deliver_at_s);
  }
}

TEST(SmsGateway, CountsSegmentsForBilling) {
  SmsGateway gw({1.0, 0.0, 0.0, 5});
  gw.send({"a", "b", std::string(200, 'x'), 0, 0}, 0.0);
  gw.send({"a", "b", "short", 0, 0}, 0.0);
  EXPECT_EQ(gw.segments_carried(), 3);
}

TEST(Protocol, RequestRoundTrip) {
  PageRequest req{"khabarnama.com.pk/story-2", 31.5204, 74.3587};
  const std::string wire = encode_request(req);
  EXPECT_LE(wire.size(), 160u);  // single segment
  const auto parsed = parse_request(wire);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->url, req.url);
  EXPECT_NEAR(parsed->lat, req.lat, 1e-3);
  EXPECT_NEAR(parsed->lon, req.lon, 1e-3);
}

TEST(Protocol, AckRoundTrip) {
  RequestAck ack{"dawn.com.pk/", 135.0, 93.7, true, ""};
  const auto parsed = parse_ack(encode_ack(ack));
  ASSERT_TRUE(parsed.has_value());
  EXPECT_TRUE(parsed->accepted);
  EXPECT_EQ(parsed->url, ack.url);
  EXPECT_NEAR(parsed->eta_s, 135.0, 1.0);
  EXPECT_NEAR(parsed->frequency_mhz, 93.7, 0.05);
}

TEST(Protocol, NackRoundTrip) {
  RequestAck nack{"bank.pk/login", 0, 0, false, "auth-pages-unsupported"};
  const auto parsed = parse_ack(encode_ack(nack));
  ASSERT_TRUE(parsed.has_value());
  EXPECT_FALSE(parsed->accepted);
  EXPECT_EQ(parsed->url, "bank.pk/login");
  EXPECT_EQ(parsed->reason, "auth-pages-unsupported");
}

TEST(Protocol, RejectsMalformed) {
  EXPECT_FALSE(parse_request("hello there").has_value());
  EXPECT_FALSE(parse_request("SONIC GET ").has_value());
  EXPECT_FALSE(parse_request("SONIC GET url-without-coords").has_value());
  EXPECT_FALSE(parse_ack("SONIC ACK broken").has_value());
  EXPECT_FALSE(parse_ack("").has_value());
}

TEST(Protocol, UrlsWithSpacesStillParse) {
  // The URL is delimited by the final " @", so internal spaces survive.
  const auto parsed = parse_request("SONIC GET some url @1.0,2.0");
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->url, "some url");
}

}  // namespace
}  // namespace sonic::sms
