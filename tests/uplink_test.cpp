// Reliable-uplink tests: the client retry/backoff state machine against the
// fault-injecting SMS gateway, and the server's idempotent dedup / overload
// shedding. Runs as its own executable under `ctest -L uplink`.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "sms/sms.hpp"
#include "sonic/client.hpp"
#include "sonic/server.hpp"
#include "web/corpus.hpp"

namespace sonic::core {
namespace {

// Deterministic world: 1 s fixed SMS latency, no faults unless a test
// scripts them, small pages so broadcasts finish in seconds.
struct World {
  web::PkCorpus corpus;
  sms::SmsGateway gateway{{1.0, 0.0, 0.0, 42}};
  SonicServer::Params server_params;
  World() {
    server_params.layout = web::LayoutParams{240, 2000, 10, 2};
    server_params.transmitters = {{"lahore", 93.7, 31.52, 74.35, 40.0}};
  }
};

SonicClient::Params client_params(const std::string& phone) {
  SonicClient::Params cp;
  cp.phone_number = phone;
  cp.lat = 31.52;
  cp.lon = 74.35;
  cp.uplink.ack_timeout_s = 10.0;
  cp.uplink.jitter_frac = 0.0;  // deterministic deadlines
  return cp;
}

TEST(Uplink, RetryAfterSilentLossEventuallySucceeds) {
  World w;
  w.gateway.set_loss_rate(1.0);  // the first send vanishes silently
  SonicServer server(&w.corpus, &w.gateway, w.server_params);
  SonicClient client(&w.gateway, client_params("+923001230001"));

  const std::string url = w.corpus.pages()[0].url;
  EXPECT_EQ(client.request(url, 0.0), SonicClient::TapResult::kRequestedViaSms);
  EXPECT_EQ(client.uplink_pending(), 1u);
  w.gateway.set_loss_rate(0.0);

  // Nothing arrives; at t=10 the ACK-await deadline fires and resends.
  server.poll_sms(5.0);
  EXPECT_EQ(server.metrics().counter_value("requests_received"), 0u);
  client.tick(10.0);
  EXPECT_EQ(client.metrics().counter_value("uplink_retries"), 1u);

  server.poll_sms(12.0);
  EXPECT_EQ(server.metrics().counter_value("requests_served"), 1u);
  const auto acks = client.poll_acks(14.0);
  ASSERT_EQ(acks.size(), 1u);
  EXPECT_TRUE(acks[0].accepted);
  EXPECT_EQ(acks[0].url, url);
  EXPECT_EQ(client.uplink_state(acks[0].id), UplinkState::kAccepted);
  EXPECT_EQ(client.uplink_pending(), 0u);
}

TEST(Uplink, GivesUpAfterMaxAttempts) {
  World w;
  w.gateway.set_loss_rate(1.0);  // nothing ever gets through
  SonicClient::Params cp = client_params("+923001230002");
  cp.uplink.max_attempts = 3;
  SonicClient client(&w.gateway, cp);

  client.request("khabarnama.com.pk/", 0.0);
  const std::uint32_t id = client.last_uplink_id();
  for (double t = 0.0; t <= 200.0; t += 1.0) client.tick(t);

  EXPECT_EQ(client.uplink_pending(), 0u);
  EXPECT_EQ(client.uplink_state(id), UplinkState::kGaveUp);
  EXPECT_EQ(client.metrics().counter_value("uplink_gave_up"), 1u);
  EXPECT_EQ(client.metrics().counter_value("uplink_retries"), 2u);  // 3 sends total
  EXPECT_EQ(w.gateway.messages_accepted(), 3u);
}

TEST(Uplink, BackoffGrowsExponentiallyAndCaps) {
  World w;
  w.gateway.set_loss_rate(1.0);
  SonicClient::Params cp = client_params("+923001230003");
  cp.uplink.ack_timeout_s = 10.0;
  cp.uplink.backoff_factor = 2.0;
  cp.uplink.backoff_cap_s = 40.0;
  cp.uplink.max_attempts = 4;
  SonicClient client(&w.gateway, cp);

  client.request("khabarnama.com.pk/", 0.0);
  // Waits are 10, 20, 40, min(40, 80)=40: sends at t = 0, 10, 30, 70 and the
  // terminal give-up at t = 110.
  std::vector<double> send_times{0.0};
  std::size_t seen = w.gateway.messages_accepted();
  for (double t = 0.5; t <= 120.0; t += 0.5) {
    client.tick(t);
    if (w.gateway.messages_accepted() > seen) {
      seen = w.gateway.messages_accepted();
      send_times.push_back(t);
    }
  }
  ASSERT_EQ(send_times.size(), 4u);
  EXPECT_DOUBLE_EQ(send_times[1], 10.0);
  EXPECT_DOUBLE_EQ(send_times[2], 30.0);
  EXPECT_DOUBLE_EQ(send_times[3], 70.0);
  EXPECT_EQ(client.uplink_state(client.last_uplink_id()), UplinkState::kGaveUp);
}

TEST(Uplink, JitterSpreadsRetrySchedules) {
  World w;
  w.gateway.set_loss_rate(1.0);
  SonicClient::Params cp = client_params("+923001230004");
  cp.uplink.jitter_frac = 0.5;
  cp.uplink.max_attempts = 2;
  SonicClient client(&w.gateway, cp);
  client.request("khabarnama.com.pk/", 0.0);
  // The retry must land inside (5, 15) — timeout 10 s jittered by ±50 % —
  // and, with jitter_frac > 0, almost surely not exactly at 10.
  client.tick(5.0);
  EXPECT_EQ(w.gateway.messages_accepted(), 1u);
  client.tick(15.0);
  EXPECT_EQ(w.gateway.messages_accepted(), 2u);
}

TEST(Uplink, ServerDedupsRetransmissionsWithoutSecondBroadcast) {
  World w;
  SonicServer server(&w.corpus, &w.gateway, w.server_params);
  const std::string url = w.corpus.pages()[0].url;
  const std::string body = sms::encode_request({url, 31.52, 74.35, 7});

  // The same v2 body arrives twice (a retransmission or SMSC duplicate).
  w.gateway.send({"+923001230005", server.phone_number(), body, 0.0, 0}, 0.0);
  w.gateway.send({"+923001230005", server.phone_number(), body, 0.5, 0}, 0.5);
  server.poll_sms(5.0);

  EXPECT_EQ(server.metrics().counter_value("requests_received"), 2u);
  EXPECT_EQ(server.metrics().counter_value("requests_served"), 1u);
  EXPECT_EQ(server.metrics().counter_value("requests_deduped"), 1u);
  EXPECT_EQ(server.dedup_entries(), 1u);

  // Both copies were ACKed (id echoed), but only one page ever airs.
  const auto acks = w.gateway.deliver_due("+923001230005", 100.0);
  ASSERT_EQ(acks.size(), 2u);
  for (const auto& msg : acks) {
    const auto parsed = sms::parse_ack(msg.body);
    ASSERT_TRUE(parsed.has_value());
    EXPECT_TRUE(parsed->accepted);
    EXPECT_EQ(parsed->id, 7u);
  }
  const auto broadcasts = server.advance(100000.0);
  ASSERT_EQ(broadcasts.size(), 1u);
  EXPECT_EQ(broadcasts[0].bundle.metadata.url, url);
}

TEST(Uplink, DedupEntryExpiresAfterTtl) {
  World w;
  w.server_params.dedup_ttl_s = 100.0;
  SonicServer server(&w.corpus, &w.gateway, w.server_params);
  const std::string url = w.corpus.pages()[1].url;
  const std::string body = sms::encode_request({url, 31.52, 74.35, 9});

  w.gateway.send({"+923001230006", server.phone_number(), body, 0.0, 0}, 0.0);
  server.poll_sms(5.0);
  EXPECT_EQ(server.metrics().counter_value("requests_served"), 1u);
  EXPECT_EQ(server.dedup_entries(), 1u);
  server.advance(100000.0);  // broadcast completes, in-flight window closes

  // Same body long after the TTL: a genuinely new request, served again.
  w.gateway.send({"+923001230006", server.phone_number(), body, 200.0, 0}, 200.0);
  server.poll_sms(205.0);
  EXPECT_EQ(server.metrics().counter_value("requests_served"), 2u);
  EXPECT_EQ(server.metrics().counter_value("requests_deduped"), 0u);
  EXPECT_EQ(server.dedup_entries(), 1u);  // the expired entry was purged
}

TEST(Uplink, OverloadShedNacksRetryAndClientHonorsIt) {
  World w;
  w.server_params.shed_backlog_bytes = 1.0;  // any backlog sheds
  w.server_params.shed_retry_floor_s = 15.0;
  w.server_params.shed_retry_cap_s = 20.0;
  SonicServer server(&w.corpus, &w.gateway, w.server_params);
  SonicClient client(&w.gateway, client_params("+923001230007"));

  // Fill the shard's backlog, then ask for a page while it is saturated.
  server.push_pages({w.corpus.pages()[2].url, w.corpus.pages()[3].url}, 0.0);
  ASSERT_GT(server.total_backlog_bytes(), 1.0);
  const std::string url = w.corpus.pages()[4].url;
  client.request(url, 0.0);
  server.poll_sms(2.0);
  EXPECT_EQ(server.metrics().counter_value("requests_shed"), 1u);
  EXPECT_EQ(server.dedup_entries(), 0u);  // sheds are not remembered

  // The shed NACK is flow control: poll_acks consumes it silently and
  // schedules the resend for RETRY seconds later.
  EXPECT_TRUE(client.poll_acks(4.0).empty());
  EXPECT_EQ(client.uplink_state(client.last_uplink_id()), UplinkState::kBackoff);

  server.advance(1000.0);  // backlog fully drained
  client.tick(30.0);       // past the 15..20 s retry window: resend fires
  EXPECT_EQ(client.metrics().counter_value("uplink_server_retries"), 1u);
  server.poll_sms(32.0);
  EXPECT_EQ(server.metrics().counter_value("requests_served"), 1u);
  const auto acks = client.poll_acks(34.0);
  ASSERT_EQ(acks.size(), 1u);
  EXPECT_TRUE(acks[0].accepted);
  EXPECT_EQ(acks[0].url, url);
}

TEST(Uplink, SeedEraIdLessBodiesStillServeAndDedup) {
  // Acceptance criterion: a v1 client (no request id in the body) keeps
  // working against the v2 server, including idempotency.
  World w;
  SonicServer server(&w.corpus, &w.gateway, w.server_params);
  const std::string url = w.corpus.pages()[0].url;
  const std::string v1_body = "SONIC GET " + url + " @31.5200,74.3500";
  ASSERT_EQ(sms::parse_request(v1_body)->id, 0u);

  w.gateway.send({"+923001230008", server.phone_number(), v1_body, 0.0, 0}, 0.0);
  w.gateway.send({"+923001230008", server.phone_number(), v1_body, 1.0, 0}, 1.0);
  server.poll_sms(5.0);
  EXPECT_EQ(server.metrics().counter_value("requests_served"), 1u);
  EXPECT_EQ(server.metrics().counter_value("requests_deduped"), 1u);

  const auto acks = w.gateway.deliver_due("+923001230008", 100.0);
  ASSERT_EQ(acks.size(), 2u);
  for (const auto& msg : acks) {
    const auto parsed = sms::parse_ack(msg.body);
    ASSERT_TRUE(parsed.has_value());
    EXPECT_TRUE(parsed->accepted);
    EXPECT_EQ(parsed->id, 0u);  // v1 reply carries no id token
    EXPECT_EQ(parsed->url, url);
  }
  EXPECT_EQ(server.advance(100000.0).size(), 1u);
}

TEST(Uplink, CrossSenderSameUrlCoalescesOntoOneBroadcast) {
  World w;
  SonicServer server(&w.corpus, &w.gateway, w.server_params);
  SonicClient alice(&w.gateway, client_params("+923001230009"));
  SonicClient bob(&w.gateway, client_params("+923001230010"));

  const std::string url = w.corpus.pages()[5].url;
  alice.request(url, 0.0);
  bob.request(url, 0.2);
  server.poll_sms(5.0);
  EXPECT_EQ(server.metrics().counter_value("requests_served"), 1u);
  EXPECT_EQ(server.metrics().counter_value("requests_coalesced"), 1u);

  const auto alice_acks = alice.poll_acks(8.0);
  const auto bob_acks = bob.poll_acks(8.0);
  ASSERT_EQ(alice_acks.size(), 1u);
  ASSERT_EQ(bob_acks.size(), 1u);
  EXPECT_TRUE(alice_acks[0].accepted);
  EXPECT_TRUE(bob_acks[0].accepted);
  EXPECT_EQ(server.advance(100000.0).size(), 1u);
}

TEST(Uplink, ClientCoalescesDuplicateLocalRequests) {
  World w;
  SonicClient client(&w.gateway, client_params("+923001230011"));
  client.request("khabarnama.com.pk/", 0.0);
  EXPECT_EQ(client.request("khabarnama.com.pk/", 1.0), SonicClient::TapResult::kRequestedViaSms);
  EXPECT_EQ(client.uplink_pending(), 1u);
  EXPECT_EQ(client.metrics().counter_value("uplink_coalesced"), 1u);
  EXPECT_EQ(w.gateway.messages_accepted(), 1u);  // one SMS, not two
}

TEST(Uplink, DuplicateAckDeliveriesAreDroppedAsStale) {
  World w;
  w.gateway.set_duplication_rate(1.0);  // every delivery arrives twice
  SonicServer server(&w.corpus, &w.gateway, w.server_params);
  SonicClient client(&w.gateway, client_params("+923001230012"));

  client.request(w.corpus.pages()[6].url, 0.0);
  server.poll_sms(5.0);  // sees the duplicated request too: dedup re-ACKs
  EXPECT_EQ(server.metrics().counter_value("requests_deduped"), 1u);

  // Four ACK copies reach the client (2 responses x duplication); exactly
  // one settles the request, the rest count as stale.
  const auto acks = client.poll_acks(10.0);
  ASSERT_EQ(acks.size(), 1u);
  EXPECT_TRUE(acks[0].accepted);
  EXPECT_EQ(client.metrics().counter_value("uplink_stale_acks"), 3u);
  EXPECT_EQ(server.advance(100000.0).size(), 1u);
}

TEST(Uplink, StateMachineLifecycle) {
  World w;
  SonicServer server(&w.corpus, &w.gateway, w.server_params);
  SonicClient client(&w.gateway, client_params("+923001230013"));

  EXPECT_FALSE(client.uplink_state(1).has_value());  // nothing issued yet
  client.request(w.corpus.pages()[0].url, 0.0);
  const std::uint32_t good = client.last_uplink_id();
  client.request("does-not-exist.pk/", 0.1);
  const std::uint32_t bad = client.last_uplink_id();
  EXPECT_EQ(client.uplink_state(good), UplinkState::kAwaitingAck);
  EXPECT_EQ(client.uplink_state(bad), UplinkState::kAwaitingAck);

  server.poll_sms(5.0);
  const auto acks = client.poll_acks(8.0);
  EXPECT_EQ(acks.size(), 2u);
  EXPECT_EQ(client.uplink_state(good), UplinkState::kAccepted);
  EXPECT_EQ(client.uplink_state(bad), UplinkState::kRejected);
  EXPECT_EQ(client.metrics().counter_value("uplink_rejected"), 1u);
  EXPECT_EQ(client.uplink_pending(), 0u);
}

TEST(Uplink, SearchQueriesRideTheSameStateMachine) {
  World w;
  w.gateway.set_loss_rate(1.0);
  SonicServer server(&w.corpus, &w.gateway, w.server_params);
  SonicClient client(&w.gateway, client_params("+923001230014"));

  EXPECT_EQ(client.ask("cricket scores", 0.0), SonicClient::TapResult::kRequestedViaSms);
  w.gateway.set_loss_rate(0.0);
  client.tick(10.0);  // retry carries the same query id
  server.poll_sms(12.0);
  EXPECT_EQ(server.metrics().counter_value("requests_served"), 1u);
  const auto acks = client.poll_acks(14.0);
  ASSERT_EQ(acks.size(), 1u);
  EXPECT_TRUE(acks[0].accepted);
  EXPECT_EQ(acks[0].url, "search:cricket scores");
  EXPECT_EQ(client.metrics().counter_value("uplink_retries"), 1u);
}

TEST(Uplink, DeliveryReportsAreCountedNotMisparsed) {
  World w;
  sms::SmsGatewayParams gp = w.gateway.params();
  gp.delivery_reports = true;
  sms::SmsGateway gw(gp);
  SonicServer server(&w.corpus, &gw, w.server_params);
  SonicClient client(&gw, client_params("+923001230015"));

  client.request(w.corpus.pages()[0].url, 0.0);
  server.poll_sms(5.0);  // request delivered -> DLR queued back to the client
  const auto acks = client.poll_acks(10.0);
  ASSERT_EQ(acks.size(), 1u);
  EXPECT_TRUE(acks[0].accepted);
  EXPECT_EQ(client.metrics().counter_value("uplink_delivery_reports"), 1u);
  EXPECT_EQ(client.metrics().counter_value("uplink_stale_acks"), 0u);
}

}  // namespace
}  // namespace sonic::core
