// Full-stack integration: the paper's testbed in software. A SONIC server
// renders a page, frames it, the frames ride an OFDM burst through the FM
// transmitter + RF channel + acoustic hop, and the client reassembles what
// its modem decodes.
#include <gtest/gtest.h>

#include <map>
#include <string>
#include <vector>

#include "fm/link.hpp"
#include "modem/ofdm.hpp"
#include "modem/profile.hpp"
#include "sonic/client.hpp"
#include "sonic/framing.hpp"
#include "sonic/server.hpp"
#include "util/rng.hpp"
#include "web/corpus.hpp"

namespace sonic {
namespace {

// Transmits a bundle over the real PHY in bursts of `frames_per_burst`.
// Returns the client-observed frame loss rate.
double transmit_over_phy(const core::PageBundle& bundle, core::SonicClient& client,
                         fm::FmLinkConfig link_cfg, int frames_per_burst = 16) {
  modem::OfdmModem ofdm(*modem::profiles::get("sonic-10k"));
  std::size_t sent = 0, received = 0;
  for (std::size_t off = 0; off < bundle.frames.size(); off += static_cast<std::size_t>(frames_per_burst)) {
    std::vector<util::Bytes> burst_frames(
        bundle.frames.begin() + static_cast<std::ptrdiff_t>(off),
        bundle.frames.begin() +
            static_cast<std::ptrdiff_t>(std::min(off + static_cast<std::size_t>(frames_per_burst),
                                                 bundle.frames.size())));
    const auto audio = ofdm.modulate(burst_frames);
    link_cfg.seed += 1;
    fm::FmLink link(link_cfg);
    const auto rx_audio = link.transmit(audio);
    const auto burst = ofdm.receive_one(rx_audio);
    sent += burst_frames.size();
    if (burst) {
      client.on_burst(*burst);
      received += burst->frames_ok();
    }
  }
  return 1.0 - static_cast<double>(received) / static_cast<double>(sent);
}

TEST(FullStack, PageOverFmCableArrivesIntact) {
  web::PkCorpus corpus;
  sms::SmsGateway gateway({2.0, 0.5, 0.0, 1});
  core::SonicServer::Params sp;
  sp.layout = web::LayoutParams{200, 600, 10, 2};  // small page: PHY is slow
  core::SonicServer server(&corpus, &gateway, sp);
  const std::string url = corpus.pages()[0].url;
  server.push_pages({url}, 0.0);
  const auto broadcasts = server.advance(1e9);
  ASSERT_EQ(broadcasts.size(), 1u);

  core::SonicClient client(nullptr, core::SonicClient::Params{});
  fm::FmLinkConfig cfg;
  cfg.rf.rssi_db = -70.0;            // high RSSI, as in the paper's §4 setup
  cfg.acoustic.distance_m = 0.0;     // cable mode
  cfg.seed = 100;
  const double loss = transmit_over_phy(broadcasts[0].bundle, client, cfg);
  EXPECT_EQ(loss, 0.0);  // paper Fig. 4(a): no loss over cable

  client.flush(10.0);
  const core::ReceivedPage* page = client.cache().get(url, 11.0);
  ASSERT_NE(page, nullptr);
  EXPECT_EQ(page->coverage, 1.0);
  EXPECT_EQ(page->metadata.url, url);
}

TEST(FullStack, OneMeterAirHopLosesSomeFramesButPageRemainsUsable) {
  web::PkCorpus corpus;
  sms::SmsGateway gateway({2.0, 0.5, 0.0, 2});
  core::SonicServer::Params sp;
  sp.layout = web::LayoutParams{200, 600, 10, 2};
  core::SonicServer server(&corpus, &gateway, sp);
  const std::string url = corpus.pages()[8].url;
  server.push_pages({url}, 0.0);
  const auto broadcasts = server.advance(1e9);
  ASSERT_EQ(broadcasts.size(), 1u);

  core::SonicClient client(nullptr, core::SonicClient::Params{});
  fm::FmLinkConfig cfg;
  cfg.enable_rf = false;  // isolate the acoustic hop (high-RSSI radio)
  cfg.acoustic.distance_m = 1.0;
  cfg.seed = 7;
  const double loss = transmit_over_phy(broadcasts[0].bundle, client, cfg);
  EXPECT_GT(loss, 0.0);   // 1 m over the air is lossy...
  EXPECT_LT(loss, 0.9);   // ...but not dead (Fig. 4(a))

  client.flush(10.0);
  const core::ReceivedPage* page = client.cache().get(url, 11.0);
  ASSERT_NE(page, nullptr);
  EXPECT_GT(page->coverage, 0.3);
  EXPECT_EQ(page->image.width(), 200);  // geometry survived via metadata redundancy
}

// ------------------------------------------------ reliable uplink e2e ------

// Client <-> server over an SMS network dropping 30 % of messages silently,
// duplicating 20 % and reordering 30 % by up to 20 s. The retry state
// machine plus the server's dedup table must deliver every request exactly
// once to the air.
TEST(FullStack, UplinkSurvivesLossDuplicationAndReordering) {
  web::PkCorpus corpus;
  sms::SmsGatewayParams gp{2.0, 1.0, 0.3, 1234};
  gp.duplication_rate = 0.2;
  gp.reorder_rate = 0.3;
  gp.reorder_delay_s = 20.0;
  sms::SmsGateway gateway(gp);

  core::SonicServer::Params sp;
  sp.layout = web::LayoutParams{240, 2000, 10, 2};
  sp.transmitters = {{"lahore", 93.7, 31.52, 74.35, 40.0}};
  core::SonicServer server(&corpus, &gateway, sp);

  core::SonicClient::Params cp;
  cp.phone_number = "+923001119999";
  cp.lat = 31.52;
  cp.lon = 74.35;
  cp.uplink.ack_timeout_s = 30.0;
  cp.uplink.max_attempts = 10;
  cp.uplink.backoff_factor = 2.0;
  cp.uplink.backoff_cap_s = 120.0;
  cp.uplink.jitter_frac = 0.1;
  core::SonicClient client(&gateway, cp);

  std::vector<std::string> urls;
  for (int i = 0; i < 6; ++i) urls.push_back(corpus.pages()[static_cast<std::size_t>(i * 7)].url);
  for (const auto& url : urls) {
    ASSERT_EQ(client.request(url, 0.0), core::SonicClient::TapResult::kRequestedViaSms);
  }

  std::map<std::string, int> broadcasts;
  for (double t = 0.0; t <= 3000.0; t += 5.0) {
    client.poll_acks(t);  // drives tick(): timeouts, backoff, resends
    server.poll_sms(t);
    for (const auto& done : server.advance(t)) ++broadcasts[done.bundle.metadata.url];
  }

  // Every request reached the air exactly once — retries and SMSC
  // duplicates never became a second broadcast.
  for (const auto& url : urls) {
    EXPECT_EQ(broadcasts[url], 1) << url;
  }
  EXPECT_EQ(broadcasts.size(), urls.size());
  EXPECT_EQ(client.metrics().counter_value("uplink_acked"), urls.size());
  EXPECT_EQ(client.metrics().counter_value("uplink_gave_up"), 0u);
  EXPECT_EQ(client.uplink_pending(), 0u);
  // At 30 % loss across ~12+ messages the machine must actually have
  // retried (deterministic under the gateway seed).
  EXPECT_GE(client.metrics().counter_value("uplink_retries"), 1u);
  EXPECT_GE(server.metrics().counter_value("requests_deduped"), 1u);
  EXPECT_EQ(server.metrics().counter_value("requests_served"), urls.size());
}

// With loss as the only fault, a long ACK-await window, and no jitter,
// every silently lost message (request or response) costs the client
// exactly one timeout: retry count and gateway drop count must agree
// message for message.
TEST(FullStack, UplinkRetryCountMatchesGatewayDropCount) {
  web::PkCorpus corpus;
  sms::SmsGateway gateway({2.0, 0.5, 0.25, 77});

  core::SonicServer::Params sp;
  sp.layout = web::LayoutParams{240, 2000, 10, 2};
  sp.transmitters = {{"lahore", 93.7, 31.52, 74.35, 40.0}};
  core::SonicServer server(&corpus, &gateway, sp);

  core::SonicClient::Params cp;
  cp.phone_number = "+923002228888";
  cp.lat = 31.52;
  cp.lon = 74.35;
  cp.uplink.ack_timeout_s = 30.0;  // >> worst-case round trip (~15 s)
  cp.uplink.max_attempts = 30;
  cp.uplink.backoff_factor = 1.0;  // constant spacing: one timeout per loss
  cp.uplink.jitter_frac = 0.0;
  core::SonicClient client(&gateway, cp);

  std::vector<std::string> urls;
  for (int i = 0; i < 4; ++i) urls.push_back(corpus.pages()[static_cast<std::size_t>(i * 11)].url);
  for (const auto& url : urls) client.request(url, 0.0);

  for (double t = 0.0; t <= 1500.0; t += 5.0) {
    client.poll_acks(t);
    server.poll_sms(t);
    server.advance(t);
  }

  EXPECT_EQ(client.metrics().counter_value("uplink_acked"), urls.size());
  EXPECT_EQ(client.metrics().counter_value("uplink_gave_up"), 0u);
  EXPECT_EQ(client.metrics().counter_value("uplink_retries"), gateway.messages_lost());
  EXPECT_GE(gateway.messages_lost(), 1u);  // the channel really did drop some
}

}  // namespace
}  // namespace sonic
