// Full-stack integration: the paper's testbed in software. A SONIC server
// renders a page, frames it, the frames ride an OFDM burst through the FM
// transmitter + RF channel + acoustic hop, and the client reassembles what
// its modem decodes.
#include <gtest/gtest.h>

#include "fm/link.hpp"
#include "modem/ofdm.hpp"
#include "modem/profile.hpp"
#include "sonic/client.hpp"
#include "sonic/framing.hpp"
#include "sonic/server.hpp"
#include "util/rng.hpp"
#include "web/corpus.hpp"

namespace sonic {
namespace {

// Transmits a bundle over the real PHY in bursts of `frames_per_burst`.
// Returns the client-observed frame loss rate.
double transmit_over_phy(const core::PageBundle& bundle, core::SonicClient& client,
                         fm::FmLinkConfig link_cfg, int frames_per_burst = 16) {
  modem::OfdmModem ofdm(*modem::profiles::get("sonic-10k"));
  std::size_t sent = 0, received = 0;
  for (std::size_t off = 0; off < bundle.frames.size(); off += static_cast<std::size_t>(frames_per_burst)) {
    std::vector<util::Bytes> burst_frames(
        bundle.frames.begin() + static_cast<std::ptrdiff_t>(off),
        bundle.frames.begin() +
            static_cast<std::ptrdiff_t>(std::min(off + static_cast<std::size_t>(frames_per_burst),
                                                 bundle.frames.size())));
    const auto audio = ofdm.modulate(burst_frames);
    link_cfg.seed += 1;
    fm::FmLink link(link_cfg);
    const auto rx_audio = link.transmit(audio);
    const auto burst = ofdm.receive_one(rx_audio);
    sent += burst_frames.size();
    if (burst) {
      client.on_burst(*burst);
      received += burst->frames_ok();
    }
  }
  return 1.0 - static_cast<double>(received) / static_cast<double>(sent);
}

TEST(FullStack, PageOverFmCableArrivesIntact) {
  web::PkCorpus corpus;
  sms::SmsGateway gateway({2.0, 0.5, 0.0, 1});
  core::SonicServer::Params sp;
  sp.layout = web::LayoutParams{200, 600, 10, 2};  // small page: PHY is slow
  core::SonicServer server(&corpus, &gateway, sp);
  const std::string url = corpus.pages()[0].url;
  server.push_pages({url}, 0.0);
  const auto broadcasts = server.advance(1e9);
  ASSERT_EQ(broadcasts.size(), 1u);

  core::SonicClient client(nullptr, core::SonicClient::Params{});
  fm::FmLinkConfig cfg;
  cfg.rf.rssi_db = -70.0;            // high RSSI, as in the paper's §4 setup
  cfg.acoustic.distance_m = 0.0;     // cable mode
  cfg.seed = 100;
  const double loss = transmit_over_phy(broadcasts[0].bundle, client, cfg);
  EXPECT_EQ(loss, 0.0);  // paper Fig. 4(a): no loss over cable

  client.flush(10.0);
  const core::ReceivedPage* page = client.cache().get(url, 11.0);
  ASSERT_NE(page, nullptr);
  EXPECT_EQ(page->coverage, 1.0);
  EXPECT_EQ(page->metadata.url, url);
}

TEST(FullStack, OneMeterAirHopLosesSomeFramesButPageRemainsUsable) {
  web::PkCorpus corpus;
  sms::SmsGateway gateway({2.0, 0.5, 0.0, 2});
  core::SonicServer::Params sp;
  sp.layout = web::LayoutParams{200, 600, 10, 2};
  core::SonicServer server(&corpus, &gateway, sp);
  const std::string url = corpus.pages()[8].url;
  server.push_pages({url}, 0.0);
  const auto broadcasts = server.advance(1e9);
  ASSERT_EQ(broadcasts.size(), 1u);

  core::SonicClient client(nullptr, core::SonicClient::Params{});
  fm::FmLinkConfig cfg;
  cfg.enable_rf = false;  // isolate the acoustic hop (high-RSSI radio)
  cfg.acoustic.distance_m = 1.0;
  cfg.seed = 7;
  const double loss = transmit_over_phy(broadcasts[0].bundle, client, cfg);
  EXPECT_GT(loss, 0.0);   // 1 m over the air is lossy...
  EXPECT_LT(loss, 0.9);   // ...but not dead (Fig. 4(a))

  client.flush(10.0);
  const core::ReceivedPage* page = client.cache().get(url, 11.0);
  ASSERT_NE(page, nullptr);
  EXPECT_GT(page->coverage, 0.3);
  EXPECT_EQ(page->image.width(), 200);  // geometry survived via metadata redundancy
}

}  // namespace
}  // namespace sonic
