#include <gtest/gtest.h>

#include <cmath>

#include "fm/acoustic.hpp"
#include "fm/fm_modem.hpp"
#include "fm/link.hpp"
#include "modem/ofdm.hpp"
#include "modem/profile.hpp"
#include "util/rng.hpp"
#include "util/units.hpp"

namespace sonic::fm {
namespace {

using sonic::util::kTwoPi;
using sonic::util::Rng;

std::vector<float> sine(double f, double rate, std::size_t n, float amp = 0.5f) {
  std::vector<float> out(n);
  for (std::size_t i = 0; i < n; ++i)
    out[i] = amp * static_cast<float>(std::sin(kTwoPi * f * static_cast<double>(i) / rate));
  return out;
}

double sine_snr_db(std::span<const float> rx, double f, double rate, float amp) {
  // Fit the known sine (amplitude & phase) and measure residual power.
  double c = 0, s = 0;
  for (std::size_t i = 0; i < rx.size(); ++i) {
    const double ang = kTwoPi * f * static_cast<double>(i) / rate;
    c += rx[i] * std::cos(ang);
    s += rx[i] * std::sin(ang);
  }
  c = 2 * c / static_cast<double>(rx.size());
  s = 2 * s / static_cast<double>(rx.size());
  double resid = 0, sig = 0;
  for (std::size_t i = 0; i < rx.size(); ++i) {
    const double ang = kTwoPi * f * static_cast<double>(i) / rate;
    const double fit = c * std::cos(ang) + s * std::sin(ang);
    resid += (rx[i] - fit) * (rx[i] - fit);
    sig += fit * fit;
  }
  (void)amp;
  return sonic::util::linear_to_db(sig / std::max(resid, 1e-12));
}

// ----------------------------------------------------------------- FM ---

TEST(FmModem, CleanLoopbackRecoversSine) {
  FmParams params;
  FmModulator mod(params);
  FmDemodulator demod(params);
  const auto audio = sine(3000, params.audio_rate_hz, 8820, 0.5f);
  const auto iq = mod.modulate(audio);
  EXPECT_NEAR(static_cast<double>(iq.size()),
              audio.size() * params.iq_rate_hz / params.audio_rate_hz, 10.0);
  const auto rx = demod.demodulate(iq);
  // Skip filter transients at both ends.
  const std::size_t skip = 500;
  std::vector<float> mid(rx.begin() + skip, rx.end() - skip);
  EXPECT_GT(sine_snr_db(mid, 3000, params.audio_rate_hz, 0.5f), 30.0);
}

TEST(FmModem, ConstantEnvelope) {
  FmModulator mod;
  const auto audio = sine(5000, 44100, 4410, 0.9f);
  const auto iq = mod.modulate(audio);
  for (const auto& s : iq) EXPECT_NEAR(std::abs(s), 1.0f, 1e-3);
}

TEST(FmModem, HighCnrTransparent) {
  FmParams params;
  FmModulator mod(params);
  FmDemodulator demod(params);
  RfChannel rf({-65.0, -100.0}, Rng(1));  // CNR 35 dB
  const auto audio = sine(4000, params.audio_rate_hz, 8820, 0.5f);
  const auto rx = demod.demodulate(rf.process(mod.modulate(audio)));
  const std::size_t skip = 500;
  std::vector<float> mid(rx.begin() + skip, rx.end() - skip);
  EXPECT_GT(sine_snr_db(mid, 4000, params.audio_rate_hz, 0.5f), 25.0);
}

TEST(FmModem, SnrDegradesWithRssi) {
  FmParams params;
  FmModulator mod(params);
  FmDemodulator demod(params);
  const auto audio = sine(4000, params.audio_rate_hz, 8820, 0.5f);
  const auto iq = mod.modulate(audio);
  double prev_snr = 1e9;
  for (double rssi : {-70.0, -85.0, -98.0}) {
    RfChannel rf({rssi, -94.0, 0.0}, Rng(2));
    const auto rx = demod.demodulate(rf.process(iq));
    const std::size_t skip = 500;
    std::vector<float> mid(rx.begin() + skip, rx.end() - skip);
    const double snr = sine_snr_db(mid, 4000, params.audio_rate_hz, 0.5f);
    EXPECT_LT(snr, prev_snr + 1.0) << "rssi " << rssi;
    prev_snr = snr;
  }
  // Below the FM threshold the audio is junk.
  EXPECT_LT(prev_snr, 10.0);
}

// ------------------------------------------------------------- Acoustic ---

TEST(Acoustic, CableIsNearTransparent) {
  AcousticParams p;
  p.distance_m = 0.0;
  p.clock_skew_ppm = 0.0;  // the fixed-phase sine fit below cannot track skew
  AcousticChannel chan(p, Rng(3));
  const auto audio = sine(9000, 44100, 44100, 0.3f);
  const auto rx = chan.process(audio);
  const std::size_t skip = 200;
  std::vector<float> mid(rx.begin() + skip, rx.end() - skip);
  EXPECT_GT(sine_snr_db(mid, 9000, 44100, 0.3f), 40.0);
  EXPECT_EQ(chan.trial_gain_db(), 0.0);
}

TEST(Acoustic, GainFallsWithDistance) {
  // Average trial gain over many seeds must decrease monotonically.
  auto mean_gain = [](double d) {
    double acc = 0;
    for (int t = 0; t < 200; ++t) {
      AcousticParams p;
      p.distance_m = d;
      AcousticChannel chan(p, Rng(100 + static_cast<std::uint64_t>(t)));
      acc += chan.trial_gain_db();
    }
    return acc / 200;
  };
  const double g10 = mean_gain(0.1);
  const double g50 = mean_gain(0.5);
  const double g100 = mean_gain(1.0);
  const double g120 = mean_gain(1.2);
  EXPECT_GT(g10, g50);
  EXPECT_GT(g50, g100);
  EXPECT_GT(g100, g120);
  // The directivity knee makes the per-meter drop beyond 1 m steeper than
  // between 0.5 and 1 m.
  EXPECT_GT((g100 - g120) / 0.2, (g50 - g100) / 0.5);
}

TEST(Acoustic, AlignmentSpreadGrowsWithDistance) {
  auto gain_stddev = [](double d) {
    std::vector<double> g;
    for (int t = 0; t < 300; ++t) {
      AcousticParams p;
      p.distance_m = d;
      AcousticChannel chan(p, Rng(500 + static_cast<std::uint64_t>(t)));
      g.push_back(chan.trial_gain_db());
    }
    double mean = 0;
    for (double v : g) mean += v;
    mean /= static_cast<double>(g.size());
    double var = 0;
    for (double v : g) var += (v - mean) * (v - mean);
    return std::sqrt(var / static_cast<double>(g.size()));
  };
  EXPECT_LT(gain_stddev(0.1), gain_stddev(1.0));
}

TEST(Acoustic, OutputLengthReflectsClockSkew) {
  AcousticParams p;
  p.distance_m = 0.0;
  p.clock_skew_ppm = 100.0;
  AcousticChannel chan(p, Rng(7));
  const std::vector<float> audio(100000, 0.1f);
  const auto rx = chan.process(audio);
  EXPECT_NEAR(static_cast<double>(rx.size()), 100000.0, 11.0);  // +-100 ppm
  EXPECT_NE(rx.size(), 0u);
}

// -------------------------------------------------- End-to-end FM + OFDM ---

TEST(FmLink, OfdmOverCableDecodesAllFrames) {
  modem::OfdmModem ofdm(*modem::profiles::get("sonic-10k"));
  Rng rng(11);
  std::vector<util::Bytes> frames;
  for (int i = 0; i < 5; ++i) {
    util::Bytes f(100);
    for (auto& b : f) b = static_cast<std::uint8_t>(rng.uniform_int(256));
    frames.push_back(f);
  }
  const auto tx = ofdm.modulate(frames);

  FmLinkConfig cfg;
  cfg.rf.rssi_db = -70.0;  // comfortably above threshold (paper: no loss)
  cfg.acoustic.distance_m = 0.0;
  cfg.seed = 42;
  FmLink link(cfg);
  const auto rx = link.transmit(tx);
  const auto burst = ofdm.receive_one(rx);
  ASSERT_TRUE(burst.has_value());
  EXPECT_EQ(burst->frames_ok(), frames.size()) << "snr=" << burst->snr_db;
}

TEST(FmLink, OfdmFailsBelowFmThreshold) {
  modem::OfdmModem ofdm(*modem::profiles::get("sonic-10k"));
  Rng rng(12);
  std::vector<util::Bytes> frames;
  for (int i = 0; i < 3; ++i) {
    util::Bytes f(100);
    for (auto& b : f) b = static_cast<std::uint8_t>(rng.uniform_int(256));
    frames.push_back(f);
  }
  const auto tx = ofdm.modulate(frames);

  FmLinkConfig cfg;
  cfg.rf.rssi_db = -95.0;  // paper: below -90 dB nothing is received
  cfg.acoustic.distance_m = 0.0;
  cfg.seed = 43;
  FmLink link(cfg);
  const auto rx = link.transmit(tx);
  const auto burst = ofdm.receive_one(rx);
  const std::size_t ok = burst ? burst->frames_ok() : 0;
  EXPECT_EQ(ok, 0u);
}

TEST(FmLink, RfBypassMatchesHighRssiBehaviour) {
  modem::OfdmModem ofdm(*modem::profiles::get("sonic-10k"));
  Rng rng(13);
  std::vector<util::Bytes> frames;
  for (int i = 0; i < 3; ++i) {
    util::Bytes f(100);
    for (auto& b : f) b = static_cast<std::uint8_t>(rng.uniform_int(256));
    frames.push_back(f);
  }
  const auto tx = ofdm.modulate(frames);
  FmLinkConfig cfg;
  cfg.enable_rf = false;
  cfg.acoustic.distance_m = 0.0;
  cfg.seed = 44;
  FmLink link(cfg);
  const auto rx = link.transmit(tx);
  const auto burst = ofdm.receive_one(rx);
  ASSERT_TRUE(burst.has_value());
  EXPECT_EQ(burst->frames_ok(), frames.size());
}

}  // namespace
}  // namespace sonic::fm
