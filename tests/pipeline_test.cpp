// Broadcast pipeline, metrics registry, scheduler shards and the redesigned
// Params::validate() config API.
#include <gtest/gtest.h>

#include <algorithm>
#include <stdexcept>
#include <string>
#include <vector>

#include "sonic/metrics.hpp"
#include "sonic/pipeline.hpp"
#include "sonic/scheduler.hpp"
#include "sonic/server.hpp"
#include "sonic/client.hpp"
#include "web/corpus.hpp"

namespace sonic::core {
namespace {

BroadcastPipeline::Params small_pipeline_params() {
  BroadcastPipeline::Params pp;
  pp.layout = web::LayoutParams{240, 2000, 10, 2};  // small, fast renders
  return pp;
}

// ---------------------------------------------------------------- Metrics ---

TEST(Metrics, CountersAccumulateAndReport) {
  Metrics m;
  m.counter("pages").add();
  m.counter("pages").add(4);
  EXPECT_EQ(m.counter("pages").value(), 5u);
  EXPECT_EQ(m.counter_value("pages"), 5u);
  EXPECT_EQ(m.counter_value("absent"), 0u);
  ASSERT_EQ(m.counter_names().size(), 1u);
  EXPECT_EQ(m.counter_names()[0], "pages");
  EXPECT_NE(m.report().find("pages"), std::string::npos);
}

TEST(Metrics, HistogramTracksSummary) {
  Metrics m;
  auto& h = m.histogram("wait");
  h.observe(2.0);
  h.observe(6.0);
  h.observe(1.0);
  const auto s = h.snapshot();
  EXPECT_EQ(s.count, 3u);
  EXPECT_DOUBLE_EQ(s.sum, 9.0);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 6.0);
  EXPECT_DOUBLE_EQ(s.mean(), 3.0);
  EXPECT_EQ(m.histogram_names().size(), 1u);
}

// --------------------------------------------------------------- Pipeline ---

TEST(Pipeline, ParallelOutputIsByteIdenticalToSerial) {
  web::PkCorpus corpus;
  auto pp = small_pipeline_params();
  pp.cache_pages = 8;  // small enough that LRU evictions must also replay

  std::vector<std::string> urls;
  for (int i = 0; i < 12; ++i) urls.push_back(corpus.pages()[static_cast<std::size_t>(i)].url);
  urls.push_back("search:cricket score");
  urls.push_back(urls[0]);  // duplicate inside one batch
  urls.push_back("does-not-exist.pk/");

  BroadcastPipeline serial(&corpus, pp);
  pp.num_threads = 4;
  BroadcastPipeline parallel(&corpus, pp);
  EXPECT_EQ(serial.parallelism(), 0);
  EXPECT_EQ(parallel.parallelism(), 4);

  // Two passes: the second at a later hour, where part of the catalog has
  // churned, exercising version-guarded hits, re-renders and evictions.
  for (const double now_s : {0.0, 7 * 3600.0}) {
    const auto a = serial.prepare(urls, now_s);
    const auto b = parallel.prepare(urls, now_s);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
      ASSERT_EQ(a[i].bundle != nullptr, b[i].bundle != nullptr) << urls[i];
      if (!a[i].bundle) continue;
      EXPECT_EQ(a[i].bundle->page_id, b[i].bundle->page_id) << urls[i];
      EXPECT_EQ(a[i].bundle->metadata.url, b[i].bundle->metadata.url);
      EXPECT_EQ(a[i].bundle->frames, b[i].bundle->frames) << urls[i];  // byte-identical
    }
  }
  EXPECT_EQ(serial.metrics().counter_value("pages_rendered"),
            parallel.metrics().counter_value("pages_rendered"));
  EXPECT_EQ(serial.metrics().counter_value("render_cache_hits"),
            parallel.metrics().counter_value("render_cache_hits"));
  EXPECT_EQ(serial.metrics().counter_value("frames_emitted"),
            parallel.metrics().counter_value("frames_emitted"));
}

TEST(Pipeline, CacheHitsWithinHourAndRerenderOnRotation) {
  web::PkCorpus corpus;
  BroadcastPipeline pipeline(&corpus, small_pipeline_params());

  // Search results rotate every 6 hours: same page within the window.
  ASSERT_NE(pipeline.prepare_one("search:mangoes", 0.0), nullptr);
  ASSERT_NE(pipeline.prepare_one("search:mangoes", 3600.0), nullptr);
  EXPECT_EQ(pipeline.metrics().counter_value("pages_rendered"), 1u);
  EXPECT_EQ(pipeline.metrics().counter_value("render_cache_hits"), 1u);

  // Past the rotation boundary the version changes: a fresh render.
  ASSERT_NE(pipeline.prepare_one("search:mangoes", 6 * 3600.0), nullptr);
  EXPECT_EQ(pipeline.metrics().counter_value("pages_rendered"), 2u);
}

TEST(Pipeline, LruEvictsLeastRecentlyUsed) {
  web::PkCorpus corpus;
  auto pp = small_pipeline_params();
  pp.cache_pages = 2;
  BroadcastPipeline pipeline(&corpus, pp);

  const std::string a = corpus.pages()[0].url;
  const std::string b = corpus.pages()[1].url;
  const std::string c = corpus.pages()[2].url;
  pipeline.prepare_one(a, 0.0);
  pipeline.prepare_one(b, 0.0);
  pipeline.prepare_one(a, 0.0);  // refresh a: b is now least recently used
  pipeline.prepare_one(c, 0.0);  // evicts b
  EXPECT_EQ(pipeline.cache_size(), 2u);
  EXPECT_EQ(pipeline.cache_evictions(), 1u);

  pipeline.prepare_one(a, 0.0);  // still cached
  EXPECT_EQ(pipeline.metrics().counter_value("render_cache_hits"), 2u);
  pipeline.prepare_one(b, 0.0);  // evicted: must re-render
  EXPECT_EQ(pipeline.metrics().counter_value("pages_rendered"), 4u);
}

TEST(Pipeline, MetricsCountFramesAndTimings) {
  web::PkCorpus corpus;
  BroadcastPipeline pipeline(&corpus, small_pipeline_params());
  const auto prepared =
      pipeline.prepare({corpus.pages()[0].url, corpus.pages()[1].url, "unknown.pk/"}, 0.0);
  ASSERT_EQ(prepared.size(), 3u);
  ASSERT_NE(prepared[0].bundle, nullptr);
  ASSERT_NE(prepared[1].bundle, nullptr);
  EXPECT_EQ(prepared[2].bundle, nullptr);
  EXPECT_FALSE(prepared[0].cache_hit);

  auto& m = pipeline.metrics();
  EXPECT_EQ(m.counter_value("pages_rendered"), 2u);
  EXPECT_EQ(m.counter_value("render_cache_misses"), 2u);
  EXPECT_EQ(m.counter_value("frames_emitted"),
            prepared[0].bundle->frames.size() + prepared[1].bundle->frames.size());
  EXPECT_EQ(m.histogram("render_s").snapshot().count, 2u);
  EXPECT_EQ(m.histogram("encode_s").snapshot().count, 2u);
}

TEST(Pipeline, ValidateRejectsNonsense) {
  BroadcastPipeline::Params pp;
  pp.cache_pages = 0;
  pp.num_threads = -2;
  pp.codec.quality = 0;
  const auto errors = pp.validate();
  EXPECT_EQ(errors.size(), 3u);
  EXPECT_TRUE(small_pipeline_params().validate().empty());
}

// ----------------------------------------------------- Per-transmitter shards ---

struct TwoCityWorld {
  web::PkCorpus corpus;
  sms::SmsGateway gateway{{2.0, 0.5, 0.0, 99}};
  SonicServer::Params server_params;
  TwoCityWorld() {
    server_params.layout = web::LayoutParams{240, 2000, 10, 2};
    server_params.transmitters = {{"lahore", 93.7, 31.52, 74.35, 40.0},
                                  {"karachi", 101.1, 24.86, 67.0, 40.0}};
  }
};

TEST(ServerShards, TransmittersDrainIndependently) {
  TwoCityWorld w;
  SonicServer server(&w.corpus, &w.gateway, w.server_params);

  // Pile a backlog onto Lahore only.
  std::vector<std::string> lahore_catalog;
  for (int i = 0; i < 6; ++i) lahore_catalog.push_back(w.corpus.pages()[static_cast<std::size_t>(i)].url);
  ASSERT_EQ(server.push_pages_to("lahore", lahore_catalog, 0.0), 6);
  ASSERT_EQ(server.push_pages_to("karachi", {w.corpus.pages()[10].url}, 0.0), 1);
  ASSERT_EQ(server.push_pages_to("nowhere", {w.corpus.pages()[10].url}, 0.0), 0);

  const BroadcastScheduler* lahore = server.scheduler_for("lahore");
  const BroadcastScheduler* karachi = server.scheduler_for("karachi");
  ASSERT_NE(lahore, nullptr);
  ASSERT_NE(karachi, nullptr);
  EXPECT_EQ(server.scheduler_for("nowhere"), nullptr);
  EXPECT_GT(lahore->backlog_bytes(), karachi->backlog_bytes());
  EXPECT_NEAR(server.total_backlog_bytes(), lahore->backlog_bytes() + karachi->backlog_bytes(),
              1e-6);

  // Advance just far enough to finish Karachi's single page: it must not
  // wait behind Lahore's six (the legacy shared queue would have put it
  // seventh).
  const double karachi_drain_s = karachi->backlog_bytes() * 8.0 / karachi->aggregate_rate_bps();
  const auto done = server.advance(karachi_drain_s + 1.0);
  bool karachi_done = false;
  for (const auto& b : done) {
    if (b.transmitter.name == "karachi") karachi_done = true;
  }
  EXPECT_TRUE(karachi_done);
  EXPECT_NEAR(karachi->backlog_bytes(), 0.0, 1e-6);
  EXPECT_GT(lahore->backlog_bytes(), 0.0);
}

TEST(ServerShards, SmsEtaReflectsCoveringShardOnly) {
  TwoCityWorld w;
  SonicServer server(&w.corpus, &w.gateway, w.server_params);

  // Lahore carries a heavy backlog.
  std::vector<std::string> lahore_catalog;
  for (int i = 0; i < 8; ++i) lahore_catalog.push_back(w.corpus.pages()[static_cast<std::size_t>(i)].url);
  server.push_pages_to("lahore", lahore_catalog, 0.0);
  const double lahore_eta_floor =
      server.scheduler_for("lahore")->backlog_bytes() * 8.0 /
      server.scheduler_for("lahore")->aggregate_rate_bps();

  // A Karachi user's request is promised the idle Karachi shard's ETA.
  SonicClient::Params cp;
  cp.phone_number = "+923004443322";
  cp.lat = 24.86;
  cp.lon = 67.0;
  SonicClient client(&w.gateway, cp);
  client.request(w.corpus.pages()[12].url, 0.0);
  server.poll_sms(10.0);
  const auto acks = client.poll_acks(20.0);
  ASSERT_EQ(acks.size(), 1u);
  ASSERT_TRUE(acks[0].accepted);
  EXPECT_NEAR(acks[0].frequency_mhz, 101.1, 0.01);
  EXPECT_LT(acks[0].eta_s, lahore_eta_floor);

  // And the promise is kept: the broadcast completes within the ETA (the
  // SMS ACK encoding quantizes the ETA to whole seconds, hence the 1 s
  // slack).
  const auto done = server.advance(10.0 + acks[0].eta_s + 2.0);
  bool delivered = false;
  for (const auto& b : done) {
    if (b.transmitter.name == "karachi" && b.bundle.metadata.url == w.corpus.pages()[12].url) {
      delivered = true;
      EXPECT_LE(b.completed_at_s - 10.0, acks[0].eta_s + 1.0);
    }
  }
  EXPECT_TRUE(delivered);
}

// A bundle must survive for broadcast even after the LRU evicts its cache
// entry while it waits for airtime.
TEST(ServerShards, QueuedBundleSurvivesCacheEviction) {
  TwoCityWorld w;
  w.server_params.render_cache_pages = 1;
  SonicServer server(&w.corpus, &w.gateway, w.server_params);
  const std::string first = w.corpus.pages()[0].url;
  server.push_pages({first}, 0.0);
  // Evict `first` from the 1-entry cache before its airtime completes.
  server.push_pages({w.corpus.pages()[1].url}, 1.0);
  server.push_pages({w.corpus.pages()[2].url}, 2.0);
  const auto done = server.advance(1e9);
  ASSERT_EQ(done.size(), 3u);
  EXPECT_EQ(done[0].bundle.metadata.url, first);
  EXPECT_GT(done[0].bundle.frames.size(), 0u);
}

// ---------------------------------------------------------- Config validate ---

TEST(ServerParams, ValidateReturnsDescriptiveErrors) {
  SonicServer::Params sp;
  EXPECT_TRUE(sp.validate().empty());

  sp.rate_bps = -10.0;
  sp.num_frequencies = 0;
  sp.transmitters.clear();
  sp.render_cache_pages = 0;
  const auto errors = sp.validate();
  EXPECT_EQ(errors.size(), 4u);
  auto mentions = [&](const std::string& needle) {
    return std::any_of(errors.begin(), errors.end(), [&](const std::string& e) {
      return e.find(needle) != std::string::npos;
    });
  };
  EXPECT_TRUE(mentions("rate_bps"));
  EXPECT_TRUE(mentions("num_frequencies"));
  EXPECT_TRUE(mentions("transmitters"));
  EXPECT_TRUE(mentions("cache_pages"));
}

TEST(ServerParams, DuplicateTransmitterNamesRejected) {
  SonicServer::Params sp;
  sp.transmitters = {{"twin", 93.7, 0, 0, 30.0}, {"twin", 95.1, 1, 1, 30.0}};
  const auto errors = sp.validate();
  ASSERT_EQ(errors.size(), 1u);
  EXPECT_NE(errors[0].find("duplicate"), std::string::npos);
}

TEST(ServerParams, ConstructorThrowsOnInvalidConfig) {
  web::PkCorpus corpus;
  sms::SmsGateway gateway({2.0, 0.5, 0.0, 99});
  SonicServer::Params sp;
  sp.num_frequencies = -3;
  EXPECT_THROW(SonicServer(&corpus, &gateway, sp), std::invalid_argument);
}

TEST(ClientParams, ValidateAndConstructorReject) {
  SonicClient::Params cp;
  EXPECT_TRUE(cp.validate().empty());
  cp.device_width = 0;
  cp.cache_pages = 0;
  cp.server_number.clear();
  EXPECT_EQ(cp.validate().size(), 3u);
  EXPECT_THROW(SonicClient(nullptr, cp), std::invalid_argument);
}

// ------------------------------------------------------------ ETA regression ---

// Regression for the promised-vs-actual ETA mismatch: eta_s must fold in the
// drain (including the in-flight head remainder) between the shard's last
// advance and the SMS poll, which the one-argument overload missed — an
// error multiplied by num_frequencies.
TEST(Scheduler, PromisedEtaMatchesActualCompletion) {
  for (const int freqs : {1, 2, 4}) {
    BroadcastScheduler sched({10000.0, freqs});
    sched.enqueue("backlog", 50000, 0.0);
    sched.advance(4.0);  // scheduler clock stops here; "backlog" in flight

    // An SMS poll at t=30 computes the promise without advancing first.
    const double promised = sched.eta_s(10000, 30.0);
    sched.enqueue("new", 10000, 30.0);
    double completed = -1.0;
    for (const auto& item : sched.advance(1000.0)) {
      if (item.url == "new") completed = item.completed_at_s;
    }
    ASSERT_GE(completed, 0.0) << freqs;
    EXPECT_NEAR(completed - 30.0, promised, 0.05) << "num_frequencies=" << freqs;
  }
}

TEST(Scheduler, TwoArgEtaNeverNegativeOnLongIdle) {
  BroadcastScheduler sched({10000.0, 4});
  sched.enqueue("only", 1000, 0.0);
  // Long after the queue has drained, the promise is just the item's own
  // airtime.
  EXPECT_NEAR(sched.eta_s(5000, 1e6), 5000.0 * 8.0 / 40000.0, 1e-9);
}

}  // namespace
}  // namespace sonic::core
