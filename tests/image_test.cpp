#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>

#include "image/column_codec.hpp"
#include "image/dct_codec.hpp"
#include "image/interpolate.hpp"
#include "image/lossless.hpp"
#include "image/raster.hpp"
#include "util/rng.hpp"

namespace sonic::image {
namespace {

using sonic::util::Rng;

// A webpage-like test card: white background, dark text-ish stripes, a
// colored header and an image-ish noise block.
Raster test_page(int w = 320, int h = 480, std::uint64_t seed = 7) {
  Rng rng(seed);
  Raster img(w, h, Rgb{255, 255, 255});
  img.fill_rect(0, 0, w, 60, Rgb{30, 60, 160});  // header
  for (int line = 0; line < (h - 80) / 20; ++line) {
    const int y = 80 + line * 20;
    const int len = static_cast<int>(rng.uniform(0.4, 0.95) * w);
    // "text": short dark dashes with gaps
    for (int x = 10; x < len; x += 7) {
      img.fill_rect(x, y, 5, 8, Rgb{20, 20, 20});
    }
  }
  // image block
  for (int y = h / 2; y < h / 2 + 80 && y < h; ++y) {
    for (int x = w / 4; x < 3 * w / 4; ++x) {
      img.at(x, y) = Rgb{static_cast<std::uint8_t>(rng.uniform_int(256)),
                         static_cast<std::uint8_t>(rng.uniform_int(256)),
                         static_cast<std::uint8_t>(rng.uniform_int(256))};
    }
  }
  return img;
}

// ----------------------------------------------------------------- Raster ---

TEST(Raster, BasicAccessorsAndFill) {
  Raster img(10, 5);
  EXPECT_EQ(img.width(), 10);
  EXPECT_EQ(img.height(), 5);
  img.fill_rect(2, 1, 3, 2, Rgb{1, 2, 3});
  EXPECT_EQ(img.at(2, 1), (Rgb{1, 2, 3}));
  EXPECT_EQ(img.at(4, 2), (Rgb{1, 2, 3}));
  EXPECT_EQ(img.at(5, 1), (Rgb{255, 255, 255}));
  // fill_rect clips out-of-range rectangles.
  img.fill_rect(-5, -5, 100, 100, Rgb{9, 9, 9});
  EXPECT_EQ(img.at(0, 0), (Rgb{9, 9, 9}));
  EXPECT_EQ(img.at(9, 4), (Rgb{9, 9, 9}));
}

TEST(Raster, ClampedAccess) {
  Raster img(4, 4);
  img.at(0, 0) = Rgb{5, 5, 5};
  img.at(3, 3) = Rgb{7, 7, 7};
  EXPECT_EQ(img.at_clamped(-10, -10), (Rgb{5, 5, 5}));
  EXPECT_EQ(img.at_clamped(100, 100), (Rgb{7, 7, 7}));
}

TEST(Raster, CropToHeight) {
  Raster img(8, 100);
  img.at(3, 40) = Rgb{1, 1, 1};
  const Raster cropped = img.cropped_to_height(50);
  EXPECT_EQ(cropped.height(), 50);
  EXPECT_EQ(cropped.at(3, 40), (Rgb{1, 1, 1}));
  // No-op when already short enough.
  EXPECT_EQ(img.cropped_to_height(200).height(), 100);
}

TEST(Raster, ScalingFactorResize) {
  // §3.2: a 360-px-wide phone gets scaling factor 360/1080 = 1/3.
  Raster img(1080, 300);
  img.fill_rect(0, 0, 540, 300, Rgb{0, 0, 0});
  const Raster scaled = img.scaled_by(1.0 / 3.0);
  EXPECT_EQ(scaled.width(), 360);
  EXPECT_EQ(scaled.height(), 100);
  EXPECT_EQ(scaled.at(10, 50), (Rgb{0, 0, 0}));
  EXPECT_EQ(scaled.at(350, 50), (Rgb{255, 255, 255}));
}

TEST(Raster, PpmRoundTrip) {
  const Raster img = test_page(64, 48);
  const std::string path = "/tmp/sonic_test_roundtrip.ppm";
  write_ppm(img, path);
  const Raster back = read_ppm(path);
  ASSERT_EQ(back.width(), img.width());
  ASSERT_EQ(back.height(), img.height());
  EXPECT_EQ(back.pixels(), img.pixels());
  std::remove(path.c_str());
}

TEST(Raster, PsnrIdentityAndSensitivity) {
  const Raster img = test_page(64, 64);
  EXPECT_GE(psnr(img, img), 99.0);
  Raster noisy = img;
  Rng rng(3);
  for (auto& p : noisy.pixels()) {
    p.r = static_cast<std::uint8_t>(std::clamp(static_cast<int>(p.r) + static_cast<int>(rng.normal(0, 10)), 0, 255));
  }
  const double val = psnr(img, noisy);
  EXPECT_LT(val, 40.0);
  EXPECT_GT(val, 15.0);
}

// ------------------------------------------------------------------ swebp ---

TEST(Swebp, RoundTripPreservesContent) {
  const Raster img = test_page();
  for (int q : {10, 50, 90}) {
    const auto coded = swebp_encode(img, q);
    const auto decoded = swebp_decode(coded);
    ASSERT_TRUE(decoded.has_value()) << q;
    ASSERT_EQ(decoded->width(), img.width());
    ASSERT_EQ(decoded->height(), img.height());
    const double quality_db = psnr(img, *decoded);
    EXPECT_GT(quality_db, q >= 90 ? 19.0 : q >= 50 ? 17.0 : 14.0) << "q=" << q;
  }
}

TEST(Swebp, SizeGrowsWithQuality) {
  // Figure 4(b)'s premise: Q10 is several times smaller than Q90.
  const Raster img = test_page();
  const auto s10 = swebp_encode(img, 10).size();
  const auto s50 = swebp_encode(img, 50).size();
  const auto s90 = swebp_encode(img, 90).size();
  EXPECT_LT(s10, s50);
  EXPECT_LT(s50, s90);
  EXPECT_GT(static_cast<double>(s90) / static_cast<double>(s10), 2.5);
}

TEST(Swebp, QualityImprovesPsnrMonotonically) {
  const Raster img = test_page();
  double prev = 0;
  for (int q : {5, 20, 40, 60, 80, 95}) {
    const auto decoded = swebp_decode(swebp_encode(img, q));
    ASSERT_TRUE(decoded.has_value());
    const double val = psnr(img, *decoded);
    EXPECT_GE(val, prev - 0.3) << "q=" << q;  // allow tiny non-monotonic noise
    prev = val;
  }
}

TEST(Swebp, CompressesTextPagesHard) {
  // ~10x over raw is the paper's compression claim territory at Q10.
  const Raster img = test_page(640, 960);
  const std::size_t raw = static_cast<std::size_t>(img.width()) * img.height() * 3;
  const auto coded = swebp_encode(img, 10);
  EXPECT_LT(coded.size() * 10, raw);
}

TEST(Swebp, PeekParsesHeaderOnly) {
  const Raster img = test_page(100, 50);
  const auto coded = swebp_encode(img, 42);
  const auto info = swebp_peek(coded);
  ASSERT_TRUE(info.has_value());
  EXPECT_EQ(info->width, 100);
  EXPECT_EQ(info->height, 50);
  EXPECT_EQ(info->quality, 42);
}

TEST(Swebp, RejectsGarbage) {
  util::Bytes junk{1, 2, 3, 4, 5};
  EXPECT_FALSE(swebp_decode(junk).has_value());
  EXPECT_FALSE(swebp_peek(junk).has_value());
  // Truncated valid stream: decoder may fail or return a partial image,
  // but must not crash or loop.
  const auto coded = swebp_encode(test_page(64, 64), 50);
  util::Bytes truncated(coded.begin(), coded.begin() + static_cast<std::ptrdiff_t>(coded.size() / 2));
  (void)swebp_decode(truncated);
}

TEST(Swebp, NonMultipleOf8Dimensions) {
  const Raster img = test_page(65, 47);
  const auto decoded = swebp_decode(swebp_encode(img, 60));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->width(), 65);
  EXPECT_EQ(decoded->height(), 47);
  // The noise block dominates MSE on this small card; the threshold checks
  // edge-block handling, not absolute fidelity.
  EXPECT_GT(psnr(img, *decoded), 16.0);
}

// --------------------------------------------------------------- lossless ---

TEST(Lossless, ExactRoundTrip) {
  const Raster img = test_page(120, 90);
  const auto coded = lossless_encode(img);
  const auto decoded = lossless_decode(coded);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->pixels(), img.pixels());
}

TEST(Lossless, LargerThanLossyAtQ10) {
  // The size argument for choosing lossy WebP over DS's lossless PNG.
  const Raster img = test_page();
  EXPECT_GT(lossless_encode(img).size(), swebp_encode(img, 10).size() * 2);
}

TEST(Lossless, RejectsGarbage) {
  util::Bytes junk{9, 9, 9, 9};
  EXPECT_FALSE(lossless_decode(junk).has_value());
}

// ----------------------------------------------------------- column codec ---

TEST(ColumnCodec, FullDeliveryRoundTrip) {
  const Raster img = test_page(64, 200);
  ColumnCodecParams params;
  params.quality = 50;
  const auto segments = column_encode(img, params);
  ASSERT_FALSE(segments.empty());
  const auto result = column_decode(img.width(), img.height(), segments, params);
  EXPECT_EQ(result.coverage(), 1.0);
  EXPECT_GT(psnr(img, result.image), 17.0);
}

TEST(ColumnCodec, SegmentsRespectBudget) {
  const Raster img = test_page(32, 300);
  ColumnCodecParams params;
  const auto segments = column_encode(img, params);
  for (const auto& s : segments) {
    EXPECT_LE(s.data.size(), static_cast<std::size_t>(params.payload_budget) + 8)
        << "col " << s.col << " row0 " << s.row0;
    EXPECT_GT(s.rows, 0);
  }
}

TEST(ColumnCodec, SegmentsTileEachColumnExactly) {
  const Raster img = test_page(16, 123);
  ColumnCodecParams params;
  const auto segments = column_encode(img, params);
  std::vector<int> covered(16, 0);
  for (const auto& s : segments) covered[s.col] += s.rows;
  for (int c = 0; c < 16; ++c) EXPECT_EQ(covered[c], 123) << "col " << c;
}

TEST(ColumnCodec, LostSegmentsBlankOnlyTheirRows) {
  const Raster img = test_page(48, 200);
  ColumnCodecParams params;
  auto segments = column_encode(img, params);
  // Drop every 5th segment.
  std::vector<ColumnSegment> kept;
  for (std::size_t i = 0; i < segments.size(); ++i) {
    if (i % 5 != 0) kept.push_back(segments[i]);
  }
  const auto result = column_decode(img.width(), img.height(), kept, params);
  EXPECT_LT(result.coverage(), 1.0);
  EXPECT_GT(result.coverage(), 0.7);
  // Received pixels must still be correct.
  double err = 0;
  std::size_t n = 0;
  for (int y = 0; y < img.height(); ++y) {
    for (int x = 0; x < img.width(); ++x) {
      if (!result.mask[static_cast<std::size_t>(y) * img.width() + static_cast<std::size_t>(x)]) continue;
      err += std::abs(static_cast<int>(img.at(x, y).g) - static_cast<int>(result.image.at(x, y).g));
      ++n;
    }
  }
  EXPECT_LT(err / static_cast<double>(n), 30.0);
}

TEST(ColumnCodec, SizeComparableToSwebp) {
  // Column transport sacrifices some compression for loss resilience, but
  // must stay within a small factor of the 2D codec at the same quality.
  const Raster img = test_page(320, 480);
  ColumnCodecParams params;
  params.quality = 10;
  const auto segments = column_encode(img, params);
  const std::size_t col_size = column_encoded_size(segments);
  const std::size_t webp_size = swebp_encode(img, 10).size();
  EXPECT_LT(static_cast<double>(col_size) / static_cast<double>(webp_size), 10.0);
  const std::size_t raw = static_cast<std::size_t>(img.width()) * img.height() * 3;
  EXPECT_LT(col_size * 4, raw);  // still compresses well
}

TEST(ColumnCodec, SegmentSerializationRoundTrip) {
  ColumnSegment seg;
  seg.col = 1000;
  seg.row0 = 9999;
  seg.rows = 77;
  seg.data = {1, 2, 3, 4, 5};
  const auto bytes = segment_serialize(seg);
  const auto back = segment_parse(bytes);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->col, seg.col);
  EXPECT_EQ(back->row0, seg.row0);
  EXPECT_EQ(back->rows, seg.rows);
  EXPECT_EQ(back->data, seg.data);
  EXPECT_FALSE(segment_parse(util::Bytes{1, 2}).has_value());
}

TEST(ColumnCodec, QualityKnobChangesSize) {
  const Raster img = test_page(64, 200);
  ColumnCodecParams lo{10, 94};
  ColumnCodecParams hi{90, 94};
  EXPECT_LT(column_encoded_size(column_encode(img, lo)),
            column_encoded_size(column_encode(img, hi)));
}

// ------------------------------------------------------------ interpolate ---

// Simulate column-segment losses on a decoded image and measure recovery.
struct LossyDecode {
  Raster image;
  std::vector<std::uint8_t> mask;
};

LossyDecode lossy_column_delivery(const Raster& img, double loss_rate, std::uint64_t seed) {
  ColumnCodecParams params;
  params.quality = 50;
  auto segments = column_encode(img, params);
  Rng rng(seed);
  std::vector<ColumnSegment> kept;
  for (auto& s : segments) {
    if (!rng.bernoulli(loss_rate)) kept.push_back(std::move(s));
  }
  auto result = column_decode(img.width(), img.height(), kept, params);
  return {std::move(result.image), std::move(result.mask)};
}

TEST(Interpolate, LeftRecoversColumnLosses) {
  const Raster img = test_page(96, 240);
  auto lossy = lossy_column_delivery(img, 0.10, 11);
  const double before = psnr(img, lossy.image);
  interpolate_missing(lossy.image, lossy.mask, InterpolationMode::kLeft);
  const double after = psnr(img, lossy.image);
  EXPECT_GT(after, before + 3.0);
  // Mask is fully filled afterwards.
  for (std::uint8_t m : lossy.mask) EXPECT_EQ(m, 1);
}

TEST(Interpolate, LeftBeatsUpForColumnLosses) {
  // Column losses blank vertical runs; the useful neighbours are horizontal.
  // (kUp can only ever reach the pixels above/below the lost run.)
  const Raster img = test_page(96, 240);
  auto a = lossy_column_delivery(img, 0.15, 13);
  auto b = a;
  interpolate_missing(a.image, a.mask, InterpolationMode::kLeft);
  interpolate_missing(b.image, b.mask, InterpolationMode::kUp);
  EXPECT_GT(psnr(img, a.image), psnr(img, b.image));
}

TEST(Interpolate, NoneLeavesMaskUntouched) {
  const Raster img = test_page(48, 100);
  auto lossy = lossy_column_delivery(img, 0.2, 17);
  const auto mask_before = lossy.mask;
  interpolate_missing(lossy.image, lossy.mask, InterpolationMode::kNone);
  EXPECT_EQ(lossy.mask, mask_before);
}

TEST(Interpolate, FillsEverythingEvenFromSinglePixel) {
  Raster img(16, 16, Rgb{0, 0, 0});
  img.at(8, 8) = Rgb{200, 100, 50};
  std::vector<std::uint8_t> mask(256, 0);
  mask[8 * 16 + 8] = 1;
  interpolate_missing(img, mask, InterpolationMode::kLeft);
  for (std::uint8_t m : mask) EXPECT_EQ(m, 1);
  EXPECT_EQ(img.at(0, 0), (Rgb{200, 100, 50}));
}

TEST(Interpolate, RejectsBadMask) {
  Raster img(4, 4);
  std::vector<std::uint8_t> mask(3, 0);
  EXPECT_THROW(interpolate_missing(img, mask, InterpolationMode::kLeft), std::invalid_argument);
}

TEST(Interpolate, ModeNames) {
  EXPECT_STREQ(interpolation_mode_name(InterpolationMode::kLeft), "left");
  EXPECT_STREQ(interpolation_mode_name(InterpolationMode::kNone), "none");
}

}  // namespace
}  // namespace sonic::image
