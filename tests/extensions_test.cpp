// Tests for the paper's proposed extensions implemented here: unequal
// error protection (§4's "higher error protection for important parts"),
// search queries over SMS (§3.1), and the PRBS scrambler that whitens
// low-entropy payloads before OFDM mapping.
#include <gtest/gtest.h>

#include "modem/packet.hpp"
#include "sonic/client.hpp"
#include "sonic/framing.hpp"
#include "sonic/server.hpp"
#include "util/rng.hpp"
#include "web/corpus.hpp"
#include "web/layout.hpp"

namespace sonic {
namespace {

using sonic::util::Bytes;
using sonic::util::Rng;

web::RenderResult small_page() {
  return web::render_html(
      "<h1>Top Headline</h1><p>important masthead content up here</p>"
      "<p>body body body body body body body body body body body body</p>"
      "<p>more body text further down the page that matters less</p>",
      web::LayoutParams{200, 1200, 10, 2});
}

// -------------------------------------------------------------------- UEP ---

TEST(Uep, DisabledPolicyMatchesBaseline) {
  const auto page = small_page();
  const auto base = core::make_bundle(1, "x.pk/", page, {10, 94});
  const auto off = core::make_bundle(1, "x.pk/", page, {10, 94}, 24 * 3600, core::UepPolicy{});
  EXPECT_EQ(base.frames.size(), off.frames.size());
}

TEST(Uep, AddsFramesOnlyForTopRegion) {
  const auto page = small_page();
  const auto base = core::make_bundle(1, "x.pk/", page, {10, 94});
  core::UepPolicy uep;
  uep.enabled = true;
  uep.top_fraction = 0.25;
  uep.copies = 2;
  const auto protected_bundle = core::make_bundle(1, "x.pk/", page, {10, 94}, 24 * 3600, uep);
  EXPECT_GT(protected_bundle.frames.size(), base.frames.size());
  // On this short test page every column is a single RLE segment, so the
  // region split plus the top copies roughly triples the count; on real
  // 10k-px pages (many segments per column) the overhead is ~top_fraction.
  EXPECT_LT(protected_bundle.frames.size(), base.frames.size() * 35 / 10);
}

TEST(Uep, DuplicateFramesStillReassembleExactly) {
  const auto page = small_page();
  core::UepPolicy uep;
  uep.enabled = true;
  const auto bundle = core::make_bundle(2, "y.pk/", page, {50, 94}, 3600, uep);
  core::PageAssembler assembler;
  for (const auto& frame : bundle.frames) assembler.push(frame);
  const auto received = assembler.assemble(2, image::InterpolationMode::kLeft);
  ASSERT_TRUE(received.has_value());
  EXPECT_EQ(received->coverage, 1.0);
  EXPECT_EQ(received->image.width(), page.image.width());
  EXPECT_EQ(received->image.height(), page.image.height());
}

TEST(Uep, TopRegionSurvivesLossBetter) {
  const auto page = small_page();
  core::UepPolicy uep;
  uep.enabled = true;
  uep.top_fraction = 0.3;
  uep.copies = 2;
  const auto bundle = core::make_bundle(3, "z.pk/", page, {10, 94}, 3600, uep);

  double top_cov = 0, bottom_cov = 0;
  const int trials = 10;
  for (int t = 0; t < trials; ++t) {
    Rng rng(100 + static_cast<std::uint64_t>(t));
    core::PageAssembler assembler;
    for (const auto& frame : bundle.frames) {
      // Drop only segment frames: this test measures pixel coverage, not
      // metadata robustness (covered elsewhere).
      const auto parsed = core::parse_frame(frame);
      ASSERT_TRUE(parsed.has_value());
      if (parsed->first.type == 1 && rng.bernoulli(0.25)) continue;
      assembler.push(frame);
    }
    const auto received = assembler.assemble(3, image::InterpolationMode::kNone);
    ASSERT_TRUE(received.has_value());
    const int w = page.image.width();
    const int top_rows = static_cast<int>(page.image.height() * 0.3);
    std::size_t top = 0, bottom = 0;
    for (int y = 0; y < page.image.height(); ++y) {
      for (int x = 0; x < w; ++x) {
        const bool got = received->mask[static_cast<std::size_t>(y) * w + x];
        (y < top_rows ? top : bottom) += got;
      }
    }
    top_cov += static_cast<double>(top) / (static_cast<double>(top_rows) * w);
    bottom_cov += static_cast<double>(bottom) /
                  (static_cast<double>(page.image.height() - top_rows) * w);
  }
  // 25% loss with 2x repetition -> ~6% residual in the top region vs ~25%
  // below; demand a clear separation.
  EXPECT_GT(top_cov / trials, bottom_cov / trials + 0.10);
}

// ---------------------------------------------------------- search queries ---

TEST(Search, QueryWireFormatRoundTrip) {
  sms::QueryRequest req{"cricket score lahore", 31.5, 74.3};
  const auto parsed = sms::parse_query(sms::encode_query(req));
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->query, "cricket score lahore");
  EXPECT_NEAR(parsed->lat, 31.5, 1e-3);
  EXPECT_FALSE(sms::parse_query("SONIC GET url @1,2").has_value());
  EXPECT_FALSE(sms::parse_query("SONIC ASK  @1,2").has_value());
}

TEST(Search, ResultsPageRendersWithLinksIntoCorpus) {
  web::PkCorpus corpus;
  const std::string html = corpus.search_html("cricket", 0);
  const auto page = web::render_html(html, web::LayoutParams{360, 4000, 12, 2});
  ASSERT_GE(page.click_map.size(), 6u);
  // Every result must link to a real corpus page.
  for (const auto& region : page.click_map) {
    EXPECT_NE(corpus.find(region.href), nullptr) << region.href;
  }
  // Deterministic per (query, epoch window).
  EXPECT_EQ(corpus.search_html("cricket", 0), corpus.search_html("cricket", 1));
  EXPECT_NE(corpus.search_html("cricket", 0), corpus.search_html("weather", 0));
}

TEST(Search, EndToEndAskFlow) {
  web::PkCorpus corpus;
  sms::SmsGateway gateway({2.0, 0.5, 0.0, 42});
  core::SonicServer::Params sp;
  sp.layout = web::LayoutParams{240, 2000, 10, 2};
  sp.transmitters = {{"lahore", 93.7, 31.52, 74.35, 40.0}};
  core::SonicServer server(&corpus, &gateway, sp);

  core::SonicClient::Params cp;
  cp.phone_number = "+923001230000";
  cp.lat = 31.52;
  cp.lon = 74.35;
  core::SonicClient client(&gateway, cp);

  EXPECT_EQ(client.ask("election results", 0.0), core::SonicClient::TapResult::kRequestedViaSms);
  server.poll_sms(10.0);
  const auto acks = client.poll_acks(20.0);
  ASSERT_EQ(acks.size(), 1u);
  EXPECT_TRUE(acks[0].accepted);
  EXPECT_EQ(acks[0].url, "search:election results");

  const auto broadcasts = server.advance(20.0 + acks[0].eta_s + 5.0);
  ASSERT_EQ(broadcasts.size(), 1u);
  for (const auto& frame : broadcasts[0].bundle.frames) client.on_frame(frame);
  client.flush(100.0);

  const auto view = client.open("search:election results", 101.0);
  ASSERT_TRUE(view.has_value());
  EXPECT_FALSE(view->click_map.empty());
  // Tapping a result that is not cached falls back to a page request.
  const auto& first = view->click_map.front();
  EXPECT_EQ(client.tap("search:election results", first.x + 1, first.y + 1, 102.0),
            core::SonicClient::TapResult::kRequestedViaSms);
  // Repeating the same query within the results window hits the cache.
  EXPECT_EQ(client.ask("election results", 103.0), core::SonicClient::TapResult::kOpenedCached);
}

TEST(Search, ServerCachesResultsPages) {
  web::PkCorpus corpus;
  sms::SmsGateway gateway({1.0, 0.0, 0.0, 43});
  core::SonicServer::Params sp;
  sp.layout = web::LayoutParams{240, 2000, 10, 2};
  core::SonicServer server(&corpus, &gateway, sp);

  auto send_query = [&](const std::string& from, double now) {
    gateway.send({from, sp.phone_number, sms::encode_query({"mango prices", 0.0, 0.0}), now, 0},
                 now);
    server.poll_sms(now + 5.0);
  };
  send_query("+92300111", 0.0);
  server.advance(15000.0);  // results page leaves the air
  // A *different* user asking in the same 6-hour window reuses the cached
  // render (the same user repeating would hit the uplink dedup table and
  // never reach the pipeline at all).
  send_query("+92300222", 16000.0);
  EXPECT_EQ(server.renders(), 1u);
  EXPECT_EQ(server.render_cache_hits(), 1u);
  EXPECT_EQ(server.metrics().counter_value("requests_served"), 2u);
}

// -------------------------------------------------------------- scrambler ---

TEST(Scrambler, SequenceIsBalancedAndDeterministic) {
  int ones = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) ones += modem::scrambler_bit(static_cast<std::size_t>(i));
  EXPECT_NEAR(static_cast<double>(ones) / n, 0.5, 0.02);
  for (std::size_t i = 0; i < 64; ++i) {
    EXPECT_EQ(modem::scrambler_bit(i), modem::scrambler_bit(i));
  }
}

TEST(Scrambler, WhitensZeroPayloads) {
  // An all-zero payload must produce a roughly balanced coded bitstream —
  // the property that keeps the OFDM crest factor in check.
  modem::PacketCodec codec(modem::PacketSpec{});
  const Bytes zeros(100, 0x00);
  const auto coded = codec.encode(zeros);
  int ones = 0;
  util::BitReader br(coded);
  const std::size_t nbits = codec.encoded_bits(100);
  for (std::size_t i = 0; i < nbits; ++i) ones += br.bit();
  EXPECT_GT(static_cast<double>(ones) / static_cast<double>(nbits), 0.35);
  EXPECT_LT(static_cast<double>(ones) / static_cast<double>(nbits), 0.65);
}

TEST(Scrambler, ScrambledRoundTripStillDecodes) {
  modem::PacketCodec codec(modem::PacketSpec{});
  for (const Bytes& payload : {Bytes(100, 0x00), Bytes(100, 0xff), Bytes(64, 0xaa)}) {
    const auto coded = codec.encode(payload);
    std::vector<float> soft(codec.encoded_bits(payload.size()));
    util::BitReader br(coded);
    for (auto& s : soft) s = static_cast<float>(br.bit());
    const auto decoded = codec.decode(soft, payload.size());
    ASSERT_TRUE(decoded.has_value());
    EXPECT_EQ(*decoded, payload);
  }
}

TEST(Scrambler, OffMatchesLegacyFormat) {
  modem::PacketSpec spec;
  spec.scramble = false;
  modem::PacketCodec codec(spec);
  Rng rng(9);
  Bytes payload(50);
  for (auto& b : payload) b = static_cast<std::uint8_t>(rng.uniform_int(256));
  const auto coded = codec.encode(payload);
  std::vector<float> soft(codec.encoded_bits(50));
  util::BitReader br(coded);
  for (auto& s : soft) s = static_cast<float>(br.bit());
  const auto decoded = codec.decode(soft, 50);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, payload);
}

}  // namespace
}  // namespace sonic
