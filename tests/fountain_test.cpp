#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

#include "fec/fountain.hpp"
#include "util/rng.hpp"

namespace sonic::fec {
namespace {

using sonic::util::Bytes;
using sonic::util::Rng;

std::vector<Bytes> random_blocks(Rng& rng, std::size_t k, std::size_t block_size) {
  std::vector<Bytes> blocks(k);
  for (auto& b : blocks) {
    b.resize(block_size);
    for (auto& byte : b) byte = static_cast<std::uint8_t>(rng.uniform_int(256));
  }
  return blocks;
}

void expect_blocks_identical(const FountainDecoder& decoder, const std::vector<Bytes>& blocks,
                             const std::string& label) {
  for (std::size_t i = 0; i < blocks.size(); ++i) {
    ASSERT_TRUE(decoder.has_block(i)) << label << " block " << i;
    EXPECT_EQ(decoder.block(i), blocks[i]) << label << " block " << i;
  }
}

TEST(Fountain, NeighborSetsAreDeterministicSortedAndCoverCyclically) {
  const std::size_t k = 250;  // LT regime
  for (std::uint32_t r = 0; r < 600; ++r) {
    const auto a = fountain_neighbors(77, r, k);
    const auto b = fountain_neighbors(77, r, k);
    ASSERT_EQ(a, b) << "repair_seq " << r;
    ASSERT_FALSE(a.empty());
    ASSERT_TRUE(std::is_sorted(a.begin(), a.end()));
    ASSERT_TRUE(std::adjacent_find(a.begin(), a.end()) == a.end()) << "duplicate neighbor";
    EXPECT_LT(a.back(), k);
    // The forced cyclic walk: symbol r always touches source r mod k.
    EXPECT_TRUE(std::binary_search(a.begin(), a.end(), r % k));
    // A different page draws a different set (with overwhelming probability
    // for at least one of 600 seqs) — checked in aggregate below.
  }
  std::size_t differing = 0;
  for (std::uint32_t r = 0; r < 64; ++r) {
    if (fountain_neighbors(77, r, k) != fountain_neighbors(78, r, k)) ++differing;
  }
  EXPECT_GT(differing, 32u);
}

TEST(Fountain, EncoderIsStatelessAcrossInstances) {
  Rng rng(1);
  const auto blocks = random_blocks(rng, 60, 91);
  FountainEncoder a(9, blocks);
  FountainEncoder b(9, blocks);
  for (std::uint32_t r : {0u, 1u, 17u, 300u}) {
    EXPECT_EQ(a.repair_symbol(r), b.repair_symbol(r)) << "repair_seq " << r;
  }
}

// The acceptance property: for pages of 1..400 frames and ANY loss pattern
// that leaves at least k * (1 + 0.08) received symbols, reconstruction is
// byte-identical. Below mds_max_k the code is MDS, so even exactly k
// symbols suffice; above it, the all-dense LT default fails with
// probability ~2^-excess, which at 8 % overhead is < 2^-13 per trial —
// and the seeds here are fixed, so a passing run is a permanent proof for
// these patterns.
TEST(Fountain, RoundTripAnyLossPatternWithinOverheadBudget) {
  Rng rng(42);
  const double epsilon = 0.08;
  for (std::size_t k :
       {1u, 2u, 3u, 5u, 9u, 17u, 40u, 85u, 170u, 171u, 200u, 256u, 333u, 400u}) {
    const std::size_t block_size = k > 200 ? 24 : 91;  // keep big-k trials cheap
    const auto blocks = random_blocks(rng, k, block_size);
    FountainEncoder encoder(1000 + static_cast<std::uint32_t>(k), blocks);
    for (double loss : {0.0, 0.1, 0.2, 0.35, 0.5}) {
      // MDS mode has only 255 - k distinct repair points (a Reed-Solomon
      // code lives inside GF(2^8)), so a single systematic pass plus
      // repairs cannot always reach k distinct symbols when k is near
      // mds_max_k AND loss is heavy — real receivers span carousel cycles
      // there. Keep this single-pass property to the regimes it holds in.
      if (k > 127 && k <= 170 && loss > 0.35) continue;
      FountainDecoder decoder(1000 + static_cast<std::uint32_t>(k), k, block_size);
      const auto target =
          std::max(k, static_cast<std::size_t>(std::ceil(static_cast<double>(k) * (1 + epsilon))));
      for (std::size_t i = 0; i < k && decoder.symbols_received() < target; ++i) {
        if (rng.bernoulli(loss)) continue;  // lost on the air
        decoder.add_source(i, blocks[i]);
      }
      // The carousel's repair tail (starting mid-stream: receivers can tune
      // in at any cycle) tops the reception up to the overhead budget.
      std::uint32_t repair_seq = static_cast<std::uint32_t>(rng.uniform_int(5000));
      for (std::uint32_t tries = 0;
           decoder.symbols_received() < target && !decoder.decoded() && tries < 65536; ++tries) {
        decoder.add_repair(repair_seq, encoder.repair_symbol(repair_seq));
        ++repair_seq;
      }
      const std::string label =
          "k=" + std::to_string(k) + " loss=" + std::to_string(loss);
      ASSERT_TRUE(decoder.complete()) << label;
      expect_blocks_identical(decoder, blocks, label);
    }
  }
}

TEST(Fountain, MdsModeDecodesFromExactlyKSymbolsEvenPureRepair) {
  Rng rng(7);
  // Pure repair needs k distinct repair points, i.e. 255 - k >= k: the
  // guarantee covers k up to 127 (above that some sources must arrive, or
  // the receiver waits for the next cycle's systematic pass).
  for (std::size_t k : {1u, 8u, 64u, 127u}) {
    const auto blocks = random_blocks(rng, k, 91);
    FountainEncoder encoder(5, blocks);
    ASSERT_TRUE(encoder.mds_mode()) << k;
    // Worst case: every source frame lost; k repair symbols are enough.
    FountainDecoder decoder(5, k, 91);
    for (std::uint32_t r = 0; r < k; ++r) {
      ASSERT_TRUE(decoder.add_repair(r, encoder.repair_symbol(r))) << "k=" << k << " r=" << r;
    }
    ASSERT_TRUE(decoder.complete()) << "k=" << k;
    EXPECT_EQ(decoder.frames_needed(), 0u);
    expect_blocks_identical(decoder, blocks, "pure-repair k=" + std::to_string(k));
  }
  // Just past the boundary the code switches to LT.
  EXPECT_FALSE(FountainEncoder(5, random_blocks(rng, 171, 24)).mds_mode());
}

TEST(Fountain, LtModePureRepairDecodesWithinOverhead) {
  Rng rng(12);
  const std::size_t k = 300;
  const auto blocks = random_blocks(rng, k, 24);
  FountainEncoder encoder(6, blocks);
  FountainDecoder decoder(6, k, 24);
  std::uint32_t r = 0;
  const auto target = static_cast<std::size_t>(std::ceil(k * 1.08));
  while (decoder.symbols_received() < target) {
    decoder.add_repair(r, encoder.repair_symbol(r));
    ++r;
  }
  ASSERT_TRUE(decoder.complete());
  expect_blocks_identical(decoder, blocks, "LT pure-repair");
}

// Classic LT (soliton_every = 1) stays available as a rateless stream: it
// needs far more than 8 % overhead at this k (that is why it is not the
// default — see DESIGN.md), but fed until convergence it decodes, and the
// cheap peeling stage does the bulk of the work.
TEST(Fountain, ClassicSolitonStreamConvergesByPeeling) {
  Rng rng(3);
  FountainParams params;
  params.soliton_every = 1;
  const std::size_t k = 400;
  const auto blocks = random_blocks(rng, k, 16);
  FountainEncoder encoder(8, blocks, params);
  FountainDecoder decoder(8, k, 16, params);
  // Receivers keep a third of the systematic pass; the stream supplies the
  // rest over as many cycles as it takes.
  for (std::size_t i = 0; i < k; ++i) {
    if (rng.bernoulli(0.67)) continue;
    decoder.add_source(i, blocks[i]);
  }
  std::uint32_t r = 0;
  while (!decoder.complete() && r < 8 * k) {
    decoder.add_repair(r, encoder.repair_symbol(r));
    ++r;
  }
  ASSERT_TRUE(decoder.decoded()) << "not converged after " << r << " repair symbols";
  EXPECT_GT(decoder.peeled(), decoder.eliminated());
  expect_blocks_identical(decoder, blocks, "classic LT");
}

TEST(Fountain, RejectsMalformedAndDuplicateSymbols) {
  Rng rng(9);
  const std::size_t k = 20;
  const auto blocks = random_blocks(rng, k, 91);
  FountainEncoder encoder(4, blocks);
  FountainDecoder decoder(4, k, 91);
  EXPECT_FALSE(decoder.add_source(k, blocks[0]));            // index out of range
  EXPECT_FALSE(decoder.add_source(0, Bytes(90)));            // wrong size
  EXPECT_FALSE(decoder.add_repair(0, Bytes(92)));            // wrong size
  EXPECT_TRUE(decoder.add_source(0, blocks[0]));
  EXPECT_FALSE(decoder.add_source(0, blocks[0]));            // duplicate
  EXPECT_TRUE(decoder.add_repair(1, encoder.repair_symbol(1)));
  EXPECT_FALSE(decoder.add_repair(1, encoder.repair_symbol(1)));  // duplicate
  EXPECT_EQ(decoder.symbols_received(), 2u);
  EXPECT_EQ(decoder.sources_received(), 1u);
  EXPECT_EQ(decoder.repairs_received(), 1u);
}

TEST(Fountain, FramesNeededTracksProgress) {
  Rng rng(14);
  const std::size_t k = 50;
  const auto blocks = random_blocks(rng, k, 91);
  FountainDecoder decoder(2, k, 91);
  EXPECT_EQ(decoder.frames_needed(), k);
  for (std::size_t i = 0; i < 30; ++i) decoder.add_source(i, blocks[i]);
  EXPECT_EQ(decoder.frames_needed(), k - 30);
  FountainEncoder encoder(2, blocks);
  for (std::uint32_t r = 0; r < 20; ++r) decoder.add_repair(r, encoder.repair_symbol(r));
  ASSERT_TRUE(decoder.complete());
  EXPECT_EQ(decoder.frames_needed(), 0u);
}

}  // namespace
}  // namespace sonic::fec
