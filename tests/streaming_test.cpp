// Streaming receive chain: chunk-boundary equivalence for the stateful DSP
// primitives, the FM demodulator, and the StreamReceiver, plus regression
// tests for the batch-only bugs the streaming work flushed out (empty-span
// RF chunks, the spurious first-sample FM phase impulse, per-call acoustic
// filter rebuilds). Run with `ctest -L streaming`.
#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>
#include <vector>

#include "dsp/biquad.hpp"
#include "dsp/fir.hpp"
#include "dsp/resampler.hpp"
#include "fm/acoustic.hpp"
#include "fm/fm_modem.hpp"
#include "modem/ofdm.hpp"
#include "modem/profile.hpp"
#include "modem/stream_receiver.hpp"
#include "sonic/client.hpp"
#include "util/metrics.hpp"
#include "util/rng.hpp"
#include "util/units.hpp"

namespace sonic {
namespace {

using modem::OfdmModem;
using modem::RxBurst;
using modem::StreamReceiver;
using modem::StreamReceiverParams;
using util::Bytes;
using util::Rng;

Bytes random_bytes(Rng& rng, std::size_t n) {
  Bytes out(n);
  for (auto& b : out) b = static_cast<std::uint8_t>(rng.uniform_int(256));
  return out;
}

std::vector<float> random_audio(Rng& rng, std::size_t n, double amp = 0.5) {
  std::vector<float> out(n);
  for (auto& s : out) s = static_cast<float>(rng.uniform(-amp, amp));
  return out;
}

void add_awgn(std::vector<float>& samples, double snr_db, Rng& rng) {
  double power = 0;
  for (float s : samples) power += static_cast<double>(s) * s;
  power /= static_cast<double>(samples.size());
  const double sigma = std::sqrt(power / util::db_to_linear(snr_db));
  for (auto& s : samples) s += static_cast<float>(rng.normal(0.0, sigma));
}

// Splits `samples` into random-sized chunks (including some empty ones) and
// feeds them through `fn`; exercises every boundary the 20 ms mic callback
// of a real deployment could produce.
template <typename Fn>
void feed_chunked(std::span<const float> samples, Rng& rng, std::size_t max_chunk, Fn&& fn) {
  std::size_t pos = 0;
  while (pos < samples.size()) {
    std::size_t len = rng.uniform_int(max_chunk + 1);  // 0..max_chunk
    len = std::min(len, samples.size() - pos);
    fn(samples.subspan(pos, len));
    pos += len;
  }
}

// ------------------------------------------------------- DSP primitives ---

TEST(StreamingDsp, BiquadChunkedMatchesBatch) {
  Rng rng(101);
  const auto input = random_audio(rng, 10000);
  dsp::Biquad batch = dsp::Biquad::lowpass(4000.0, 44100.0);
  dsp::Biquad chunked = dsp::Biquad::lowpass(4000.0, 44100.0);

  const auto expect = batch.process(input);
  std::vector<float> got;
  feed_chunked(input, rng, 257, [&](std::span<const float> c) {
    const auto out = chunked.process(c);
    got.insert(got.end(), out.begin(), out.end());
  });
  ASSERT_EQ(got.size(), expect.size());
  for (std::size_t i = 0; i < expect.size(); ++i) ASSERT_EQ(got[i], expect[i]) << i;
}

TEST(StreamingDsp, FirChunkedMatchesBatch) {
  Rng rng(102);
  const auto input = random_audio(rng, 10000);
  const auto taps = dsp::design_lowpass(6000.0, 44100.0, 63);
  dsp::FirFilter batch(taps);
  dsp::FirFilter chunked(taps);

  const auto expect = batch.process(input);
  std::vector<float> got;
  feed_chunked(input, rng, 129, [&](std::span<const float> c) {
    const auto out = chunked.process(c);
    got.insert(got.end(), out.begin(), out.end());
  });
  ASSERT_EQ(got.size(), expect.size());
  for (std::size_t i = 0; i < expect.size(); ++i) ASSERT_EQ(got[i], expect[i]) << i;
}

class ResamplerRatioTest : public ::testing::TestWithParam<double> {};

TEST_P(ResamplerRatioTest, ChunkedMatchesBatch) {
  Rng rng(103);
  const auto input = random_audio(rng, 20000);
  dsp::Resampler resampler(GetParam());

  const auto expect = resampler.process(input);  // batch mode is const
  std::vector<float> got;
  feed_chunked(input, rng, 997, [&](std::span<const float> c) {
    const auto out = resampler.push(c);
    got.insert(got.end(), out.begin(), out.end());
  });
  const auto tail = resampler.flush();
  got.insert(got.end(), tail.begin(), tail.end());

  ASSERT_EQ(got.size(), expect.size());
  for (std::size_t i = 0; i < expect.size(); ++i) ASSERT_EQ(got[i], expect[i]) << i;
}

INSTANTIATE_TEST_SUITE_P(Ratios, ResamplerRatioTest,
                         ::testing::Values(0.2,            // FM IQ -> audio decimation
                                           1.0 + 30e-6,    // clock-skew epsilon
                                           2.17),          // generic upsample
                         [](const auto& info) {
                           return info.param < 1.0   ? std::string("Decimate")
                                  : info.param < 1.1 ? std::string("Skew")
                                                     : std::string("Upsample");
                         });

TEST(StreamingDsp, ResamplerPushAfterFlushThrows) {
  dsp::Resampler r(0.5);
  (void)r.push(std::vector<float>(100, 0.1f));
  (void)r.flush();
  EXPECT_THROW((void)r.push(std::vector<float>(10, 0.0f)), std::logic_error);
  EXPECT_THROW((void)r.flush(), std::logic_error);
  r.reset();
  EXPECT_NO_THROW((void)r.push(std::vector<float>(10, 0.0f)));
}

TEST(StreamingDsp, ResamplerResetStartsFreshStream) {
  Rng rng(104);
  const auto input = random_audio(rng, 5000);
  dsp::Resampler r(0.37);
  const auto expect = r.process(input);

  auto first = r.push(input);
  const auto first_tail = r.flush();
  first.insert(first.end(), first_tail.begin(), first_tail.end());

  r.reset();
  auto second = r.push(input);
  const auto second_tail = r.flush();
  second.insert(second.end(), second_tail.begin(), second_tail.end());

  ASSERT_EQ(first, expect);
  EXPECT_EQ(second, first);
}

// ------------------------------------------------------------- FM layer ---

TEST(StreamingFm, DemodulatorChunkedMatchesBatch) {
  Rng rng(110);
  fm::FmParams params;
  const auto audio = random_audio(rng, 20000, 0.4);
  fm::FmModulator mod(params);
  const auto iq = mod.modulate(audio);

  fm::FmDemodulator batch(params);
  auto expect = batch.demodulate(iq);
  const auto expect_tail = batch.finish();
  expect.insert(expect.end(), expect_tail.begin(), expect_tail.end());

  fm::FmDemodulator chunked(params);
  std::vector<float> got;
  std::size_t pos = 0;
  while (pos < iq.size()) {
    const std::size_t len = std::min<std::size_t>(1 + rng.uniform_int(2048), iq.size() - pos);
    const auto out = chunked.demodulate(std::span(iq).subspan(pos, len));
    got.insert(got.end(), out.begin(), out.end());
    pos += len;
  }
  const auto got_tail = chunked.finish();
  got.insert(got.end(), got_tail.begin(), got_tail.end());

  ASSERT_EQ(got.size(), expect.size());
  for (std::size_t i = 0; i < expect.size(); ++i) ASSERT_EQ(got[i], expect[i]) << i;
}

// Regression: the discriminator used to measure the first sample's phase
// against an arbitrary reference of 1+0j, turning the stream's initial phase
// into a full-scale frequency impulse that rang through the audio low-pass.
// A constant-phase carrier has zero instantaneous frequency; the demodulated
// audio must be exactly silent, whatever that phase is.
TEST(StreamingFm, FirstSampleProducesNoPhaseImpulse) {
  fm::FmDemodulator demod{fm::FmParams{}};
  const fm::cplx carrier(std::cos(1.0f), std::sin(1.0f));  // constant phase 1 rad
  std::vector<fm::cplx> iq(4000, carrier);
  auto audio = demod.demodulate(iq);
  const auto tail = demod.finish();
  audio.insert(audio.end(), tail.begin(), tail.end());
  ASSERT_FALSE(audio.empty());
  for (std::size_t i = 0; i < audio.size(); ++i) ASSERT_EQ(audio[i], 0.0f) << i;

  // reset() re-arms the first-sample handling for the next stream.
  demod.reset();
  auto again = demod.demodulate(iq);
  for (std::size_t i = 0; i < again.size(); ++i) ASSERT_EQ(again[i], 0.0f) << i;
}

// Regression: an empty chunk used to compute a 0/0 mean signal power, seed
// the AWGN with a NaN noise level, and burn an RNG draw — so an idle mic
// callback shifted the noise sequence for the rest of the stream.
TEST(StreamingFm, RfChannelEmptyChunkIsANoOp) {
  Rng rng(111);
  std::vector<fm::cplx> iq(2000);
  for (auto& s : iq) {
    s = fm::cplx(static_cast<float>(rng.normal(0.0, 0.5)), static_cast<float>(rng.normal(0.0, 0.5)));
  }
  fm::RfChannelParams params;

  fm::RfChannel plain(params, Rng(7));
  const auto expect = plain.process(iq);

  fm::RfChannel interrupted(params, Rng(7));
  const auto empty = interrupted.process(std::span<const fm::cplx>{});
  EXPECT_TRUE(empty.empty());
  const auto got = interrupted.process(iq);

  ASSERT_EQ(got.size(), expect.size());
  for (std::size_t i = 0; i < got.size(); ++i) {
    ASSERT_TRUE(std::isfinite(got[i].real()) && std::isfinite(got[i].imag())) << i;
    ASSERT_EQ(got[i], expect[i]) << i;
  }
}

// Regression: the acoustic channel rebuilt its band-tilt biquad and skew
// resampler on every process() call, so filter state was thrown away at each
// chunk boundary. Given the same first chunk (the noise anchor), any further
// chunking must now be sample-identical.
TEST(StreamingFm, AcousticChunkingIsInvariantGivenSameFirstChunk) {
  Rng rng(112);
  fm::AcousticParams params;
  params.distance_m = 1.0;  // wobble + tilt + skew all active
  const auto audio = random_audio(rng, 30000, 0.4);
  const std::size_t first = 4096;

  fm::AcousticChannel a(params, Rng(21));
  auto expect = a.process(std::span(audio).first(first));
  {
    const auto rest = a.process(std::span(audio).subspan(first));
    expect.insert(expect.end(), rest.begin(), rest.end());
    const auto tail = a.finish();
    expect.insert(expect.end(), tail.begin(), tail.end());
  }

  fm::AcousticChannel b(params, Rng(21));
  auto got = b.process(std::span(audio).first(first));
  std::size_t pos = first;
  while (pos < audio.size()) {
    const std::size_t len = std::min<std::size_t>(1 + rng.uniform_int(777), audio.size() - pos);
    const auto out = b.process(std::span(audio).subspan(pos, len));
    got.insert(got.end(), out.begin(), out.end());
    pos += len;
  }
  const auto tail = b.finish();
  got.insert(got.end(), tail.begin(), tail.end());

  ASSERT_EQ(got.size(), expect.size());
  for (std::size_t i = 0; i < expect.size(); ++i) ASSERT_EQ(got[i], expect[i]) << i;
}

// Regression: a negative clock_skew_ppm silently disabled skew (the `> 0`
// test swallowed it); it now fails loudly at construction.
TEST(StreamingFm, AcousticNegativeClockSkewThrows) {
  fm::AcousticParams params;
  params.clock_skew_ppm = -30.0;
  EXPECT_THROW(fm::AcousticChannel(params, Rng(1)), std::invalid_argument);
  params.clock_skew_ppm = 30.0;
  params.sample_rate_hz = 0.0;
  EXPECT_THROW(fm::AcousticChannel(params, Rng(1)), std::invalid_argument);
}

// ------------------------------------------------------- StreamReceiver ---

// Builds silence + burst + silence + burst + ... and returns the stream plus
// the frames sent per burst.
std::vector<float> multi_burst_stream(const OfdmModem& modem, Rng& rng, int bursts,
                                      std::vector<std::vector<Bytes>>* sent) {
  std::vector<float> stream(1500, 0.0f);
  for (int b = 0; b < bursts; ++b) {
    std::vector<Bytes> frames;
    const int count = 2 + static_cast<int>(rng.uniform_int(3));
    for (int i = 0; i < count; ++i) frames.push_back(random_bytes(rng, 60));
    if (sent != nullptr) sent->push_back(frames);
    const auto s = modem.modulate(frames);
    stream.insert(stream.end(), s.begin(), s.end());
    stream.insert(stream.end(), 700 + rng.uniform_int(900), 0.0f);
  }
  stream.insert(stream.end(), 2500, 0.0f);
  return stream;
}

std::vector<RxBurst> receive_chunked(StreamReceiver& rx, std::span<const float> stream, Rng& rng,
                                     std::size_t max_chunk) {
  std::vector<RxBurst> got;
  feed_chunked(stream, rng, max_chunk, [&](std::span<const float> c) {
    auto out = rx.push(c);
    got.insert(got.end(), out.begin(), out.end());
  });
  auto out = rx.flush();
  got.insert(got.end(), out.begin(), out.end());
  return got;
}

void expect_same_bursts(const std::vector<RxBurst>& expect, const std::vector<RxBurst>& got) {
  ASSERT_EQ(got.size(), expect.size());
  for (std::size_t b = 0; b < expect.size(); ++b) {
    EXPECT_EQ(got[b].start_sample, expect[b].start_sample) << "burst " << b;
    EXPECT_EQ(got[b].end_sample, expect[b].end_sample) << "burst " << b;
    EXPECT_EQ(got[b].truncated, expect[b].truncated) << "burst " << b;
    EXPECT_FLOAT_EQ(got[b].sync_ncc, expect[b].sync_ncc) << "burst " << b;
    ASSERT_EQ(got[b].frames.size(), expect[b].frames.size()) << "burst " << b;
    for (std::size_t f = 0; f < expect[b].frames.size(); ++f) {
      ASSERT_EQ(got[b].frames[f].has_value(), expect[b].frames[f].has_value())
          << "burst " << b << " frame " << f;
      if (expect[b].frames[f].has_value()) {
        EXPECT_EQ(*got[b].frames[f], *expect[b].frames[f]) << "burst " << b << " frame " << f;
      }
    }
  }
}

TEST(StreamReceiverTest, MatchesBatchOnCleanMultiBurstStream) {
  OfdmModem modem(*modem::profiles::get("sonic-10k"));
  Rng rng(120);
  std::vector<std::vector<Bytes>> sent;
  const auto stream = multi_burst_stream(modem, rng, 3, &sent);

  const auto batch = modem.receive_all(stream);
  ASSERT_EQ(batch.size(), sent.size());

  StreamReceiver rx(modem);
  const auto got = receive_chunked(rx, stream, rng, 882);  // ~20 ms chunks
  expect_same_bursts(batch, got);
  for (std::size_t b = 0; b < sent.size(); ++b) {
    ASSERT_EQ(got[b].frames_ok(), sent[b].size());
  }
}

TEST(StreamReceiverTest, MatchesBatchOnNoisyAudio) {
  OfdmModem modem(*modem::profiles::get("sonic-10k"));
  Rng rng(121);
  auto stream = multi_burst_stream(modem, rng, 3, nullptr);
  add_awgn(stream, 28.0, rng);

  const auto batch = modem.receive_all(stream);
  EXPECT_GE(batch.size(), 1u);  // noise must not wipe out the stream entirely

  StreamReceiver rx(modem);
  const auto got = receive_chunked(rx, stream, rng, 1321);
  // The streaming receiver resyncs where receive_all gives up, so the batch
  // result is a prefix of the streaming one.
  ASSERT_GE(got.size(), batch.size());
  expect_same_bursts(batch, {got.begin(), got.begin() + static_cast<long>(batch.size())});
}

TEST(StreamReceiverTest, AnyChunkingGivesIdenticalBursts) {
  OfdmModem modem(*modem::profiles::get("sonic-10k"));
  Rng rng(122);
  auto stream = multi_burst_stream(modem, rng, 2, nullptr);
  add_awgn(stream, 32.0, rng);

  StreamReceiver rx(modem);
  const auto reference = receive_chunked(rx, stream, rng, 882);
  ASSERT_GE(reference.size(), 2u);

  for (const std::size_t max_chunk :
       {std::size_t{1}, std::size_t{63}, std::size_t{4096}, stream.size()}) {
    rx.reset();
    const auto got = receive_chunked(rx, stream, rng, max_chunk);
    expect_same_bursts(reference, got);
  }
}

TEST(StreamReceiverTest, ResyncsAfterCorruptedBurst) {
  OfdmModem modem(*modem::profiles::get("sonic-10k"));
  Rng rng(123);
  std::vector<std::vector<Bytes>> sent;
  auto stream = multi_burst_stream(modem, rng, 2, &sent);

  // Wreck the first burst's header region (after its preambles) so sync
  // succeeds but the header never decodes.
  const auto batch_clean = modem.receive_all(stream);
  ASSERT_EQ(batch_clean.size(), 2u);
  const std::size_t hdr_from = batch_clean[0].start_sample + 2200;
  for (std::size_t i = hdr_from; i < hdr_from + 4000; ++i) {
    stream[i] = static_cast<float>(rng.uniform(-0.5, 0.5));
  }

  // Batch gives up at the undecodable burst...
  const auto batch = modem.receive_all(stream);
  EXPECT_LT(batch.size(), 2u);

  // ...the streaming receiver skips past it and still delivers burst 2.
  core::Metrics metrics;
  StreamReceiverParams params;
  params.metrics = &metrics;
  StreamReceiver rx(modem, params);
  const auto got = receive_chunked(rx, stream, rng, 882);
  ASSERT_GE(got.size(), 1u);
  const auto& last = got.back();
  ASSERT_EQ(last.frames.size(), sent[1].size());
  for (std::size_t f = 0; f < sent[1].size(); ++f) {
    ASSERT_TRUE(last.frames[f].has_value()) << f;
    EXPECT_EQ(*last.frames[f], sent[1][f]) << f;
  }
  EXPECT_GE(metrics.counter_value("rx_resyncs"), 1u);
}

TEST(StreamReceiverTest, BoundedMemoryUnderEndlessPlateau) {
  OfdmModem modem(*modem::profiles::get("sonic-10k"));
  const std::size_t cap = 2 * modem.min_decode_samples();
  core::Metrics metrics;
  StreamReceiverParams params;
  params.max_buffer_samples = cap;
  params.metrics = &metrics;
  StreamReceiver rx(modem, params);

  // A tone periodic in fft_size/2 keeps the Schmidl&Cox metric pinned above
  // the plateau threshold forever — the adversarial case for the buffer.
  const int period = modem.profile().fft_size / 2;
  std::vector<float> chunk(882);
  std::size_t n = 0;
  for (int i = 0; i < 600; ++i) {
    for (auto& s : chunk) {
      s = 0.4f * static_cast<float>(std::sin(util::kTwoPi * static_cast<double>(n % static_cast<std::size_t>(period)) / period));
      ++n;
    }
    (void)rx.push(chunk);
    ASSERT_LE(rx.samples_buffered(), cap) << "push " << i;
  }
  (void)rx.flush();
  EXPECT_LE(rx.buffered_high_water(), cap);
  EXPECT_GT(metrics.counter_value("rx_samples_dropped"), 0u);
}

TEST(StreamReceiverTest, BurstLargerThanCapForcesTruncatedDecode) {
  OfdmModem modem(*modem::profiles::get("sonic-10k"));
  Rng rng(124);
  // 30 frames of 200 bytes: far more samples than twice the header need.
  std::vector<Bytes> frames;
  for (int i = 0; i < 30; ++i) frames.push_back(random_bytes(rng, 200));
  auto stream = modem.modulate(frames);
  stream.insert(stream.begin(), 1000, 0.0f);
  const std::size_t cap = 2 * modem.min_decode_samples();
  ASSERT_GT(stream.size(), cap);

  core::Metrics metrics;
  StreamReceiverParams params;
  params.max_buffer_samples = cap;
  params.metrics = &metrics;
  StreamReceiver rx(modem, params);
  const auto got = receive_chunked(rx, stream, rng, 882);

  ASSERT_EQ(got.size(), 1u);
  EXPECT_TRUE(got[0].truncated);
  EXPECT_EQ(got[0].frames.size(), frames.size());
  EXPECT_LT(got[0].frames_ok(), frames.size());  // the tail decoded as erasures
  EXPECT_LE(rx.buffered_high_water(), cap);
  EXPECT_EQ(metrics.counter_value("rx_forced_decodes"), 1u);
}

TEST(StreamReceiverTest, MetricsObserveTheStream) {
  OfdmModem modem(*modem::profiles::get("sonic-10k"));
  Rng rng(125);
  std::vector<std::vector<Bytes>> sent;
  const auto stream = multi_burst_stream(modem, rng, 2, &sent);

  core::Metrics metrics;
  StreamReceiverParams params;
  params.metrics = &metrics;
  StreamReceiver rx(modem, params);
  const auto got = receive_chunked(rx, stream, rng, 882);
  ASSERT_EQ(got.size(), 2u);

  EXPECT_EQ(metrics.counter_value("rx_bursts"), 2u);
  EXPECT_GE(metrics.counter_value("rx_sync_attempts"), 2u);
  EXPECT_GE(metrics.counter_value("rx_sync_hits"), 2u);
  EXPECT_EQ(metrics.counter_value("rx_frames_ok"), sent[0].size() + sent[1].size());
  EXPECT_EQ(metrics.counter_value("rx_samples"), stream.size());
  EXPECT_EQ(metrics.histogram("rx_burst_ncc").snapshot().count, 2u);
  EXPECT_EQ(metrics.histogram("rx_burst_snr_db").snapshot().count, 2u);
  EXPECT_GT(metrics.histogram("rx_burst_snr_db").snapshot().mean(), 10.0);
  EXPECT_EQ(metrics.histogram("rx_buffered_high_water").snapshot().count, 1u);
}

TEST(StreamReceiverTest, PushAfterFlushThrowsUntilReset) {
  OfdmModem modem(*modem::profiles::get("sonic-10k"));
  StreamReceiver rx(modem);
  (void)rx.push(std::vector<float>(100, 0.0f));
  (void)rx.flush();
  EXPECT_THROW((void)rx.push(std::vector<float>(1, 0.0f)), std::logic_error);
  EXPECT_THROW((void)rx.flush(), std::logic_error);
  rx.reset();
  EXPECT_NO_THROW((void)rx.push(std::vector<float>(1, 0.0f)));
  EXPECT_EQ(rx.samples_pushed(), 1u);
}

TEST(StreamReceiverTest, RejectsCapSmallerThanHeaderNeed) {
  OfdmModem modem(*modem::profiles::get("sonic-10k"));
  StreamReceiverParams params;
  params.max_buffer_samples = modem.min_decode_samples();  // < 2x
  EXPECT_THROW(StreamReceiver(modem, params), std::invalid_argument);
}

// ------------------------------------------------------ client wiring -----

TEST(ClientStreaming, OnAudioRoutesBurstsIntoTheFrameChain) {
  OfdmModem modem(*modem::profiles::get("sonic-10k"));
  Rng rng(130);
  std::vector<Bytes> frames;
  for (int i = 0; i < 4; ++i) frames.push_back(random_bytes(rng, 60));
  auto stream = modem.modulate(frames);
  stream.insert(stream.begin(), 1200, 0.0f);
  stream.insert(stream.end(), 2500, 0.0f);

  core::SonicClient::Params params;
  core::SonicClient client(nullptr, params);
  std::size_t bursts = 0;
  feed_chunked(std::span<const float>(stream), rng, 882,
               [&](std::span<const float> c) { bursts += client.on_audio(c); });
  bursts += client.end_audio();

  EXPECT_EQ(bursts, 1u);
  // Random bytes are not valid wire frames; they must all be counted, either
  // as received or as rejected by validation — proof the audio -> burst ->
  // frame chain is wired through.
  EXPECT_EQ(client.frames_received() + client.frames_dropped_malformed(), frames.size());
  EXPECT_EQ(client.metrics().counter_value("rx_bursts"), 1u);

  // end_audio() rewinds: a second broadcast window starts a fresh stream.
  EXPECT_NO_THROW((void)client.on_audio(std::span<const float>(stream).first(882)));
}

TEST(ClientStreaming, UnknownDownlinkProfileIsRejected) {
  core::SonicClient::Params params;
  params.downlink_profile = "no-such-profile";
  EXPECT_THROW(core::SonicClient(nullptr, params), std::invalid_argument);
}

}  // namespace
}  // namespace sonic
