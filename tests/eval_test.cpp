#include <gtest/gtest.h>

#include "eval/quality.hpp"
#include "image/column_codec.hpp"
#include "image/interpolate.hpp"
#include "util/rng.hpp"
#include "web/layout.hpp"

namespace sonic::eval {
namespace {

using sonic::util::Rng;

image::Raster page_image() {
  const auto page = sonic::web::render_html(
      "<h1>Test Headline For Quality</h1>"
      "<p>body text repeated body text repeated body text repeated body text</p>"
      "<p>more lines of text to fill the page with readable content here</p>"
      "<img width=\"150\" height=\"80\"/>"
      "<p>and a final paragraph of text content for the metric to chew on</p>",
      sonic::web::LayoutParams{240, 1000, 10, 2});
  return page.image;
}

// Simulates the paper's synthetic loss injection: column-codec delivery
// with a fraction of segments dropped, optionally interpolated.
image::Raster lossy(const image::Raster& img, double loss, bool interpolate, std::uint64_t seed) {
  image::ColumnCodecParams params;
  params.quality = 50;
  auto segments = image::column_encode(img, params);
  Rng rng(seed);
  std::vector<image::ColumnSegment> kept;
  for (auto& s : segments) {
    if (!rng.bernoulli(loss)) kept.push_back(std::move(s));
  }
  auto decoded = image::column_decode(img.width(), img.height(), kept, params);
  if (interpolate) {
    image::interpolate_missing(decoded.image, decoded.mask, image::InterpolationMode::kLeft);
  }
  return decoded.image;
}

TEST(Ssim, IdentityIsOne) {
  const auto img = page_image();
  EXPECT_NEAR(ssim(img, img), 1.0, 1e-6);
  EXPECT_NEAR(edge_coherence(img, img), 1.0, 1e-6);
}

TEST(Ssim, DegradesWithLoss) {
  const auto img = page_image();
  double prev = 1.0;
  for (double loss : {0.05, 0.2, 0.5}) {
    const double s = ssim(img, lossy(img, loss, false, 7));
    EXPECT_LT(s, prev + 1e-9) << loss;
    prev = s;
  }
  EXPECT_LT(prev, 0.75);  // 50% uninterpolated loss is bad
}

TEST(Ssim, SizeMismatchThrows) {
  image::Raster a(10, 10), b(11, 10);
  EXPECT_THROW(ssim(a, b), std::invalid_argument);
  EXPECT_THROW(edge_coherence(a, b), std::invalid_argument);
}

TEST(EdgeCoherence, TextSuffersMoreThanContentAfterInterpolation) {
  // Interpolation restores coarse structure (SSIM -> content) better than
  // fine text strokes (edge coherence -> text): "text readability is more
  // susceptible to losses" (Fig. 5).
  const auto img = page_image();
  for (double loss : {0.1, 0.2, 0.5}) {
    const auto repaired = lossy(img, loss, true, 11);
    EXPECT_LT(text_rating(img, repaired), content_rating(img, repaired)) << loss;
  }
}

TEST(Mos, MonotoneAndBounded) {
  const MosCalibration cal;
  double prev = -1;
  for (double m = 0.0; m <= 1.0; m += 0.05) {
    const double r = mos_from_metric(m, cal);
    EXPECT_GE(r, 0.0);
    EXPECT_LE(r, 10.0);
    EXPECT_GE(r, prev);
    prev = r;
  }
  EXPECT_NEAR(mos_from_metric(0.6, {0.6, 8.0}), 5.0, 1e-9);
}

TEST(Ratings, InterpolationImprovesBothQuestions) {
  // Fig. 5's headline: interpolation buys >= 1 point at every loss rate.
  const auto img = page_image();
  for (double loss : {0.05, 0.1, 0.2, 0.5}) {
    const auto without = lossy(img, loss, false, 13);
    const auto with = lossy(img, loss, true, 13);
    EXPECT_GT(content_rating(img, with), content_rating(img, without)) << loss;
    EXPECT_GT(text_rating(img, with), text_rating(img, without)) << loss;
  }
}

TEST(Ratings, DegradeWithLossRate) {
  const auto img = page_image();
  double prev_content = 11, prev_text = 11;
  for (double loss : {0.05, 0.2, 0.5}) {
    const auto damaged = lossy(img, loss, false, 17);
    const double c = content_rating(img, damaged);
    const double t = text_rating(img, damaged);
    EXPECT_LE(c, prev_content + 0.3) << loss;
    EXPECT_LE(t, prev_text + 0.3) << loss;
    prev_content = c;
    prev_text = t;
  }
}

TEST(Ratings, CleanPageScoresHigh) {
  // The logistic MOS map saturates below 10 by design (real raters rarely
  // hand out a perfect score either); clean pages must still score high.
  const auto img = page_image();
  EXPECT_GT(content_rating(img, img), 8.2);
  EXPECT_GT(text_rating(img, img), 8.2);
}

}  // namespace
}  // namespace sonic::eval
