#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <tuple>
#include <vector>

#include "fec/convolutional.hpp"
#include "fec/crc32.hpp"
#include "fec/interleaver.hpp"
#include "fec/reed_solomon.hpp"
#include "util/rng.hpp"

namespace sonic::fec {
namespace {

using sonic::util::Bytes;
using sonic::util::Rng;

Bytes random_bytes(Rng& rng, std::size_t n) {
  Bytes out(n);
  for (auto& b : out) b = static_cast<std::uint8_t>(rng.uniform_int(256));
  return out;
}

// ---------------------------------------------------------------- CRC32 ---

TEST(Crc32, KnownVectors) {
  // Standard check value for "123456789".
  const std::string s = "123456789";
  const std::vector<std::uint8_t> data(s.begin(), s.end());
  EXPECT_EQ(crc32(data), 0xcbf43926u);
  EXPECT_EQ(crc32({}), 0x00000000u);
}

TEST(Crc32, IncrementalMatchesOneShot) {
  Rng rng(1);
  const Bytes data = random_bytes(rng, 1000);
  Crc32 c;
  c.update(std::span(data).subspan(0, 137));
  c.update(std::span(data).subspan(137, 500));
  c.update(std::span(data).subspan(637));
  EXPECT_EQ(c.value(), crc32(data));
}

TEST(Crc32, DetectsSingleBitFlips) {
  Rng rng(2);
  Bytes data = random_bytes(rng, 64);
  const std::uint32_t good = crc32(data);
  for (int i = 0; i < 50; ++i) {
    const std::size_t byte = rng.uniform_int(data.size());
    const int bit = static_cast<int>(rng.uniform_int(8));
    data[byte] ^= static_cast<std::uint8_t>(1u << bit);
    EXPECT_NE(crc32(data), good);
    data[byte] ^= static_cast<std::uint8_t>(1u << bit);
  }
}

TEST(Crc32, ResetRestoresInitialState) {
  Crc32 c;
  c.update(0x42);
  c.reset();
  EXPECT_EQ(c.value(), crc32({}));
}

// -------------------------------------------------------- Convolutional ---

class ConvCodecTest : public ::testing::TestWithParam<std::tuple<ConvCode, PunctureRate>> {};

TEST_P(ConvCodecTest, CleanRoundTrip) {
  const auto [code, rate] = GetParam();
  ConvolutionalCodec codec({code, rate});
  Rng rng(3);
  for (std::size_t len : {1u, 2u, 17u, 100u, 223u}) {
    const Bytes data = random_bytes(rng, len);
    const Bytes enc = codec.encode(data);
    const Bytes dec = codec.decode_hard(enc, len);
    EXPECT_EQ(dec, data) << "len=" << len;
  }
}

TEST_P(ConvCodecTest, EncodedBitsMatchesEncodeOutput) {
  const auto [code, rate] = GetParam();
  ConvolutionalCodec codec({code, rate});
  for (std::size_t len : {1u, 10u, 100u}) {
    Rng rng(len);
    const Bytes data = random_bytes(rng, len);
    const Bytes enc = codec.encode(data);
    const std::size_t bits = codec.encoded_bits(len);
    EXPECT_EQ(enc.size(), (bits + 7) / 8);
  }
}

TEST_P(ConvCodecTest, CorrectsScatteredBitErrors) {
  const auto [code, rate] = GetParam();
  ConvolutionalCodec codec({code, rate});
  Rng rng(5);
  const std::size_t len = 100;
  const Bytes data = random_bytes(rng, len);
  const Bytes enc = codec.encode(data);
  const std::size_t nbits = codec.encoded_bits(len);

  // Rate 1/2 K=9 corrects isolated errors comfortably; punctured rates are
  // weaker, so scale the injected error count with the rate.
  const int errors = rate == PunctureRate::kRate1_2 ? static_cast<int>(nbits / 25)
                     : rate == PunctureRate::kRate2_3 ? static_cast<int>(nbits / 60)
                                                      : static_cast<int>(nbits / 100);
  std::vector<float> soft(nbits);
  util::BitReader br(enc);
  for (auto& s : soft) s = static_cast<float>(br.bit());
  // Flip well-separated bits.
  for (int e = 0; e < errors; ++e) {
    const std::size_t pos = static_cast<std::size_t>(e) * (nbits / static_cast<std::size_t>(errors + 1)) + 3;
    soft[pos] = 1.0f - soft[pos];
  }
  const Bytes dec = codec.decode_soft(soft, len);
  EXPECT_EQ(dec, data);
}

std::string ConvParamName(const ::testing::TestParamInfo<std::tuple<ConvCode, PunctureRate>>& info) {
  const ConvCode code = std::get<0>(info.param);
  const PunctureRate rate = std::get<1>(info.param);
  std::string name = code == ConvCode::kV27 ? "v27" : "v29";
  name += rate == PunctureRate::kRate1_2 ? "_r12" : rate == PunctureRate::kRate2_3 ? "_r23" : "_r34";
  return name;
}

INSTANTIATE_TEST_SUITE_P(
    AllCodes, ConvCodecTest,
    ::testing::Combine(::testing::Values(ConvCode::kV27, ConvCode::kV29),
                       ::testing::Values(PunctureRate::kRate1_2, PunctureRate::kRate2_3,
                                         PunctureRate::kRate3_4)),
    ConvParamName);

TEST(ConvCodec, SoftDecisionsBeatHardDecisions) {
  // With genuinely soft inputs (confidence ~ noise), the soft decoder should
  // recover a payload that hard slicing alone would corrupt.
  ConvolutionalCodec codec({ConvCode::kV29, PunctureRate::kRate1_2});
  Rng rng(7);
  const std::size_t len = 64;
  const Bytes data = random_bytes(rng, len);
  const Bytes enc = codec.encode(data);
  const std::size_t nbits = codec.encoded_bits(len);

  std::vector<float> soft(nbits);
  util::BitReader br(enc);
  for (auto& s : soft) {
    const float bit = static_cast<float>(br.bit());
    // Gaussian noise around the ideal value, sigma = 0.3.
    s = std::clamp(bit + static_cast<float>(rng.normal(0.0, 0.3)), 0.0f, 1.0f);
  }
  EXPECT_EQ(codec.decode_soft(soft, len), data);
}

TEST(ConvCodec, RateReportsEffectiveRate) {
  EXPECT_DOUBLE_EQ(ConvolutionalCodec({ConvCode::kV29, PunctureRate::kRate1_2}).rate(), 0.5);
  EXPECT_DOUBLE_EQ(ConvolutionalCodec({ConvCode::kV29, PunctureRate::kRate2_3}).rate(), 2.0 / 3.0);
  EXPECT_DOUBLE_EQ(ConvolutionalCodec({ConvCode::kV29, PunctureRate::kRate3_4}).rate(), 0.75);
}

TEST(ConvCodec, PuncturedOutputIsShorter) {
  const std::size_t len = 100;
  ConvolutionalCodec r12({ConvCode::kV29, PunctureRate::kRate1_2});
  ConvolutionalCodec r23({ConvCode::kV29, PunctureRate::kRate2_3});
  ConvolutionalCodec r34({ConvCode::kV29, PunctureRate::kRate3_4});
  EXPECT_GT(r12.encoded_bits(len), r23.encoded_bits(len));
  EXPECT_GT(r23.encoded_bits(len), r34.encoded_bits(len));
  // Rate sanity: encoded bits ~ payload bits / rate.
  EXPECT_NEAR(static_cast<double>(r34.encoded_bits(len)), (len * 8 + 8) / 0.75, 4.0);
}

TEST(ConvCodec, AllZerosAndAllOnesPayloads) {
  ConvolutionalCodec codec({ConvCode::kV29, PunctureRate::kRate1_2});
  const Bytes zeros(50, 0x00);
  const Bytes ones(50, 0xff);
  EXPECT_EQ(codec.decode_hard(codec.encode(zeros), 50), zeros);
  EXPECT_EQ(codec.decode_hard(codec.encode(ones), 50), ones);
}

// --------------------------------------------------------- Reed-Solomon ---

TEST(ReedSolomon, GF256TablesConsistent) {
  const GF256& gf = GF256::instance();
  for (int a = 1; a < 256; ++a) {
    EXPECT_EQ(gf.mul(static_cast<std::uint8_t>(a), gf.inv(static_cast<std::uint8_t>(a))), 1);
    EXPECT_EQ(gf.exp(gf.log(static_cast<std::uint8_t>(a))), a);
  }
  // Distributivity spot-check.
  Rng rng(11);
  for (int i = 0; i < 200; ++i) {
    const auto a = static_cast<std::uint8_t>(rng.uniform_int(256));
    const auto b = static_cast<std::uint8_t>(rng.uniform_int(256));
    const auto c = static_cast<std::uint8_t>(rng.uniform_int(256));
    EXPECT_EQ(gf.mul(a, static_cast<std::uint8_t>(b ^ c)), gf.mul(a, b) ^ gf.mul(a, c));
  }
}

TEST(ReedSolomon, CleanRoundTrip) {
  ReedSolomon rs(32);
  Rng rng(13);
  for (std::size_t len : {1u, 50u, 100u, 223u}) {
    const Bytes data = random_bytes(rng, len);
    Bytes block = rs.encode(data);
    EXPECT_EQ(block.size(), len + 32);
    const auto corrected = rs.decode(block);
    ASSERT_TRUE(corrected.has_value());
    EXPECT_EQ(*corrected, 0);
    EXPECT_TRUE(std::equal(data.begin(), data.end(), block.begin()));
  }
}

class RsErrorTest : public ::testing::TestWithParam<int> {};

TEST_P(RsErrorTest, CorrectsUpToHalfNrootsErrors) {
  const int errors = GetParam();
  ReedSolomon rs(32);
  Rng rng(17 + static_cast<std::uint64_t>(errors));
  const std::size_t len = 100;
  const Bytes data = random_bytes(rng, len);
  for (int trial = 0; trial < 20; ++trial) {
    Bytes block = rs.encode(data);
    // Corrupt `errors` distinct random positions.
    std::vector<std::size_t> pos;
    while (pos.size() < static_cast<std::size_t>(errors)) {
      const std::size_t p = rng.uniform_int(block.size());
      if (std::find(pos.begin(), pos.end(), p) == pos.end()) pos.push_back(p);
    }
    for (std::size_t p : pos) block[p] ^= static_cast<std::uint8_t>(1 + rng.uniform_int(255));
    const auto corrected = rs.decode(block);
    ASSERT_TRUE(corrected.has_value()) << "errors=" << errors << " trial=" << trial;
    EXPECT_EQ(*corrected, errors);
    EXPECT_TRUE(std::equal(data.begin(), data.end(), block.begin()));
  }
}

INSTANTIATE_TEST_SUITE_P(ErrorCounts, RsErrorTest, ::testing::Values(1, 2, 5, 10, 15, 16));

TEST(ReedSolomon, FailsBeyondCorrectionCapability) {
  ReedSolomon rs(32);
  Rng rng(19);
  const Bytes data = random_bytes(rng, 100);
  int detected = 0;
  const int trials = 20;
  for (int t = 0; t < trials; ++t) {
    Bytes block = rs.encode(data);
    // 40 errors >> 16 correctable; decoder must not silently "correct".
    for (int e = 0; e < 40; ++e) {
      block[rng.uniform_int(block.size())] ^= static_cast<std::uint8_t>(1 + rng.uniform_int(255));
    }
    const auto r = rs.decode(block);
    const bool payload_intact = r.has_value() && std::equal(data.begin(), data.end(), block.begin());
    if (!r.has_value() || !payload_intact) ++detected;
  }
  // Miscorrection slips through with probability ~ q^-nroots; effectively never.
  EXPECT_EQ(detected, trials);
}

TEST(ReedSolomon, CorrectsFullNrootsErasures) {
  ReedSolomon rs(32);
  Rng rng(23);
  const Bytes data = random_bytes(rng, 150);
  Bytes block = rs.encode(data);
  std::vector<int> erasures;
  while (erasures.size() < 32) {
    const int p = static_cast<int>(rng.uniform_int(block.size()));
    if (std::find(erasures.begin(), erasures.end(), p) == erasures.end()) erasures.push_back(p);
  }
  for (int p : erasures) block[static_cast<std::size_t>(p)] = 0x55;
  const auto corrected = rs.decode(block, erasures);
  ASSERT_TRUE(corrected.has_value());
  EXPECT_TRUE(std::equal(data.begin(), data.end(), block.begin()));
}

TEST(ReedSolomon, MixedErrorsAndErasures) {
  // 2e + f <= 32: use 10 errors + 12 erasures.
  ReedSolomon rs(32);
  Rng rng(29);
  const Bytes data = random_bytes(rng, 120);
  Bytes block = rs.encode(data);
  std::vector<int> touched;
  auto pick = [&]() {
    int p;
    do {
      p = static_cast<int>(rng.uniform_int(block.size()));
    } while (std::find(touched.begin(), touched.end(), p) != touched.end());
    touched.push_back(p);
    return p;
  };
  std::vector<int> erasures;
  for (int i = 0; i < 12; ++i) {
    const int p = pick();
    erasures.push_back(p);
    block[static_cast<std::size_t>(p)] ^= 0xa5;
  }
  for (int i = 0; i < 10; ++i) {
    const int p = pick();
    block[static_cast<std::size_t>(p)] ^= static_cast<std::uint8_t>(1 + rng.uniform_int(255));
  }
  const auto corrected = rs.decode(block, erasures);
  ASSERT_TRUE(corrected.has_value());
  EXPECT_TRUE(std::equal(data.begin(), data.end(), block.begin()));
}

TEST(ReedSolomon, ErasurePositionsMayBeClean) {
  // Declaring an erasure on an uncorrupted byte must still decode.
  ReedSolomon rs(16);
  Rng rng(31);
  const Bytes data = random_bytes(rng, 80);
  Bytes block = rs.encode(data);
  const std::vector<int> erasures{0, 5, 17};
  const auto corrected = rs.decode(block, erasures);
  ASSERT_TRUE(corrected.has_value());
  EXPECT_TRUE(std::equal(data.begin(), data.end(), block.begin()));
}

TEST(ReedSolomon, VariableNroots) {
  Rng rng(37);
  for (int nroots : {4, 8, 16, 32, 64}) {
    ReedSolomon rs(nroots);
    const Bytes data = random_bytes(rng, 50);
    Bytes block = rs.encode(data);
    // Corrupt nroots/2 symbols (the maximum correctable).
    for (int e = 0; e < nroots / 2; ++e) {
      block[static_cast<std::size_t>(e) * 2] ^= 0x3c;
    }
    const auto corrected = rs.decode(block);
    ASSERT_TRUE(corrected.has_value()) << "nroots=" << nroots;
    EXPECT_TRUE(std::equal(data.begin(), data.end(), block.begin()));
  }
}

TEST(ReedSolomon, RejectsOversizedPayload) {
  ReedSolomon rs(32);
  const Bytes data(224, 0);
  EXPECT_THROW(rs.encode(data), std::invalid_argument);
}

TEST(ReedSolomon, RejectsTooManyErasures) {
  ReedSolomon rs(8);
  Rng rng(41);
  const Bytes data = random_bytes(rng, 40);
  Bytes block = rs.encode(data);
  std::vector<int> erasures;
  for (int i = 0; i < 9; ++i) erasures.push_back(i);
  EXPECT_FALSE(rs.decode(block, erasures).has_value());
}

// ----------------------------------------------------------- Interleave ---

TEST(Interleaver, RoundTripExactBlock) {
  BlockInterleaver il(4, 8);
  Rng rng(43);
  const Bytes data = random_bytes(rng, 32);
  const Bytes inter = il.interleave(data);
  EXPECT_EQ(inter.size(), 32u);
  EXPECT_EQ(il.deinterleave(inter, data.size()), data);
}

TEST(Interleaver, RoundTripWithPadding) {
  BlockInterleaver il(5, 7);
  Rng rng(47);
  for (std::size_t len : {1u, 34u, 35u, 36u, 100u}) {
    const Bytes data = random_bytes(rng, len);
    const Bytes inter = il.interleave(data);
    EXPECT_EQ(inter.size() % il.block_size(), 0u);
    EXPECT_EQ(il.deinterleave(inter, len), data);
  }
}

TEST(Interleaver, SpreadsBursts) {
  // A contiguous burst of B bytes in the interleaved stream must touch
  // at least B/rows distinct rows once deinterleaved — i.e. errors become
  // scattered rather than contiguous.
  const int rows = 8, cols = 16;
  BlockInterleaver il(rows, cols);
  Bytes data(static_cast<std::size_t>(rows * cols), 0);
  Bytes inter = il.interleave(data);
  // Burst: corrupt 16 consecutive interleaved bytes.
  for (int i = 0; i < 16; ++i) inter[static_cast<std::size_t>(i) + 10] = 0xff;
  const Bytes deinter = il.deinterleave(inter, data.size());
  // Find the maximum run of corrupted bytes after deinterleaving.
  int max_run = 0, run = 0;
  for (std::uint8_t b : deinter) {
    run = b == 0xff ? run + 1 : 0;
    max_run = std::max(max_run, run);
  }
  EXPECT_LE(max_run, 2);
}

TEST(Interleaver, RejectsBadDims) {
  EXPECT_THROW((BlockInterleaver(0, 4)), std::invalid_argument);
  EXPECT_THROW((BlockInterleaver(4, 0)), std::invalid_argument);
}

}  // namespace
}  // namespace sonic::fec
