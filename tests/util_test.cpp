#include <gtest/gtest.h>

#include <cmath>
#include <map>

#include "util/bytes.hpp"
#include "util/rng.hpp"
#include "util/units.hpp"

namespace sonic::util {
namespace {

TEST(ByteWriterReader, RoundTripsScalars) {
  ByteWriter w;
  w.u8(0xab);
  w.u16(0x1234);
  w.u32(0xdeadbeef);
  w.u64(0x0123456789abcdefull);
  w.str("hello");

  ByteReader r(w.bytes());
  EXPECT_EQ(r.u8(), 0xab);
  EXPECT_EQ(r.u16(), 0x1234);
  EXPECT_EQ(r.u32(), 0xdeadbeefu);
  EXPECT_EQ(r.u64(), 0x0123456789abcdefull);
  EXPECT_EQ(r.str(), "hello");
  EXPECT_TRUE(r.ok());
  EXPECT_EQ(r.remaining(), 0u);
}

TEST(ByteReader, OverrunSetsNotOk) {
  Bytes data{1, 2};
  ByteReader r(data);
  EXPECT_EQ(r.u16(), 0x0201);
  EXPECT_TRUE(r.ok());
  r.u32();
  EXPECT_FALSE(r.ok());
}

TEST(ByteReader, StrWithHugeLengthFailsCleanly) {
  ByteWriter w;
  w.u32(0xffffffffu);
  ByteReader r(w.bytes());
  EXPECT_EQ(r.str(), "");
  EXPECT_FALSE(r.ok());
}

TEST(BitWriterReader, RoundTripsBits) {
  BitWriter w;
  w.bits(0b1011, 4);
  w.bits(0x3ff, 10);
  w.bit(1);
  BitReader r(w.bytes());
  EXPECT_EQ(r.bits(4), 0b1011u);
  EXPECT_EQ(r.bits(10), 0x3ffu);
  EXPECT_EQ(r.bit(), 1);
  EXPECT_TRUE(r.ok());
}

TEST(BitWriterReader, MsbFirstPacking) {
  BitWriter w;
  w.bit(1);  // becomes the MSB of byte 0
  for (int i = 0; i < 7; ++i) w.bit(0);
  ASSERT_EQ(w.bytes().size(), 1u);
  EXPECT_EQ(w.bytes()[0], 0x80);
}

TEST(BitWriter, BitCountTracksPartialBytes) {
  BitWriter w;
  w.bits(0, 3);
  EXPECT_EQ(w.bit_count(), 3u);
  w.bits(0, 8);
  EXPECT_EQ(w.bit_count(), 11u);
}

TEST(BitReader, PastEndReturnsZeroAndNotOk) {
  Bytes data{0xff};
  BitReader r(data);
  EXPECT_EQ(r.bits(8), 0xffu);
  EXPECT_EQ(r.bit(), 0);
  EXPECT_FALSE(r.ok());
}

TEST(Hex, FormatsBytes) {
  Bytes data{0x00, 0xab, 0xff};
  EXPECT_EQ(to_hex(data), "00abff");
}

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += a.next() == b.next();
  EXPECT_LT(same, 4);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
  }
}

TEST(Rng, UniformIntUnbiasedish) {
  Rng rng(11);
  std::map<std::uint64_t, int> counts;
  const int n = 60000;
  for (int i = 0; i < n; ++i) ++counts[rng.uniform_int(6)];
  for (const auto& [v, c] : counts) {
    EXPECT_LT(v, 6u);
    EXPECT_NEAR(c, n / 6, n / 60);
  }
}

TEST(Rng, NormalMomentsApproximatelyCorrect) {
  Rng rng(13);
  double sum = 0, sq = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal(3.0, 2.0);
    sum += x;
    sq += x * x;
  }
  const double mean = sum / n;
  const double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 3.0, 0.05);
  EXPECT_NEAR(var, 4.0, 0.15);
}

TEST(Rng, BernoulliFrequency) {
  Rng rng(17);
  int hits = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) hits += rng.bernoulli(0.3);
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, ZipfFavorsLowRanks) {
  Rng rng(19);
  std::map<int, int> counts;
  for (int i = 0; i < 20000; ++i) ++counts[rng.zipf(25, 1.0)];
  EXPECT_GT(counts[0], counts[10]);
  EXPECT_GT(counts[0], counts[24]);
  for (const auto& [rank, c] : counts) {
    EXPECT_GE(rank, 0);
    EXPECT_LT(rank, 25);
    (void)c;
  }
}

TEST(Rng, PoissonMeanMatches) {
  Rng rng(23);
  double sum = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += rng.poisson(2.5);
  EXPECT_NEAR(sum / n, 2.5, 0.08);
}

TEST(Rng, ForkProducesIndependentStreams) {
  Rng base(99);
  Rng a = base.fork(1);
  Rng b = base.fork(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += a.next() == b.next();
  EXPECT_LT(same, 4);
  // Forks are deterministic too.
  Rng c = Rng(99).fork(1);
  Rng d = Rng(99).fork(1);
  for (int i = 0; i < 16; ++i) EXPECT_EQ(c.next(), d.next());
}

TEST(Rng, ShuffleIsPermutation) {
  Rng rng(31);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto sorted = v;
  rng.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, sorted);
}

TEST(Units, DbLinearRoundTrip) {
  for (double db : {-90.0, -10.0, 0.0, 3.0, 20.0}) {
    EXPECT_NEAR(linear_to_db(db_to_linear(db)), db, 1e-9);
    EXPECT_NEAR(amplitude_to_db(db_to_amplitude(db)), db, 1e-9);
  }
  EXPECT_NEAR(db_to_linear(3.0103), 2.0, 1e-3);
  EXPECT_NEAR(db_to_amplitude(6.0206), 2.0, 1e-3);
}

}  // namespace
}  // namespace sonic::util

// Appended: WAV I/O tests (sonic_tx / sonic_rx substrate).
#include "util/wav.hpp"

namespace sonic::util {
namespace {

TEST(Wav, RoundTripsMonoPcm) {
  std::vector<float> samples(4410);
  for (std::size_t i = 0; i < samples.size(); ++i) {
    samples[i] = 0.5f * static_cast<float>(std::sin(0.05 * static_cast<double>(i)));
  }
  const std::string path = "/tmp/sonic_wav_test.wav";
  write_wav(path, samples, 44100);
  const WavData back = read_wav(path);
  EXPECT_EQ(back.sample_rate_hz, 44100);
  ASSERT_EQ(back.samples.size(), samples.size());
  for (std::size_t i = 0; i < samples.size(); i += 100) {
    EXPECT_NEAR(back.samples[i], samples[i], 1.0 / 12000.0);
  }
  std::remove(path.c_str());
}

TEST(Wav, ClampsOutOfRangeSamples) {
  const std::string path = "/tmp/sonic_wav_clamp.wav";
  write_wav(path, {2.0f, -2.0f, 0.0f}, 8000);
  const WavData back = read_wav(path);
  ASSERT_EQ(back.samples.size(), 3u);
  EXPECT_NEAR(back.samples[0], 1.0f, 0.001f);
  EXPECT_NEAR(back.samples[1], -1.0f, 0.001f);
  std::remove(path.c_str());
}

TEST(Wav, RejectsGarbageFiles) {
  const std::string path = "/tmp/sonic_wav_bad.wav";
  std::FILE* f = std::fopen(path.c_str(), "wb");
  std::fputs("this is not a wav file at all", f);
  std::fclose(f);
  EXPECT_THROW(read_wav(path), std::runtime_error);
  EXPECT_THROW(read_wav("/tmp/definitely-missing-file.wav"), std::runtime_error);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace sonic::util
