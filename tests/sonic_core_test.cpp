#include <gtest/gtest.h>

#include <algorithm>

#include "sonic/cache.hpp"
#include "sonic/client.hpp"
#include "sonic/framing.hpp"
#include "sonic/scheduler.hpp"
#include "sonic/server.hpp"
#include "util/rng.hpp"
#include "web/corpus.hpp"

namespace sonic::core {
namespace {

using sonic::util::Rng;

web::RenderResult small_page(const std::string& link = "target.pk/") {
  return web::render_html(
      "<h1>Headline</h1><p>Some body text for the page that wraps across lines.</p>"
      "<p><a href=\"" + link + "\">read more</a></p><p>tail content</p>",
      web::LayoutParams{240, 1200, 10, 2});
}

// ---------------------------------------------------------------- Framing ---

TEST(Framing, FrameRoundTrip) {
  util::Bytes payload{1, 2, 3, 4, 5};
  const auto frame = serialize_frame({42, 7, 100, 1}, payload);
  EXPECT_EQ(frame.size(), kFrameSize);
  const auto parsed = parse_frame(frame);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->first.page_id, 42u);
  EXPECT_EQ(parsed->first.seq, 7);
  EXPECT_EQ(parsed->first.total, 100);
  EXPECT_EQ(parsed->first.type, 1);
  EXPECT_EQ(parsed->second, payload);
}

TEST(Framing, RejectsMalformedFrames) {
  EXPECT_FALSE(parse_frame(util::Bytes(50, 0)).has_value());   // wrong size
  EXPECT_FALSE(parse_frame(util::Bytes(200, 0)).has_value());  // wrong size
  auto frame = serialize_frame({1, 0, 1, 0}, {});
  frame[8] = 9;  // bad type
  EXPECT_FALSE(parse_frame(frame).has_value());
  auto frame2 = serialize_frame({1, 5, 3, 0}, {});  // seq >= total
  EXPECT_FALSE(parse_frame(frame2).has_value());
}

TEST(Framing, MetadataRoundTrip) {
  PageMetadata m;
  m.url = "khabar.pk/story-1";
  m.width = 1080;
  m.height = 9999;
  m.quality = 10;
  m.expiry_s = 7200;
  m.click_map = {{10, 20, 100, 16, "khabar.pk/"}, {10, 400, 220, 16, "khabar.pk/story-2"}};
  const auto parsed = parse_metadata(serialize_metadata(m));
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->url, m.url);
  EXPECT_EQ(parsed->width, 1080);
  EXPECT_EQ(parsed->height, 9999);
  EXPECT_EQ(parsed->expiry_s, 7200u);
  ASSERT_EQ(parsed->click_map.size(), 2u);
  EXPECT_EQ(parsed->click_map[1].href, "khabar.pk/story-2");
}

TEST(Framing, TruncatedMetadataKeepsPrefixClickMap) {
  PageMetadata m;
  m.url = "x.pk/";
  m.width = 100;
  m.height = 100;
  for (int i = 0; i < 20; ++i) m.click_map.push_back({i, i, 10, 10, "x.pk/story-1"});
  auto blob = serialize_metadata(m);
  blob.resize(blob.size() / 2);  // lose the tail chunk
  const auto parsed = parse_metadata(blob);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->url, "x.pk/");
  EXPECT_LT(parsed->click_map.size(), 20u);
}

TEST(Framing, BundleFramesAreFixedSize) {
  const auto page = small_page();
  const auto bundle = make_bundle(5, "test.pk/", page, {10, 94});
  EXPECT_GT(bundle.frames.size(), 4u);
  for (const auto& f : bundle.frames) EXPECT_EQ(f.size(), kFrameSize);
  // Every frame parses and carries the right page id and total.
  for (const auto& f : bundle.frames) {
    const auto parsed = parse_frame(f);
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(parsed->first.page_id, 5u);
    EXPECT_EQ(parsed->first.total, bundle.frames.size());
  }
}

TEST(Assembler, FullDeliveryReconstructsPage) {
  const auto page = small_page();
  const auto bundle = make_bundle(9, "full.pk/", page, {50, 94});
  PageAssembler assembler;
  for (const auto& f : bundle.frames) assembler.push(f);
  EXPECT_TRUE(assembler.complete(9));
  const auto received = assembler.assemble(9, image::InterpolationMode::kLeft);
  ASSERT_TRUE(received.has_value());
  EXPECT_EQ(received->metadata.url, "full.pk/");
  EXPECT_EQ(received->image.width(), page.image.width());
  EXPECT_EQ(received->image.height(), page.image.height());
  EXPECT_EQ(received->coverage, 1.0);
  EXPECT_EQ(received->frame_loss_rate(), 0.0);
  EXPECT_EQ(received->metadata.click_map.size(), page.click_map.size());
  EXPECT_GT(image::psnr(page.image, received->image), 18.0);
}

TEST(Assembler, ToleratesLossDuplicatesAndReordering) {
  const auto page = small_page();
  const auto bundle = make_bundle(3, "messy.pk/", page, {10, 94});
  Rng rng(5);
  std::vector<util::Bytes> frames = bundle.frames;
  rng.shuffle(frames);
  PageAssembler assembler;
  std::size_t dropped = 0;
  for (const auto& f : frames) {
    if (rng.bernoulli(0.10)) {
      ++dropped;
      continue;
    }
    assembler.push(f);
    if (rng.bernoulli(0.3)) assembler.push(f);  // duplicate delivery
  }
  ASSERT_GT(dropped, 0u);
  const auto received = assembler.assemble(3, image::InterpolationMode::kLeft);
  ASSERT_TRUE(received.has_value());
  EXPECT_LT(received->coverage, 1.0 + 1e-9);
  EXPECT_GT(received->coverage, 0.6);
  EXPECT_NEAR(received->frame_loss_rate(), 0.10, 0.08);
  // Interpolation fills the image fully.
  EXPECT_EQ(received->image.width(), page.image.width());
}

TEST(Assembler, MetadataRedundancySurvivesFirstCopyLoss) {
  const auto page = small_page();
  const auto bundle = make_bundle(4, "meta.pk/", page, {10, 94});
  PageAssembler assembler;
  // Drop every metadata frame in the first half of the stream; the tail
  // copy must still provide the geometry.
  std::size_t skipped = 0;
  for (std::size_t i = 0; i < bundle.frames.size(); ++i) {
    const auto parsed = parse_frame(bundle.frames[i]);
    ASSERT_TRUE(parsed.has_value());
    if (parsed->first.type == 0 && i < bundle.frames.size() / 2) {
      ++skipped;
      continue;
    }
    assembler.push(bundle.frames[i]);
  }
  ASSERT_GT(skipped, 0u);
  const auto received = assembler.assemble(4, image::InterpolationMode::kLeft);
  ASSERT_TRUE(received.has_value());
  EXPECT_EQ(received->metadata.url, "meta.pk/");
  EXPECT_EQ(received->metadata.click_map.size(), page.click_map.size());
}

TEST(Assembler, NoMetadataMeansNoPage) {
  const auto page = small_page();
  const auto bundle = make_bundle(6, "lost.pk/", page, {10, 94});
  PageAssembler assembler;
  for (const auto& f : bundle.frames) {
    const auto parsed = parse_frame(f);
    if (parsed->first.type == 0) continue;  // all metadata lost
    assembler.push(f);
  }
  EXPECT_FALSE(assembler.assemble(6, image::InterpolationMode::kLeft).has_value());
}

TEST(Assembler, TracksMultiplePagesIndependently) {
  const auto bundle_a = make_bundle(1, "a.pk/", small_page(), {10, 94});
  const auto bundle_b = make_bundle(2, "b.pk/", small_page(), {10, 94});
  PageAssembler assembler;
  // Interleave the two pages' frames.
  for (std::size_t i = 0; i < std::max(bundle_a.frames.size(), bundle_b.frames.size()); ++i) {
    if (i < bundle_a.frames.size()) assembler.push(bundle_a.frames[i]);
    if (i < bundle_b.frames.size()) assembler.push(bundle_b.frames[i]);
  }
  EXPECT_EQ(assembler.known_pages().size(), 2u);
  EXPECT_TRUE(assembler.complete(1));
  EXPECT_TRUE(assembler.complete(2));
  EXPECT_EQ(assembler.assemble(1, image::InterpolationMode::kLeft)->metadata.url, "a.pk/");
  EXPECT_EQ(assembler.assemble(2, image::InterpolationMode::kLeft)->metadata.url, "b.pk/");
  assembler.drop(1);
  EXPECT_EQ(assembler.known_pages().size(), 1u);
}

// -------------------------------------------------------------- Scheduler ---

TEST(Scheduler, DrainsAtAggregateRate) {
  BroadcastScheduler sched({10000.0, 1});  // 1250 B/s
  sched.enqueue("a", 12500, 0.0);
  EXPECT_NEAR(sched.backlog_bytes(), 12500.0, 1.0);
  auto done = sched.advance(5.0);
  EXPECT_TRUE(done.empty());
  EXPECT_NEAR(sched.backlog_bytes(), 12500.0 - 6250.0, 1.0);
  done = sched.advance(10.0);
  ASSERT_EQ(done.size(), 1u);
  EXPECT_EQ(done[0].url, "a");
  EXPECT_NEAR(done[0].completed_at_s, 10.0, 0.01);
  EXPECT_NEAR(sched.backlog_bytes(), 0.0, 1e-6);
}

TEST(Scheduler, MultiFrequencyMultipliesRate) {
  BroadcastScheduler one({10000.0, 1});
  BroadcastScheduler four({10000.0, 4});
  one.enqueue("x", 100000, 0.0);
  four.enqueue("x", 100000, 0.0);
  EXPECT_TRUE(one.advance(40.0).empty());   // needs 80 s at 1.25 kB/s
  EXPECT_EQ(four.advance(40.0).size(), 1u); // needs 20 s at 5 kB/s
}

TEST(Scheduler, PriorityOutranksFifoButNotInFlight) {
  BroadcastScheduler sched({8000.0, 1});  // 1000 B/s
  sched.enqueue("slow", 5000, 0.0, 0);
  sched.advance(1.0);  // "slow" is now in flight
  sched.enqueue("bulk", 3000, 1.0, 0);
  sched.enqueue("urgent", 1000, 1.5, 1);
  const auto done = sched.advance(20.0);
  ASSERT_EQ(done.size(), 3u);
  EXPECT_EQ(done[0].url, "slow");    // not preempted
  EXPECT_EQ(done[1].url, "urgent");  // jumps the bulk refresh
  EXPECT_EQ(done[2].url, "bulk");
}

TEST(Scheduler, EtaAccountsForBacklog) {
  BroadcastScheduler sched({10000.0, 1});
  EXPECT_NEAR(sched.eta_s(1250), 1.0, 0.01);
  sched.enqueue("a", 12500, 0.0);
  EXPECT_NEAR(sched.eta_s(1250), 11.0, 0.01);
}

TEST(Scheduler, BacklogAccumulatesWhenRateInsufficient) {
  // The Fig. 4(c) phenomenon: at 10 kbps the queue never drains.
  BroadcastScheduler sched({10000.0, 1});
  double backlog_peak = 0;
  for (int hour = 0; hour < 24; ++hour) {
    // 2 MB of fresh content per hour > 4.5 MB/h of capacity? 10kbps =
    // 4.5 MB/h, so push 6 MB to exceed it.
    sched.enqueue("refresh" + std::to_string(hour), 6000000, hour * 3600.0);
    sched.advance((hour + 1) * 3600.0);
    backlog_peak = std::max(backlog_peak, sched.backlog_bytes());
  }
  EXPECT_GT(sched.backlog_bytes(), 1000000.0);  // still backlogged
  BroadcastScheduler fast({40000.0, 1});
  for (int hour = 0; hour < 24; ++hour) {
    fast.enqueue("refresh" + std::to_string(hour), 6000000, hour * 3600.0);
    fast.advance((hour + 1) * 3600.0);
  }
  EXPECT_NEAR(fast.backlog_bytes(), 0.0, 1.0);  // 18 MB/h capacity drains
}

// ------------------------------------------------------------------ Cache ---

ReceivedPage fake_page(const std::string& url, std::uint32_t expiry_s) {
  ReceivedPage page;
  page.metadata.url = url;
  page.metadata.width = 10;
  page.metadata.height = 10;
  page.metadata.expiry_s = expiry_s;
  page.image = image::Raster(10, 10);
  page.coverage = 1.0;
  return page;
}

TEST(Cache, StoresAndExpires) {
  PageCache cache;
  cache.put(fake_page("a.pk/", 100), 0.0);
  EXPECT_NE(cache.get("a.pk/", 50.0), nullptr);
  EXPECT_EQ(cache.get("a.pk/", 150.0), nullptr);  // expired
  EXPECT_EQ(cache.size(), 0u);                     // lazily evicted
}

TEST(Cache, CatalogListsUnexpired) {
  PageCache cache;
  cache.put(fake_page("a.pk/", 100), 0.0);
  cache.put(fake_page("b.pk/", 1000), 0.0);
  EXPECT_EQ(cache.catalog(50.0).size(), 2u);
  const auto later = cache.catalog(500.0);
  ASSERT_EQ(later.size(), 1u);
  EXPECT_EQ(later[0].url, "b.pk/");
}

TEST(Cache, BoundedEvictsOldest) {
  PageCache cache(2);
  cache.put(fake_page("old.pk/", 10000), 0.0);
  cache.put(fake_page("mid.pk/", 10000), 10.0);
  cache.put(fake_page("new.pk/", 10000), 20.0);
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.get("old.pk/", 21.0), nullptr);
  EXPECT_NE(cache.get("new.pk/", 21.0), nullptr);
}

TEST(Cache, PutOverwritesSameUrl) {
  PageCache cache;
  cache.put(fake_page("a.pk/", 100), 0.0);
  auto updated = fake_page("a.pk/", 100000);
  updated.coverage = 0.5;
  cache.put(std::move(updated), 50.0);
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_NE(cache.get("a.pk/", 5000.0), nullptr);
}

// ----------------------------------------------- Server/client integration ---

struct World {
  web::PkCorpus corpus;
  sms::SmsGateway gateway{{2.0, 0.5, 0.0, 99}};
  SonicServer::Params server_params;
  World() {
    server_params.layout = web::LayoutParams{240, 2000, 10, 2};  // small, fast renders
    server_params.transmitters = {{"lahore", 93.7, 31.52, 74.35, 40.0}};
  }
};

TEST(ServerClient, SmsRequestAckAndBroadcastRoundTrip) {
  World w;
  SonicServer server(&w.corpus, &w.gateway, w.server_params);
  SonicClient::Params cp;
  cp.phone_number = "+923001234567";
  cp.lat = 31.52;
  cp.lon = 74.35;
  SonicClient client(&w.gateway, cp);

  const std::string url = w.corpus.pages()[0].url;
  EXPECT_EQ(client.request(url, 0.0), SonicClient::TapResult::kRequestedViaSms);

  server.poll_sms(10.0);  // request delivered by now
  const auto acks = client.poll_acks(20.0);
  ASSERT_EQ(acks.size(), 1u);
  EXPECT_TRUE(acks[0].accepted);
  EXPECT_EQ(acks[0].url, url);
  EXPECT_NEAR(acks[0].frequency_mhz, 93.7, 0.01);
  EXPECT_GT(acks[0].eta_s, 0.0);

  // Let the broadcast complete and deliver the frames losslessly.
  const auto broadcasts = server.advance(20.0 + acks[0].eta_s + 5.0);
  ASSERT_EQ(broadcasts.size(), 1u);
  EXPECT_EQ(broadcasts[0].bundle.metadata.url, url);
  for (const auto& frame : broadcasts[0].bundle.frames) client.on_frame(frame);
  const auto cached = client.flush(100.0);
  ASSERT_EQ(cached.size(), 1u);
  EXPECT_EQ(cached[0], url);

  const auto view = client.open(url, 101.0);
  ASSERT_TRUE(view.has_value());
  EXPECT_EQ(view->image.width(), cp.device_width);
}

TEST(ServerClient, NackForUnknownPageAndNoCoverage) {
  World w;
  SonicServer server(&w.corpus, &w.gateway, w.server_params);
  SonicClient::Params cp;
  cp.phone_number = "+923009999999";
  cp.lat = 31.52;
  cp.lon = 74.35;
  SonicClient client(&w.gateway, cp);

  client.request("does-not-exist.pk/", 0.0);
  server.poll_sms(10.0);
  auto acks = client.poll_acks(20.0);
  ASSERT_EQ(acks.size(), 1u);
  EXPECT_FALSE(acks[0].accepted);
  EXPECT_EQ(acks[0].reason, "unknown-page");

  // A user outside every transmitter's range.
  SonicClient::Params far;
  far.phone_number = "+923008888888";
  far.lat = 24.86;  // Karachi, ~1000 km from the Lahore transmitter
  far.lon = 67.0;
  SonicClient remote(&w.gateway, far);
  remote.request(w.corpus.pages()[0].url, 30.0);
  server.poll_sms(40.0);
  acks = remote.poll_acks(50.0);
  ASSERT_EQ(acks.size(), 1u);
  EXPECT_FALSE(acks[0].accepted);
  EXPECT_EQ(acks[0].reason, "no-coverage");
}

TEST(ServerClient, DownlinkOnlyUserReceivesBroadcastsButCannotRequest) {
  World w;
  SonicServer server(&w.corpus, &w.gateway, w.server_params);
  SonicClient user_a(nullptr, SonicClient::Params{});  // no SMS (user A/B)
  EXPECT_FALSE(user_a.has_uplink());

  const std::string url = w.corpus.pages()[4].url;
  server.push_pages({url}, 0.0);
  const auto broadcasts = server.advance(100000.0);
  ASSERT_EQ(broadcasts.size(), 1u);
  for (const auto& frame : broadcasts[0].bundle.frames) user_a.on_frame(frame);
  user_a.flush(10.0);
  EXPECT_TRUE(user_a.open(url, 11.0).has_value());
  EXPECT_EQ(user_a.request("anything.pk/", 12.0), SonicClient::TapResult::kNoUplink);
}

TEST(ServerClient, TapOnLinkNavigatesOrRequests) {
  World w;
  SonicServer server(&w.corpus, &w.gateway, w.server_params);
  SonicClient::Params cp;
  cp.phone_number = "+923001111111";
  cp.lat = 31.52;
  cp.lon = 74.35;
  cp.device_width = 240;  // same as transmitted width: 1:1 coordinates
  SonicClient client(&w.gateway, cp);

  // Deliver the landing page of site 0.
  const std::string url = w.corpus.pages()[0].url;
  server.push_pages({url}, 0.0);
  for (const auto& b : server.advance(100000.0)) {
    for (const auto& frame : b.bundle.frames) client.on_frame(frame);
  }
  client.flush(10.0);
  const ReceivedPage* page = client.cache().get(url, 11.0);
  ASSERT_NE(page, nullptr);
  ASSERT_FALSE(page->metadata.click_map.empty());
  const auto& region = page->metadata.click_map.front();

  // Tap in the middle of the first link: target is not cached, so the
  // client must fall back to an SMS request.
  const auto result = client.tap(url, region.x + region.w / 2, region.y + region.h / 2, 12.0);
  EXPECT_EQ(result, SonicClient::TapResult::kRequestedViaSms);
  // Tap on empty space does nothing.
  EXPECT_EQ(client.tap(url, 1, 1, 13.0), SonicClient::TapResult::kNoLink);
}

TEST(ServerClient, ServerRenderCacheAvoidsRerendering) {
  World w;
  SonicServer server(&w.corpus, &w.gateway, w.server_params);
  const std::string url = w.corpus.pages()[8].url;
  server.push_pages({url}, 0.0);
  server.push_pages({url}, 60.0);  // same hour: cached render
  EXPECT_EQ(server.renders(), 1u);
  EXPECT_EQ(server.render_cache_hits(), 1u);
}

TEST(ServerClient, LossyDeliveryStillYieldsReadablePage) {
  World w;
  SonicServer server(&w.corpus, &w.gateway, w.server_params);
  SonicClient client(nullptr, SonicClient::Params{});
  const std::string url = w.corpus.pages()[12].url;
  server.push_pages({url}, 0.0);
  const auto broadcasts = server.advance(1e9);
  ASSERT_EQ(broadcasts.size(), 1u);
  Rng rng(21);
  std::size_t delivered = 0;
  for (const auto& frame : broadcasts[0].bundle.frames) {
    if (rng.bernoulli(0.10)) continue;  // 10% frame loss
    client.on_frame(frame);
    ++delivered;
  }
  ASSERT_LT(delivered, broadcasts[0].bundle.frames.size());
  const auto cached = client.flush(10.0);
  ASSERT_EQ(cached.size(), 1u);
  const ReceivedPage* page = client.cache().get(url, 11.0);
  ASSERT_NE(page, nullptr);
  EXPECT_GT(page->coverage, 0.75);
  EXPECT_NEAR(page->frame_loss_rate(), 0.10, 0.07);
}

}  // namespace
}  // namespace sonic::core
