#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <map>

#include "fec/fountain.hpp"
#include "sonic/cache.hpp"
#include "sonic/client.hpp"
#include "sonic/framing.hpp"
#include "sonic/scheduler.hpp"
#include "sonic/server.hpp"
#include "util/rng.hpp"
#include "web/corpus.hpp"

namespace sonic::core {
namespace {

using sonic::util::Rng;

web::RenderResult small_page(const std::string& link = "target.pk/") {
  return web::render_html(
      "<h1>Headline</h1><p>Some body text for the page that wraps across lines.</p>"
      "<p><a href=\"" + link + "\">read more</a></p><p>tail content</p>",
      web::LayoutParams{240, 1200, 10, 2});
}

// ---------------------------------------------------------------- Framing ---

TEST(Framing, FrameRoundTrip) {
  util::Bytes payload{1, 2, 3, 4, 5};
  const auto frame = serialize_frame({42, 7, 100, 1}, payload);
  EXPECT_EQ(frame.size(), kFrameSize);
  const auto parsed = parse_frame(frame);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->first.page_id, 42u);
  EXPECT_EQ(parsed->first.seq, 7);
  EXPECT_EQ(parsed->first.total, 100);
  EXPECT_EQ(parsed->first.type, 1);
  EXPECT_EQ(parsed->second, payload);
}

TEST(Framing, RejectsMalformedFrames) {
  EXPECT_FALSE(parse_frame(util::Bytes(50, 0)).has_value());   // wrong size
  EXPECT_FALSE(parse_frame(util::Bytes(200, 0)).has_value());  // wrong size
  auto frame = serialize_frame({1, 0, 1, 0}, {});
  frame[8] = 9;  // bad type
  EXPECT_FALSE(parse_frame(frame).has_value());
  auto frame2 = serialize_frame({1, 5, 3, 0}, {});  // seq >= total
  EXPECT_FALSE(parse_frame(frame2).has_value());
}

TEST(Framing, MetadataRoundTrip) {
  PageMetadata m;
  m.url = "khabar.pk/story-1";
  m.width = 1080;
  m.height = 9999;
  m.quality = 10;
  m.expiry_s = 7200;
  m.click_map = {{10, 20, 100, 16, "khabar.pk/"}, {10, 400, 220, 16, "khabar.pk/story-2"}};
  const auto parsed = parse_metadata(serialize_metadata(m));
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->url, m.url);
  EXPECT_EQ(parsed->width, 1080);
  EXPECT_EQ(parsed->height, 9999);
  EXPECT_EQ(parsed->expiry_s, 7200u);
  ASSERT_EQ(parsed->click_map.size(), 2u);
  EXPECT_EQ(parsed->click_map[1].href, "khabar.pk/story-2");
}

TEST(Framing, TruncatedMetadataKeepsPrefixClickMap) {
  PageMetadata m;
  m.url = "x.pk/";
  m.width = 100;
  m.height = 100;
  for (int i = 0; i < 20; ++i) m.click_map.push_back({i, i, 10, 10, "x.pk/story-1"});
  auto blob = serialize_metadata(m);
  blob.resize(blob.size() / 2);  // lose the tail chunk
  const auto parsed = parse_metadata(blob);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->url, "x.pk/");
  EXPECT_LT(parsed->click_map.size(), 20u);
}

TEST(Framing, BundleFramesAreFixedSize) {
  const auto page = small_page();
  const auto bundle = make_bundle(5, "test.pk/", page, {10, 94});
  EXPECT_GT(bundle.frames.size(), 4u);
  for (const auto& f : bundle.frames) EXPECT_EQ(f.size(), kFrameSize);
  // Every frame parses and carries the right page id and total.
  for (const auto& f : bundle.frames) {
    const auto parsed = parse_frame(f);
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(parsed->first.page_id, 5u);
    EXPECT_EQ(parsed->first.total, bundle.frames.size());
  }
}

TEST(Assembler, FullDeliveryReconstructsPage) {
  const auto page = small_page();
  const auto bundle = make_bundle(9, "full.pk/", page, {50, 94});
  PageAssembler assembler;
  for (const auto& f : bundle.frames) assembler.push(f);
  EXPECT_TRUE(assembler.complete(9));
  const auto received = assembler.assemble(9, image::InterpolationMode::kLeft);
  ASSERT_TRUE(received.has_value());
  EXPECT_EQ(received->metadata.url, "full.pk/");
  EXPECT_EQ(received->image.width(), page.image.width());
  EXPECT_EQ(received->image.height(), page.image.height());
  EXPECT_EQ(received->coverage, 1.0);
  EXPECT_EQ(received->frame_loss_rate(), 0.0);
  EXPECT_EQ(received->metadata.click_map.size(), page.click_map.size());
  EXPECT_GT(image::psnr(page.image, received->image), 18.0);
}

TEST(Assembler, ToleratesLossDuplicatesAndReordering) {
  const auto page = small_page();
  const auto bundle = make_bundle(3, "messy.pk/", page, {10, 94});
  Rng rng(5);
  std::vector<util::Bytes> frames = bundle.frames;
  rng.shuffle(frames);
  PageAssembler assembler;
  std::size_t dropped = 0;
  for (const auto& f : frames) {
    if (rng.bernoulli(0.10)) {
      ++dropped;
      continue;
    }
    assembler.push(f);
    if (rng.bernoulli(0.3)) assembler.push(f);  // duplicate delivery
  }
  ASSERT_GT(dropped, 0u);
  const auto received = assembler.assemble(3, image::InterpolationMode::kLeft);
  ASSERT_TRUE(received.has_value());
  EXPECT_LT(received->coverage, 1.0 + 1e-9);
  EXPECT_GT(received->coverage, 0.6);
  EXPECT_NEAR(received->frame_loss_rate(), 0.10, 0.08);
  // Interpolation fills the image fully.
  EXPECT_EQ(received->image.width(), page.image.width());
}

TEST(Assembler, MetadataRedundancySurvivesFirstCopyLoss) {
  const auto page = small_page();
  const auto bundle = make_bundle(4, "meta.pk/", page, {10, 94});
  PageAssembler assembler;
  // Drop every metadata frame in the first half of the stream; the tail
  // copy must still provide the geometry.
  std::size_t skipped = 0;
  for (std::size_t i = 0; i < bundle.frames.size(); ++i) {
    const auto parsed = parse_frame(bundle.frames[i]);
    ASSERT_TRUE(parsed.has_value());
    if (parsed->first.type == 0 && i < bundle.frames.size() / 2) {
      ++skipped;
      continue;
    }
    assembler.push(bundle.frames[i]);
  }
  ASSERT_GT(skipped, 0u);
  const auto received = assembler.assemble(4, image::InterpolationMode::kLeft);
  ASSERT_TRUE(received.has_value());
  EXPECT_EQ(received->metadata.url, "meta.pk/");
  EXPECT_EQ(received->metadata.click_map.size(), page.click_map.size());
}

TEST(Assembler, NoMetadataMeansNoPage) {
  const auto page = small_page();
  const auto bundle = make_bundle(6, "lost.pk/", page, {10, 94});
  PageAssembler assembler;
  for (const auto& f : bundle.frames) {
    const auto parsed = parse_frame(f);
    if (parsed->first.type == 0) continue;  // all metadata lost
    assembler.push(f);
  }
  EXPECT_FALSE(assembler.assemble(6, image::InterpolationMode::kLeft).has_value());
}

TEST(Assembler, TracksMultiplePagesIndependently) {
  const auto bundle_a = make_bundle(1, "a.pk/", small_page(), {10, 94});
  const auto bundle_b = make_bundle(2, "b.pk/", small_page(), {10, 94});
  PageAssembler assembler;
  // Interleave the two pages' frames.
  for (std::size_t i = 0; i < std::max(bundle_a.frames.size(), bundle_b.frames.size()); ++i) {
    if (i < bundle_a.frames.size()) assembler.push(bundle_a.frames[i]);
    if (i < bundle_b.frames.size()) assembler.push(bundle_b.frames[i]);
  }
  EXPECT_EQ(assembler.known_pages().size(), 2u);
  EXPECT_TRUE(assembler.complete(1));
  EXPECT_TRUE(assembler.complete(2));
  EXPECT_EQ(assembler.assemble(1, image::InterpolationMode::kLeft)->metadata.url, "a.pk/");
  EXPECT_EQ(assembler.assemble(2, image::InterpolationMode::kLeft)->metadata.url, "b.pk/");
  assembler.drop(1);
  EXPECT_EQ(assembler.known_pages().size(), 1u);
}

// -------------------------------------------------------------- Scheduler ---

TEST(Scheduler, DrainsAtAggregateRate) {
  BroadcastScheduler sched({10000.0, 1});  // 1250 B/s
  sched.enqueue("a", 12500, 0.0);
  EXPECT_NEAR(sched.backlog_bytes(), 12500.0, 1.0);
  auto done = sched.advance(5.0);
  EXPECT_TRUE(done.empty());
  EXPECT_NEAR(sched.backlog_bytes(), 12500.0 - 6250.0, 1.0);
  done = sched.advance(10.0);
  ASSERT_EQ(done.size(), 1u);
  EXPECT_EQ(done[0].url, "a");
  EXPECT_NEAR(done[0].completed_at_s, 10.0, 0.01);
  EXPECT_NEAR(sched.backlog_bytes(), 0.0, 1e-6);
}

TEST(Scheduler, MultiFrequencyMultipliesRate) {
  BroadcastScheduler one({10000.0, 1});
  BroadcastScheduler four({10000.0, 4});
  one.enqueue("x", 100000, 0.0);
  four.enqueue("x", 100000, 0.0);
  EXPECT_TRUE(one.advance(40.0).empty());   // needs 80 s at 1.25 kB/s
  EXPECT_EQ(four.advance(40.0).size(), 1u); // needs 20 s at 5 kB/s
}

TEST(Scheduler, PriorityOutranksFifoButNotInFlight) {
  BroadcastScheduler sched({8000.0, 1});  // 1000 B/s
  sched.enqueue("slow", 5000, 0.0, 0);
  sched.advance(1.0);  // "slow" is now in flight
  sched.enqueue("bulk", 3000, 1.0, 0);
  sched.enqueue("urgent", 1000, 1.5, 1);
  const auto done = sched.advance(20.0);
  ASSERT_EQ(done.size(), 3u);
  EXPECT_EQ(done[0].url, "slow");    // not preempted
  EXPECT_EQ(done[1].url, "urgent");  // jumps the bulk refresh
  EXPECT_EQ(done[2].url, "bulk");
}

TEST(Scheduler, EtaAccountsForBacklog) {
  BroadcastScheduler sched({10000.0, 1});
  EXPECT_NEAR(sched.eta_s(1250), 1.0, 0.01);
  sched.enqueue("a", 12500, 0.0);
  EXPECT_NEAR(sched.eta_s(1250), 11.0, 0.01);
}

TEST(Scheduler, BacklogAccumulatesWhenRateInsufficient) {
  // The Fig. 4(c) phenomenon: at 10 kbps the queue never drains.
  BroadcastScheduler sched({10000.0, 1});
  double backlog_peak = 0;
  for (int hour = 0; hour < 24; ++hour) {
    // 2 MB of fresh content per hour > 4.5 MB/h of capacity? 10kbps =
    // 4.5 MB/h, so push 6 MB to exceed it.
    sched.enqueue("refresh" + std::to_string(hour), 6000000, hour * 3600.0);
    sched.advance((hour + 1) * 3600.0);
    backlog_peak = std::max(backlog_peak, sched.backlog_bytes());
  }
  EXPECT_GT(sched.backlog_bytes(), 1000000.0);  // still backlogged
  BroadcastScheduler fast({40000.0, 1});
  for (int hour = 0; hour < 24; ++hour) {
    fast.enqueue("refresh" + std::to_string(hour), 6000000, hour * 3600.0);
    fast.advance((hour + 1) * 3600.0);
  }
  EXPECT_NEAR(fast.backlog_bytes(), 0.0, 1.0);  // 18 MB/h capacity drains
}

// ------------------------------------------------------------------ Cache ---

ReceivedPage fake_page(const std::string& url, std::uint32_t expiry_s) {
  ReceivedPage page;
  page.metadata.url = url;
  page.metadata.width = 10;
  page.metadata.height = 10;
  page.metadata.expiry_s = expiry_s;
  page.image = image::Raster(10, 10);
  page.coverage = 1.0;
  return page;
}

TEST(Cache, StoresAndExpires) {
  PageCache cache;
  cache.put(fake_page("a.pk/", 100), 0.0);
  EXPECT_NE(cache.get("a.pk/", 50.0), nullptr);
  EXPECT_EQ(cache.get("a.pk/", 150.0), nullptr);  // expired
  EXPECT_EQ(cache.size(), 0u);                     // lazily evicted
}

TEST(Cache, CatalogListsUnexpired) {
  PageCache cache;
  cache.put(fake_page("a.pk/", 100), 0.0);
  cache.put(fake_page("b.pk/", 1000), 0.0);
  EXPECT_EQ(cache.catalog(50.0).size(), 2u);
  const auto later = cache.catalog(500.0);
  ASSERT_EQ(later.size(), 1u);
  EXPECT_EQ(later[0].url, "b.pk/");
}

TEST(Cache, BoundedEvictsOldest) {
  PageCache cache(2);
  cache.put(fake_page("old.pk/", 10000), 0.0);
  cache.put(fake_page("mid.pk/", 10000), 10.0);
  cache.put(fake_page("new.pk/", 10000), 20.0);
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.get("old.pk/", 21.0), nullptr);
  EXPECT_NE(cache.get("new.pk/", 21.0), nullptr);
}

TEST(Cache, PutOverwritesSameUrl) {
  PageCache cache;
  cache.put(fake_page("a.pk/", 100), 0.0);
  auto updated = fake_page("a.pk/", 100000);
  updated.coverage = 0.5;
  cache.put(std::move(updated), 50.0);
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_NE(cache.get("a.pk/", 5000.0), nullptr);
}

// ----------------------------------------------- Server/client integration ---

struct World {
  web::PkCorpus corpus;
  sms::SmsGateway gateway{{2.0, 0.5, 0.0, 99}};
  SonicServer::Params server_params;
  World() {
    server_params.layout = web::LayoutParams{240, 2000, 10, 2};  // small, fast renders
    server_params.transmitters = {{"lahore", 93.7, 31.52, 74.35, 40.0}};
  }
};

TEST(ServerClient, SmsRequestAckAndBroadcastRoundTrip) {
  World w;
  SonicServer server(&w.corpus, &w.gateway, w.server_params);
  SonicClient::Params cp;
  cp.phone_number = "+923001234567";
  cp.lat = 31.52;
  cp.lon = 74.35;
  SonicClient client(&w.gateway, cp);

  const std::string url = w.corpus.pages()[0].url;
  EXPECT_EQ(client.request(url, 0.0), SonicClient::TapResult::kRequestedViaSms);

  server.poll_sms(10.0);  // request delivered by now
  const auto acks = client.poll_acks(20.0);
  ASSERT_EQ(acks.size(), 1u);
  EXPECT_TRUE(acks[0].accepted);
  EXPECT_EQ(acks[0].url, url);
  EXPECT_NEAR(acks[0].frequency_mhz, 93.7, 0.01);
  EXPECT_GT(acks[0].eta_s, 0.0);

  // Let the broadcast complete and deliver the frames losslessly.
  const auto broadcasts = server.advance(20.0 + acks[0].eta_s + 5.0);
  ASSERT_EQ(broadcasts.size(), 1u);
  EXPECT_EQ(broadcasts[0].bundle.metadata.url, url);
  for (const auto& frame : broadcasts[0].bundle.frames) client.on_frame(frame);
  const auto cached = client.flush(100.0);
  ASSERT_EQ(cached.size(), 1u);
  EXPECT_EQ(cached[0], url);

  const auto view = client.open(url, 101.0);
  ASSERT_TRUE(view.has_value());
  EXPECT_EQ(view->image.width(), cp.device_width);
}

TEST(ServerClient, NackForUnknownPageAndNoCoverage) {
  World w;
  SonicServer server(&w.corpus, &w.gateway, w.server_params);
  SonicClient::Params cp;
  cp.phone_number = "+923009999999";
  cp.lat = 31.52;
  cp.lon = 74.35;
  SonicClient client(&w.gateway, cp);

  client.request("does-not-exist.pk/", 0.0);
  server.poll_sms(10.0);
  auto acks = client.poll_acks(20.0);
  ASSERT_EQ(acks.size(), 1u);
  EXPECT_FALSE(acks[0].accepted);
  EXPECT_EQ(acks[0].reason, "unknown-page");

  // A user outside every transmitter's range.
  SonicClient::Params far;
  far.phone_number = "+923008888888";
  far.lat = 24.86;  // Karachi, ~1000 km from the Lahore transmitter
  far.lon = 67.0;
  SonicClient remote(&w.gateway, far);
  remote.request(w.corpus.pages()[0].url, 30.0);
  server.poll_sms(40.0);
  acks = remote.poll_acks(50.0);
  ASSERT_EQ(acks.size(), 1u);
  EXPECT_FALSE(acks[0].accepted);
  EXPECT_EQ(acks[0].reason, "no-coverage");
}

TEST(ServerClient, DownlinkOnlyUserReceivesBroadcastsButCannotRequest) {
  World w;
  SonicServer server(&w.corpus, &w.gateway, w.server_params);
  SonicClient user_a(nullptr, SonicClient::Params{});  // no SMS (user A/B)
  EXPECT_FALSE(user_a.has_uplink());

  const std::string url = w.corpus.pages()[4].url;
  server.push_pages({url}, 0.0);
  const auto broadcasts = server.advance(100000.0);
  ASSERT_EQ(broadcasts.size(), 1u);
  for (const auto& frame : broadcasts[0].bundle.frames) user_a.on_frame(frame);
  user_a.flush(10.0);
  EXPECT_TRUE(user_a.open(url, 11.0).has_value());
  EXPECT_EQ(user_a.request("anything.pk/", 12.0), SonicClient::TapResult::kNoUplink);
}

TEST(ServerClient, TapOnLinkNavigatesOrRequests) {
  World w;
  SonicServer server(&w.corpus, &w.gateway, w.server_params);
  SonicClient::Params cp;
  cp.phone_number = "+923001111111";
  cp.lat = 31.52;
  cp.lon = 74.35;
  cp.device_width = 240;  // same as transmitted width: 1:1 coordinates
  SonicClient client(&w.gateway, cp);

  // Deliver the landing page of site 0.
  const std::string url = w.corpus.pages()[0].url;
  server.push_pages({url}, 0.0);
  for (const auto& b : server.advance(100000.0)) {
    for (const auto& frame : b.bundle.frames) client.on_frame(frame);
  }
  client.flush(10.0);
  const ReceivedPage* page = client.cache().get(url, 11.0);
  ASSERT_NE(page, nullptr);
  ASSERT_FALSE(page->metadata.click_map.empty());
  const auto& region = page->metadata.click_map.front();

  // Tap in the middle of the first link: target is not cached, so the
  // client must fall back to an SMS request.
  const auto result = client.tap(url, region.x + region.w / 2, region.y + region.h / 2, 12.0);
  EXPECT_EQ(result, SonicClient::TapResult::kRequestedViaSms);
  // Tap on empty space does nothing.
  EXPECT_EQ(client.tap(url, 1, 1, 13.0), SonicClient::TapResult::kNoLink);
}

TEST(ServerClient, ServerRenderCacheAvoidsRerendering) {
  World w;
  SonicServer server(&w.corpus, &w.gateway, w.server_params);
  const std::string url = w.corpus.pages()[8].url;
  server.push_pages({url}, 0.0);
  server.push_pages({url}, 60.0);  // same hour: cached render
  EXPECT_EQ(server.renders(), 1u);
  EXPECT_EQ(server.render_cache_hits(), 1u);
}

TEST(ServerClient, LossyDeliveryStillYieldsReadablePage) {
  World w;
  SonicServer server(&w.corpus, &w.gateway, w.server_params);
  SonicClient client(nullptr, SonicClient::Params{});
  const std::string url = w.corpus.pages()[12].url;
  server.push_pages({url}, 0.0);
  const auto broadcasts = server.advance(1e9);
  ASSERT_EQ(broadcasts.size(), 1u);
  Rng rng(21);
  std::size_t delivered = 0;
  for (const auto& frame : broadcasts[0].bundle.frames) {
    if (rng.bernoulli(0.10)) continue;  // 10% frame loss
    client.on_frame(frame);
    ++delivered;
  }
  ASSERT_LT(delivered, broadcasts[0].bundle.frames.size());
  const auto cached = client.flush(10.0);
  ASSERT_EQ(cached.size(), 1u);
  const ReceivedPage* page = client.cache().get(url, 11.0);
  ASSERT_NE(page, nullptr);
  EXPECT_GT(page->coverage, 0.75);
  EXPECT_NEAR(page->frame_loss_rate(), 0.10, 0.07);
}

// ------------------------------------------------- Scheduler: preemption ---

TEST(Scheduler, UserRequestPreemptsCarouselAtFrameBoundary) {
  BroadcastScheduler sched({8000.0, 1});  // 1000 B/s = 10 frames/s
  sched.enqueue("carousel:page", 1000, 0.0, 0, /*preemptible=*/true);
  sched.advance(0.25);  // 250 B sent: frame 3 is on the air
  sched.enqueue("urgent", 300, 0.25, 1);
  EXPECT_EQ(sched.preemptions(), 1u);
  const auto done = sched.advance(10.0);
  ASSERT_EQ(done.size(), 2u);
  EXPECT_EQ(done[0].url, "urgent");
  EXPECT_EQ(done[1].url, "carousel:page");
  // The in-flight frame (bytes 200..300) still went out; the carousel
  // resumed with exactly its 7 unsent frames — nothing re-transmitted.
  EXPECT_EQ(done[1].bytes, 700u);
  EXPECT_NEAR(done[0].completed_at_s, 0.55, 0.01);
  EXPECT_NEAR(done[1].completed_at_s, 1.25, 0.01);
}

TEST(Scheduler, EqualPriorityDoesNotPreemptCarousel) {
  BroadcastScheduler sched({8000.0, 1});
  sched.enqueue("carousel:page", 1000, 0.0, 0, /*preemptible=*/true);
  sched.advance(0.25);
  sched.enqueue("refresh", 300, 0.25, 0);  // same lane: waits its turn
  EXPECT_EQ(sched.preemptions(), 0u);
  const auto done = sched.advance(10.0);
  ASSERT_EQ(done.size(), 2u);
  EXPECT_EQ(done[0].url, "carousel:page");
  EXPECT_EQ(done[1].url, "refresh");
}

// --------------------------------------------------------------- Carousel ---

std::size_t count_repair_frames(const PageBundle& bundle) {
  std::size_t repairs = 0;
  for (const auto& frame : bundle.frames) {
    if (frame[8] == kFrameTypeRepair) ++repairs;
  }
  return repairs;
}

TEST(Carousel, PopularityCatalogAndPersistentRepairStream) {
  World w;
  w.server_params.carousel_enabled = true;
  w.server_params.carousel.max_pages = 2;
  w.server_params.carousel.repair_overhead = 0.25;
  SonicServer server(&w.corpus, &w.gateway, w.server_params);
  const std::string hot = w.corpus.pages()[0].url;
  const std::string warm = w.corpus.pages()[1].url;
  const std::string cold = w.corpus.pages()[2].url;

  auto make_client = [&](const std::string& phone) {
    SonicClient::Params cp;
    cp.phone_number = phone;
    cp.lat = 31.52;
    cp.lon = 74.35;
    return SonicClient(&w.gateway, cp);
  };
  auto a = make_client("+923001111100");
  auto b = make_client("+923001111101");
  a.request(hot, 0.0);
  b.request(hot, 0.0);
  a.request(warm, 1.0);
  // `cold` gets no hits at all and must stay out of the catalog.
  server.poll_sms(10.0);

  // First advance: the user broadcasts drain and the first carousel cycle
  // is enqueued (its airtime starts at the next advance).
  server.advance(10000.0);
  ASSERT_NE(server.carousel(), nullptr);
  const auto catalog = server.carousel()->catalog();
  ASSERT_EQ(catalog.size(), 2u);
  EXPECT_EQ(catalog[0].first, hot);
  EXPECT_EQ(catalog[0].second, 2u);
  EXPECT_EQ(catalog[1].first, warm);
  for (const auto& [url, hits] : catalog) EXPECT_NE(url, cold);

  // Cycle 1 completes; each page carries its 25 % repair tail.
  const auto cycle1 = server.advance(30000.0);
  ASSERT_EQ(cycle1.size(), 2u);
  EXPECT_EQ(server.carousel()->cycles_completed(), 1u);
  std::map<std::string, PageBundle> first;
  for (const auto& done : cycle1) first[done.bundle.metadata.url] = done.bundle;
  ASSERT_TRUE(first.count(hot) == 1 && first.count(warm) == 1);
  const std::size_t repairs1 = count_repair_frames(first[hot]);
  const std::size_t sources1 = first[hot].frames.size() - repairs1;
  EXPECT_EQ(repairs1, static_cast<std::size_t>(std::ceil(sources1 * 0.25)));

  // Cycle 2: same catalog, but the repair stream continues where cycle 1
  // stopped — fresh equations, not a replay.
  server.advance(30001.0);  // enqueue cycle 2
  const auto cycle2 = server.advance(60000.0);
  ASSERT_EQ(cycle2.size(), 2u);
  EXPECT_EQ(server.carousel()->cycles_completed(), 2u);
  std::map<std::string, PageBundle> second;
  for (const auto& done : cycle2) second[done.bundle.metadata.url] = done.bundle;
  const std::size_t repairs2 = count_repair_frames(second[hot]);
  EXPECT_EQ(server.carousel()->next_repair_seq(hot), repairs1 + repairs2);
  // Cycle 2's repair tail continues the stream where cycle 1 stopped (the
  // wire seq of its first repair frame is cycle 1's count), so receivers
  // accumulate fresh equations instead of a replay.
  const auto parsed =
      parse_frame(*(second[hot].frames.end() - static_cast<long>(repairs2)));
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->first.type, kFrameTypeRepair);
  EXPECT_EQ(parsed->first.seq, repairs1);
}

TEST(Carousel, UserRequestCutsInMidCycle) {
  World w;
  w.server_params.carousel_enabled = true;
  w.server_params.carousel.max_pages = 1;
  w.server_params.rate_bps = 1000.0;  // 125 B/s: a page stays on the air for minutes
  SonicServer server(&w.corpus, &w.gateway, w.server_params);
  SonicClient::Params cp;
  cp.phone_number = "+923001112222";
  cp.lat = 31.52;
  cp.lon = 74.35;
  SonicClient client(&w.gateway, cp);

  const std::string popular = w.corpus.pages()[0].url;
  const std::string wanted = w.corpus.pages()[5].url;
  client.request(popular, 0.0);
  server.poll_sms(5.0);
  server.advance(100000.0);  // user broadcast done; carousel cycle enqueued
  ASSERT_EQ(server.carousel()->pages_in_flight(), 1u);
  server.advance(100001.0);  // a second of cycle airtime: mid-page

  client.request(wanted, 100001.0);
  server.poll_sms(100010.0);  // SMS delivered; preempts the carousel at a frame boundary
  EXPECT_GE(server.scheduler().preemptions(), 1u);
  const auto done = server.advance(200000.0);
  ASSERT_EQ(done.size(), 2u);
  EXPECT_EQ(done[0].bundle.metadata.url, wanted);  // the user page cut in
  EXPECT_EQ(done[1].bundle.metadata.url, popular);
  EXPECT_LT(done[0].completed_at_s, done[1].completed_at_s);
  EXPECT_EQ(server.carousel()->cycles_completed(), 1u);
}

// -------------------------------------------- Wire compatibility (v1/v2) ---

TEST(Framing, SeedReceiverIgnoresRepairFramesGracefully) {
  // A v1-era receiver is a bare PageAssembler: repair frames must be inert
  // for it — no crash, no state corruption, page decodes from the sources.
  const auto page = small_page();
  const auto bundle = make_bundle(31, "compat.pk/", page, {10, 94});
  fec::FountainEncoder encoder(31, bundle_fountain_blocks(bundle));
  PageAssembler assembler;
  const auto k = static_cast<std::uint16_t>(bundle.frames.size());
  for (std::uint16_t r = 0; r < 8; ++r) {  // repair tail interleaved up front
    assembler.push(serialize_repair_frame(31, r, k, encoder.repair_symbol(r)));
  }
  for (const auto& frame : bundle.frames) assembler.push(frame);
  EXPECT_TRUE(assembler.complete(31));
  const auto received = assembler.assemble(31, image::InterpolationMode::kLeft);
  ASSERT_TRUE(received.has_value());
  EXPECT_EQ(received->coverage, 1.0);
  EXPECT_EQ(received->frames_received, static_cast<std::size_t>(k));  // repairs not counted
}

TEST(Framing, FountainBlockRoundTripsSourceFrames) {
  const auto page = small_page();
  const auto bundle = make_bundle(8, "block.pk/", page, {10, 94});
  const auto k = static_cast<std::uint16_t>(bundle.frames.size());
  for (std::uint16_t seq = 0; seq < k; ++seq) {
    const auto rebuilt = frame_from_fountain_block(8, seq, k, fountain_block(bundle.frames[seq]));
    ASSERT_TRUE(rebuilt.has_value()) << "seq " << seq;
    EXPECT_EQ(*rebuilt, bundle.frames[seq]) << "seq " << seq;
  }
}

// ------------------------------------------------- Client: v2 + hardening ---

TEST(ServerClient, MalformedFramesAreDroppedAndCounted) {
  SonicClient client(nullptr, SonicClient::Params{});

  client.on_frame(util::Bytes(50, 0));   // short
  client.on_frame(util::Bytes(101, 0));  // oversized
  auto bad_type = serialize_frame({1, 0, 4, 1}, util::Bytes{1, 2, 3});
  bad_type[8] = 9;  // unknown type
  client.on_frame(bad_type);
  client.on_frame(serialize_frame({1, 5, 3, 1}, util::Bytes{1}));  // seq >= total
  auto bad_len = serialize_frame({1, 0, 4, 1}, util::Bytes{1, 2, 3});
  bad_len[9] = 0xff;  // payload_len runs past the frame end
  client.on_frame(bad_len);
  auto zero_total_repair = serialize_repair_frame(1, 0, 4, util::Bytes(kFountainBlockSize, 0));
  zero_total_repair[6] = 0;  // total (k) = 0
  zero_total_repair[7] = 0;
  client.on_frame(zero_total_repair);
  EXPECT_EQ(client.frames_dropped_malformed(), 6u);
  EXPECT_EQ(client.frames_received(), 0u);

  // A valid repair frame establishes k = 4 for page 1; a later repair frame
  // claiming k = 7 contradicts it and is dropped, not believed.
  client.on_frame(serialize_repair_frame(1, 0, 4, util::Bytes(kFountainBlockSize, 0)));
  client.on_frame(serialize_repair_frame(1, 1, 7, util::Bytes(kFountainBlockSize, 0)));
  EXPECT_EQ(client.frames_dropped_malformed(), 7u);
  EXPECT_EQ(client.frames_received(), 1u);
  EXPECT_EQ(client.repair_frames_received(), 1u);
  EXPECT_EQ(client.metrics().counter_value("frames_dropped_malformed"), 7u);

  // Valid source frames still flow after all that garbage.
  client.on_frame(serialize_frame({2, 0, 1, 1}, util::Bytes{42}));
  EXPECT_EQ(client.frames_received(), 2u);
  client.flush(0.0);  // and nothing above corrupted flushable state
}

TEST(ServerClient, DownlinkOnlyClientConvergesViaCarouselRepair) {
  World w;
  w.server_params.carousel_enabled = true;
  w.server_params.carousel.max_pages = 1;
  w.server_params.carousel.repair_overhead = 0.5;
  SonicServer server(&w.corpus, &w.gateway, w.server_params);
  SonicClient::Params cp;
  cp.phone_number = "+923001113333";
  cp.lat = 31.52;
  cp.lon = 74.35;
  SonicClient requester(&w.gateway, cp);
  const std::string url = w.corpus.pages()[3].url;
  requester.request(url, 0.0);
  server.poll_sms(5.0);

  // User B: downlink only, 35 % frame loss — beyond what interpolation can
  // paper over, but the cyclic repair stream keeps supplying fresh symbols.
  SonicClient listener(nullptr, SonicClient::Params{});
  SonicClient reference(nullptr, SonicClient::Params{});
  Rng rng(77);
  // Short rounds, all inside one render epoch, so every cycle rebroadcasts
  // the same bundle (a re-render would legitimately mint a new page).
  double now = 10.0;
  for (int round = 0; round < 6; ++round) {
    now += 300.0;
    for (const auto& done : server.advance(now)) {
      for (const auto& frame : done.bundle.frames) {
        reference.on_frame(frame);
        if (!rng.bernoulli(0.35)) listener.on_frame(frame);
      }
    }
  }
  const auto cached = listener.flush(now);
  ASSERT_EQ(cached.size(), 1u);
  EXPECT_EQ(cached[0], url);
  EXPECT_EQ(listener.pages_fountain_decoded(), 1u);

  const ReceivedPage* page = listener.cache().get(url, now);
  ASSERT_NE(page, nullptr);
  EXPECT_EQ(page->coverage, 1.0);  // every pixel received, none interpolated

  // Byte-identical to a lossless reception of the same broadcast.
  reference.flush(now);
  const ReceivedPage* truth = reference.cache().get(url, now);
  ASSERT_NE(truth, nullptr);
  ASSERT_EQ(page->image.width(), truth->image.width());
  ASSERT_EQ(page->image.height(), truth->image.height());
  EXPECT_TRUE(page->image.pixels() == truth->image.pixels());
}

}  // namespace
}  // namespace sonic::core
