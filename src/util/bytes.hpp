// Byte- and bit-level serialization helpers shared by every SONIC module.
//
// All multi-byte integers on the wire are little-endian. BitWriter/BitReader
// pack MSB-first within each byte, which matches the convention used by the
// convolutional and Reed-Solomon coders in sonic_fec.
#pragma once

#include <cstdint>
#include <cstddef>
#include <span>
#include <string>
#include <vector>

namespace sonic::util {

using Bytes = std::vector<std::uint8_t>;

// Append-only little-endian byte serializer.
class ByteWriter {
 public:
  void u8(std::uint8_t v) { buf_.push_back(v); }
  void u16(std::uint16_t v);
  void u32(std::uint32_t v);
  void u64(std::uint64_t v);
  void raw(std::span<const std::uint8_t> data);
  void str(const std::string& s);  // u32 length prefix + bytes

  const Bytes& bytes() const { return buf_; }
  Bytes take() { return std::move(buf_); }
  std::size_t size() const { return buf_.size(); }

 private:
  Bytes buf_;
};

// Bounds-checked little-endian byte deserializer. Reads past the end set
// ok() to false and return zeros; callers check ok() once at the end.
class ByteReader {
 public:
  explicit ByteReader(std::span<const std::uint8_t> data) : data_(data) {}

  std::uint8_t u8();
  std::uint16_t u16();
  std::uint32_t u32();
  std::uint64_t u64();
  Bytes raw(std::size_t n);
  std::string str();

  bool ok() const { return ok_; }
  std::size_t remaining() const { return data_.size() - pos_; }
  std::size_t pos() const { return pos_; }

 private:
  bool take(std::size_t n);
  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
  bool ok_ = true;
};

// MSB-first bit packer.
class BitWriter {
 public:
  void bit(int b);
  void bits(std::uint32_t value, int count);  // MSB of `value` range first
  void align();                               // pad current byte with zeros
  const Bytes& bytes() const { return buf_; }
  Bytes take();
  std::size_t bit_count() const { return buf_.size() * 8 - (fill_ ? 8 - fill_ : 0); }

 private:
  Bytes buf_;
  int fill_ = 0;  // bits used in the last byte (0 == byte boundary)
};

// MSB-first bit unpacker.
class BitReader {
 public:
  explicit BitReader(std::span<const std::uint8_t> data) : data_(data) {}
  int bit();                        // returns 0/1, or 0 past the end
  std::uint32_t bits(int count);
  bool ok() const { return ok_; }
  std::size_t bits_remaining() const { return data_.size() * 8 - pos_; }

 private:
  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
  bool ok_ = true;
};

std::string to_hex(std::span<const std::uint8_t> data);

}  // namespace sonic::util
