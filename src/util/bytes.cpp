#include "util/bytes.hpp"

namespace sonic::util {

void ByteWriter::u16(std::uint16_t v) {
  buf_.push_back(static_cast<std::uint8_t>(v));
  buf_.push_back(static_cast<std::uint8_t>(v >> 8));
}

void ByteWriter::u32(std::uint32_t v) {
  for (int i = 0; i < 4; ++i) buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void ByteWriter::u64(std::uint64_t v) {
  for (int i = 0; i < 8; ++i) buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void ByteWriter::raw(std::span<const std::uint8_t> data) {
  buf_.insert(buf_.end(), data.begin(), data.end());
}

void ByteWriter::str(const std::string& s) {
  u32(static_cast<std::uint32_t>(s.size()));
  buf_.insert(buf_.end(), s.begin(), s.end());
}

bool ByteReader::take(std::size_t n) {
  if (pos_ + n > data_.size()) {
    ok_ = false;
    return false;
  }
  return true;
}

std::uint8_t ByteReader::u8() {
  if (!take(1)) return 0;
  return data_[pos_++];
}

std::uint16_t ByteReader::u16() {
  if (!take(2)) return 0;
  std::uint16_t v = static_cast<std::uint16_t>(data_[pos_] | (data_[pos_ + 1] << 8));
  pos_ += 2;
  return v;
}

std::uint32_t ByteReader::u32() {
  if (!take(4)) return 0;
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(data_[pos_ + i]) << (8 * i);
  pos_ += 4;
  return v;
}

std::uint64_t ByteReader::u64() {
  if (!take(8)) return 0;
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(data_[pos_ + i]) << (8 * i);
  pos_ += 8;
  return v;
}

Bytes ByteReader::raw(std::size_t n) {
  if (!take(n)) return {};
  Bytes out(data_.begin() + pos_, data_.begin() + pos_ + n);
  pos_ += n;
  return out;
}

std::string ByteReader::str() {
  std::uint32_t n = u32();
  if (!take(n)) return {};
  std::string out(data_.begin() + pos_, data_.begin() + pos_ + n);
  pos_ += n;
  return out;
}

void BitWriter::bit(int b) {
  if (fill_ == 0) buf_.push_back(0);
  if (b) buf_.back() |= static_cast<std::uint8_t>(1u << (7 - fill_));
  fill_ = (fill_ + 1) % 8;
}

void BitWriter::bits(std::uint32_t value, int count) {
  for (int i = count - 1; i >= 0; --i) bit(static_cast<int>((value >> i) & 1u));
}

void BitWriter::align() { fill_ = 0; }

Bytes BitWriter::take() {
  fill_ = 0;
  return std::move(buf_);
}

int BitReader::bit() {
  if (pos_ >= data_.size() * 8) {
    ok_ = false;
    return 0;
  }
  int b = (data_[pos_ / 8] >> (7 - pos_ % 8)) & 1;
  ++pos_;
  return b;
}

std::uint32_t BitReader::bits(int count) {
  std::uint32_t v = 0;
  for (int i = 0; i < count; ++i) v = (v << 1) | static_cast<std::uint32_t>(bit());
  return v;
}

std::string to_hex(std::span<const std::uint8_t> data) {
  static const char* digits = "0123456789abcdef";
  std::string out;
  out.reserve(data.size() * 2);
  for (std::uint8_t b : data) {
    out.push_back(digits[b >> 4]);
    out.push_back(digits[b & 0xf]);
  }
  return out;
}

}  // namespace sonic::util
