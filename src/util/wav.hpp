// Minimal mono 16-bit PCM WAV I/O, so the SONIC modem's audio can leave the
// simulator: sonic_tx writes broadcastable WAV files, sonic_rx decodes
// recordings (e.g., captured from a real FM receiver's headphone jack).
#pragma once

#include <string>
#include <vector>

namespace sonic::util {

// Writes mono PCM16; samples are clamped to [-1, 1].
void write_wav(const std::string& path, const std::vector<float>& samples, int sample_rate_hz);

struct WavData {
  std::vector<float> samples;
  int sample_rate_hz = 0;
};

// Reads mono or stereo (downmixed) PCM16 WAV. Throws std::runtime_error on
// malformed files.
WavData read_wav(const std::string& path);

}  // namespace sonic::util
