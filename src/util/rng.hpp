// Deterministic random number generation for SONIC.
//
// Every stochastic component (channel noise, corpus churn, loss injection,
// user-study sampling) draws from a seeded Rng so that tests and benchmarks
// are reproducible. The core generator is xoshiro256** seeded via splitmix64.
#pragma once

#include <cstdint>
#include <vector>

namespace sonic::util {

class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x534f4e4943ull);  // "SONIC"

  std::uint64_t next();                    // uniform 64-bit
  double uniform();                        // [0, 1)
  double uniform(double lo, double hi);    // [lo, hi)
  std::uint64_t uniform_int(std::uint64_t n);  // [0, n), n > 0
  double normal(double mean = 0.0, double stddev = 1.0);
  double exponential(double rate);
  bool bernoulli(double p);
  int poisson(double mean);

  // Zipf distribution over ranks [0, n); used for webpage popularity.
  int zipf(int n, double s = 1.0);

  // Derive an independent stream (e.g. per-page, per-trial) from this seed.
  Rng fork(std::uint64_t stream_id) const;

  // Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::size_t j = uniform_int(i);
      std::swap(v[i - 1], v[j]);
    }
  }

 private:
  std::uint64_t s_[4];
  std::uint64_t seed_;
  bool have_gauss_ = false;
  double gauss_ = 0.0;
};

}  // namespace sonic::util
