// Unit conversions used throughout the radio and modem layers.
#pragma once

#include <cmath>

namespace sonic::util {

// Power ratios.
inline double db_to_linear(double db) { return std::pow(10.0, db / 10.0); }
inline double linear_to_db(double lin) { return 10.0 * std::log10(lin); }

// Amplitude ratios.
inline double db_to_amplitude(double db) { return std::pow(10.0, db / 20.0); }
inline double amplitude_to_db(double amp) { return 20.0 * std::log10(amp); }

constexpr double kPi = 3.14159265358979323846;
constexpr double kTwoPi = 2.0 * kPi;

}  // namespace sonic::util
