// Minimal leveled logger. Benches and examples use it for progress lines;
// the libraries themselves stay silent below `warn`.
#pragma once

#include <sstream>
#include <string>

namespace sonic::util {

enum class LogLevel { kDebug = 0, kInfo, kWarn, kError, kOff };

void set_log_level(LogLevel level);
LogLevel log_level();
void log_line(LogLevel level, const std::string& msg);

namespace detail {
template <typename... Args>
std::string format_args(Args&&... args) {
  std::ostringstream os;
  (os << ... << args);
  return os.str();
}
}  // namespace detail

template <typename... Args>
void log_debug(Args&&... args) {
  log_line(LogLevel::kDebug, detail::format_args(std::forward<Args>(args)...));
}
template <typename... Args>
void log_info(Args&&... args) {
  log_line(LogLevel::kInfo, detail::format_args(std::forward<Args>(args)...));
}
template <typename... Args>
void log_warn(Args&&... args) {
  log_line(LogLevel::kWarn, detail::format_args(std::forward<Args>(args)...));
}
template <typename... Args>
void log_error(Args&&... args) {
  log_line(LogLevel::kError, detail::format_args(std::forward<Args>(args)...));
}

}  // namespace sonic::util
