#include "util/rng.hpp"

#include <cmath>

namespace sonic::util {
namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ull;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(std::uint64_t seed) : seed_(seed) {
  std::uint64_t x = seed;
  for (auto& s : s_) s = splitmix64(x);
}

std::uint64_t Rng::next() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform() {
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

std::uint64_t Rng::uniform_int(std::uint64_t n) {
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = ~0ull - (~0ull % n);
  std::uint64_t v;
  do {
    v = next();
  } while (v >= limit);
  return v % n;
}

double Rng::normal(double mean, double stddev) {
  if (have_gauss_) {
    have_gauss_ = false;
    return mean + stddev * gauss_;
  }
  // Marsaglia polar method.
  double u, v, s;
  do {
    u = uniform(-1.0, 1.0);
    v = uniform(-1.0, 1.0);
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  const double f = std::sqrt(-2.0 * std::log(s) / s);
  gauss_ = v * f;
  have_gauss_ = true;
  return mean + stddev * u * f;
}

double Rng::exponential(double rate) {
  return -std::log(1.0 - uniform()) / rate;
}

bool Rng::bernoulli(double p) { return uniform() < p; }

int Rng::poisson(double mean) {
  // Knuth's algorithm; fine for the small means used in churn modelling.
  const double limit = std::exp(-mean);
  double p = 1.0;
  int k = 0;
  do {
    ++k;
    p *= uniform();
  } while (p > limit);
  return k - 1;
}

int Rng::zipf(int n, double s) {
  // Inverse-CDF over precomputed weights would be faster, but popularity
  // draws are not hot; linear scan keeps this dependency-free.
  double total = 0.0;
  for (int i = 1; i <= n; ++i) total += 1.0 / std::pow(i, s);
  double target = uniform() * total;
  double acc = 0.0;
  for (int i = 1; i <= n; ++i) {
    acc += 1.0 / std::pow(i, s);
    if (acc >= target) return i - 1;
  }
  return n - 1;
}

Rng Rng::fork(std::uint64_t stream_id) const {
  return Rng(seed_ ^ (0x9e3779b97f4a7c15ull * (stream_id + 1)));
}

}  // namespace sonic::util
