#include "util/metrics.hpp"

#include <algorithm>
#include <cstdio>

namespace sonic::core {

void Histogram::observe(double value) {
  std::lock_guard<std::mutex> lock(mu_);
  if (snap_.count == 0) {
    snap_.min = value;
    snap_.max = value;
  } else {
    snap_.min = std::min(snap_.min, value);
    snap_.max = std::max(snap_.max, value);
  }
  snap_.sum += value;
  ++snap_.count;
}

Histogram::Snapshot Histogram::snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return snap_;
}

Counter& Metrics::counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Histogram& Metrics::histogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<Histogram>();
  return *slot;
}

std::uint64_t Metrics::counter_value(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second->value();
}

std::vector<std::string> Metrics::counter_names() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> names;
  for (const auto& [name, counter] : counters_) names.push_back(name);
  return names;
}

std::vector<std::string> Metrics::histogram_names() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> names;
  for (const auto& [name, histogram] : histograms_) names.push_back(name);
  return names;
}

std::string Metrics::report() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out;
  char line[160];
  for (const auto& [name, counter] : counters_) {
    std::snprintf(line, sizeof(line), "  %-24s %12llu\n", name.c_str(),
                  static_cast<unsigned long long>(counter->value()));
    out += line;
  }
  for (const auto& [name, histogram] : histograms_) {
    const auto s = histogram->snapshot();
    std::snprintf(line, sizeof(line),
                  "  %-24s count %-8llu mean %-10.4g min %-10.4g max %-10.4g\n", name.c_str(),
                  static_cast<unsigned long long>(s.count), s.mean(), s.min, s.max);
    out += line;
  }
  return out;
}

}  // namespace sonic::core
