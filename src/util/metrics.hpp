// Lightweight metrics registry for the broadcast pipeline, server, and
// streaming receiver: named monotonic counters (pages rendered, cache hits,
// frames emitted, sync hits, ...) and summary histograms (queue wait,
// render/encode wall time, per-burst NCC/SNR). Counters are lock-free
// atomics; histograms take a small per-histogram lock, so worker threads can
// record from inside the pipeline pool without serializing on the registry.
//
// Lives in src/util (lowest layer) so that sonic_modem can report receiver
// observability without depending on sonic_core, which itself links the
// modem. The namespace stays sonic::core — every existing call site, and the
// forwarding header sonic/metrics.hpp, keeps compiling unchanged.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace sonic::core {

class Counter {
 public:
  void add(std::uint64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
  std::uint64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

class Histogram {
 public:
  struct Snapshot {
    std::uint64_t count = 0;
    double sum = 0.0;
    double min = 0.0;
    double max = 0.0;
    double mean() const { return count == 0 ? 0.0 : sum / static_cast<double>(count); }
  };

  void observe(double value);
  Snapshot snapshot() const;

 private:
  mutable std::mutex mu_;
  Snapshot snap_;
};

// Registry of named instruments. counter()/histogram() create on first use
// and return a reference that stays valid for the registry's lifetime, so
// hot paths can look the instrument up once and keep the reference.
class Metrics {
 public:
  Counter& counter(const std::string& name);
  Histogram& histogram(const std::string& name);

  std::uint64_t counter_value(const std::string& name) const;  // 0 when absent
  std::vector<std::string> counter_names() const;
  std::vector<std::string> histogram_names() const;

  // Human-readable dump, one instrument per line, sorted by name — what
  // examples/broadcast_station and the benches print.
  std::string report() const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

}  // namespace sonic::core
