#include "util/wav.hpp"

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <stdexcept>

namespace sonic::util {
namespace {

void put_u32(std::FILE* f, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) std::fputc(static_cast<int>((v >> (8 * i)) & 0xff), f);
}

void put_u16(std::FILE* f, std::uint16_t v) {
  std::fputc(v & 0xff, f);
  std::fputc((v >> 8) & 0xff, f);
}

std::uint32_t get_u32(std::FILE* f) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(std::fgetc(f) & 0xff) << (8 * i);
  return v;
}

std::uint16_t get_u16(std::FILE* f) {
  std::uint16_t v = static_cast<std::uint16_t>(std::fgetc(f) & 0xff);
  v |= static_cast<std::uint16_t>((std::fgetc(f) & 0xff) << 8);
  return v;
}

}  // namespace

void write_wav(const std::string& path, const std::vector<float>& samples, int sample_rate_hz) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (!f) throw std::runtime_error("cannot open " + path);
  const std::uint32_t data_bytes = static_cast<std::uint32_t>(samples.size() * 2);
  std::fwrite("RIFF", 1, 4, f);
  put_u32(f, 36 + data_bytes);
  std::fwrite("WAVEfmt ", 1, 8, f);
  put_u32(f, 16);                       // fmt chunk size
  put_u16(f, 1);                        // PCM
  put_u16(f, 1);                        // mono
  put_u32(f, static_cast<std::uint32_t>(sample_rate_hz));
  put_u32(f, static_cast<std::uint32_t>(sample_rate_hz * 2));  // byte rate
  put_u16(f, 2);                        // block align
  put_u16(f, 16);                       // bits per sample
  std::fwrite("data", 1, 4, f);
  put_u32(f, data_bytes);
  for (float s : samples) {
    const int v = static_cast<int>(std::clamp(s, -1.0f, 1.0f) * 32767.0f);
    put_u16(f, static_cast<std::uint16_t>(static_cast<std::int16_t>(v)));
  }
  std::fclose(f);
}

WavData read_wav(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (!f) throw std::runtime_error("cannot open " + path);
  char tag[5] = {0};
  auto fail = [&](const char* why) {
    std::fclose(f);
    throw std::runtime_error(std::string(why) + ": " + path);
  };
  if (std::fread(tag, 1, 4, f) != 4 || std::string(tag) != "RIFF") fail("not a RIFF file");
  get_u32(f);  // riff size
  if (std::fread(tag, 1, 4, f) != 4 || std::string(tag) != "WAVE") fail("not a WAVE file");

  WavData out;
  int channels = 0;
  int bits = 0;
  // Chunk walk.
  while (std::fread(tag, 1, 4, f) == 4) {
    const std::uint32_t size = get_u32(f);
    if (std::string(tag) == "fmt ") {
      const std::uint16_t format = get_u16(f);
      channels = get_u16(f);
      out.sample_rate_hz = static_cast<int>(get_u32(f));
      get_u32(f);  // byte rate
      get_u16(f);  // block align
      bits = get_u16(f);
      if (format != 1 || bits != 16 || channels < 1 || channels > 2) fail("unsupported wav format");
      for (std::uint32_t skip = 16; skip < size; ++skip) std::fgetc(f);
    } else if (std::string(tag) == "data") {
      if (channels == 0) fail("data before fmt");
      const std::size_t frames = size / (2 * static_cast<std::size_t>(channels));
      out.samples.reserve(frames);
      for (std::size_t i = 0; i < frames; ++i) {
        float acc = 0;
        for (int c = 0; c < channels; ++c) {
          acc += static_cast<float>(static_cast<std::int16_t>(get_u16(f))) / 32768.0f;
        }
        out.samples.push_back(acc / static_cast<float>(channels));
      }
      std::fclose(f);
      return out;
    } else {
      for (std::uint32_t skip = 0; skip < size; ++skip) std::fgetc(f);
    }
  }
  fail("no data chunk");
  return out;  // unreachable
}

}  // namespace sonic::util
