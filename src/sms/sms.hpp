// SMS network simulation — SONIC's uplink (§3.1).
//
// User-C requests webpages by texting a SONIC number; the server ACKs with
// an ETA. The simulation models what matters to SONIC: store-and-forward
// delivery latency (seconds), occasional message loss, and the 160-char
// GSM-7 segment economics that make SMS a viable but narrow uplink.
#pragma once

#include <cstdint>
#include <deque>
#include <optional>
#include <string>
#include <vector>

#include "util/rng.hpp"

namespace sonic::sms {

struct SmsMessage {
  std::string from;
  std::string to;
  std::string body;
  double sent_at_s = 0.0;
  double deliver_at_s = 0.0;  // filled by the gateway
};

// Number of 160-char segments the body consumes (the billing unit);
// multi-segment messages use 153-char segments per GSM UDH rules.
int sms_segment_count(const std::string& body);

struct SmsGatewayParams {
  double latency_mean_s = 4.0;    // typical carrier store-and-forward delay
  double latency_jitter_s = 2.0;  // lognormal-ish spread
  double loss_rate = 0.005;       // silently dropped messages
  std::uint64_t seed = 7;
};

// Discrete-event SMS carrier: send() stamps a delivery time; deliver_due()
// drains messages for one recipient whose time has come.
class SmsGateway {
 public:
  explicit SmsGateway(SmsGatewayParams params);

  // Returns false if the message was lost in the network.
  bool send(SmsMessage msg, double now_s);

  std::vector<SmsMessage> deliver_due(const std::string& to, double now_s);

  std::size_t in_flight() const { return queue_.size(); }
  int segments_carried() const { return segments_carried_; }

 private:
  SmsGatewayParams params_;
  sonic::util::Rng rng_;
  std::deque<SmsMessage> queue_;
  int segments_carried_ = 0;
};

// ---- SONIC request/ACK wire format (§3.1) ---------------------------------

// "Each request contains the URL ... and the geographic location of the
// user" — the location routes the request to the right FM transmitter.
struct PageRequest {
  std::string url;
  double lat = 0.0;
  double lon = 0.0;
};

std::string encode_request(const PageRequest& req);
std::optional<PageRequest> parse_request(const std::string& body);

// Search / chatbot queries (§3.1: uplink users "can ... send queries to
// search engines (e.g., Google and Duckduckgo) and AI chatbots").
struct QueryRequest {
  std::string query;
  double lat = 0.0;
  double lon = 0.0;
};

std::string encode_query(const QueryRequest& req);
std::optional<QueryRequest> parse_query(const std::string& body);

// The server "quickly responds to the user via SMS to acknowledge the
// request, and provide an estimate on when the page will be received",
// plus the broadcast frequency the client should tune to.
struct RequestAck {
  std::string url;
  double eta_s = 0.0;
  double frequency_mhz = 0.0;
  bool accepted = true;
  std::string reason;  // set when rejected (unknown page, no coverage...)
};

std::string encode_ack(const RequestAck& ack);
std::optional<RequestAck> parse_ack(const std::string& body);

}  // namespace sonic::sms
