// SMS network simulation — SONIC's uplink (§3.1).
//
// User-C requests webpages by texting a SONIC number; the server ACKs with
// an ETA. The simulation models what matters to SONIC: store-and-forward
// delivery latency (seconds), and the 160-char GSM-7 segment economics that
// make SMS a viable but narrow uplink.
//
// The gateway is a faithful adversary, not an oracle: send() always
// succeeds (the SMSC accepted the message) — whether it is *delivered* is
// decided silently inside the network. Messages can be lost per segment,
// duplicated, reordered by tens of seconds, and (optionally) confirmed by
// delivery reports, all seeded and deterministic like the acoustic channel.
// End-to-end delivery is therefore the uplink protocol's problem (client
// retry state machine + idempotent server), exactly as over real GSM.
#pragma once

#include <cstdint>
#include <deque>
#include <optional>
#include <string>
#include <vector>

#include "util/rng.hpp"

namespace sonic::sms {

struct SmsMessage {
  std::string from;
  std::string to;
  std::string body;
  double sent_at_s = 0.0;
  double deliver_at_s = 0.0;  // filled by the gateway
};

// Number of 160-char segments the body consumes (the billing unit);
// multi-segment messages use 153-char segments per GSM UDH rules.
int sms_segment_count(const std::string& body);

struct SmsGatewayParams {
  double latency_mean_s = 4.0;    // typical carrier store-and-forward delay
  double latency_jitter_s = 2.0;  // lognormal-ish spread
  double loss_rate = 0.005;       // silent *per-segment* delivery failure
  std::uint64_t seed = 7;
  // ---- fault injection (all deterministic under `seed`) -------------------
  double duplication_rate = 0.0;  // a delivered message arrives twice
  double reorder_rate = 0.0;      // a message picks up an extra delay ...
  double reorder_delay_s = 30.0;  // ... uniform in [0, reorder_delay_s)
  bool delivery_reports = false;  // sender receives "SMSC DLR ..." on delivery
};

// Sender of gateway-generated delivery reports; reports are themselves SMS
// (they ride the same lossy queue) but never generate reports of their own.
inline constexpr const char* kSmscNumber = "SMSC";
inline constexpr const char* kDeliveryReportPrefix = "SMSC DLR ";

// Discrete-event SMS carrier: send() stamps a delivery time; deliver_due()
// drains messages for one recipient whose time has come.
class SmsGateway {
 public:
  explicit SmsGateway(SmsGatewayParams params);

  // Always returns true: the SMSC accepts every message. Delivery is what
  // can fail, and it fails silently — a multi-segment body is lost whenever
  // any one of its segments is lost. (The return value is kept only so
  // seed-era call sites still compile.)
  bool send(SmsMessage msg, double now_s);

  std::vector<SmsMessage> deliver_due(const std::string& to, double now_s);

  std::size_t in_flight() const { return queue_.size(); }
  int segments_carried() const { return segments_carried_; }

  // ---- fault bookkeeping (ground truth for tests and benches) -------------
  std::size_t messages_accepted() const { return messages_accepted_; }
  std::size_t messages_delivered() const { return messages_delivered_; }
  std::size_t messages_lost() const { return messages_lost_; }
  std::size_t messages_duplicated() const { return messages_duplicated_; }
  std::size_t messages_reordered() const { return messages_reordered_; }
  std::size_t segments_lost() const { return segments_lost_; }
  std::size_t reports_generated() const { return reports_generated_; }

  // Scripted fault control, so tests can flip network conditions
  // mid-scenario instead of hunting for seeds.
  void set_loss_rate(double p) { params_.loss_rate = p; }
  void set_duplication_rate(double p) { params_.duplication_rate = p; }
  void set_reorder(double rate, double delay_s) {
    params_.reorder_rate = rate;
    params_.reorder_delay_s = delay_s;
  }
  const SmsGatewayParams& params() const { return params_; }

 private:
  double draw_latency_s();

  SmsGatewayParams params_;
  sonic::util::Rng rng_;
  std::deque<SmsMessage> queue_;
  int segments_carried_ = 0;
  std::size_t messages_accepted_ = 0;
  std::size_t messages_delivered_ = 0;
  std::size_t messages_lost_ = 0;
  std::size_t messages_duplicated_ = 0;
  std::size_t messages_reordered_ = 0;
  std::size_t segments_lost_ = 0;
  std::size_t reports_generated_ = 0;
};

// ---- SONIC request/ACK wire format (§3.1) ---------------------------------
//
// v1 (seed era, id-less):
//   request: "SONIC GET <url> @<lat>,<lon>"
//   query:   "SONIC ASK <query> @<lat>,<lon>"
//   ack:     "SONIC ACK <url> ETA <sec>s FM <mhz>"
//   nack:    "SONIC NACK <url> <reason>"
// v2 (reliable uplink): identical, with a numeric request id token right
// after the verb, echoed in the ACK/NACK so retransmissions are idempotent:
//   request: "SONIC GET <id> <url> @<lat>,<lon>"
//   ack:     "SONIC ACK <id> <url> ETA <sec>s FM <mhz>"
//   nack:    "SONIC NACK <id> <url> RETRY <sec>"   (overload shedding)
// Encoders emit v1 when id == 0, v2 otherwise; parsers accept both (a v1
// body whose URL's first token is purely numeric is the one documented
// ambiguity — real URLs contain a dot or scheme, so it does not arise).

// "Each request contains the URL ... and the geographic location of the
// user" — the location routes the request to the right FM transmitter.
struct PageRequest {
  std::string url;
  double lat = 0.0;
  double lon = 0.0;
  std::uint32_t id = 0;  // v2 request id; 0 = v1 id-less body
};

std::string encode_request(const PageRequest& req);
std::optional<PageRequest> parse_request(const std::string& body);

// Search / chatbot queries (§3.1: uplink users "can ... send queries to
// search engines (e.g., Google and Duckduckgo) and AI chatbots").
struct QueryRequest {
  std::string query;
  double lat = 0.0;
  double lon = 0.0;
  std::uint32_t id = 0;  // v2 request id; 0 = v1 id-less body
};

std::string encode_query(const QueryRequest& req);
std::optional<QueryRequest> parse_query(const std::string& body);

// The server "quickly responds to the user via SMS to acknowledge the
// request, and provide an estimate on when the page will be received",
// plus the broadcast frequency the client should tune to.
struct RequestAck {
  std::string url;
  double eta_s = 0.0;
  double frequency_mhz = 0.0;
  bool accepted = true;
  std::string reason;  // set when rejected (unknown page, no coverage...)
  std::uint32_t id = 0;        // echoed v2 request id; 0 for v1
  double retry_after_s = -1.0; // >= 0 when reason is "RETRY <sec>" (shedding)
};

std::string encode_ack(const RequestAck& ack);
std::optional<RequestAck> parse_ack(const std::string& body);

}  // namespace sonic::sms
