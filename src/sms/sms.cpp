#include "sms/sms.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <sstream>

namespace sonic::sms {

int sms_segment_count(const std::string& body) {
  if (body.empty()) return 1;
  if (body.size() <= 160) return 1;
  return static_cast<int>((body.size() + 152) / 153);
}

SmsGateway::SmsGateway(SmsGatewayParams params) : params_(params), rng_(params.seed) {}

bool SmsGateway::send(SmsMessage msg, double now_s) {
  segments_carried_ += sms_segment_count(msg.body);
  if (rng_.bernoulli(params_.loss_rate)) return false;
  msg.sent_at_s = now_s;
  // Latency: mean + positive-skew jitter, never below 0.5 s.
  const double jitter = std::fabs(rng_.normal(0.0, params_.latency_jitter_s));
  msg.deliver_at_s = now_s + std::max(0.5, params_.latency_mean_s + jitter - params_.latency_jitter_s / 2);
  queue_.push_back(std::move(msg));
  return true;
}

std::vector<SmsMessage> SmsGateway::deliver_due(const std::string& to, double now_s) {
  std::vector<SmsMessage> out;
  for (auto it = queue_.begin(); it != queue_.end();) {
    if (it->to == to && it->deliver_at_s <= now_s) {
      out.push_back(*it);
      it = queue_.erase(it);
    } else {
      ++it;
    }
  }
  std::sort(out.begin(), out.end(),
            [](const SmsMessage& a, const SmsMessage& b) { return a.deliver_at_s < b.deliver_at_s; });
  return out;
}

// Wire format: compact, single-segment-friendly text.
//   request: "SONIC GET <url> @<lat>,<lon>"
//   ack:     "SONIC ACK <url> ETA <sec>s FM <mhz>" | "SONIC NACK <url> <reason>"

std::string encode_request(const PageRequest& req) {
  char buf[256];
  std::snprintf(buf, sizeof(buf), "SONIC GET %s @%.4f,%.4f", req.url.c_str(), req.lat, req.lon);
  return buf;
}

std::optional<PageRequest> parse_request(const std::string& body) {
  if (body.rfind("SONIC GET ", 0) != 0) return std::nullopt;
  const std::string rest = body.substr(10);
  const auto at = rest.rfind(" @");
  if (at == std::string::npos) return std::nullopt;
  PageRequest req;
  req.url = rest.substr(0, at);
  if (req.url.empty()) return std::nullopt;
  const std::string coords = rest.substr(at + 2);
  const auto comma = coords.find(',');
  if (comma == std::string::npos) return std::nullopt;
  try {
    req.lat = std::stod(coords.substr(0, comma));
    req.lon = std::stod(coords.substr(comma + 1));
  } catch (...) {
    return std::nullopt;
  }
  return req;
}

std::string encode_query(const QueryRequest& req) {
  char buf[256];
  std::snprintf(buf, sizeof(buf), "SONIC ASK %s @%.4f,%.4f", req.query.c_str(), req.lat, req.lon);
  return buf;
}

std::optional<QueryRequest> parse_query(const std::string& body) {
  if (body.rfind("SONIC ASK ", 0) != 0) return std::nullopt;
  const std::string rest = body.substr(10);
  const auto at = rest.rfind(" @");
  if (at == std::string::npos) return std::nullopt;
  QueryRequest req;
  req.query = rest.substr(0, at);
  if (req.query.empty()) return std::nullopt;
  const std::string coords = rest.substr(at + 2);
  const auto comma = coords.find(',');
  if (comma == std::string::npos) return std::nullopt;
  try {
    req.lat = std::stod(coords.substr(0, comma));
    req.lon = std::stod(coords.substr(comma + 1));
  } catch (...) {
    return std::nullopt;
  }
  return req;
}

std::string encode_ack(const RequestAck& ack) {
  char buf[256];
  if (ack.accepted) {
    std::snprintf(buf, sizeof(buf), "SONIC ACK %s ETA %.0fs FM %.1f", ack.url.c_str(), ack.eta_s,
                  ack.frequency_mhz);
  } else {
    std::snprintf(buf, sizeof(buf), "SONIC NACK %s %s", ack.url.c_str(), ack.reason.c_str());
  }
  return buf;
}

std::optional<RequestAck> parse_ack(const std::string& body) {
  RequestAck ack;
  if (body.rfind("SONIC ACK ", 0) == 0) {
    ack.accepted = true;
    const std::string rest = body.substr(10);
    const auto eta_pos = rest.find(" ETA ");
    const auto fm_pos = rest.find("s FM ");
    if (eta_pos == std::string::npos || fm_pos == std::string::npos || fm_pos < eta_pos)
      return std::nullopt;
    ack.url = rest.substr(0, eta_pos);
    try {
      ack.eta_s = std::stod(rest.substr(eta_pos + 5, fm_pos - eta_pos - 5));
      ack.frequency_mhz = std::stod(rest.substr(fm_pos + 5));
    } catch (...) {
      return std::nullopt;
    }
    return ack;
  }
  if (body.rfind("SONIC NACK ", 0) == 0) {
    ack.accepted = false;
    const std::string rest = body.substr(11);
    const auto space = rest.find(' ');
    ack.url = space == std::string::npos ? rest : rest.substr(0, space);
    ack.reason = space == std::string::npos ? "" : rest.substr(space + 1);
    if (ack.url.empty()) return std::nullopt;
    return ack;
  }
  return std::nullopt;
}

}  // namespace sonic::sms
