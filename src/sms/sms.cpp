#include "sms/sms.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace sonic::sms {
namespace {

// Whole-string numeric parse: rejects the trailing-garbage prefixes that
// std::stod would silently accept (the parse_ack mis-parse bug).
bool parse_full_double(const std::string& s, double* out) {
  if (s.empty()) return false;
  try {
    std::size_t pos = 0;
    const double v = std::stod(s, &pos);
    if (pos != s.size()) return false;
    *out = v;
    return true;
  } catch (...) {
    return false;
  }
}

bool all_digits(const std::string& s) {
  if (s.empty()) return false;
  for (char c : s) {
    if (c < '0' || c > '9') return false;
  }
  return true;
}

// A leading "<id> " token, when the remainder parses via `core`.
std::optional<std::uint32_t> take_id_token(const std::string& rest, std::string* remainder) {
  const auto sp = rest.find(' ');
  if (sp == std::string::npos || sp == 0) return std::nullopt;
  const std::string token = rest.substr(0, sp);
  if (!all_digits(token) || token.size() > 10) return std::nullopt;
  try {
    const unsigned long long v = std::stoull(token);
    if (v == 0 || v > 0xffffffffull) return std::nullopt;
    *remainder = rest.substr(sp + 1);
    return static_cast<std::uint32_t>(v);
  } catch (...) {
    return std::nullopt;
  }
}

std::string coords_suffix(double lat, double lon) {
  char buf[80];
  std::snprintf(buf, sizeof(buf), " @%.4f,%.4f", lat, lon);
  return buf;
}

// "<url> @<lat>,<lon>" — the URL is delimited by the *last* " @", so
// internal spaces and '@'s survive.
bool parse_locatable(const std::string& rest, std::string* url, double* lat, double* lon) {
  const auto at = rest.rfind(" @");
  if (at == std::string::npos) return false;
  *url = rest.substr(0, at);
  if (url->empty()) return false;
  const std::string coords = rest.substr(at + 2);
  const auto comma = coords.find(',');
  if (comma == std::string::npos) return false;
  return parse_full_double(coords.substr(0, comma), lat) &&
         parse_full_double(coords.substr(comma + 1), lon);
}

}  // namespace

int sms_segment_count(const std::string& body) {
  if (body.empty()) return 1;
  if (body.size() <= 160) return 1;
  return static_cast<int>((body.size() + 152) / 153);
}

SmsGateway::SmsGateway(SmsGatewayParams params) : params_(params), rng_(params.seed) {}

double SmsGateway::draw_latency_s() {
  // Mean + positive-skew jitter, never below 0.5 s.
  const double jitter = std::fabs(rng_.normal(0.0, params_.latency_jitter_s));
  return std::max(0.5, params_.latency_mean_s + jitter - params_.latency_jitter_s / 2);
}

bool SmsGateway::send(SmsMessage msg, double now_s) {
  ++messages_accepted_;
  const int segments = sms_segment_count(msg.body);
  segments_carried_ += segments;
  msg.sent_at_s = now_s;
  // Each segment travels independently: its own loss roll and its own
  // store-and-forward delay. The message reassembles only if every segment
  // arrives, at the time the last one does — so multipart bodies are
  // super-linearly fragile, as over real GSM.
  bool lost = false;
  double deliver_at_s = 0.0;
  for (int s = 0; s < segments; ++s) {
    if (rng_.bernoulli(params_.loss_rate)) {
      lost = true;
      ++segments_lost_;
    }
    deliver_at_s = std::max(deliver_at_s, now_s + draw_latency_s());
  }
  if (lost) {
    ++messages_lost_;  // silently: the sender still saw send() succeed
    return true;
  }
  if (params_.reorder_rate > 0.0 && rng_.bernoulli(params_.reorder_rate)) {
    deliver_at_s += rng_.uniform(0.0, params_.reorder_delay_s);
    ++messages_reordered_;
  }
  msg.deliver_at_s = deliver_at_s;
  if (params_.duplication_rate > 0.0 && rng_.bernoulli(params_.duplication_rate)) {
    SmsMessage copy = msg;
    copy.deliver_at_s = now_s + draw_latency_s();
    ++messages_duplicated_;
    queue_.push_back(std::move(copy));
  }
  queue_.push_back(std::move(msg));
  return true;
}

std::vector<SmsMessage> SmsGateway::deliver_due(const std::string& to, double now_s) {
  std::vector<SmsMessage> out;
  for (auto it = queue_.begin(); it != queue_.end();) {
    if (it->to == to && it->deliver_at_s <= now_s) {
      out.push_back(*it);
      it = queue_.erase(it);
    } else {
      ++it;
    }
  }
  std::sort(out.begin(), out.end(),
            [](const SmsMessage& a, const SmsMessage& b) { return a.deliver_at_s < b.deliver_at_s; });
  messages_delivered_ += out.size();
  if (params_.delivery_reports) {
    // Reports ride the same lossy network; never report on a report.
    for (const SmsMessage& msg : out) {
      if (msg.from == kSmscNumber) continue;
      ++reports_generated_;
      send({kSmscNumber, msg.from, kDeliveryReportPrefix + msg.body.substr(0, 40), now_s, 0.0},
           now_s);
    }
  }
  return out;
}

std::string encode_request(const PageRequest& req) {
  std::string body = "SONIC GET ";
  if (req.id != 0) body += std::to_string(req.id) + " ";
  body += req.url;
  body += coords_suffix(req.lat, req.lon);
  return body;
}

std::optional<PageRequest> parse_request(const std::string& body) {
  if (body.rfind("SONIC GET ", 0) != 0) return std::nullopt;
  const std::string rest = body.substr(10);
  PageRequest req;
  std::string remainder;
  if (const auto id = take_id_token(rest, &remainder)) {
    if (parse_locatable(remainder, &req.url, &req.lat, &req.lon)) {
      req.id = *id;
      return req;
    }
  }
  if (!parse_locatable(rest, &req.url, &req.lat, &req.lon)) return std::nullopt;
  return req;
}

std::string encode_query(const QueryRequest& req) {
  std::string body = "SONIC ASK ";
  if (req.id != 0) body += std::to_string(req.id) + " ";
  body += req.query;
  body += coords_suffix(req.lat, req.lon);
  return body;
}

std::optional<QueryRequest> parse_query(const std::string& body) {
  if (body.rfind("SONIC ASK ", 0) != 0) return std::nullopt;
  const std::string rest = body.substr(10);
  QueryRequest req;
  std::string remainder;
  if (const auto id = take_id_token(rest, &remainder)) {
    if (parse_locatable(remainder, &req.query, &req.lat, &req.lon)) {
      req.id = *id;
      return req;
    }
  }
  if (!parse_locatable(rest, &req.query, &req.lat, &req.lon)) return std::nullopt;
  return req;
}

std::string encode_ack(const RequestAck& ack) {
  std::string body;
  char num[64];
  if (ack.accepted) {
    body = "SONIC ACK ";
    if (ack.id != 0) body += std::to_string(ack.id) + " ";
    body += ack.url;
    std::snprintf(num, sizeof(num), " ETA %.0fs FM %.1f", ack.eta_s, ack.frequency_mhz);
    body += num;
  } else {
    body = "SONIC NACK ";
    if (ack.id != 0) body += std::to_string(ack.id) + " ";
    body += ack.url + " " + ack.reason;
  }
  return body;
}

namespace {

// "<url> ETA <sec>s FM <mhz>" — the suffix is located from the *right*
// (last "s FM ", then the last " ETA " before it), and both numeric tokens
// must parse in full, so URLs containing " ETA " or "s FM " round-trip.
bool parse_ack_core(const std::string& rest, RequestAck* ack) {
  const auto fm_pos = rest.rfind("s FM ");
  if (fm_pos == std::string::npos) return false;
  std::size_t search = fm_pos;
  std::size_t eta_pos = std::string::npos;
  while (true) {
    eta_pos = rest.rfind(" ETA ", search);
    if (eta_pos == std::string::npos) return false;
    if (eta_pos + 5 < fm_pos) break;  // nonempty numeric token fits between
    if (eta_pos == 0) return false;
    search = eta_pos - 1;
  }
  ack->url = rest.substr(0, eta_pos);
  if (ack->url.empty()) return false;
  return parse_full_double(rest.substr(eta_pos + 5, fm_pos - (eta_pos + 5)), &ack->eta_s) &&
         parse_full_double(rest.substr(fm_pos + 5), &ack->frequency_mhz);
}

// "<url> <reason>". "RETRY <sec>" (two tokens, always a suffix) is matched
// first; otherwise the reason is the single token after the last space, so
// URLs with internal spaces survive.
bool parse_nack_core(const std::string& rest, RequestAck* ack) {
  const auto retry = rest.rfind(" RETRY ");
  if (retry != std::string::npos && retry > 0) {
    double sec = 0.0;
    if (parse_full_double(rest.substr(retry + 7), &sec) && sec >= 0.0) {
      ack->url = rest.substr(0, retry);
      ack->reason = rest.substr(retry + 1);
      ack->retry_after_s = sec;
      return true;
    }
  }
  const auto space = rest.rfind(' ');
  ack->url = space == std::string::npos ? rest : rest.substr(0, space);
  ack->reason = space == std::string::npos ? "" : rest.substr(space + 1);
  return !ack->url.empty();
}

}  // namespace

std::optional<RequestAck> parse_ack(const std::string& body) {
  RequestAck ack;
  if (body.rfind("SONIC ACK ", 0) == 0) {
    ack.accepted = true;
    const std::string rest = body.substr(10);
    std::string remainder;
    if (const auto id = take_id_token(rest, &remainder)) {
      RequestAck v2 = ack;
      if (parse_ack_core(remainder, &v2)) {
        v2.id = *id;
        return v2;
      }
    }
    if (parse_ack_core(rest, &ack)) return ack;
    return std::nullopt;
  }
  if (body.rfind("SONIC NACK ", 0) == 0) {
    ack.accepted = false;
    const std::string rest = body.substr(11);
    std::string remainder;
    if (const auto id = take_id_token(rest, &remainder)) {
      RequestAck v2 = ack;
      if (parse_nack_core(remainder, &v2)) {
        v2.id = *id;
        return v2;
      }
    }
    if (parse_nack_core(rest, &ack)) return ack;
    return std::nullopt;
  }
  return std::nullopt;
}

}  // namespace sonic::sms
