#include "dsp/goertzel.hpp"

#include <cmath>

#include "util/units.hpp"

namespace sonic::dsp {

double goertzel_power(std::span<const float> samples, double f_hz, double sample_rate_hz) {
  if (samples.empty()) return 0.0;
  const double w = sonic::util::kTwoPi * f_hz / sample_rate_hz;
  const double coeff = 2.0 * std::cos(w);
  double s0 = 0, s1 = 0, s2 = 0;
  for (float x : samples) {
    s0 = static_cast<double>(x) + coeff * s1 - s2;
    s2 = s1;
    s1 = s0;
  }
  const double power = s1 * s1 + s2 * s2 - coeff * s1 * s2;
  const double n = static_cast<double>(samples.size());
  return power / (n * n / 4.0);  // normalized so a unit sine reports ~1
}

}  // namespace sonic::dsp
