// Arbitrary-ratio resampling. The FM simulator runs its IQ path at a higher
// rate than the 44.1 kHz audio path; the acoustic channel also uses a small
// resampling step to model sample-clock offset between transmitter and
// receiver (speaker vs. microphone ADC clocks never match exactly).
#pragma once

#include <span>
#include <vector>

namespace sonic::dsp {

// Windowed-sinc interpolation resampler (8-tap kernel per output sample).
// Suitable both for large ratio changes (44.1k -> 192k) and for tiny clock
// skews (ratio 1 + epsilon).
class Resampler {
 public:
  // ratio = output_rate / input_rate.
  explicit Resampler(double ratio);

  std::vector<float> process(std::span<const float> input) const;

  double ratio() const { return ratio_; }

 private:
  double ratio_;
};

// Convenience wrappers.
std::vector<float> resample(std::span<const float> input, double in_rate, double out_rate);

}  // namespace sonic::dsp
