// Arbitrary-ratio resampling. The FM simulator runs its IQ path at a higher
// rate than the 44.1 kHz audio path; the acoustic channel also uses a small
// resampling step to model sample-clock offset between transmitter and
// receiver (speaker vs. microphone ADC clocks never match exactly).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace sonic::dsp {

// Windowed-sinc interpolation resampler (8-tap kernel per output sample).
// Suitable both for large ratio changes (44.1k -> 192k) and for tiny clock
// skews (ratio 1 + epsilon).
//
// Two modes:
//  * batch: process(input) resamples one whole buffer (stateless, const).
//  * streaming: push(chunk)* then flush() resamples an unbounded stream in
//    chunks with bounded memory. Interpolation state — the sinc kernel's
//    history window and the fractional output position — carries across
//    push() calls, so concat(push(c1), push(c2), ..., flush()) is
//    sample-identical to process(c1 + c2 + ...) for any chunking. push()
//    withholds outputs whose kernel window still reaches past the samples
//    received so far; flush() emits them treating the beyond-end region as
//    silence, exactly like the batch path's edge handling.
class Resampler {
 public:
  // ratio = output_rate / input_rate.
  explicit Resampler(double ratio);

  // Batch: whole buffer in, floor(n * ratio) samples out.
  std::vector<float> process(std::span<const float> input) const;

  // Streaming: feed one chunk, get every output sample that is now fully
  // determined. History is bounded by the kernel reach, not the stream.
  std::vector<float> push(std::span<const float> chunk);
  // End of stream: the tail outputs the batch path would have produced.
  // After flush(), reset() must be called before pushing again.
  std::vector<float> flush();
  // Forget all streaming state (a fresh stream follows).
  void reset();

  double ratio() const { return ratio_; }
  // Input samples currently held for the kernel window (streaming mode).
  std::size_t history_size() const { return hist_.size(); }

 private:
  // Emits out[next_out_...] while the kernel window is satisfied; with
  // `final_flush` the stream is complete and end-of-input is silence.
  void emit_ready(std::vector<float>& out, bool final_flush);

  double ratio_;
  double cutoff_;
  double half_width_;
  long reach_;

  // Streaming state: hist_[0] is absolute input index hist_base_.
  std::vector<float> hist_;
  std::size_t hist_base_ = 0;
  std::size_t total_in_ = 0;
  std::size_t next_out_ = 0;
  bool flushed_ = false;
};

// Convenience wrappers.
std::vector<float> resample(std::span<const float> input, double in_rate, double out_rate);

}  // namespace sonic::dsp
