#include "dsp/fir.hpp"

#include <cmath>
#include <complex>
#include <stdexcept>

#include "util/units.hpp"

namespace sonic::dsp {
namespace {

double sinc(double x) {
  if (std::fabs(x) < 1e-12) return 1.0;
  return std::sin(sonic::util::kPi * x) / (sonic::util::kPi * x);
}

}  // namespace

std::vector<float> design_lowpass(double cutoff_hz, double sample_rate_hz, std::size_t taps,
                                  WindowType window) {
  if (taps % 2 == 0) ++taps;
  if (cutoff_hz <= 0 || cutoff_hz >= sample_rate_hz / 2) throw std::invalid_argument("cutoff out of range");
  const double fc = cutoff_hz / sample_rate_hz;  // normalized (cycles/sample)
  const auto win = make_window(window, taps);
  std::vector<float> h(taps);
  const double mid = static_cast<double>(taps - 1) / 2.0;
  double sum = 0.0;
  for (std::size_t i = 0; i < taps; ++i) {
    const double v = 2.0 * fc * sinc(2.0 * fc * (static_cast<double>(i) - mid)) * win[i];
    h[i] = static_cast<float>(v);
    sum += v;
  }
  // Normalize DC gain to exactly 1.
  for (auto& t : h) t = static_cast<float>(t / sum);
  return h;
}

std::vector<float> design_bandpass(double lo_hz, double hi_hz, double sample_rate_hz,
                                   std::size_t taps, WindowType window) {
  if (taps % 2 == 0) ++taps;
  if (!(0 < lo_hz && lo_hz < hi_hz && hi_hz < sample_rate_hz / 2))
    throw std::invalid_argument("band out of range");
  const double f1 = lo_hz / sample_rate_hz;
  const double f2 = hi_hz / sample_rate_hz;
  const auto win = make_window(window, taps);
  std::vector<float> h(taps);
  const double mid = static_cast<double>(taps - 1) / 2.0;
  for (std::size_t i = 0; i < taps; ++i) {
    const double t = static_cast<double>(i) - mid;
    const double v = (2.0 * f2 * sinc(2.0 * f2 * t) - 2.0 * f1 * sinc(2.0 * f1 * t)) * win[i];
    h[i] = static_cast<float>(v);
  }
  // Normalize gain to 1 at band center.
  const double fm = (f1 + f2) / 2.0;
  std::complex<double> resp(0.0, 0.0);
  for (std::size_t i = 0; i < taps; ++i) {
    const double ang = -sonic::util::kTwoPi * fm * static_cast<double>(i);
    resp += static_cast<double>(h[i]) * std::complex<double>(std::cos(ang), std::sin(ang));
  }
  const double gain = std::abs(resp);
  for (auto& t : h) t = static_cast<float>(t / gain);
  return h;
}

FirFilter::FirFilter(std::vector<float> taps) : taps_(std::move(taps)), history_(taps_.size(), 0.0f) {
  if (taps_.empty()) throw std::invalid_argument("empty taps");
}

void FirFilter::reset() {
  std::fill(history_.begin(), history_.end(), 0.0f);
  pos_ = 0;
}

float FirFilter::process(float x) {
  history_[pos_] = x;
  float acc = 0.0f;
  std::size_t idx = pos_;
  for (float tap : taps_) {
    acc += tap * history_[idx];
    idx = idx == 0 ? history_.size() - 1 : idx - 1;
  }
  pos_ = (pos_ + 1) % history_.size();
  return acc;
}

std::vector<float> FirFilter::process(std::span<const float> x) {
  std::vector<float> out(x.size());
  for (std::size_t i = 0; i < x.size(); ++i) out[i] = process(x[i]);
  return out;
}

double FirFilter::magnitude_at(double f_hz, double sample_rate_hz) const {
  std::complex<double> resp(0.0, 0.0);
  const double w = sonic::util::kTwoPi * f_hz / sample_rate_hz;
  for (std::size_t i = 0; i < taps_.size(); ++i) {
    resp += static_cast<double>(taps_[i]) * std::complex<double>(std::cos(w * static_cast<double>(i)), -std::sin(w * static_cast<double>(i)));
  }
  return std::abs(resp);
}

}  // namespace sonic::dsp
