#include "dsp/fir.hpp"

#include <cmath>
#include <complex>
#include <stdexcept>

#include "util/units.hpp"

namespace sonic::dsp {
namespace {

double sinc(double x) {
  if (std::fabs(x) < 1e-12) return 1.0;
  return std::sin(sonic::util::kPi * x) / (sonic::util::kPi * x);
}

}  // namespace

std::vector<float> design_lowpass(double cutoff_hz, double sample_rate_hz, std::size_t taps,
                                  WindowType window) {
  if (taps % 2 == 0) ++taps;
  if (cutoff_hz <= 0 || cutoff_hz >= sample_rate_hz / 2) throw std::invalid_argument("cutoff out of range");
  const double fc = cutoff_hz / sample_rate_hz;  // normalized (cycles/sample)
  const auto win = make_window(window, taps);
  std::vector<float> h(taps);
  const double mid = static_cast<double>(taps - 1) / 2.0;
  double sum = 0.0;
  for (std::size_t i = 0; i < taps; ++i) {
    const double v = 2.0 * fc * sinc(2.0 * fc * (static_cast<double>(i) - mid)) * win[i];
    h[i] = static_cast<float>(v);
    sum += v;
  }
  // Normalize DC gain to exactly 1.
  for (auto& t : h) t = static_cast<float>(t / sum);
  return h;
}

std::vector<float> design_bandpass(double lo_hz, double hi_hz, double sample_rate_hz,
                                   std::size_t taps, WindowType window) {
  if (taps % 2 == 0) ++taps;
  if (!(0 < lo_hz && lo_hz < hi_hz && hi_hz < sample_rate_hz / 2))
    throw std::invalid_argument("band out of range");
  const double f1 = lo_hz / sample_rate_hz;
  const double f2 = hi_hz / sample_rate_hz;
  const auto win = make_window(window, taps);
  std::vector<float> h(taps);
  const double mid = static_cast<double>(taps - 1) / 2.0;
  for (std::size_t i = 0; i < taps; ++i) {
    const double t = static_cast<double>(i) - mid;
    const double v = (2.0 * f2 * sinc(2.0 * f2 * t) - 2.0 * f1 * sinc(2.0 * f1 * t)) * win[i];
    h[i] = static_cast<float>(v);
  }
  // Normalize gain to 1 at band center.
  const double fm = (f1 + f2) / 2.0;
  std::complex<double> resp(0.0, 0.0);
  for (std::size_t i = 0; i < taps; ++i) {
    const double ang = -sonic::util::kTwoPi * fm * static_cast<double>(i);
    resp += static_cast<double>(h[i]) * std::complex<double>(std::cos(ang), std::sin(ang));
  }
  const double gain = std::abs(resp);
  for (auto& t : h) t = static_cast<float>(t / gain);
  return h;
}

namespace {

// Dot product of two contiguous arrays; the one inner loop every FIR path
// funnels through, so every path sums in the same order.
float fir_dot(const float* window, const float* taps_rev, std::size_t n) {
  float acc = 0.0f;
  for (std::size_t i = 0; i < n; ++i) acc += window[i] * taps_rev[i];
  return acc;
}

}  // namespace

FirFilter::FirFilter(std::vector<float> taps)
    : taps_(std::move(taps)), taps_rev_(taps_.rbegin(), taps_.rend()),
      hist_(taps_.empty() ? 0 : taps_.size() - 1, 0.0f) {
  if (taps_.empty()) throw std::invalid_argument("empty taps");
}

void FirFilter::reset() { std::fill(hist_.begin(), hist_.end(), 0.0f); }

float FirFilter::process(float x) {
  const std::size_t t = taps_.size();
  work_.resize(t);
  std::copy(hist_.begin(), hist_.end(), work_.begin());
  work_[t - 1] = x;
  const float y = fir_dot(work_.data(), taps_rev_.data(), t);
  if (t > 1) {
    std::copy(hist_.begin() + 1, hist_.end(), hist_.begin());
    hist_.back() = x;
  }
  return y;
}

std::vector<float> FirFilter::process(std::span<const float> x) {
  const std::size_t t = taps_.size();
  const std::size_t h = t - 1;
  std::vector<float> out(x.size());
  if (x.empty()) return out;
  work_.resize(h + x.size());
  std::copy(hist_.begin(), hist_.end(), work_.begin());
  std::copy(x.begin(), x.end(), work_.begin() + static_cast<std::ptrdiff_t>(h));
  for (std::size_t i = 0; i < x.size(); ++i) {
    out[i] = fir_dot(work_.data() + i, taps_rev_.data(), t);
  }
  // Carry the last taps-1 inputs (work_ has h + n >= h entries).
  std::copy(work_.end() - static_cast<std::ptrdiff_t>(h), work_.end(), hist_.begin());
  return out;
}

std::vector<float> fir_reference(std::span<const float> taps, std::span<const float> x) {
  std::vector<float> history(taps.size(), 0.0f);
  std::size_t pos = 0;
  std::vector<float> out(x.size());
  for (std::size_t n = 0; n < x.size(); ++n) {
    history[pos] = x[n];
    float acc = 0.0f;
    std::size_t idx = pos;
    for (float tap : taps) {
      acc += tap * history[idx];
      idx = idx == 0 ? history.size() - 1 : idx - 1;
    }
    pos = (pos + 1) % history.size();
    out[n] = acc;
  }
  return out;
}

double FirFilter::magnitude_at(double f_hz, double sample_rate_hz) const {
  std::complex<double> resp(0.0, 0.0);
  const double w = sonic::util::kTwoPi * f_hz / sample_rate_hz;
  for (std::size_t i = 0; i < taps_.size(); ++i) {
    resp += static_cast<double>(taps_[i]) * std::complex<double>(std::cos(w * static_cast<double>(i)), -std::sin(w * static_cast<double>(i)));
  }
  return std::abs(resp);
}

}  // namespace sonic::dsp
