#include "dsp/resampler.hpp"

#include <cmath>
#include <stdexcept>

#include "util/units.hpp"

namespace sonic::dsp {
namespace {

double sinc(double x) {
  if (std::fabs(x) < 1e-12) return 1.0;
  return std::sin(sonic::util::kPi * x) / (sonic::util::kPi * x);
}

// Hann-windowed sinc kernel. The half-width covers 4 zero-crossings of the
// (possibly cutoff-stretched) sinc so downsampling keeps its anti-alias
// stopband and its passband gain.
double kernel(double x, double cutoff, double half_width) {
  if (std::fabs(x) >= half_width) return 0.0;
  const double window = 0.5 + 0.5 * std::cos(sonic::util::kPi * x / half_width);
  return cutoff * sinc(cutoff * x) * window;
}

}  // namespace

Resampler::Resampler(double ratio) : ratio_(ratio) {
  if (ratio <= 0) throw std::invalid_argument("resample ratio must be positive");
}

std::vector<float> Resampler::process(std::span<const float> input) const {
  if (input.empty()) return {};
  const std::size_t out_len = static_cast<std::size_t>(std::floor(static_cast<double>(input.size()) * ratio_));
  std::vector<float> out(out_len);
  // When downsampling, lower the kernel cutoff to avoid aliasing and widen
  // the support so the stretched sinc still spans 4 zero-crossings.
  const double cutoff = ratio_ >= 1.0 ? 1.0 : ratio_;
  const double half_width = 4.0 / cutoff;
  const long reach = static_cast<long>(std::ceil(half_width));
  for (std::size_t i = 0; i < out_len; ++i) {
    const double src = static_cast<double>(i) / ratio_;
    const long center = static_cast<long>(std::floor(src));
    double acc = 0.0;
    for (long k = center - reach; k <= center + reach; ++k) {
      if (k < 0 || k >= static_cast<long>(input.size())) continue;
      acc += static_cast<double>(input[static_cast<std::size_t>(k)]) *
             kernel(src - static_cast<double>(k), cutoff, half_width);
    }
    out[i] = static_cast<float>(acc);
  }
  return out;
}

std::vector<float> resample(std::span<const float> input, double in_rate, double out_rate) {
  return Resampler(out_rate / in_rate).process(input);
}

}  // namespace sonic::dsp
