#include "dsp/resampler.hpp"

#include <cmath>
#include <stdexcept>

#include "util/units.hpp"

namespace sonic::dsp {
namespace {

double sinc(double x) {
  if (std::fabs(x) < 1e-12) return 1.0;
  return std::sin(sonic::util::kPi * x) / (sonic::util::kPi * x);
}

// Hann-windowed sinc kernel. The half-width covers 4 zero-crossings of the
// (possibly cutoff-stretched) sinc so downsampling keeps its anti-alias
// stopband and its passband gain.
double kernel(double x, double cutoff, double half_width) {
  if (std::fabs(x) >= half_width) return 0.0;
  const double window = 0.5 + 0.5 * std::cos(sonic::util::kPi * x / half_width);
  return cutoff * sinc(cutoff * x) * window;
}

}  // namespace

Resampler::Resampler(double ratio) : ratio_(ratio) {
  if (ratio <= 0) throw std::invalid_argument("resample ratio must be positive");
  // When downsampling, lower the kernel cutoff to avoid aliasing and widen
  // the support so the stretched sinc still spans 4 zero-crossings.
  cutoff_ = ratio_ >= 1.0 ? 1.0 : ratio_;
  half_width_ = 4.0 / cutoff_;
  reach_ = static_cast<long>(std::ceil(half_width_));
}

std::vector<float> Resampler::process(std::span<const float> input) const {
  if (input.empty()) return {};
  const std::size_t out_len = static_cast<std::size_t>(std::floor(static_cast<double>(input.size()) * ratio_));
  std::vector<float> out(out_len);
  for (std::size_t i = 0; i < out_len; ++i) {
    const double src = static_cast<double>(i) / ratio_;
    const long center = static_cast<long>(std::floor(src));
    // Clamp the kernel window to the input once, instead of bounds-checking
    // every tap: the inner loop then runs branch-free over a contiguous
    // range, which is what lets the compiler vectorize it.
    const long lo = std::max<long>(center - reach_, 0);
    const long hi = std::min<long>(center + reach_, static_cast<long>(input.size()) - 1);
    double acc = 0.0;
    for (long k = lo; k <= hi; ++k) {
      acc += static_cast<double>(input[static_cast<std::size_t>(k)]) *
             kernel(src - static_cast<double>(k), cutoff_, half_width_);
    }
    out[i] = static_cast<float>(acc);
  }
  return out;
}

void Resampler::emit_ready(std::vector<float>& out, bool final_flush) {
  const std::size_t out_total =
      static_cast<std::size_t>(std::floor(static_cast<double>(total_in_) * ratio_));
  for (;; ++next_out_) {
    const double src = static_cast<double>(next_out_) / ratio_;
    const long center = static_cast<long>(std::floor(src));
    if (final_flush) {
      if (next_out_ >= out_total) break;
    } else {
      // Hold this output until its whole kernel window has been received.
      if (center + reach_ >= static_cast<long>(total_in_)) break;
    }
    // Same clamped branch-free window as the batch path (the history vector
    // is contiguous with absolute base hist_base_), keeping the two paths
    // term-for-term identical.
    const long lo = std::max<long>(center - reach_, 0);
    const long hi = std::min<long>(center + reach_, static_cast<long>(total_in_) - 1);
    double acc = 0.0;
    for (long k = lo; k <= hi; ++k) {
      acc += static_cast<double>(hist_[static_cast<std::size_t>(k) - hist_base_]) *
             kernel(src - static_cast<double>(k), cutoff_, half_width_);
    }
    out.push_back(static_cast<float>(acc));
  }
  // Evict history the next output can no longer reach.
  const long keep_from =
      static_cast<long>(std::floor(static_cast<double>(next_out_) / ratio_)) - reach_;
  if (keep_from > static_cast<long>(hist_base_)) {
    const std::size_t drop =
        std::min(hist_.size(), static_cast<std::size_t>(keep_from) - hist_base_);
    hist_.erase(hist_.begin(), hist_.begin() + static_cast<long>(drop));
    hist_base_ += drop;
  }
}

std::vector<float> Resampler::push(std::span<const float> chunk) {
  if (flushed_) throw std::logic_error("Resampler::push after flush (call reset first)");
  hist_.insert(hist_.end(), chunk.begin(), chunk.end());
  total_in_ += chunk.size();
  std::vector<float> out;
  emit_ready(out, /*final_flush=*/false);
  return out;
}

std::vector<float> Resampler::flush() {
  if (flushed_) throw std::logic_error("Resampler::flush called twice (call reset first)");
  flushed_ = true;
  std::vector<float> out;
  emit_ready(out, /*final_flush=*/true);
  return out;
}

void Resampler::reset() {
  hist_.clear();
  hist_base_ = 0;
  total_in_ = 0;
  next_out_ = 0;
  flushed_ = false;
}

std::vector<float> resample(std::span<const float> input, double in_rate, double out_rate) {
  return Resampler(out_rate / in_rate).process(input);
}

}  // namespace sonic::dsp
