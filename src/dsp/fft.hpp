// Radix-2 iterative FFT. The OFDM modem uses power-of-two transforms
// (1024-point at 44.1 kHz), so a dependency-free radix-2 kernel suffices.
//
// Two entry points:
//
//  * FftPlan — precomputed bit-reversal and twiddle tables for one size,
//    with in-place forward/inverse on caller-provided scratch. Plans are
//    immutable after construction and safe to share across threads;
//    FftPlan::get(n) hands out cached plans from a thread-safe registry so
//    the steady-state symbol path never recomputes tables. Twiddles are
//    evaluated per-element in double precision (no recurrence), so accuracy
//    does not drift with transform size.
//
//  * fft()/ifft() — convenience wrappers over the cached plan, keeping the
//    original one-shot API.
//
// The pre-plan kernel (per-call twiddle recurrence) is kept as
// fft_recurrence()/ifft_recurrence(): it is the before-case of
// bench/micro_dsp_fec and the accuracy foil of the kernel-equivalence tests
// (the recurrence accumulates O(N) ulps of twiddle error and fails a tight
// tolerance against dft_naive at N=4096; the table-driven plan passes).
#pragma once

#include <complex>
#include <cstdint>
#include <memory>
#include <span>
#include <vector>

namespace sonic::dsp {

using cplx = std::complex<float>;

class FftPlan {
 public:
  // Builds tables for size n (power of two).
  explicit FftPlan(std::size_t n);

  std::size_t size() const { return n_; }

  // In-place transform of data (data.size() must equal size()).
  void forward(std::span<cplx> data) const;
  // In-place inverse, including the 1/N normalization.
  void inverse(std::span<cplx> data) const;

  // Cached plan for size n; thread-safe, one plan per size per process.
  static std::shared_ptr<const FftPlan> get(std::size_t n);

 private:
  void run(std::span<cplx> data, bool inverse) const;

  std::size_t n_;
  std::vector<std::uint32_t> bitrev_;  // bit-reversed index of each position
  std::vector<cplx> twiddle_;          // exp(-2*pi*i*k/n), k in [0, n/2)
};

// In-place forward FFT via the cached plan; data.size() must be a power of
// two.
void fft(std::span<cplx> data);

// In-place inverse FFT, including the 1/N normalization.
void ifft(std::span<cplx> data);

// Legacy per-call twiddle-recurrence kernel, kept as the reference/before
// implementation for equivalence tests and benchmarks.
void fft_recurrence(std::span<cplx> data);
void ifft_recurrence(std::span<cplx> data);

// Naive O(N^2) DFT with double-precision accumulation, used by tests as the
// ground truth.
std::vector<cplx> dft_naive(std::span<const cplx> data);

bool is_power_of_two(std::size_t n);

}  // namespace sonic::dsp
