// Radix-2 iterative FFT. The OFDM modem uses power-of-two transforms
// (1024-point at 44.1 kHz), so a dependency-free radix-2 kernel suffices.
#pragma once

#include <complex>
#include <span>
#include <vector>

namespace sonic::dsp {

using cplx = std::complex<float>;

// In-place forward FFT; data.size() must be a power of two.
void fft(std::span<cplx> data);

// In-place inverse FFT, including the 1/N normalization.
void ifft(std::span<cplx> data);

// Naive O(N^2) DFT, used by tests as the ground truth.
std::vector<cplx> dft_naive(std::span<const cplx> data);

bool is_power_of_two(std::size_t n);

}  // namespace sonic::dsp
