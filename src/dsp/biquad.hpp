// RBJ-cookbook biquad sections. The FM layer uses them for pre-/de-emphasis
// (a first-order shelf approximated with a matched biquad) and the acoustic
// channel for its speaker/microphone response.
#pragma once

#include <span>
#include <vector>

namespace sonic::dsp {

class Biquad {
 public:
  // Direct-form-I coefficients (a0 normalized to 1).
  Biquad(double b0, double b1, double b2, double a1, double a2);

  static Biquad lowpass(double f_hz, double sample_rate_hz, double q = 0.7071);
  static Biquad highpass(double f_hz, double sample_rate_hz, double q = 0.7071);
  // First-order shelving filters built from the bilinear transform of an
  // analog RC; `tau_us` is the RC time constant in microseconds (50 us or
  // 75 us for FM broadcast emphasis).
  static Biquad fm_preemphasis(double tau_us, double sample_rate_hz);
  static Biquad fm_deemphasis(double tau_us, double sample_rate_hz);

  float process(float x);
  std::vector<float> process(std::span<const float> x);
  void reset();

  double magnitude_at(double f_hz, double sample_rate_hz) const;

 private:
  double b0_, b1_, b2_, a1_, a2_;
  double x1_ = 0, x2_ = 0, y1_ = 0, y2_ = 0;
};

}  // namespace sonic::dsp
