#include "dsp/biquad.hpp"

#include <cmath>
#include <complex>

#include "util/units.hpp"

namespace sonic::dsp {

Biquad::Biquad(double b0, double b1, double b2, double a1, double a2)
    : b0_(b0), b1_(b1), b2_(b2), a1_(a1), a2_(a2) {}

Biquad Biquad::lowpass(double f_hz, double sample_rate_hz, double q) {
  const double w0 = sonic::util::kTwoPi * f_hz / sample_rate_hz;
  const double alpha = std::sin(w0) / (2.0 * q);
  const double cw = std::cos(w0);
  const double a0 = 1 + alpha;
  return Biquad(((1 - cw) / 2) / a0, (1 - cw) / a0, ((1 - cw) / 2) / a0, (-2 * cw) / a0, (1 - alpha) / a0);
}

Biquad Biquad::highpass(double f_hz, double sample_rate_hz, double q) {
  const double w0 = sonic::util::kTwoPi * f_hz / sample_rate_hz;
  const double alpha = std::sin(w0) / (2.0 * q);
  const double cw = std::cos(w0);
  const double a0 = 1 + alpha;
  return Biquad(((1 + cw) / 2) / a0, -(1 + cw) / a0, ((1 + cw) / 2) / a0, (-2 * cw) / a0, (1 - alpha) / a0);
}

Biquad Biquad::fm_preemphasis(double tau_us, double sample_rate_hz) {
  // Analog H(s) = 1 + s*tau, discretized by bilinear transform. The analog
  // response grows without bound, so clamp with the sampling prewarp.
  const double tau = tau_us * 1e-6;
  const double k = 2.0 * sample_rate_hz;
  // H(z) = (1 + tau*k*(1 - z^-1)/(1 + z^-1)) = [(1+tau*k) + (1-tau*k) z^-1] / (1 + z^-1)
  const double b0 = 1 + tau * k;
  const double b1 = 1 - tau * k;
  // First-order: a1 = 1, a2 = 0, b2 = 0. Normalize so high-frequency gain is finite as-is.
  return Biquad(b0, b1, 0.0, 1.0, 0.0);
}

Biquad Biquad::fm_deemphasis(double tau_us, double sample_rate_hz) {
  const double tau = tau_us * 1e-6;
  const double k = 2.0 * sample_rate_hz;
  // Inverse of the above: H(z) = (1 + z^-1) / [(1+tau*k) + (1-tau*k) z^-1]
  const double a0 = 1 + tau * k;
  return Biquad(1.0 / a0, 1.0 / a0, 0.0, (1 - tau * k) / a0, 0.0);
}

float Biquad::process(float x) {
  const double y = b0_ * x + b1_ * x1_ + b2_ * x2_ - a1_ * y1_ - a2_ * y2_;
  x2_ = x1_;
  x1_ = x;
  y2_ = y1_;
  y1_ = y;
  return static_cast<float>(y);
}

std::vector<float> Biquad::process(std::span<const float> x) {
  std::vector<float> out(x.size());
  for (std::size_t i = 0; i < x.size(); ++i) out[i] = process(x[i]);
  return out;
}

void Biquad::reset() { x1_ = x2_ = y1_ = y2_ = 0; }

double Biquad::magnitude_at(double f_hz, double sample_rate_hz) const {
  const double w = sonic::util::kTwoPi * f_hz / sample_rate_hz;
  const std::complex<double> z1(std::cos(-w), std::sin(-w));
  const std::complex<double> z2 = z1 * z1;
  return std::abs((b0_ + b1_ * z1 + b2_ * z2) / (1.0 + a1_ * z1 + a2_ * z2));
}

}  // namespace sonic::dsp
