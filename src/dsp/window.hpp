// Window functions for spectral shaping and FIR design.
#pragma once

#include <cmath>
#include <vector>

#include "util/units.hpp"

namespace sonic::dsp {

enum class WindowType { kRect, kHann, kHamming, kBlackman };

inline std::vector<float> make_window(WindowType type, std::size_t n) {
  std::vector<float> w(n, 1.0f);
  if (n < 2) return w;
  const double denom = static_cast<double>(n - 1);
  for (std::size_t i = 0; i < n; ++i) {
    const double x = sonic::util::kTwoPi * static_cast<double>(i) / denom;
    switch (type) {
      case WindowType::kRect:
        break;
      case WindowType::kHann:
        w[i] = static_cast<float>(0.5 - 0.5 * std::cos(x));
        break;
      case WindowType::kHamming:
        w[i] = static_cast<float>(0.54 - 0.46 * std::cos(x));
        break;
      case WindowType::kBlackman:
        w[i] = static_cast<float>(0.42 - 0.5 * std::cos(x) + 0.08 * std::cos(2 * x));
        break;
    }
  }
  return w;
}

}  // namespace sonic::dsp
