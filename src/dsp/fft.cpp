#include "dsp/fft.hpp"

#include <cmath>
#include <stdexcept>

#include "util/units.hpp"

namespace sonic::dsp {

bool is_power_of_two(std::size_t n) { return n != 0 && (n & (n - 1)) == 0; }

namespace {

void fft_impl(std::span<cplx> a, bool inverse) {
  const std::size_t n = a.size();
  if (!is_power_of_two(n)) throw std::invalid_argument("fft size must be a power of two");

  // Bit-reversal permutation.
  for (std::size_t i = 1, j = 0; i < n; ++i) {
    std::size_t bit = n >> 1;
    for (; j & bit; bit >>= 1) j ^= bit;
    j ^= bit;
    if (i < j) std::swap(a[i], a[j]);
  }

  for (std::size_t len = 2; len <= n; len <<= 1) {
    const double ang = (inverse ? 2.0 : -2.0) * sonic::util::kPi / static_cast<double>(len);
    const cplx wlen(static_cast<float>(std::cos(ang)), static_cast<float>(std::sin(ang)));
    for (std::size_t i = 0; i < n; i += len) {
      cplx w(1.0f, 0.0f);
      for (std::size_t j = 0; j < len / 2; ++j) {
        const cplx u = a[i + j];
        const cplx v = a[i + j + len / 2] * w;
        a[i + j] = u + v;
        a[i + j + len / 2] = u - v;
        w *= wlen;
      }
    }
  }

  if (inverse) {
    const float inv_n = 1.0f / static_cast<float>(n);
    for (auto& x : a) x *= inv_n;
  }
}

}  // namespace

void fft(std::span<cplx> data) { fft_impl(data, false); }
void ifft(std::span<cplx> data) { fft_impl(data, true); }

std::vector<cplx> dft_naive(std::span<const cplx> data) {
  const std::size_t n = data.size();
  std::vector<cplx> out(n);
  for (std::size_t k = 0; k < n; ++k) {
    std::complex<double> acc(0.0, 0.0);
    for (std::size_t t = 0; t < n; ++t) {
      const double ang = -2.0 * sonic::util::kPi * static_cast<double>(k) * static_cast<double>(t) / static_cast<double>(n);
      acc += std::complex<double>(data[t].real(), data[t].imag()) * std::complex<double>(std::cos(ang), std::sin(ang));
    }
    out[k] = cplx(static_cast<float>(acc.real()), static_cast<float>(acc.imag()));
  }
  return out;
}

}  // namespace sonic::dsp
