#include "dsp/fft.hpp"

#include <cmath>
#include <mutex>
#include <stdexcept>
#include <unordered_map>

#include "util/units.hpp"

namespace sonic::dsp {

bool is_power_of_two(std::size_t n) { return n != 0 && (n & (n - 1)) == 0; }

namespace {

void fft_recurrence_impl(std::span<cplx> a, bool inverse) {
  const std::size_t n = a.size();
  if (!is_power_of_two(n)) throw std::invalid_argument("fft size must be a power of two");

  // Bit-reversal permutation.
  for (std::size_t i = 1, j = 0; i < n; ++i) {
    std::size_t bit = n >> 1;
    for (; j & bit; bit >>= 1) j ^= bit;
    j ^= bit;
    if (i < j) std::swap(a[i], a[j]);
  }

  for (std::size_t len = 2; len <= n; len <<= 1) {
    const double ang = (inverse ? 2.0 : -2.0) * sonic::util::kPi / static_cast<double>(len);
    const cplx wlen(static_cast<float>(std::cos(ang)), static_cast<float>(std::sin(ang)));
    for (std::size_t i = 0; i < n; i += len) {
      cplx w(1.0f, 0.0f);
      for (std::size_t j = 0; j < len / 2; ++j) {
        const cplx u = a[i + j];
        const cplx v = a[i + j + len / 2] * w;
        a[i + j] = u + v;
        a[i + j + len / 2] = u - v;
        w *= wlen;
      }
    }
  }

  if (inverse) {
    const float inv_n = 1.0f / static_cast<float>(n);
    for (auto& x : a) x *= inv_n;
  }
}

}  // namespace

FftPlan::FftPlan(std::size_t n) : n_(n) {
  if (!is_power_of_two(n)) throw std::invalid_argument("fft size must be a power of two");
  bitrev_.resize(n);
  int log2n = 0;
  while ((std::size_t{1} << log2n) < n) ++log2n;
  for (std::size_t i = 0; i < n; ++i) {
    std::size_t r = 0;
    for (int b = 0; b < log2n; ++b) r |= ((i >> b) & 1u) << (log2n - 1 - b);
    bitrev_[i] = static_cast<std::uint32_t>(r);
  }
  // One table for the largest stage; stage len reads it with stride n/len
  // (w_len^j == w_n^{j*n/len}). Each entry is evaluated directly in double,
  // so table accuracy is independent of n.
  twiddle_.resize(n / 2);
  for (std::size_t k = 0; k < n / 2; ++k) {
    const double ang = -2.0 * sonic::util::kPi * static_cast<double>(k) / static_cast<double>(n);
    twiddle_[k] = cplx(static_cast<float>(std::cos(ang)), static_cast<float>(std::sin(ang)));
  }
}

void FftPlan::run(std::span<cplx> data, bool inverse) const {
  if (data.size() != n_) throw std::invalid_argument("fft plan/data size mismatch");
  cplx* a = data.data();
  for (std::size_t i = 0; i < n_; ++i) {
    const std::size_t j = bitrev_[i];
    if (i < j) std::swap(a[i], a[j]);
  }

  // Conjugating the forward table gives the inverse transform; the sign flip
  // hoists out of the butterfly as a multiplier on the imaginary part.
  const float sign = inverse ? -1.0f : 1.0f;
  for (std::size_t len = 2; len <= n_; len <<= 1) {
    const std::size_t half = len / 2;
    const std::size_t stride = n_ / len;
    for (std::size_t i = 0; i < n_; i += len) {
      cplx* lo = a + i;
      cplx* hi = a + i + half;
      // Independent iterations (no cross-iteration twiddle recurrence), so
      // the compiler can vectorize the butterfly.
      for (std::size_t j = 0; j < half; ++j) {
        const cplx t = twiddle_[j * stride];
        const float wr = t.real();
        const float wi = sign * t.imag();
        const float vr = hi[j].real() * wr - hi[j].imag() * wi;
        const float vi = hi[j].real() * wi + hi[j].imag() * wr;
        const cplx u = lo[j];
        lo[j] = cplx(u.real() + vr, u.imag() + vi);
        hi[j] = cplx(u.real() - vr, u.imag() - vi);
      }
    }
  }

  if (inverse) {
    const float inv_n = 1.0f / static_cast<float>(n_);
    for (std::size_t i = 0; i < n_; ++i) a[i] *= inv_n;
  }
}

void FftPlan::forward(std::span<cplx> data) const { run(data, false); }
void FftPlan::inverse(std::span<cplx> data) const { run(data, true); }

std::shared_ptr<const FftPlan> FftPlan::get(std::size_t n) {
  static std::mutex mu;
  static std::unordered_map<std::size_t, std::shared_ptr<const FftPlan>> cache;
  std::lock_guard<std::mutex> lock(mu);
  auto& slot = cache[n];
  if (!slot) slot = std::make_shared<const FftPlan>(n);
  return slot;
}

void fft(std::span<cplx> data) { FftPlan::get(data.size())->forward(data); }
void ifft(std::span<cplx> data) { FftPlan::get(data.size())->inverse(data); }

void fft_recurrence(std::span<cplx> data) { fft_recurrence_impl(data, false); }
void ifft_recurrence(std::span<cplx> data) { fft_recurrence_impl(data, true); }

std::vector<cplx> dft_naive(std::span<const cplx> data) {
  const std::size_t n = data.size();
  std::vector<cplx> out(n);
  for (std::size_t k = 0; k < n; ++k) {
    std::complex<double> acc(0.0, 0.0);
    for (std::size_t t = 0; t < n; ++t) {
      const double ang = -2.0 * sonic::util::kPi * static_cast<double>(k) * static_cast<double>(t) / static_cast<double>(n);
      acc += std::complex<double>(data[t].real(), data[t].imag()) * std::complex<double>(std::cos(ang), std::sin(ang));
    }
    out[k] = cplx(static_cast<float>(acc.real()), static_cast<float>(acc.imag()));
  }
  return out;
}

}  // namespace sonic::dsp
