// FIR filtering and windowed-sinc design. Used by the FM layer for the
// 15 kHz program low-pass and by the acoustic channel's band-tilt model.
#pragma once

#include <span>
#include <vector>

#include "dsp/window.hpp"

namespace sonic::dsp {

// Linear-phase low-pass design: `cutoff_hz` at `sample_rate_hz`, odd-length
// `taps` (even lengths are bumped by one), windowed by `window`.
std::vector<float> design_lowpass(double cutoff_hz, double sample_rate_hz, std::size_t taps,
                                  WindowType window = WindowType::kHamming);

// Band-pass between lo and hi.
std::vector<float> design_bandpass(double lo_hz, double hi_hz, double sample_rate_hz,
                                   std::size_t taps, WindowType window = WindowType::kHamming);

// Stateful FIR for streaming use.
class FirFilter {
 public:
  explicit FirFilter(std::vector<float> taps);

  float process(float x);
  std::vector<float> process(std::span<const float> x);
  void reset();

  // Group delay in samples ((taps-1)/2 for the linear-phase designs above).
  std::size_t delay() const { return (taps_.size() - 1) / 2; }
  const std::vector<float>& taps() const { return taps_; }

  // Filter magnitude response at frequency f (for tests).
  double magnitude_at(double f_hz, double sample_rate_hz) const;

 private:
  std::vector<float> taps_;
  std::vector<float> history_;  // circular
  std::size_t pos_ = 0;
};

}  // namespace sonic::dsp
