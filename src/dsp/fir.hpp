// FIR filtering and windowed-sinc design. Used by the FM layer for the
// 15 kHz program low-pass and by the acoustic channel's band-tilt model.
#pragma once

#include <span>
#include <vector>

#include "dsp/window.hpp"

namespace sonic::dsp {

// Linear-phase low-pass design: `cutoff_hz` at `sample_rate_hz`, odd-length
// `taps` (even lengths are bumped by one), windowed by `window`.
std::vector<float> design_lowpass(double cutoff_hz, double sample_rate_hz, std::size_t taps,
                                  WindowType window = WindowType::kHamming);

// Band-pass between lo and hi.
std::vector<float> design_bandpass(double lo_hz, double hi_hz, double sample_rate_hz,
                                   std::size_t taps, WindowType window = WindowType::kHamming);

// Stateful FIR for streaming use.
//
// The block path lays the carried history and the new chunk out in one
// contiguous window and runs a plain dot product per output — no per-tap
// ring modulo — so the inner loop auto-vectorizes. The per-sample overload
// shares the same dot-product (identical summation order), so any mix of
// per-sample and block calls produces bit-identical output for the same
// input stream. fir_reference() below is the pre-optimization ring-buffer
// kernel, kept for equivalence tests and benchmarks.
class FirFilter {
 public:
  explicit FirFilter(std::vector<float> taps);

  float process(float x);
  std::vector<float> process(std::span<const float> x);
  void reset();

  // Group delay in samples ((taps-1)/2 for the linear-phase designs above).
  std::size_t delay() const { return (taps_.size() - 1) / 2; }
  const std::vector<float>& taps() const { return taps_; }

  // Filter magnitude response at frequency f (for tests).
  double magnitude_at(double f_hz, double sample_rate_hz) const;

 private:
  std::vector<float> taps_;      // design order, for taps()/magnitude_at
  std::vector<float> taps_rev_;  // reversed: dot with an oldest-first window
  std::vector<float> hist_;      // last taps-1 inputs, oldest first
  std::vector<float> work_;      // contiguous [history | chunk] scratch
};

// Reference: filters `x` from zero initial state with the original
// per-sample ring-buffer kernel. Used by tests/bench as the before-case.
std::vector<float> fir_reference(std::span<const float> taps, std::span<const float> x);

}  // namespace sonic::dsp
