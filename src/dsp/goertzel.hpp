// Goertzel single-bin DFT — the FSK demodulator only needs the energy at a
// handful of tone frequencies, for which Goertzel beats a full FFT.
#pragma once

#include <span>

namespace sonic::dsp {

// Power of `samples` at frequency f_hz (normalized by window length).
double goertzel_power(std::span<const float> samples, double f_hz, double sample_rate_hz);

}  // namespace sonic::dsp
