// End-to-end FM broadcast link: modem audio -> FM transmitter -> RF channel
// (RSSI) -> radio receiver -> over-the-air/cable audio hop -> SONIC client.
// This is the full substrate chain behind the paper's testbed (Figure 3).
#pragma once

#include <span>
#include <vector>

#include "fm/acoustic.hpp"
#include "fm/fm_modem.hpp"
#include "util/rng.hpp"

namespace sonic::fm {

struct FmLinkConfig {
  FmParams fm;                 // modulator/demodulator settings
  RfChannelParams rf;          // RSSI etc.
  AcousticParams acoustic;     // distance etc. (distance 0 = cable)
  bool enable_rf = true;       // false: bypass the RF hop entirely (ideal
                               // radio, e.g. when only the acoustic hop is
                               // under study — ~5x faster)
  std::uint64_t seed = 1;
};

class FmLink {
 public:
  explicit FmLink(FmLinkConfig config);

  // Runs `audio` through the whole chain and returns what the SONIC client
  // hears.
  std::vector<float> transmit(std::span<const float> audio);

  // Diagnostics from the last transmit().
  double last_acoustic_snr_db() const { return last_acoustic_snr_db_; }
  double rf_cnr_db() const;

 private:
  FmLinkConfig config_;
  sonic::util::Rng rng_;
  double last_acoustic_snr_db_ = 0.0;
};

}  // namespace sonic::fm
