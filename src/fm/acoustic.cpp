#include "fm/acoustic.hpp"

#include <algorithm>
#include <cmath>

#include "dsp/biquad.hpp"
#include "dsp/resampler.hpp"
#include "util/units.hpp"

namespace sonic::fm {

AcousticChannel::AcousticChannel(AcousticParams params, sonic::util::Rng rng)
    : params_(params), rng_(rng) {
  if (params_.distance_m <= 0.0) {
    trial_gain_db_ = 0.0;
    return;
  }
  const double d = params_.distance_m;
  double gain = -20.0 * std::log10(std::max(d, params_.ref_distance_m) / params_.ref_distance_m);
  if (d > params_.directivity_knee_m) {
    gain -= (d - params_.directivity_knee_m) * params_.directivity_db_per_m;
  }
  // Per-trial alignment: spread grows linearly with distance.
  const double align_sigma = params_.align_sigma_db_at_1m * d;
  gain += rng_.normal(0.0, align_sigma);
  trial_gain_db_ = gain;
}

double AcousticChannel::trial_snr_db() const {
  if (params_.distance_m <= 0.0) return params_.cable_snr_db;
  return params_.ref_snr_db + trial_gain_db_;
}

std::vector<float> AcousticChannel::process(std::span<const float> audio) {
  std::vector<float> out(audio.begin(), audio.end());
  double p_in = 0.0;
  for (float s : out) p_in += static_cast<double>(s) * s;
  p_in /= std::max<std::size_t>(out.size(), 1);
  if (p_in <= 0.0) return out;

  if (params_.distance_m <= 0.0) {
    // Cable: tiny residual noise plus clock skew.
    const double sigma = std::sqrt(p_in / sonic::util::db_to_linear(params_.cable_snr_db));
    for (auto& s : out) s += static_cast<float>(rng_.normal(0.0, sigma));
  } else {
    const float g = static_cast<float>(sonic::util::db_to_amplitude(trial_gain_db_));
    // Slow fading: sinusoidal wobble with random phase; depth grows with
    // distance (hand-held phone, moving listener).
    const double depth_db = params_.wobble_depth_db_at_1m * params_.distance_m;
    const double wobble_phase = rng_.uniform(0.0, sonic::util::kTwoPi);
    const double w = sonic::util::kTwoPi * params_.wobble_rate_hz / params_.sample_rate_hz;
    for (std::size_t i = 0; i < out.size(); ++i) {
      const double wob_db = -0.5 * depth_db * (1.0 + std::sin(w * static_cast<double>(i) + wobble_phase));
      out[i] *= g * static_cast<float>(sonic::util::db_to_amplitude(wob_db));
    }
    if (params_.mic_band_tilt) {
      // Gentle roll-off from ~12 kHz: cheap phone mics lose the top octave.
      auto tilt = dsp::Biquad::lowpass(12000.0, params_.sample_rate_hz, 0.6);
      out = tilt.process(out);
    }
    // Ambient noise anchored so SNR at the reference distance equals
    // ref_snr_db for a unit-gain trial.
    const double sigma = std::sqrt(p_in / sonic::util::db_to_linear(params_.ref_snr_db));
    for (auto& s : out) s += static_cast<float>(rng_.normal(0.0, sigma));
  }

  // Sample-clock skew between transmitter DAC and receiver ADC.
  if (params_.clock_skew_ppm > 0.0) {
    const double eps = rng_.uniform(-params_.clock_skew_ppm, params_.clock_skew_ppm) * 1e-6;
    out = dsp::Resampler(1.0 + eps).process(out);
  }
  return out;
}

}  // namespace sonic::fm
