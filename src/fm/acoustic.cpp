#include "fm/acoustic.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "util/units.hpp"

namespace sonic::fm {

AcousticChannel::AcousticChannel(AcousticParams params, sonic::util::Rng rng)
    : params_(params), rng_(rng), tilt_(1.0, 0.0, 0.0, 0.0, 0.0) {
  if (params_.clock_skew_ppm < 0.0) {
    throw std::invalid_argument(
        "AcousticParams::clock_skew_ppm must be >= 0 (it bounds the symmetric "
        "per-trial skew draw)");
  }
  if (!(params_.sample_rate_hz > 0.0)) {
    throw std::invalid_argument("AcousticParams::sample_rate_hz must be positive");
  }

  if (params_.distance_m > 0.0) {
    const double d = params_.distance_m;
    double gain = -20.0 * std::log10(std::max(d, params_.ref_distance_m) / params_.ref_distance_m);
    if (d > params_.directivity_knee_m) {
      gain -= (d - params_.directivity_knee_m) * params_.directivity_db_per_m;
    }
    // Per-trial alignment: spread grows linearly with distance.
    const double align_sigma = params_.align_sigma_db_at_1m * d;
    gain += rng_.normal(0.0, align_sigma);
    trial_gain_db_ = gain;

    // Slow fading: sinusoidal wobble with a random phase drawn once per
    // trial, so chunked processing continues the same fade trajectory.
    wobble_phase_ = rng_.uniform(0.0, sonic::util::kTwoPi);
    if (params_.mic_band_tilt) {
      // Gentle roll-off from ~12 kHz: cheap phone mics lose the top octave.
      tilt_ = dsp::Biquad::lowpass(12000.0, params_.sample_rate_hz, 0.6);
      tilt_on_ = true;
    }
  }

  // Sample-clock skew between transmitter DAC and receiver ADC: one epsilon
  // per trial, held by a streaming resampler so chunk boundaries don't
  // re-draw the skew or reset the interpolation window.
  if (params_.clock_skew_ppm > 0.0) {
    const double eps = rng_.uniform(-params_.clock_skew_ppm, params_.clock_skew_ppm) * 1e-6;
    skew_.emplace(1.0 + eps);
  }
}

double AcousticChannel::trial_snr_db() const {
  if (params_.distance_m <= 0.0) return params_.cable_snr_db;
  return params_.ref_snr_db + trial_gain_db_;
}

std::vector<float> AcousticChannel::process(std::span<const float> audio) {
  std::vector<float> out(audio.begin(), audio.end());
  if (!noise_sigma_.has_value()) {
    double p_in = 0.0;
    for (float s : out) p_in += static_cast<double>(s) * s;
    p_in /= std::max<std::size_t>(out.size(), 1);
    // Silent lead-in: pass through untouched until the signal appears (and
    // with it a power anchor for the ambient-noise level).
    if (p_in <= 0.0) return out;
    const double anchor_db =
        params_.distance_m <= 0.0 ? params_.cable_snr_db : params_.ref_snr_db;
    noise_sigma_ = std::sqrt(p_in / sonic::util::db_to_linear(anchor_db));
  }

  if (params_.distance_m <= 0.0) {
    // Cable: tiny residual noise plus clock skew.
    for (auto& s : out) s += static_cast<float>(rng_.normal(0.0, *noise_sigma_));
  } else {
    const float g = static_cast<float>(sonic::util::db_to_amplitude(trial_gain_db_));
    // Slow fading: depth grows with distance (hand-held phone, moving
    // listener); the phase and running sample index persist across chunks.
    const double depth_db = params_.wobble_depth_db_at_1m * params_.distance_m;
    const double w = sonic::util::kTwoPi * params_.wobble_rate_hz / params_.sample_rate_hz;
    for (std::size_t i = 0; i < out.size(); ++i) {
      const double wob_db =
          -0.5 * depth_db *
          (1.0 + std::sin(w * static_cast<double>(wobble_index_ + i) + wobble_phase_));
      out[i] *= g * static_cast<float>(sonic::util::db_to_amplitude(wob_db));
    }
    wobble_index_ += out.size();
    if (tilt_on_) out = tilt_.process(out);
    // Ambient noise anchored so SNR at the reference distance equals
    // ref_snr_db for a unit-gain trial.
    for (auto& s : out) s += static_cast<float>(rng_.normal(0.0, *noise_sigma_));
  }

  if (skew_.has_value()) out = skew_->push(out);
  return out;
}

std::vector<float> AcousticChannel::finish() {
  if (!skew_.has_value()) return {};
  return skew_->flush();
}

}  // namespace sonic::fm
