// FM broadcast modulator/demodulator at complex baseband.
//
// The paper's transmitter is a Raspberry Pi GPIO clock (93.7 MHz carrier);
// we simulate the equivalent at complex baseband, which preserves everything
// the data path can observe: the FM capture/threshold effect, the SNR
// improvement above threshold, and the click noise near it. The program
// material is the FM *mono* channel (30 Hz - 15 kHz) exactly as in §4.
#pragma once

#include <complex>
#include <span>
#include <vector>

#include "util/rng.hpp"

namespace sonic::fm {

using cplx = std::complex<float>;

struct FmParams {
  double audio_rate_hz = 44100.0;
  double iq_rate_hz = 220500.0;   // 5x audio rate (integer ratio)
  double deviation_hz = 75000.0;  // FM broadcast peak deviation
  // 0 disables pre/de-emphasis. The paper's Raspberry Pi GPIO transmitter
  // applies none, so 0 is the faithful default; 50/75 us model commercial
  // stations.
  double emphasis_tau_us = 0.0;
  double audio_lowpass_hz = 15000.0;  // mono channel edge
  // Program-level headroom: audio is scaled by this before modulation and
  // hard-limited at +-1 so OFDM crest peaks cannot overrun the deviation
  // budget (Carson bandwidth must stay inside iq_rate).
  double input_gain = 0.7;
};

class FmModulator {
 public:
  explicit FmModulator(FmParams params = {});
  // Audio in [-1, 1] -> constant-envelope IQ at iq_rate.
  std::vector<cplx> modulate(std::span<const float> audio) const;
  const FmParams& params() const { return params_; }

 private:
  FmParams params_;
};

class FmDemodulator {
 public:
  explicit FmDemodulator(FmParams params = {});
  // IQ at iq_rate -> audio at audio_rate.
  std::vector<float> demodulate(std::span<const cplx> iq) const;
  const FmParams& params() const { return params_; }

 private:
  FmParams params_;
};

// RF propagation: maps an RSSI reading to carrier-to-noise ratio and applies
// complex AWGN to the IQ stream. FM behaviour vs RSSI (the paper's §4
// "Variable RSSI" experiment) then emerges from the demodulator itself.
struct RfChannelParams {
  double rssi_db = -70.0;         // received signal strength
  // Receiver noise floor, calibrated so the FM threshold cliff (which the
  // demodulator produces naturally at CNR ~= 5 dB) lands where the paper
  // measured it: clean down to -85 dB, fluctuating 2-15% loss in -85..-90,
  // and nothing below -90 dB (§4, "Variable RSSI").
  double noise_floor_db = -95.0;
  // Slow fading: per-trial RSSI jitter (standard deviation, dB). Produces
  // the fluctuating-loss band instead of a knife-edge cliff.
  double fading_sigma_db = 1.5;
};

class RfChannel {
 public:
  RfChannel(RfChannelParams params, sonic::util::Rng rng);
  std::vector<cplx> process(std::span<const cplx> iq);
  double cnr_db() const { return params_.rssi_db - params_.noise_floor_db; }

 private:
  RfChannelParams params_;
  sonic::util::Rng rng_;
};

}  // namespace sonic::fm
