// FM broadcast modulator/demodulator at complex baseband.
//
// The paper's transmitter is a Raspberry Pi GPIO clock (93.7 MHz carrier);
// we simulate the equivalent at complex baseband, which preserves everything
// the data path can observe: the FM capture/threshold effect, the SNR
// improvement above threshold, and the click noise near it. The program
// material is the FM *mono* channel (30 Hz - 15 kHz) exactly as in §4.
#pragma once

#include <complex>
#include <span>
#include <vector>

#include "dsp/biquad.hpp"
#include "dsp/fir.hpp"
#include "dsp/resampler.hpp"
#include "util/rng.hpp"

namespace sonic::fm {

using cplx = std::complex<float>;

struct FmParams {
  double audio_rate_hz = 44100.0;
  double iq_rate_hz = 220500.0;   // 5x audio rate (integer ratio)
  double deviation_hz = 75000.0;  // FM broadcast peak deviation
  // 0 disables pre/de-emphasis. The paper's Raspberry Pi GPIO transmitter
  // applies none, so 0 is the faithful default; 50/75 us model commercial
  // stations.
  double emphasis_tau_us = 0.0;
  double audio_lowpass_hz = 15000.0;  // mono channel edge
  // Program-level headroom: audio is scaled by this before modulation and
  // hard-limited at +-1 so OFDM crest peaks cannot overrun the deviation
  // budget (Carson bandwidth must stay inside iq_rate).
  double input_gain = 0.7;
};

class FmModulator {
 public:
  explicit FmModulator(FmParams params = {});
  // Audio in [-1, 1] -> constant-envelope IQ at iq_rate.
  std::vector<cplx> modulate(std::span<const float> audio) const;
  const FmParams& params() const { return params_; }

 private:
  FmParams params_;
};

// Streaming demodulator: discriminator phase history, the post-detection
// low-pass, the decimator, and the de-emphasis network are all members, so
// feeding the IQ stream in chunks produces exactly the same audio as one
// batch call — concat(demodulate(c1), demodulate(c2), ..., finish()) ==
// demodulate(c1 + c2 + ...) + finish() for any chunking. The first sample
// after construction/reset() produces zero instantaneous frequency instead
// of a spurious phase impulse against an arbitrary reference.
class FmDemodulator {
 public:
  explicit FmDemodulator(FmParams params = {});
  // IQ at iq_rate -> audio at audio_rate; every output sample that the
  // decimator can already fully determine. Carries state across calls.
  std::vector<float> demodulate(std::span<const cplx> iq);
  // End of stream: drains the decimator tail (a handful of samples).
  std::vector<float> finish();
  // Forget all stream state; the next sample starts a fresh stream.
  void reset();
  const FmParams& params() const { return params_; }

 private:
  std::vector<float> postprocess(std::vector<float> freq);

  FmParams params_;
  cplx prev_{1.0f, 0.0f};
  bool have_prev_ = false;
  dsp::FirFilter lp_;
  dsp::Resampler decim_;
  dsp::Biquad de_emphasis_;  // identity when emphasis_tau_us == 0
  bool de_emphasis_on_ = false;
  double de_mid_gain_ = 1.0;
};

// RF propagation: maps an RSSI reading to carrier-to-noise ratio and applies
// complex AWGN to the IQ stream. FM behaviour vs RSSI (the paper's §4
// "Variable RSSI" experiment) then emerges from the demodulator itself.
struct RfChannelParams {
  double rssi_db = -70.0;         // received signal strength
  // Receiver noise floor, calibrated so the FM threshold cliff (which the
  // demodulator produces naturally at CNR ~= 5 dB) lands where the paper
  // measured it: clean down to -85 dB, fluctuating 2-15% loss in -85..-90,
  // and nothing below -90 dB (§4, "Variable RSSI").
  double noise_floor_db = -95.0;
  // Slow fading: per-trial RSSI jitter (standard deviation, dB). Produces
  // the fluctuating-loss band instead of a knife-edge cliff.
  double fading_sigma_db = 1.5;
};

class RfChannel {
 public:
  RfChannel(RfChannelParams params, sonic::util::Rng rng);
  std::vector<cplx> process(std::span<const cplx> iq);
  double cnr_db() const { return params_.rssi_db - params_.noise_floor_db; }

 private:
  RfChannelParams params_;
  sonic::util::Rng rng_;
};

}  // namespace sonic::fm
