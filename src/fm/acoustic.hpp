// Speaker-to-microphone ("over-the-air") channel model.
//
// In the paper's Figure 4(a) setup, the FM receiver is an ordinary radio and
// the SONIC client listens through its microphone across 0 (cable/internal
// tuner) to 1.1 m of air. The operative impairments at these distances are:
//
//   * spherical spreading loss relative to a 10 cm reference,
//   * a directivity knee: beyond ~0.8 m the direct path drops below the
//     reverberant field and loss grows much faster than 1/d,
//   * speaker/microphone alignment: the paper explicitly notes alignment
//     "has a significant impact" and was not controlled — modelled as a
//     per-trial random gain whose spread grows with distance,
//   * slow fading ("wobble") as the user holds the phone, which is what
//     makes losses partial rather than all-or-nothing,
//   * constant ambient noise, band tilt from the mic response, and a small
//     sample-clock skew between the radio's DAC and the phone's ADC.
//
// distance_m <= 0 selects cable mode (internal tuner / audio jack):
// essentially transparent, matching the paper's 0% cable loss.
#pragma once

#include <optional>
#include <span>
#include <vector>

#include "dsp/biquad.hpp"
#include "dsp/resampler.hpp"
#include "util/rng.hpp"

namespace sonic::fm {

struct AcousticParams {
  double distance_m = 0.0;          // 0 = cable / internal tuner
  double ref_distance_m = 0.1;      // reference for the SNR anchor
  // Defaults calibrated so the sonic-10k profile reproduces Fig. 4(a):
  // zero loss through 0.5 m, ~10-20% median loss at 1 m, mostly lost at
  // 1.1 m, and total loss beyond ~1.2 m (see bench/fig4a_distance_loss).
  double ref_snr_db = 47.3;         // SNR at the reference distance
  double cable_snr_db = 55.0;       // residual noise in cable mode
  double directivity_knee_m = 0.8;  // where the direct path starts losing
  double directivity_db_per_m = 35.0;
  double align_sigma_db_at_1m = 2.0;   // per-trial alignment gain spread
  double wobble_depth_db_at_1m = 9.0;  // slow fading depth
  double wobble_rate_hz = 2.5;
  double clock_skew_ppm = 30.0;     // uniform in [-ppm, +ppm] per trial
  double sample_rate_hz = 44100.0;
  bool mic_band_tilt = true;        // gentle high-frequency roll-off
};

// One trial of the channel, streamable: all per-trial draws (alignment gain,
// wobble phase, clock-skew epsilon) happen at construction, and the mic
// band-tilt biquad, the skew resampler, and the wobble sample index live as
// members — so feeding the audio in chunks is sample-identical to feeding it
// whole, given the same first chunk. The ambient-noise level is anchored to
// the signal power of the first non-silent chunk (for a single batch call
// that is the whole buffer, the historical behaviour); later chunks reuse
// that anchor instead of re-measuring, so quiet stretches in a long stream
// don't modulate the noise floor.
//
// Throws std::invalid_argument when clock_skew_ppm is negative (it bounds a
// symmetric per-trial draw; a negative bound silently disabled skew) or
// sample_rate_hz is not positive.
class AcousticChannel {
 public:
  AcousticChannel(AcousticParams params, sonic::util::Rng rng);

  // Feed one chunk (or the whole buffer); returns the audible result. With
  // clock skew enabled the output length trails the input by the skew
  // resampler's kernel reach until finish().
  std::vector<float> process(std::span<const float> audio);
  // End of stream: drains the skew resampler's tail (empty without skew).
  std::vector<float> finish();

  // Mean channel gain for the current trial, dB (diagnostics/benches).
  double trial_gain_db() const { return trial_gain_db_; }
  // Expected SNR at the microphone for this trial, dB.
  double trial_snr_db() const;

 private:
  AcousticParams params_;
  sonic::util::Rng rng_;
  double trial_gain_db_ = 0.0;
  double wobble_phase_ = 0.0;
  std::size_t wobble_index_ = 0;     // absolute sample position in the trial
  std::optional<double> noise_sigma_;  // latched from the first audible chunk
  dsp::Biquad tilt_;                 // identity when mic_band_tilt is off
  bool tilt_on_ = false;
  std::optional<dsp::Resampler> skew_;
};

}  // namespace sonic::fm
