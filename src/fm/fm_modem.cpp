#include "fm/fm_modem.hpp"

#include <algorithm>
#include <cmath>

#include "dsp/biquad.hpp"
#include "dsp/fir.hpp"
#include "dsp/resampler.hpp"
#include "util/units.hpp"

namespace sonic::fm {

FmModulator::FmModulator(FmParams params) : params_(params) {}

std::vector<cplx> FmModulator::modulate(std::span<const float> audio) const {
  // Pre-emphasis, band-limit to the mono channel, upsample to the IQ rate.
  std::vector<float> program(audio.begin(), audio.end());
  if (params_.emphasis_tau_us > 0) {
    auto pre = dsp::Biquad::fm_preemphasis(params_.emphasis_tau_us, params_.audio_rate_hz);
    // Normalize so a mid-band tone keeps unit gain (pre-emphasis boosts
    // highs; without normalization the deviation budget is blown).
    const double mid_gain = pre.magnitude_at(3000.0, params_.audio_rate_hz);
    program = pre.process(program);
    for (auto& s : program) s = static_cast<float>(s / mid_gain);
  }
  dsp::FirFilter lp(dsp::design_lowpass(params_.audio_lowpass_hz, params_.audio_rate_hz, 63));
  program = lp.process(program);
  // Headroom + limiter: keep instantaneous deviation within budget.
  for (auto& s : program) {
    s = std::clamp(static_cast<float>(s * params_.input_gain), -1.0f, 1.0f);
  }
  std::vector<float> up = dsp::resample(program, params_.audio_rate_hz, params_.iq_rate_hz);

  // Phase integration: d(phi)/dt = 2*pi*deviation*m(t).
  std::vector<cplx> iq(up.size());
  double phase = 0.0;
  const double k = sonic::util::kTwoPi * params_.deviation_hz / params_.iq_rate_hz;
  for (std::size_t i = 0; i < up.size(); ++i) {
    phase += k * static_cast<double>(up[i]);
    if (phase > sonic::util::kPi) phase -= sonic::util::kTwoPi;
    if (phase < -sonic::util::kPi) phase += sonic::util::kTwoPi;
    iq[i] = cplx(static_cast<float>(std::cos(phase)), static_cast<float>(std::sin(phase)));
  }
  return iq;
}

FmDemodulator::FmDemodulator(FmParams params)
    : params_(params),
      lp_(dsp::design_lowpass(params_.audio_lowpass_hz, params_.iq_rate_hz, 63)),
      decim_(params_.audio_rate_hz / params_.iq_rate_hz),
      de_emphasis_(params_.emphasis_tau_us > 0
                       ? dsp::Biquad::fm_deemphasis(params_.emphasis_tau_us, params_.audio_rate_hz)
                       : dsp::Biquad(1.0, 0.0, 0.0, 0.0, 0.0)),
      de_emphasis_on_(params_.emphasis_tau_us > 0) {
  if (de_emphasis_on_) {
    de_mid_gain_ = de_emphasis_.magnitude_at(3000.0, params_.audio_rate_hz);
  }
}

std::vector<float> FmDemodulator::postprocess(std::vector<float> audio) {
  if (de_emphasis_on_) {
    audio = de_emphasis_.process(audio);
    for (auto& s : audio) s = static_cast<float>(s / de_mid_gain_);
  }
  return audio;
}

std::vector<float> FmDemodulator::demodulate(std::span<const cplx> iq) {
  // Quadrature discriminator: instantaneous frequency from the phase delta.
  // The reference sample carries across calls; the very first sample of a
  // stream has no predecessor, so its delta is dropped (zero frequency)
  // rather than measured against an arbitrary phase.
  std::vector<float> freq(iq.size(), 0.0f);
  const double scale =
      params_.iq_rate_hz / (sonic::util::kTwoPi * params_.deviation_hz * params_.input_gain);
  for (std::size_t i = 0; i < iq.size(); ++i) {
    const cplx cur = iq[i];
    if (have_prev_) {
      const float dphi = std::arg(cur * std::conj(prev_));
      freq[i] = static_cast<float>(dphi * scale);
    } else {
      have_prev_ = true;
    }
    prev_ = cur;
  }
  // Band-limit at the IQ rate, then decimate to the audio rate; both filters
  // keep their state so chunk boundaries are seamless.
  return postprocess(decim_.push(lp_.process(freq)));
}

std::vector<float> FmDemodulator::finish() { return postprocess(decim_.flush()); }

void FmDemodulator::reset() {
  prev_ = cplx(1.0f, 0.0f);
  have_prev_ = false;
  lp_.reset();
  decim_.reset();
  de_emphasis_.reset();
}

RfChannel::RfChannel(RfChannelParams params, sonic::util::Rng rng) : params_(params), rng_(rng) {}

std::vector<cplx> RfChannel::process(std::span<const cplx> iq) {
  // Empty spans would otherwise divide by zero below and seed the AWGN with
  // a NaN noise power.
  if (iq.empty()) return {};

  double p_sig = 0.0;
  for (const auto& s : iq) p_sig += std::norm(s);
  p_sig /= static_cast<double>(iq.size());

  const double fading = params_.fading_sigma_db > 0 ? rng_.normal(0.0, params_.fading_sigma_db) : 0.0;
  const double cnr = sonic::util::db_to_linear(cnr_db() + fading);
  const double p_noise = p_sig / cnr;
  const double sigma_axis = std::sqrt(p_noise / 2.0);

  std::vector<cplx> out(iq.size());
  for (std::size_t i = 0; i < iq.size(); ++i) {
    out[i] = iq[i] + cplx(static_cast<float>(rng_.normal(0.0, sigma_axis)),
                          static_cast<float>(rng_.normal(0.0, sigma_axis)));
  }
  return out;
}

}  // namespace sonic::fm
