#include "fm/link.hpp"

namespace sonic::fm {

FmLink::FmLink(FmLinkConfig config) : config_(std::move(config)), rng_(config_.seed) {}

double FmLink::rf_cnr_db() const {
  return config_.rf.rssi_db - config_.rf.noise_floor_db;
}

std::vector<float> FmLink::transmit(std::span<const float> audio) {
  std::vector<float> radio_audio;
  if (config_.enable_rf) {
    FmModulator mod(config_.fm);
    FmDemodulator demod(config_.fm);
    RfChannel rf(config_.rf, rng_.fork(1));
    const auto iq_tx = mod.modulate(audio);
    const auto iq_rx = rf.process(iq_tx);
    radio_audio = demod.demodulate(iq_rx);
    const auto tail = demod.finish();
    radio_audio.insert(radio_audio.end(), tail.begin(), tail.end());
  } else {
    radio_audio.assign(audio.begin(), audio.end());
  }

  AcousticChannel air(config_.acoustic, rng_.fork(2));
  auto out = air.process(radio_audio);
  const auto air_tail = air.finish();
  out.insert(out.end(), air_tail.begin(), air_tail.end());
  last_acoustic_snr_db_ = air.trial_snr_db();
  // Advance the seed so repeated transmits see fresh channel draws.
  rng_ = rng_.fork(3);
  return out;
}

}  // namespace sonic::fm
