#include "modem/stream_receiver.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace sonic::modem {

StreamReceiver::StreamReceiver(const OfdmModem& modem, StreamReceiverParams params)
    : modem_(modem),
      params_(params),
      sym_(static_cast<std::size_t>(modem.profile().fft_size + modem.profile().cp_len)),
      fft_(static_cast<std::size_t>(modem.profile().fft_size)),
      half_(static_cast<std::size_t>(modem.profile().fft_size / 2)),
      cp_(static_cast<std::size_t>(modem.profile().cp_len)) {
  if (params_.max_buffer_samples < 2 * modem_.min_decode_samples()) {
    throw std::invalid_argument(
        "StreamReceiverParams::max_buffer_samples must be at least 2x "
        "OfdmModem::min_decode_samples() or no burst header could ever decode");
  }
  for (float v : modem_.template_b_) tmpl_energy_ += static_cast<double>(v) * v;
}

void StreamReceiver::count(const char* name, std::uint64_t n) {
  if (params_.metrics != nullptr) params_.metrics->counter(name).add(n);
}

void StreamReceiver::restart_scan(std::size_t from) {
  scan_from_ = std::min(from, total_);
  seeded_ = false;
  p_ = r_ = 0.0;
  d_ = scan_from_;
  in_plateau_ = false;
  best_metric_ = 0.0;
  best_d_ = 0;
  plateau_end_guard_ = 0;
  coarse_ready_ = false;
  have_sync_ = false;
  pending_needed_ = 0;
}

// Mirrors OfdmModem::find_sync's coarse loop, one metric position at a time,
// pausing wherever the buffered audio runs out and resuming when more
// arrives. The running sums p_/r_ are slid with exactly the batch path's
// arithmetic, so the plateau and its best position match bit for bit.
StreamReceiver::Step StreamReceiver::scan(bool final_flush) {
  if (!seeded_) {
    // receive_all's loop guard: it stops scanning when fewer than three
    // symbols remain past pos, so the streaming path must too or flush()
    // could emit a tail burst the batch path never looks for.
    if (total_ <= scan_from_ + 3 * sym_) return final_flush ? Step::kDone : Step::kStall;
    p_ = r_ = 0.0;
    for (std::size_t m = 0; m < half_; ++m) {
      const std::size_t i = scan_from_ + m;
      p_ += static_cast<double>(at(i)) * at(i + half_);
      r_ += static_cast<double>(at(i + half_)) * at(i + half_);
    }
    d_ = scan_from_;
    seeded_ = true;
  }

  while (d_ + fft_ + sym_ < total_) {
    const double metric = r_ > 1e-9 ? (p_ * p_) / (r_ * r_) : 0.0;
    if (metric > 0.5) {
      if (!in_plateau_) {
        in_plateau_ = true;
        best_metric_ = 0.0;
      }
      if (metric > best_metric_) {
        best_metric_ = metric;
        best_d_ = d_;
      }
      plateau_end_guard_ = 0;
    } else if (in_plateau_) {
      // Allow brief dips; end the plateau after cp_len consecutive lows.
      if (++plateau_end_guard_ > cp_) {
        coarse_ready_ = true;
        return Step::kProgress;
      }
    }
    p_ += static_cast<double>(at(d_ + half_)) * at(d_ + fft_) -
          static_cast<double>(at(d_)) * at(d_ + half_);
    r_ += static_cast<double>(at(d_ + fft_)) * at(d_ + fft_) -
          static_cast<double>(at(d_ + half_)) * at(d_ + half_);
    ++d_;
  }

  if (!final_flush) return Step::kStall;
  // End of stream: a plateau still open when the scan range runs out is
  // promoted to the coarse estimate, exactly as the batch loop falls
  // through to fine timing.
  if (in_plateau_) {
    coarse_ready_ = true;
    return Step::kProgress;
  }
  return Step::kDone;
}

// Mirrors OfdmModem::find_sync's fine-timing pass: normalized cross-
// correlation with the preamble-B template around the coarse peak.
StreamReceiver::Step StreamReceiver::fine_sync(bool final_flush) {
  const long lo = static_cast<long>(best_d_) - 2L * static_cast<long>(cp_);
  const long hi = static_cast<long>(best_d_) + 2L * static_cast<long>(cp_);
  const std::size_t tmpl_len = modem_.template_b_.size();
  if (!final_flush &&
      total_ < static_cast<std::size_t>(hi) + sym_ + tmpl_len) {
    return Step::kStall;  // evaluate the full candidate range, like batch
  }
  count("rx_sync_attempts");

  double best_ncc = 0.0;
  long best_b_start = -1;
  for (long cand = lo; cand <= hi; ++cand) {
    const long b_start = cand + static_cast<long>(sym_);
    if (b_start < static_cast<long>(sym_)) continue;  // burst start would underflow
    if (static_cast<std::size_t>(b_start) + tmpl_len > total_) break;
    double dot = 0.0, energy = 0.0;
    for (std::size_t i = 0; i < tmpl_len; ++i) {
      const double s = at(static_cast<std::size_t>(b_start) + i);
      dot += s * modem_.template_b_[i];
      energy += s * s;
    }
    const double ncc = energy > 1e-12 ? std::fabs(dot) / std::sqrt(energy * tmpl_energy_) : 0.0;
    if (ncc > best_ncc) {
      best_ncc = ncc;
      best_b_start = b_start;
    }
  }
  if (best_b_start < 0 || best_ncc < 0.2) {
    // Resync: skip one symbol past the coarse peak so the same plateau is
    // not rediscovered, and keep listening for the next preamble.
    count("rx_resyncs");
    restart_scan(best_d_ + sym_);
    return Step::kProgress;
  }
  count("rx_sync_hits");
  sync_start_ = static_cast<std::size_t>(best_b_start) - sym_;
  sync_ncc_ = static_cast<float>(best_ncc);
  have_sync_ = true;
  coarse_ready_ = false;
  pending_needed_ = 0;
  return Step::kProgress;
}

StreamReceiver::Step StreamReceiver::decode(std::vector<RxBurst>& out, bool final_flush) {
  if (!final_flush) {
    // Header first (to learn the burst length), then the whole burst.
    if (pending_needed_ == 0 && total_ < sync_start_ + modem_.min_decode_samples()) {
      return Step::kStall;
    }
    if (pending_needed_ > 0 && total_ < pending_needed_) return Step::kStall;
  }

  const std::span<const float> window(buf_.data() + (sync_start_ - base_),
                                      buf_.size() - (sync_start_ - base_));
  auto burst = modem_.decode_burst(window, 0, sync_ncc_);
  if (!burst.has_value()) {
    count("rx_resyncs");
    restart_scan(sync_start_ + sym_);
    return Step::kProgress;
  }
  if (burst->truncated && !final_flush) {
    pending_needed_ = sync_start_ + burst->needed_end;
    if (total_ < pending_needed_) return Step::kStall;
  }

  burst->start_sample += sync_start_;
  burst->end_sample += sync_start_;
  burst->needed_end += sync_start_;
  count("rx_bursts");
  if (burst->truncated) count("rx_bursts_truncated");
  count("rx_frames_ok", burst->frames_ok());
  count("rx_frames_lost", burst->frames.size() - burst->frames_ok());
  if (params_.metrics != nullptr) {
    params_.metrics->histogram("rx_burst_ncc").observe(burst->sync_ncc);
    params_.metrics->histogram("rx_burst_snr_db").observe(burst->snr_db);
    params_.metrics->histogram("rx_buffered_at_burst").observe(static_cast<double>(buf_.size()));
  }
  const std::size_t resume = std::max(burst->end_sample, scan_from_ + 1);
  out.push_back(std::move(*burst));
  restart_scan(resume);
  return Step::kProgress;
}

void StreamReceiver::evict() {
  std::size_t keep;
  if (have_sync_) {
    keep = sync_start_;
  } else if (in_plateau_ || coarse_ready_) {
    // Fine sync may still probe 2*cp_len before the coarse peak.
    keep = best_d_ > 2 * cp_ ? best_d_ - 2 * cp_ : 0;
  } else if (seeded_) {
    keep = d_ > 2 * cp_ ? d_ - 2 * cp_ : 0;
  } else {
    keep = scan_from_;
  }
  keep = std::min(keep, total_);
  if (keep > base_) {
    buf_.erase(buf_.begin(), buf_.begin() + static_cast<long>(keep - base_));
    base_ = keep;
  }
}

void StreamReceiver::enforce_cap(std::vector<RxBurst>& out) {
  if (buf_.size() <= params_.max_buffer_samples) return;
  if (have_sync_) {
    // A burst larger than the cap: decode what fits now — the missing tail
    // becomes frame erasures — instead of buffering without bound.
    count("rx_forced_decodes");
    const Step step = decode(out, /*final_flush=*/true);
    (void)step;
    evict();
  }
  if (buf_.size() > params_.max_buffer_samples) {
    // Still over (e.g. one push far larger than the cap while scanning):
    // drop the oldest audio and restart the scan at what remains.
    const std::size_t drop = buf_.size() - params_.max_buffer_samples;
    count("rx_samples_dropped", drop);
    base_ += drop;
    buf_.erase(buf_.begin(), buf_.begin() + static_cast<long>(drop));
    restart_scan(base_);
  }
}

void StreamReceiver::advance(std::vector<RxBurst>& out, bool final_flush) {
  for (;;) {
    Step step;
    if (have_sync_) {
      step = decode(out, final_flush);
    } else if (coarse_ready_) {
      step = fine_sync(final_flush);
    } else {
      step = scan(final_flush);
    }
    evict();
    if (step != Step::kProgress) return;
  }
}

std::vector<RxBurst> StreamReceiver::push(std::span<const float> chunk) {
  if (flushed_) throw std::logic_error("StreamReceiver::push after flush (call reset first)");
  buf_.insert(buf_.end(), chunk.begin(), chunk.end());
  total_ += chunk.size();
  count("rx_chunks");
  count("rx_samples", chunk.size());

  std::vector<RxBurst> out;
  advance(out, /*final_flush=*/false);
  enforce_cap(out);
  high_water_ = std::max(high_water_, buf_.size());
  return out;
}

std::vector<RxBurst> StreamReceiver::flush() {
  if (flushed_) throw std::logic_error("StreamReceiver::flush called twice (call reset first)");
  flushed_ = true;
  std::vector<RxBurst> out;
  advance(out, /*final_flush=*/true);
  if (params_.metrics != nullptr) {
    params_.metrics->histogram("rx_buffered_high_water").observe(static_cast<double>(high_water_));
  }
  return out;
}

void StreamReceiver::reset() {
  buf_.clear();
  base_ = 0;
  total_ = 0;
  high_water_ = 0;
  flushed_ = false;
  restart_scan(0);
}

}  // namespace sonic::modem
