// Gray-coded square QAM constellations (BPSK through 1024-QAM) with
// soft-decision demapping. Quiet exposes the same family for its audible
// profiles; the paper's transmission profile is an OFDM variant of
// "audible-7k-channel" (§3.3), and 1024-QAM mirrors Quiet's cable profiles.
#pragma once

#include <complex>
#include <cstdint>
#include <span>
#include <vector>

namespace sonic::modem {

using cplx = std::complex<float>;

enum class Constellation : int {
  kBpsk = 2,
  kQpsk = 4,
  kQam16 = 16,
  kQam64 = 64,
  kQam256 = 256,
  kQam1024 = 1024,
};

// Bits carried by one symbol of the given constellation.
int bits_per_symbol(Constellation c);

const char* constellation_name(Constellation c);

class QamMapper {
 public:
  explicit QamMapper(Constellation c);

  Constellation constellation() const { return constellation_; }
  int bits_per_symbol() const { return bits_; }

  // Maps `bits_` bits (MSB-first within the value) to a unit-average-energy
  // constellation point.
  cplx map(std::uint32_t bits) const;

  // Soft demap: fills `soft_out` (size bits_per_symbol()) with P(bit == 1)
  // estimates given AWGN of variance `noise_var` per complex dimension.
  // Max-log approximation.
  void demap_soft(cplx received, float noise_var, std::span<float> soft_out) const;

  // Hard demap: nearest constellation point, returns its bit label.
  std::uint32_t demap_hard(cplx received) const;

  // Minimum distance between constellation points (for SNR analysis).
  float min_distance() const { return min_dist_; }

 private:
  Constellation constellation_;
  int bits_;
  int axis_bits_;                  // bits per I/Q axis (square QAM)
  std::vector<float> levels_;      // per-axis amplitude levels, Gray order index
  std::vector<cplx> points_;       // indexed by bit label
  float min_dist_;

  // Per-axis helpers: Gray-coded level index <-> amplitude.
  float axis_map(std::uint32_t gray_bits) const;
  void axis_demap_soft(float r, float noise_var, std::span<float> soft_out) const;
};

}  // namespace sonic::modem
