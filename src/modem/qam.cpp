#include "modem/qam.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace sonic::modem {
namespace {

int ilog2(int v) {
  int b = 0;
  while ((1 << b) < v) ++b;
  return b;
}

std::uint32_t gray_encode(std::uint32_t i) { return i ^ (i >> 1); }

}  // namespace

int bits_per_symbol(Constellation c) { return ilog2(static_cast<int>(c)); }

const char* constellation_name(Constellation c) {
  switch (c) {
    case Constellation::kBpsk: return "bpsk";
    case Constellation::kQpsk: return "qpsk";
    case Constellation::kQam16: return "qam16";
    case Constellation::kQam64: return "qam64";
    case Constellation::kQam256: return "qam256";
    case Constellation::kQam1024: return "qam1024";
  }
  return "?";
}

QamMapper::QamMapper(Constellation c) : constellation_(c), bits_(sonic::modem::bits_per_symbol(c)) {
  const int order = static_cast<int>(c);
  if (c == Constellation::kBpsk) {
    axis_bits_ = 1;
    levels_ = {-1.0f, 1.0f};  // gray label == index for 2 levels
    points_ = {cplx(-1.0f, 0.0f), cplx(1.0f, 0.0f)};
    min_dist_ = 2.0f;
    return;
  }
  // Square QAM: L levels per axis.
  const int L = static_cast<int>(std::lround(std::sqrt(static_cast<double>(order))));
  if (L * L != order) throw std::invalid_argument("constellation must be square");
  axis_bits_ = ilog2(L);
  const float scale = std::sqrt(3.0f / (2.0f * (static_cast<float>(L) * static_cast<float>(L) - 1.0f)));
  levels_.assign(static_cast<std::size_t>(L), 0.0f);
  for (int i = 0; i < L; ++i) {
    const float amp = scale * static_cast<float>(2 * i - L + 1);
    levels_[gray_encode(static_cast<std::uint32_t>(i))] = amp;
  }
  points_.resize(static_cast<std::size_t>(order));
  for (std::uint32_t label = 0; label < static_cast<std::uint32_t>(order); ++label) {
    const std::uint32_t gi = label >> axis_bits_;           // I bits are the MSB half
    const std::uint32_t gq = label & ((1u << axis_bits_) - 1);
    points_[label] = cplx(levels_[gi], levels_[gq]);
  }
  min_dist_ = 2.0f * scale;
}

float QamMapper::axis_map(std::uint32_t gray_bits) const { return levels_[gray_bits]; }

cplx QamMapper::map(std::uint32_t bits) const {
  return points_[bits & ((1u << bits_) - 1)];
}

std::uint32_t QamMapper::demap_hard(cplx received) const {
  // Independent per-axis nearest level (valid for square QAM and BPSK).
  if (constellation_ == Constellation::kBpsk) {
    return received.real() >= 0.0f ? 1u : 0u;
  }
  auto nearest = [&](float r) {
    std::uint32_t best = 0;
    float best_d = std::numeric_limits<float>::max();
    for (std::uint32_t g = 0; g < levels_.size(); ++g) {
      const float d = std::fabs(r - levels_[g]);
      if (d < best_d) {
        best_d = d;
        best = g;
      }
    }
    return best;
  };
  return (nearest(received.real()) << axis_bits_) | nearest(received.imag());
}

void QamMapper::axis_demap_soft(float r, float noise_var, std::span<float> soft_out) const {
  // Max-log LLR per axis bit; per-axis noise variance is half the complex
  // noise variance.
  const float sigma2 = std::max(noise_var * 0.5f, 1e-9f);
  for (int k = 0; k < axis_bits_; ++k) {
    float d0 = std::numeric_limits<float>::max();
    float d1 = std::numeric_limits<float>::max();
    for (std::uint32_t g = 0; g < levels_.size(); ++g) {
      const float d = (r - levels_[g]) * (r - levels_[g]);
      if ((g >> (axis_bits_ - 1 - k)) & 1u) {
        d1 = std::min(d1, d);
      } else {
        d0 = std::min(d0, d);
      }
    }
    const float llr1 = (d0 - d1) / (2.0f * sigma2);  // log P(1)/P(0)
    soft_out[static_cast<std::size_t>(k)] = 1.0f / (1.0f + std::exp(-llr1));
  }
}

void QamMapper::demap_soft(cplx received, float noise_var, std::span<float> soft_out) const {
  if (constellation_ == Constellation::kBpsk) {
    const float sigma2 = std::max(noise_var * 0.5f, 1e-9f);
    const float llr1 = 2.0f * received.real() / sigma2;
    soft_out[0] = 1.0f / (1.0f + std::exp(-llr1));
    return;
  }
  axis_demap_soft(received.real(), noise_var, soft_out.subspan(0, static_cast<std::size_t>(axis_bits_)));
  axis_demap_soft(received.imag(), noise_var, soft_out.subspan(static_cast<std::size_t>(axis_bits_)));
}

}  // namespace sonic::modem
