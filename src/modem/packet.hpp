// Packet-level FEC pipeline: CRC32 integrity check, outer Reed-Solomon,
// inner convolutional code, and a bit-level stride interleaver — the
// "crc32 / v29 / rs8" stack from §3.3 of the paper.
//
// Wire format (before OFDM mapping):
//   payload || crc32(payload)  --RS-->  blocks+parity  --conv-->  coded bits
//   --stride interleave-->  transmitted bits
#pragma once

#include <cstdint>
#include <optional>
#include <span>

#include "fec/convolutional.hpp"
#include "fec/reed_solomon.hpp"
#include "util/bytes.hpp"

namespace sonic::modem {

struct PacketSpec {
  fec::ConvSpec conv{fec::ConvCode::kV29, fec::PunctureRate::kRate1_2};
  int rs_nroots = 32;      // 0 disables the outer code
  int rs_data_len = 223;   // payload bytes per RS block
  bool interleave = true;
  // PRBS whitening of the coded bitstream. Low-entropy payloads (zero
  // padding, repeated pixels) would otherwise map to repetitive QAM
  // symbols whose OFDM crest factor overruns the FM deviation budget.
  bool scramble = true;
};

// Shared PRBS scrambler sequence (x^16 LFSR), bit `i` of the whitening mask.
int scrambler_bit(std::size_t i);

class PacketCodec {
 public:
  explicit PacketCodec(PacketSpec spec);

  // Encodes payload; returns the coded bitstream packed MSB-first.
  util::Bytes encode(std::span<const std::uint8_t> payload) const;

  // Exact number of coded bits produced for a payload of `payload_size`.
  std::size_t encoded_bits(std::size_t payload_size) const;

  // Decodes soft bits (P(bit==1) in [0,1], encoded_bits() entries) back to
  // the payload. Returns nullopt if RS fails or the CRC does not match.
  std::optional<util::Bytes> decode(std::span<const float> soft, std::size_t payload_size) const;

  // Coded-size expansion factor (coded bits / payload bits).
  double expansion(std::size_t payload_size) const;

 private:
  std::size_t rs_encoded_size(std::size_t payload_size) const;  // payload+crc after RS

  PacketSpec spec_;
  fec::ConvolutionalCodec conv_;
  std::optional<fec::ReedSolomon> rs_;
};

// CRC-16/CCITT-FALSE, used by the OFDM frame header.
std::uint16_t crc16_ccitt(std::span<const std::uint8_t> data);

}  // namespace sonic::modem
