#include "modem/ofdm.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "dsp/fft.hpp"
#include "util/rng.hpp"
#include "util/units.hpp"

namespace sonic::modem {
namespace {

constexpr std::uint16_t kMagic = 0x534e;  // "SN"
constexpr std::uint64_t kPrbsSeed = 0x50494c4f54ull;  // "PILOT"

// PRBS QPSK points shared by transmitter and receiver.
std::vector<cplx> prbs_qpsk(std::size_t n, std::uint64_t stream) {
  sonic::util::Rng rng(kPrbsSeed ^ stream * 0x9e3779b97f4a7c15ull);
  std::vector<cplx> out(n);
  const float a = 1.0f / std::sqrt(2.0f);
  for (auto& v : out) {
    v = cplx(rng.bernoulli(0.5) ? a : -a, rng.bernoulli(0.5) ? a : -a);
  }
  return out;
}

}  // namespace

std::size_t RxBurst::frames_ok() const {
  std::size_t n = 0;
  for (const auto& f : frames) n += f.has_value();
  return n;
}

double RxBurst::frame_loss_rate() const {
  if (frames.empty()) return 0.0;
  return 1.0 - static_cast<double>(frames_ok()) / static_cast<double>(frames.size());
}

OfdmModem::OfdmModem(OfdmProfile profile)
    : profile_(std::move(profile)),
      qam_(profile_.constellation),
      payload_codec_(PacketSpec{profile_.conv, profile_.rs_nroots, 223, true}),
      header_codec_({fec::ConvCode::kV27, fec::PunctureRate::kRate1_2}) {
  const int n = profile_.num_subcarriers;
  if (profile_.first_bin() < 1 || profile_.first_bin() + n >= profile_.fft_size / 2)
    throw std::invalid_argument("subcarriers do not fit below Nyquist");
  fft_plan_ = dsp::FftPlan::get(static_cast<std::size_t>(profile_.fft_size));
  spec_.resize(static_cast<std::size_t>(profile_.fft_size));
  carriers_.resize(static_cast<std::size_t>(n));

  // Preamble A: PRBS QPSK on even absolute FFT bins only -> time-domain
  // signal periodic with fft_size/2 (Schmidl&Cox detectable). sqrt(2)
  // boost keeps its symbol energy equal to regular symbols.
  const auto prbs_a = prbs_qpsk(static_cast<std::size_t>(n), 1);
  preamble_a_.assign(static_cast<std::size_t>(n), cplx(0, 0));
  for (int i = 0; i < n; ++i) {
    const int abs_bin = profile_.first_bin() + i;
    if (abs_bin % 2 == 0) preamble_a_[static_cast<std::size_t>(i)] = prbs_a[static_cast<std::size_t>(i)] * std::sqrt(2.0f);
  }
  preamble_b_ = prbs_qpsk(static_cast<std::size_t>(n), 2);

  const auto pilot_vals = prbs_qpsk(static_cast<std::size_t>(n), 3);
  pilots_.assign(static_cast<std::size_t>(n), cplx(0, 0));
  for (int i = 0; i < n; ++i) {
    if (is_pilot(i)) {
      // BPSK pilots (real axis) at pilot positions.
      pilots_[static_cast<std::size_t>(i)] = cplx(pilot_vals[static_cast<std::size_t>(i)].real() > 0 ? 1.0f : -1.0f, 0.0f);
    }
  }

  // Time-domain gain: with K unit-energy carriers (hermitian-doubled), the
  // post-IFFT RMS is sqrt(2K)/N; scale to the profile's amplitude target.
  tx_gain_ = profile_.amplitude * static_cast<float>(profile_.fft_size) /
             std::sqrt(2.0f * static_cast<float>(n));

  std::vector<float> tmpl;
  synth_symbol(preamble_a_, tmpl);
  template_a_ = tmpl;
  synth_symbol(preamble_b_, tmpl);
  template_b_ = tmpl;
  for (float v : template_b_) template_b_energy_ += static_cast<double>(v) * v;
}

bool OfdmModem::is_pilot(int rel_idx) const {
  return profile_.pilot_spacing > 0 && rel_idx % profile_.pilot_spacing == 0;
}

std::size_t OfdmModem::header_symbols() const {
  const std::size_t header_bits = header_codec_.encoded_bits(8);
  return (header_bits + static_cast<std::size_t>(profile_.data_carriers()) - 1) /
         static_cast<std::size_t>(profile_.data_carriers());
}

std::size_t OfdmModem::payload_symbols(std::size_t frame_len, std::size_t frame_count) const {
  const std::size_t bits = payload_codec_.encoded_bits(frame_len) * frame_count;
  const std::size_t per_symbol =
      static_cast<std::size_t>(profile_.data_carriers()) * static_cast<std::size_t>(qam_.bits_per_symbol());
  return (bits + per_symbol - 1) / per_symbol;
}

std::size_t OfdmModem::burst_samples(std::size_t frame_len, std::size_t frame_count) const {
  const std::size_t symbols = 2 + header_symbols() + payload_symbols(frame_len, frame_count) + 1;
  return symbols * static_cast<std::size_t>(symbol_len());
}

void OfdmModem::synth_symbol(std::span<const cplx> carriers, std::vector<float>& out) const {
  const int N = profile_.fft_size;
  std::fill(spec_.begin(), spec_.end(), dsp::cplx(0, 0));
  for (int i = 0; i < profile_.num_subcarriers; ++i) {
    const int b = profile_.first_bin() + i;
    const cplx v = carriers[static_cast<std::size_t>(i)];
    spec_[static_cast<std::size_t>(b)] = v;
    spec_[static_cast<std::size_t>(N - b)] = std::conj(v);
  }
  fft_plan_->inverse(spec_);
  out.resize(static_cast<std::size_t>(N + profile_.cp_len));
  for (int i = 0; i < N; ++i) {
    out[static_cast<std::size_t>(profile_.cp_len + i)] = spec_[static_cast<std::size_t>(i)].real() * tx_gain_;
  }
  for (int i = 0; i < profile_.cp_len; ++i) {
    out[static_cast<std::size_t>(i)] = out[static_cast<std::size_t>(N + i)];
  }
}

std::span<const cplx> OfdmModem::analyze_symbol(std::span<const float> samples, std::size_t pos) const {
  const int N = profile_.fft_size;
  // Whole windows stay in range in steady state; the per-sample bound only
  // matters for the final (truncated) window, so hoist it out of the loop.
  const std::size_t avail = pos < samples.size() ? samples.size() - pos : 0;
  const int in_range = static_cast<int>(std::min<std::size_t>(avail, static_cast<std::size_t>(N)));
  const float* src = samples.data() + pos;
  for (int i = 0; i < in_range; ++i) {
    spec_[static_cast<std::size_t>(i)] = dsp::cplx(src[i], 0.0f);
  }
  for (int i = in_range; i < N; ++i) spec_[static_cast<std::size_t>(i)] = dsp::cplx(0, 0);
  fft_plan_->forward(spec_);
  const float inv_gain = 1.0f / tx_gain_;
  for (int i = 0; i < profile_.num_subcarriers; ++i) {
    carriers_[static_cast<std::size_t>(i)] = spec_[static_cast<std::size_t>(profile_.first_bin() + i)] * inv_gain;
  }
  return carriers_;
}

std::vector<float> OfdmModem::modulate(const std::vector<util::Bytes>& frames) const {
  if (frames.empty()) throw std::invalid_argument("empty burst");
  const std::size_t frame_len = frames.front().size();
  for (const auto& f : frames) {
    if (f.size() != frame_len) throw std::invalid_argument("frames must be equal-sized");
  }
  if (frame_len == 0 || frame_len > 0xffff || frames.size() > 0xffff)
    throw std::invalid_argument("frame size/count out of range");

  // Header.
  util::ByteWriter hw;
  hw.u16(kMagic);
  hw.u16(static_cast<std::uint16_t>(frame_len));
  hw.u16(static_cast<std::uint16_t>(frames.size()));
  hw.u16(crc16_ccitt(hw.bytes()));
  const util::Bytes header_coded = header_codec_.encode(hw.bytes());
  const std::size_t header_bits = header_codec_.encoded_bits(8);

  // Payload bit stream: per-frame PacketCodec output, concatenated.
  std::vector<std::uint8_t> payload_bits;
  for (const auto& f : frames) {
    const util::Bytes coded = payload_codec_.encode(f);
    util::BitReader br(coded);
    const std::size_t nbits = payload_codec_.encoded_bits(frame_len);
    for (std::size_t i = 0; i < nbits; ++i) payload_bits.push_back(static_cast<std::uint8_t>(br.bit()));
  }

  std::vector<float> out;
  std::vector<float> sym;
  auto emit = [&](std::span<const cplx> carriers) {
    synth_symbol(carriers, sym);
    out.insert(out.end(), sym.begin(), sym.end());
  };

  emit(preamble_a_);
  emit(preamble_b_);

  // Header symbols: BPSK on data carriers.
  {
    util::BitReader hbr(header_coded);
    std::size_t sent = 0;
    for (std::size_t s = 0; s < header_symbols(); ++s) {
      std::vector<cplx> carriers = pilots_;
      for (int i = 0; i < profile_.num_subcarriers; ++i) {
        if (is_pilot(i)) continue;
        // Whitened like the payload: the fixed header pattern must not form
        // a high-crest OFDM symbol.
        const int bit = (sent < header_bits ? hbr.bit() : 0) ^ scrambler_bit(sent);
        ++sent;
        carriers[static_cast<std::size_t>(i)] = cplx(bit ? 1.0f : -1.0f, 0.0f);
      }
      emit(carriers);
    }
  }

  // Payload symbols.
  {
    const int qbits = qam_.bits_per_symbol();
    std::size_t idx = 0;
    const std::size_t nsym = payload_symbols(frame_len, frames.size());
    for (std::size_t s = 0; s < nsym; ++s) {
      std::vector<cplx> carriers = pilots_;
      for (int i = 0; i < profile_.num_subcarriers; ++i) {
        if (is_pilot(i)) continue;
        std::uint32_t v = 0;
        for (int b = 0; b < qbits; ++b) {
          const int bit = idx < payload_bits.size() ? payload_bits[idx] : 0;
          ++idx;
          v = (v << 1) | static_cast<std::uint32_t>(bit);
        }
        carriers[static_cast<std::size_t>(i)] = qam_.map(v);
      }
      emit(carriers);
    }
  }

  // Inter-burst gap.
  out.insert(out.end(), static_cast<std::size_t>(symbol_len()), 0.0f);
  return out;
}

std::optional<OfdmModem::Sync> OfdmModem::find_sync(std::span<const float> samples,
                                                    std::size_t from) const {
  const int N = profile_.fft_size;
  const int half = N / 2;
  const std::size_t sym = static_cast<std::size_t>(symbol_len());
  if (samples.size() < from + 2 * sym + static_cast<std::size_t>(N)) return std::nullopt;

  // Schmidl & Cox coarse detection on the half-symbol periodicity of
  // preamble A. Running sums updated per sample.
  double p = 0, r = 0;
  const std::size_t end = samples.size() - static_cast<std::size_t>(N) - sym;
  for (int m = 0; m < half; ++m) {
    const std::size_t i = from + static_cast<std::size_t>(m);
    p += static_cast<double>(samples[i]) * samples[i + static_cast<std::size_t>(half)];
    r += static_cast<double>(samples[i + static_cast<std::size_t>(half)]) * samples[i + static_cast<std::size_t>(half)];
  }
  double best_metric = 0;
  std::size_t best_d = from;
  bool in_plateau = false;
  std::size_t plateau_end_guard = 0;
  for (std::size_t d = from; d < end; ++d) {
    const double metric = r > 1e-9 ? (p * p) / (r * r) : 0.0;
    if (metric > 0.5) {
      if (!in_plateau) {
        in_plateau = true;
        best_metric = 0;
      }
      if (metric > best_metric) {
        best_metric = metric;
        best_d = d;
      }
      plateau_end_guard = 0;
    } else if (in_plateau) {
      // Allow brief dips; end plateau after cp_len consecutive low samples.
      if (++plateau_end_guard > static_cast<std::size_t>(profile_.cp_len)) break;
    }
    // Slide.
    p += static_cast<double>(samples[d + static_cast<std::size_t>(half)]) * samples[d + static_cast<std::size_t>(N)] -
         static_cast<double>(samples[d]) * samples[d + static_cast<std::size_t>(half)];
    r += static_cast<double>(samples[d + static_cast<std::size_t>(N)]) * samples[d + static_cast<std::size_t>(N)] -
         static_cast<double>(samples[d + static_cast<std::size_t>(half)]) * samples[d + static_cast<std::size_t>(half)];
  }
  if (!in_plateau) return std::nullopt;

  // Fine timing: normalized cross-correlation with the preamble B template
  // around the coarse estimate. Preamble B starts one symbol after A.
  const long search_lo = static_cast<long>(best_d) - 2L * profile_.cp_len;
  const long search_hi = static_cast<long>(best_d) + 2L * profile_.cp_len;
  const double tmpl_energy = template_b_energy_;
  double best_ncc = 0;
  long best_b_start = -1;
  for (long cand = search_lo; cand <= search_hi; ++cand) {
    const long b_start = cand + static_cast<long>(sym);
    // The burst start is b_start - sym; candidates with b_start < sym would
    // underflow size_t into a huge offset when the coarse peak sits within
    // 2*cp_len of the buffer start (e.g. a stream cut mid-preamble).
    if (b_start < static_cast<long>(sym)) continue;
    if (static_cast<std::size_t>(b_start) + template_b_.size() > samples.size()) break;
    double dot = 0, energy = 0;
    for (std::size_t i = 0; i < template_b_.size(); ++i) {
      const double s = samples[static_cast<std::size_t>(b_start) + i];
      dot += s * template_b_[i];
      energy += s * s;
    }
    const double ncc = energy > 1e-12 ? std::fabs(dot) / std::sqrt(energy * tmpl_energy) : 0.0;
    if (ncc > best_ncc) {
      best_ncc = ncc;
      best_b_start = b_start;
    }
  }
  if (best_b_start < 0 || best_ncc < 0.2) return std::nullopt;
  return Sync{static_cast<std::size_t>(best_b_start) - sym, static_cast<float>(best_ncc)};
}

std::size_t OfdmModem::min_decode_samples() const {
  return (2 + header_symbols()) * static_cast<std::size_t>(symbol_len()) +
         static_cast<std::size_t>(profile_.fft_size);
}

std::optional<RxBurst> OfdmModem::receive_one(std::span<const float> samples, std::size_t from) const {
  const auto sync = find_sync(samples, from);
  if (!sync) return std::nullopt;
  return decode_burst(samples, sync->start, sync->quality);
}

std::optional<RxBurst> OfdmModem::decode_burst(std::span<const float> samples, std::size_t start,
                                               float sync_ncc) const {
  const std::size_t sym = static_cast<std::size_t>(symbol_len());
  const std::size_t cp = static_cast<std::size_t>(profile_.cp_len);
  const int n = profile_.num_subcarriers;
  // Sample the FFT window slightly inside the CP to tolerate timing error.
  const std::size_t cp_backoff = std::min<std::size_t>(cp / 4, 8);
  auto body = [&](std::size_t symbol_index) {
    return start + symbol_index * sym + cp - cp_backoff;
  };
  // Compensate the intentional early sampling: rotate bin k by
  // exp(+j*2*pi*k*backoff/N) after FFT (applied via the channel estimate,
  // which sees the same shift).

  if (body(2) + static_cast<std::size_t>(profile_.fft_size) > samples.size()) return std::nullopt;

  // Channel estimate from preamble B.
  const auto yb = analyze_symbol(samples, body(1));
  auto& h = h_;
  h.resize(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    h[static_cast<std::size_t>(i)] = yb[static_cast<std::size_t>(i)] / preamble_b_[static_cast<std::size_t>(i)];
  }
  // Smooth H across 3 neighbours and estimate noise from the residual.
  auto& h_smooth = h_smooth_;
  h_smooth.resize(h.size());
  for (int i = 0; i < n; ++i) {
    cplx acc(0, 0);
    int cnt = 0;
    for (int k = std::max(0, i - 1); k <= std::min(n - 1, i + 1); ++k) {
      acc += h[static_cast<std::size_t>(k)];
      ++cnt;
    }
    h_smooth[static_cast<std::size_t>(i)] = acc / static_cast<float>(cnt);
  }
  float noise_var = 0.0f;
  float sig_pow = 0.0f;
  for (int i = 0; i < n; ++i) {
    noise_var += std::norm(h[static_cast<std::size_t>(i)] - h_smooth[static_cast<std::size_t>(i)]);
    sig_pow += std::norm(h_smooth[static_cast<std::size_t>(i)]);
  }
  noise_var = std::max(noise_var / static_cast<float>(n), 1e-7f);
  sig_pow /= static_cast<float>(n);
  for (int i = 0; i < n; ++i) {
    if (std::norm(h_smooth[static_cast<std::size_t>(i)]) < 1e-9f) h_smooth[static_cast<std::size_t>(i)] = cplx(1e-4f, 0);
  }

  // Demodulate one symbol: equalize, pilot phase/timing fit, soft bits.
  float ema_noise = noise_var / std::max(sig_pow, 1e-9f);  // normalized post-eq noise
  auto demod_symbol = [&](std::size_t symbol_index, bool bpsk, std::vector<float>& soft_out) {
    const auto y = analyze_symbol(samples, body(symbol_index));
    auto& eq = eq_;
    eq.resize(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) {
      eq[static_cast<std::size_t>(i)] = y[static_cast<std::size_t>(i)] / h_smooth[static_cast<std::size_t>(i)];
    }
    // Pilot linear-phase fit: theta(i) ~ a + b*i.
    double sum_k = 0, sum_k2 = 0, sum_th = 0, sum_kth = 0;
    int np = 0;
    double prev_th = 0;
    double amp_acc = 0;
    for (int i = 0; i < n; ++i) {
      if (!is_pilot(i)) continue;
      const cplx e = eq[static_cast<std::size_t>(i)] / pilots_[static_cast<std::size_t>(i)];
      double th = std::arg(e);
      if (np > 0) {
        while (th - prev_th > sonic::util::kPi) th -= sonic::util::kTwoPi;
        while (th - prev_th < -sonic::util::kPi) th += sonic::util::kTwoPi;
      }
      prev_th = th;
      amp_acc += std::abs(e);
      sum_k += i;
      sum_k2 += static_cast<double>(i) * i;
      sum_th += th;
      sum_kth += static_cast<double>(i) * th;
      ++np;
    }
    double a = 0, b = 0;
    double amp = 1.0;
    if (np >= 2) {
      const double det = np * sum_k2 - sum_k * sum_k;
      if (std::fabs(det) > 1e-9) {
        b = (np * sum_kth - sum_k * sum_th) / det;
        a = (sum_th - b * sum_k) / np;
      }
      amp = std::max(amp_acc / np, 1e-6);
    }
    // Apply correction and collect soft bits + pilot residual noise.
    float pilot_noise = 0;
    int pilot_cnt = 0;
    const int qbits = bpsk ? 1 : qam_.bits_per_symbol();
    for (int i = 0; i < n; ++i) {
      const double phi = a + b * i;
      const cplx corr = eq[static_cast<std::size_t>(i)] *
                        cplx(static_cast<float>(std::cos(-phi) / amp), static_cast<float>(std::sin(-phi) / amp));
      if (is_pilot(i)) {
        pilot_noise += std::norm(corr - pilots_[static_cast<std::size_t>(i)]);
        ++pilot_cnt;
        continue;
      }
      if (bpsk) {
        const float llr1 = 2.0f * corr.real() / std::max(ema_noise * 0.5f, 1e-7f);
        soft_out.push_back(1.0f / (1.0f + std::exp(-llr1)));
      } else {
        float tmp[10];
        qam_.demap_soft(corr, ema_noise, std::span<float>(tmp, static_cast<std::size_t>(qbits)));
        for (int bix = 0; bix < qbits; ++bix) soft_out.push_back(tmp[bix]);
      }
    }
    if (pilot_cnt > 0) {
      const float obs = pilot_noise / static_cast<float>(pilot_cnt);
      ema_noise = 0.7f * ema_noise + 0.3f * std::max(obs, 1e-7f);
    }
  };

  // Header.
  auto& header_soft = header_soft_;
  header_soft.clear();
  const std::size_t hdr_syms = header_symbols();
  if (body(2 + hdr_syms) > samples.size()) return std::nullopt;
  for (std::size_t s = 0; s < hdr_syms; ++s) demod_symbol(2 + s, true, header_soft);
  const std::size_t header_bits = header_codec_.encoded_bits(8);
  if (header_soft.size() < header_bits) return std::nullopt;
  for (std::size_t i = 0; i < header_soft.size(); ++i) {
    if (scrambler_bit(i)) header_soft[i] = 1.0f - header_soft[i];
  }
  const util::Bytes hdr = header_codec_.decode_soft(
      std::span(header_soft).subspan(0, header_bits), 8);
  util::ByteReader hr(hdr);
  const std::uint16_t magic = hr.u16();
  const std::uint16_t frame_len = hr.u16();
  const std::uint16_t frame_count = hr.u16();
  const std::uint16_t hcrc = hr.u16();
  if (magic != kMagic || crc16_ccitt(std::span(hdr).subspan(0, 6)) != hcrc || frame_len == 0 ||
      frame_count == 0) {
    return std::nullopt;
  }

  // Payload.
  const std::size_t nsym = payload_symbols(frame_len, frame_count);
  auto& soft = soft_;
  soft.clear();
  soft.reserve(nsym * static_cast<std::size_t>(profile_.data_carriers() * qam_.bits_per_symbol()));
  for (std::size_t s = 0; s < nsym; ++s) {
    const std::size_t pos = body(2 + hdr_syms + s);
    if (pos + static_cast<std::size_t>(profile_.fft_size) > samples.size()) {
      // Truncated stream: erase the rest.
      soft.resize(nsym * static_cast<std::size_t>(profile_.data_carriers() * qam_.bits_per_symbol()), 0.5f);
      break;
    }
    demod_symbol(2 + hdr_syms + s, false, soft);
  }

  RxBurst burst;
  burst.start_sample = start;
  burst.needed_end = start + (2 + hdr_syms + nsym + 1) * sym;
  burst.end_sample = std::min(samples.size(), burst.needed_end);
  burst.truncated = burst.needed_end > samples.size();
  burst.sync_ncc = sync_ncc;
  burst.snr_db = static_cast<float>(-10.0 * std::log10(std::max(static_cast<double>(ema_noise), 1e-9)));
  const std::size_t bits_per_frame = payload_codec_.encoded_bits(frame_len);
  for (std::size_t f = 0; f < frame_count; ++f) {
    const std::size_t off = f * bits_per_frame;
    if (off + bits_per_frame > soft.size()) {
      burst.frames.push_back(std::nullopt);
      continue;
    }
    burst.frames.push_back(payload_codec_.decode(std::span(soft).subspan(off, bits_per_frame), frame_len));
  }
  return burst;
}

std::vector<RxBurst> OfdmModem::receive_all(std::span<const float> samples) const {
  std::vector<RxBurst> bursts;
  std::size_t pos = 0;
  while (pos + static_cast<std::size_t>(3 * symbol_len()) < samples.size()) {
    auto burst = receive_one(samples, pos);
    if (!burst) break;
    pos = std::max(burst->end_sample, pos + 1);
    bursts.push_back(std::move(*burst));
  }
  return bursts;
}

}  // namespace sonic::modem
