#include "modem/profile.hpp"

#include <cctype>
#include <cmath>
#include <map>
#include <mutex>
#include <stdexcept>

namespace sonic::modem {

int OfdmProfile::num_pilots() const {
  if (pilot_spacing <= 0) return 0;
  return (num_subcarriers + pilot_spacing - 1) / pilot_spacing;
}

int OfdmProfile::first_bin() const {
  const int center = static_cast<int>(std::lround(carrier_hz / sample_rate * fft_size));
  return center - num_subcarriers / 2;
}

double OfdmProfile::raw_bit_rate() const {
  return static_cast<double>(data_carriers()) * bits_per_symbol(constellation) / symbol_duration_s();
}

double OfdmProfile::bandwidth_hz() const {
  return static_cast<double>(num_subcarriers) * subcarrier_spacing_hz();
}

double OfdmProfile::net_bit_rate(std::size_t payload_bytes, int frames_per_burst) const {
  fec::ConvolutionalCodec conv(this->conv);
  const std::size_t with_crc = payload_bytes + 4;
  std::size_t rs_bytes = with_crc;
  if (rs_nroots > 0) {
    const std::size_t blocks = (with_crc + 222) / 223;
    rs_bytes += blocks * static_cast<std::size_t>(rs_nroots);
  }
  const std::size_t coded_bits_per_frame = conv.encoded_bits(rs_bytes);
  const std::size_t burst_bits = coded_bits_per_frame * static_cast<std::size_t>(frames_per_burst);
  const int bits_per_ofdm_symbol = data_carriers() * bits_per_symbol(constellation);
  const std::size_t payload_symbols =
      (burst_bits + static_cast<std::size_t>(bits_per_ofdm_symbol) - 1) / static_cast<std::size_t>(bits_per_ofdm_symbol);
  // Header: 6 bytes conv-v27-coded BPSK (see OfdmModem), plus 2 preamble
  // symbols and one symbol of inter-burst gap.
  const std::size_t header_bits = (6 * 8 + 6) * 2;
  const std::size_t header_symbols = (header_bits + static_cast<std::size_t>(data_carriers()) - 1) / static_cast<std::size_t>(data_carriers());
  const std::size_t total_symbols = 2 + header_symbols + payload_symbols + 1;
  return static_cast<double>(payload_bytes * 8) * frames_per_burst /
         (static_cast<double>(total_symbols) * symbol_duration_s());
}

namespace {

OfdmProfile make_sonic10k() {
  OfdmProfile p;
  p.name = "sonic-10k";
  p.constellation = Constellation::kQam64;
  p.conv = {fec::ConvCode::kV29, fec::PunctureRate::kRate3_4};
  p.rs_nroots = 16;
  return p;
}

OfdmProfile make_audible7k() {
  OfdmProfile p;
  p.name = "audible-7k";
  p.constellation = Constellation::kQam16;
  p.conv = {fec::ConvCode::kV29, fec::PunctureRate::kRate3_4};
  p.rs_nroots = 16;
  return p;
}

OfdmProfile make_robust2k() {
  OfdmProfile p;
  p.name = "robust-2k";
  p.constellation = Constellation::kQpsk;
  p.conv = {fec::ConvCode::kV29, fec::PunctureRate::kRate1_2};
  p.rs_nroots = 32;
  return p;
}

OfdmProfile make_cable64k() {
  OfdmProfile p;
  p.name = "cable-64k";
  p.fft_size = 1024;
  p.cp_len = 16;                 // cable: no multipath, minimal guard
  p.num_subcarriers = 256;
  p.carrier_hz = 8000.0;         // spans ~2.5-13.5 kHz
  p.constellation = Constellation::kQam1024;
  p.conv = {fec::ConvCode::kV29, fec::PunctureRate::kRate3_4};
  p.rs_nroots = 16;
  return p;
}

}  // namespace

namespace profiles {
namespace {

// Loose matching: lowercase, alphanumerics only, so "sonic-10k" ==
// "sonic10k" == "SONIC 10K".
std::string canon(const std::string& name) {
  std::string key;
  for (char c : name) {
    if (std::isalnum(static_cast<unsigned char>(c))) {
      key += static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
    }
  }
  return key;
}

struct Registry {
  std::mutex mu;
  std::vector<std::string> order;             // display names, registration order
  std::map<std::string, OfdmProfile> by_key;  // canon(name) -> profile

  void insert_locked(const OfdmProfile& p) {
    const std::string key = canon(p.name);
    if (by_key.find(key) == by_key.end()) order.push_back(p.name);
    by_key[key] = p;
  }
};

Registry& registry() {
  // Built-ins registered on first touch, slowest rung first (the order
  // all_profiles() has always reported).
  static Registry* r = [] {
    auto* reg = new Registry;
    reg->insert_locked(make_robust2k());
    reg->insert_locked(make_audible7k());
    reg->insert_locked(make_sonic10k());
    reg->insert_locked(make_cable64k());
    return reg;
  }();
  return *r;
}

}  // namespace

std::optional<OfdmProfile> get(const std::string& name) {
  Registry& reg = registry();
  std::lock_guard<std::mutex> lock(reg.mu);
  const auto it = reg.by_key.find(canon(name));
  if (it == reg.by_key.end()) return std::nullopt;
  return it->second;
}

std::vector<std::string> names() {
  Registry& reg = registry();
  std::lock_guard<std::mutex> lock(reg.mu);
  return reg.order;
}

void register_profile(const OfdmProfile& profile) {
  if (canon(profile.name).empty()) {
    throw std::invalid_argument("profile name must contain at least one alphanumeric character");
  }
  Registry& reg = registry();
  std::lock_guard<std::mutex> lock(reg.mu);
  reg.insert_locked(profile);
}

std::vector<OfdmProfile> all() {
  Registry& reg = registry();
  std::lock_guard<std::mutex> lock(reg.mu);
  std::vector<OfdmProfile> out;
  for (const std::string& name : reg.order) out.push_back(reg.by_key.at(canon(name)));
  return out;
}

}  // namespace profiles

OfdmProfile profile_sonic10k() { return make_sonic10k(); }
OfdmProfile profile_audible7k() { return make_audible7k(); }
OfdmProfile profile_robust2k() { return make_robust2k(); }
OfdmProfile profile_cable64k() { return make_cable64k(); }

std::vector<OfdmProfile> all_profiles() { return profiles::all(); }

}  // namespace sonic::modem
