#include "modem/profile.hpp"

#include <cmath>

namespace sonic::modem {

int OfdmProfile::num_pilots() const {
  if (pilot_spacing <= 0) return 0;
  return (num_subcarriers + pilot_spacing - 1) / pilot_spacing;
}

int OfdmProfile::first_bin() const {
  const int center = static_cast<int>(std::lround(carrier_hz / sample_rate * fft_size));
  return center - num_subcarriers / 2;
}

double OfdmProfile::raw_bit_rate() const {
  return static_cast<double>(data_carriers()) * bits_per_symbol(constellation) / symbol_duration_s();
}

double OfdmProfile::bandwidth_hz() const {
  return static_cast<double>(num_subcarriers) * subcarrier_spacing_hz();
}

double OfdmProfile::net_bit_rate(std::size_t payload_bytes, int frames_per_burst) const {
  fec::ConvolutionalCodec conv(this->conv);
  const std::size_t with_crc = payload_bytes + 4;
  std::size_t rs_bytes = with_crc;
  if (rs_nroots > 0) {
    const std::size_t blocks = (with_crc + 222) / 223;
    rs_bytes += blocks * static_cast<std::size_t>(rs_nroots);
  }
  const std::size_t coded_bits_per_frame = conv.encoded_bits(rs_bytes);
  const std::size_t burst_bits = coded_bits_per_frame * static_cast<std::size_t>(frames_per_burst);
  const int bits_per_ofdm_symbol = data_carriers() * bits_per_symbol(constellation);
  const std::size_t payload_symbols =
      (burst_bits + static_cast<std::size_t>(bits_per_ofdm_symbol) - 1) / static_cast<std::size_t>(bits_per_ofdm_symbol);
  // Header: 6 bytes conv-v27-coded BPSK (see OfdmModem), plus 2 preamble
  // symbols and one symbol of inter-burst gap.
  const std::size_t header_bits = (6 * 8 + 6) * 2;
  const std::size_t header_symbols = (header_bits + static_cast<std::size_t>(data_carriers()) - 1) / static_cast<std::size_t>(data_carriers());
  const std::size_t total_symbols = 2 + header_symbols + payload_symbols + 1;
  return static_cast<double>(payload_bytes * 8) * frames_per_burst /
         (static_cast<double>(total_symbols) * symbol_duration_s());
}

OfdmProfile profile_sonic10k() {
  OfdmProfile p;
  p.name = "sonic-10k";
  p.constellation = Constellation::kQam64;
  p.conv = {fec::ConvCode::kV29, fec::PunctureRate::kRate3_4};
  p.rs_nroots = 16;
  return p;
}

OfdmProfile profile_audible7k() {
  OfdmProfile p;
  p.name = "audible-7k";
  p.constellation = Constellation::kQam16;
  p.conv = {fec::ConvCode::kV29, fec::PunctureRate::kRate3_4};
  p.rs_nroots = 16;
  return p;
}

OfdmProfile profile_robust2k() {
  OfdmProfile p;
  p.name = "robust-2k";
  p.constellation = Constellation::kQpsk;
  p.conv = {fec::ConvCode::kV29, fec::PunctureRate::kRate1_2};
  p.rs_nroots = 32;
  return p;
}

OfdmProfile profile_cable64k() {
  OfdmProfile p;
  p.name = "cable-64k";
  p.fft_size = 1024;
  p.cp_len = 16;                 // cable: no multipath, minimal guard
  p.num_subcarriers = 256;
  p.carrier_hz = 8000.0;         // spans ~2.5-13.5 kHz
  p.constellation = Constellation::kQam1024;
  p.conv = {fec::ConvCode::kV29, fec::PunctureRate::kRate3_4};
  p.rs_nroots = 16;
  return p;
}

std::vector<OfdmProfile> all_profiles() {
  return {profile_robust2k(), profile_audible7k(), profile_sonic10k(), profile_cable64k()};
}

}  // namespace sonic::modem
