#include "modem/packet.hpp"

#include <numeric>

#include "fec/crc32.hpp"

namespace sonic::modem {
namespace {

// Stride used by the bit interleaver; coprime with any practical bit count
// by construction (we fall back to stride 1 when it would not be).
std::size_t pick_stride(std::size_t n) {
  // A fixed prime stride spreads adjacent coded bits ~101 positions apart,
  // far beyond any single OFDM symbol fade.
  constexpr std::size_t kStride = 101;
  if (n < 2) return 1;
  return std::gcd(kStride, n) == 1 ? kStride : (std::gcd(kStride + 2, n) == 1 ? kStride + 2 : 1);
}

}  // namespace

int scrambler_bit(std::size_t i) {
  // Cached PRBS from a Fibonacci LFSR (x^16 + x^14 + x^13 + x^11 + 1).
  static const std::vector<std::uint8_t> kSeq = [] {
    std::vector<std::uint8_t> seq(1 << 18);
    std::uint16_t lfsr = 0xACE1;
    for (auto& b : seq) {
      const std::uint16_t bit = static_cast<std::uint16_t>(
          ((lfsr >> 0) ^ (lfsr >> 2) ^ (lfsr >> 3) ^ (lfsr >> 5)) & 1u);
      lfsr = static_cast<std::uint16_t>((lfsr >> 1) | (bit << 15));
      b = static_cast<std::uint8_t>(lfsr & 1u);
    }
    return seq;
  }();
  return kSeq[i % kSeq.size()];
}

std::uint16_t crc16_ccitt(std::span<const std::uint8_t> data) {
  std::uint16_t crc = 0xffff;
  for (std::uint8_t b : data) {
    crc ^= static_cast<std::uint16_t>(b) << 8;
    for (int i = 0; i < 8; ++i) {
      crc = (crc & 0x8000) ? static_cast<std::uint16_t>((crc << 1) ^ 0x1021) : static_cast<std::uint16_t>(crc << 1);
    }
  }
  return crc;
}

PacketCodec::PacketCodec(PacketSpec spec) : spec_(spec), conv_(spec.conv) {
  if (spec_.rs_nroots > 0) rs_.emplace(spec_.rs_nroots);
}

std::size_t PacketCodec::rs_encoded_size(std::size_t payload_size) const {
  const std::size_t with_crc = payload_size + 4;
  if (!rs_) return with_crc;
  const std::size_t block = static_cast<std::size_t>(spec_.rs_data_len);
  const std::size_t blocks = (with_crc + block - 1) / block;
  return with_crc + blocks * static_cast<std::size_t>(spec_.rs_nroots);
}

std::size_t PacketCodec::encoded_bits(std::size_t payload_size) const {
  return conv_.encoded_bits(rs_encoded_size(payload_size));
}

double PacketCodec::expansion(std::size_t payload_size) const {
  return static_cast<double>(encoded_bits(payload_size)) / static_cast<double>(payload_size * 8);
}

util::Bytes PacketCodec::encode(std::span<const std::uint8_t> payload) const {
  // 1. payload || crc32
  util::Bytes body(payload.begin(), payload.end());
  const std::uint32_t crc = fec::crc32(payload);
  for (int i = 0; i < 4; ++i) body.push_back(static_cast<std::uint8_t>(crc >> (8 * i)));

  // 2. Outer RS per block.
  util::Bytes rs_out;
  if (rs_) {
    const std::size_t block = static_cast<std::size_t>(spec_.rs_data_len);
    for (std::size_t off = 0; off < body.size(); off += block) {
      const std::size_t n = std::min(block, body.size() - off);
      const util::Bytes coded = rs_->encode(std::span(body).subspan(off, n));
      rs_out.insert(rs_out.end(), coded.begin(), coded.end());
    }
  } else {
    rs_out = std::move(body);
  }

  // 3. Inner convolutional code.
  util::Bytes conv_out = conv_.encode(rs_out);

  // 4. Bit-level stride interleave + PRBS whitening.
  const std::size_t nbits = conv_.encoded_bits(rs_out.size());
  const std::size_t stride = spec_.interleave ? pick_stride(nbits) : 1;
  util::BitReader br(conv_out);
  std::vector<std::uint8_t> bits(nbits);
  for (auto& b : bits) b = static_cast<std::uint8_t>(br.bit());
  util::BitWriter bw;
  // Output position i carries input bit (i * stride) mod nbits.
  for (std::size_t i = 0; i < nbits; ++i) {
    int bit = bits[(i * stride) % nbits];
    if (spec_.scramble) bit ^= scrambler_bit(i);
    bw.bit(bit);
  }
  return bw.take();
}

std::optional<util::Bytes> PacketCodec::decode(std::span<const float> soft,
                                               std::size_t payload_size) const {
  const std::size_t rs_size = rs_encoded_size(payload_size);
  const std::size_t nbits = conv_.encoded_bits(rs_size);
  if (soft.size() < nbits) return std::nullopt;

  // 1. De-scramble + de-interleave soft bits (flipping a soft value is
  // s -> 1 - s).
  std::vector<float> deint(nbits, 0.5f);
  const std::size_t stride = spec_.interleave ? pick_stride(nbits) : 1;
  for (std::size_t i = 0; i < nbits; ++i) {
    const float s = spec_.scramble && scrambler_bit(i) ? 1.0f - soft[i] : soft[i];
    deint[(i * stride) % nbits] = s;
  }

  // 2. Viterbi.
  util::Bytes rs_stream = conv_.decode_soft(deint, rs_size);

  // 3. Outer RS per block.
  util::Bytes body;
  if (rs_) {
    const std::size_t data_block = static_cast<std::size_t>(spec_.rs_data_len);
    const std::size_t full_block = data_block + static_cast<std::size_t>(spec_.rs_nroots);
    for (std::size_t off = 0; off < rs_stream.size();) {
      const std::size_t n = std::min(full_block, rs_stream.size() - off);
      if (n <= static_cast<std::size_t>(spec_.rs_nroots)) return std::nullopt;
      auto block_span = std::span(rs_stream).subspan(off, n);
      if (!rs_->decode(block_span).has_value()) return std::nullopt;
      body.insert(body.end(), block_span.begin(),
                  block_span.end() - static_cast<std::ptrdiff_t>(spec_.rs_nroots));
      off += n;
    }
  } else {
    body = std::move(rs_stream);
  }

  // 4. CRC check.
  if (body.size() < 4) return std::nullopt;
  util::Bytes payload(body.begin(), body.end() - 4);
  std::uint32_t crc = 0;
  for (int i = 0; i < 4; ++i) crc |= static_cast<std::uint32_t>(body[body.size() - 4 + static_cast<std::size_t>(i)]) << (8 * i);
  if (crc != fec::crc32(payload)) return std::nullopt;
  if (payload.size() != payload_size) return std::nullopt;
  return payload;
}

}  // namespace sonic::modem
