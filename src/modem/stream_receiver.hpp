// Chunk-fed, stateful OFDM receive chain — the receiver half of the paper's
// deployment: a phone listening to an FM tuner for hours while the broadcast
// carousel loops. Audio arrives in arbitrary-sized chunks (a mic callback
// hands out ~20 ms at a time); the receiver
//
//   * keeps a ring buffer over the incoming audio with an absolute sample
//     index, evicting everything the sync and decode stages can no longer
//     reach, so memory stays bounded by `max_buffer_samples` no matter how
//     long the stream runs;
//   * runs the Schmidl & Cox preamble search incrementally — the running
//     correlation sums, plateau tracker, and scan position carry across
//     chunk boundaries, so a preamble split across two chunks is found
//     exactly where a batch scan over the whole recording would find it;
//   * decodes each burst once enough audio is buffered, via the same
//     OfdmModem::decode_burst the batch path uses — feeding the same audio
//     in any chunking yields byte-identical frames to
//     OfdmModem::receive_all over the whole buffer;
//   * resyncs after a failed burst: a corrupted preamble or undecodable
//     header skips one symbol and resumes scanning, so one bad burst no
//     longer desyncs the rest of a carousel pass (receive_all gives up).
//
// Observability goes through the sonic::core::Metrics registry when one is
// provided: sync attempts/hits/resyncs, per-burst NCC and estimated SNR,
// frames ok/lost, and the buffered-samples high-water mark.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "modem/ofdm.hpp"
#include "util/metrics.hpp"

namespace sonic::modem {

struct StreamReceiverParams {
  // Hard cap on buffered audio. A burst longer than the cap is decoded with
  // what fits (the overflow decodes as erasures) rather than growing the
  // buffer. Must be at least 2x OfdmModem::min_decode_samples().
  // Default ~2M samples = ~47 s at 44.1 kHz, a few MB of floats.
  std::size_t max_buffer_samples = std::size_t{1} << 21;
  // Optional observability sink; must outlive the receiver.
  core::Metrics* metrics = nullptr;
};

class StreamReceiver {
 public:
  // `modem` must outlive the receiver.
  explicit StreamReceiver(const OfdmModem& modem, StreamReceiverParams params = {});

  // Feed one chunk of audio; returns every burst completed by it, with
  // start/end/needed expressed as absolute sample indices into the stream.
  std::vector<RxBurst> push(std::span<const float> chunk);

  // End of stream: resolve whatever is pending exactly like the batch path
  // at the end of its buffer (truncated bursts decode their missing symbols
  // as erasures). After flush(), call reset() before pushing again.
  std::vector<RxBurst> flush();

  // Forget the stream; the next push starts at absolute sample 0.
  void reset();

  std::size_t samples_pushed() const { return total_; }
  std::size_t samples_buffered() const { return buf_.size(); }
  std::size_t buffered_high_water() const { return high_water_; }

 private:
  enum class Step { kProgress, kStall, kDone };

  float at(std::size_t abs_index) const { return buf_[abs_index - base_]; }
  void advance(std::vector<RxBurst>& out, bool final_flush);
  Step scan(bool final_flush);
  Step fine_sync(bool final_flush);
  Step decode(std::vector<RxBurst>& out, bool final_flush);
  void restart_scan(std::size_t from);
  void evict();
  void enforce_cap(std::vector<RxBurst>& out);
  void count(const char* name, std::uint64_t n = 1);

  const OfdmModem& modem_;
  StreamReceiverParams params_;
  std::size_t sym_, fft_, half_, cp_;
  double tmpl_energy_ = 0.0;

  // Ring buffer: buf_[0] holds absolute sample index base_.
  std::vector<float> buf_;
  std::size_t base_ = 0;
  std::size_t total_ = 0;
  std::size_t high_water_ = 0;
  bool flushed_ = false;

  // Incremental Schmidl & Cox state (mirrors OfdmModem::find_sync).
  std::size_t scan_from_ = 0;
  bool seeded_ = false;
  double p_ = 0.0, r_ = 0.0;
  std::size_t d_ = 0;
  bool in_plateau_ = false;
  double best_metric_ = 0.0;
  std::size_t best_d_ = 0;
  std::size_t plateau_end_guard_ = 0;
  bool coarse_ready_ = false;

  // Established burst sync awaiting decode.
  bool have_sync_ = false;
  std::size_t sync_start_ = 0;
  float sync_ncc_ = 0.0f;
  std::size_t pending_needed_ = 0;  // absolute; 0 until the header is decoded
};

}  // namespace sonic::modem
