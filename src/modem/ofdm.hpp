// OFDM data-over-sound modem (the Quiet-library equivalent).
//
// Burst layout, in units of one OFDM symbol (fft_size + cp_len samples):
//
//   [preamble A][preamble B][header ...][payload ...][gap]
//
// * preamble A — PRBS QPSK on even FFT bins only, making the time waveform
//   periodic with period fft_size/2; the receiver detects it with a
//   Schmidl&Cox autocorrelation metric.
// * preamble B — PRBS QPSK on every used bin; per-bin channel estimation
//   and fine timing via cross-correlation.
// * header — 8 bytes (magic, frame_len, frame_count, crc16), BPSK,
//   v27 rate-1/2 coded: decodable far below the payload's SNR threshold.
// * payload — frame_count frames of frame_len bytes, each independently
//   CRC32 + RS + conv coded (PacketCodec), bit-interleaved, QAM-mapped
//   across the data subcarriers. Pilot subcarriers carry fixed PRBS BPSK
//   for per-symbol phase/timing tracking.
//
// Losing one OFDM symbol therefore corrupts only the frames that overlap
// it — the per-frame loss behaviour the paper's transport relies on (§3.3).
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "dsp/fft.hpp"
#include "modem/packet.hpp"
#include "modem/profile.hpp"
#include "util/bytes.hpp"

namespace sonic::modem {

// One decoded burst. frames[i] is nullopt when that frame failed FEC+CRC.
struct RxBurst {
  std::vector<std::optional<util::Bytes>> frames;
  std::size_t start_sample = 0;  // first sample of the burst in the input
  std::size_t end_sample = 0;    // one past the last sample consumed
  float snr_db = 0.0f;           // pilot-based post-equalization SNR
  float sync_ncc = 0.0f;         // fine-timing normalized cross-correlation
  // One past the last sample of the complete burst (preambles + header +
  // payload + gap), NOT capped by the input length — when this exceeds the
  // provided samples the demod windows ran off the end and `truncated` is
  // set (missing symbols decode as erasures). StreamReceiver uses it to know
  // how much audio a full decode needs.
  std::size_t needed_end = 0;
  bool truncated = false;

  std::size_t frames_ok() const;
  double frame_loss_rate() const;
};

// Not safe for concurrent use of one instance: the per-symbol FFT and
// demodulation paths run on reusable member scratch (allocation-free in
// steady state — the feature-phone CPU budget, paper §5). Give each thread
// its own OfdmModem; construction from the same profile is cheap because
// the FFT plan itself is shared through dsp::FftPlan's cache.
class OfdmModem {
 public:
  explicit OfdmModem(OfdmProfile profile);

  const OfdmProfile& profile() const { return profile_; }

  // Modulates a burst of equal-sized frames into audio samples in [-1, 1].
  std::vector<float> modulate(const std::vector<util::Bytes>& frames) const;

  // Finds and decodes the first burst at or after `from`.
  std::optional<RxBurst> receive_one(std::span<const float> samples, std::size_t from = 0) const;

  // Decodes every burst in the stream.
  std::vector<RxBurst> receive_all(std::span<const float> samples) const;

  // Decodes the burst whose preamble-A cyclic prefix starts at `start`
  // (timing already established, e.g. by StreamReceiver's incremental
  // sync). Returns nullopt when the header is undecodable. `sync_ncc` is
  // recorded into the burst for observability.
  std::optional<RxBurst> decode_burst(std::span<const float> samples, std::size_t start,
                                      float sync_ncc = 1.0f) const;

  // Samples needed past a burst's start to decode its header and learn the
  // burst's full length (preambles + header symbols + one FFT window).
  std::size_t min_decode_samples() const;

  // Samples occupied by a burst of `frame_count` frames of `frame_len` bytes.
  std::size_t burst_samples(std::size_t frame_len, std::size_t frame_count) const;

 private:
  friend class StreamReceiver;   // reuses the sync templates and profile
  friend struct OfdmKernelProbe;  // tests/bench: per-symbol kernel access

  struct Sync {
    std::size_t start;   // first sample of preamble A's cyclic prefix
    float quality;       // normalized correlation in [0,1]
  };

  int symbol_len() const { return profile_.fft_size + profile_.cp_len; }
  bool is_pilot(int rel_idx) const;
  std::size_t header_symbols() const;
  std::size_t payload_symbols(std::size_t frame_len, std::size_t frame_count) const;

  // Synthesizes one OFDM symbol (CP + body) from per-subcarrier values
  // indexed relative to first_bin. `out` keeps its capacity across calls, so
  // the steady-state path allocates nothing.
  void synth_symbol(std::span<const cplx> carriers, std::vector<float>& out) const;
  // FFT of one symbol body at `pos`; the returned span points into member
  // scratch and is valid until the next analyze_symbol call.
  std::span<const cplx> analyze_symbol(std::span<const float> samples, std::size_t pos) const;

  std::optional<Sync> find_sync(std::span<const float> samples, std::size_t from) const;

  OfdmProfile profile_;
  QamMapper qam_;
  PacketCodec payload_codec_;
  fec::ConvolutionalCodec header_codec_;
  std::shared_ptr<const dsp::FftPlan> fft_plan_;
  std::vector<cplx> preamble_a_;  // per-used-bin values (zeros on odd bins)
  std::vector<cplx> preamble_b_;
  std::vector<cplx> pilots_;      // fixed pilot values (zero on data bins)
  std::vector<float> template_a_;  // time-domain preamble A (with CP)
  std::vector<float> template_b_;  // time-domain preamble B (with CP)
  double template_b_energy_ = 0;   // sum of squares, hoisted out of find_sync
  float tx_gain_;

  // Per-symbol and per-burst scratch, reused across calls (see the class
  // comment on thread safety). spec_ holds the FFT-size working buffer,
  // carriers_ the used-bin view analyze_symbol returns.
  mutable std::vector<dsp::cplx> spec_;
  mutable std::vector<cplx> carriers_;
  // decode_burst working vectors (channel estimate, equalized bins, soft
  // bits), cleared and refilled per burst instead of reallocated.
  mutable std::vector<cplx> h_, h_smooth_, eq_;
  mutable std::vector<float> header_soft_, soft_;
};

// Test/bench peephole into the private per-symbol kernels. The kernel tests
// use it to verify the steady-state analyze/synthesize path performs no heap
// allocation; bench/micro_dsp_fec uses it for the per-symbol before/after
// cases.
struct OfdmKernelProbe {
  static std::span<const cplx> analyze(const OfdmModem& m, std::span<const float> samples,
                                       std::size_t pos) {
    return m.analyze_symbol(samples, pos);
  }
  static void synthesize(const OfdmModem& m, std::span<const cplx> carriers,
                         std::vector<float>& out) {
    m.synth_symbol(carriers, out);
  }
};

}  // namespace sonic::modem
