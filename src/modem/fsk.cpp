#include "modem/fsk.hpp"

#include <cmath>
#include <stdexcept>

#include "dsp/goertzel.hpp"
#include "fec/crc32.hpp"
#include "util/units.hpp"

namespace sonic::modem {

int FskProfile::bits_per_symbol() const {
  int b = 0;
  while ((1 << b) < num_tones) ++b;
  return b;
}

FskModem::FskModem(FskProfile profile) : profile_(profile) {
  if ((1 << profile_.bits_per_symbol()) != profile_.num_tones)
    throw std::invalid_argument("num_tones must be a power of two");
  const double top = profile_.tone_hz(profile_.num_tones - 1);
  if (top >= profile_.sample_rate / 2) throw std::invalid_argument("tones exceed Nyquist");
}

std::vector<float> FskModem::tone(int idx, int samples) const {
  std::vector<float> out(static_cast<std::size_t>(samples));
  const double f = profile_.tone_hz(idx);
  for (int i = 0; i < samples; ++i) {
    // Raised-cosine 10% edge taper limits inter-symbol spectral splatter.
    const double t = static_cast<double>(i) / profile_.sample_rate;
    double env = 1.0;
    const double frac = static_cast<double>(i) / samples;
    if (frac < 0.1) env = 0.5 - 0.5 * std::cos(sonic::util::kPi * frac / 0.1);
    if (frac > 0.9) env = 0.5 - 0.5 * std::cos(sonic::util::kPi * (1.0 - frac) / 0.1);
    out[static_cast<std::size_t>(i)] =
        profile_.amplitude * static_cast<float>(env * std::sin(sonic::util::kTwoPi * f * t));
  }
  return out;
}

std::vector<float> FskModem::modulate(std::span<const std::uint8_t> payload) const {
  if (payload.size() > 0xffff) throw std::invalid_argument("payload too large");
  const int sps = profile_.samples_per_symbol();
  std::vector<float> out;
  auto emit = [&](int idx) {
    const auto t = tone(idx, sps);
    out.insert(out.end(), t.begin(), t.end());
  };
  // Preamble: alternating first/last tone.
  for (int i = 0; i < kPreambleSymbols; ++i) emit(i % 2 == 0 ? 0 : profile_.num_tones - 1);

  // Body: u16 length, payload, crc32 — split into bits_per_symbol chunks.
  util::Bytes body;
  body.push_back(static_cast<std::uint8_t>(payload.size()));
  body.push_back(static_cast<std::uint8_t>(payload.size() >> 8));
  body.insert(body.end(), payload.begin(), payload.end());
  const std::uint32_t crc = fec::crc32(payload);
  for (int i = 0; i < 4; ++i) body.push_back(static_cast<std::uint8_t>(crc >> (8 * i)));

  util::BitReader br(body);
  const int bps = profile_.bits_per_symbol();
  const std::size_t nsym = (body.size() * 8 + static_cast<std::size_t>(bps) - 1) / static_cast<std::size_t>(bps);
  for (std::size_t s = 0; s < nsym; ++s) {
    int v = 0;
    for (int b = 0; b < bps; ++b) v = (v << 1) | br.bit();
    emit(v);
  }
  // Trailing silence so the last Goertzel window is clean.
  out.insert(out.end(), static_cast<std::size_t>(sps), 0.0f);
  return out;
}

int FskModem::detect_symbol(std::span<const float> win) const {
  int best = 0;
  double best_p = -1;
  for (int t = 0; t < profile_.num_tones; ++t) {
    const double p = dsp::goertzel_power(win, profile_.tone_hz(t), profile_.sample_rate);
    if (p > best_p) {
      best_p = p;
      best = t;
    }
  }
  return best;
}

std::optional<util::Bytes> FskModem::demodulate(std::span<const float> samples, std::size_t from) const {
  const int sps = profile_.samples_per_symbol();
  const std::size_t need = static_cast<std::size_t>(sps) * (kPreambleSymbols + 7);
  if (samples.size() < from + need) return std::nullopt;

  // Scan for the preamble with quarter-symbol granularity.
  const std::size_t step = static_cast<std::size_t>(sps) / 4;
  double best_score = 0;
  std::size_t best_off = 0;
  for (std::size_t off = from; off + need <= samples.size(); off += step) {
    double score = 0;
    for (int i = 0; i < kPreambleSymbols; ++i) {
      const auto win = samples.subspan(off + static_cast<std::size_t>(i) * static_cast<std::size_t>(sps),
                                       static_cast<std::size_t>(sps));
      const int expect = i % 2 == 0 ? 0 : profile_.num_tones - 1;
      const int other = i % 2 == 0 ? profile_.num_tones - 1 : 0;
      score += dsp::goertzel_power(win, profile_.tone_hz(expect), profile_.sample_rate) -
               dsp::goertzel_power(win, profile_.tone_hz(other), profile_.sample_rate);
    }
    if (score > best_score) {
      best_score = score;
      best_off = off;
    }
  }
  if (best_score < 0.5) return std::nullopt;

  // Fine alignment: +-quarter symbol around the coarse hit.
  std::size_t start = best_off;
  double fine_best = -1;
  const long lo = std::max<long>(static_cast<long>(from), static_cast<long>(best_off) - sps / 4);
  for (long off = lo; off <= static_cast<long>(best_off) + sps / 4; ++off) {
    if (static_cast<std::size_t>(off) + need > samples.size()) break;
    const auto win = samples.subspan(static_cast<std::size_t>(off), static_cast<std::size_t>(sps));
    const double p = dsp::goertzel_power(win, profile_.tone_hz(0), profile_.sample_rate);
    if (p > fine_best) {
      fine_best = p;
      start = static_cast<std::size_t>(off);
    }
  }

  // Decode body symbol by symbol.
  std::size_t pos = start + static_cast<std::size_t>(sps) * kPreambleSymbols;
  const int bps = profile_.bits_per_symbol();
  util::BitWriter bw;
  auto read_symbols = [&](std::size_t nbytes) -> bool {
    const std::size_t nbits = nbytes * 8;
    while (bw.bit_count() < nbits) {
      if (pos + static_cast<std::size_t>(sps) > samples.size()) return false;
      const int v = detect_symbol(samples.subspan(pos, static_cast<std::size_t>(sps)));
      bw.bits(static_cast<std::uint32_t>(v), bps);
      pos += static_cast<std::size_t>(sps);
    }
    return true;
  };

  if (!read_symbols(2)) return std::nullopt;
  const util::Bytes len_bytes = bw.bytes();
  const std::size_t len = static_cast<std::size_t>(len_bytes[0]) | (static_cast<std::size_t>(len_bytes[1]) << 8);
  if (!read_symbols(2 + len + 4)) return std::nullopt;

  const util::Bytes all = bw.take();
  util::Bytes payload(all.begin() + 2, all.begin() + 2 + static_cast<std::ptrdiff_t>(len));
  std::uint32_t crc = 0;
  for (int i = 0; i < 4; ++i) crc |= static_cast<std::uint32_t>(all[2 + len + static_cast<std::size_t>(i)]) << (8 * i);
  if (crc != fec::crc32(payload)) return std::nullopt;
  return payload;
}

}  // namespace sonic::modem
