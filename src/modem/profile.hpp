// Transmission profiles — the counterpart of Quiet's JSON profile files.
// The paper builds a new profile "inspired by audible-7k-channel" using OFDM
// with 92 subcarriers, CRC32, inner conv v29 and outer RS, reaching 10 kbps
// (§3.3). profiles::get("sonic-10k") reproduces that operating point; the
// others provide the comparison rungs used by the benchmarks.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "fec/convolutional.hpp"
#include "modem/qam.hpp"

namespace sonic::modem {

struct OfdmProfile {
  std::string name = "custom";
  double sample_rate = 44100.0;
  int fft_size = 1024;
  int cp_len = 64;
  int num_subcarriers = 92;     // total, pilots included
  double carrier_hz = 9200.0;   // paper §4: mono-channel carrier at 9.2 kHz
  int pilot_spacing = 8;        // every Nth subcarrier is a pilot tone
  Constellation constellation = Constellation::kQam64;
  fec::ConvSpec conv{fec::ConvCode::kV29, fec::PunctureRate::kRate3_4};
  int rs_nroots = 32;           // 0 disables the outer code
  float amplitude = 0.25f;      // output RMS target (1.0 = full scale)

  int num_pilots() const;
  int data_carriers() const { return num_subcarriers - num_pilots(); }
  double symbol_duration_s() const { return static_cast<double>(fft_size + cp_len) / sample_rate; }
  // Carrier bin of the first subcarrier.
  int first_bin() const;

  // Uncoded PHY bit rate (data carriers only).
  double raw_bit_rate() const;
  // Net payload rate when bursts carry `frames_per_burst` frames of
  // `payload_bytes` each (every frame individually CRC32+RS+conv coded per
  // §3.3), including header and preamble overhead.
  double net_bit_rate(std::size_t payload_bytes = 100, int frames_per_burst = 16) const;

  // Audio bandwidth occupied by the subcarriers.
  double bandwidth_hz() const;
  double subcarrier_spacing_hz() const { return sample_rate / fft_size; }
};

// Name-addressed profile registry — the API for selecting a rate/robustness
// operating point at runtime (acoustic-modem surveys show these rungs must
// be swappable in the field). Names are matched loosely: lookup ignores
// case and punctuation, so "sonic-10k", "sonic10k" and "SONIC 10K" all
// resolve the same rung. The four built-in rungs (robust-2k, audible-7k,
// sonic-10k, cable-64k) are pre-registered; custom rungs can be added with
// register_profile(). All functions are thread-safe.
namespace profiles {

// The profile registered under `name`, or nullopt.
std::optional<OfdmProfile> get(const std::string& name);

// Registered display names, in registration order (built-ins first, slowest
// to fastest).
std::vector<std::string> names();

// Registers (or replaces) a profile under its own `name`. Throws
// std::invalid_argument when the name is empty or all punctuation.
void register_profile(const OfdmProfile& profile);

// Every registered profile, in registration order.
std::vector<OfdmProfile> all();

}  // namespace profiles

// Deprecated free-function wrappers, kept so existing call sites compile;
// new code should use modem::profiles::get("<name>").

// The paper's profile: ≈10 kbps net over the FM mono channel.
[[deprecated("use modem::profiles::get(\"sonic-10k\")")]] OfdmProfile profile_sonic10k();
// A Quiet "audible-7k-channel"-like rung: 16-QAM, rate-1/2.
[[deprecated("use modem::profiles::get(\"audible-7k\")")]] OfdmProfile profile_audible7k();
// Very robust low-rate rung for weak receivers: QPSK, rate-1/2, RS-heavy.
[[deprecated("use modem::profiles::get(\"robust-2k\")")]] OfdmProfile profile_robust2k();
// Audio-jack profile mirroring Quiet's 64 kbps cable claim: wideband,
// dense constellation (cable has no acoustic distortion).
[[deprecated("use modem::profiles::get(\"cable-64k\")")]] OfdmProfile profile_cable64k();

[[deprecated("use modem::profiles::all()")]] std::vector<OfdmProfile> all_profiles();

}  // namespace sonic::modem
