// M-ary FSK modem — the GGwave-class baseline the paper surveys in §2.
// One tone out of `num_tones` per symbol period, Goertzel detection, a
// marker-tone preamble for synchronization and a CRC32 trailer. Its low
// rate (hundreds of bps) is the comparison point motivating the OFDM
// profile in bench/ablation_modulation.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "util/bytes.hpp"

namespace sonic::modem {

struct FskProfile {
  double sample_rate = 44100.0;
  int num_tones = 16;            // power of two; bits/symbol = log2
  double base_hz = 4000.0;       // first tone
  double tone_spacing_hz = 250.0;
  double symbol_duration_s = 0.01;
  float amplitude = 0.5f;

  int bits_per_symbol() const;
  double bit_rate() const { return bits_per_symbol() / symbol_duration_s; }
  int samples_per_symbol() const { return static_cast<int>(sample_rate * symbol_duration_s); }
  double tone_hz(int idx) const { return base_hz + tone_spacing_hz * idx; }
};

class FskModem {
 public:
  explicit FskModem(FskProfile profile);

  const FskProfile& profile() const { return profile_; }

  std::vector<float> modulate(std::span<const std::uint8_t> payload) const;

  // Finds and decodes the first packet at or after `from`; returns the
  // payload, or nullopt if no packet is found or the CRC fails.
  std::optional<util::Bytes> demodulate(std::span<const float> samples, std::size_t from = 0) const;

 private:
  static constexpr int kPreambleSymbols = 8;

  std::vector<float> tone(int idx, int samples) const;
  int detect_symbol(std::span<const float> win) const;

  FskProfile profile_;
};

}  // namespace sonic::modem
