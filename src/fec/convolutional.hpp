// Convolutional coding with Viterbi decoding — the paper's "inner FEC
// scheme (v29)" (§3.3), i.e. the constraint-length-9 rate-1/2 code that the
// Quiet library inherits from libfec. We also provide the K=7 "v27" code and
// puncturing to rates 2/3 and 3/4 so transmission profiles can trade
// robustness for throughput.
//
// Soft inputs are per-bit values in [0, 1]: 0.0 = confident logical 0,
// 1.0 = confident logical 1, 0.5 = erasure/unknown. Hard decisions map to
// exactly 0.0 / 1.0.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "util/bytes.hpp"

namespace sonic::fec {

enum class ConvCode {
  kV27,  // K=7, polys 0x6d / 0x4f (Voyager)
  kV29,  // K=9, polys 0x1af / 0x11d (the paper's inner code)
};

enum class PunctureRate {
  kRate1_2,  // mother code, no puncturing
  kRate2_3,
  kRate3_4,
};

struct ConvSpec {
  ConvCode code = ConvCode::kV29;
  PunctureRate rate = PunctureRate::kRate1_2;
};

class ConvolutionalCodec {
 public:
  explicit ConvolutionalCodec(ConvSpec spec);

  // Encodes `data` (bytes, MSB-first) plus K-1 flush bits; returns the
  // punctured output bitstream packed into bytes.
  util::Bytes encode(std::span<const std::uint8_t> data) const;

  // Number of encoded bits produced for `payload_bytes` input bytes
  // (after puncturing, before byte packing).
  std::size_t encoded_bits(std::size_t payload_bytes) const;

  // Viterbi decode of soft bits back into `payload_bytes` bytes. `soft`
  // must contain encoded_bits(payload_bytes) entries. Returns the decoded
  // bytes; the code is always decodable (it picks the best path), so
  // integrity must be checked by an outer CRC.
  //
  // The hot implementation precomputes the 4 possible branch metrics once
  // per trellis step, runs the ACS butterfly branchlessly over next states,
  // packs survivor bits into flat 64-bit words, and reuses all buffers
  // across calls through a thread-local workspace. decode_soft_reference is
  // the straightforward per-state scalar loop; both produce byte-identical
  // output (ties break toward the lower predecessor state in each).
  util::Bytes decode_soft(std::span<const float> soft, std::size_t payload_bytes) const;
  util::Bytes decode_soft_reference(std::span<const float> soft, std::size_t payload_bytes) const;

  // Convenience: hard-decision decode from packed bits.
  util::Bytes decode_hard(std::span<const std::uint8_t> packed_bits, std::size_t payload_bytes) const;

  int constraint_length() const { return k_; }
  // Effective code rate as a fraction (e.g. 0.5, 2/3, 0.75).
  double rate() const;

 private:
  struct Branch {
    std::uint8_t out0;  // first output bit
    std::uint8_t out1;  // second output bit
  };

  std::vector<int> puncture_pattern() const;  // 1 = keep, over output bit pairs
  void raw_encode_bits(std::span<const std::uint8_t> data, std::vector<std::uint8_t>& out_bits) const;
  void depuncture(std::span<const float> soft, std::size_t in_bits, std::vector<float>& pairs) const;

  ConvSpec spec_;
  int k_;                 // constraint length
  std::uint32_t poly_a_;
  std::uint32_t poly_b_;
  int num_states_;
  std::vector<Branch> branches_;  // [state << 1 | input_bit]
  // branch_sym_[state << 1 | bit] = out0*2 + out1, indexing the 4 branch
  // metrics precomputed per trellis step by the hot decoder.
  std::vector<std::uint8_t> branch_sym_;
};

}  // namespace sonic::fec
