#include "fec/interleaver.hpp"

#include <stdexcept>

namespace sonic::fec {

BlockInterleaver::BlockInterleaver(int rows, int cols) : rows_(rows), cols_(cols) {
  if (rows < 1 || cols < 1) throw std::invalid_argument("interleaver dims must be positive");
}

util::Bytes BlockInterleaver::interleave(std::span<const std::uint8_t> data) const {
  const std::size_t bs = block_size();
  const std::size_t blocks = (data.size() + bs - 1) / bs;
  util::Bytes out(blocks * bs, 0);
  for (std::size_t blk = 0; blk < blocks; ++blk) {
    for (int r = 0; r < rows_; ++r) {
      for (int c = 0; c < cols_; ++c) {
        const std::size_t src = blk * bs + static_cast<std::size_t>(r) * static_cast<std::size_t>(cols_) + static_cast<std::size_t>(c);
        const std::size_t dst = blk * bs + static_cast<std::size_t>(c) * static_cast<std::size_t>(rows_) + static_cast<std::size_t>(r);
        out[dst] = src < data.size() ? data[src] : 0;
      }
    }
  }
  return out;
}

util::Bytes BlockInterleaver::deinterleave(std::span<const std::uint8_t> data, std::size_t original_size) const {
  const std::size_t bs = block_size();
  const std::size_t blocks = (data.size() + bs - 1) / bs;
  util::Bytes out(blocks * bs, 0);
  for (std::size_t blk = 0; blk < blocks; ++blk) {
    for (int r = 0; r < rows_; ++r) {
      for (int c = 0; c < cols_; ++c) {
        const std::size_t dst = blk * bs + static_cast<std::size_t>(r) * static_cast<std::size_t>(cols_) + static_cast<std::size_t>(c);
        const std::size_t src = blk * bs + static_cast<std::size_t>(c) * static_cast<std::size_t>(rows_) + static_cast<std::size_t>(r);
        out[dst] = src < data.size() ? data[src] : 0;
      }
    }
  }
  out.resize(original_size);
  return out;
}

}  // namespace sonic::fec
