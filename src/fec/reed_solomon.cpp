#include "fec/reed_solomon.hpp"

#include <algorithm>
#include <stdexcept>

namespace sonic::fec {

GF256::GF256() {
  // Generate exp/log tables for alpha = 2, primitive polynomial 0x11d.
  int x = 1;
  for (int i = 0; i < 255; ++i) {
    exp_[i] = static_cast<std::uint8_t>(x);
    log_[x] = i;
    x <<= 1;
    if (x & 0x100) x ^= 0x11d;
  }
  for (int i = 255; i < 512; ++i) exp_[i] = exp_[i - 255];
  log_[0] = -1;
}

const GF256& GF256::instance() {
  static const GF256 gf;
  return gf;
}

std::uint8_t GF256::mul(std::uint8_t a, std::uint8_t b) const {
  if (a == 0 || b == 0) return 0;
  return exp_[log_[a] + log_[b]];
}

std::uint8_t GF256::div(std::uint8_t a, std::uint8_t b) const {
  if (a == 0) return 0;
  return exp_[log_[a] - log_[b] + 255];
}

std::uint8_t GF256::inv(std::uint8_t a) const { return exp_[255 - log_[a]]; }

std::uint8_t GF256::pow(std::uint8_t a, int e) const {
  if (a == 0) return 0;
  return exp(log_[a] * e);
}

ReedSolomon::ReedSolomon(int nroots) : nroots_(nroots) {
  if (nroots < 2 || nroots > 64) throw std::invalid_argument("rs nroots out of range");
  const GF256& gf = GF256::instance();
  // g(x) = prod_{i=0}^{nroots-1} (x - alpha^i), fcr = 0.
  genpoly_.assign(static_cast<std::size_t>(nroots) + 1, 0);
  genpoly_[0] = 1;
  for (int i = 0; i < nroots; ++i) {
    const std::uint8_t root = gf.exp(i);
    // Multiply genpoly by (x + root); in GF(2), -root == root.
    for (int j = i + 1; j > 0; --j) {
      genpoly_[static_cast<std::size_t>(j)] = static_cast<std::uint8_t>(
          genpoly_[static_cast<std::size_t>(j - 1)] ^
          gf.mul(genpoly_[static_cast<std::size_t>(j)], root));
    }
    genpoly_[0] = gf.mul(genpoly_[0], root);
  }
}

util::Bytes ReedSolomon::encode(std::span<const std::uint8_t> data) const {
  if (static_cast<int>(data.size()) > max_data())
    throw std::invalid_argument("rs payload too large");
  const GF256& gf = GF256::instance();
  // Systematic encode: parity = (data * x^nroots) mod genpoly, via LFSR.
  std::vector<std::uint8_t> parity(static_cast<std::size_t>(nroots_), 0);
  for (std::uint8_t byte : data) {
    const std::uint8_t feedback = static_cast<std::uint8_t>(byte ^ parity[0]);
    std::copy(parity.begin() + 1, parity.end(), parity.begin());
    parity.back() = 0;
    if (feedback != 0) {
      for (int j = 0; j < nroots_; ++j) {
        parity[static_cast<std::size_t>(j)] = static_cast<std::uint8_t>(
            parity[static_cast<std::size_t>(j)] ^
            gf.mul(feedback, genpoly_[static_cast<std::size_t>(nroots_ - 1 - j)]));
      }
    }
  }
  util::Bytes out(data.begin(), data.end());
  out.insert(out.end(), parity.begin(), parity.end());
  return out;
}

std::optional<int> ReedSolomon::decode(std::span<std::uint8_t> block,
                                       std::span<const int> erasures) const {
  const GF256& gf = GF256::instance();
  const int n = static_cast<int>(block.size());
  if (n <= nroots_ || n > 255) return std::nullopt;
  if (static_cast<int>(erasures.size()) > nroots_) return std::nullopt;

  // Syndromes: S_i = r(alpha^i). Byte j of the block is the coefficient of
  // x^(n-1-j) in the (shortened) codeword polynomial.
  std::vector<std::uint8_t> synd(static_cast<std::size_t>(nroots_), 0);
  bool all_zero = true;
  for (int i = 0; i < nroots_; ++i) {
    std::uint8_t s = 0;
    const std::uint8_t a = gf.exp(i);
    for (int j = 0; j < n; ++j) s = static_cast<std::uint8_t>(gf.mul(s, a) ^ block[static_cast<std::size_t>(j)]);
    synd[static_cast<std::size_t>(i)] = s;
    if (s != 0) all_zero = false;
  }
  if (all_zero) return 0;

  // Erasure locator Gamma(x) = prod (1 - X_e x), X_e = alpha^(n-1-j).
  std::vector<std::uint8_t> gamma{1};
  for (int j : erasures) {
    if (j < 0 || j >= n) return std::nullopt;
    const std::uint8_t xe = gf.exp(n - 1 - j);
    std::vector<std::uint8_t> next(gamma.size() + 1, 0);
    for (std::size_t t = 0; t < gamma.size(); ++t) {
      next[t] = static_cast<std::uint8_t>(next[t] ^ gamma[t]);
      next[t + 1] = static_cast<std::uint8_t>(next[t + 1] ^ gf.mul(gamma[t], xe));
    }
    gamma = std::move(next);
  }

  // Berlekamp-Massey seeded with the erasure locator (Blahut's variant):
  // find the errata locator Lambda with deg <= nroots.
  std::vector<std::uint8_t> lambda = gamma;
  std::vector<std::uint8_t> prev = gamma;
  int num_erasures = static_cast<int>(erasures.size());
  int big_l = num_erasures;
  int m = 1;
  std::uint8_t b = 1;
  for (int i = num_erasures; i < nroots_; ++i) {
    // Discrepancy.
    std::uint8_t delta = 0;
    for (std::size_t j = 0; j < lambda.size() && j <= static_cast<std::size_t>(i); ++j) {
      delta = static_cast<std::uint8_t>(delta ^ gf.mul(lambda[j], synd[static_cast<std::size_t>(i) - j]));
    }
    if (delta == 0) {
      ++m;
      continue;
    }
    if (2 * big_l <= i + num_erasures) {
      std::vector<std::uint8_t> t = lambda;
      const std::uint8_t coef = gf.div(delta, b);
      // lambda -= coef * x^m * prev
      if (lambda.size() < prev.size() + static_cast<std::size_t>(m)) lambda.resize(prev.size() + static_cast<std::size_t>(m), 0);
      for (std::size_t j = 0; j < prev.size(); ++j) {
        lambda[j + static_cast<std::size_t>(m)] =
            static_cast<std::uint8_t>(lambda[j + static_cast<std::size_t>(m)] ^ gf.mul(coef, prev[j]));
      }
      big_l = i + num_erasures + 1 - big_l;
      prev = std::move(t);
      b = delta;
      m = 1;
    } else {
      const std::uint8_t coef = gf.div(delta, b);
      if (lambda.size() < prev.size() + static_cast<std::size_t>(m)) lambda.resize(prev.size() + static_cast<std::size_t>(m), 0);
      for (std::size_t j = 0; j < prev.size(); ++j) {
        lambda[j + static_cast<std::size_t>(m)] =
            static_cast<std::uint8_t>(lambda[j + static_cast<std::size_t>(m)] ^ gf.mul(coef, prev[j]));
      }
      ++m;
    }
  }
  while (!lambda.empty() && lambda.back() == 0) lambda.pop_back();
  const int deg_lambda = static_cast<int>(lambda.size()) - 1;
  if (deg_lambda < 0 || deg_lambda > nroots_) return std::nullopt;

  // Chien search: roots of Lambda give error positions.
  std::vector<int> error_pos;  // byte indexes into block
  for (int p = 0; p < n; ++p) {
    // Candidate locator X = alpha^p corresponds to byte index n-1-p;
    // test Lambda(X^{-1}) == 0.
    std::uint8_t sum = 0;
    for (std::size_t j = 0; j < lambda.size(); ++j) {
      sum = static_cast<std::uint8_t>(sum ^ gf.mul(lambda[j], gf.exp(static_cast<int>((255 - p) % 255) * static_cast<int>(j))));
    }
    if (sum == 0) error_pos.push_back(n - 1 - p);
  }
  if (static_cast<int>(error_pos.size()) != deg_lambda) return std::nullopt;

  // Errata evaluator Omega(x) = S(x) * Lambda(x) mod x^nroots.
  std::vector<std::uint8_t> omega(static_cast<std::size_t>(nroots_), 0);
  for (int i = 0; i < nroots_; ++i) {
    std::uint8_t acc = 0;
    for (std::size_t j = 0; j <= static_cast<std::size_t>(i) && j < lambda.size(); ++j) {
      acc = static_cast<std::uint8_t>(acc ^ gf.mul(lambda[j], synd[static_cast<std::size_t>(i) - j]));
    }
    omega[static_cast<std::size_t>(i)] = acc;
  }

  // Forney: e_k = X_k * Omega(X_k^{-1}) / Lambda'(X_k^{-1})   (fcr = 0).
  for (int idx : error_pos) {
    const int p = n - 1 - idx;                 // power of the position
    const int inv_log = (255 - p) % 255;       // log of X^{-1}
    std::uint8_t om = 0;
    for (std::size_t j = 0; j < omega.size(); ++j) {
      om = static_cast<std::uint8_t>(om ^ gf.mul(omega[j], gf.exp(inv_log * static_cast<int>(j))));
    }
    // Lambda'(x): formal derivative keeps odd-power terms shifted down.
    std::uint8_t lp = 0;
    for (std::size_t j = 1; j < lambda.size(); j += 2) {
      lp = static_cast<std::uint8_t>(lp ^ gf.mul(lambda[j], gf.exp(inv_log * static_cast<int>(j - 1))));
    }
    if (lp == 0) return std::nullopt;
    const std::uint8_t magnitude = gf.mul(gf.exp(p), gf.div(om, lp));
    block[static_cast<std::size_t>(idx)] = static_cast<std::uint8_t>(block[static_cast<std::size_t>(idx)] ^ magnitude);
  }

  // Verify: all syndromes must now vanish.
  for (int i = 0; i < nroots_; ++i) {
    std::uint8_t s = 0;
    const std::uint8_t a = gf.exp(i);
    for (int j = 0; j < n; ++j) s = static_cast<std::uint8_t>(gf.mul(s, a) ^ block[static_cast<std::size_t>(j)]);
    if (s != 0) return std::nullopt;
  }
  return deg_lambda;
}

}  // namespace sonic::fec
