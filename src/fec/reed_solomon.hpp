// Reed-Solomon coding over GF(2^8) — the paper's "outer FEC scheme (rs8)"
// (§3.3). Block length 255 with a configurable number of parity symbols
// (default 32, i.e. RS(255,223)); shortened blocks are supported so SONIC's
// 100-byte frames fit in a single codeword. The decoder corrects e errors
// and f erasures whenever 2e + f <= nroots.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "util/bytes.hpp"

namespace sonic::fec {

// GF(2^8) arithmetic with primitive polynomial 0x11d (as used by rs8/CCSDS).
class GF256 {
 public:
  static const GF256& instance();

  std::uint8_t mul(std::uint8_t a, std::uint8_t b) const;
  std::uint8_t div(std::uint8_t a, std::uint8_t b) const;  // b != 0
  std::uint8_t inv(std::uint8_t a) const;                  // a != 0
  std::uint8_t pow(std::uint8_t a, int e) const;
  std::uint8_t exp(int e) const { return exp_[((e % 255) + 255) % 255]; }
  int log(std::uint8_t a) const { return log_[a]; }  // undefined for 0

 private:
  GF256();
  std::uint8_t exp_[512];
  int log_[256];
};

class ReedSolomon {
 public:
  // nroots parity symbols; payload per full block is 255 - nroots.
  explicit ReedSolomon(int nroots = 32);

  int nroots() const { return nroots_; }
  int max_data() const { return 255 - nroots_; }

  // Appends nroots parity bytes to `data` (size() <= max_data()).
  util::Bytes encode(std::span<const std::uint8_t> data) const;

  // Corrects `block` (data || parity, total <= 255) in place.
  // `erasures` holds byte indexes into `block` known to be unreliable.
  // Returns the number of corrected symbols, or std::nullopt if the
  // codeword is uncorrectable.
  std::optional<int> decode(std::span<std::uint8_t> block,
                            std::span<const int> erasures = {}) const;

 private:
  int nroots_;
  std::vector<std::uint8_t> genpoly_;  // ascending powers, genpoly_[nroots] == 1
};

}  // namespace sonic::fec
