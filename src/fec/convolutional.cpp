#include "fec/convolutional.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace sonic::fec {
namespace {

int parity(std::uint32_t v) { return std::popcount(v) & 1; }

}  // namespace

ConvolutionalCodec::ConvolutionalCodec(ConvSpec spec) : spec_(spec) {
  switch (spec.code) {
    case ConvCode::kV27:
      k_ = 7;
      poly_a_ = 0x6d;
      poly_b_ = 0x4f;
      break;
    case ConvCode::kV29:
      k_ = 9;
      poly_a_ = 0x1af;
      poly_b_ = 0x11d;
      break;
    default:
      throw std::invalid_argument("unknown convolutional code");
  }
  num_states_ = 1 << (k_ - 1);
  branches_.resize(static_cast<std::size_t>(num_states_) << 1);
  branch_sym_.resize(static_cast<std::size_t>(num_states_) << 1);
  for (int state = 0; state < num_states_; ++state) {
    for (int bit = 0; bit < 2; ++bit) {
      const std::uint32_t reg = (static_cast<std::uint32_t>(state) << 1) | static_cast<std::uint32_t>(bit);
      Branch& br = branches_[(static_cast<std::size_t>(state) << 1) | static_cast<std::size_t>(bit)];
      br.out0 = static_cast<std::uint8_t>(parity(reg & poly_a_));
      br.out1 = static_cast<std::uint8_t>(parity(reg & poly_b_));
      branch_sym_[(static_cast<std::size_t>(state) << 1) | static_cast<std::size_t>(bit)] =
          static_cast<std::uint8_t>(br.out0 * 2 + br.out1);
    }
  }
}

std::vector<int> ConvolutionalCodec::puncture_pattern() const {
  // Patterns over consecutive (out0, out1) pairs; 1 = transmit.
  switch (spec_.rate) {
    case PunctureRate::kRate1_2: return {1, 1};
    case PunctureRate::kRate2_3: return {1, 1, 1, 0};
    case PunctureRate::kRate3_4: return {1, 1, 0, 1, 1, 0};
  }
  return {1, 1};
}

double ConvolutionalCodec::rate() const {
  switch (spec_.rate) {
    case PunctureRate::kRate1_2: return 0.5;
    case PunctureRate::kRate2_3: return 2.0 / 3.0;
    case PunctureRate::kRate3_4: return 0.75;
  }
  return 0.5;
}

void ConvolutionalCodec::raw_encode_bits(std::span<const std::uint8_t> data,
                                         std::vector<std::uint8_t>& out_bits) const {
  std::uint32_t state = 0;
  auto push = [&](int bit) {
    const Branch& br = branches_[(static_cast<std::size_t>(state) << 1) | static_cast<std::size_t>(bit)];
    out_bits.push_back(br.out0);
    out_bits.push_back(br.out1);
    state = ((state << 1) | static_cast<std::uint32_t>(bit)) & static_cast<std::uint32_t>(num_states_ - 1);
  };
  for (std::uint8_t byte : data) {
    for (int i = 7; i >= 0; --i) push((byte >> i) & 1);
  }
  for (int i = 0; i < k_ - 1; ++i) push(0);  // flush to state 0
}

std::size_t ConvolutionalCodec::encoded_bits(std::size_t payload_bytes) const {
  const std::size_t in_bits = payload_bytes * 8 + static_cast<std::size_t>(k_ - 1);
  const std::size_t raw = in_bits * 2;
  const auto pat = puncture_pattern();
  const std::size_t kept_per_period = static_cast<std::size_t>(std::count(pat.begin(), pat.end(), 1));
  const std::size_t full = raw / pat.size();
  std::size_t bits = full * kept_per_period;
  for (std::size_t i = full * pat.size(); i < raw; ++i) bits += static_cast<std::size_t>(pat[i % pat.size()]);
  return bits;
}

util::Bytes ConvolutionalCodec::encode(std::span<const std::uint8_t> data) const {
  std::vector<std::uint8_t> raw;
  raw.reserve(data.size() * 16 + 32);
  raw_encode_bits(data, raw);

  const auto pat = puncture_pattern();
  util::BitWriter bw;
  for (std::size_t i = 0; i < raw.size(); ++i) {
    if (pat[i % pat.size()]) bw.bit(raw[i]);
  }
  return bw.take();
}

void ConvolutionalCodec::depuncture(std::span<const float> soft, std::size_t in_bits,
                                    std::vector<float>& pairs) const {
  // De-puncture into per-step (out0, out1) soft pairs; punctured positions
  // become 0.5 (no information).
  const auto pat = puncture_pattern();
  pairs.assign(in_bits * 2, 0.5f);
  std::size_t soft_idx = 0;
  for (std::size_t i = 0; i < in_bits * 2; ++i) {
    if (pat[i % pat.size()]) {
      pairs[i] = soft_idx < soft.size() ? soft[soft_idx] : 0.5f;
      ++soft_idx;
    }
  }
}

namespace {

// Buffers for decode_soft, reused across calls. Thread-local rather than a
// codec member so concurrent decodes on a shared codec stay safe.
struct ViterbiWorkspace {
  std::vector<float> pairs;
  std::vector<float> metric;
  std::vector<float> next_metric;
  std::vector<std::uint64_t> survivors;  // in_bits * words_per_step packed bits
  std::vector<std::uint8_t> bits;
};

}  // namespace

util::Bytes ConvolutionalCodec::decode_soft(std::span<const float> soft,
                                            std::size_t payload_bytes) const {
  const std::size_t in_bits = payload_bytes * 8 + static_cast<std::size_t>(k_ - 1);
  const std::size_t ns = static_cast<std::size_t>(num_states_);
  const std::size_t half = ns / 2;

  thread_local ViterbiWorkspace ws;
  depuncture(soft, in_bits, ws.pairs);

  constexpr float kInf = std::numeric_limits<float>::max() / 4;
  ws.metric.assign(ns, kInf);
  ws.next_metric.assign(ns, kInf);
  ws.metric[0] = 0.0f;  // encoder starts in state 0

  // Survivor bits packed 64 states per word: bit `next` of a step's words is
  // the evicted MSB of the winning predecessor (0 = low predecessor
  // next >> 1, 1 = high predecessor (next >> 1) + half).
  const std::size_t words = (ns + 63) / 64;
  ws.survivors.assign(in_bits * words, 0);

  const std::uint8_t* bsym = branch_sym_.data();
  for (std::size_t step = 0; step < in_bits; ++step) {
    const float s0 = ws.pairs[step * 2];
    const float s1 = ws.pairs[step * 2 + 1];
    // The 4 possible branch metrics (L1 distance to expected output pair),
    // hoisted out of the state loop.
    const float d0 = std::fabs(s0);
    const float d0c = std::fabs(s0 - 1.0f);
    const float d1 = std::fabs(s1);
    const float d1c = std::fabs(s1 - 1.0f);
    const float bm[4] = {d0 + d1, d0 + d1c, d0c + d1, d0c + d1c};

    const float* m = ws.metric.data();
    float* nm = ws.next_metric.data();
    std::uint64_t* surv = ws.survivors.data() + step * words;
    // ACS butterfly over next states: next = (prev << 1 | bit) & mask, so
    // next's two predecessors are next >> 1 and (next >> 1) + half, and
    // their branch symbols sit at bsym[next] and bsym[next + ns]. No
    // branches in the loop body — the select compiles to min/cmov and
    // auto-vectorizes. Ties keep the low predecessor, matching the
    // reference's first-writer-wins update.
    for (std::size_t next = 0; next < ns; ++next) {
      const std::size_t p0 = next >> 1;
      const float m0 = m[p0] + bm[bsym[next]];
      const float m1 = m[p0 + half] + bm[bsym[next + ns]];
      const bool take_high = m1 < m0;
      nm[next] = take_high ? m1 : m0;
      surv[next / 64] |= static_cast<std::uint64_t>(take_high) << (next % 64);
    }
    ws.metric.swap(ws.next_metric);
  }

  // Traceback from state 0 (guaranteed by the K-1 flush bits).
  std::uint32_t state = 0;
  util::Bytes out(payload_bytes, 0);
  ws.bits.resize(in_bits);
  for (std::size_t step = in_bits; step-- > 0;) {
    ws.bits[step] = static_cast<std::uint8_t>(state & 1);  // input bit that produced `state`
    const std::uint64_t word = ws.survivors[step * words + state / 64];
    const std::uint32_t evicted = static_cast<std::uint32_t>((word >> (state % 64)) & 1);
    state = (state >> 1) | (evicted << (k_ - 2));
  }

  for (std::size_t i = 0; i < payload_bytes * 8; ++i) {
    if (ws.bits[i]) out[i / 8] |= static_cast<std::uint8_t>(1u << (7 - i % 8));
  }
  return out;
}

util::Bytes ConvolutionalCodec::decode_soft_reference(std::span<const float> soft,
                                                      std::size_t payload_bytes) const {
  const std::size_t in_bits = payload_bytes * 8 + static_cast<std::size_t>(k_ - 1);
  std::vector<float> pairs;
  depuncture(soft, in_bits, pairs);

  constexpr float kInf = std::numeric_limits<float>::max() / 4;
  std::vector<float> metric(static_cast<std::size_t>(num_states_), kInf);
  std::vector<float> next_metric(static_cast<std::size_t>(num_states_), kInf);
  metric[0] = 0.0f;  // encoder starts in state 0

  // Survivor storage: transitioning prev -> next with input bit b gives
  // next = ((prev << 1) | b) & mask, so b == (next & 1) and prev is fully
  // determined by next plus prev's evicted MSB. One evicted bit per
  // (step, state) is all the traceback needs.
  std::vector<std::uint8_t> survivors(in_bits * static_cast<std::size_t>(num_states_));

  const std::uint32_t state_mask = static_cast<std::uint32_t>(num_states_ - 1);
  for (std::size_t step = 0; step < in_bits; ++step) {
    const float s0 = pairs[step * 2];
    const float s1 = pairs[step * 2 + 1];
    std::fill(next_metric.begin(), next_metric.end(), kInf);
    std::uint8_t* surv = survivors.data() + step * static_cast<std::size_t>(num_states_);
    for (int state = 0; state < num_states_; ++state) {
      const float base = metric[static_cast<std::size_t>(state)];
      if (base >= kInf) continue;
      for (int bit = 0; bit < 2; ++bit) {
        const Branch& br = branches_[(static_cast<std::size_t>(state) << 1) | static_cast<std::size_t>(bit)];
        // Branch metric: L1 distance between expected and observed soft
        // bits, summed before adding to the path metric so the arithmetic
        // (and therefore the decode) is bit-identical to the hot decoder's
        // precomputed-metric form.
        const float bm = std::fabs(s0 - static_cast<float>(br.out0)) +
                         std::fabs(s1 - static_cast<float>(br.out1));
        const float m = base + bm;
        const std::uint32_t ns = ((static_cast<std::uint32_t>(state) << 1) | static_cast<std::uint32_t>(bit)) & state_mask;
        if (m < next_metric[ns]) {
          next_metric[ns] = m;
          surv[ns] = static_cast<std::uint8_t>((state >> (k_ - 2)) & 1);  // evicted MSB of prev
        }
      }
    }
    metric.swap(next_metric);
  }

  // Traceback from state 0 (guaranteed by the K-1 flush bits).
  std::uint32_t state = 0;
  util::Bytes out(payload_bytes, 0);
  std::vector<std::uint8_t> bits(in_bits);
  for (std::size_t step = in_bits; step-- > 0;) {
    bits[step] = static_cast<std::uint8_t>(state & 1);  // the input bit that produced `state`
    const std::uint32_t evicted = survivors[step * static_cast<std::size_t>(num_states_) + state];
    state = (state >> 1) | (evicted << (k_ - 2));
  }

  for (std::size_t i = 0; i < payload_bytes * 8; ++i) {
    if (bits[i]) out[i / 8] |= static_cast<std::uint8_t>(1u << (7 - i % 8));
  }
  return out;
}

util::Bytes ConvolutionalCodec::decode_hard(std::span<const std::uint8_t> packed_bits,
                                            std::size_t payload_bytes) const {
  const std::size_t nbits = encoded_bits(payload_bytes);
  std::vector<float> soft(nbits, 0.5f);
  util::BitReader br(packed_bits);
  for (std::size_t i = 0; i < nbits && br.bits_remaining() > 0; ++i) {
    soft[i] = static_cast<float>(br.bit());
  }
  return decode_soft(soft, payload_bytes);
}

}  // namespace sonic::fec
