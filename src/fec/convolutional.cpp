#include "fec/convolutional.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace sonic::fec {
namespace {

int parity(std::uint32_t v) { return std::popcount(v) & 1; }

}  // namespace

ConvolutionalCodec::ConvolutionalCodec(ConvSpec spec) : spec_(spec) {
  switch (spec.code) {
    case ConvCode::kV27:
      k_ = 7;
      poly_a_ = 0x6d;
      poly_b_ = 0x4f;
      break;
    case ConvCode::kV29:
      k_ = 9;
      poly_a_ = 0x1af;
      poly_b_ = 0x11d;
      break;
    default:
      throw std::invalid_argument("unknown convolutional code");
  }
  num_states_ = 1 << (k_ - 1);
  branches_.resize(static_cast<std::size_t>(num_states_) << 1);
  for (int state = 0; state < num_states_; ++state) {
    for (int bit = 0; bit < 2; ++bit) {
      const std::uint32_t reg = (static_cast<std::uint32_t>(state) << 1) | static_cast<std::uint32_t>(bit);
      Branch& br = branches_[(static_cast<std::size_t>(state) << 1) | static_cast<std::size_t>(bit)];
      br.out0 = static_cast<std::uint8_t>(parity(reg & poly_a_));
      br.out1 = static_cast<std::uint8_t>(parity(reg & poly_b_));
    }
  }
}

std::vector<int> ConvolutionalCodec::puncture_pattern() const {
  // Patterns over consecutive (out0, out1) pairs; 1 = transmit.
  switch (spec_.rate) {
    case PunctureRate::kRate1_2: return {1, 1};
    case PunctureRate::kRate2_3: return {1, 1, 1, 0};
    case PunctureRate::kRate3_4: return {1, 1, 0, 1, 1, 0};
  }
  return {1, 1};
}

double ConvolutionalCodec::rate() const {
  switch (spec_.rate) {
    case PunctureRate::kRate1_2: return 0.5;
    case PunctureRate::kRate2_3: return 2.0 / 3.0;
    case PunctureRate::kRate3_4: return 0.75;
  }
  return 0.5;
}

void ConvolutionalCodec::raw_encode_bits(std::span<const std::uint8_t> data,
                                         std::vector<std::uint8_t>& out_bits) const {
  std::uint32_t state = 0;
  auto push = [&](int bit) {
    const Branch& br = branches_[(static_cast<std::size_t>(state) << 1) | static_cast<std::size_t>(bit)];
    out_bits.push_back(br.out0);
    out_bits.push_back(br.out1);
    state = ((state << 1) | static_cast<std::uint32_t>(bit)) & static_cast<std::uint32_t>(num_states_ - 1);
  };
  for (std::uint8_t byte : data) {
    for (int i = 7; i >= 0; --i) push((byte >> i) & 1);
  }
  for (int i = 0; i < k_ - 1; ++i) push(0);  // flush to state 0
}

std::size_t ConvolutionalCodec::encoded_bits(std::size_t payload_bytes) const {
  const std::size_t in_bits = payload_bytes * 8 + static_cast<std::size_t>(k_ - 1);
  const std::size_t raw = in_bits * 2;
  const auto pat = puncture_pattern();
  const std::size_t kept_per_period = static_cast<std::size_t>(std::count(pat.begin(), pat.end(), 1));
  const std::size_t full = raw / pat.size();
  std::size_t bits = full * kept_per_period;
  for (std::size_t i = full * pat.size(); i < raw; ++i) bits += static_cast<std::size_t>(pat[i % pat.size()]);
  return bits;
}

util::Bytes ConvolutionalCodec::encode(std::span<const std::uint8_t> data) const {
  std::vector<std::uint8_t> raw;
  raw.reserve(data.size() * 16 + 32);
  raw_encode_bits(data, raw);

  const auto pat = puncture_pattern();
  util::BitWriter bw;
  for (std::size_t i = 0; i < raw.size(); ++i) {
    if (pat[i % pat.size()]) bw.bit(raw[i]);
  }
  return bw.take();
}

util::Bytes ConvolutionalCodec::decode_soft(std::span<const float> soft,
                                            std::size_t payload_bytes) const {
  const std::size_t in_bits = payload_bytes * 8 + static_cast<std::size_t>(k_ - 1);
  const auto pat = puncture_pattern();

  // De-puncture into per-step (out0, out1) soft pairs; punctured positions
  // become 0.5 (no information).
  std::vector<float> pairs(in_bits * 2, 0.5f);
  std::size_t soft_idx = 0;
  for (std::size_t i = 0; i < in_bits * 2; ++i) {
    if (pat[i % pat.size()]) {
      pairs[i] = soft_idx < soft.size() ? soft[soft_idx] : 0.5f;
      ++soft_idx;
    }
  }

  constexpr float kInf = std::numeric_limits<float>::max() / 4;
  std::vector<float> metric(static_cast<std::size_t>(num_states_), kInf);
  std::vector<float> next_metric(static_cast<std::size_t>(num_states_), kInf);
  metric[0] = 0.0f;  // encoder starts in state 0

  // Survivor storage: transitioning prev -> next with input bit b gives
  // next = ((prev << 1) | b) & mask, so b == (next & 1) and prev is fully
  // determined by next plus prev's evicted MSB. One evicted bit per
  // (step, state) is all the traceback needs.
  std::vector<std::uint8_t> survivors(in_bits * static_cast<std::size_t>(num_states_));

  const std::uint32_t state_mask = static_cast<std::uint32_t>(num_states_ - 1);
  for (std::size_t step = 0; step < in_bits; ++step) {
    const float s0 = pairs[step * 2];
    const float s1 = pairs[step * 2 + 1];
    std::fill(next_metric.begin(), next_metric.end(), kInf);
    std::uint8_t* surv = survivors.data() + step * static_cast<std::size_t>(num_states_);
    for (int state = 0; state < num_states_; ++state) {
      const float base = metric[static_cast<std::size_t>(state)];
      if (base >= kInf) continue;
      for (int bit = 0; bit < 2; ++bit) {
        const Branch& br = branches_[(static_cast<std::size_t>(state) << 1) | static_cast<std::size_t>(bit)];
        // Branch metric: L1 distance between expected and observed soft bits.
        const float m = base + std::fabs(s0 - static_cast<float>(br.out0)) +
                        std::fabs(s1 - static_cast<float>(br.out1));
        const std::uint32_t ns = ((static_cast<std::uint32_t>(state) << 1) | static_cast<std::uint32_t>(bit)) & state_mask;
        if (m < next_metric[ns]) {
          next_metric[ns] = m;
          surv[ns] = static_cast<std::uint8_t>((state >> (k_ - 2)) & 1);  // evicted MSB of prev
        }
      }
    }
    metric.swap(next_metric);
  }

  // Traceback from state 0 (guaranteed by the K-1 flush bits).
  std::uint32_t state = 0;
  util::Bytes out(payload_bytes, 0);
  std::vector<std::uint8_t> bits(in_bits);
  for (std::size_t step = in_bits; step-- > 0;) {
    bits[step] = static_cast<std::uint8_t>(state & 1);  // the input bit that produced `state`
    const std::uint32_t evicted = survivors[step * static_cast<std::size_t>(num_states_) + state];
    state = (state >> 1) | (evicted << (k_ - 2));
  }

  for (std::size_t i = 0; i < payload_bytes * 8; ++i) {
    if (bits[i]) out[i / 8] |= static_cast<std::uint8_t>(1u << (7 - i % 8));
  }
  return out;
}

util::Bytes ConvolutionalCodec::decode_hard(std::span<const std::uint8_t> packed_bits,
                                            std::size_t payload_bytes) const {
  const std::size_t nbits = encoded_bits(payload_bytes);
  std::vector<float> soft(nbits, 0.5f);
  util::BitReader br(packed_bits);
  for (std::size_t i = 0; i < nbits && br.bits_remaining() > 0; ++i) {
    soft[i] = static_cast<float>(br.bit());
  }
  return decode_soft(soft, payload_bytes);
}

}  // namespace sonic::fec
