#include "fec/fountain.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstring>
#include <deque>
#include <stdexcept>

#include "fec/reed_solomon.hpp"
#include "util/rng.hpp"

namespace sonic::fec {
namespace {

constexpr std::uint64_t kFountainSalt = 0x464f554e5441494eull;  // "FOUNTAIN"

// Sanity bound on repair_seq so a corrupt value cannot make the dedup
// bitmap allocate unbounded memory. The wire carries a u16 anyway.
constexpr std::uint32_t kMaxRepairSeq = 1u << 20;

// GF(2^8) has 255 usable evaluation points here (0..254); MDS mode needs
// at least one of them left over for repair symbols.
constexpr std::size_t kMdsPointLimit = 254;

FountainParams clamp_params(FountainParams p) {
  p.mds_max_k = std::min(p.mds_max_k, kMdsPointLimit);
  return p;
}

std::size_t mds_repair_points(std::size_t k) { return 255 - k; }

// Robust-soliton CDF over degrees 1..k (Luby '02): ideal soliton rho plus
// the spike/tail tau that keeps the expected ripple above sqrt(k).
std::vector<double> robust_soliton_cdf(std::size_t k, const FountainParams& p) {
  const double kd = static_cast<double>(k);
  const double R = std::max(1.0, p.c * std::log(kd / p.delta) * std::sqrt(kd));
  const std::size_t spike = std::min<std::size_t>(
      k, std::max<std::size_t>(1, static_cast<std::size_t>(std::llround(kd / R))));
  std::vector<double> w(k + 1, 0.0);
  for (std::size_t d = 1; d <= k; ++d) {
    const double dd = static_cast<double>(d);
    double rho = d == 1 ? 1.0 / kd : 1.0 / (dd * (dd - 1.0));
    double tau = 0.0;
    if (d < spike) {
      tau = R / (dd * kd);
    } else if (d == spike) {
      tau = R * std::log(R / p.delta) / kd;
      if (!(tau > 0.0)) tau = 0.0;  // R < delta on tiny k
    }
    w[d] = rho + tau;
  }
  double total = 0.0;
  for (std::size_t d = 1; d <= k; ++d) total += w[d];
  std::vector<double> cdf(k + 1, 0.0);
  double acc = 0.0;
  for (std::size_t d = 1; d <= k; ++d) {
    acc += w[d] / total;
    cdf[d] = acc;
  }
  cdf[k] = 1.0;
  return cdf;
}

std::size_t sample_degree(const std::vector<double>& cdf, double u) {
  const auto it = std::lower_bound(cdf.begin() + 1, cdf.end(), u);
  return static_cast<std::size_t>(it - cdf.begin());
}

}  // namespace

void xor_into(util::Bytes& dst, std::span<const std::uint8_t> src) {
  std::uint8_t* d = dst.data();
  const std::uint8_t* s = src.data();
  const std::size_t n = dst.size();
  // memcpy-based uint64 loads/stores: well-defined at any alignment, and the
  // compiler lowers the loop to full-width vector XORs.
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    std::uint64_t a, b;
    std::memcpy(&a, d + i, 8);
    std::memcpy(&b, s + i, 8);
    a ^= b;
    std::memcpy(d + i, &a, 8);
  }
  for (; i < n; ++i) d[i] ^= s[i];
}

void xor_into_reference(util::Bytes& dst, std::span<const std::uint8_t> src) {
  for (std::size_t i = 0; i < dst.size(); ++i) dst[i] ^= src[i];
}

std::vector<std::uint32_t> fountain_neighbors(std::uint32_t page_id, std::uint32_t repair_seq,
                                              std::size_t k, const FountainParams& params) {
  if (k == 0) return {};
  util::Rng rng = util::Rng(kFountainSalt ^ page_id).fork(repair_seq);

  // Most symbols are dense (degree ~ k/2): each dense equation among the
  // excess symbols halves the residual system's null space, so rank
  // failures decay geometrically with overhead at any loss rate. Every
  // soliton_every-th symbol instead draws a robust-soliton degree, keeping
  // a peelable low-degree ripple in the stream.
  const bool dense = k > 2 && !(params.soliton_every > 0 &&
                                repair_seq % params.soliton_every == 0);
  std::size_t degree;
  if (dense) {
    degree = k / 2 + rng.uniform_int(2);
  } else {
    degree = sample_degree(robust_soliton_cdf(k, params), rng.uniform());
  }
  degree = std::clamp<std::size_t>(degree, 1, k);

  // The forced member repair_seq % k is the cyclic coverage walk: any k
  // consecutive repair symbols touch every source block, so no loss pattern
  // can leave a block outside every received equation for long.
  std::vector<std::uint32_t> picked{static_cast<std::uint32_t>(repair_seq % k)};
  std::vector<std::uint8_t> used(k, 0);
  used[picked.front()] = 1;
  while (picked.size() < degree) {
    const auto candidate = static_cast<std::uint32_t>(rng.uniform_int(k));
    if (!used[candidate]) {
      used[candidate] = 1;
      picked.push_back(candidate);
    }
  }
  std::sort(picked.begin(), picked.end());
  return picked;
}

FountainEncoder::FountainEncoder(std::uint32_t page_id, std::vector<util::Bytes> blocks,
                                 FountainParams params)
    : page_id_(page_id), blocks_(std::move(blocks)), params_(clamp_params(params)) {
  if (blocks_.empty()) throw std::invalid_argument("FountainEncoder needs at least one block");
  block_size_ = blocks_.front().size();
  for (const util::Bytes& b : blocks_) {
    if (b.size() != block_size_) {
      throw std::invalid_argument("FountainEncoder blocks must all be the same size");
    }
  }
  if (mds_mode()) {
    // Lagrange denominators over the source points 0..k-1:
    // D_i = prod_{j != i} (i - j), with subtraction = XOR in GF(2^8).
    const GF256& gf = GF256::instance();
    const std::size_t k = blocks_.size();
    lagrange_denom_.resize(k, 1);
    for (std::size_t i = 0; i < k; ++i) {
      std::uint8_t d = 1;
      for (std::size_t j = 0; j < k; ++j) {
        if (j != i) d = gf.mul(d, static_cast<std::uint8_t>(i ^ j));
      }
      lagrange_denom_[i] = d;
    }
  }
}

std::size_t FountainEncoder::distinct_repair_symbols() const {
  return mds_mode() ? mds_repair_points(blocks_.size()) : kMaxRepairSeq;
}

util::Bytes FountainEncoder::repair_symbol(std::uint32_t repair_seq) const {
  const std::size_t k = blocks_.size();
  util::Bytes out(block_size_, 0);
  if (mds_mode()) {
    // Evaluate the interpolating polynomial (degree < k through the source
    // blocks at points 0..k-1) at repair point p — bytewise, one polynomial
    // per byte column, but the Lagrange coefficients are shared:
    //   L_i(p) = N(p) / ((p - i) * D_i),  N(p) = prod_j (p - j).
    const GF256& gf = GF256::instance();
    const auto p = static_cast<std::uint8_t>(k + repair_seq % mds_repair_points(k));
    std::uint8_t numer = 1;
    for (std::size_t j = 0; j < k; ++j) numer = gf.mul(numer, static_cast<std::uint8_t>(p ^ j));
    for (std::size_t i = 0; i < k; ++i) {
      const std::uint8_t coeff =
          gf.div(gf.div(numer, static_cast<std::uint8_t>(p ^ i)), lagrange_denom_[i]);
      const util::Bytes& src = blocks_[i];
      for (std::size_t b = 0; b < block_size_; ++b) out[b] ^= gf.mul(coeff, src[b]);
    }
    return out;
  }
  for (std::uint32_t n : fountain_neighbors(page_id_, repair_seq, k, params_)) {
    xor_into(out, blocks_[n]);
  }
  return out;
}

FountainDecoder::FountainDecoder(std::uint32_t page_id, std::size_t k, std::size_t block_size,
                                 FountainParams params)
    : page_id_(page_id),
      k_(k),
      block_size_(block_size),
      params_(clamp_params(params)),
      blocks_(k),
      known_(k, 0) {
  if (mds_mode()) {
    point_known_.assign(255, 0);
    point_value_.resize(255);
  } else {
    by_unknown_.resize(k);
  }
}

bool FountainDecoder::has_block(std::size_t index) const {
  return index < k_ && known_[index] != 0;
}

void FountainDecoder::learn(std::size_t index, util::Bytes value, bool via_ge) {
  // Worklist cascade: committing one block can release degree-1 equations,
  // whose blocks release more. Kept iterative so a long ripple on a
  // 400-frame page cannot overflow the stack.
  std::deque<std::pair<std::size_t, util::Bytes>> pending;
  pending.emplace_back(index, std::move(value));
  bool first = true;
  while (!pending.empty()) {
    auto [i, v] = std::move(pending.front());
    pending.pop_front();
    if (known_[i]) continue;
    known_[i] = 1;
    blocks_[i] = std::move(v);
    ++decoded_count_;
    if (!first) {
      ++peeled_;
    } else if (via_ge) {
      ++eliminated_;
    }
    first = false;
    for (std::uint32_t id : by_unknown_[i]) {
      Equation& eq = equations_[id];
      if (eq.spent) continue;
      const auto it = std::lower_bound(eq.unknowns.begin(), eq.unknowns.end(),
                                       static_cast<std::uint32_t>(i));
      if (it == eq.unknowns.end() || *it != i) continue;
      eq.unknowns.erase(it);
      xor_into(eq.value, blocks_[i]);
      if (eq.unknowns.size() == 1) {
        eq.spent = true;
        pending.emplace_back(eq.unknowns.front(), std::move(eq.value));
      } else if (eq.unknowns.empty()) {
        eq.spent = true;
      }
    }
    by_unknown_[i].clear();
  }
}

bool FountainDecoder::add_source(std::size_t index, std::span<const std::uint8_t> block) {
  if (index >= k_ || block.size() != block_size_ || known_[index]) return false;
  ++sources_received_;
  if (mds_mode()) {
    point_known_[index] = 1;
    point_value_[index] = util::Bytes(block.begin(), block.end());
    point_order_.push_back(static_cast<std::uint8_t>(index));
    blocks_[index] = point_value_[index];
    known_[index] = 1;
    ++decoded_count_;
    if (!decoded() && point_order_.size() >= k_) mds_interpolate();
    return true;
  }
  learn(index, util::Bytes(block.begin(), block.end()), false);
  return true;
}

bool FountainDecoder::add_repair(std::uint32_t repair_seq, std::span<const std::uint8_t> symbol) {
  if (symbol.size() != block_size_ || repair_seq >= kMaxRepairSeq || k_ == 0) return false;
  if (mds_mode()) {
    // Dedup by evaluation point: wrapped repair seqs carry identical bytes.
    const std::size_t p = k_ + repair_seq % mds_repair_points(k_);
    if (point_known_[p]) return false;
    point_known_[p] = 1;
    point_value_[p] = util::Bytes(symbol.begin(), symbol.end());
    point_order_.push_back(static_cast<std::uint8_t>(p));
    ++repairs_received_;
    if (!decoded() && point_order_.size() >= k_) mds_interpolate();
    return true;
  }
  if (repair_seq < seen_repair_.size() && seen_repair_[repair_seq]) return false;
  if (repair_seq >= seen_repair_.size()) seen_repair_.resize(repair_seq + 1, 0);
  seen_repair_[repair_seq] = 1;
  ++repairs_received_;

  util::Bytes value(symbol.begin(), symbol.end());
  std::vector<std::uint32_t> unknowns;
  for (std::uint32_t n : fountain_neighbors(page_id_, repair_seq, k_, params_)) {
    if (known_[n]) {
      xor_into(value, blocks_[n]);
    } else {
      unknowns.push_back(n);
    }
  }
  if (unknowns.empty()) return true;  // redundant, but a valid new symbol
  if (unknowns.size() == 1) {
    // Pretend it peeled: a degree-1 arrival is the ripple in action.
    const std::size_t before = decoded_count_;
    learn(unknowns.front(), std::move(value), false);
    if (decoded_count_ > before) ++peeled_;
    return true;
  }
  const auto id = static_cast<std::uint32_t>(equations_.size());
  for (std::uint32_t n : unknowns) by_unknown_[n].push_back(id);
  equations_.push_back(Equation{std::move(unknowns), std::move(value), false});
  return true;
}

void FountainDecoder::mds_interpolate() {
  // Any k distinct points determine the degree-<k polynomial; recover each
  // missing source point m by Lagrange interpolation over the first k
  // received points S: block[m] = sum_{j in S} L_j^S(m) * value[j].
  const GF256& gf = GF256::instance();
  std::span<const std::uint8_t> s(point_order_.data(), k_);

  // D_j = prod_{s in S, s != j} (j - s), shared across every missing m.
  std::vector<std::uint8_t> denom(k_, 1);
  for (std::size_t a = 0; a < k_; ++a) {
    std::uint8_t d = 1;
    for (std::size_t b = 0; b < k_; ++b) {
      if (b != a) d = gf.mul(d, static_cast<std::uint8_t>(s[a] ^ s[b]));
    }
    denom[a] = d;
  }

  for (std::size_t m = 0; m < k_; ++m) {
    if (known_[m]) continue;
    // m is not in S (it was never received), so every factor is nonzero.
    std::uint8_t numer = 1;
    for (std::size_t a = 0; a < k_; ++a) {
      numer = gf.mul(numer, static_cast<std::uint8_t>(m ^ s[a]));
    }
    util::Bytes out(block_size_, 0);
    for (std::size_t a = 0; a < k_; ++a) {
      const std::uint8_t coeff =
          gf.div(gf.div(numer, static_cast<std::uint8_t>(m ^ s[a])), denom[a]);
      const util::Bytes& src = point_value_[s[a]];
      for (std::size_t b = 0; b < block_size_; ++b) out[b] ^= gf.mul(coeff, src[b]);
    }
    blocks_[m] = std::move(out);
    known_[m] = 1;
    ++decoded_count_;
    ++interpolated_;
  }
}

std::size_t FountainDecoder::frames_needed() const {
  if (decoded()) return 0;
  if (mds_mode()) return k_ - point_order_.size();
  std::vector<std::uint8_t> covered(k_, 0);
  for (const Equation& eq : equations_) {
    if (eq.spent) continue;
    for (std::uint32_t n : eq.unknowns) covered[n] = 1;
  }
  std::size_t uncovered = 0;
  for (std::size_t i = 0; i < k_; ++i) {
    if (!known_[i] && !covered[i]) ++uncovered;
  }
  return std::max<std::size_t>(1, uncovered);
}

bool FountainDecoder::complete() {
  if (decoded()) return true;
  if (mds_mode()) return false;  // MDS decodes eagerly on the k-th symbol
  gaussian_fallback();
  return decoded();
}

bool FountainDecoder::gaussian_fallback() {
  const std::size_t u = k_ - decoded_count_;
  if (u == 0) return true;
  if (u > params_.max_ge_unknowns) return false;

  // Map unknown source index -> dense column.
  std::vector<std::uint32_t> unknown_of_col;
  std::vector<std::int32_t> col_of(k_, -1);
  for (std::size_t i = 0; i < k_; ++i) {
    if (!known_[i]) {
      col_of[i] = static_cast<std::int32_t>(unknown_of_col.size());
      unknown_of_col.push_back(static_cast<std::uint32_t>(i));
    }
  }

  struct Row {
    std::vector<std::uint64_t> bits;
    util::Bytes value;
  };
  const std::size_t words = (u + 63) / 64;
  std::vector<Row> rows;
  for (const Equation& eq : equations_) {
    if (eq.spent || eq.unknowns.empty()) continue;
    Row row{std::vector<std::uint64_t>(words, 0), eq.value};
    for (std::uint32_t n : eq.unknowns) {
      const auto col = static_cast<std::size_t>(col_of[n]);
      row.bits[col / 64] |= 1ull << (col % 64);
    }
    rows.push_back(std::move(row));
  }
  if (rows.empty()) return false;

  // Gauss-Jordan over GF(2): after full reduction, any row with exactly one
  // remaining bit pins down one source block.
  std::size_t pivot_row = 0;
  for (std::size_t col = 0; col < u && pivot_row < rows.size(); ++col) {
    const std::size_t word = col / 64;
    const std::uint64_t mask = 1ull << (col % 64);
    std::size_t found = rows.size();
    for (std::size_t r = pivot_row; r < rows.size(); ++r) {
      if (rows[r].bits[word] & mask) {
        found = r;
        break;
      }
    }
    if (found == rows.size()) continue;
    std::swap(rows[pivot_row], rows[found]);
    for (std::size_t r = 0; r < rows.size(); ++r) {
      if (r == pivot_row || !(rows[r].bits[word] & mask)) continue;
      for (std::size_t w = 0; w < words; ++w) rows[r].bits[w] ^= rows[pivot_row].bits[w];
      xor_into(rows[r].value, rows[pivot_row].value);
    }
    ++pivot_row;
  }

  bool progress = false;
  for (Row& row : rows) {
    int popcount = 0;
    std::size_t col = 0;
    for (std::size_t w = 0; w < words && popcount <= 1; ++w) {
      std::uint64_t bits = row.bits[w];
      while (bits) {
        const int bit = std::countr_zero(bits);
        bits &= bits - 1;
        col = w * 64 + static_cast<std::size_t>(bit);
        ++popcount;
        if (popcount > 1) break;
      }
    }
    if (popcount != 1) continue;
    const std::uint32_t source = unknown_of_col[col];
    if (known_[source]) continue;  // solved earlier in this loop via cascade
    learn(source, std::move(row.value), true);
    progress = true;
  }
  return progress;
}

}  // namespace sonic::fec
