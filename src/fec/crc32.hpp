// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) — the checksum the
// paper's transmission profile attaches to every SONIC frame (§3.3).
#pragma once

#include <cstdint>
#include <span>

namespace sonic::fec {

// One-shot CRC of a buffer.
std::uint32_t crc32(std::span<const std::uint8_t> data);

// Incremental interface for streaming use.
class Crc32 {
 public:
  void update(std::span<const std::uint8_t> data);
  void update(std::uint8_t byte);
  std::uint32_t value() const { return state_ ^ 0xffffffffu; }
  void reset() { state_ = 0xffffffffu; }

 private:
  std::uint32_t state_ = 0xffffffffu;
};

}  // namespace sonic::fec
