// Block interleaver. OFDM symbol errors arrive in bursts (a faded symbol
// corrupts many adjacent coded bits); interleaving spreads each burst across
// the Viterbi decoder's input so the inner code sees near-independent errors.
#pragma once

#include <cstdint>
#include <span>

#include "util/bytes.hpp"

namespace sonic::fec {

class BlockInterleaver {
 public:
  // rows x cols byte matrix; written row-major, read column-major.
  BlockInterleaver(int rows, int cols);

  // Interleaves `data`, padding the final partial block with zeros.
  // Output size is data.size() rounded up to a multiple of rows*cols.
  util::Bytes interleave(std::span<const std::uint8_t> data) const;

  // Inverse permutation. `original_size` trims the padding added above.
  util::Bytes deinterleave(std::span<const std::uint8_t> data, std::size_t original_size) const;

  std::size_t block_size() const { return static_cast<std::size_t>(rows_) * static_cast<std::size_t>(cols_); }

 private:
  int rows_;
  int cols_;
};

}  // namespace sonic::fec
