// Rateless repair coding over a page's fixed-size frames — the fountain
// layer of the broadcast carousel.
//
// A page's k source frames are broadcast as-is (the code is systematic);
// the encoder can then mint an effectively endless stream of *repair
// symbols*, each derived deterministically from (page_id, repair_seq), so
// encoder and decoder agree on every symbol's composition with zero
// signaling — a repair frame only carries its repair_seq. A receiver
// converges to the full page from ANY mix of source and repair symbols
// totalling slightly more than k, regardless of which frames it lost or
// when it tuned in: exactly the property a cyclic catalog broadcast needs,
// because downlink-only users cannot ask for retransmissions.
//
// Two regimes, switched on k (FountainParams::mds_max_k):
//
//  * k <= mds_max_k — MDS mode. Repair symbol r is the Reed-Solomon
//    extension of the page: the unique degree-<k polynomial through the
//    source blocks (point i holds block i) evaluated at point k + r mod
//    (255 - k), over the same GF(2^8) as the modem's rs8 outer code. ANY k
//    distinct symbols reconstruct the page — zero reception overhead, and
//    the guarantee is deterministic, which matters most on small pages
//    where "k plus a couple" is all the 8 % overhead budget allows.
//    Repair seqs wrap modulo the 255 - k available evaluation points;
//    wrapped duplicates are deduplicated at the receiver.
//
//  * k > mds_max_k — LT mode, a systematic Luby-Transform-style code.
//    Repair symbol r XORs a pseudo-random neighbor set of source blocks
//    seeded by (page_id, r); symbols are either *soliton* (degree drawn
//    from the robust-soliton distribution — cheap to decode by peeling) or
//    *dense* (degree ~ k/2 — each excess dense equation halves the
//    residual system's null space, so decode failure decays as 2^-excess
//    for ANY loss pattern), mixed per FountainParams::soliton_every.
//    Decoding is belief-propagation peeling (release degree-1 equations,
//    substitute, cascade) with a bounded Gaussian-elimination fallback
//    over the residual system. Symbol r also force-includes source index
//    r mod k — a cyclic coverage walk, so any k consecutive repair symbols
//    touch every source block. The default stream is all dense: measured
//    failure rates for soliton mixes at the carousel's 8 % overhead target
//    are tabulated in DESIGN.md.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "util/bytes.hpp"

namespace sonic::fec {

struct FountainParams {
  // Robust-soliton knobs (Luby '02): R = c * ln(k/delta) * sqrt(k).
  double c = 0.1;
  double delta = 0.5;
  // Largest k decoded in MDS (Reed-Solomon extension) mode. Must leave
  // enough GF(2^8) evaluation points for repair: k + repairs <= 255.
  std::size_t mds_max_k = 170;
  // In LT mode every soliton_every-th repair symbol draws its degree from
  // the robust-soliton distribution (cheap to decode by peeling); the rest
  // are dense (degree ~ k/2), which pins the residual system's rank in the
  // GE fallback. 0 = all dense, 1 = all soliton (classic LT). The default
  // is all dense: at the carousel's 8 % reception-overhead target the
  // excess-symbol budget is too small for soliton equations to close the
  // residual rank at mid/high loss (measured in DESIGN.md), while dense
  // symbols fail only with probability ~2^-excess for ANY loss pattern.
  // Peeling still decodes the cheap systematic regime either way.
  std::uint32_t soliton_every = 0;
  // GE fallback refuses residual systems with more unknowns than this
  // (caps the O(u^3) worst case; peeling still finishes given more input).
  std::size_t max_ge_unknowns = 2048;

  bool operator==(const FountainParams&) const = default;
};

// XOR-accumulate src into dst over dst.size() bytes (src must be at least
// as long) — the inner loop of LT repair-row generation and of BP/GE
// elimination. Word-wide: 8 bytes per uint64 step with a scalar tail,
// correct for any alignment and length. xor_into_reference is the
// byte-at-a-time loop, kept for the kernel-equivalence tests and as the
// before-case of bench/micro_dsp_fec.
void xor_into(util::Bytes& dst, std::span<const std::uint8_t> src);
void xor_into_reference(util::Bytes& dst, std::span<const std::uint8_t> src);

// LT-mode neighbor set (sorted, distinct source indices in [0, k)) of
// repair symbol `repair_seq` for a k-block page. Shared by encoder and
// decoder; exposed for tests and diagnostics.
std::vector<std::uint32_t> fountain_neighbors(std::uint32_t page_id, std::uint32_t repair_seq,
                                              std::size_t k, const FountainParams& params = {});

// Server side: owns a copy of the k source blocks (all the same size) and
// mints repair symbols on demand. Stateless across calls — symbol r is the
// same bytes no matter when it is generated, so carousel cycles can resume
// a page's repair stream where the previous cycle stopped.
class FountainEncoder {
 public:
  FountainEncoder(std::uint32_t page_id, std::vector<util::Bytes> blocks,
                  FountainParams params = {});

  std::size_t k() const { return blocks_.size(); }
  std::size_t block_size() const { return block_size_; }
  std::uint32_t page_id() const { return page_id_; }
  bool mds_mode() const { return blocks_.size() <= params_.mds_max_k; }
  // Distinct repair symbols before the stream repeats (unbounded in LT
  // mode up to the wire's repair_seq range).
  std::size_t distinct_repair_symbols() const;

  // block_size() bytes of repair symbol `repair_seq`.
  util::Bytes repair_symbol(std::uint32_t repair_seq) const;

 private:
  std::uint32_t page_id_;
  std::vector<util::Bytes> blocks_;
  std::size_t block_size_ = 0;
  FountainParams params_;
  std::vector<std::uint8_t> lagrange_denom_;  // MDS mode: D_i = prod_{j!=i} (i ^ j)
};

// Receiver side: accepts any mix of source blocks (by source index) and
// repair symbols (by repair_seq), decodes incrementally, and reports
// progress. All inputs must be block_size bytes; wrong-sized, out-of-range
// or duplicate symbols are rejected (return false).
class FountainDecoder {
 public:
  FountainDecoder(std::uint32_t page_id, std::size_t k, std::size_t block_size,
                  FountainParams params = {});

  // True when the symbol was new, well-formed, and accepted.
  bool add_source(std::size_t index, std::span<const std::uint8_t> block);
  bool add_repair(std::uint32_t repair_seq, std::span<const std::uint8_t> symbol);

  // All k source blocks recovered? decoded() is the pure query; complete()
  // also attempts the GE fallback over pending LT equations first (MDS
  // mode decodes eagerly and never needs it).
  bool decoded() const { return decoded_count_ == k_; }
  bool complete();

  std::size_t k() const { return k_; }
  std::size_t block_size() const { return block_size_; }
  std::size_t decoded_count() const { return decoded_count_; }
  // Lower-bound estimate of additional symbols (any kind) still required:
  // 0 once decoded; in MDS mode exactly k minus the distinct symbols held.
  std::size_t frames_needed() const;
  // Distinct accepted symbols so far (sources + repairs).
  std::size_t symbols_received() const { return sources_received_ + repairs_received_; }
  std::size_t sources_received() const { return sources_received_; }
  std::size_t repairs_received() const { return repairs_received_; }
  // Blocks recovered by each decoding stage (diagnostics/metrics): peeling
  // cascade, GE fallback, and MDS interpolation respectively.
  std::size_t peeled() const { return peeled_; }
  std::size_t eliminated() const { return eliminated_; }
  std::size_t interpolated() const { return interpolated_; }

  bool has_block(std::size_t index) const;
  // Valid once has_block(index); block_size() bytes.
  const util::Bytes& block(std::size_t index) const { return blocks_[index]; }

 private:
  struct Equation {
    std::vector<std::uint32_t> unknowns;  // sorted source indices not yet known
    util::Bytes value;                    // symbol XOR all known neighbors
    bool spent = false;
  };

  bool mds_mode() const { return k_ <= params_.mds_max_k; }
  void learn(std::size_t index, util::Bytes value, bool via_ge);
  bool gaussian_fallback();
  void mds_interpolate();

  std::uint32_t page_id_;
  std::size_t k_;
  std::size_t block_size_;
  FountainParams params_;

  std::vector<util::Bytes> blocks_;  // decoded source blocks; empty = unknown
  std::vector<std::uint8_t> known_;
  std::size_t decoded_count_ = 0;
  std::size_t sources_received_ = 0;
  std::size_t repairs_received_ = 0;
  std::size_t peeled_ = 0;
  std::size_t eliminated_ = 0;
  std::size_t interpolated_ = 0;

  // LT mode state.
  std::vector<Equation> equations_;
  std::vector<std::vector<std::uint32_t>> by_unknown_;  // source -> equation ids
  std::vector<std::uint8_t> seen_repair_;               // dedup by repair_seq

  // MDS mode state: received values by evaluation point (0..k-1 sources,
  // k..254 repair), in arrival order.
  std::vector<std::uint8_t> point_known_;
  std::vector<util::Bytes> point_value_;
  std::vector<std::uint8_t> point_order_;
};

}  // namespace sonic::fec
