// Block layout engine: renders parsed HTML into the 1080-px-wide raster
// images SONIC broadcasts (§3.2), and extracts the click map — the <x,y>
// regions where hyperlinks live — that gives the static screenshot its
// interactivity (the DRIVESHAFT-style mechanism the paper adopts).
#pragma once

#include <string>
#include <vector>

#include "image/raster.hpp"
#include "web/html.hpp"

namespace sonic::web {

struct ClickRegion {
  int x = 0, y = 0, w = 0, h = 0;
  std::string href;

  bool contains(int px, int py) const {
    return px >= x && px < x + w && py >= y && py < y + h;
  }
};

struct RenderResult {
  image::Raster image;
  std::vector<ClickRegion> click_map;
  int full_height = 0;  // layout height before the PH crop
};

struct LayoutParams {
  int width = 1080;       // §3.2: images are created 1080 px wide
  int max_height = 10000; // §3.2: PH cap; 0 = unlimited ("PH: none")
  int margin = 24;
  int text_scale = 2;     // body text: 5x7 glyphs at 2x

  // Compact fingerprint of every knob that changes the rendered raster —
  // part of the broadcast pipeline's render-cache key.
  std::string fingerprint() const;

  bool operator==(const LayoutParams&) const = default;
};

RenderResult render_html(const Node& root, const LayoutParams& params = {});
RenderResult render_html(const std::string& html, const LayoutParams& params = {});

// Client-side §3.2 resize: scales the image by device_width / image width
// and rescales the click map coordinates with the same factor.
RenderResult scale_for_device(const RenderResult& page, int device_width);

// Returns the href of the topmost click region containing (x, y), or empty.
std::string hit_test(const std::vector<ClickRegion>& map, int x, int y);

}  // namespace sonic::web
