// 5x7 bitmap font used by the layout engine to raster text. Glyph shapes
// are defined as ASCII art in font.cpp; lowercase letters reuse the
// uppercase shapes (small-caps rendering), which is sufficient for
// readability experiments at webpage scale.
#pragma once

#include <cstdint>

#include "image/raster.hpp"

namespace sonic::web {

constexpr int kGlyphWidth = 5;
constexpr int kGlyphHeight = 7;

// Returns the 7 rows (bits 4..0 = left..right pixels) for an ASCII char.
// Unsupported characters render as a hollow box.
const std::uint8_t* glyph_rows(char c);

// Draws a character at (x, y) scaled by `scale`.
void draw_glyph(image::Raster& img, char c, int x, int y, int scale, image::Rgb color);

// Draws a string; returns the advance width in pixels. Spacing is one
// glyph-column per character.
int draw_text(image::Raster& img, const std::string& text, int x, int y, int scale,
              image::Rgb color);

// Advance width of a string at `scale` without drawing.
int text_width(const std::string& text, int scale);
inline int text_height(int scale) { return kGlyphHeight * scale; }

}  // namespace sonic::web
