#include "web/corpus.hpp"

#include <sstream>

#include "util/rng.hpp"

namespace sonic::web {
namespace {

using sonic::util::Rng;

const char* kSyllables[] = {"kha", "bar", "nama", "dun", "ya",  "awaz", "roz",  "an",  "jang",
                            "dawn", "hum", "geo",  "ary", "sam", "aa",   "bol",  "urd", "u",
                            "pak",  "ist", "tan",  "la",  "hore", "kar", "achi", "mul", "tan"};

const char* kWords[] = {
    "the",     "of",      "and",      "in",      "for",     "on",       "with",    "new",
    "today",   "latest",  "report",   "update",  "minister", "cricket", "match",   "team",
    "price",   "market",  "rupee",    "city",    "lahore",  "karachi",  "islamabad", "punjab",
    "sindh",   "education", "students", "exam",  "result",  "board",    "university", "college",
    "weather", "monsoon", "electricity", "power", "water",  "gas",      "petrol",  "tax",
    "budget",  "economy", "trade",    "export",  "cotton",  "wheat",    "mango",   "festival",
    "eid",     "ramzan",  "series",   "wicket",  "batsman", "bowler",   "captain", "stadium",
    "sale",    "offer",   "discount", "mobile",  "online",  "delivery", "order",   "brand",
    "admission", "scholarship", "degree", "campus", "teacher", "policy", "court",  "ruling",
    "assembly", "senate", "election", "votes",   "party",   "leader",   "speech",  "visit"};

std::string make_word(Rng& rng) {
  if (rng.bernoulli(0.7)) {
    return kWords[rng.uniform_int(std::size(kWords))];
  }
  std::string w;
  const int n = 2 + static_cast<int>(rng.uniform_int(2));
  for (int i = 0; i < n; ++i) w += kSyllables[rng.uniform_int(std::size(kSyllables))];
  return w;
}

std::string make_sentence(Rng& rng, int words) {
  std::string s;
  for (int i = 0; i < words; ++i) {
    std::string w = make_word(rng);
    if (i == 0 && !w.empty()) w[0] = static_cast<char>(std::toupper(static_cast<unsigned char>(w[0])));
    if (i) s += ' ';
    s += w;
  }
  s += '.';
  return s;
}

std::string make_paragraph(Rng& rng, int sentences) {
  std::string p;
  for (int i = 0; i < sentences; ++i) {
    if (i) p += ' ';
    p += make_sentence(rng, 6 + static_cast<int>(rng.uniform_int(12)));
  }
  return p;
}

std::string make_headline(Rng& rng) {
  std::string h;
  const int n = 4 + static_cast<int>(rng.uniform_int(6));
  for (int i = 0; i < n; ++i) {
    std::string w = make_word(rng);
    if (!w.empty()) w[0] = static_cast<char>(std::toupper(static_cast<unsigned char>(w[0])));
    if (i) h += ' ';
    h += w;
  }
  return h;
}

struct CategoryProfile {
  int min_paragraphs, max_paragraphs;  // landing page
  int min_images, max_images;
  double churn_base;    // per-hour change probability (landing)
  const char* banner_color;
};

CategoryProfile profile(SiteCategory cat) {
  // Paragraph/image ranges calibrated so the rendered 1080-px Q10 size
  // distribution matches Fig. 4(b): most pages < 200 KB, tails to ~500 KB.
  switch (cat) {
    case SiteCategory::kNews: return {80, 200, 10, 24, 0.85, "#163a8a"};
    case SiteCategory::kSports: return {65, 165, 10, 21, 0.6, "#0a6e2c"};
    case SiteCategory::kShopping: return {70, 180, 15, 32, 0.35, "#8a1620"};
    case SiteCategory::kEducation: return {32, 100, 4, 10, 0.08, "#5a3a8a"};
    case SiteCategory::kGovernment: return {24, 80, 3, 7, 0.03, "#3a3a3a"};
  }
  return {32, 100, 5, 10, 0.2, "#333333"};
}

// Morning peak factor for churn (Fig. 4(c)'s daily pattern: popular news
// pushed early in the morning, §3.1).
double hour_factor(int epoch_hours) {
  const int hod = epoch_hours % 24;
  if (hod >= 5 && hod <= 10) return 1.3;
  if (hod >= 23 || hod <= 3) return 0.4;
  return 1.0;
}

}  // namespace

const char* category_name(SiteCategory cat) {
  switch (cat) {
    case SiteCategory::kNews: return "news";
    case SiteCategory::kSports: return "sports";
    case SiteCategory::kShopping: return "shopping";
    case SiteCategory::kEducation: return "education";
    case SiteCategory::kGovernment: return "government";
  }
  return "?";
}

PkCorpus::PkCorpus() : PkCorpus(Params{}) {}

PkCorpus::PkCorpus(Params params) : params_(params) {
  Rng rng(params_.seed);
  for (int site = 0; site < params_.num_sites; ++site) {
    Rng site_rng = rng.fork(static_cast<std::uint64_t>(site) + 1);
    std::string domain;
    const int n = 2 + static_cast<int>(site_rng.uniform_int(2));
    for (int i = 0; i < n; ++i) domain += kSyllables[site_rng.uniform_int(std::size(kSyllables))];
    domain += site_rng.bernoulli(0.5) ? ".pk" : ".com.pk";
    domains_.push_back(domain);
    for (int page = 0; page <= params_.internal_per_site; ++page) {
      PageRef ref;
      ref.site = site;
      ref.page = page;
      ref.url = domain + (page == 0 ? "/" : "/story-" + std::to_string(page));
      pages_.push_back(std::move(ref));
    }
  }
}

SiteCategory PkCorpus::category(int site) const {
  return static_cast<SiteCategory>(site % 5);
}

const PageRef* PkCorpus::find(const std::string& url) const {
  std::string needle = url;
  for (const char* prefix : {"https://", "http://", "www."}) {
    if (needle.rfind(prefix, 0) == 0) needle = needle.substr(std::string(prefix).size());
  }
  if (!needle.empty() && needle.back() != '/' && needle.find('/') == std::string::npos) needle += '/';
  for (const PageRef& ref : pages_) {
    if (ref.url == needle) return &ref;
  }
  return nullptr;
}

bool PkCorpus::changed_at(const PageRef& ref, int epoch_hours) const {
  if (epoch_hours <= 0) return true;
  const CategoryProfile prof = profile(category(ref.site));
  double churn = prof.churn_base * hour_factor(epoch_hours);
  if (!ref.landing()) churn *= 0.45;  // internal pages change less often
  Rng rng(params_.seed ^ (static_cast<std::uint64_t>(ref.site) << 32) ^
          (static_cast<std::uint64_t>(ref.page) << 24) ^ static_cast<std::uint64_t>(epoch_hours));
  return rng.bernoulli(std::min(churn, 0.98));
}

int PkCorpus::version(const PageRef& ref, int epoch_hours) const {
  int v = 0;
  for (int e = 0; e <= epoch_hours; ++e) v += changed_at(ref, e);
  return v;
}

std::string PkCorpus::html(const PageRef& ref, int epoch_hours) const {
  const SiteCategory cat = category(ref.site);
  const CategoryProfile prof = profile(cat);
  const int ver = version(ref, epoch_hours);
  Rng rng(params_.seed ^ (static_cast<std::uint64_t>(ref.site) * 0x100000001b3ull) ^
          (static_cast<std::uint64_t>(ref.page) << 40) ^ (static_cast<std::uint64_t>(ver) << 8));

  int paragraphs = prof.min_paragraphs +
                   static_cast<int>(rng.uniform_int(static_cast<std::uint64_t>(
                       prof.max_paragraphs - prof.min_paragraphs + 1)));
  int images = prof.min_images +
               static_cast<int>(rng.uniform_int(static_cast<std::uint64_t>(prof.max_images - prof.min_images + 1)));
  if (!ref.landing()) {
    paragraphs = paragraphs * 2 / 3;
    images = std::max(1, images / 2);
  }
  // A few pages are far longer than the rest: the CDF tails of Fig. 4(b).
  if (rng.bernoulli(0.06)) paragraphs *= 3;

  std::ostringstream os;
  os << "<html><body>";
  os << "<div bgcolor=\"" << prof.banner_color << "\"><h1 color=\"white\">" << domain(ref.site)
     << "</h1><p color=\"white\">" << category_name(cat) << " - edition " << ver << "</p></div>";
  // Navigation bar with internal links (the click-map workload).
  os << "<p>";
  for (int p = 0; p <= params_.internal_per_site; ++p) {
    if (p == ref.page) continue;
    os << "<a href=\"" << domain(ref.site) << (p == 0 ? "/" : "/story-" + std::to_string(p))
       << "\">" << (p == 0 ? "home" : "section " + std::to_string(p)) << "</a> ";
  }
  os << "</p><hr/>";

  for (int i = 0; i < paragraphs; ++i) {
    if (i % 6 == 0) os << "<h2>" << make_headline(rng) << "</h2>";
    if (images > 0 && i % std::max(2, paragraphs / std::max(images, 1)) == 1) {
      const int w = 360 + static_cast<int>(rng.uniform_int(500));
      const int h = 200 + static_cast<int>(rng.uniform_int(260));
      os << "<img src=\"img-" << ref.site << "-" << i << "-" << ver << "\" width=\"" << w
         << "\" height=\"" << h << "\" alt=\"photo\"/>";
      --images;
    }
    // A third of the paragraphs are single-sentence blurbs: real pages are
    // mostly whitespace and short teasers, not walls of text.
    const int sentences = rng.bernoulli(0.35) ? 1 : 2 + static_cast<int>(rng.uniform_int(3));
    os << "<p>" << make_paragraph(rng, sentences) << "</p>";
    if (rng.bernoulli(0.25)) {
      os << "<p><a href=\"" << domain(ref.site) << "/story-"
         << 1 + rng.uniform_int(static_cast<std::uint64_t>(params_.internal_per_site)) << "\">"
         << make_headline(rng) << "</a></p>";
    }
  }
  os << "<hr/><p>(c) " << domain(ref.site) << " - SONIC rendered edition</p>";
  os << "</body></html>";
  return os.str();
}

std::string PkCorpus::search_html(const std::string& query, int epoch_hours) const {
  std::uint64_t qhash = 14695981039346656037ull;
  for (char c : query) qhash = (qhash ^ static_cast<std::uint64_t>(c)) * 1099511628211ull;
  Rng rng(params_.seed ^ qhash ^ (static_cast<std::uint64_t>(epoch_hours / 6) << 8));

  std::ostringstream os;
  os << "<html><body>";
  os << "<div bgcolor=\"#20242c\"><h2 color=\"white\">SONIC search</h2>"
     << "<p color=\"white\">results for: " << query << "</p></div>";
  const int results = 6 + static_cast<int>(rng.uniform_int(5));
  for (int i = 0; i < results; ++i) {
    const auto& ref = pages_[rng.uniform_int(pages_.size())];
    os << "<h3><a href=\"" << ref.url << "\">" << make_headline(rng) << "</a></h3>";
    os << "<p>" << make_sentence(rng, 10 + static_cast<int>(rng.uniform_int(8))) << " "
       << make_sentence(rng, 8 + static_cast<int>(rng.uniform_int(8))) << "</p>";
  }
  os << "<hr/><p>results are broadcast; request any of them via SMS</p>";
  os << "</body></html>";
  return os.str();
}

}  // namespace sonic::web
