#include "web/layout.hpp"

#include <algorithm>
#include <cstdlib>

#include "web/font.hpp"

namespace sonic::web {

std::string LayoutParams::fingerprint() const {
  return "w" + std::to_string(width) + "h" + std::to_string(max_height) + "m" +
         std::to_string(margin) + "s" + std::to_string(text_scale);
}

namespace {

constexpr int kHardHeightCeiling = 40000;

image::Rgb parse_color(const std::string& s, image::Rgb fallback) {
  if (s.size() == 7 && s[0] == '#') {
    auto hex = [&](int i) {
      return static_cast<std::uint8_t>(std::strtol(s.substr(static_cast<std::size_t>(i), 2).c_str(), nullptr, 16));
    };
    return {hex(1), hex(3), hex(5)};
  }
  if (s == "black") return {0, 0, 0};
  if (s == "white") return {255, 255, 255};
  if (s == "red") return {200, 30, 30};
  if (s == "green") return {20, 140, 60};
  if (s == "blue") return {30, 60, 200};
  if (s == "gray" || s == "grey") return {128, 128, 128};
  return fallback;
}

struct Style {
  int scale = 2;
  image::Rgb color{20, 20, 20};
  bool link = false;
  std::string href;
};

class Layouter {
 public:
  Layouter(const LayoutParams& params, bool dry_run)
      : params_(params),
        cap_(params.max_height > 0 ? std::min(params.max_height, kHardHeightCeiling)
                                   : kHardHeightCeiling),
        dry_run_(dry_run),
        image_(dry_run ? image::Raster() : image::Raster(params.width, cap_)) {}

  void run(const Node& root) {
    Style body;
    body.scale = params_.text_scale;
    block(root, body);
    flush_line();
  }

  int used_height() const { return std::min(cursor_y_ + params_.margin / 2, cap_); }
  image::Raster take_image(int height) {
    return image_.cropped_to_height(height);
  }
  std::vector<ClickRegion> take_click_map() { return std::move(click_map_); }

 private:
  struct Word {
    std::string text;
    Style style;
  };

  void block(const Node& node, Style style) {
    for (const Node& child : node.children) {
      if (child.type == Node::Type::kText) {
        inline_text(child.text, style);
        continue;
      }
      const std::string& tag = child.tag;
      if (tag == "script" || tag == "style" || tag == "head") continue;
      if (tag == "br") {
        flush_line();
        continue;
      }
      if (tag == "hr") {
        flush_line();
        vspace(8);
        if (!dry_run_) {
          image_.fill_rect(params_.margin, cursor_y_, params_.width - 2 * params_.margin, 3,
                           image::Rgb{180, 180, 180});
        }
        vspace(11);
        continue;
      }
      if (tag == "img") {
        flush_line();
        draw_image_placeholder(child);
        continue;
      }
      if (tag == "span" || tag == "b" || tag == "i" || tag == "em" || tag == "strong") {
        Style s = style;
        if (const std::string* c = child.attr("color")) s.color = parse_color(*c, s.color);
        block(child, s);
        continue;
      }
      if (tag == "a") {
        Style s = style;
        s.link = true;
        s.color = {30, 60, 200};
        if (const std::string* href = child.attr("href")) s.href = *href;
        link_start(s.href);
        block(child, s);
        link_end();
        continue;
      }
      // Block-level elements.
      flush_line();
      Style s = style;
      int space_before = 6, space_after = 6;
      if (tag == "h1") {
        s.scale = params_.text_scale + 3;
        space_before = 16;
        space_after = 12;
      } else if (tag == "h2") {
        s.scale = params_.text_scale + 2;
        space_before = 14;
        space_after = 10;
      } else if (tag == "h3") {
        s.scale = params_.text_scale + 1;
        space_before = 10;
        space_after = 8;
      } else if (tag == "p") {
        space_before = 20;
        space_after = 20;
      } else if (tag == "li") {
        space_before = 2;
        space_after = 2;
      }
      if (const std::string* c = child.attr("color")) s.color = parse_color(*c, s.color);

      const std::string* bg = child.attr("bgcolor");
      int bg_y0 = 0;
      if (bg && !dry_run_) {
        // Measure the block with a dry-run pass, paint the background, then
        // render for real on top of it.
        Layouter probe(params_, true);
        probe.cursor_y_ = cursor_y_;
        Style ps = s;
        probe.vspace(space_before);
        probe.block_body(child, ps, tag);
        probe.flush_line();
        const int bg_h = std::min(probe.cursor_y_, cap_) - cursor_y_ + space_after;
        bg_y0 = cursor_y_;
        image_.fill_rect(0, bg_y0, params_.width, bg_h, parse_color(*bg, {240, 240, 240}));
      }
      (void)bg_y0;
      vspace(space_before);
      block_body(child, s, tag);
      flush_line();
      vspace(space_after);
    }
  }

  void block_body(const Node& node, Style s, const std::string& tag) {
    if (tag == "li" && !dry_run_) {
      image_.fill_rect(params_.margin, cursor_y_ + 4 * s.scale / 2, 3 * s.scale / 2,
                       3 * s.scale / 2, s.color);
    }
    if (tag == "li") indent_ = params_.margin;
    block(node, s);
    if (tag == "li") indent_ = 0;
  }

  void inline_text(const std::string& text, const Style& style) {
    std::string word;
    for (char c : text) {
      if (c == ' ') {
        if (!word.empty()) place_word(word, style);
        word.clear();
      } else {
        word.push_back(c);
      }
    }
    if (!word.empty()) place_word(word, style);
  }

  void place_word(const std::string& word, const Style& style) {
    const int w = text_width(word, style.scale);
    const int space = (kGlyphWidth + 1) * style.scale;
    const int left = params_.margin + indent_;
    const int right = params_.width - params_.margin;
    if (cursor_x_ > left && cursor_x_ + w > right) new_line();
    if (cursor_x_ == 0) cursor_x_ = left;
    line_height_ = std::max(line_height_, text_height(style.scale) + 2 * style.scale);
    if (cursor_y_ + line_height_ <= cap_) {
      if (!dry_run_) {
        draw_text(image_, word, cursor_x_, cursor_y_, style.scale, style.color);
        if (style.link) {
          image_.fill_rect(cursor_x_, cursor_y_ + text_height(style.scale) + 1, w - space, 1,
                           style.color);
        }
      }
      if (style.link && in_link_) extend_link(cursor_x_, cursor_y_, w - space + space,
                                              text_height(style.scale) + 2);
    }
    cursor_x_ += w + space / 2;
  }

  void draw_image_placeholder(const Node& node) {
    int w = 600, h = 320;
    if (const std::string* ws = node.attr("width")) w = std::max(16, std::atoi(ws->c_str()));
    if (const std::string* hs = node.attr("height")) h = std::max(16, std::atoi(hs->c_str()));
    const int max_w = params_.width - 2 * params_.margin;
    if (w > max_w) {
      h = static_cast<int>(static_cast<long>(h) * max_w / w);
      w = max_w;
    }
    vspace(6);
    if (!dry_run_ && cursor_y_ < cap_) {
      const int x0 = params_.margin;
      image_.fill_rect(x0, cursor_y_, w, h, image::Rgb{210, 214, 220});
      // Photo stand-in seeded by the src string: a smooth two-color
      // gradient with a few soft bands — photograph-like compressibility
      // rather than noise.
      std::uint32_t hash = 2166136261u;
      if (const std::string* src = node.attr("src")) {
        for (char c : *src) hash = (hash ^ static_cast<std::uint32_t>(c)) * 16777619u;
      }
      const image::Rgb top{static_cast<std::uint8_t>(60 + (hash >> 8 & 0x7f)),
                           static_cast<std::uint8_t>(60 + (hash >> 16 & 0x7f)),
                           static_cast<std::uint8_t>(60 + (hash >> 24 & 0x7f))};
      const image::Rgb bottom{static_cast<std::uint8_t>(160 + (hash & 0x3f)),
                              static_cast<std::uint8_t>(140 + (hash >> 4 & 0x3f)),
                              static_cast<std::uint8_t>(120 + (hash >> 10 & 0x3f))};
      const int y_limit = std::min(h, image_.height() - cursor_y_);
      const int band0 = h / 4 + static_cast<int>(hash % 16);
      for (int yy = 0; yy < y_limit; ++yy) {
        const int t = h > 1 ? yy * 255 / (h - 1) : 0;
        image::Rgb c{static_cast<std::uint8_t>((top.r * (255 - t) + bottom.r * t) / 255),
                     static_cast<std::uint8_t>((top.g * (255 - t) + bottom.g * t) / 255),
                     static_cast<std::uint8_t>((top.b * (255 - t) + bottom.b * t) / 255)};
        // Two horizontal "subject" bands with a different tint.
        if ((yy > band0 && yy < band0 + h / 6) || (yy > h / 2 && yy < h / 2 + h / 8)) {
          c.r = static_cast<std::uint8_t>(255 - c.r / 2);
          c.g = static_cast<std::uint8_t>(c.g / 2 + 40);
        }
        for (int xx = 0; xx < w && x0 + xx < image_.width(); ++xx) {
          image_.at(x0 + xx, cursor_y_ + yy) = c;
        }
      }
      if (const std::string* alt = node.attr("alt")) {
        draw_text(image_, *alt, x0 + 8, cursor_y_ + 8, 2, image::Rgb{80, 80, 80});
      }
    }
    cursor_y_ = std::min(cursor_y_ + h, kHardHeightCeiling);
    vspace(6);
  }

  void vspace(int px) { cursor_y_ = std::min(cursor_y_ + px, kHardHeightCeiling); }

  void new_line() {
    cursor_y_ = std::min(cursor_y_ + std::max(line_height_, 1), kHardHeightCeiling);
    cursor_x_ = 0;
    line_height_ = 0;
  }

  void flush_line() {
    if (cursor_x_ > 0) new_line();
  }

  void link_start(const std::string& href) {
    in_link_ = true;
    link_href_ = href;
    link_rect_ = ClickRegion{};
  }

  void extend_link(int x, int y, int w, int h) {
    if (link_rect_.w == 0) {
      link_rect_ = ClickRegion{x, y, w, h, link_href_};
      return;
    }
    const int x1 = std::max(link_rect_.x + link_rect_.w, x + w);
    const int y1 = std::max(link_rect_.y + link_rect_.h, y + h);
    link_rect_.x = std::min(link_rect_.x, x);
    link_rect_.y = std::min(link_rect_.y, y);
    link_rect_.w = x1 - link_rect_.x;
    link_rect_.h = y1 - link_rect_.y;
  }

  void link_end() {
    if (!dry_run_ && in_link_ && link_rect_.w > 0 && !link_href_.empty()) {
      click_map_.push_back(link_rect_);
    }
    in_link_ = false;
  }

  const LayoutParams& params_;
  int cap_;
  bool dry_run_;
  image::Raster image_;
  std::vector<ClickRegion> click_map_;
  int cursor_x_ = 0;
  int cursor_y_ = 0;
  int line_height_ = 0;
  int indent_ = 0;
  bool in_link_ = false;
  std::string link_href_;
  ClickRegion link_rect_{};
};

}  // namespace

RenderResult render_html(const Node& root, const LayoutParams& params) {
  // Measure the uncropped layout height first (reported as full_height so
  // callers can see what the PH cap discarded).
  LayoutParams uncapped = params;
  uncapped.max_height = 0;
  Layouter dry(uncapped, true);
  dry.run(root);
  const int full_height = dry.used_height();

  Layouter real(params, false);
  real.run(root);
  RenderResult out;
  const int height = std::max(1, real.used_height());
  out.image = real.take_image(height);
  out.click_map = real.take_click_map();
  out.full_height = full_height;
  // Drop click regions that fell below the crop.
  std::erase_if(out.click_map, [&](const ClickRegion& r) { return r.y >= height; });
  return out;
}

RenderResult render_html(const std::string& html, const LayoutParams& params) {
  return render_html(parse_html(html), params);
}

RenderResult scale_for_device(const RenderResult& page, int device_width) {
  RenderResult out;
  const double factor = static_cast<double>(device_width) / page.image.width();
  out.image = page.image.scaled_by(factor);
  out.full_height = static_cast<int>(page.full_height * factor);
  out.click_map = page.click_map;
  for (ClickRegion& r : out.click_map) {
    r.x = static_cast<int>(r.x * factor);
    r.y = static_cast<int>(r.y * factor);
    r.w = std::max(1, static_cast<int>(r.w * factor));
    r.h = std::max(1, static_cast<int>(r.h * factor));
  }
  return out;
}

std::string hit_test(const std::vector<ClickRegion>& map, int x, int y) {
  for (const ClickRegion& r : map) {
    if (r.contains(x, y)) return r.href;
  }
  return {};
}

}  // namespace sonic::web
