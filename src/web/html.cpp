#include "web/html.hpp"

#include <algorithm>
#include <cctype>

namespace sonic::web {
namespace {

std::string to_lower(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(), [](unsigned char c) { return std::tolower(c); });
  return s;
}

bool is_void_tag(const std::string& tag) {
  return tag == "img" || tag == "br" || tag == "hr" || tag == "meta" || tag == "link" ||
         tag == "input";
}

struct Parser {
  const std::string& src;
  std::size_t pos = 0;

  bool eof() const { return pos >= src.size(); }
  char peek() const { return src[pos]; }

  void skip_until(const std::string& needle) {
    const auto at = src.find(needle, pos);
    pos = at == std::string::npos ? src.size() : at + needle.size();
  }

  // Parses a tag at '<'. Returns the element name, attributes, and whether
  // it is a closing or self-closing tag.
  struct Tag {
    std::string name;
    std::map<std::string, std::string> attrs;
    bool closing = false;
    bool self_closing = false;
    bool valid = false;
  };

  Tag parse_tag() {
    Tag tag;
    ++pos;  // '<'
    if (!eof() && peek() == '/') {
      tag.closing = true;
      ++pos;
    }
    std::string name;
    while (!eof() && (std::isalnum(static_cast<unsigned char>(peek())) || peek() == '!')) {
      name.push_back(peek());
      ++pos;
    }
    if (name.empty()) {
      // Stray '<': treat as text by the caller.
      return tag;
    }
    tag.name = to_lower(name);
    if (!name.empty() && name[0] == '!') {  // <!DOCTYPE ...> / <!-- ... -->
      if (src.compare(pos - name.size(), 3, "!--") == 0) {
        skip_until("-->");
      } else {
        skip_until(">");
      }
      tag.name.clear();
      return tag;
    }
    // Attributes.
    while (!eof() && peek() != '>' && peek() != '/') {
      while (!eof() && std::isspace(static_cast<unsigned char>(peek()))) ++pos;
      if (eof() || peek() == '>' || peek() == '/') break;
      std::string key;
      while (!eof() && peek() != '=' && peek() != '>' && peek() != '/' &&
             !std::isspace(static_cast<unsigned char>(peek()))) {
        key.push_back(peek());
        ++pos;
      }
      std::string value;
      while (!eof() && std::isspace(static_cast<unsigned char>(peek()))) ++pos;
      if (!eof() && peek() == '=') {
        ++pos;
        while (!eof() && std::isspace(static_cast<unsigned char>(peek()))) ++pos;
        if (!eof() && (peek() == '"' || peek() == '\'')) {
          const char quote = peek();
          ++pos;
          while (!eof() && peek() != quote) {
            value.push_back(peek());
            ++pos;
          }
          if (!eof()) ++pos;
        } else {
          while (!eof() && peek() != '>' && !std::isspace(static_cast<unsigned char>(peek()))) {
            value.push_back(peek());
            ++pos;
          }
        }
      }
      if (!key.empty()) tag.attrs[to_lower(key)] = value;
    }
    if (!eof() && peek() == '/') {
      tag.self_closing = true;
      ++pos;
    }
    if (!eof() && peek() == '>') ++pos;
    tag.valid = true;
    return tag;
  }

  void parse_children(Node& parent, const std::string& enclosing_tag) {
    while (!eof()) {
      if (peek() == '<') {
        const std::size_t tag_start = pos;
        Tag tag = parse_tag();
        if (tag.name.empty() && !tag.closing) {
          if (!tag.valid && tag_start == pos - 1) {
            // Stray '<' consumed; emit it as text.
            Node text;
            text.type = Node::Type::kText;
            text.text = "<";
            parent.children.push_back(std::move(text));
          }
          continue;  // comment/doctype or stray
        }
        if (tag.closing) {
          if (tag.name == enclosing_tag) return;
          // Mismatched close: ignore (lenient).
          continue;
        }
        if (tag.name == "script" || tag.name == "style") {
          skip_until("</" + tag.name);
          skip_until(">");
          continue;
        }
        Node elem;
        elem.type = Node::Type::kElement;
        elem.tag = tag.name;
        elem.attrs = std::move(tag.attrs);
        if (!tag.self_closing && !is_void_tag(tag.name)) {
          parse_children(elem, tag.name);
        }
        parent.children.push_back(std::move(elem));
      } else {
        std::string text;
        while (!eof() && peek() != '<') {
          text.push_back(peek());
          ++pos;
        }
        // Collapse whitespace runs as browsers do.
        std::string collapsed;
        bool in_space = false;
        for (char c : text) {
          if (std::isspace(static_cast<unsigned char>(c))) {
            if (!in_space && !collapsed.empty()) collapsed.push_back(' ');
            in_space = true;
          } else {
            collapsed.push_back(c);
            in_space = false;
          }
        }
        if (!collapsed.empty() && collapsed != " ") {
          Node node;
          node.type = Node::Type::kText;
          node.text = std::move(collapsed);
          parent.children.push_back(std::move(node));
        }
      }
    }
  }
};

void collect_text(const Node& node, std::string& out) {
  if (node.type == Node::Type::kText) {
    if (!out.empty() && !node.text.empty()) out.push_back(' ');
    out += node.text;
    return;
  }
  for (const Node& child : node.children) collect_text(child, out);
}

}  // namespace

const std::string* Node::attr(const std::string& key) const {
  const auto it = attrs.find(key);
  return it == attrs.end() ? nullptr : &it->second;
}

Node parse_html(const std::string& html) {
  Node root;
  root.type = Node::Type::kElement;
  root.tag = "#root";
  Parser parser{html};
  parser.parse_children(root, "#root");
  return root;
}

std::string text_content(const Node& node) {
  std::string out;
  collect_text(node, out);
  return out;
}

}  // namespace sonic::web
