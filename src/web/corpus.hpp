// Synthetic corpus standing in for the paper's workload: "the 25 most
// popular Pakistani websites from the Tranco list filtered using the .pk
// domain name. For each landing page, we select three random internal
// pages, resulting in a total of 100 webpages", rendered hourly over three
// days (§4, Methodology).
//
// Each site gets a category (news/sports/shopping/education/government)
// that drives its layout, page length distribution, image density, and
// hourly content churn (news landing pages change nearly every hour,
// government pages almost never) — the properties Figures 4(b) and 4(c)
// depend on.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace sonic::web {

enum class SiteCategory { kNews, kSports, kShopping, kEducation, kGovernment };

const char* category_name(SiteCategory cat);

struct PageRef {
  int site = 0;      // 0..num_sites-1
  int page = 0;      // 0 = landing, 1..internal_per_site = internal
  std::string url;   // e.g. "khabarnama.com.pk/" or ".../story-2"
  bool landing() const { return page == 0; }
};

class PkCorpus {
 public:
  struct Params {
    int num_sites = 25;
    int internal_per_site = 3;
    std::uint64_t seed = 2024;
  };

  PkCorpus();  // default Params (the paper's 25x4 corpus)
  explicit PkCorpus(Params params);

  const std::vector<PageRef>& pages() const { return pages_; }
  int num_sites() const { return params_.num_sites; }
  SiteCategory category(int site) const;
  const std::string& domain(int site) const { return domains_[static_cast<std::size_t>(site)]; }

  // Finds a page by URL (with or without a leading "http://").
  const PageRef* find(const std::string& url) const;

  // Deterministic HTML for the page as it looked at `epoch_hours` since the
  // measurement start. Unchanged pages return byte-identical HTML.
  std::string html(const PageRef& ref, int epoch_hours) const;

  // True when the page's content at `epoch_hours` differs from the hour
  // before (epoch 0 counts as changed: everything must be broadcast once).
  bool changed_at(const PageRef& ref, int epoch_hours) const;

  // Number of content versions up to and including `epoch_hours`.
  int version(const PageRef& ref, int epoch_hours) const;

  // A synthetic search-engine results page for `query` (§3.1: SONIC users
  // with an uplink "can send queries to search engines"): a ranked list of
  // result entries linking into the corpus, deterministic per
  // (query, epoch).
  std::string search_html(const std::string& query, int epoch_hours) const;

 private:
  Params params_;
  std::vector<PageRef> pages_;
  std::vector<std::string> domains_;
};

}  // namespace sonic::web
