// Minimal HTML parser for the SONIC rendering pipeline.
//
// The SONIC server loads webpages and renders them to images (§3.2); this
// parser accepts the tag subset the synthetic corpus and the examples use:
// structural (html, body, div, span), headings (h1..h3), text (p, br, hr),
// lists (ul, li), links (a href=...), and images (img src/width/height/alt).
// Unknown tags are kept as generic blocks so real-world-ish input degrades
// gracefully instead of failing.
#pragma once

#include <map>
#include <string>
#include <vector>

namespace sonic::web {

struct Node {
  enum class Type { kElement, kText };
  Type type = Type::kElement;
  std::string tag;                           // lower-case, empty for text
  std::string text;                          // only for kText
  std::map<std::string, std::string> attrs;  // lower-case keys
  std::vector<Node> children;

  const std::string* attr(const std::string& key) const;
};

// Parses an HTML document; always succeeds, skipping malformed constructs.
// The returned node is a synthetic root element containing the top-level
// nodes.
Node parse_html(const std::string& html);

// Collects the concatenated text content beneath a node.
std::string text_content(const Node& node);

}  // namespace sonic::web
