// RGB8 raster image with the resize rules of §3.2: webpage screenshots are
// rendered 1080 px wide with a height cap, then resized on the client by the
// scaling factor (device width / 1080).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace sonic::image {

struct Rgb {
  std::uint8_t r = 0, g = 0, b = 0;
  bool operator==(const Rgb&) const = default;
};

class Raster {
 public:
  Raster() = default;
  Raster(int width, int height, Rgb fill = {255, 255, 255});

  int width() const { return width_; }
  int height() const { return height_; }
  bool empty() const { return width_ == 0 || height_ == 0; }

  Rgb& at(int x, int y) { return pixels_[static_cast<std::size_t>(y) * static_cast<std::size_t>(width_) + static_cast<std::size_t>(x)]; }
  const Rgb& at(int x, int y) const { return pixels_[static_cast<std::size_t>(y) * static_cast<std::size_t>(width_) + static_cast<std::size_t>(x)]; }

  // Clamped accessor: out-of-range coordinates snap to the border.
  const Rgb& at_clamped(int x, int y) const;

  void fill_rect(int x, int y, int w, int h, Rgb color);

  // Crop to at most `max_height` rows (§3.2's pixel-height cap PH).
  Raster cropped_to_height(int max_height) const;

  // Nearest-neighbor resize by the §3.2 scaling factor (applied to both
  // dimensions).
  Raster scaled_by(double factor) const;
  Raster resized(int new_width, int new_height) const;

  const std::vector<Rgb>& pixels() const { return pixels_; }
  std::vector<Rgb>& pixels() { return pixels_; }

 private:
  int width_ = 0;
  int height_ = 0;
  std::vector<Rgb> pixels_;
};

// Binary PPM (P6) I/O — used by the examples to dump Figure-1-style images.
void write_ppm(const Raster& img, const std::string& path);
Raster read_ppm(const std::string& path);

// Peak signal-to-noise ratio between two equal-sized rasters, dB.
double psnr(const Raster& a, const Raster& b);

}  // namespace sonic::image
