// "swebp" — SONIC's WebP-class lossy still-image codec.
//
// The paper captures webpage screenshots as WebP with quality 10 (§3.2);
// libwebp is not reimplementable in scope, so this codec reproduces the
// operative behaviour instead: block-DCT transform coding with a
// libjpeg-style quality knob (0..100, paper uses 10/50/90), YCbCr 4:2:0,
// zigzag run-length + Exp-Golomb entropy coding. Size-vs-quality follows
// the same curve shape as WebP on text-heavy webpage content, which is what
// Figure 4(b) measures.
#pragma once

#include <optional>
#include <span>

#include "image/raster.hpp"
#include "util/bytes.hpp"

namespace sonic::image {

// Encodes at `quality` in [1, 100] (higher = better/larger).
util::Bytes swebp_encode(const Raster& img, int quality);

// Returns nullopt on malformed input.
std::optional<Raster> swebp_decode(std::span<const std::uint8_t> data);

// Parsed header info without full decode.
struct SwebpInfo {
  int width = 0;
  int height = 0;
  int quality = 0;
};
std::optional<SwebpInfo> swebp_peek(std::span<const std::uint8_t> data);

}  // namespace sonic::image
