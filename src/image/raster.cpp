#include "image/raster.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <stdexcept>

namespace sonic::image {

Raster::Raster(int width, int height, Rgb fill)
    : width_(width), height_(height),
      pixels_(static_cast<std::size_t>(width) * static_cast<std::size_t>(height), fill) {
  if (width < 0 || height < 0) throw std::invalid_argument("negative raster dims");
}

const Rgb& Raster::at_clamped(int x, int y) const {
  x = std::clamp(x, 0, width_ - 1);
  y = std::clamp(y, 0, height_ - 1);
  return at(x, y);
}

void Raster::fill_rect(int x, int y, int w, int h, Rgb color) {
  const int x0 = std::max(0, x);
  const int y0 = std::max(0, y);
  const int x1 = std::min(width_, x + w);
  const int y1 = std::min(height_, y + h);
  for (int yy = y0; yy < y1; ++yy) {
    for (int xx = x0; xx < x1; ++xx) at(xx, yy) = color;
  }
}

Raster Raster::cropped_to_height(int max_height) const {
  if (height_ <= max_height) return *this;
  Raster out(width_, max_height);
  std::copy(pixels_.begin(),
            pixels_.begin() + static_cast<std::ptrdiff_t>(static_cast<std::size_t>(width_) * static_cast<std::size_t>(max_height)),
            out.pixels_.begin());
  return out;
}

Raster Raster::scaled_by(double factor) const {
  return resized(std::max(1, static_cast<int>(std::lround(width_ * factor))),
                 std::max(1, static_cast<int>(std::lround(height_ * factor))));
}

Raster Raster::resized(int new_width, int new_height) const {
  Raster out(new_width, new_height);
  for (int y = 0; y < new_height; ++y) {
    const int sy = std::min(height_ - 1, static_cast<int>(static_cast<long>(y) * height_ / new_height));
    for (int x = 0; x < new_width; ++x) {
      const int sx = std::min(width_ - 1, static_cast<int>(static_cast<long>(x) * width_ / new_width));
      out.at(x, y) = at(sx, sy);
    }
  }
  return out;
}

void write_ppm(const Raster& img, const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (!f) throw std::runtime_error("cannot open " + path);
  std::fprintf(f, "P6\n%d %d\n255\n", img.width(), img.height());
  for (const Rgb& p : img.pixels()) {
    std::fputc(p.r, f);
    std::fputc(p.g, f);
    std::fputc(p.b, f);
  }
  std::fclose(f);
}

Raster read_ppm(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (!f) throw std::runtime_error("cannot open " + path);
  int w = 0, h = 0, maxval = 0;
  if (std::fscanf(f, "P6 %d %d %d", &w, &h, &maxval) != 3 || maxval != 255 || w <= 0 || h <= 0) {
    std::fclose(f);
    throw std::runtime_error("bad ppm header in " + path);
  }
  std::fgetc(f);  // single whitespace after header
  Raster img(w, h);
  for (Rgb& p : img.pixels()) {
    const int r = std::fgetc(f), g = std::fgetc(f), b = std::fgetc(f);
    if (b == EOF) {
      std::fclose(f);
      throw std::runtime_error("truncated ppm " + path);
    }
    p = Rgb{static_cast<std::uint8_t>(r), static_cast<std::uint8_t>(g), static_cast<std::uint8_t>(b)};
  }
  std::fclose(f);
  return img;
}

double psnr(const Raster& a, const Raster& b) {
  if (a.width() != b.width() || a.height() != b.height()) throw std::invalid_argument("size mismatch");
  double mse = 0.0;
  const auto& pa = a.pixels();
  const auto& pb = b.pixels();
  for (std::size_t i = 0; i < pa.size(); ++i) {
    const double dr = static_cast<double>(pa[i].r) - pb[i].r;
    const double dg = static_cast<double>(pa[i].g) - pb[i].g;
    const double db = static_cast<double>(pa[i].b) - pb[i].b;
    mse += dr * dr + dg * dg + db * db;
  }
  mse /= static_cast<double>(pa.size() * 3);
  if (mse <= 0.0) return 99.0;
  return 10.0 * std::log10(255.0 * 255.0 / mse);
}

}  // namespace sonic::image
