// Nearest-neighbor pixel interpolation for lost-frame recovery.
//
// §3.3: "missing pixels are replaced with the value of their adjacent pixel,
// prioritizing the left pixel given that the webpage consists mostly of text
// read from left to right." kLeft is that scheme; the other modes exist for
// the ablation bench (bench/ablation_interpolation).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "image/raster.hpp"

namespace sonic::image {

enum class InterpolationMode {
  kNone,       // leave missing pixels dark (user-study "without" arm)
  kLeft,       // paper's scheme: left neighbour first, then right/up/down
  kUp,         // vertical-first variant (pathological for column losses)
  kAverage,    // mean of all available 4-neighbours
};

// Fills pixels whose mask entry is 0 using the chosen scheme; the mask is
// updated to 1 for every recovered pixel. Multiple sweeps propagate values
// into wide gaps.
void interpolate_missing(Raster& img, std::vector<std::uint8_t>& mask, InterpolationMode mode);

const char* interpolation_mode_name(InterpolationMode mode);

}  // namespace sonic::image
