// Lossless predictive codec (PNG-class). DRIVESHAFT requires lossless PNG
// for its screenshot merging (§3.2); SONIC deliberately chooses lossy WebP
// instead — this codec exists so the size comparison behind that choice can
// be reproduced (bench/fig4b_size_cdf --lossless).
#pragma once

#include <optional>
#include <span>

#include "image/raster.hpp"
#include "util/bytes.hpp"

namespace sonic::image {

util::Bytes lossless_encode(const Raster& img);
std::optional<Raster> lossless_decode(std::span<const std::uint8_t> data);

}  // namespace sonic::image
