#include "image/column_codec.hpp"

#include <algorithm>
#include <cmath>

namespace sonic::image {

std::string ColumnCodecParams::fingerprint() const {
  return "q" + std::to_string(quality) + "b" + std::to_string(payload_budget);
}

namespace {

// Exp-Golomb helpers (shared convention with the swebp entropy coder).
void put_ue(util::BitWriter& bw, std::uint32_t v) {
  const std::uint32_t vp1 = v + 1;
  int bits = 0;
  while ((1u << (bits + 1)) <= vp1) ++bits;
  for (int i = 0; i < bits; ++i) bw.bit(0);
  bw.bits(vp1, bits + 1);
}

std::uint32_t get_ue(util::BitReader& br) {
  int zeros = 0;
  while (br.ok() && br.bit() == 0) {
    if (++zeros > 32) return 0;
  }
  std::uint32_t v = 1;
  for (int i = 0; i < zeros; ++i) v = (v << 1) | static_cast<std::uint32_t>(br.bit());
  return v - 1;
}

void put_se(util::BitWriter& bw, int v) {
  put_ue(bw, v <= 0 ? static_cast<std::uint32_t>(-2 * v) : static_cast<std::uint32_t>(2 * v - 1));
}

int get_se(util::BitReader& br) {
  const std::uint32_t u = get_ue(br);
  return (u & 1) ? static_cast<int>((u + 1) / 2) : -static_cast<int>(u / 2);
}

struct QuantSteps {
  int y;
  int c;
};

QuantSteps steps_for_quality(int quality) {
  quality = std::clamp(quality, 1, 100);
  const int scale = quality < 50 ? 5000 / quality : 200 - 2 * quality;
  return {std::clamp(12 * scale / 100, 1, 128), std::clamp(24 * scale / 100, 1, 160)};
}

struct Ycc {
  int y, cb, cr;
};

Ycc to_ycc(Rgb c) {
  const float r = c.r, g = c.g, b = c.b;
  return {static_cast<int>(std::lround(0.299f * r + 0.587f * g + 0.114f * b)),
          static_cast<int>(std::lround(-0.168736f * r - 0.331264f * g + 0.5f * b + 128.0f)),
          static_cast<int>(std::lround(0.5f * r - 0.418688f * g - 0.081312f * b + 128.0f))};
}

Rgb to_rgb(Ycc c) {
  const float Y = static_cast<float>(c.y);
  const float Cb = static_cast<float>(c.cb) - 128.0f;
  const float Cr = static_cast<float>(c.cr) - 128.0f;
  auto clamp8 = [](float v) { return static_cast<std::uint8_t>(std::clamp(v, 0.0f, 255.0f)); };
  return {clamp8(Y + 1.402f * Cr), clamp8(Y - 0.344136f * Cb - 0.714136f * Cr), clamp8(Y + 1.772f * Cb)};
}

// Bits an Exp-Golomb ue(v) occupies.
std::size_t ue_bits(std::uint32_t v) {
  const std::uint32_t vp1 = v + 1;
  int bits = 0;
  while ((1u << (bits + 1)) <= vp1) ++bits;
  return static_cast<std::size_t>(2 * bits + 1);
}

std::size_t se_bits(int v) {
  return ue_bits(v <= 0 ? static_cast<std::uint32_t>(-2 * v) : static_cast<std::uint32_t>(2 * v - 1));
}

// Explicit-row cost/coding: se(dY), then a chroma-changed flag, then the
// chroma deltas when set. Webpage columns are overwhelmingly runs of
// identical quantized rows, so the stream alternates ue(run-of-identical-
// rows) with one explicit row:
//
//   [ue(y0)][ue(cb0)][ue(cr0)] { [ue(run)] [explicit row] }*
void encode_explicit_row(util::BitWriter& bw, const Ycc& q, const Ycc& prev) {
  put_se(bw, q.y - prev.y);
  const bool chroma_changed = q.cb != prev.cb || q.cr != prev.cr;
  bw.bit(chroma_changed ? 1 : 0);
  if (chroma_changed) {
    put_se(bw, q.cb - prev.cb);
    put_se(bw, q.cr - prev.cr);
  }
}

std::size_t explicit_row_bits(const Ycc& q, const Ycc& prev) {
  std::size_t bits = se_bits(q.y - prev.y) + 1;
  if (q.cb != prev.cb || q.cr != prev.cr) bits += se_bits(q.cb - prev.cb) + se_bits(q.cr - prev.cr);
  return bits;
}

}  // namespace

double ColumnDecodeResult::coverage() const {
  if (mask.empty()) return 0.0;
  std::size_t n = 0;
  for (std::uint8_t m : mask) n += m;
  return static_cast<double>(n) / static_cast<double>(mask.size());
}

std::vector<ColumnSegment> column_encode(const Raster& img, const ColumnCodecParams& params) {
  const QuantSteps steps = steps_for_quality(params.quality);
  std::vector<ColumnSegment> segments;
  const std::size_t budget_bits = static_cast<std::size_t>(params.payload_budget) * 8;

  for (int x = 0; x < img.width(); ++x) {
    int row = 0;
    while (row < img.height()) {
      ColumnSegment seg;
      seg.col = static_cast<std::uint16_t>(x);
      seg.row0 = static_cast<std::uint16_t>(row);
      util::BitWriter bw;
      Ycc prev{};
      int rows = 0;
      std::uint32_t pending_run = 0;
      auto flush_run = [&]() {
        put_ue(bw, pending_run);
        pending_run = 0;
      };
      while (row + rows < img.height() && rows < 0xffff) {
        const Ycc raw = to_ycc(img.at(x, row + rows));
        const Ycc q{(raw.y + steps.y / 2) / steps.y, (raw.cb + steps.c / 2) / steps.c,
                    (raw.cr + steps.c / 2) / steps.c};
        if (rows == 0) {
          // Absolute first row.
          const std::size_t cost = ue_bits(static_cast<std::uint32_t>(q.y)) +
                                   ue_bits(static_cast<std::uint32_t>(q.cb)) +
                                   ue_bits(static_cast<std::uint32_t>(q.cr));
          if (cost > budget_bits) break;
          put_ue(bw, static_cast<std::uint32_t>(q.y));
          put_ue(bw, static_cast<std::uint32_t>(q.cb));
          put_ue(bw, static_cast<std::uint32_t>(q.cr));
        } else if (q.y == prev.y && q.cb == prev.cb && q.cr == prev.cr) {
          // Extending a run is accepted if flushing it would still fit.
          if (bw.bit_count() + ue_bits(pending_run + 1) > budget_bits) break;
          ++pending_run;
          prev = q;
          ++rows;
          continue;
        } else {
          const std::size_t cost = ue_bits(pending_run) + explicit_row_bits(q, prev);
          if (bw.bit_count() + cost > budget_bits) break;
          flush_run();
          encode_explicit_row(bw, q, prev);
        }
        prev = q;
        ++rows;
      }
      if (rows > 0 && pending_run > 0) flush_run();
      seg.rows = static_cast<std::uint16_t>(rows);
      seg.data = bw.take();
      segments.push_back(std::move(seg));
      row += rows;
      if (rows == 0) break;  // pathological budget; avoid infinite loop
    }
  }
  return segments;
}

ColumnDecodeResult column_decode(int width, int height,
                                 std::span<const ColumnSegment> segments,
                                 const ColumnCodecParams& params) {
  const QuantSteps steps = steps_for_quality(params.quality);
  ColumnDecodeResult out;
  out.image = Raster(width, height, Rgb{0, 0, 0});
  out.mask.assign(static_cast<std::size_t>(width) * static_cast<std::size_t>(height), 0);

  for (const ColumnSegment& seg : segments) {
    if (seg.col >= width || seg.row0 >= height) continue;
    util::BitReader br(seg.data);
    Ycc prev{};
    int r = 0;
    auto emit = [&](const Ycc& q) {
      const int y = seg.row0 + r;
      if (y < height) {
        out.image.at(seg.col, y) = to_rgb(Ycc{q.y * steps.y, q.cb * steps.c, q.cr * steps.c});
        out.mask[static_cast<std::size_t>(y) * static_cast<std::size_t>(width) + seg.col] = 1;
      }
      ++r;
    };
    // Absolute first row.
    prev.y = static_cast<int>(get_ue(br));
    prev.cb = static_cast<int>(get_ue(br));
    prev.cr = static_cast<int>(get_ue(br));
    if (!br.ok()) continue;
    emit(prev);
    while (r < seg.rows) {
      const std::uint32_t run = get_ue(br);
      if (!br.ok()) break;
      for (std::uint32_t i = 0; i < run && r < seg.rows; ++i) emit(prev);
      if (r >= seg.rows) break;
      Ycc q = prev;
      q.y = prev.y + get_se(br);
      if (br.bit()) {
        q.cb = prev.cb + get_se(br);
        q.cr = prev.cr + get_se(br);
      }
      if (!br.ok()) break;
      emit(q);
      prev = q;
    }
  }
  return out;
}

std::size_t column_encoded_size(std::span<const ColumnSegment> segments) {
  std::size_t total = 0;
  for (const auto& s : segments) total += s.data.size() + 6;
  return total;
}

util::Bytes segment_serialize(const ColumnSegment& seg) {
  util::ByteWriter w;
  w.u16(seg.col);
  w.u16(seg.row0);
  w.u16(seg.rows);
  w.raw(seg.data);
  return w.take();
}

std::optional<ColumnSegment> segment_parse(std::span<const std::uint8_t> bytes) {
  util::ByteReader r(bytes);
  ColumnSegment seg;
  seg.col = r.u16();
  seg.row0 = r.u16();
  seg.rows = r.u16();
  if (!r.ok()) return std::nullopt;
  seg.data = r.raw(r.remaining());
  return seg;
}

}  // namespace sonic::image
