#include "image/interpolate.hpp"

#include <stdexcept>

namespace sonic::image {
namespace {

inline std::size_t idx(int x, int y, int w) {
  return static_cast<std::size_t>(y) * static_cast<std::size_t>(w) + static_cast<std::size_t>(x);
}

}  // namespace

const char* interpolation_mode_name(InterpolationMode mode) {
  switch (mode) {
    case InterpolationMode::kNone: return "none";
    case InterpolationMode::kLeft: return "left";
    case InterpolationMode::kUp: return "up";
    case InterpolationMode::kAverage: return "average";
  }
  return "?";
}

void interpolate_missing(Raster& img, std::vector<std::uint8_t>& mask, InterpolationMode mode) {
  if (mode == InterpolationMode::kNone) return;
  const int w = img.width();
  const int h = img.height();
  if (mask.size() != static_cast<std::size_t>(w) * static_cast<std::size_t>(h))
    throw std::invalid_argument("mask size mismatch");

  // Iterate until no pixel can be filled (wide gaps fill inward one ring
  // per sweep; bounded by max(w, h) sweeps).
  bool changed = true;
  while (changed) {
    changed = false;
    for (int y = 0; y < h; ++y) {
      for (int x = 0; x < w; ++x) {
        if (mask[idx(x, y, w)]) continue;
        const bool left = x > 0 && mask[idx(x - 1, y, w)];
        const bool right = x + 1 < w && mask[idx(x + 1, y, w)];
        const bool up = y > 0 && mask[idx(x, y - 1, w)];
        const bool down = y + 1 < h && mask[idx(x, y + 1, w)];
        switch (mode) {
          case InterpolationMode::kLeft:
            // Left first (text reads left to right), then the other
            // neighbours in falling usefulness.
            if (left) {
              img.at(x, y) = img.at(x - 1, y);
            } else if (right) {
              img.at(x, y) = img.at(x + 1, y);
            } else if (up) {
              img.at(x, y) = img.at(x, y - 1);
            } else if (down) {
              img.at(x, y) = img.at(x, y + 1);
            } else {
              continue;
            }
            break;
          case InterpolationMode::kUp:
            if (up) {
              img.at(x, y) = img.at(x, y - 1);
            } else if (down) {
              img.at(x, y) = img.at(x, y + 1);
            } else if (left) {
              img.at(x, y) = img.at(x - 1, y);
            } else if (right) {
              img.at(x, y) = img.at(x + 1, y);
            } else {
              continue;
            }
            break;
          case InterpolationMode::kAverage: {
            int r = 0, g = 0, b = 0, n = 0;
            auto add = [&](int xx, int yy) {
              const Rgb& c = img.at(xx, yy);
              r += c.r;
              g += c.g;
              b += c.b;
              ++n;
            };
            if (left) add(x - 1, y);
            if (right) add(x + 1, y);
            if (up) add(x, y - 1);
            if (down) add(x, y + 1);
            if (n == 0) continue;
            img.at(x, y) = Rgb{static_cast<std::uint8_t>(r / n), static_cast<std::uint8_t>(g / n),
                               static_cast<std::uint8_t>(b / n)};
            break;
          }
          case InterpolationMode::kNone:
            continue;
        }
        mask[idx(x, y, w)] = 1;
        changed = true;
      }
    }
  }
}

}  // namespace sonic::image
