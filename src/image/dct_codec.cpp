#include "image/dct_codec.hpp"

#include <algorithm>
#include <array>
#include <cmath>

#include "util/units.hpp"

namespace sonic::image {
namespace {

constexpr std::uint32_t kMagic = 0x53575031;  // "SWP1"

// --- color ----------------------------------------------------------------

struct Planes {
  int w = 0, h = 0;    // luma dims
  int cw = 0, ch = 0;  // chroma dims (4:2:0)
  std::vector<float> y, cb, cr;
};

Planes to_ycbcr420(const Raster& img) {
  Planes p;
  p.w = img.width();
  p.h = img.height();
  p.cw = (p.w + 1) / 2;
  p.ch = (p.h + 1) / 2;
  p.y.resize(static_cast<std::size_t>(p.w) * p.h);
  std::vector<float> cb_full(p.y.size()), cr_full(p.y.size());
  for (int yy = 0; yy < p.h; ++yy) {
    for (int xx = 0; xx < p.w; ++xx) {
      const Rgb& c = img.at(xx, yy);
      const float r = c.r, g = c.g, b = c.b;
      const std::size_t i = static_cast<std::size_t>(yy) * p.w + xx;
      p.y[i] = 0.299f * r + 0.587f * g + 0.114f * b;
      cb_full[i] = -0.168736f * r - 0.331264f * g + 0.5f * b + 128.0f;
      cr_full[i] = 0.5f * r - 0.418688f * g - 0.081312f * b + 128.0f;
    }
  }
  p.cb.resize(static_cast<std::size_t>(p.cw) * p.ch);
  p.cr.resize(p.cb.size());
  for (int yy = 0; yy < p.ch; ++yy) {
    for (int xx = 0; xx < p.cw; ++xx) {
      float scb = 0, scr = 0;
      int n = 0;
      for (int dy = 0; dy < 2; ++dy) {
        for (int dx = 0; dx < 2; ++dx) {
          const int sy = yy * 2 + dy, sx = xx * 2 + dx;
          if (sy >= p.h || sx >= p.w) continue;
          scb += cb_full[static_cast<std::size_t>(sy) * p.w + sx];
          scr += cr_full[static_cast<std::size_t>(sy) * p.w + sx];
          ++n;
        }
      }
      const std::size_t i = static_cast<std::size_t>(yy) * p.cw + xx;
      p.cb[i] = scb / n;
      p.cr[i] = scr / n;
    }
  }
  return p;
}

Raster from_ycbcr420(const Planes& p) {
  Raster img(p.w, p.h);
  for (int yy = 0; yy < p.h; ++yy) {
    for (int xx = 0; xx < p.w; ++xx) {
      const float Y = p.y[static_cast<std::size_t>(yy) * p.w + xx];
      const std::size_t ci = static_cast<std::size_t>(yy / 2) * p.cw + xx / 2;
      const float Cb = p.cb[ci] - 128.0f;
      const float Cr = p.cr[ci] - 128.0f;
      auto clamp8 = [](float v) {
        return static_cast<std::uint8_t>(std::clamp(v, 0.0f, 255.0f));
      };
      img.at(xx, yy) = Rgb{clamp8(Y + 1.402f * Cr), clamp8(Y - 0.344136f * Cb - 0.714136f * Cr),
                           clamp8(Y + 1.772f * Cb)};
    }
  }
  return img;
}

// --- DCT ------------------------------------------------------------------

struct DctTables {
  float c[8][8];  // c[u][x] = alpha(u) * cos((2x+1)u*pi/16)
  DctTables() {
    for (int u = 0; u < 8; ++u) {
      const float alpha = u == 0 ? std::sqrt(1.0f / 8.0f) : std::sqrt(2.0f / 8.0f);
      for (int x = 0; x < 8; ++x) {
        c[u][x] = alpha * std::cos((2 * x + 1) * u * static_cast<float>(sonic::util::kPi) / 16.0f);
      }
    }
  }
};

const DctTables& dct_tables() {
  static const DctTables t;
  return t;
}

void fdct8x8(const float in[64], float out[64]) {
  const auto& t = dct_tables();
  float tmp[64];
  for (int y = 0; y < 8; ++y) {
    for (int u = 0; u < 8; ++u) {
      float acc = 0;
      for (int x = 0; x < 8; ++x) acc += in[y * 8 + x] * t.c[u][x];
      tmp[y * 8 + u] = acc;
    }
  }
  for (int u = 0; u < 8; ++u) {
    for (int v = 0; v < 8; ++v) {
      float acc = 0;
      for (int y = 0; y < 8; ++y) acc += tmp[y * 8 + u] * t.c[v][y];
      out[v * 8 + u] = acc;
    }
  }
}

void idct8x8(const float in[64], float out[64]) {
  const auto& t = dct_tables();
  float tmp[64];
  for (int v = 0; v < 8; ++v) {
    for (int x = 0; x < 8; ++x) {
      float acc = 0;
      for (int u = 0; u < 8; ++u) acc += in[v * 8 + u] * t.c[u][x];
      tmp[v * 8 + x] = acc;
    }
  }
  for (int x = 0; x < 8; ++x) {
    for (int y = 0; y < 8; ++y) {
      float acc = 0;
      for (int v = 0; v < 8; ++v) acc += tmp[v * 8 + x] * t.c[v][y];
      out[y * 8 + x] = acc;
    }
  }
}

// --- quantization ----------------------------------------------------------

constexpr int kLumaBase[64] = {
    16, 11, 10, 16, 24,  40,  51,  61,  12, 12, 14, 19, 26,  58,  60,  55,
    14, 13, 16, 24, 40,  57,  69,  56,  14, 17, 22, 29, 51,  87,  80,  62,
    18, 22, 37, 56, 68,  109, 103, 77,  24, 35, 55, 64, 81,  104, 113, 92,
    49, 64, 78, 87, 103, 121, 120, 101, 72, 92, 95, 98, 112, 100, 103, 99};

constexpr int kChromaBase[64] = {
    17, 18, 24, 47, 99, 99, 99, 99, 18, 21, 26, 66, 99, 99, 99, 99,
    24, 26, 56, 99, 99, 99, 99, 99, 47, 66, 99, 99, 99, 99, 99, 99,
    99, 99, 99, 99, 99, 99, 99, 99, 99, 99, 99, 99, 99, 99, 99, 99,
    99, 99, 99, 99, 99, 99, 99, 99, 99, 99, 99, 99, 99, 99, 99, 99};

// Maps the public WebP-equivalent quality (0..100, as the paper uses) onto
// the internal JPEG-style scale. Calibrated on the rendered corpus so the
// size curve matches libwebp's: WebP Q10 ~= internal 10, WebP Q90 ~=
// internal 25 (VP8's prediction + arithmetic coding beat this coder's
// Exp-Golomb scheme by a growing margin at higher quality).
int webp_quality_to_internal(int quality) {
  quality = std::clamp(quality, 1, 100);
  if (quality <= 10) return quality;
  return 10 + (quality - 10) * 15 / 80;
}

std::array<int, 64> scaled_table(const int* base, int public_quality) {
  const int quality = webp_quality_to_internal(public_quality);
  const int scale = quality < 50 ? 5000 / quality : 200 - 2 * quality;
  // Below quality ~30, WebP's VP8 coder degrades far more aggressively than
  // a JPEG-style scale: emulate with an extra AC multiplier so the size and
  // softness of the paper's Q10 operating point are reproduced.
  const int ac_boost_pct = quality < 30 ? 100 + (30 - quality) * 25 : 100;
  std::array<int, 64> q{};
  for (int i = 0; i < 64; ++i) {
    const int boost = i == 0 ? 100 : ac_boost_pct;
    q[static_cast<std::size_t>(i)] =
        std::clamp((base[i] * scale + 50) / 100 * boost / 100, 1, 1024);
  }
  return q;
}

constexpr int kZigzag[64] = {0,  1,  8,  16, 9,  2,  3,  10, 17, 24, 32, 25, 18, 11, 4,  5,
                             12, 19, 26, 33, 40, 48, 41, 34, 27, 20, 13, 6,  7,  14, 21, 28,
                             35, 42, 49, 56, 57, 50, 43, 36, 29, 22, 15, 23, 30, 37, 44, 51,
                             58, 59, 52, 45, 38, 31, 39, 46, 53, 60, 61, 54, 47, 55, 62, 63};

// --- entropy: Exp-Golomb --------------------------------------------------

void put_ue(util::BitWriter& bw, std::uint32_t v) {
  // Exp-Golomb order 0 of v (v >= 0): N leading zeros + (v+1) in N+1 bits.
  const std::uint32_t vp1 = v + 1;
  int bits = 0;
  while ((1u << (bits + 1)) <= vp1) ++bits;
  for (int i = 0; i < bits; ++i) bw.bit(0);
  bw.bits(vp1, bits + 1);
}

std::uint32_t get_ue(util::BitReader& br) {
  int zeros = 0;
  while (br.ok() && br.bit() == 0) {
    if (++zeros > 32) return 0;
  }
  std::uint32_t v = 1;
  for (int i = 0; i < zeros; ++i) v = (v << 1) | static_cast<std::uint32_t>(br.bit());
  return v - 1;
}

void put_se(util::BitWriter& bw, int v) {
  // Signed mapping: 0,1,-1,2,-2,... -> 0,1,2,3,4,...
  put_ue(bw, v <= 0 ? static_cast<std::uint32_t>(-2 * v) : static_cast<std::uint32_t>(2 * v - 1));
}

int get_se(util::BitReader& br) {
  const std::uint32_t u = get_ue(br);
  return (u & 1) ? static_cast<int>((u + 1) / 2) : -static_cast<int>(u / 2);
}

// --- per-plane coding -------------------------------------------------------

void encode_plane(util::BitWriter& bw, const std::vector<float>& plane, int w, int h,
                  const std::array<int, 64>& quant) {
  const int bw_blocks = (w + 7) / 8;
  const int bh_blocks = (h + 7) / 8;
  int prev_dc = 0;
  float block[64], coef[64];
  for (int by = 0; by < bh_blocks; ++by) {
    for (int bx = 0; bx < bw_blocks; ++bx) {
      for (int y = 0; y < 8; ++y) {
        for (int x = 0; x < 8; ++x) {
          const int sy = std::min(h - 1, by * 8 + y);
          const int sx = std::min(w - 1, bx * 8 + x);
          block[y * 8 + x] = plane[static_cast<std::size_t>(sy) * w + sx] - 128.0f;
        }
      }
      fdct8x8(block, coef);
      int q[64];
      for (int i = 0; i < 64; ++i) {
        q[i] = static_cast<int>(std::lround(coef[kZigzag[i]] / static_cast<float>(quant[static_cast<std::size_t>(kZigzag[i])])));
      }
      // DC delta.
      put_se(bw, q[0] - prev_dc);
      prev_dc = q[0];
      // AC run-length: token ue(0) is end-of-block (1 bit — most blocks in
      // a webpage are background and stop immediately); otherwise
      // ue(run + 1) zeros-skipped followed by the signed level.
      int i = 1;
      while (i < 64) {
        int run = 0;
        while (i + run < 64 && q[i + run] == 0) ++run;
        if (i + run >= 64) break;
        put_ue(bw, static_cast<std::uint32_t>(run) + 1);
        put_se(bw, q[i + run]);
        i += run + 1;
      }
      put_ue(bw, 0);  // EOB
    }
  }
}

bool decode_plane(util::BitReader& br, std::vector<float>& plane, int w, int h,
                  const std::array<int, 64>& quant) {
  const int bw_blocks = (w + 7) / 8;
  const int bh_blocks = (h + 7) / 8;
  int prev_dc = 0;
  float coef[64], block[64];
  plane.assign(static_cast<std::size_t>(w) * h, 0.0f);
  for (int by = 0; by < bh_blocks; ++by) {
    for (int bx = 0; bx < bw_blocks; ++bx) {
      int q[64] = {0};
      prev_dc += get_se(br);
      q[0] = prev_dc;
      int i = 1;
      while (i < 64) {
        const std::uint32_t token = get_ue(br);
        if (token == 0) break;  // EOB
        i += static_cast<int>(token) - 1;
        if (i >= 64) return false;
        q[i] = get_se(br);
        ++i;
        if (i == 64) {
          if (get_ue(br) != 0) return false;  // trailing EOB
          break;
        }
      }
      if (!br.ok()) return false;
      for (int k = 0; k < 64; ++k) coef[kZigzag[k]] = static_cast<float>(q[k]) * static_cast<float>(quant[static_cast<std::size_t>(kZigzag[k])]);
      idct8x8(coef, block);
      for (int y = 0; y < 8; ++y) {
        for (int x = 0; x < 8; ++x) {
          const int sy = by * 8 + y, sx = bx * 8 + x;
          if (sy >= h || sx >= w) continue;
          plane[static_cast<std::size_t>(sy) * w + sx] = block[y * 8 + x] + 128.0f;
        }
      }
    }
  }
  return true;
}

}  // namespace

util::Bytes swebp_encode(const Raster& img, int quality) {
  quality = std::clamp(quality, 1, 100);
  const Planes p = to_ycbcr420(img);
  const auto ql = scaled_table(kLumaBase, quality);
  const auto qc = scaled_table(kChromaBase, quality);

  util::ByteWriter head;
  head.u32(kMagic);
  head.u32(static_cast<std::uint32_t>(img.width()));
  head.u32(static_cast<std::uint32_t>(img.height()));
  head.u8(static_cast<std::uint8_t>(quality));

  util::BitWriter bw;
  encode_plane(bw, p.y, p.w, p.h, ql);
  encode_plane(bw, p.cb, p.cw, p.ch, qc);
  encode_plane(bw, p.cr, p.cw, p.ch, qc);

  util::Bytes out = head.take();
  const util::Bytes body = bw.take();
  out.insert(out.end(), body.begin(), body.end());
  return out;
}

std::optional<SwebpInfo> swebp_peek(std::span<const std::uint8_t> data) {
  util::ByteReader r(data);
  if (r.u32() != kMagic) return std::nullopt;
  SwebpInfo info;
  info.width = static_cast<int>(r.u32());
  info.height = static_cast<int>(r.u32());
  info.quality = r.u8();
  if (!r.ok() || info.width <= 0 || info.height <= 0 || info.width > 1 << 16 || info.height > 1 << 20)
    return std::nullopt;
  return info;
}

std::optional<Raster> swebp_decode(std::span<const std::uint8_t> data) {
  const auto info = swebp_peek(data);
  if (!info) return std::nullopt;
  const auto ql = scaled_table(kLumaBase, info->quality);
  const auto qc = scaled_table(kChromaBase, info->quality);
  Planes p;
  p.w = info->width;
  p.h = info->height;
  p.cw = (p.w + 1) / 2;
  p.ch = (p.h + 1) / 2;
  util::BitReader br(data.subspan(13));
  if (!decode_plane(br, p.y, p.w, p.h, ql)) return std::nullopt;
  if (!decode_plane(br, p.cb, p.cw, p.ch, qc)) return std::nullopt;
  if (!decode_plane(br, p.cr, p.cw, p.ch, qc)) return std::nullopt;
  return from_ycbcr420(p);
}

}  // namespace sonic::image
