// Loss-resilient per-column image transport codec.
//
// §3.3: "we first divide the image vertically into multiple partitions, each
// with a width of 1 pixel. Each partition is then divided into fixed-sized
// frames of 100 bytes each." Each SONIC frame must therefore be
// independently decodable, so that a lost frame blanks only a bounded run of
// rows in one column — the vertical dash artifacts of Figure 1.
//
// Each segment codes a (column, row0, rows) run: quantized YCbCr with
// vertical prediction and Exp-Golomb residuals, greedily sized to fit the
// frame payload budget. Chroma is vertically subsampled 2:1. The quality
// knob follows the same libjpeg-style scale as swebp.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "image/raster.hpp"
#include "util/bytes.hpp"

namespace sonic::image {

struct ColumnSegment {
  std::uint16_t col = 0;
  std::uint16_t row0 = 0;
  std::uint16_t rows = 0;
  util::Bytes data;  // coded residual stream (excludes the fields above)
};

struct ColumnCodecParams {
  int quality = 10;         // §3.2: WebP quality 10 operating point
  int payload_budget = 94;  // coded bytes per segment; with the 6-byte
                            // segment header this fills a 100-byte frame

  // Compact fingerprint of the knobs that change the coded bytes — part of
  // the broadcast pipeline's encode-cache key.
  std::string fingerprint() const;

  bool operator==(const ColumnCodecParams&) const = default;
};

// Splits the image into per-column segments, each fitting the budget.
std::vector<ColumnSegment> column_encode(const Raster& img, const ColumnCodecParams& params);

// Received-pixel mask: one byte per pixel, 1 = covered by a received segment.
struct ColumnDecodeResult {
  Raster image;                    // missing pixels are black (paper: "dark")
  std::vector<std::uint8_t> mask;  // width*height
  double coverage() const;         // fraction of pixels received
};

// Reassembles from whichever segments survived; width/height come from the
// transport metadata.
ColumnDecodeResult column_decode(int width, int height,
                                 std::span<const ColumnSegment> segments,
                                 const ColumnCodecParams& params);

// Total coded transport size (segment data + per-segment headers).
std::size_t column_encoded_size(std::span<const ColumnSegment> segments);

// Serialization of one segment (used by the SONIC framing layer).
util::Bytes segment_serialize(const ColumnSegment& seg);
std::optional<ColumnSegment> segment_parse(std::span<const std::uint8_t> bytes);

}  // namespace sonic::image
