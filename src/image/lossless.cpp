#include "image/lossless.hpp"

#include <cmath>
#include <cstdlib>

namespace sonic::image {
namespace {

constexpr std::uint32_t kMagic = 0x534c5331;  // "SLS1"

void put_ue(util::BitWriter& bw, std::uint32_t v) {
  const std::uint32_t vp1 = v + 1;
  int bits = 0;
  while ((1u << (bits + 1)) <= vp1) ++bits;
  for (int i = 0; i < bits; ++i) bw.bit(0);
  bw.bits(vp1, bits + 1);
}

std::uint32_t get_ue(util::BitReader& br) {
  int zeros = 0;
  while (br.ok() && br.bit() == 0) {
    if (++zeros > 32) return 0;
  }
  std::uint32_t v = 1;
  for (int i = 0; i < zeros; ++i) v = (v << 1) | static_cast<std::uint32_t>(br.bit());
  return v - 1;
}

void put_se(util::BitWriter& bw, int v) {
  put_ue(bw, v <= 0 ? static_cast<std::uint32_t>(-2 * v) : static_cast<std::uint32_t>(2 * v - 1));
}

int get_se(util::BitReader& br) {
  const std::uint32_t u = get_ue(br);
  return (u & 1) ? static_cast<int>((u + 1) / 2) : -static_cast<int>(u / 2);
}

// PNG's Paeth predictor.
int paeth(int a, int b, int c) {
  const int p = a + b - c;
  const int pa = std::abs(p - a), pb = std::abs(p - b), pc = std::abs(p - c);
  if (pa <= pb && pa <= pc) return a;
  if (pb <= pc) return b;
  return c;
}

}  // namespace

util::Bytes lossless_encode(const Raster& img) {
  util::ByteWriter head;
  head.u32(kMagic);
  head.u32(static_cast<std::uint32_t>(img.width()));
  head.u32(static_cast<std::uint32_t>(img.height()));

  util::BitWriter bw;
  for (int ch = 0; ch < 3; ++ch) {
    auto get = [&](int x, int y) -> int {
      if (x < 0 || y < 0) return 0;
      const Rgb& p = img.at(x, y);
      return ch == 0 ? p.r : ch == 1 ? p.g : p.b;
    };
    for (int y = 0; y < img.height(); ++y) {
      for (int x = 0; x < img.width(); ++x) {
        const int pred = paeth(get(x - 1, y), get(x, y - 1), get(x - 1, y - 1));
        put_se(bw, get(x, y) - pred);
      }
    }
  }
  util::Bytes out = head.take();
  const util::Bytes body = bw.take();
  out.insert(out.end(), body.begin(), body.end());
  return out;
}

std::optional<Raster> lossless_decode(std::span<const std::uint8_t> data) {
  util::ByteReader r(data);
  if (r.u32() != kMagic) return std::nullopt;
  const int w = static_cast<int>(r.u32());
  const int h = static_cast<int>(r.u32());
  if (!r.ok() || w <= 0 || h <= 0 || w > 1 << 16 || h > 1 << 20) return std::nullopt;
  Raster img(w, h);
  util::BitReader br(data.subspan(12));
  for (int ch = 0; ch < 3; ++ch) {
    auto get = [&](int x, int y) -> int {
      if (x < 0 || y < 0) return 0;
      const Rgb& p = img.at(x, y);
      return ch == 0 ? p.r : ch == 1 ? p.g : p.b;
    };
    auto set = [&](int x, int y, int v) {
      Rgb& p = img.at(x, y);
      const std::uint8_t b = static_cast<std::uint8_t>(v);
      if (ch == 0) {
        p.r = b;
      } else if (ch == 1) {
        p.g = b;
      } else {
        p.b = b;
      }
    };
    for (int y = 0; y < h; ++y) {
      for (int x = 0; x < w; ++x) {
        const int pred = paeth(get(x - 1, y), get(x, y - 1), get(x - 1, y - 1));
        set(x, y, pred + get_se(br));
      }
    }
  }
  if (!br.ok()) return std::nullopt;
  return img;
}

}  // namespace sonic::image
