#include "eval/quality.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <vector>

namespace sonic::eval {
namespace {

std::vector<double> luma_plane(const image::Raster& img) {
  std::vector<double> out(static_cast<std::size_t>(img.width()) * img.height());
  for (int y = 0; y < img.height(); ++y) {
    for (int x = 0; x < img.width(); ++x) {
      const image::Rgb& p = img.at(x, y);
      out[static_cast<std::size_t>(y) * img.width() + x] = 0.299 * p.r + 0.587 * p.g + 0.114 * p.b;
    }
  }
  return out;
}

void check_sizes(const image::Raster& a, const image::Raster& b) {
  if (a.width() != b.width() || a.height() != b.height())
    throw std::invalid_argument("image size mismatch");
}

std::vector<double> sobel_magnitude(const std::vector<double>& luma, int w, int h) {
  std::vector<double> mag(luma.size(), 0.0);
  auto at = [&](int x, int y) {
    x = std::clamp(x, 0, w - 1);
    y = std::clamp(y, 0, h - 1);
    return luma[static_cast<std::size_t>(y) * w + x];
  };
  for (int y = 0; y < h; ++y) {
    for (int x = 0; x < w; ++x) {
      const double gx = -at(x - 1, y - 1) - 2 * at(x - 1, y) - at(x - 1, y + 1) +
                        at(x + 1, y - 1) + 2 * at(x + 1, y) + at(x + 1, y + 1);
      const double gy = -at(x - 1, y - 1) - 2 * at(x, y - 1) - at(x + 1, y - 1) +
                        at(x - 1, y + 1) + 2 * at(x, y + 1) + at(x + 1, y + 1);
      mag[static_cast<std::size_t>(y) * w + x] = std::sqrt(gx * gx + gy * gy);
    }
  }
  return mag;
}

}  // namespace

double ssim(const image::Raster& reference, const image::Raster& test) {
  check_sizes(reference, test);
  const int w = reference.width();
  const int h = reference.height();
  const auto ra = luma_plane(reference);
  const auto rb = luma_plane(test);

  constexpr double kC1 = 6.5025;    // (0.01 * 255)^2
  constexpr double kC2 = 58.5225;   // (0.03 * 255)^2
  constexpr int kWin = 8;

  double total = 0.0;
  int windows = 0;
  for (int wy = 0; wy + kWin <= h; wy += kWin) {
    for (int wx = 0; wx + kWin <= w; wx += kWin) {
      double ma = 0, mb = 0;
      for (int y = 0; y < kWin; ++y) {
        for (int x = 0; x < kWin; ++x) {
          ma += ra[static_cast<std::size_t>(wy + y) * w + wx + x];
          mb += rb[static_cast<std::size_t>(wy + y) * w + wx + x];
        }
      }
      const double n = kWin * kWin;
      ma /= n;
      mb /= n;
      double va = 0, vb = 0, cov = 0;
      for (int y = 0; y < kWin; ++y) {
        for (int x = 0; x < kWin; ++x) {
          const double da = ra[static_cast<std::size_t>(wy + y) * w + wx + x] - ma;
          const double db = rb[static_cast<std::size_t>(wy + y) * w + wx + x] - mb;
          va += da * da;
          vb += db * db;
          cov += da * db;
        }
      }
      va /= n - 1;
      vb /= n - 1;
      cov /= n - 1;
      const double s = ((2 * ma * mb + kC1) * (2 * cov + kC2)) /
                       ((ma * ma + mb * mb + kC1) * (va + vb + kC2));
      total += s;
      ++windows;
    }
  }
  if (windows == 0) return 1.0;
  return std::clamp(total / windows, 0.0, 1.0);
}

double edge_coherence(const image::Raster& reference, const image::Raster& test) {
  check_sizes(reference, test);
  const int w = reference.width();
  const int h = reference.height();
  const auto ga = sobel_magnitude(luma_plane(reference), w, h);
  const auto gb = sobel_magnitude(luma_plane(test), w, h);

  double ma = 0, mb = 0;
  for (std::size_t i = 0; i < ga.size(); ++i) {
    ma += ga[i];
    mb += gb[i];
  }
  ma /= static_cast<double>(ga.size());
  mb /= static_cast<double>(gb.size());
  double cov = 0, va = 0, vb = 0;
  for (std::size_t i = 0; i < ga.size(); ++i) {
    const double da = ga[i] - ma;
    const double db = gb[i] - mb;
    cov += da * db;
    va += da * da;
    vb += db * db;
  }
  if (va <= 0 || vb <= 0) return 1.0;
  return std::clamp(cov / std::sqrt(va * vb), 0.0, 1.0);
}

double mos_from_metric(double metric, const MosCalibration& cal) {
  const double rating = 10.0 / (1.0 + std::exp(-cal.slope * (metric - cal.midpoint)));
  return std::clamp(rating, 0.0, 10.0);
}

double content_rating(const image::Raster& reference, const image::Raster& test) {
  // Anchors chosen against Fig. 5: ~5-6 at 5% uninterpolated loss, ~7-8
  // with interpolation at 20%, near-zero at 50% uninterpolated.
  return mos_from_metric(ssim(reference, test), {0.68, 6.0});
}

double text_rating(const image::Raster& reference, const image::Raster& test) {
  // Edge coherence collapses faster under loss, reproducing "text
  // readability is more susceptible to losses".
  return mos_from_metric(edge_coherence(reference, test), {0.64, 5.0});
}

}  // namespace sonic::eval
