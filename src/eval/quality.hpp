// Objective quality metrics and the user-study substitution (Fig. 5).
//
// The paper recruited 151 students to rate 400 loss-injected screenshots on
// two 0-10 Likert questions: (a) content understanding and (b) text
// readability. We replace the raters with objective metrics mapped through
// monotone mean-opinion-score (MOS) calibrations:
//
//   * content understanding <- SSIM (structural similarity): global layout
//     and imagery survive losses that destroy fine detail;
//   * text readability     <- edge-coherence (gradient-map correlation):
//     text lives in high-frequency structure, so it degrades faster, which
//     is exactly the paper's observation that "text readability is more
//     susceptible to losses".
//
// Any monotone quality->rating map preserves the figure's shape (who wins
// and by how much); the calibration constants only set the scale anchors.
#pragma once

#include <cstdint>

#include "image/raster.hpp"

namespace sonic::eval {

// Mean SSIM over 8x8 windows of the luma plane, in [0, 1] (1 = identical).
double ssim(const image::Raster& reference, const image::Raster& test);

// Correlation of Sobel gradient-magnitude maps, in [0, 1]; penalizes
// exactly the high-frequency damage that makes text unreadable.
double edge_coherence(const image::Raster& reference, const image::Raster& test);

// Monotone logistic MOS mapping onto the paper's 0-10 Likert scale.
struct MosCalibration {
  double midpoint = 0.6;  // metric value that maps to rating 5
  double slope = 8.0;     // steepness of the metric->rating transition
};

double mos_from_metric(double metric, const MosCalibration& cal);

// The two question-specific raters.
double content_rating(const image::Raster& reference, const image::Raster& test);  // question (a)
double text_rating(const image::Raster& reference, const image::Raster& test);     // question (b)

}  // namespace sonic::eval
