// SONIC server (§3.1): accepts SMS page requests, renders simplified
// webpages, routes them to the FM transmitter covering the requester, and
// drives the broadcast schedule (user requests + preemptive popular-page
// pushes). The "web" it fetches from is the synthetic corpus.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "image/column_codec.hpp"
#include "sms/sms.hpp"
#include "sonic/framing.hpp"
#include "sonic/scheduler.hpp"
#include "web/corpus.hpp"
#include "web/layout.hpp"

namespace sonic::core {

// An FM transmitter with Internet access (§3.1: "the FM radio
// infrastructure consists of multiple transmitters ... at different
// locations").
struct Transmitter {
  std::string name = "default";
  double frequency_mhz = 93.7;  // §4: unused frequency at the paper's site
  double lat = 0.0;
  double lon = 0.0;
  double range_km = 30.0;
};

struct CompletedBroadcast {
  Transmitter transmitter;
  PageBundle bundle;
  double completed_at_s = 0.0;
};

class SonicServer {
 public:
  struct Params {
    std::string phone_number = "+92-SONIC";
    double rate_bps = 10000.0;  // the verified sonic-10k rate
    int num_frequencies = 1;
    image::ColumnCodecParams codec{10, 94};  // §3.2: quality 10
    web::LayoutParams layout;                // 1080 x PH10k by default
    std::uint32_t page_expiry_s = 24 * 3600;
    std::vector<Transmitter> transmitters{Transmitter{}};
  };

  SonicServer(const web::PkCorpus* corpus, sms::SmsGateway* gateway, Params params);

  const std::string& phone_number() const { return params_.phone_number; }

  // Polls the SMS gateway for page requests and search queries; ACKs (with
  // ETA + frequency) or NACKs each one and enqueues accepted pages for
  // broadcast. Search queries ("SONIC ASK ...") produce a results page
  // broadcast under the url "search:<query>".
  void poll_sms(double now_s);

  // Preemptively pushes pages (e.g. the popular-news morning push, §3.1).
  // Unknown URLs are skipped; returns how many were enqueued.
  int push_pages(const std::vector<std::string>& urls, double now_s, int priority = 0);

  // Advances the broadcast schedule; returns the page bundles whose
  // transmission completed since the last call, ready for the modem.
  std::vector<CompletedBroadcast> advance(double now_s);

  const BroadcastScheduler& scheduler() const { return scheduler_; }
  std::size_t render_cache_hits() const { return cache_hits_; }
  std::size_t renders() const { return renders_; }

  // Finds the transmitter covering a location (§3.1: the request carries
  // the user's location so the proper transmitter can be informed).
  const Transmitter* route(double lat, double lon) const;

 private:
  struct RenderedPage {
    int version = 0;
    PageBundle bundle;
  };

  // Renders (or reuses a cached render of) the page as of now.
  const PageBundle* bundle_for(const std::string& url, double now_s);

  const web::PkCorpus* corpus_;
  sms::SmsGateway* gateway_;
  Params params_;
  BroadcastScheduler scheduler_;
  std::map<std::string, RenderedPage> render_cache_;
  std::map<std::string, Transmitter> pending_route_;  // url -> transmitter
  std::uint32_t next_page_id_ = 1;
  std::size_t cache_hits_ = 0;
  std::size_t renders_ = 0;
};

}  // namespace sonic::core
