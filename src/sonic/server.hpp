// SONIC server (§3.1): accepts SMS page requests, renders simplified
// webpages, routes them to the FM transmitter covering the requester, and
// drives the broadcast schedule (user requests + preemptive popular-page
// pushes). The "web" it fetches from is the synthetic corpus.
//
// Rendering/encoding/framing runs through a BroadcastPipeline (worker pool
// + LRU render cache); each transmitter drains its own BroadcastScheduler
// shard, so a backlog at one station no longer delays the others.
//
// poll_sms() is idempotent against the SMS network's faults: a TTL'd dedup
// table keyed on (sender, request id, url) re-ACKs retransmissions and
// duplicate deliveries with a fresh ETA instead of re-enqueueing; same-url
// requests from different users coalesce onto the in-flight broadcast; and
// when a shard's backlog exceeds a configurable bound, new requests are
// shed with "RETRY <sec>" NACKs that the client honors as scheduled
// resends.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "image/column_codec.hpp"
#include "sms/sms.hpp"
#include "sonic/carousel.hpp"
#include "sonic/framing.hpp"
#include "sonic/metrics.hpp"
#include "sonic/pipeline.hpp"
#include "sonic/scheduler.hpp"
#include "web/corpus.hpp"
#include "web/layout.hpp"

namespace sonic::core {

// An FM transmitter with Internet access (§3.1: "the FM radio
// infrastructure consists of multiple transmitters ... at different
// locations").
struct Transmitter {
  std::string name = "default";
  double frequency_mhz = 93.7;  // §4: unused frequency at the paper's site
  double lat = 0.0;
  double lon = 0.0;
  double range_km = 30.0;
};

struct CompletedBroadcast {
  Transmitter transmitter;
  PageBundle bundle;
  double completed_at_s = 0.0;
};

class SonicServer {
 public:
  struct Params {
    std::string phone_number = "+92-SONIC";
    double rate_bps = 10000.0;  // the verified sonic-10k rate, per frequency
    int num_frequencies = 1;
    image::ColumnCodecParams codec{10, 94};  // §3.2: quality 10
    web::LayoutParams layout;                // 1080 x PH10k by default
    std::uint32_t page_expiry_s = 24 * 3600;
    std::vector<Transmitter> transmitters{Transmitter{}};
    std::size_t render_cache_pages = 256;  // LRU capacity of the pipeline cache
    int render_threads = 0;                // pipeline workers; 0 = serial

    // Cyclic popular-catalog broadcast with fountain repair frames, on the
    // preemptible low-priority lane of the first transmitter's shard.
    // Off by default: a station that only answers requests behaves exactly
    // like the seed-era server.
    bool carousel_enabled = false;
    Carousel::Params carousel;

    // Uplink idempotency and overload control. A request whose last copy
    // (same sender, id, url) arrived less than dedup_ttl_s ago is re-ACKed,
    // never re-served; each duplicate renews the window (sliding TTL), so
    // the entry outlives any retry schedule with gaps below the TTL.
    // When a shard's backlog exceeds shed_backlog_bytes (> 0 enables
    // shedding), new requests are NACKed "RETRY <sec>" with sec derived
    // from the backlog's drain time, clamped to [floor, cap].
    double dedup_ttl_s = 900.0;
    double shed_backlog_bytes = 0.0;  // 0 = shedding disabled
    double shed_retry_floor_s = 15.0;
    double shed_retry_cap_s = 600.0;

    // Descriptive configuration errors (negative rate, zero frequencies,
    // empty transmitter list, zero cache, ...); empty when sane. The
    // constructor calls this and throws std::invalid_argument instead of
    // silently accepting nonsense.
    std::vector<std::string> validate() const;
  };

  SonicServer(const web::PkCorpus* corpus, sms::SmsGateway* gateway, Params params);

  const std::string& phone_number() const { return params_.phone_number; }

  // Polls the SMS gateway for page requests and search queries; ACKs (with
  // ETA + frequency) or NACKs each one and enqueues accepted pages for
  // broadcast on the covering transmitter's shard. Search queries
  // ("SONIC ASK ...") produce a results page broadcast under the url
  // "search:<query>". Idempotent: duplicates within dedup_ttl_s are
  // re-ACKed with a fresh ETA and never enqueue a second broadcast;
  // requests beyond the shard's shed bound are NACKed "RETRY <sec>".
  // Registry counters: requests_received / served / deduped / coalesced /
  // shed / rejected / malformed.
  void poll_sms(double now_s);

  // Preemptively pushes pages (e.g. the popular-news morning push, §3.1) on
  // the first transmitter's shard; the whole batch renders in parallel on
  // the pipeline. Unknown URLs are skipped; returns how many were enqueued.
  int push_pages(const std::vector<std::string>& urls, double now_s, int priority = 0);

  // Same, targeted at one transmitter's shard (unknown name: returns 0).
  int push_pages_to(const std::string& transmitter, const std::vector<std::string>& urls,
                    double now_s, int priority = 0);

  // Advances every shard's broadcast schedule; returns the page bundles
  // whose transmission completed since the last call (sorted by completion
  // time), ready for the modem.
  std::vector<CompletedBroadcast> advance(double now_s);

  // The first transmitter's shard — the whole schedule when only one
  // transmitter is configured.
  const BroadcastScheduler& scheduler() const { return shards_.front(); }
  // Per-transmitter shard, or null for an unknown name.
  const BroadcastScheduler* scheduler_for(const std::string& transmitter) const;

  // Aggregates across all shards.
  double total_backlog_bytes() const;
  std::size_t total_queue_length() const;

  std::size_t render_cache_hits() const { return metrics_->counter_value("render_cache_hits"); }
  std::size_t renders() const { return metrics_->counter_value("pages_rendered"); }

  Metrics& metrics() { return *metrics_; }
  const Metrics& metrics() const { return *metrics_; }
  const BroadcastPipeline& pipeline() const { return pipeline_; }
  // Null when Params::carousel_enabled is false.
  const Carousel* carousel() const { return carousel_.get(); }

  // Finds the transmitter covering a location (§3.1: the request carries
  // the user's location so the proper transmitter can be informed).
  const Transmitter* route(double lat, double lon) const;

  // Requests currently deduplicated (live TTL window); exposed for tests.
  std::size_t dedup_entries() const { return dedup_.size(); }

 private:
  // Outcome of a request's first processing, replayed for duplicates.
  struct DedupEntry {
    std::string url;
    double last_seen_s = 0.0;  // renewed on every duplicate (sliding TTL)
    double expected_complete_at_s = 0.0;  // refreshed to actual on completion
    double frequency_mhz = 0.0;
    bool accepted = false;
    std::string reason;  // when !accepted
  };

  std::size_t shard_of(const Transmitter& tx) const;
  int push_to_shard(std::size_t shard, const std::vector<std::string>& urls, double now_s,
                    int priority);
  void purge_dedup(double now_s);
  void answer(const std::string& to, const sms::RequestAck& ack, double now_s);

  const web::PkCorpus* corpus_;
  sms::SmsGateway* gateway_;
  Params params_;
  std::unique_ptr<Metrics> metrics_;  // stable address for the pipeline
  BroadcastPipeline pipeline_;
  std::unique_ptr<Carousel> carousel_;      // null unless carousel_enabled
  std::vector<BroadcastScheduler> shards_;  // parallel to params_.transmitters
  std::map<std::string, Transmitter> pending_route_;  // url -> transmitter
  // Strong refs for everything enqueued, so an LRU eviction in the pipeline
  // cache cannot drop a bundle that is still waiting for airtime.
  std::map<std::string, std::shared_ptr<const PageBundle>> queued_bundles_;
  // Uplink idempotency: "<sender>\x1f<id>\x1f<url>" -> first outcome.
  std::map<std::string, DedupEntry> dedup_;
  // User-requested broadcasts on the air: "<shard>\x1f<url>" -> expected
  // completion, so same-url requests coalesce instead of re-enqueueing.
  std::map<std::string, double> inflight_;
};

}  // namespace sonic::core
