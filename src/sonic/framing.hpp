// SONIC page transport framing (§3.3).
//
// A rendered page becomes a sequence of fixed-size 100-byte frames:
//
//   [page_id u32][seq u16][total u16][type u8][payload ...]
//
// * type 0 (metadata): url, dimensions, codec quality, expiry, click map —
//   serialized once and chunked across as many frames as needed. Metadata
//   frames are transmitted twice: losing the page geometry would make every
//   segment frame useless, so they get cheap repetition redundancy.
// * type 1 (segment): one per-column segment from the resilient column
//   codec. Losing one blanks a bounded run of rows in one column.
// * type 2 (repair, wire format v2 — the broadcast carousel): a fountain
//   repair symbol over the page's source frames. The seq field carries the
//   repair_seq, total carries the page's source-frame count k, and bytes
//   9..99 hold the kFountainBlockSize-byte symbol (repair frames have no
//   payload_len byte — the length is implied by the frame size). A source
//   frame's fountain block packs its type bit and payload length into one
//   byte, [(type << 7) | payload_len], followed by the 90-byte payload
//   region, so a converged decoder reproduces source frames byte for byte.
//   v1 receivers reject type 2 in parse_frame and lose nothing but the
//   repair capability; v2 receivers decode pure-source broadcasts as
//   before.
//
// Integrity per frame is provided by the modem's PacketCodec
// (crc32 + v29 + rs8); a frame either arrives intact or not at all.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "image/column_codec.hpp"
#include "image/interpolate.hpp"
#include "web/layout.hpp"

namespace sonic::core {

constexpr std::size_t kFrameSize = 100;  // §3.3: "fixed-sized frames of 100 bytes"
constexpr std::size_t kFrameHeaderSize = 10;  // page_id + seq + total + type + payload_len
constexpr std::size_t kFramePayloadSize = kFrameSize - kFrameHeaderSize;

constexpr std::uint8_t kFrameTypeMetadata = 0;
constexpr std::uint8_t kFrameTypeSegment = 1;
constexpr std::uint8_t kFrameTypeRepair = 2;  // wire format v2

// One fountain symbol spans a source frame's [(type << 7) | payload_len]
// byte plus its payload region: everything after the fields a repair frame
// already carries (page_id, seq, total).
constexpr std::size_t kFountainBlockSize = kFramePayloadSize + 1;
// The repair_seq lives in the u16 seq field; carousel repair streams wrap.
constexpr std::uint32_t kRepairSeqSpace = 1u << 16;

struct FrameHeader {
  std::uint32_t page_id = 0;
  std::uint16_t seq = 0;    // type 2: repair_seq
  std::uint16_t total = 0;  // type 2: the page's source-frame count k
  std::uint8_t type = 0;    // 0 = metadata, 1 = segment, 2 = repair
};

struct PageMetadata {
  std::string url;
  int width = 0;
  int height = 0;
  int quality = 10;
  std::uint32_t expiry_s = 24 * 3600;  // server-set cache lifetime (§3.1)
  std::vector<web::ClickRegion> click_map;
};

// A page prepared for broadcast.
struct PageBundle {
  std::uint32_t page_id = 0;
  PageMetadata metadata;
  std::vector<util::Bytes> frames;  // every frame exactly kFrameSize bytes
  std::size_t total_bytes() const { return frames.size() * kFrameSize; }
};

// Unequal error protection (the §4 "dynamic scheme with higher error
// protection for important parts of an image/webpage" the paper leaves as
// an optimization): segments overlapping the top `top_fraction` of the page
// — title, masthead, first headline — are transmitted `copies` times.
// Repetition at the frame level composes with the per-frame FEC and needs
// no receiver changes (the assembler dedups).
struct UepPolicy {
  bool enabled = false;
  double top_fraction = 0.2;
  int copies = 2;
};

// Builds the frame sequence for a rendered page.
PageBundle make_bundle(std::uint32_t page_id, const std::string& url,
                       const web::RenderResult& page, const image::ColumnCodecParams& codec,
                       std::uint32_t expiry_s = 24 * 3600, const UepPolicy& uep = {});

// A page reconstructed from whichever frames arrived.
struct ReceivedPage {
  PageMetadata metadata;
  image::Raster image;
  std::vector<std::uint8_t> mask;  // per-pixel received flags (before interpolation)
  double coverage = 0.0;           // fraction of pixels received
  std::size_t frames_received = 0;
  std::size_t frames_expected = 0;

  double frame_loss_rate() const {
    if (frames_expected == 0) return 0.0;
    return 1.0 - static_cast<double>(frames_received) / static_cast<double>(frames_expected);
  }
};

// Reassembles pages from frames as they arrive (possibly out of order,
// possibly with losses and duplicates).
class PageAssembler {
 public:
  explicit PageAssembler(image::ColumnCodecParams codec = {});

  // Feed one received frame (already FEC/CRC-validated by the modem).
  void push(std::span<const std::uint8_t> frame);

  // True once every frame of `page_id` was seen.
  bool complete(std::uint32_t page_id) const;

  // Reconstructs a page from whatever has arrived so far. `interpolate`
  // applies the §3.3 nearest-neighbor recovery to missing pixels. Returns
  // nullopt if no metadata frame has arrived (geometry unknown).
  std::optional<ReceivedPage> assemble(std::uint32_t page_id,
                                       image::InterpolationMode mode) const;

  std::vector<std::uint32_t> known_pages() const;
  void drop(std::uint32_t page_id);

  // The (seq, [type u8][payload]) slots received so far for `page_id` —
  // the fountain layer backfills a decoder created by a late-arriving
  // repair frame from these.
  std::vector<std::pair<std::uint16_t, util::Bytes>> received_slots(std::uint32_t page_id) const;

 private:
  struct Partial {
    std::uint16_t total = 0;
    std::vector<std::optional<util::Bytes>> payloads;  // by seq
  };
  image::ColumnCodecParams codec_;
  std::map<std::uint32_t, Partial> pages_;
};

// Frame header (de)serialization; payload is padded to kFrameSize. For
// type 2 frames parse_frame returns the kFountainBlockSize-byte symbol as
// the payload.
util::Bytes serialize_frame(const FrameHeader& header, std::span<const std::uint8_t> payload);
std::optional<std::pair<FrameHeader, util::Bytes>> parse_frame(std::span<const std::uint8_t> frame);

// Fountain wire helpers (v2).
//
// The kFountainBlockSize-byte fountain block of one serialized source
// frame (type 0/1, exactly kFrameSize bytes).
util::Bytes fountain_block(std::span<const std::uint8_t> frame);
// All of a bundle's fountain blocks, in seq order — the encoder's input.
std::vector<util::Bytes> bundle_fountain_blocks(const PageBundle& bundle);
// Rebuilds the full kFrameSize source frame `seq` of a k-frame page from
// its (decoded) fountain block; nullopt if the block is malformed.
std::optional<util::Bytes> frame_from_fountain_block(std::uint32_t page_id, std::uint16_t seq,
                                                     std::uint16_t total,
                                                     std::span<const std::uint8_t> block);
// A type 2 repair frame carrying `symbol` (kFountainBlockSize bytes) for a
// k-source-frame page.
util::Bytes serialize_repair_frame(std::uint32_t page_id, std::uint16_t repair_seq,
                                   std::uint16_t k, std::span<const std::uint8_t> symbol);

// Metadata blob (de)serialization.
util::Bytes serialize_metadata(const PageMetadata& metadata);
std::optional<PageMetadata> parse_metadata(std::span<const std::uint8_t> blob);

}  // namespace sonic::core
