#include "sonic/carousel.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace sonic::core {
namespace {

Carousel::Params validated(Carousel::Params params) {
  const auto errors = params.validate();
  if (!errors.empty()) {
    std::string msg = "invalid Carousel::Params:";
    for (const auto& e : errors) msg += "\n  - " + e;
    throw std::invalid_argument(msg);
  }
  return params;
}

}  // namespace

std::vector<std::string> Carousel::Params::validate() const {
  std::vector<std::string> errors;
  if (max_pages == 0) errors.push_back("max_pages must be nonzero (an empty carousel broadcasts nothing)");
  if (!(repair_overhead >= 0.0 && repair_overhead <= 4.0)) {
    errors.push_back("repair_overhead must be in [0, 4] (got " + std::to_string(repair_overhead) + ")");
  }
  if (!(refresh_interval_s > 0.0)) {
    errors.push_back("refresh_interval_s must be positive (got " + std::to_string(refresh_interval_s) + ")");
  }
  return errors;
}

Carousel::Carousel(BroadcastPipeline* pipeline, Metrics* metrics, Params params)
    : pipeline_(pipeline), metrics_(metrics), params_(validated(std::move(params))) {
  if (pipeline_ == nullptr) throw std::invalid_argument("Carousel needs a pipeline");
}

void Carousel::record_hit(const std::string& url) { ++hits_[url]; }

std::uint32_t Carousel::next_repair_seq(const std::string& url) const {
  const auto it = repair_seq_.find(url);
  return it == repair_seq_.end() ? 0 : it->second;
}

void Carousel::refresh_catalog(double now_s) {
  catalog_.clear();
  for (const auto& [url, hits] : hits_) {
    if (hits >= params_.min_hits) catalog_.emplace_back(url, hits);
  }
  std::sort(catalog_.begin(), catalog_.end(), [](const auto& a, const auto& b) {
    if (a.second != b.second) return a.second > b.second;
    return a.first < b.first;
  });
  if (catalog_.size() > params_.max_pages) catalog_.resize(params_.max_pages);
  refreshed_once_ = true;
  next_refresh_s_ = now_s + params_.refresh_interval_s;
  if (metrics_ != nullptr) {
    metrics_->counter("carousel_refreshes").add(1);
    metrics_->histogram("carousel_catalog_pages").observe(static_cast<double>(catalog_.size()));
  }
}

std::vector<Carousel::AirPage> Carousel::drive(double now_s) {
  if (!refreshed_once_ || now_s >= next_refresh_s_) refresh_catalog(now_s);
  if (in_flight_ > 0 || catalog_.empty()) return {};

  // Next cycle: render/encode the whole catalog as one pipeline batch
  // (cache hits within the render epoch make steady-state cycles cheap),
  // then extend each page with this cycle's slice of its repair stream.
  std::vector<std::string> urls;
  urls.reserve(catalog_.size());
  for (const auto& [url, hits] : catalog_) urls.push_back(url);

  std::vector<AirPage> out;
  for (auto& prepared : pipeline_->prepare(urls, now_s)) {
    if (!prepared.bundle) continue;  // url fell out of the corpus
    const PageBundle& src = *prepared.bundle;
    const auto k = static_cast<std::uint16_t>(src.frames.size());
    const auto repair_frames =
        static_cast<std::size_t>(std::ceil(static_cast<double>(k) * params_.repair_overhead));

    auto air = std::make_shared<PageBundle>(src);
    if (repair_frames > 0) {
      fec::FountainEncoder encoder(src.page_id, bundle_fountain_blocks(src), params_.fountain);
      std::uint32_t& seq = repair_seq_[prepared.url];
      for (std::size_t i = 0; i < repair_frames; ++i) {
        const auto wire_seq = static_cast<std::uint16_t>(seq % kRepairSeqSpace);
        air->frames.push_back(
            serialize_repair_frame(src.page_id, wire_seq, k, encoder.repair_symbol(wire_seq)));
        seq = (seq + 1) % kRepairSeqSpace;
      }
    }
    if (metrics_ != nullptr) {
      metrics_->counter("carousel_repair_frames").add(repair_frames);
    }
    out.push_back(AirPage{kCarouselKeyPrefix + prepared.url, std::move(air), params_.priority,
                          /*preemptible=*/true});
  }
  if (out.empty()) return out;

  in_flight_ = out.size();
  cycle_started_s_ = now_s;
  if (metrics_ != nullptr) metrics_->counter("carousel_cycles_started").add(1);
  return out;
}

void Carousel::on_broadcast_complete(const std::string& key, double completed_at_s) {
  (void)key;
  if (in_flight_ == 0) return;
  if (--in_flight_ == 0) {
    ++cycles_completed_;
    if (metrics_ != nullptr) {
      metrics_->counter("carousel_cycles").add(1);
      metrics_->histogram("carousel_cycle_s").observe(completed_at_s - cycle_started_s_);
    }
  }
}

}  // namespace sonic::core
