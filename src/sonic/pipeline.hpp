// Parallel render→encode→frame stage for the broadcast server.
//
// The follow-up paper ("SONIC: Cost-Effective Web Access for Developing
// Countries") scales one station to a national catalog of popular pages;
// there, re-rendering the whole catalog synchronously on the SMS-polling
// thread is the bottleneck. BroadcastPipeline prepares page bundles on a
// worker pool instead, with an LRU cache keyed on (url, layout fingerprint,
// codec fingerprint) and guarded by the page's content version, so hourly
// refreshes and repeat requests skip work entirely.
//
// Determinism: page ids are assigned sequentially in request order on the
// submitting thread *before* any job is dispatched, and cache
// insertions/evictions replay in request order after the pool drains, so a
// parallel pipeline produces byte-identical bundles (and identical cache
// state) to a serial one given the same request sequence.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "image/column_codec.hpp"
#include "sonic/cache.hpp"
#include "sonic/framing.hpp"
#include "sonic/metrics.hpp"
#include "web/corpus.hpp"
#include "web/layout.hpp"

namespace sonic::core {

class BroadcastPipeline {
 public:
  struct Params {
    web::LayoutParams layout;                // 1080 x PH10k by default
    image::ColumnCodecParams codec{10, 94};  // §3.2: quality 10
    std::uint32_t page_expiry_s = 24 * 3600;
    std::size_t cache_pages = 256;  // LRU capacity of the render/encode cache
    int num_threads = 0;            // worker threads; 0 = serial in the caller

    // Descriptive configuration errors; empty when the params are sane.
    std::vector<std::string> validate() const;
  };

  struct Prepared {
    std::string url;
    std::shared_ptr<const PageBundle> bundle;  // null for unknown urls
    bool cache_hit = false;
  };

  // `metrics` may be shared with the owning server; when null the pipeline
  // owns a private registry (reachable via metrics()).
  BroadcastPipeline(const web::PkCorpus* corpus, Params params, Metrics* metrics = nullptr);
  ~BroadcastPipeline();

  BroadcastPipeline(const BroadcastPipeline&) = delete;
  BroadcastPipeline& operator=(const BroadcastPipeline&) = delete;

  // Prepares every url as of now_s (render + encode + frame on the pool for
  // cache misses) and returns bundles in request order. Unknown urls yield a
  // null bundle. Safe to call from multiple threads; batches serialize.
  std::vector<Prepared> prepare(const std::vector<std::string>& urls, double now_s);

  // Single-page convenience used by the SMS request path.
  std::shared_ptr<const PageBundle> prepare_one(const std::string& url, double now_s);

  int parallelism() const { return static_cast<int>(workers_.size()); }
  Metrics& metrics() { return *metrics_; }
  const Metrics& metrics() const { return *metrics_; }
  std::size_t cache_size() const { return cache_.size(); }
  std::size_t cache_evictions() const { return cache_.evictions(); }
  const Params& params() const { return params_; }

 private:
  struct Job {
    std::size_t slot = 0;
    std::string url;
    std::string key;
    std::uint32_t page_id = 0;
    int version = 0;
    int epoch = 0;
    const web::PageRef* ref = nullptr;  // null for search pages
    std::string query;                  // search pages only
    std::shared_ptr<PageBundle> out;
  };

  void render_job(Job& job);
  void run_jobs(std::vector<Job>& jobs);
  void worker_loop();
  std::string cache_key(const std::string& url) const;

  const web::PkCorpus* corpus_;
  Params params_;
  std::unique_ptr<Metrics> owned_metrics_;
  Metrics* metrics_;

  // Hot-path instrument references (resolved once; registry stays lockless
  // per observation).
  Counter* rendered_counter_;
  Counter* hits_counter_;
  Counter* misses_counter_;
  Counter* frames_counter_;
  Counter* evictions_counter_;
  Histogram* render_hist_;
  Histogram* encode_hist_;

  std::mutex prepare_mu_;  // serializes whole batches
  BundleCache cache_;
  std::uint32_t next_page_id_ = 1;

  // Worker pool.
  std::mutex pool_mu_;
  std::condition_variable pool_cv_;
  std::condition_variable done_cv_;
  std::deque<Job*> queue_;
  std::size_t pending_ = 0;
  bool stop_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace sonic::core
