// Popularity-driven broadcast carousel (the journal version's catalog
// broadcast; ROADMAP "one station serving millions of receivers").
//
// SONIC's downlink is a true broadcast, and the paper's users A and B have
// no SMS uplink: they can only consume what the station repeats. The
// carousel is the station-side loop that serves them. It keeps a
// popularity-weighted catalog (hit counts fed by SonicServer request
// handling), re-renders it on the pipeline at a fixed refresh cadence
// (hourly, matching the pipeline's render epoch), and cyclically broadcasts
// every catalog page with a configurable budget of fountain repair frames
// appended. Each cycle continues the page's rateless repair stream where
// the previous cycle stopped, so a receiver that keeps missing different
// frames accumulates *fresh* equations every cycle and converges even at
// loss rates where the interpolation-only path never would.
//
// Carousel airtime rides the BroadcastScheduler's lowest-priority lane and
// is preemptible: a user-requested page cuts in at the next frame boundary
// and the carousel resumes without re-sending what already aired.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "fec/fountain.hpp"
#include "sonic/framing.hpp"
#include "sonic/metrics.hpp"
#include "sonic/pipeline.hpp"

namespace sonic::core {

// Scheduler/bundle-map key prefix for carousel items, so a carousel cycle
// of url X never collides with a user-requested broadcast of X.
inline const std::string kCarouselKeyPrefix = "carousel:";

class Carousel {
 public:
  struct Params {
    std::size_t max_pages = 16;   // catalog capacity per cycle
    std::size_t min_hits = 1;     // popularity threshold for membership
    double repair_overhead = 0.3; // repair frames per page, as a fraction of its source frames
    double refresh_interval_s = 3600.0;  // catalog recomputation cadence
    int priority = 0;             // scheduler lane (user requests enqueue at 1)
    fec::FountainParams fountain;

    // Descriptive configuration errors; empty when sane.
    std::vector<std::string> validate() const;
  };

  // `metrics` may be shared with the owning server; may be null (metrics
  // are skipped). `pipeline` must outlive the carousel.
  Carousel(BroadcastPipeline* pipeline, Metrics* metrics, Params params);

  // Popularity accounting: one broadcast-worthy request for `url`.
  void record_hit(const std::string& url);

  // The current catalog, most popular first (hits, then url for ties).
  // Recomputed from hit counts at each refresh boundary.
  std::vector<std::pair<std::string, std::size_t>> catalog() const { return catalog_; }

  // One catalog page prepared for the air: its source frames plus the
  // repair-frame tail for this cycle.
  struct AirPage {
    std::string key;  // kCarouselKeyPrefix + url
    std::shared_ptr<const PageBundle> bundle;
    int priority = 0;
    bool preemptible = true;
  };

  // Advances refresh/cycle state. Returns the next cycle's pages when the
  // previous cycle has fully aired (empty while a cycle is in flight or
  // the catalog is empty). The owner enqueues them and reports completions
  // back through on_broadcast_complete().
  std::vector<AirPage> drive(double now_s);

  // Owner callback: one of drive()'s pages finished transmitting.
  void on_broadcast_complete(const std::string& key, double completed_at_s);

  std::size_t cycles_completed() const { return cycles_completed_; }
  std::size_t pages_in_flight() const { return in_flight_; }
  // Where url's rateless repair stream resumes next cycle (diagnostics).
  std::uint32_t next_repair_seq(const std::string& url) const;

 private:
  void refresh_catalog(double now_s);

  BroadcastPipeline* pipeline_;
  Metrics* metrics_;
  Params params_;

  std::map<std::string, std::size_t> hits_;
  std::vector<std::pair<std::string, std::size_t>> catalog_;
  double next_refresh_s_ = 0.0;
  bool refreshed_once_ = false;

  // Per-url repair stream position, persistent across cycles (wraps at
  // kRepairSeqSpace with receiver-side dedup).
  std::map<std::string, std::uint32_t> repair_seq_;

  std::size_t in_flight_ = 0;
  double cycle_started_s_ = 0.0;
  std::size_t cycles_completed_ = 0;
};

}  // namespace sonic::core
