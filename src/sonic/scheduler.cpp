#include "sonic/scheduler.hpp"

#include <algorithm>

namespace sonic::core {

BroadcastScheduler::BroadcastScheduler(Params params) : params_(params) {}

void BroadcastScheduler::enqueue(std::string url, std::size_t bytes, double now_s, int priority) {
  advance(std::max(now_s, now_s_));
  ScheduledItem item;
  item.url = std::move(url);
  item.bytes = bytes;
  item.enqueued_at_s = now_s;
  item.priority = priority;
  // Insert after the last item with >= priority (stable priority FIFO).
  // Never preempt the in-flight head.
  auto pos = queue_.begin();
  if (pos != queue_.end()) ++pos;  // skip head if transmitting
  if (queue_.empty()) {
    queue_.push_back(std::move(item));
    head_remaining_bytes_ = static_cast<double>(queue_.front().bytes);
    return;
  }
  while (pos != queue_.end() && pos->priority >= item.priority) ++pos;
  queue_.insert(pos, std::move(item));
}

std::vector<ScheduledItem> BroadcastScheduler::advance(double until_s) {
  std::vector<ScheduledItem> done;
  if (until_s <= now_s_) return done;
  double budget_bytes = (until_s - now_s_) * aggregate_rate_bps() / 8.0;
  double clock = now_s_;
  while (!queue_.empty() && budget_bytes > 0) {
    if (head_remaining_bytes_ <= 0) head_remaining_bytes_ = static_cast<double>(queue_.front().bytes);
    const double chunk = std::min(budget_bytes, head_remaining_bytes_);
    head_remaining_bytes_ -= chunk;
    budget_bytes -= chunk;
    clock += chunk * 8.0 / aggregate_rate_bps();
    if (head_remaining_bytes_ <= 1e-9) {
      ScheduledItem item = std::move(queue_.front());
      queue_.pop_front();
      item.completed_at_s = clock;
      done.push_back(std::move(item));
      head_remaining_bytes_ = queue_.empty() ? 0.0 : static_cast<double>(queue_.front().bytes);
    }
  }
  now_s_ = until_s;
  return done;
}

double BroadcastScheduler::backlog_bytes() const {
  double total = 0;
  for (std::size_t i = 0; i < queue_.size(); ++i) {
    total += i == 0 ? head_remaining_bytes_ : static_cast<double>(queue_[i].bytes);
  }
  return total;
}

double BroadcastScheduler::eta_s(std::size_t bytes) const { return eta_s(bytes, now_s_); }

double BroadcastScheduler::eta_s(std::size_t bytes, double now_s) const {
  // advance() is work-conserving at the aggregate rate, so by now_s it will
  // have moved (now_s - now_s_) * rate bytes of the current backlog
  // (in-flight remainder included), clamped at empty.
  double backlog = backlog_bytes();
  if (now_s > now_s_) {
    backlog = std::max(0.0, backlog - (now_s - now_s_) * aggregate_rate_bps() / 8.0);
  }
  return (backlog + static_cast<double>(bytes)) * 8.0 / aggregate_rate_bps();
}

}  // namespace sonic::core
