#include "sonic/scheduler.hpp"

#include <algorithm>
#include <cmath>
#include <iterator>

#include "sonic/framing.hpp"

namespace sonic::core {

BroadcastScheduler::BroadcastScheduler(Params params) : params_(params) {}

void BroadcastScheduler::enqueue(std::string url, std::size_t bytes, double now_s, int priority,
                                 bool preemptible) {
  // Drain up to the enqueue time first. Anything that completes here is
  // buffered and returned by the next advance() — enqueue must not swallow
  // completions (the carousel enqueues at the top of the server's advance,
  // right before it collects them).
  auto finished = advance(std::max(now_s, now_s_));
  std::move(finished.begin(), finished.end(), std::back_inserter(pending_done_));
  ScheduledItem item;
  item.url = std::move(url);
  item.bytes = bytes;
  item.enqueued_at_s = now_s;
  item.priority = priority;
  item.preemptible = preemptible;
  if (queue_.empty()) {
    queue_.push_back(std::move(item));
    head_remaining_bytes_ = static_cast<double>(queue_.front().bytes);
    return;
  }
  // A preemptible in-flight head (the carousel lane) yields to a strictly
  // higher-priority arrival at the next kFrameSize boundary: the frame
  // being modulated still goes out, then the head re-queues with only its
  // unsent whole frames, so nothing is transmitted twice when it resumes.
  if (queue_.front().preemptible && item.priority > queue_.front().priority) {
    const auto frame = static_cast<double>(kFrameSize);
    const double sent = static_cast<double>(queue_.front().bytes) - head_remaining_bytes_;
    const double boundary = std::ceil(sent / frame - 1e-9) * frame;
    const double resume_bytes = static_cast<double>(queue_.front().bytes) - boundary;
    if (resume_bytes >= frame - 1e-9) {
      ScheduledItem resumed = std::move(queue_.front());
      queue_.pop_front();
      resumed.bytes = static_cast<std::size_t>(std::llround(resume_bytes));
      ++preemptions_;
      queue_.push_front(std::move(item));
      head_remaining_bytes_ = static_cast<double>(queue_.front().bytes);
      // Re-queue the remainder at the front of its own priority class — it
      // was in flight, so it resumes before anything queued behind it.
      auto pos = queue_.begin() + 1;
      while (pos != queue_.end() && pos->priority > resumed.priority) ++pos;
      queue_.insert(pos, std::move(resumed));
      return;
    }
  }
  // Insert after the last item with >= priority (stable priority FIFO).
  // Never preempt a non-preemptible in-flight head.
  auto pos = queue_.begin();
  ++pos;  // skip head if transmitting
  while (pos != queue_.end() && pos->priority >= item.priority) ++pos;
  queue_.insert(pos, std::move(item));
}

std::vector<ScheduledItem> BroadcastScheduler::advance(double until_s) {
  std::vector<ScheduledItem> done = std::move(pending_done_);
  pending_done_.clear();
  if (until_s <= now_s_) return done;
  double budget_bytes = (until_s - now_s_) * aggregate_rate_bps() / 8.0;
  double clock = now_s_;
  while (!queue_.empty() && budget_bytes > 0) {
    if (head_remaining_bytes_ <= 0) head_remaining_bytes_ = static_cast<double>(queue_.front().bytes);
    const double chunk = std::min(budget_bytes, head_remaining_bytes_);
    head_remaining_bytes_ -= chunk;
    budget_bytes -= chunk;
    clock += chunk * 8.0 / aggregate_rate_bps();
    if (head_remaining_bytes_ <= 1e-9) {
      ScheduledItem item = std::move(queue_.front());
      queue_.pop_front();
      item.completed_at_s = clock;
      done.push_back(std::move(item));
      head_remaining_bytes_ = queue_.empty() ? 0.0 : static_cast<double>(queue_.front().bytes);
    }
  }
  now_s_ = until_s;
  return done;
}

double BroadcastScheduler::backlog_bytes() const {
  double total = 0;
  for (std::size_t i = 0; i < queue_.size(); ++i) {
    total += i == 0 ? head_remaining_bytes_ : static_cast<double>(queue_[i].bytes);
  }
  return total;
}

double BroadcastScheduler::eta_s(std::size_t bytes) const { return eta_s(bytes, now_s_); }

double BroadcastScheduler::eta_s(std::size_t bytes, double now_s) const {
  // advance() is work-conserving at the aggregate rate, so by now_s it will
  // have moved (now_s - now_s_) * rate bytes of the current backlog
  // (in-flight remainder included), clamped at empty.
  double backlog = backlog_bytes();
  if (now_s > now_s_) {
    backlog = std::max(0.0, backlog - (now_s - now_s_) * aggregate_rate_bps() / 8.0);
  }
  return (backlog + static_cast<double>(bytes)) * 8.0 / aggregate_rate_bps();
}

}  // namespace sonic::core
