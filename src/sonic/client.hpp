// SONIC client (§3.1): the user-space application on the phone. Receives
// frames from the FM downlink, reassembles pages into a cache with
// server-set expiry, exposes the catalog, renders pages scaled to the
// device, and navigates hyperlinks through the click map — instantly when
// the target is cached, via an SMS request when an uplink is available.
//
// The downlink path understands wire format v2: type 2 repair frames are
// routed into a per-page FountainDecoder which, fed by both source and
// repair symbols, reconstructs lost source frames byte for byte once it
// converges (flush() prefers that over interpolation). Malformed frames —
// wrong size, unknown type, seq past total, payload length past the frame
// end — are dropped and counted, never interpreted.
//
// The uplink path is a per-request retry state machine: every request gets
// a wire-format id, an ACK-await deadline, and capped exponential backoff
// with jitter. Silent SMS loss therefore costs a timeout, not the page;
// a server "RETRY <sec>" shed is honored as a scheduled resend; requests
// that exhaust max_attempts land in a terminal give-up state surfaced via
// the client Metrics registry.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "fec/fountain.hpp"
#include "image/interpolate.hpp"
#include "modem/ofdm.hpp"
#include "modem/stream_receiver.hpp"
#include "sms/sms.hpp"
#include "sonic/cache.hpp"
#include "sonic/framing.hpp"
#include "sonic/metrics.hpp"
#include "util/rng.hpp"

namespace sonic::core {

// Retry/backoff knobs for the SMS uplink state machine. Attempt k waits
// min(backoff_cap_s, ack_timeout_s * backoff_factor^(k-1)) for its ACK,
// jittered by ±jitter_frac, before the next resend; after max_attempts
// unanswered sends the request gives up.
struct UplinkPolicy {
  double ack_timeout_s = 30.0;   // first ACK-await window
  int max_attempts = 6;          // total sends (1 original + retries)
  double backoff_factor = 2.0;
  double backoff_cap_s = 240.0;
  double jitter_frac = 0.1;      // uniform ± fraction on every wait
  std::uint64_t seed = 0x534d5355ull;  // jitter stream ("SMSU")
};

// Lifecycle of one uplink request. kAwaitingAck and kBackoff are live
// (kBackoff = resend scheduled after a server RETRY shed); the rest are
// terminal.
enum class UplinkState { kAwaitingAck, kBackoff, kAccepted, kRejected, kGaveUp };

class SonicClient {
 public:
  struct Params {
    std::string phone_number;          // empty = downlink-only user (A/B in Fig. 3)
    std::string server_number = "+92-SONIC";
    double lat = 0.0;
    double lon = 0.0;
    int device_width = 360;            // Xiaomi Redmi Go class screen
    image::InterpolationMode interpolation = image::InterpolationMode::kLeft;
    std::size_t cache_pages = 64;
    // Fountain decoder knobs; must match the station's encoder (both sides
    // ship the same defaults).
    fec::FountainParams fountain;
    // Uplink retry/backoff state machine (ignored for downlink-only users).
    UplinkPolicy uplink;
    // Streaming downlink (on_audio): the OFDM profile the tuner audio was
    // modulated with, and the receive-buffer cap handed to StreamReceiver —
    // must be at least 2x the profile's min_decode_samples().
    std::string downlink_profile = "sonic-10k";
    std::size_t downlink_buffer_samples = std::size_t{1} << 21;

    // Descriptive configuration errors; empty when sane. The constructor
    // calls this and throws std::invalid_argument on nonsense (zero-width
    // device, empty server number, cache that can hold no pages).
    std::vector<std::string> validate() const;
  };

  // `gateway` may be null for downlink-only users.
  SonicClient(sms::SmsGateway* gateway, Params params);

  bool has_uplink() const { return gateway_ != nullptr && !params_.phone_number.empty(); }

  // ---- downlink -----------------------------------------------------------

  // Feed one received frame; lost frames simply never arrive. The modem's
  // per-frame FEC/CRC catches channel corruption, but a hostile or buggy
  // station can still emit well-CRC'd garbage — anything that fails frame
  // validation is dropped (and counted), never interpreted.
  void on_frame(std::span<const std::uint8_t> frame);

  // Feed a whole modem burst (nullopt slots = frames lost to FEC/CRC).
  void on_burst(const modem::RxBurst& burst);

  // Feed raw tuner audio in arbitrary-sized chunks: the streaming receiver
  // (profile params_.downlink_profile, created on first use, recording into
  // this client's Metrics registry) completes bursts as enough audio arrives
  // and routes their frames through on_burst(). Returns the number of
  // bursts this chunk completed.
  std::size_t on_audio(std::span<const float> chunk);

  // End of the tuner stream: resolves any burst still pending (its missing
  // tail decodes as erasures) and rewinds, so the next on_audio() starts a
  // fresh stream. Call flush(now_s) afterwards to cache the pages.
  std::size_t end_audio();

  // Moves every fully- or partially-received page into the cache (called
  // when a broadcast window ends). Returns the URLs cached.
  std::vector<std::string> flush(double now_s);

  // ---- browsing -----------------------------------------------------------

  std::vector<CatalogEntry> catalog(double now_s) const { return cache_.catalog(now_s); }

  // Page scaled for this device (§3.2 scaling factor), or nullopt if not
  // cached / expired.
  std::optional<web::RenderResult> open(const std::string& url, double now_s);

  enum class TapResult {
    kNoLink,          // nothing clickable at those coordinates
    kOpenedCached,    // target was in the cache: instant load (§3.1)
    kRequestedViaSms, // uplink request sent; watch for the ACK
    kNoUplink,        // user has no SMS service (users A/B)
  };

  // Tap at device coordinates within `current_url`'s page.
  TapResult tap(const std::string& current_url, int device_x, int device_y, double now_s);

  // Explicit page request (catalog search, address bar).
  TapResult request(const std::string& url, double now_s);

  // Search-engine / chatbot query (§3.1). The results page is broadcast
  // under "search:<query>" and lands in the cache like any page.
  TapResult ask(const std::string& query, double now_s);

  // ---- uplink state machine ----------------------------------------------

  // Drives timeouts: resends requests whose ACK-await deadline passed
  // (capped exponential backoff with jitter) and retires requests that
  // exhausted max_attempts into the kGaveUp terminal state. poll_acks()
  // calls this too, so a client that polls regularly needs no extra driver.
  void tick(double now_s);

  // Delivered server responses that *settled* a request: accepted ACKs and
  // terminal NACKs. Flow-control traffic is consumed internally — duplicate
  // and stale ACKs are dropped (counted), "RETRY <sec>" sheds schedule a
  // resend, delivery reports are counted. Calls tick(now_s).
  std::vector<sms::RequestAck> poll_acks(double now_s);

  // Live (kAwaitingAck/kBackoff) uplink requests.
  std::size_t uplink_pending() const { return uplink_pending_.size(); }
  // State of a request id issued by this client, live or terminal.
  std::optional<UplinkState> uplink_state(std::uint32_t id) const;
  // The id of the most recently issued request (0 when none yet).
  std::uint32_t last_uplink_id() const { return next_request_id_ - 1; }

  const PageCache& cache() const { return cache_; }
  std::size_t frames_received() const { return frames_received_; }
  // Frames rejected by validation (short/oversized frames, unknown types,
  // seq >= total, payload length past the frame end, repair frames whose
  // claimed k conflicts with an existing decoder).
  std::size_t frames_dropped_malformed() const { return frames_dropped_malformed_; }
  std::size_t repair_frames_received() const { return repair_frames_received_; }
  // Pages flush() reconstructed losslessly via fountain convergence.
  std::size_t pages_fountain_decoded() const {
    return metrics_->counter_value("pages_fountain_decoded");
  }

  // Client-side registry. Downlink: frames_dropped_malformed /
  // repair_frames_received counters, fountain convergence histograms
  // (fountain_repairs_used, fountain_reception_overhead),
  // pages_fountain_decoded. Uplink: uplink_requests, uplink_retries,
  // uplink_server_retries (RETRY sheds honored), uplink_acked,
  // uplink_rejected, uplink_gave_up, uplink_stale_acks, uplink_coalesced,
  // uplink_delivery_reports counters; uplink_ack_latency_s /
  // uplink_attempts histograms.
  Metrics& metrics() { return *metrics_; }
  const Metrics& metrics() const { return *metrics_; }

 private:
  // One live uplink request: the same body (same id) is resent verbatim on
  // every attempt, so the server's dedup table can recognize it.
  struct PendingUplink {
    std::uint32_t id = 0;
    std::string url;
    std::string body;
    int attempts = 0;
    UplinkState state = UplinkState::kAwaitingAck;
    double deadline_s = 0.0;    // ACK-await timeout or scheduled resend time
    double first_sent_s = 0.0;
  };

  TapResult start_uplink_request(const std::string& url, std::string body, double now_s);
  void send_attempt(PendingUplink& p, double now_s);
  double jittered(double wait_s);
  // The decoder for page_id (k source frames), created on the first repair
  // frame and backfilled with already-received source frames; null if a
  // conflicting k was already established.
  fec::FountainDecoder* decoder_for(std::uint32_t page_id, std::uint16_t k);

  // The streaming downlink receiver, created by the first on_audio() call.
  modem::StreamReceiver& stream_rx();

  sms::SmsGateway* gateway_;
  Params params_;
  std::unique_ptr<Metrics> metrics_;  // stable address; makes the client move-only
  std::unique_ptr<modem::OfdmModem> downlink_modem_;
  std::unique_ptr<modem::StreamReceiver> stream_rx_;
  PageAssembler assembler_;
  PageCache cache_;
  std::map<std::uint32_t, fec::FountainDecoder> decoders_;
  std::size_t frames_received_ = 0;
  std::size_t frames_dropped_malformed_ = 0;
  std::size_t repair_frames_received_ = 0;
  // Uplink state machine: live requests by id, terminal outcomes kept for
  // uplink_state() queries and stale-ACK classification.
  std::map<std::uint32_t, PendingUplink> uplink_pending_;
  std::map<std::uint32_t, UplinkState> uplink_done_;
  std::uint32_t next_request_id_ = 1;
  util::Rng uplink_rng_{0};  // reseeded from params in the constructor
};

}  // namespace sonic::core
