// SONIC client (§3.1): the user-space application on the phone. Receives
// frames from the FM downlink, reassembles pages into a cache with
// server-set expiry, exposes the catalog, renders pages scaled to the
// device, and navigates hyperlinks through the click map — instantly when
// the target is cached, via an SMS request when an uplink is available.
//
// The downlink path understands wire format v2: type 2 repair frames are
// routed into a per-page FountainDecoder which, fed by both source and
// repair symbols, reconstructs lost source frames byte for byte once it
// converges (flush() prefers that over interpolation). Malformed frames —
// wrong size, unknown type, seq past total, payload length past the frame
// end — are dropped and counted, never interpreted.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "fec/fountain.hpp"
#include "image/interpolate.hpp"
#include "modem/ofdm.hpp"
#include "sms/sms.hpp"
#include "sonic/cache.hpp"
#include "sonic/framing.hpp"
#include "sonic/metrics.hpp"

namespace sonic::core {

class SonicClient {
 public:
  struct Params {
    std::string phone_number;          // empty = downlink-only user (A/B in Fig. 3)
    std::string server_number = "+92-SONIC";
    double lat = 0.0;
    double lon = 0.0;
    int device_width = 360;            // Xiaomi Redmi Go class screen
    image::InterpolationMode interpolation = image::InterpolationMode::kLeft;
    std::size_t cache_pages = 64;
    // Fountain decoder knobs; must match the station's encoder (both sides
    // ship the same defaults).
    fec::FountainParams fountain;

    // Descriptive configuration errors; empty when sane. The constructor
    // calls this and throws std::invalid_argument on nonsense (zero-width
    // device, empty server number, cache that can hold no pages).
    std::vector<std::string> validate() const;
  };

  // `gateway` may be null for downlink-only users.
  SonicClient(sms::SmsGateway* gateway, Params params);

  bool has_uplink() const { return gateway_ != nullptr && !params_.phone_number.empty(); }

  // ---- downlink -----------------------------------------------------------

  // Feed one received frame; lost frames simply never arrive. The modem's
  // per-frame FEC/CRC catches channel corruption, but a hostile or buggy
  // station can still emit well-CRC'd garbage — anything that fails frame
  // validation is dropped (and counted), never interpreted.
  void on_frame(std::span<const std::uint8_t> frame);

  // Feed a whole modem burst (nullopt slots = frames lost to FEC/CRC).
  void on_burst(const modem::RxBurst& burst);

  // Moves every fully- or partially-received page into the cache (called
  // when a broadcast window ends). Returns the URLs cached.
  std::vector<std::string> flush(double now_s);

  // ---- browsing -----------------------------------------------------------

  std::vector<CatalogEntry> catalog(double now_s) const { return cache_.catalog(now_s); }

  // Page scaled for this device (§3.2 scaling factor), or nullopt if not
  // cached / expired.
  std::optional<web::RenderResult> open(const std::string& url, double now_s);

  enum class TapResult {
    kNoLink,          // nothing clickable at those coordinates
    kOpenedCached,    // target was in the cache: instant load (§3.1)
    kRequestedViaSms, // uplink request sent; watch for the ACK
    kNoUplink,        // user has no SMS service (users A/B)
  };

  // Tap at device coordinates within `current_url`'s page.
  TapResult tap(const std::string& current_url, int device_x, int device_y, double now_s);

  // Explicit page request (catalog search, address bar).
  TapResult request(const std::string& url, double now_s);

  // Search-engine / chatbot query (§3.1). The results page is broadcast
  // under "search:<query>" and lands in the cache like any page.
  TapResult ask(const std::string& query, double now_s);

  // Delivered server ACKs/NACKs.
  std::vector<sms::RequestAck> poll_acks(double now_s);

  const PageCache& cache() const { return cache_; }
  std::size_t frames_received() const { return frames_received_; }
  // Frames rejected by validation (short/oversized frames, unknown types,
  // seq >= total, payload length past the frame end, repair frames whose
  // claimed k conflicts with an existing decoder).
  std::size_t frames_dropped_malformed() const { return frames_dropped_malformed_; }
  std::size_t repair_frames_received() const { return repair_frames_received_; }
  // Pages flush() reconstructed losslessly via fountain convergence.
  std::size_t pages_fountain_decoded() const {
    return metrics_->counter_value("pages_fountain_decoded");
  }

  // Client-side registry: frames_dropped_malformed / repair_frames_received
  // counters, fountain convergence histograms (fountain_repairs_used,
  // fountain_reception_overhead), pages_fountain_decoded.
  Metrics& metrics() { return *metrics_; }
  const Metrics& metrics() const { return *metrics_; }

 private:
  // The decoder for page_id (k source frames), created on the first repair
  // frame and backfilled with already-received source frames; null if a
  // conflicting k was already established.
  fec::FountainDecoder* decoder_for(std::uint32_t page_id, std::uint16_t k);

  sms::SmsGateway* gateway_;
  Params params_;
  std::unique_ptr<Metrics> metrics_;  // stable address; makes the client move-only
  PageAssembler assembler_;
  PageCache cache_;
  std::map<std::uint32_t, fec::FountainDecoder> decoders_;
  std::size_t frames_received_ = 0;
  std::size_t frames_dropped_malformed_ = 0;
  std::size_t repair_frames_received_ = 0;
};

}  // namespace sonic::core
