// Broadcast scheduler — the server-side queue whose backlog dynamics are
// Figure 4(c). Pages to broadcast (hourly re-renders of the popular catalog
// plus user requests) accumulate in a priority FIFO and drain at the
// transmission rate; multiple frequencies multiply the drain rate (§4:
// "20 and 40 kbps can be achieved via multi-frequency").
#pragma once

#include <cstdint>
#include <deque>
#include <string>
#include <vector>

namespace sonic::core {

struct ScheduledItem {
  std::string url;
  std::size_t bytes = 0;  // bytes still to send (reduced when a preempted item resumes)
  double enqueued_at_s = 0.0;
  int priority = 0;  // higher first; user requests outrank refreshes
  // Carousel lane: a preemptible in-flight item yields to a newly enqueued
  // higher-priority item at the next frame boundary and later resumes
  // without re-sending the frames already transmitted.
  bool preemptible = false;
  double completed_at_s = 0.0;
};

class BroadcastScheduler {
 public:
  struct Params {
    double rate_bps = 10000.0;  // per frequency
    int num_frequencies = 1;
  };

  explicit BroadcastScheduler(Params params);

  void enqueue(std::string url, std::size_t bytes, double now_s, int priority = 0,
               bool preemptible = false);

  // Advances the wall clock, draining the queue at the aggregate rate.
  // Returns items whose transmission completed in (previous now, until_s].
  std::vector<ScheduledItem> advance(double until_s);

  // Bytes still waiting (including the in-flight remainder) — the Fig. 4(c)
  // "Data to Broadcast" series.
  double backlog_bytes() const;

  // Estimated seconds until a new item of `bytes` would finish, as promised
  // in the SMS ACK (§3.1), evaluated at the scheduler's own clock (the time
  // of the last advance/enqueue).
  double eta_s(std::size_t bytes) const;

  // Same estimate evaluated at `now_s`: accounts for the drain advance()
  // will have performed by then — including the in-flight head remainder at
  // the full multi-frequency aggregate rate — so the promise matches the
  // completion time advance() actually reports. With num_frequencies > 1 the
  // clock-lag error of the old overload is multiplied by the frequency
  // count, which is what this overload exists to remove.
  double eta_s(std::size_t bytes, double now_s) const;

  double aggregate_rate_bps() const { return params_.rate_bps * params_.num_frequencies; }
  double now() const { return now_s_; }
  std::size_t queue_length() const { return queue_.size(); }
  // Times an in-flight preemptible item was displaced by a higher-priority
  // enqueue (each resumes later from its frame boundary).
  std::size_t preemptions() const { return preemptions_; }

 private:
  Params params_;
  double now_s_ = 0.0;
  std::deque<ScheduledItem> queue_;  // kept sorted: priority desc, then FIFO
  double head_remaining_bytes_ = 0.0;
  std::size_t preemptions_ = 0;
  // Items whose transmission completed during an enqueue's internal drain;
  // handed out by the next advance() so no completion is ever swallowed.
  std::vector<ScheduledItem> pending_done_;
};

}  // namespace sonic::core
