#include "sonic/framing.hpp"

#include <algorithm>
#include <stdexcept>

namespace sonic::core {
namespace {

// Metadata frames carry [chunk_idx u8][num_chunks u8][blob piece], so a
// repeated copy of chunk k is recognizable regardless of its seq number.
constexpr std::size_t kMetaChunkSize = kFramePayloadSize - 2;

}  // namespace

util::Bytes serialize_frame(const FrameHeader& header, std::span<const std::uint8_t> payload) {
  util::ByteWriter w;
  w.u32(header.page_id);
  w.u16(header.seq);
  w.u16(header.total);
  w.u8(header.type);
  w.u8(static_cast<std::uint8_t>(payload.size()));
  w.raw(payload);
  util::Bytes out = w.take();
  out.resize(kFrameSize, 0);
  return out;
}

std::optional<std::pair<FrameHeader, util::Bytes>> parse_frame(std::span<const std::uint8_t> frame) {
  if (frame.size() != kFrameSize) return std::nullopt;
  util::ByteReader r(frame);
  FrameHeader h;
  h.page_id = r.u32();
  h.seq = r.u16();
  h.total = r.u16();
  h.type = r.u8();
  if (!r.ok()) return std::nullopt;
  if (h.type == kFrameTypeRepair) {
    // v2: seq is the repair_seq (unbounded by total), total is the page's
    // source-frame count, and the rest of the frame is the symbol.
    if (h.total == 0) return std::nullopt;
    return std::make_pair(h, r.raw(kFountainBlockSize));
  }
  const std::uint8_t len = r.u8();
  if (!r.ok() || len > kFramePayloadSize || h.seq >= h.total || h.type > kFrameTypeSegment) {
    return std::nullopt;
  }
  return std::make_pair(h, r.raw(len));
}

util::Bytes fountain_block(std::span<const std::uint8_t> frame) {
  if (frame.size() != kFrameSize) throw std::invalid_argument("fountain_block: bad frame size");
  const std::uint8_t type = frame[8];
  const std::uint8_t len = frame[9];
  if (type > kFrameTypeSegment || len > kFramePayloadSize) {
    throw std::invalid_argument("fountain_block: not a source frame");
  }
  util::Bytes block(kFountainBlockSize);
  block[0] = static_cast<std::uint8_t>((type << 7) | len);
  std::copy(frame.begin() + kFrameHeaderSize, frame.end(), block.begin() + 1);
  return block;
}

std::vector<util::Bytes> bundle_fountain_blocks(const PageBundle& bundle) {
  std::vector<util::Bytes> blocks;
  blocks.reserve(bundle.frames.size());
  for (const util::Bytes& frame : bundle.frames) blocks.push_back(fountain_block(frame));
  return blocks;
}

std::optional<util::Bytes> frame_from_fountain_block(std::uint32_t page_id, std::uint16_t seq,
                                                     std::uint16_t total,
                                                     std::span<const std::uint8_t> block) {
  if (block.size() != kFountainBlockSize) return std::nullopt;
  const std::uint8_t type = block[0] >> 7;
  const std::uint8_t len = block[0] & 0x7f;
  if (len > kFramePayloadSize) return std::nullopt;
  util::Bytes frame = serialize_frame({page_id, seq, total, type}, block.subspan(1, len));
  // The padding region beyond payload_len must be zero in a well-formed
  // block; a decoded block that disagrees was corrupted upstream.
  for (std::size_t i = 1 + len; i < block.size(); ++i) {
    if (block[i] != 0) return std::nullopt;
  }
  return frame;
}

util::Bytes serialize_repair_frame(std::uint32_t page_id, std::uint16_t repair_seq,
                                   std::uint16_t k, std::span<const std::uint8_t> symbol) {
  if (symbol.size() != kFountainBlockSize) {
    throw std::invalid_argument("serialize_repair_frame: bad symbol size");
  }
  util::ByteWriter w;
  w.u32(page_id);
  w.u16(repair_seq);
  w.u16(k);
  w.u8(kFrameTypeRepair);
  w.raw(symbol);
  return w.take();
}

util::Bytes serialize_metadata(const PageMetadata& m) {
  util::ByteWriter w;
  w.str(m.url);
  w.u16(static_cast<std::uint16_t>(m.width));
  w.u32(static_cast<std::uint32_t>(m.height));
  w.u8(static_cast<std::uint8_t>(m.quality));
  w.u32(m.expiry_s);
  w.u16(static_cast<std::uint16_t>(m.click_map.size()));
  for (const web::ClickRegion& r : m.click_map) {
    w.u16(static_cast<std::uint16_t>(r.x));
    w.u32(static_cast<std::uint32_t>(r.y));
    w.u16(static_cast<std::uint16_t>(r.w));
    w.u16(static_cast<std::uint16_t>(r.h));
    w.str(r.href);
  }
  return w.take();
}

std::optional<PageMetadata> parse_metadata(std::span<const std::uint8_t> blob) {
  util::ByteReader r(blob);
  PageMetadata m;
  m.url = r.str();
  m.width = r.u16();
  m.height = static_cast<int>(r.u32());
  m.quality = r.u8();
  m.expiry_s = r.u32();
  if (!r.ok() || m.width <= 0 || m.height <= 0) return std::nullopt;
  const std::uint16_t n = r.u16();
  for (std::uint16_t i = 0; i < n && r.ok(); ++i) {
    web::ClickRegion region;
    region.x = r.u16();
    region.y = static_cast<int>(r.u32());
    region.w = r.u16();
    region.h = r.u16();
    region.href = r.str();
    // A truncated blob (lost trailing metadata chunk) yields a shorter
    // click map but keeps the page usable.
    if (!r.ok()) break;
    m.click_map.push_back(std::move(region));
  }
  return m;
}

PageBundle make_bundle(std::uint32_t page_id, const std::string& url,
                       const web::RenderResult& page, const image::ColumnCodecParams& codec_in,
                       std::uint32_t expiry_s, const UepPolicy& uep) {
  PageBundle bundle;
  bundle.page_id = page_id;
  bundle.metadata.url = url;
  bundle.metadata.width = page.image.width();
  bundle.metadata.height = page.image.height();
  bundle.metadata.quality = codec_in.quality;
  bundle.metadata.expiry_s = expiry_s;
  bundle.metadata.click_map = page.click_map;

  image::ColumnCodecParams codec = codec_in;
  // Segment wire form = 6-byte segment header + data; it must fit the frame
  // payload.
  codec.payload_budget = std::min(codec.payload_budget, static_cast<int>(kFramePayloadSize) - 6);

  const util::Bytes meta_blob = serialize_metadata(bundle.metadata);
  const std::size_t num_chunks = std::max<std::size_t>(1, (meta_blob.size() + kMetaChunkSize - 1) / kMetaChunkSize);

  // UEP: the top region is encoded separately so no segment straddles the
  // protection boundary, then its frames are repeated.
  const int uep_row_limit =
      uep.enabled ? std::max(1, static_cast<int>(page.image.height() * uep.top_fraction)) : 0;
  std::vector<image::ColumnSegment> segments;
  if (uep.enabled && uep_row_limit < page.image.height()) {
    segments = image::column_encode(page.image.cropped_to_height(uep_row_limit), codec);
    // Bottom region: shift row origins past the boundary.
    image::Raster bottom(page.image.width(), page.image.height() - uep_row_limit);
    for (int y = 0; y < bottom.height(); ++y) {
      for (int x = 0; x < bottom.width(); ++x) bottom.at(x, y) = page.image.at(x, y + uep_row_limit);
    }
    for (auto seg : image::column_encode(bottom, codec)) {
      seg.row0 = static_cast<std::uint16_t>(seg.row0 + uep_row_limit);
      segments.push_back(std::move(seg));
    }
  } else {
    segments = image::column_encode(page.image, codec);
  }
  auto uep_copies = [&](const image::ColumnSegment& seg) {
    return uep.enabled && seg.row0 < uep_row_limit ? std::max(1, uep.copies) : 1;
  };
  std::size_t segment_frames = 0;
  for (const auto& seg : segments) segment_frames += static_cast<std::size_t>(uep_copies(seg));

  const std::size_t total = 2 * num_chunks + segment_frames;
  if (total > 0xffff) {
    // Pages this large (> ~5.9 MB of frames) exceed the 16-bit sequence
    // space; callers should split them. Clamp rather than overflow.
    throw std::invalid_argument("page too large for one bundle");
  }

  std::uint16_t seq = 0;
  auto push_meta_copy = [&]() {
    for (std::size_t c = 0; c < num_chunks; ++c) {
      util::ByteWriter payload;
      payload.u8(static_cast<std::uint8_t>(c));
      payload.u8(static_cast<std::uint8_t>(num_chunks));
      const std::size_t off = c * kMetaChunkSize;
      const std::size_t len = std::min(kMetaChunkSize, meta_blob.size() - off);
      payload.raw(std::span(meta_blob).subspan(off, len));
      bundle.frames.push_back(serialize_frame(
          {page_id, seq++, static_cast<std::uint16_t>(total), 0}, payload.bytes()));
    }
  };

  push_meta_copy();  // first copy up front (fast page display)
  for (const auto& seg : segments) {
    const util::Bytes payload = image::segment_serialize(seg);
    for (int copy = 0; copy < uep_copies(seg); ++copy) {
      bundle.frames.push_back(
          serialize_frame({page_id, seq++, static_cast<std::uint16_t>(total), 1}, payload));
    }
  }
  push_meta_copy();  // repetition redundancy at the tail

  return bundle;
}

PageAssembler::PageAssembler(image::ColumnCodecParams codec) : codec_(codec) {}

void PageAssembler::push(std::span<const std::uint8_t> frame) {
  const auto parsed = parse_frame(frame);
  if (!parsed) return;
  const auto& [header, payload] = *parsed;
  // Repair frames live at the fountain layer (SonicClient routes them to a
  // FountainDecoder); the assembler only tracks source frames.
  if (header.type == kFrameTypeRepair) return;
  Partial& partial = pages_[header.page_id];
  if (partial.payloads.empty()) {
    partial.total = header.total;
    partial.payloads.resize(header.total);
  }
  if (header.total != partial.total || header.seq >= partial.payloads.size()) return;
  auto& slot = partial.payloads[header.seq];
  if (!slot.has_value()) {
    util::ByteWriter w;
    w.u8(header.type);
    w.raw(payload);
    slot = w.take();
  }
}

bool PageAssembler::complete(std::uint32_t page_id) const {
  const auto it = pages_.find(page_id);
  if (it == pages_.end()) return false;
  return std::all_of(it->second.payloads.begin(), it->second.payloads.end(),
                     [](const auto& p) { return p.has_value(); });
}

std::vector<std::uint32_t> PageAssembler::known_pages() const {
  std::vector<std::uint32_t> out;
  for (const auto& [id, partial] : pages_) {
    (void)partial;
    out.push_back(id);
  }
  return out;
}

void PageAssembler::drop(std::uint32_t page_id) { pages_.erase(page_id); }

std::vector<std::pair<std::uint16_t, util::Bytes>> PageAssembler::received_slots(
    std::uint32_t page_id) const {
  std::vector<std::pair<std::uint16_t, util::Bytes>> out;
  const auto it = pages_.find(page_id);
  if (it == pages_.end()) return out;
  const Partial& partial = it->second;
  for (std::size_t seq = 0; seq < partial.payloads.size(); ++seq) {
    if (partial.payloads[seq].has_value()) {
      out.emplace_back(static_cast<std::uint16_t>(seq), *partial.payloads[seq]);
    }
  }
  return out;
}

std::optional<ReceivedPage> PageAssembler::assemble(std::uint32_t page_id,
                                                    image::InterpolationMode mode) const {
  const auto it = pages_.find(page_id);
  if (it == pages_.end()) return std::nullopt;
  const Partial& partial = it->second;

  // Collect metadata chunks (either copy) and segments.
  std::map<int, util::Bytes> meta_chunks;
  int num_chunks = -1;
  std::vector<image::ColumnSegment> segments;
  std::size_t received = 0;
  for (const auto& slot : partial.payloads) {
    if (!slot.has_value()) continue;
    ++received;
    util::ByteReader r(*slot);
    const std::uint8_t type = r.u8();
    if (type == 0) {
      const int chunk = r.u8();
      const int chunks_total = r.u8();
      if (!r.ok()) continue;
      num_chunks = std::max(num_chunks, chunks_total);
      meta_chunks.emplace(chunk, r.raw(r.remaining()));
    } else {
      const auto seg = image::segment_parse(std::span(*slot).subspan(1));
      if (seg) segments.push_back(std::move(*seg));
    }
  }
  if (meta_chunks.empty() || num_chunks <= 0) return std::nullopt;

  // Use the available prefix of chunks (parse_metadata tolerates a
  // truncated tail: the click map just loses entries).
  util::Bytes blob;
  for (int c = 0; c < num_chunks; ++c) {
    const auto chunk = meta_chunks.find(c);
    if (chunk == meta_chunks.end()) break;
    blob.insert(blob.end(), chunk->second.begin(), chunk->second.end());
  }
  auto metadata = parse_metadata(blob);
  if (!metadata) return std::nullopt;

  image::ColumnCodecParams codec = codec_;
  codec.quality = metadata->quality;
  auto decoded = image::column_decode(metadata->width, metadata->height, segments, codec);

  ReceivedPage page;
  page.metadata = std::move(*metadata);
  page.coverage = decoded.coverage();
  page.frames_received = received;
  page.frames_expected = partial.total;
  page.mask = decoded.mask;  // pre-interpolation mask, for diagnostics
  auto mask = std::move(decoded.mask);
  image::interpolate_missing(decoded.image, mask, mode);
  page.image = std::move(decoded.image);
  return page;
}

}  // namespace sonic::core
