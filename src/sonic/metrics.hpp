// Forwarding header: the Metrics registry moved to util/metrics.hpp so the
// modem's StreamReceiver can record into it without a sonic_core dependency.
// The types still live in namespace sonic::core.
#pragma once

#include "util/metrics.hpp"
