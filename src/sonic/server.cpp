#include "sonic/server.hpp"

#include <cmath>

namespace sonic::core {
namespace {

// Rough great-circle distance; fine at city scale.
double distance_km(double lat1, double lon1, double lat2, double lon2) {
  const double kKmPerDegree = 111.32;
  const double dlat = (lat1 - lat2) * kKmPerDegree;
  const double dlon = (lon1 - lon2) * kKmPerDegree * std::cos(lat1 * 3.14159265 / 180.0);
  return std::sqrt(dlat * dlat + dlon * dlon);
}

}  // namespace

SonicServer::SonicServer(const web::PkCorpus* corpus, sms::SmsGateway* gateway, Params params)
    : corpus_(corpus),
      gateway_(gateway),
      params_(std::move(params)),
      scheduler_({params_.rate_bps, params_.num_frequencies}) {}

const Transmitter* SonicServer::route(double lat, double lon) const {
  const Transmitter* best = nullptr;
  double best_dist = 1e18;
  for (const Transmitter& t : params_.transmitters) {
    const double d = distance_km(lat, lon, t.lat, t.lon);
    if (d <= t.range_km && d < best_dist) {
      best = &t;
      best_dist = d;
    }
  }
  return best;
}

const PageBundle* SonicServer::bundle_for(const std::string& url, double now_s) {
  const int epoch = static_cast<int>(now_s / 3600.0);
  if (url.rfind("search:", 0) == 0) {
    // Search results page: regenerated when the underlying results rotate
    // (every 6 hours in the corpus model).
    const std::string query = url.substr(7);
    const int version = epoch / 6;
    auto it = render_cache_.find(url);
    if (it != render_cache_.end() && it->second.version == version) {
      ++cache_hits_;
      return &it->second.bundle;
    }
    ++renders_;
    const auto page = web::render_html(corpus_->search_html(query, epoch), params_.layout);
    RenderedPage rendered;
    rendered.version = version;
    rendered.bundle = make_bundle(next_page_id_++, url, page, params_.codec, params_.page_expiry_s);
    auto [slot, inserted] = render_cache_.insert_or_assign(url, std::move(rendered));
    (void)inserted;
    return &slot->second.bundle;
  }

  const web::PageRef* ref = corpus_->find(url);
  if (!ref) return nullptr;
  const int version = corpus_->version(*ref, epoch);
  auto it = render_cache_.find(ref->url);
  if (it != render_cache_.end() && it->second.version == version) {
    // §3.1: "either from its cache, e.g., if recently requested by another
    // user, or by directly accessing it".
    ++cache_hits_;
    return &it->second.bundle;
  }
  ++renders_;
  const auto page = web::render_html(corpus_->html(*ref, epoch), params_.layout);
  RenderedPage rendered;
  rendered.version = version;
  rendered.bundle = make_bundle(next_page_id_++, ref->url, page, params_.codec, params_.page_expiry_s);
  auto [slot, inserted] = render_cache_.insert_or_assign(ref->url, std::move(rendered));
  (void)inserted;
  return &slot->second.bundle;
}

void SonicServer::poll_sms(double now_s) {
  for (const sms::SmsMessage& msg : gateway_->deliver_due(params_.phone_number, now_s)) {
    auto request = sms::parse_request(msg.body);
    if (!request) {
      // Search queries map onto the same flow under a synthetic URL.
      if (const auto query = sms::parse_query(msg.body)) {
        request = sms::PageRequest{"search:" + query->query, query->lat, query->lon};
      }
    }
    if (!request) continue;
    sms::RequestAck ack;
    ack.url = request->url;

    const Transmitter* tx = route(request->lat, request->lon);
    if (!tx) {
      ack.accepted = false;
      ack.reason = "no-coverage";
    } else if (const PageBundle* bundle = bundle_for(request->url, now_s)) {
      ack.accepted = true;
      ack.frequency_mhz = tx->frequency_mhz;
      ack.eta_s = scheduler_.eta_s(bundle->total_bytes());
      scheduler_.enqueue(bundle->metadata.url, bundle->total_bytes(), now_s, /*priority=*/1);
      pending_route_[bundle->metadata.url] = *tx;
    } else {
      ack.accepted = false;
      ack.reason = "unknown-page";
    }
    gateway_->send({params_.phone_number, msg.from, sms::encode_ack(ack), now_s, 0}, now_s);
  }
}

int SonicServer::push_pages(const std::vector<std::string>& urls, double now_s, int priority) {
  int enqueued = 0;
  for (const std::string& url : urls) {
    const PageBundle* bundle = bundle_for(url, now_s);
    if (!bundle) continue;
    scheduler_.enqueue(bundle->metadata.url, bundle->total_bytes(), now_s, priority);
    if (!params_.transmitters.empty()) pending_route_[bundle->metadata.url] = params_.transmitters.front();
    ++enqueued;
  }
  return enqueued;
}

std::vector<CompletedBroadcast> SonicServer::advance(double now_s) {
  std::vector<CompletedBroadcast> out;
  for (ScheduledItem& item : scheduler_.advance(now_s)) {
    const auto cached = render_cache_.find(item.url);
    if (cached == render_cache_.end()) continue;
    CompletedBroadcast done;
    const auto routed = pending_route_.find(item.url);
    done.transmitter = routed != pending_route_.end() ? routed->second : params_.transmitters.front();
    done.bundle = cached->second.bundle;
    done.completed_at_s = item.completed_at_s;
    out.push_back(std::move(done));
  }
  return out;
}

}  // namespace sonic::core
