#include "sonic/server.hpp"

#include <algorithm>
#include <cmath>
#include <set>
#include <stdexcept>

namespace sonic::core {
namespace {

// Rough great-circle distance; fine at city scale.
double distance_km(double lat1, double lon1, double lat2, double lon2) {
  const double kKmPerDegree = 111.32;
  const double dlat = (lat1 - lat2) * kKmPerDegree;
  const double dlon = (lon1 - lon2) * kKmPerDegree * std::cos(lat1 * 3.14159265 / 180.0);
  return std::sqrt(dlat * dlat + dlon * dlon);
}

SonicServer::Params validated(SonicServer::Params params) {
  const auto errors = params.validate();
  if (!errors.empty()) {
    std::string msg = "invalid SonicServer::Params:";
    for (const auto& e : errors) msg += "\n  - " + e;
    throw std::invalid_argument(msg);
  }
  return params;
}

BroadcastPipeline::Params pipeline_params(const SonicServer::Params& p) {
  BroadcastPipeline::Params pp;
  pp.layout = p.layout;
  pp.codec = p.codec;
  pp.page_expiry_s = p.page_expiry_s;
  pp.cache_pages = p.render_cache_pages;
  pp.num_threads = p.render_threads;
  return pp;
}

}  // namespace

std::vector<std::string> SonicServer::Params::validate() const {
  std::vector<std::string> errors;
  if (phone_number.empty()) errors.push_back("phone_number must not be empty");
  if (!(rate_bps > 0.0)) errors.push_back("rate_bps must be positive (got " + std::to_string(rate_bps) + ")");
  if (num_frequencies <= 0) {
    errors.push_back("num_frequencies must be >= 1 (got " + std::to_string(num_frequencies) + ")");
  }
  if (transmitters.empty()) errors.push_back("transmitters must not be empty (nothing to broadcast from)");
  std::set<std::string> names;
  for (const Transmitter& t : transmitters) {
    if (t.name.empty()) errors.push_back("every transmitter needs a name (shard key)");
    if (!names.insert(t.name).second) errors.push_back("duplicate transmitter name '" + t.name + "'");
    if (!(t.range_km > 0.0)) errors.push_back("transmitter '" + t.name + "' range_km must be positive");
  }
  if (page_expiry_s == 0) errors.push_back("page_expiry_s must be nonzero");
  if (!(dedup_ttl_s > 0.0)) errors.push_back("dedup_ttl_s must be positive");
  if (shed_backlog_bytes < 0.0) errors.push_back("shed_backlog_bytes must be >= 0 (0 disables shedding)");
  if (!(shed_retry_floor_s > 0.0)) errors.push_back("shed_retry_floor_s must be positive");
  if (shed_retry_cap_s < shed_retry_floor_s) {
    errors.push_back("shed_retry_cap_s must be >= shed_retry_floor_s");
  }
  for (const auto& e : pipeline_params(*this).validate()) errors.push_back(e);
  if (carousel_enabled) {
    for (const auto& e : carousel.validate()) errors.push_back(e);
  }
  return errors;
}

SonicServer::SonicServer(const web::PkCorpus* corpus, sms::SmsGateway* gateway, Params params)
    : corpus_(corpus),
      gateway_(gateway),
      params_(validated(std::move(params))),
      metrics_(std::make_unique<Metrics>()),
      pipeline_(corpus_, pipeline_params(params_), metrics_.get()) {
  if (params_.carousel_enabled) {
    carousel_ = std::make_unique<Carousel>(&pipeline_, metrics_.get(), params_.carousel);
  }
  shards_.reserve(params_.transmitters.size());
  for (std::size_t i = 0; i < params_.transmitters.size(); ++i) {
    shards_.emplace_back(BroadcastScheduler::Params{params_.rate_bps, params_.num_frequencies});
  }
}

const Transmitter* SonicServer::route(double lat, double lon) const {
  const Transmitter* best = nullptr;
  double best_dist = 1e18;
  for (const Transmitter& t : params_.transmitters) {
    const double d = distance_km(lat, lon, t.lat, t.lon);
    if (d <= t.range_km && d < best_dist) {
      best = &t;
      best_dist = d;
    }
  }
  return best;
}

std::size_t SonicServer::shard_of(const Transmitter& tx) const {
  for (std::size_t i = 0; i < params_.transmitters.size(); ++i) {
    if (params_.transmitters[i].name == tx.name) return i;
  }
  return 0;  // unreachable for transmitters returned by route()
}

const BroadcastScheduler* SonicServer::scheduler_for(const std::string& transmitter) const {
  for (std::size_t i = 0; i < params_.transmitters.size(); ++i) {
    if (params_.transmitters[i].name == transmitter) return &shards_[i];
  }
  return nullptr;
}

double SonicServer::total_backlog_bytes() const {
  double total = 0;
  for (const BroadcastScheduler& s : shards_) total += s.backlog_bytes();
  return total;
}

std::size_t SonicServer::total_queue_length() const {
  std::size_t total = 0;
  for (const BroadcastScheduler& s : shards_) total += s.queue_length();
  return total;
}

void SonicServer::purge_dedup(double now_s) {
  for (auto it = dedup_.begin(); it != dedup_.end();) {
    if (it->second.last_seen_s + params_.dedup_ttl_s <= now_s) {
      it = dedup_.erase(it);
    } else {
      ++it;
    }
  }
}

void SonicServer::answer(const std::string& to, const sms::RequestAck& ack, double now_s) {
  metrics_->counter(ack.accepted ? "acks_sent" : "nacks_sent").add(1);
  gateway_->send({params_.phone_number, to, sms::encode_ack(ack), now_s, 0}, now_s);
}

void SonicServer::poll_sms(double now_s) {
  purge_dedup(now_s);
  for (const sms::SmsMessage& msg : gateway_->deliver_due(params_.phone_number, now_s)) {
    auto request = sms::parse_request(msg.body);
    if (!request) {
      // Search queries map onto the same flow under a synthetic URL.
      if (const auto query = sms::parse_query(msg.body)) {
        request = sms::PageRequest{"search:" + query->query, query->lat, query->lon, query->id};
      }
    }
    if (!request) {
      metrics_->counter("requests_malformed").add(1);
      continue;
    }
    metrics_->counter("requests_received").add(1);
    sms::RequestAck ack;
    ack.url = request->url;
    ack.id = request->id;  // echoed so the client can match retransmissions

    // Idempotency: a retransmission or SMSC duplicate replays the recorded
    // outcome — re-ACK with a fresh ETA, never a second broadcast.
    const std::string dedup_key =
        msg.from + '\x1f' + std::to_string(request->id) + '\x1f' + request->url;
    if (const auto seen = dedup_.find(dedup_key); seen != dedup_.end()) {
      metrics_->counter("requests_deduped").add(1);
      DedupEntry& entry = seen->second;
      // Sliding TTL: every duplicate renews the entry, so it expires only
      // once the client's retry schedule has gone quiet — a backoff cap
      // longer than the TTL cannot resurrect the request as a second
      // broadcast.
      entry.last_seen_s = now_s;
      ack.accepted = entry.accepted;
      if (entry.accepted) {
        ack.frequency_mhz = entry.frequency_mhz;
        ack.eta_s = std::max(0.0, entry.expected_complete_at_s - now_s);
      } else {
        ack.reason = entry.reason;
      }
      answer(msg.from, ack, now_s);
      continue;
    }

    const Transmitter* tx = route(request->lat, request->lon);
    if (!tx) {
      ack.accepted = false;
      ack.reason = "no-coverage";
      dedup_[dedup_key] = {request->url, now_s, 0.0, 0.0, false, ack.reason};
      metrics_->counter("requests_rejected").add(1);
      answer(msg.from, ack, now_s);
      continue;
    }
    const std::size_t shard_idx = shard_of(*tx);
    BroadcastScheduler& shard = shards_[shard_idx];

    // Overload shedding: past the backlog bound, answer "RETRY <sec>"
    // (derived from the drain time) without rendering. No dedup entry —
    // the client's resend after the wait must be served, not replayed.
    if (params_.shed_backlog_bytes > 0.0 && shard.backlog_bytes() > params_.shed_backlog_bytes) {
      const double drain_s = shard.backlog_bytes() * 8.0 / shard.aggregate_rate_bps();
      const double retry_s = std::clamp(drain_s, params_.shed_retry_floor_s, params_.shed_retry_cap_s);
      ack.accepted = false;
      ack.reason = "RETRY " + std::to_string(static_cast<int>(std::ceil(retry_s)));
      metrics_->counter("requests_shed").add(1);
      answer(msg.from, ack, now_s);
      continue;
    }

    // Same page already on the air for this shard (another user asked
    // first): the one broadcast serves both — ACK with its ETA.
    const std::string inflight_key = std::to_string(shard_idx) + '\x1f' + request->url;
    if (const auto flying = inflight_.find(inflight_key); flying != inflight_.end()) {
      ack.accepted = true;
      ack.frequency_mhz = tx->frequency_mhz;
      ack.eta_s = std::max(0.0, flying->second - now_s);
      dedup_[dedup_key] = {request->url, now_s, flying->second, tx->frequency_mhz, true, ""};
      if (carousel_) carousel_->record_hit(request->url);
      metrics_->counter("requests_coalesced").add(1);
      answer(msg.from, ack, now_s);
      continue;
    }

    std::shared_ptr<const PageBundle> bundle = pipeline_.prepare_one(request->url, now_s);
    if (!bundle) {
      ack.accepted = false;
      ack.reason = "unknown-page";
      dedup_[dedup_key] = {request->url, now_s, 0.0, 0.0, false, ack.reason};
      metrics_->counter("requests_rejected").add(1);
      answer(msg.from, ack, now_s);
      continue;
    }
    ack.accepted = true;
    ack.frequency_mhz = tx->frequency_mhz;
    // eta evaluated at now_s so the promise matches the shard's actual
    // completion time even when the shard clock lags the SMS poll.
    ack.eta_s = shard.eta_s(bundle->total_bytes(), now_s);
    shard.enqueue(bundle->metadata.url, bundle->total_bytes(), now_s, /*priority=*/1);
    pending_route_[bundle->metadata.url] = *tx;
    if (carousel_) carousel_->record_hit(bundle->metadata.url);
    inflight_[inflight_key] = now_s + ack.eta_s;
    dedup_[dedup_key] = {request->url, now_s, now_s + ack.eta_s, tx->frequency_mhz, true, ""};
    queued_bundles_[bundle->metadata.url] = std::move(bundle);
    metrics_->counter("requests_served").add(1);
    answer(msg.from, ack, now_s);
  }
}

int SonicServer::push_to_shard(std::size_t shard, const std::vector<std::string>& urls,
                               double now_s, int priority) {
  int enqueued = 0;
  // One batch: cache misses render/encode in parallel on the pipeline pool.
  for (auto& prepared : pipeline_.prepare(urls, now_s)) {
    if (!prepared.bundle) continue;
    const std::string& url = prepared.bundle->metadata.url;
    shards_[shard].enqueue(url, prepared.bundle->total_bytes(), now_s, priority);
    pending_route_[url] = params_.transmitters[shard];
    queued_bundles_[url] = std::move(prepared.bundle);
    ++enqueued;
  }
  return enqueued;
}

int SonicServer::push_pages(const std::vector<std::string>& urls, double now_s, int priority) {
  return push_to_shard(0, urls, now_s, priority);
}

int SonicServer::push_pages_to(const std::string& transmitter,
                               const std::vector<std::string>& urls, double now_s, int priority) {
  for (std::size_t i = 0; i < params_.transmitters.size(); ++i) {
    if (params_.transmitters[i].name == transmitter) {
      return push_to_shard(i, urls, now_s, priority);
    }
  }
  return 0;
}

std::vector<CompletedBroadcast> SonicServer::advance(double now_s) {
  // Refill the carousel lane first so the next cycle competes for the
  // airtime this advance is about to drain. Carousel pages ride shard 0
  // (the first transmitter) at low priority, preemptible at frame
  // boundaries by user requests.
  if (carousel_) {
    for (Carousel::AirPage& page : carousel_->drive(now_s)) {
      shards_[0].enqueue(page.key, page.bundle->total_bytes(), now_s, page.priority,
                         page.preemptible);
      pending_route_[page.key] = params_.transmitters[0];
      queued_bundles_[page.key] = std::move(page.bundle);
    }
  }
  std::vector<CompletedBroadcast> out;
  Histogram& queue_wait = metrics_->histogram("queue_wait_s");
  Counter& pages_broadcast = metrics_->counter("pages_broadcast");
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    for (ScheduledItem& item : shards_[i].advance(now_s)) {
      const auto queued = queued_bundles_.find(item.url);
      if (queued == queued_bundles_.end()) continue;
      if (carousel_ && item.url.starts_with(kCarouselKeyPrefix)) {
        carousel_->on_broadcast_complete(item.url, item.completed_at_s);
      }
      // The page left the air: close the coalescing window and pin every
      // dedup entry's ETA to the actual completion, so late duplicates are
      // re-ACKed with "already broadcast" (ETA 0) instead of a stale guess.
      inflight_.erase(std::to_string(i) + '\x1f' + item.url);
      for (auto& [key, entry] : dedup_) {
        if (entry.url == item.url && entry.accepted) {
          entry.expected_complete_at_s = std::min(entry.expected_complete_at_s, item.completed_at_s);
        }
      }
      CompletedBroadcast done;
      const auto routed = pending_route_.find(item.url);
      done.transmitter = routed != pending_route_.end() ? routed->second : params_.transmitters[i];
      done.bundle = *queued->second;
      done.completed_at_s = item.completed_at_s;
      queue_wait.observe(item.completed_at_s - item.enqueued_at_s);
      pages_broadcast.add(1);
      out.push_back(std::move(done));
    }
  }
  std::stable_sort(out.begin(), out.end(),
                   [](const CompletedBroadcast& a, const CompletedBroadcast& b) {
                     return a.completed_at_s < b.completed_at_s;
                   });
  return out;
}

}  // namespace sonic::core
