// Client-side page cache and catalog (§3.1): received pages are stored
// "with expiration date set according to a time indicated by the server";
// the SONIC app "shows a catalog of available webpages". Also the
// server-side BundleCache backing the broadcast pipeline's render/encode
// reuse.
#pragma once

#include <cstddef>
#include <list>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "sonic/framing.hpp"

namespace sonic::core {

struct CatalogEntry {
  std::string url;
  double received_at_s = 0.0;
  double expires_at_s = 0.0;
  double coverage = 0.0;  // delivery completeness, a quality hint in the UI
};

class PageCache {
 public:
  // max_pages bounds memory on the low-end device; the oldest entry is
  // evicted first (0 = unbounded).
  explicit PageCache(std::size_t max_pages = 64);

  void put(ReceivedPage page, double now_s);

  // Returns nullptr when absent or expired (and lazily evicts the expired
  // entry). The const overload only peeks.
  const ReceivedPage* get(const std::string& url, double now_s);
  const ReceivedPage* get(const std::string& url, double now_s) const;

  std::vector<CatalogEntry> catalog(double now_s) const;

  void evict_expired(double now_s);
  std::size_t size() const { return entries_.size(); }

 private:
  struct Entry {
    ReceivedPage page;
    double received_at_s = 0.0;
    double expires_at_s = 0.0;
  };
  std::size_t max_pages_;
  std::map<std::string, Entry> entries_;
};

// Server-side LRU cache of prepared broadcast bundles, used by the
// BroadcastPipeline so hourly popular-catalog refreshes and repeat requests
// skip the render→encode→frame work. Entries are keyed on the pipeline's
// cache key — (url, layout fingerprint, codec quality) — and guarded by a
// content version: a stale version is a miss and is evicted on lookup.
// Bundles are handed out as shared_ptr so an eviction cannot invalidate a
// bundle still queued for broadcast.
class BundleCache {
 public:
  // max_pages bounds the catalog kept hot (least recently used evicted
  // first). 0 is rejected by the pipeline's validation.
  explicit BundleCache(std::size_t max_pages = 256);

  // Returns the cached bundle when present at exactly `version`, promoting
  // it to most-recently-used; nullptr (and eviction) on version mismatch.
  std::shared_ptr<const PageBundle> get(const std::string& key, int version);

  void put(const std::string& key, int version, std::shared_ptr<const PageBundle> bundle);

  std::size_t size() const { return entries_.size(); }
  std::size_t capacity() const { return max_pages_; }
  std::size_t evictions() const { return evictions_; }

 private:
  struct Entry {
    int version = 0;
    std::shared_ptr<const PageBundle> bundle;
    std::list<std::string>::iterator lru_it;
  };
  std::size_t max_pages_;
  std::size_t evictions_ = 0;
  std::list<std::string> lru_;  // front = most recently used
  std::map<std::string, Entry> entries_;
};

}  // namespace sonic::core
