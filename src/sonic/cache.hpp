// Client-side page cache and catalog (§3.1): received pages are stored
// "with expiration date set according to a time indicated by the server";
// the SONIC app "shows a catalog of available webpages".
#pragma once

#include <cstddef>
#include <map>
#include <string>
#include <vector>

#include "sonic/framing.hpp"

namespace sonic::core {

struct CatalogEntry {
  std::string url;
  double received_at_s = 0.0;
  double expires_at_s = 0.0;
  double coverage = 0.0;  // delivery completeness, a quality hint in the UI
};

class PageCache {
 public:
  // max_pages bounds memory on the low-end device; the oldest entry is
  // evicted first (0 = unbounded).
  explicit PageCache(std::size_t max_pages = 64);

  void put(ReceivedPage page, double now_s);

  // Returns nullptr when absent or expired (and lazily evicts the expired
  // entry). The const overload only peeks.
  const ReceivedPage* get(const std::string& url, double now_s);
  const ReceivedPage* get(const std::string& url, double now_s) const;

  std::vector<CatalogEntry> catalog(double now_s) const;

  void evict_expired(double now_s);
  std::size_t size() const { return entries_.size(); }

 private:
  struct Entry {
    ReceivedPage page;
    double received_at_s = 0.0;
    double expires_at_s = 0.0;
  };
  std::size_t max_pages_;
  std::map<std::string, Entry> entries_;
};

}  // namespace sonic::core
