#include "sonic/client.hpp"

#include <algorithm>
#include <stdexcept>

namespace sonic::core {
namespace {

SonicClient::Params validated(SonicClient::Params params) {
  const auto errors = params.validate();
  if (!errors.empty()) {
    std::string msg = "invalid SonicClient::Params:";
    for (const auto& e : errors) msg += "\n  - " + e;
    throw std::invalid_argument(msg);
  }
  return params;
}

}  // namespace

std::vector<std::string> SonicClient::Params::validate() const {
  std::vector<std::string> errors;
  if (server_number.empty()) errors.push_back("server_number must not be empty");
  if (device_width <= 0) {
    errors.push_back("device_width must be positive (got " + std::to_string(device_width) + ")");
  }
  if (cache_pages == 0) errors.push_back("cache_pages must be nonzero (a cache of 0 pages can never hold a broadcast)");
  return errors;
}

SonicClient::SonicClient(sms::SmsGateway* gateway, Params params)
    : gateway_(gateway),
      params_(validated(std::move(params))),
      metrics_(std::make_unique<Metrics>()),
      cache_(params_.cache_pages) {}

fec::FountainDecoder* SonicClient::decoder_for(std::uint32_t page_id, std::uint16_t k) {
  const auto it = decoders_.find(page_id);
  if (it != decoders_.end()) {
    return it->second.k() == k ? &it->second : nullptr;
  }
  auto& decoder =
      decoders_
          .emplace(page_id, fec::FountainDecoder(page_id, k, kFountainBlockSize, params_.fountain))
          .first->second;
  // Backfill source frames that arrived before the first repair frame: the
  // assembler keeps them as [type u8][payload] slots; re-pack each as its
  // fountain block. Slots from a page whose total disagrees with k simply
  // fail add_source's range check.
  for (const auto& [seq, slot] : assembler_.received_slots(page_id)) {
    if (slot.empty() || slot.size() - 1 > kFramePayloadSize) continue;
    util::Bytes block(kFountainBlockSize, 0);
    block[0] = static_cast<std::uint8_t>((slot[0] << 7) | (slot.size() - 1));
    std::copy(slot.begin() + 1, slot.end(), block.begin() + 1);
    decoder.add_source(seq, block);
  }
  return &decoder;
}

void SonicClient::on_frame(std::span<const std::uint8_t> frame) {
  const auto parsed = parse_frame(frame);
  if (!parsed) {
    ++frames_dropped_malformed_;
    metrics_->counter("frames_dropped_malformed").add(1);
    return;
  }
  const auto& [header, payload] = *parsed;
  if (header.type == kFrameTypeRepair) {
    fec::FountainDecoder* decoder = decoder_for(header.page_id, header.total);
    if (decoder == nullptr) {
      // The frame's claimed k contradicts what this page already taught us.
      ++frames_dropped_malformed_;
      metrics_->counter("frames_dropped_malformed").add(1);
      return;
    }
    ++frames_received_;
    ++repair_frames_received_;
    metrics_->counter("repair_frames_received").add(1);
    decoder->add_repair(header.seq, payload);
    return;
  }
  ++frames_received_;
  assembler_.push(frame);
  // A source frame is also a degree-1 fountain symbol; feed any decoder a
  // repair frame already opened for this page.
  const auto it = decoders_.find(header.page_id);
  if (it != decoders_.end() && it->second.k() == header.total) {
    it->second.add_source(header.seq, fountain_block(frame));
  }
}

void SonicClient::on_burst(const modem::RxBurst& burst) {
  for (const auto& frame : burst.frames) {
    if (frame.has_value()) on_frame(*frame);
  }
}

std::vector<std::string> SonicClient::flush(double now_s) {
  std::vector<std::string> cached;
  // A page fed only by repair frames has a decoder but no assembler entry
  // yet; flush the union.
  std::vector<std::uint32_t> pages = assembler_.known_pages();
  for (const auto& [page_id, decoder] : decoders_) {
    if (std::find(pages.begin(), pages.end(), page_id) == pages.end()) pages.push_back(page_id);
  }
  for (std::uint32_t page_id : pages) {
    const auto found = decoders_.find(page_id);
    if (found != decoders_.end()) {
      fec::FountainDecoder& decoder = found->second;
      if (decoder.complete()) {
        // Converged: rebuild every source frame byte for byte, so the
        // assembled page has full coverage and interpolation is a no-op.
        // A non-converged decoder changes nothing — the interpolation
        // fallback below handles whatever the assembler holds.
        const auto k = static_cast<std::uint16_t>(decoder.k());
        for (std::uint16_t seq = 0; seq < k; ++seq) {
          const auto frame = frame_from_fountain_block(page_id, seq, k, decoder.block(seq));
          if (frame) assembler_.push(*frame);
        }
        metrics_->counter("pages_fountain_decoded").add(1);
        metrics_->histogram("fountain_repairs_used")
            .observe(static_cast<double>(decoder.repairs_received()));
        if (k > 0) {
          metrics_->histogram("fountain_reception_overhead")
              .observe(static_cast<double>(decoder.symbols_received()) / k - 1.0);
        }
      }
      decoders_.erase(found);
    }
    auto page = assembler_.assemble(page_id, params_.interpolation);
    assembler_.drop(page_id);
    if (!page) continue;
    cached.push_back(page->metadata.url);
    cache_.put(std::move(*page), now_s);
  }
  return cached;
}

std::optional<web::RenderResult> SonicClient::open(const std::string& url, double now_s) {
  const ReceivedPage* page = cache_.get(url, now_s);
  if (!page) return std::nullopt;
  web::RenderResult full;
  full.image = page->image;
  full.click_map = page->metadata.click_map;
  full.full_height = page->metadata.height;
  return web::scale_for_device(full, params_.device_width);
}

SonicClient::TapResult SonicClient::request(const std::string& url, double now_s) {
  if (cache_.get(url, now_s) != nullptr) return TapResult::kOpenedCached;
  if (!has_uplink()) return TapResult::kNoUplink;
  sms::PageRequest req{url, params_.lat, params_.lon};
  gateway_->send({params_.phone_number, params_.server_number, sms::encode_request(req), now_s, 0},
                 now_s);
  return TapResult::kRequestedViaSms;
}

SonicClient::TapResult SonicClient::ask(const std::string& query, double now_s) {
  const std::string url = "search:" + query;
  if (cache_.get(url, now_s) != nullptr) return TapResult::kOpenedCached;
  if (!has_uplink()) return TapResult::kNoUplink;
  sms::QueryRequest req{query, params_.lat, params_.lon};
  gateway_->send({params_.phone_number, params_.server_number, sms::encode_query(req), now_s, 0},
                 now_s);
  return TapResult::kRequestedViaSms;
}

SonicClient::TapResult SonicClient::tap(const std::string& current_url, int device_x, int device_y,
                                        double now_s) {
  const ReceivedPage* page = cache_.get(current_url, now_s);
  if (!page) return TapResult::kNoLink;
  // Map device coordinates back to the transmitted resolution (§3.2: click
  // map coordinates scale with the image).
  const double factor = static_cast<double>(page->metadata.width) / params_.device_width;
  const int px = static_cast<int>(device_x * factor);
  const int py = static_cast<int>(device_y * factor);
  const std::string href = web::hit_test(page->metadata.click_map, px, py);
  if (href.empty()) return TapResult::kNoLink;
  return request(href, now_s);
}

std::vector<sms::RequestAck> SonicClient::poll_acks(double now_s) {
  std::vector<sms::RequestAck> acks;
  if (!has_uplink()) return acks;
  for (const sms::SmsMessage& msg : gateway_->deliver_due(params_.phone_number, now_s)) {
    const auto ack = sms::parse_ack(msg.body);
    if (ack) acks.push_back(*ack);
  }
  return acks;
}

}  // namespace sonic::core
