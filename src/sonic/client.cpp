#include "sonic/client.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace sonic::core {
namespace {

SonicClient::Params validated(SonicClient::Params params) {
  const auto errors = params.validate();
  if (!errors.empty()) {
    std::string msg = "invalid SonicClient::Params:";
    for (const auto& e : errors) msg += "\n  - " + e;
    throw std::invalid_argument(msg);
  }
  return params;
}

}  // namespace

std::vector<std::string> SonicClient::Params::validate() const {
  std::vector<std::string> errors;
  if (server_number.empty()) errors.push_back("server_number must not be empty");
  if (device_width <= 0) {
    errors.push_back("device_width must be positive (got " + std::to_string(device_width) + ")");
  }
  if (cache_pages == 0) errors.push_back("cache_pages must be nonzero (a cache of 0 pages can never hold a broadcast)");
  if (!(uplink.ack_timeout_s > 0.0)) {
    errors.push_back("uplink.ack_timeout_s must be positive (got " +
                     std::to_string(uplink.ack_timeout_s) + ")");
  }
  if (uplink.max_attempts < 1) {
    errors.push_back("uplink.max_attempts must be >= 1 (got " +
                     std::to_string(uplink.max_attempts) + ")");
  }
  if (uplink.backoff_factor < 1.0) {
    errors.push_back("uplink.backoff_factor must be >= 1 (backoff must not shrink)");
  }
  if (!(uplink.backoff_cap_s > 0.0)) errors.push_back("uplink.backoff_cap_s must be positive");
  if (uplink.jitter_frac < 0.0 || uplink.jitter_frac >= 1.0) {
    errors.push_back("uplink.jitter_frac must be in [0, 1)");
  }
  if (!modem::profiles::get(downlink_profile)) {
    errors.push_back("downlink_profile '" + downlink_profile +
                     "' is not a registered OFDM profile");
  }
  return errors;
}

SonicClient::SonicClient(sms::SmsGateway* gateway, Params params)
    : gateway_(gateway),
      params_(validated(std::move(params))),
      metrics_(std::make_unique<Metrics>()),
      cache_(params_.cache_pages),
      uplink_rng_(params_.uplink.seed) {}

fec::FountainDecoder* SonicClient::decoder_for(std::uint32_t page_id, std::uint16_t k) {
  const auto it = decoders_.find(page_id);
  if (it != decoders_.end()) {
    return it->second.k() == k ? &it->second : nullptr;
  }
  auto& decoder =
      decoders_
          .emplace(page_id, fec::FountainDecoder(page_id, k, kFountainBlockSize, params_.fountain))
          .first->second;
  // Backfill source frames that arrived before the first repair frame: the
  // assembler keeps them as [type u8][payload] slots; re-pack each as its
  // fountain block. Slots from a page whose total disagrees with k simply
  // fail add_source's range check.
  for (const auto& [seq, slot] : assembler_.received_slots(page_id)) {
    if (slot.empty() || slot.size() - 1 > kFramePayloadSize) continue;
    util::Bytes block(kFountainBlockSize, 0);
    block[0] = static_cast<std::uint8_t>((slot[0] << 7) | (slot.size() - 1));
    std::copy(slot.begin() + 1, slot.end(), block.begin() + 1);
    decoder.add_source(seq, block);
  }
  return &decoder;
}

void SonicClient::on_frame(std::span<const std::uint8_t> frame) {
  const auto parsed = parse_frame(frame);
  if (!parsed) {
    ++frames_dropped_malformed_;
    metrics_->counter("frames_dropped_malformed").add(1);
    return;
  }
  const auto& [header, payload] = *parsed;
  if (header.type == kFrameTypeRepair) {
    fec::FountainDecoder* decoder = decoder_for(header.page_id, header.total);
    if (decoder == nullptr) {
      // The frame's claimed k contradicts what this page already taught us.
      ++frames_dropped_malformed_;
      metrics_->counter("frames_dropped_malformed").add(1);
      return;
    }
    ++frames_received_;
    ++repair_frames_received_;
    metrics_->counter("repair_frames_received").add(1);
    decoder->add_repair(header.seq, payload);
    return;
  }
  ++frames_received_;
  assembler_.push(frame);
  // A source frame is also a degree-1 fountain symbol; feed any decoder a
  // repair frame already opened for this page.
  const auto it = decoders_.find(header.page_id);
  if (it != decoders_.end() && it->second.k() == header.total) {
    it->second.add_source(header.seq, fountain_block(frame));
  }
}

void SonicClient::on_burst(const modem::RxBurst& burst) {
  for (const auto& frame : burst.frames) {
    if (frame.has_value()) on_frame(*frame);
  }
}

modem::StreamReceiver& SonicClient::stream_rx() {
  if (!stream_rx_) {
    // validate() established the profile exists.
    const auto profile = modem::profiles::get(params_.downlink_profile);
    downlink_modem_ = std::make_unique<modem::OfdmModem>(*profile);
    modem::StreamReceiverParams rx;
    rx.max_buffer_samples = params_.downlink_buffer_samples;
    rx.metrics = metrics_.get();
    stream_rx_ = std::make_unique<modem::StreamReceiver>(*downlink_modem_, rx);
  }
  return *stream_rx_;
}

std::size_t SonicClient::on_audio(std::span<const float> chunk) {
  const auto bursts = stream_rx().push(chunk);
  for (const auto& b : bursts) on_burst(b);
  return bursts.size();
}

std::size_t SonicClient::end_audio() {
  const auto bursts = stream_rx().flush();
  for (const auto& b : bursts) on_burst(b);
  stream_rx_->reset();
  return bursts.size();
}

std::vector<std::string> SonicClient::flush(double now_s) {
  std::vector<std::string> cached;
  // A page fed only by repair frames has a decoder but no assembler entry
  // yet; flush the union.
  std::vector<std::uint32_t> pages = assembler_.known_pages();
  for (const auto& [page_id, decoder] : decoders_) {
    if (std::find(pages.begin(), pages.end(), page_id) == pages.end()) pages.push_back(page_id);
  }
  for (std::uint32_t page_id : pages) {
    const auto found = decoders_.find(page_id);
    if (found != decoders_.end()) {
      fec::FountainDecoder& decoder = found->second;
      if (decoder.complete()) {
        // Converged: rebuild every source frame byte for byte, so the
        // assembled page has full coverage and interpolation is a no-op.
        // A non-converged decoder changes nothing — the interpolation
        // fallback below handles whatever the assembler holds.
        const auto k = static_cast<std::uint16_t>(decoder.k());
        for (std::uint16_t seq = 0; seq < k; ++seq) {
          const auto frame = frame_from_fountain_block(page_id, seq, k, decoder.block(seq));
          if (frame) assembler_.push(*frame);
        }
        metrics_->counter("pages_fountain_decoded").add(1);
        metrics_->histogram("fountain_repairs_used")
            .observe(static_cast<double>(decoder.repairs_received()));
        if (k > 0) {
          metrics_->histogram("fountain_reception_overhead")
              .observe(static_cast<double>(decoder.symbols_received()) / k - 1.0);
        }
      }
      decoders_.erase(found);
    }
    auto page = assembler_.assemble(page_id, params_.interpolation);
    assembler_.drop(page_id);
    if (!page) continue;
    cached.push_back(page->metadata.url);
    cache_.put(std::move(*page), now_s);
  }
  return cached;
}

std::optional<web::RenderResult> SonicClient::open(const std::string& url, double now_s) {
  const ReceivedPage* page = cache_.get(url, now_s);
  if (!page) return std::nullopt;
  web::RenderResult full;
  full.image = page->image;
  full.click_map = page->metadata.click_map;
  full.full_height = page->metadata.height;
  return web::scale_for_device(full, params_.device_width);
}

double SonicClient::jittered(double wait_s) {
  const double f = params_.uplink.jitter_frac;
  if (f <= 0.0) return wait_s;
  return wait_s * (1.0 + f * (2.0 * uplink_rng_.uniform() - 1.0));
}

void SonicClient::send_attempt(PendingUplink& p, double now_s) {
  gateway_->send({params_.phone_number, params_.server_number, p.body, now_s, 0}, now_s);
  ++p.attempts;
  p.state = UplinkState::kAwaitingAck;
  const double wait =
      std::min(params_.uplink.backoff_cap_s,
               params_.uplink.ack_timeout_s *
                   std::pow(params_.uplink.backoff_factor, static_cast<double>(p.attempts - 1)));
  p.deadline_s = now_s + jittered(wait);
}

SonicClient::TapResult SonicClient::start_uplink_request(const std::string& url, std::string body,
                                                         double now_s) {
  // A request for a URL already live on the uplink rides the existing state
  // machine instead of opening a competing one.
  for (const auto& [id, p] : uplink_pending_) {
    if (p.url == url) {
      metrics_->counter("uplink_coalesced").add(1);
      return TapResult::kRequestedViaSms;
    }
  }
  const std::uint32_t id = next_request_id_++;
  PendingUplink p;
  p.id = id;
  p.url = url;
  p.body = std::move(body);
  p.first_sent_s = now_s;
  metrics_->counter("uplink_requests").add(1);
  send_attempt(p, now_s);
  uplink_pending_.emplace(id, std::move(p));
  return TapResult::kRequestedViaSms;
}

SonicClient::TapResult SonicClient::request(const std::string& url, double now_s) {
  if (cache_.get(url, now_s) != nullptr) return TapResult::kOpenedCached;
  if (!has_uplink()) return TapResult::kNoUplink;
  const std::uint32_t id = next_request_id_;  // consumed by start_uplink_request
  sms::PageRequest req{url, params_.lat, params_.lon, id};
  return start_uplink_request(url, sms::encode_request(req), now_s);
}

SonicClient::TapResult SonicClient::ask(const std::string& query, double now_s) {
  const std::string url = "search:" + query;
  if (cache_.get(url, now_s) != nullptr) return TapResult::kOpenedCached;
  if (!has_uplink()) return TapResult::kNoUplink;
  const std::uint32_t id = next_request_id_;
  sms::QueryRequest req{query, params_.lat, params_.lon, id};
  return start_uplink_request(url, sms::encode_query(req), now_s);
}

void SonicClient::tick(double now_s) {
  for (auto it = uplink_pending_.begin(); it != uplink_pending_.end();) {
    PendingUplink& p = it->second;
    if (now_s < p.deadline_s) {
      ++it;
      continue;
    }
    if (p.attempts >= params_.uplink.max_attempts) {
      metrics_->counter("uplink_gave_up").add(1);
      metrics_->histogram("uplink_attempts").observe(static_cast<double>(p.attempts));
      uplink_done_[p.id] = UplinkState::kGaveUp;
      it = uplink_pending_.erase(it);
      continue;
    }
    metrics_->counter(p.state == UplinkState::kBackoff ? "uplink_server_retries"
                                                       : "uplink_retries")
        .add(1);
    send_attempt(p, now_s);
    ++it;
  }
}

std::optional<UplinkState> SonicClient::uplink_state(std::uint32_t id) const {
  if (const auto it = uplink_pending_.find(id); it != uplink_pending_.end()) {
    return it->second.state;
  }
  if (const auto it = uplink_done_.find(id); it != uplink_done_.end()) return it->second;
  return std::nullopt;
}

SonicClient::TapResult SonicClient::tap(const std::string& current_url, int device_x, int device_y,
                                        double now_s) {
  const ReceivedPage* page = cache_.get(current_url, now_s);
  if (!page) return TapResult::kNoLink;
  // Map device coordinates back to the transmitted resolution (§3.2: click
  // map coordinates scale with the image).
  const double factor = static_cast<double>(page->metadata.width) / params_.device_width;
  const int px = static_cast<int>(device_x * factor);
  const int py = static_cast<int>(device_y * factor);
  const std::string href = web::hit_test(page->metadata.click_map, px, py);
  if (href.empty()) return TapResult::kNoLink;
  return request(href, now_s);
}

std::vector<sms::RequestAck> SonicClient::poll_acks(double now_s) {
  std::vector<sms::RequestAck> acks;
  if (!has_uplink()) return acks;
  for (const sms::SmsMessage& msg : gateway_->deliver_due(params_.phone_number, now_s)) {
    if (msg.body.rfind(sms::kDeliveryReportPrefix, 0) == 0) {
      metrics_->counter("uplink_delivery_reports").add(1);
      continue;
    }
    const auto ack = sms::parse_ack(msg.body);
    if (!ack) continue;
    // Match the response to a live request: by echoed id, or by URL for a
    // v1 (id-less) server.
    auto it = uplink_pending_.end();
    if (ack->id != 0) {
      it = uplink_pending_.find(ack->id);
    } else {
      for (auto cand = uplink_pending_.begin(); cand != uplink_pending_.end(); ++cand) {
        if (cand->second.url == ack->url) {
          it = cand;
          break;
        }
      }
    }
    if (it == uplink_pending_.end()) {
      // Duplicate delivery, server re-ACK of a settled request, or an ACK
      // for a request that already gave up.
      metrics_->counter("uplink_stale_acks").add(1);
      continue;
    }
    PendingUplink& p = it->second;
    if (ack->accepted) {
      metrics_->counter("uplink_acked").add(1);
      metrics_->histogram("uplink_ack_latency_s").observe(now_s - p.first_sent_s);
      metrics_->histogram("uplink_attempts").observe(static_cast<double>(p.attempts));
      uplink_done_[p.id] = UplinkState::kAccepted;
      acks.push_back(*ack);
      uplink_pending_.erase(it);
    } else if (ack->retry_after_s >= 0.0) {
      // Overload shed: the server asked us to come back later. Honor it —
      // schedule the resend instead of hammering — unless the attempt
      // budget is already spent.
      if (p.attempts >= params_.uplink.max_attempts) {
        metrics_->counter("uplink_gave_up").add(1);
        metrics_->histogram("uplink_attempts").observe(static_cast<double>(p.attempts));
        uplink_done_[p.id] = UplinkState::kGaveUp;
        uplink_pending_.erase(it);
      } else {
        p.state = UplinkState::kBackoff;
        p.deadline_s = now_s + jittered(ack->retry_after_s);
      }
    } else {
      metrics_->counter("uplink_rejected").add(1);
      uplink_done_[p.id] = UplinkState::kRejected;
      acks.push_back(*ack);
      uplink_pending_.erase(it);
    }
  }
  tick(now_s);
  return acks;
}

}  // namespace sonic::core
