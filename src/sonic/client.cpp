#include "sonic/client.hpp"

#include <stdexcept>

namespace sonic::core {
namespace {

SonicClient::Params validated(SonicClient::Params params) {
  const auto errors = params.validate();
  if (!errors.empty()) {
    std::string msg = "invalid SonicClient::Params:";
    for (const auto& e : errors) msg += "\n  - " + e;
    throw std::invalid_argument(msg);
  }
  return params;
}

}  // namespace

std::vector<std::string> SonicClient::Params::validate() const {
  std::vector<std::string> errors;
  if (server_number.empty()) errors.push_back("server_number must not be empty");
  if (device_width <= 0) {
    errors.push_back("device_width must be positive (got " + std::to_string(device_width) + ")");
  }
  if (cache_pages == 0) errors.push_back("cache_pages must be nonzero (a cache of 0 pages can never hold a broadcast)");
  return errors;
}

SonicClient::SonicClient(sms::SmsGateway* gateway, Params params)
    : gateway_(gateway), params_(validated(std::move(params))), cache_(params_.cache_pages) {}

void SonicClient::on_frame(std::span<const std::uint8_t> frame) {
  assembler_.push(frame);
  ++frames_received_;
}

void SonicClient::on_burst(const modem::RxBurst& burst) {
  for (const auto& frame : burst.frames) {
    if (frame.has_value()) on_frame(*frame);
  }
}

std::vector<std::string> SonicClient::flush(double now_s) {
  std::vector<std::string> cached;
  for (std::uint32_t page_id : assembler_.known_pages()) {
    auto page = assembler_.assemble(page_id, params_.interpolation);
    assembler_.drop(page_id);
    if (!page) continue;
    cached.push_back(page->metadata.url);
    cache_.put(std::move(*page), now_s);
  }
  return cached;
}

std::optional<web::RenderResult> SonicClient::open(const std::string& url, double now_s) {
  const ReceivedPage* page = cache_.get(url, now_s);
  if (!page) return std::nullopt;
  web::RenderResult full;
  full.image = page->image;
  full.click_map = page->metadata.click_map;
  full.full_height = page->metadata.height;
  return web::scale_for_device(full, params_.device_width);
}

SonicClient::TapResult SonicClient::request(const std::string& url, double now_s) {
  if (cache_.get(url, now_s) != nullptr) return TapResult::kOpenedCached;
  if (!has_uplink()) return TapResult::kNoUplink;
  sms::PageRequest req{url, params_.lat, params_.lon};
  gateway_->send({params_.phone_number, params_.server_number, sms::encode_request(req), now_s, 0},
                 now_s);
  return TapResult::kRequestedViaSms;
}

SonicClient::TapResult SonicClient::ask(const std::string& query, double now_s) {
  const std::string url = "search:" + query;
  if (cache_.get(url, now_s) != nullptr) return TapResult::kOpenedCached;
  if (!has_uplink()) return TapResult::kNoUplink;
  sms::QueryRequest req{query, params_.lat, params_.lon};
  gateway_->send({params_.phone_number, params_.server_number, sms::encode_query(req), now_s, 0},
                 now_s);
  return TapResult::kRequestedViaSms;
}

SonicClient::TapResult SonicClient::tap(const std::string& current_url, int device_x, int device_y,
                                        double now_s) {
  const ReceivedPage* page = cache_.get(current_url, now_s);
  if (!page) return TapResult::kNoLink;
  // Map device coordinates back to the transmitted resolution (§3.2: click
  // map coordinates scale with the image).
  const double factor = static_cast<double>(page->metadata.width) / params_.device_width;
  const int px = static_cast<int>(device_x * factor);
  const int py = static_cast<int>(device_y * factor);
  const std::string href = web::hit_test(page->metadata.click_map, px, py);
  if (href.empty()) return TapResult::kNoLink;
  return request(href, now_s);
}

std::vector<sms::RequestAck> SonicClient::poll_acks(double now_s) {
  std::vector<sms::RequestAck> acks;
  if (!has_uplink()) return acks;
  for (const sms::SmsMessage& msg : gateway_->deliver_due(params_.phone_number, now_s)) {
    const auto ack = sms::parse_ack(msg.body);
    if (ack) acks.push_back(*ack);
  }
  return acks;
}

}  // namespace sonic::core
