#include "sonic/pipeline.hpp"

#include <chrono>
#include <map>
#include <utility>

namespace sonic::core {
namespace {

double seconds_between(std::chrono::steady_clock::time_point a,
                       std::chrono::steady_clock::time_point b) {
  return std::chrono::duration<double>(b - a).count();
}

}  // namespace

std::vector<std::string> BroadcastPipeline::Params::validate() const {
  std::vector<std::string> errors;
  if (layout.width <= 0) errors.push_back("layout.width must be positive");
  if (layout.max_height < 0) errors.push_back("layout.max_height must be >= 0 (0 = uncapped)");
  if (codec.quality < 1 || codec.quality > 100) errors.push_back("codec.quality must be in [1, 100]");
  if (codec.payload_budget <= 0) errors.push_back("codec.payload_budget must be positive");
  if (page_expiry_s == 0) errors.push_back("page_expiry_s must be nonzero");
  if (cache_pages == 0) errors.push_back("cache_pages must be nonzero (the LRU cannot hold 0 pages)");
  if (num_threads < 0) errors.push_back("num_threads must be >= 0 (0 = serial)");
  return errors;
}

BroadcastPipeline::BroadcastPipeline(const web::PkCorpus* corpus, Params params, Metrics* metrics)
    : corpus_(corpus),
      params_(std::move(params)),
      owned_metrics_(metrics ? nullptr : std::make_unique<Metrics>()),
      metrics_(metrics ? metrics : owned_metrics_.get()),
      rendered_counter_(&metrics_->counter("pages_rendered")),
      hits_counter_(&metrics_->counter("render_cache_hits")),
      misses_counter_(&metrics_->counter("render_cache_misses")),
      frames_counter_(&metrics_->counter("frames_emitted")),
      evictions_counter_(&metrics_->counter("render_cache_evictions")),
      render_hist_(&metrics_->histogram("render_s")),
      encode_hist_(&metrics_->histogram("encode_s")),
      cache_(params_.cache_pages) {
  for (int i = 0; i < params_.num_threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

BroadcastPipeline::~BroadcastPipeline() {
  {
    std::lock_guard<std::mutex> lock(pool_mu_);
    stop_ = true;
  }
  pool_cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

std::string BroadcastPipeline::cache_key(const std::string& url) const {
  return url + "|" + params_.layout.fingerprint() + "|" + params_.codec.fingerprint();
}

std::vector<BroadcastPipeline::Prepared> BroadcastPipeline::prepare(
    const std::vector<std::string>& urls, double now_s) {
  std::lock_guard<std::mutex> batch_lock(prepare_mu_);
  const int epoch = static_cast<int>(now_s / 3600.0);

  std::vector<Prepared> results(urls.size());
  std::vector<Job> jobs;
  jobs.reserve(urls.size());
  // url -> slot already being rendered in this batch, so a url requested
  // twice renders once and the second occurrence counts as a hit.
  std::map<std::string, std::size_t> in_batch;

  for (std::size_t i = 0; i < urls.size(); ++i) {
    const std::string& url = urls[i];
    results[i].url = url;

    const bool is_search = url.rfind("search:", 0) == 0;
    const web::PageRef* ref = nullptr;
    int version = 0;
    if (is_search) {
      // Search results rotate every 6 hours in the corpus model.
      version = epoch / 6;
    } else {
      ref = corpus_->find(url);
      if (!ref) continue;  // unknown page: null bundle
      version = corpus_->version(*ref, epoch);
    }
    const std::string canonical = is_search ? url : ref->url;

    if (const auto dup = in_batch.find(canonical); dup != in_batch.end()) {
      // Same url earlier in this batch: render once, share the bundle. It
      // may still be null here (the duplicate is a pending job); the fix-up
      // pass after run_jobs copies the rendered bundle over.
      results[i].url = canonical;
      results[i].cache_hit = true;
      hits_counter_->add(1);
      results[i].bundle = results[dup->second].bundle;
      continue;
    }

    const std::string key = cache_key(canonical);
    if (auto cached = cache_.get(key, version)) {
      results[i].url = canonical;
      results[i].bundle = std::move(cached);
      results[i].cache_hit = true;
      hits_counter_->add(1);
      in_batch[canonical] = i;
      continue;
    }

    misses_counter_->add(1);
    Job job;
    job.slot = i;
    job.url = canonical;
    job.key = key;
    job.page_id = next_page_id_++;  // assigned in request order: deterministic
    job.version = version;
    job.epoch = epoch;
    job.ref = ref;
    if (is_search) job.query = url.substr(7);
    jobs.push_back(std::move(job));
    results[i].url = canonical;
    in_batch[canonical] = i;
  }

  run_jobs(jobs);

  // Publish in request order so cache insertion (and thus LRU eviction)
  // order matches the serial path exactly.
  const std::size_t evictions_before = cache_.evictions();
  for (Job& job : jobs) {
    std::shared_ptr<const PageBundle> bundle = std::move(job.out);
    frames_counter_->add(bundle->frames.size());
    cache_.put(job.key, job.version, bundle);
    results[job.slot].bundle = std::move(bundle);
  }
  evictions_counter_->add(cache_.evictions() - evictions_before);

  // Resolve duplicate urls that pointed at a slot whose render finished
  // after the alias was recorded.
  for (std::size_t i = 0; i < results.size(); ++i) {
    if (results[i].bundle || results[i].url.empty()) continue;
    const auto src = in_batch.find(results[i].url);
    if (src != in_batch.end() && src->second != i) results[i].bundle = results[src->second].bundle;
  }
  return results;
}

std::shared_ptr<const PageBundle> BroadcastPipeline::prepare_one(const std::string& url,
                                                                 double now_s) {
  auto prepared = prepare({url}, now_s);
  return prepared.empty() ? nullptr : std::move(prepared.front().bundle);
}

void BroadcastPipeline::render_job(Job& job) {
  const auto t0 = std::chrono::steady_clock::now();
  const web::RenderResult page =
      job.ref ? web::render_html(corpus_->html(*job.ref, job.epoch), params_.layout)
              : web::render_html(corpus_->search_html(job.query, job.epoch), params_.layout);
  const auto t1 = std::chrono::steady_clock::now();
  job.out = std::make_shared<PageBundle>(
      make_bundle(job.page_id, job.url, page, params_.codec, params_.page_expiry_s));
  const auto t2 = std::chrono::steady_clock::now();
  render_hist_->observe(seconds_between(t0, t1));
  encode_hist_->observe(seconds_between(t1, t2));
  rendered_counter_->add(1);
}

void BroadcastPipeline::run_jobs(std::vector<Job>& jobs) {
  if (jobs.empty()) return;
  if (workers_.empty()) {
    for (Job& job : jobs) render_job(job);
    return;
  }
  {
    std::lock_guard<std::mutex> lock(pool_mu_);
    pending_ = jobs.size();
    for (Job& job : jobs) queue_.push_back(&job);
  }
  pool_cv_.notify_all();
  std::unique_lock<std::mutex> lock(pool_mu_);
  done_cv_.wait(lock, [this] { return pending_ == 0; });
}

void BroadcastPipeline::worker_loop() {
  for (;;) {
    Job* job = nullptr;
    {
      std::unique_lock<std::mutex> lock(pool_mu_);
      pool_cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (stop_ && queue_.empty()) return;
      job = queue_.front();
      queue_.pop_front();
    }
    render_job(*job);
    {
      std::lock_guard<std::mutex> lock(pool_mu_);
      if (--pending_ == 0) done_cv_.notify_all();
    }
  }
}

}  // namespace sonic::core
