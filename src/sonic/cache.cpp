#include "sonic/cache.hpp"

#include <algorithm>

namespace sonic::core {

PageCache::PageCache(std::size_t max_pages) : max_pages_(max_pages) {}

void PageCache::put(ReceivedPage page, double now_s) {
  Entry entry;
  entry.received_at_s = now_s;
  entry.expires_at_s = now_s + page.metadata.expiry_s;
  const std::string url = page.metadata.url;
  entry.page = std::move(page);
  entries_[url] = std::move(entry);

  if (max_pages_ > 0 && entries_.size() > max_pages_) {
    auto oldest = entries_.begin();
    for (auto it = entries_.begin(); it != entries_.end(); ++it) {
      if (it->second.received_at_s < oldest->second.received_at_s) oldest = it;
    }
    entries_.erase(oldest);
  }
}

const ReceivedPage* PageCache::get(const std::string& url, double now_s) {
  const auto it = entries_.find(url);
  if (it == entries_.end()) return nullptr;
  if (it->second.expires_at_s <= now_s) {
    entries_.erase(it);
    return nullptr;
  }
  return &it->second.page;
}

const ReceivedPage* PageCache::get(const std::string& url, double now_s) const {
  const auto it = entries_.find(url);
  if (it == entries_.end() || it->second.expires_at_s <= now_s) return nullptr;
  return &it->second.page;
}

std::vector<CatalogEntry> PageCache::catalog(double now_s) const {
  std::vector<CatalogEntry> out;
  for (const auto& [url, entry] : entries_) {
    if (entry.expires_at_s <= now_s) continue;
    out.push_back({url, entry.received_at_s, entry.expires_at_s, entry.page.coverage});
  }
  std::sort(out.begin(), out.end(),
            [](const CatalogEntry& a, const CatalogEntry& b) { return a.url < b.url; });
  return out;
}

void PageCache::evict_expired(double now_s) {
  for (auto it = entries_.begin(); it != entries_.end();) {
    it = it->second.expires_at_s <= now_s ? entries_.erase(it) : std::next(it);
  }
}

BundleCache::BundleCache(std::size_t max_pages) : max_pages_(max_pages) {}

std::shared_ptr<const PageBundle> BundleCache::get(const std::string& key, int version) {
  const auto it = entries_.find(key);
  if (it == entries_.end()) return nullptr;
  if (it->second.version != version) {
    // The page content rotated since this render: the entry can never hit
    // again, so reclaim its slot now.
    lru_.erase(it->second.lru_it);
    entries_.erase(it);
    return nullptr;
  }
  lru_.splice(lru_.begin(), lru_, it->second.lru_it);
  return it->second.bundle;
}

void BundleCache::put(const std::string& key, int version, std::shared_ptr<const PageBundle> bundle) {
  const auto it = entries_.find(key);
  if (it != entries_.end()) {
    it->second.version = version;
    it->second.bundle = std::move(bundle);
    lru_.splice(lru_.begin(), lru_, it->second.lru_it);
    return;
  }
  lru_.push_front(key);
  entries_[key] = Entry{version, std::move(bundle), lru_.begin()};
  while (max_pages_ > 0 && entries_.size() > max_pages_) {
    entries_.erase(lru_.back());
    lru_.pop_back();
    ++evictions_;
  }
}

}  // namespace sonic::core
