file(REMOVE_RECURSE
  "CMakeFiles/fig4c_backlog.dir/fig4c_backlog.cpp.o"
  "CMakeFiles/fig4c_backlog.dir/fig4c_backlog.cpp.o.d"
  "fig4c_backlog"
  "fig4c_backlog.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4c_backlog.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
