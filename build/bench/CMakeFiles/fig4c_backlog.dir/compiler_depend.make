# Empty compiler generated dependencies file for fig4c_backlog.
# This may be replaced when dependencies are built.
