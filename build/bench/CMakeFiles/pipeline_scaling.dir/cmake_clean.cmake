file(REMOVE_RECURSE
  "CMakeFiles/pipeline_scaling.dir/pipeline_scaling.cpp.o"
  "CMakeFiles/pipeline_scaling.dir/pipeline_scaling.cpp.o.d"
  "pipeline_scaling"
  "pipeline_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pipeline_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
