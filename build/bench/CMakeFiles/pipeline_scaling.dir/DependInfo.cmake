
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/pipeline_scaling.cpp" "bench/CMakeFiles/pipeline_scaling.dir/pipeline_scaling.cpp.o" "gcc" "bench/CMakeFiles/pipeline_scaling.dir/pipeline_scaling.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sonic/CMakeFiles/sonic_core.dir/DependInfo.cmake"
  "/root/repo/build/src/eval/CMakeFiles/sonic_eval.dir/DependInfo.cmake"
  "/root/repo/build/src/web/CMakeFiles/sonic_web.dir/DependInfo.cmake"
  "/root/repo/build/src/sms/CMakeFiles/sonic_sms.dir/DependInfo.cmake"
  "/root/repo/build/src/modem/CMakeFiles/sonic_modem.dir/DependInfo.cmake"
  "/root/repo/build/src/fec/CMakeFiles/sonic_fec.dir/DependInfo.cmake"
  "/root/repo/build/src/fm/CMakeFiles/sonic_fm.dir/DependInfo.cmake"
  "/root/repo/build/src/dsp/CMakeFiles/sonic_dsp.dir/DependInfo.cmake"
  "/root/repo/build/src/image/CMakeFiles/sonic_image.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/sonic_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
