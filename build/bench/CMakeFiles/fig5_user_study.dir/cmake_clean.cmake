file(REMOVE_RECURSE
  "CMakeFiles/fig5_user_study.dir/fig5_user_study.cpp.o"
  "CMakeFiles/fig5_user_study.dir/fig5_user_study.cpp.o.d"
  "fig5_user_study"
  "fig5_user_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_user_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
