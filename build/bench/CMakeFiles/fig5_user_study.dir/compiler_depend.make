# Empty compiler generated dependencies file for fig5_user_study.
# This may be replaced when dependencies are built.
