# Empty dependencies file for micro_dsp_fec.
# This may be replaced when dependencies are built.
