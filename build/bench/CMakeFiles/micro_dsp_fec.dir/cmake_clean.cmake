file(REMOVE_RECURSE
  "CMakeFiles/micro_dsp_fec.dir/micro_dsp_fec.cpp.o"
  "CMakeFiles/micro_dsp_fec.dir/micro_dsp_fec.cpp.o.d"
  "micro_dsp_fec"
  "micro_dsp_fec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_dsp_fec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
