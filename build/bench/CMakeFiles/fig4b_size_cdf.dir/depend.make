# Empty dependencies file for fig4b_size_cdf.
# This may be replaced when dependencies are built.
