file(REMOVE_RECURSE
  "CMakeFiles/fig4b_size_cdf.dir/fig4b_size_cdf.cpp.o"
  "CMakeFiles/fig4b_size_cdf.dir/fig4b_size_cdf.cpp.o.d"
  "fig4b_size_cdf"
  "fig4b_size_cdf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4b_size_cdf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
