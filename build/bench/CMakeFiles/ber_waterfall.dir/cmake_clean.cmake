file(REMOVE_RECURSE
  "CMakeFiles/ber_waterfall.dir/ber_waterfall.cpp.o"
  "CMakeFiles/ber_waterfall.dir/ber_waterfall.cpp.o.d"
  "ber_waterfall"
  "ber_waterfall.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ber_waterfall.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
