# Empty compiler generated dependencies file for throughput_profiles.
# This may be replaced when dependencies are built.
