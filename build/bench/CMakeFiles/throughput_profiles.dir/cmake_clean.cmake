file(REMOVE_RECURSE
  "CMakeFiles/throughput_profiles.dir/throughput_profiles.cpp.o"
  "CMakeFiles/throughput_profiles.dir/throughput_profiles.cpp.o.d"
  "throughput_profiles"
  "throughput_profiles.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/throughput_profiles.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
