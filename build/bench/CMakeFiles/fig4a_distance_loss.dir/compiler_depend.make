# Empty compiler generated dependencies file for fig4a_distance_loss.
# This may be replaced when dependencies are built.
