file(REMOVE_RECURSE
  "CMakeFiles/fig4a_distance_loss.dir/fig4a_distance_loss.cpp.o"
  "CMakeFiles/fig4a_distance_loss.dir/fig4a_distance_loss.cpp.o.d"
  "fig4a_distance_loss"
  "fig4a_distance_loss.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4a_distance_loss.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
