file(REMOVE_RECURSE
  "CMakeFiles/ablation_uep.dir/ablation_uep.cpp.o"
  "CMakeFiles/ablation_uep.dir/ablation_uep.cpp.o.d"
  "ablation_uep"
  "ablation_uep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_uep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
