# Empty compiler generated dependencies file for ablation_uep.
# This may be replaced when dependencies are built.
