file(REMOVE_RECURSE
  "CMakeFiles/ablation_modulation.dir/ablation_modulation.cpp.o"
  "CMakeFiles/ablation_modulation.dir/ablation_modulation.cpp.o.d"
  "ablation_modulation"
  "ablation_modulation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_modulation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
