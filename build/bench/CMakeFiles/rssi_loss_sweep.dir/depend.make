# Empty dependencies file for rssi_loss_sweep.
# This may be replaced when dependencies are built.
