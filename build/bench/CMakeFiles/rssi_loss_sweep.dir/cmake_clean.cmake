file(REMOVE_RECURSE
  "CMakeFiles/rssi_loss_sweep.dir/rssi_loss_sweep.cpp.o"
  "CMakeFiles/rssi_loss_sweep.dir/rssi_loss_sweep.cpp.o.d"
  "rssi_loss_sweep"
  "rssi_loss_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rssi_loss_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
