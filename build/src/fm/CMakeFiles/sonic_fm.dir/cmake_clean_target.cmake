file(REMOVE_RECURSE
  "libsonic_fm.a"
)
