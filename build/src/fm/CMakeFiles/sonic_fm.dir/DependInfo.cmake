
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/fm/acoustic.cpp" "src/fm/CMakeFiles/sonic_fm.dir/acoustic.cpp.o" "gcc" "src/fm/CMakeFiles/sonic_fm.dir/acoustic.cpp.o.d"
  "/root/repo/src/fm/fm_modem.cpp" "src/fm/CMakeFiles/sonic_fm.dir/fm_modem.cpp.o" "gcc" "src/fm/CMakeFiles/sonic_fm.dir/fm_modem.cpp.o.d"
  "/root/repo/src/fm/link.cpp" "src/fm/CMakeFiles/sonic_fm.dir/link.cpp.o" "gcc" "src/fm/CMakeFiles/sonic_fm.dir/link.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/sonic_util.dir/DependInfo.cmake"
  "/root/repo/build/src/dsp/CMakeFiles/sonic_dsp.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
