file(REMOVE_RECURSE
  "CMakeFiles/sonic_fm.dir/acoustic.cpp.o"
  "CMakeFiles/sonic_fm.dir/acoustic.cpp.o.d"
  "CMakeFiles/sonic_fm.dir/fm_modem.cpp.o"
  "CMakeFiles/sonic_fm.dir/fm_modem.cpp.o.d"
  "CMakeFiles/sonic_fm.dir/link.cpp.o"
  "CMakeFiles/sonic_fm.dir/link.cpp.o.d"
  "libsonic_fm.a"
  "libsonic_fm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sonic_fm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
