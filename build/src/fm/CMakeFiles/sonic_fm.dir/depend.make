# Empty dependencies file for sonic_fm.
# This may be replaced when dependencies are built.
