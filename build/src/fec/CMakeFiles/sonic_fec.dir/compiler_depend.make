# Empty compiler generated dependencies file for sonic_fec.
# This may be replaced when dependencies are built.
