file(REMOVE_RECURSE
  "libsonic_fec.a"
)
