file(REMOVE_RECURSE
  "CMakeFiles/sonic_fec.dir/convolutional.cpp.o"
  "CMakeFiles/sonic_fec.dir/convolutional.cpp.o.d"
  "CMakeFiles/sonic_fec.dir/crc32.cpp.o"
  "CMakeFiles/sonic_fec.dir/crc32.cpp.o.d"
  "CMakeFiles/sonic_fec.dir/interleaver.cpp.o"
  "CMakeFiles/sonic_fec.dir/interleaver.cpp.o.d"
  "CMakeFiles/sonic_fec.dir/reed_solomon.cpp.o"
  "CMakeFiles/sonic_fec.dir/reed_solomon.cpp.o.d"
  "libsonic_fec.a"
  "libsonic_fec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sonic_fec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
