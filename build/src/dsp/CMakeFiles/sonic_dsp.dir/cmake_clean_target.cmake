file(REMOVE_RECURSE
  "libsonic_dsp.a"
)
