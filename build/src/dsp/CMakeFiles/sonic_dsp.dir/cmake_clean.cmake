file(REMOVE_RECURSE
  "CMakeFiles/sonic_dsp.dir/biquad.cpp.o"
  "CMakeFiles/sonic_dsp.dir/biquad.cpp.o.d"
  "CMakeFiles/sonic_dsp.dir/fft.cpp.o"
  "CMakeFiles/sonic_dsp.dir/fft.cpp.o.d"
  "CMakeFiles/sonic_dsp.dir/fir.cpp.o"
  "CMakeFiles/sonic_dsp.dir/fir.cpp.o.d"
  "CMakeFiles/sonic_dsp.dir/goertzel.cpp.o"
  "CMakeFiles/sonic_dsp.dir/goertzel.cpp.o.d"
  "CMakeFiles/sonic_dsp.dir/resampler.cpp.o"
  "CMakeFiles/sonic_dsp.dir/resampler.cpp.o.d"
  "libsonic_dsp.a"
  "libsonic_dsp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sonic_dsp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
