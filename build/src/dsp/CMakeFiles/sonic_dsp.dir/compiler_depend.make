# Empty compiler generated dependencies file for sonic_dsp.
# This may be replaced when dependencies are built.
