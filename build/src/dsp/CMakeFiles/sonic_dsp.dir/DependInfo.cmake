
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dsp/biquad.cpp" "src/dsp/CMakeFiles/sonic_dsp.dir/biquad.cpp.o" "gcc" "src/dsp/CMakeFiles/sonic_dsp.dir/biquad.cpp.o.d"
  "/root/repo/src/dsp/fft.cpp" "src/dsp/CMakeFiles/sonic_dsp.dir/fft.cpp.o" "gcc" "src/dsp/CMakeFiles/sonic_dsp.dir/fft.cpp.o.d"
  "/root/repo/src/dsp/fir.cpp" "src/dsp/CMakeFiles/sonic_dsp.dir/fir.cpp.o" "gcc" "src/dsp/CMakeFiles/sonic_dsp.dir/fir.cpp.o.d"
  "/root/repo/src/dsp/goertzel.cpp" "src/dsp/CMakeFiles/sonic_dsp.dir/goertzel.cpp.o" "gcc" "src/dsp/CMakeFiles/sonic_dsp.dir/goertzel.cpp.o.d"
  "/root/repo/src/dsp/resampler.cpp" "src/dsp/CMakeFiles/sonic_dsp.dir/resampler.cpp.o" "gcc" "src/dsp/CMakeFiles/sonic_dsp.dir/resampler.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/sonic_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
