file(REMOVE_RECURSE
  "CMakeFiles/sonic_sms.dir/sms.cpp.o"
  "CMakeFiles/sonic_sms.dir/sms.cpp.o.d"
  "libsonic_sms.a"
  "libsonic_sms.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sonic_sms.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
