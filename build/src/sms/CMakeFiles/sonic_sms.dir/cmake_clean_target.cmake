file(REMOVE_RECURSE
  "libsonic_sms.a"
)
