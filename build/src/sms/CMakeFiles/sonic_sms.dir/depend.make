# Empty dependencies file for sonic_sms.
# This may be replaced when dependencies are built.
