file(REMOVE_RECURSE
  "CMakeFiles/sonic_core.dir/cache.cpp.o"
  "CMakeFiles/sonic_core.dir/cache.cpp.o.d"
  "CMakeFiles/sonic_core.dir/client.cpp.o"
  "CMakeFiles/sonic_core.dir/client.cpp.o.d"
  "CMakeFiles/sonic_core.dir/framing.cpp.o"
  "CMakeFiles/sonic_core.dir/framing.cpp.o.d"
  "CMakeFiles/sonic_core.dir/metrics.cpp.o"
  "CMakeFiles/sonic_core.dir/metrics.cpp.o.d"
  "CMakeFiles/sonic_core.dir/pipeline.cpp.o"
  "CMakeFiles/sonic_core.dir/pipeline.cpp.o.d"
  "CMakeFiles/sonic_core.dir/scheduler.cpp.o"
  "CMakeFiles/sonic_core.dir/scheduler.cpp.o.d"
  "CMakeFiles/sonic_core.dir/server.cpp.o"
  "CMakeFiles/sonic_core.dir/server.cpp.o.d"
  "libsonic_core.a"
  "libsonic_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sonic_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
