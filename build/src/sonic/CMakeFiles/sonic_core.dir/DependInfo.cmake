
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sonic/cache.cpp" "src/sonic/CMakeFiles/sonic_core.dir/cache.cpp.o" "gcc" "src/sonic/CMakeFiles/sonic_core.dir/cache.cpp.o.d"
  "/root/repo/src/sonic/client.cpp" "src/sonic/CMakeFiles/sonic_core.dir/client.cpp.o" "gcc" "src/sonic/CMakeFiles/sonic_core.dir/client.cpp.o.d"
  "/root/repo/src/sonic/framing.cpp" "src/sonic/CMakeFiles/sonic_core.dir/framing.cpp.o" "gcc" "src/sonic/CMakeFiles/sonic_core.dir/framing.cpp.o.d"
  "/root/repo/src/sonic/metrics.cpp" "src/sonic/CMakeFiles/sonic_core.dir/metrics.cpp.o" "gcc" "src/sonic/CMakeFiles/sonic_core.dir/metrics.cpp.o.d"
  "/root/repo/src/sonic/pipeline.cpp" "src/sonic/CMakeFiles/sonic_core.dir/pipeline.cpp.o" "gcc" "src/sonic/CMakeFiles/sonic_core.dir/pipeline.cpp.o.d"
  "/root/repo/src/sonic/scheduler.cpp" "src/sonic/CMakeFiles/sonic_core.dir/scheduler.cpp.o" "gcc" "src/sonic/CMakeFiles/sonic_core.dir/scheduler.cpp.o.d"
  "/root/repo/src/sonic/server.cpp" "src/sonic/CMakeFiles/sonic_core.dir/server.cpp.o" "gcc" "src/sonic/CMakeFiles/sonic_core.dir/server.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/sonic_util.dir/DependInfo.cmake"
  "/root/repo/build/src/image/CMakeFiles/sonic_image.dir/DependInfo.cmake"
  "/root/repo/build/src/web/CMakeFiles/sonic_web.dir/DependInfo.cmake"
  "/root/repo/build/src/sms/CMakeFiles/sonic_sms.dir/DependInfo.cmake"
  "/root/repo/build/src/modem/CMakeFiles/sonic_modem.dir/DependInfo.cmake"
  "/root/repo/build/src/fm/CMakeFiles/sonic_fm.dir/DependInfo.cmake"
  "/root/repo/build/src/fec/CMakeFiles/sonic_fec.dir/DependInfo.cmake"
  "/root/repo/build/src/dsp/CMakeFiles/sonic_dsp.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
