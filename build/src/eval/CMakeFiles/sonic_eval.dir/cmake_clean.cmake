file(REMOVE_RECURSE
  "CMakeFiles/sonic_eval.dir/quality.cpp.o"
  "CMakeFiles/sonic_eval.dir/quality.cpp.o.d"
  "libsonic_eval.a"
  "libsonic_eval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sonic_eval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
