file(REMOVE_RECURSE
  "libsonic_eval.a"
)
