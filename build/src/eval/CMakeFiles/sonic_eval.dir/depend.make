# Empty dependencies file for sonic_eval.
# This may be replaced when dependencies are built.
