# Empty compiler generated dependencies file for sonic_image.
# This may be replaced when dependencies are built.
