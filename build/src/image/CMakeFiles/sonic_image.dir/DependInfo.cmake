
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/image/column_codec.cpp" "src/image/CMakeFiles/sonic_image.dir/column_codec.cpp.o" "gcc" "src/image/CMakeFiles/sonic_image.dir/column_codec.cpp.o.d"
  "/root/repo/src/image/dct_codec.cpp" "src/image/CMakeFiles/sonic_image.dir/dct_codec.cpp.o" "gcc" "src/image/CMakeFiles/sonic_image.dir/dct_codec.cpp.o.d"
  "/root/repo/src/image/interpolate.cpp" "src/image/CMakeFiles/sonic_image.dir/interpolate.cpp.o" "gcc" "src/image/CMakeFiles/sonic_image.dir/interpolate.cpp.o.d"
  "/root/repo/src/image/lossless.cpp" "src/image/CMakeFiles/sonic_image.dir/lossless.cpp.o" "gcc" "src/image/CMakeFiles/sonic_image.dir/lossless.cpp.o.d"
  "/root/repo/src/image/raster.cpp" "src/image/CMakeFiles/sonic_image.dir/raster.cpp.o" "gcc" "src/image/CMakeFiles/sonic_image.dir/raster.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/sonic_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
