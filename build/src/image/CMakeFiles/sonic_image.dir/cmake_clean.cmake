file(REMOVE_RECURSE
  "CMakeFiles/sonic_image.dir/column_codec.cpp.o"
  "CMakeFiles/sonic_image.dir/column_codec.cpp.o.d"
  "CMakeFiles/sonic_image.dir/dct_codec.cpp.o"
  "CMakeFiles/sonic_image.dir/dct_codec.cpp.o.d"
  "CMakeFiles/sonic_image.dir/interpolate.cpp.o"
  "CMakeFiles/sonic_image.dir/interpolate.cpp.o.d"
  "CMakeFiles/sonic_image.dir/lossless.cpp.o"
  "CMakeFiles/sonic_image.dir/lossless.cpp.o.d"
  "CMakeFiles/sonic_image.dir/raster.cpp.o"
  "CMakeFiles/sonic_image.dir/raster.cpp.o.d"
  "libsonic_image.a"
  "libsonic_image.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sonic_image.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
