file(REMOVE_RECURSE
  "libsonic_image.a"
)
