# Empty dependencies file for sonic_web.
# This may be replaced when dependencies are built.
