file(REMOVE_RECURSE
  "libsonic_web.a"
)
