
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/web/corpus.cpp" "src/web/CMakeFiles/sonic_web.dir/corpus.cpp.o" "gcc" "src/web/CMakeFiles/sonic_web.dir/corpus.cpp.o.d"
  "/root/repo/src/web/font.cpp" "src/web/CMakeFiles/sonic_web.dir/font.cpp.o" "gcc" "src/web/CMakeFiles/sonic_web.dir/font.cpp.o.d"
  "/root/repo/src/web/html.cpp" "src/web/CMakeFiles/sonic_web.dir/html.cpp.o" "gcc" "src/web/CMakeFiles/sonic_web.dir/html.cpp.o.d"
  "/root/repo/src/web/layout.cpp" "src/web/CMakeFiles/sonic_web.dir/layout.cpp.o" "gcc" "src/web/CMakeFiles/sonic_web.dir/layout.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/sonic_util.dir/DependInfo.cmake"
  "/root/repo/build/src/image/CMakeFiles/sonic_image.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
