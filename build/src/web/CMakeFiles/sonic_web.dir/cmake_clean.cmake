file(REMOVE_RECURSE
  "CMakeFiles/sonic_web.dir/corpus.cpp.o"
  "CMakeFiles/sonic_web.dir/corpus.cpp.o.d"
  "CMakeFiles/sonic_web.dir/font.cpp.o"
  "CMakeFiles/sonic_web.dir/font.cpp.o.d"
  "CMakeFiles/sonic_web.dir/html.cpp.o"
  "CMakeFiles/sonic_web.dir/html.cpp.o.d"
  "CMakeFiles/sonic_web.dir/layout.cpp.o"
  "CMakeFiles/sonic_web.dir/layout.cpp.o.d"
  "libsonic_web.a"
  "libsonic_web.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sonic_web.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
