file(REMOVE_RECURSE
  "libsonic_util.a"
)
