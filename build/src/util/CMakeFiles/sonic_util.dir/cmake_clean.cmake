file(REMOVE_RECURSE
  "CMakeFiles/sonic_util.dir/bytes.cpp.o"
  "CMakeFiles/sonic_util.dir/bytes.cpp.o.d"
  "CMakeFiles/sonic_util.dir/log.cpp.o"
  "CMakeFiles/sonic_util.dir/log.cpp.o.d"
  "CMakeFiles/sonic_util.dir/rng.cpp.o"
  "CMakeFiles/sonic_util.dir/rng.cpp.o.d"
  "CMakeFiles/sonic_util.dir/wav.cpp.o"
  "CMakeFiles/sonic_util.dir/wav.cpp.o.d"
  "libsonic_util.a"
  "libsonic_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sonic_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
