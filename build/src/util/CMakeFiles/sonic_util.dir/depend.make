# Empty dependencies file for sonic_util.
# This may be replaced when dependencies are built.
