file(REMOVE_RECURSE
  "CMakeFiles/sonic_modem.dir/fsk.cpp.o"
  "CMakeFiles/sonic_modem.dir/fsk.cpp.o.d"
  "CMakeFiles/sonic_modem.dir/ofdm.cpp.o"
  "CMakeFiles/sonic_modem.dir/ofdm.cpp.o.d"
  "CMakeFiles/sonic_modem.dir/packet.cpp.o"
  "CMakeFiles/sonic_modem.dir/packet.cpp.o.d"
  "CMakeFiles/sonic_modem.dir/profile.cpp.o"
  "CMakeFiles/sonic_modem.dir/profile.cpp.o.d"
  "CMakeFiles/sonic_modem.dir/qam.cpp.o"
  "CMakeFiles/sonic_modem.dir/qam.cpp.o.d"
  "libsonic_modem.a"
  "libsonic_modem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sonic_modem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
