file(REMOVE_RECURSE
  "libsonic_modem.a"
)
