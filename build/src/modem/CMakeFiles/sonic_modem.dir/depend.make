# Empty dependencies file for sonic_modem.
# This may be replaced when dependencies are built.
