
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/modem/fsk.cpp" "src/modem/CMakeFiles/sonic_modem.dir/fsk.cpp.o" "gcc" "src/modem/CMakeFiles/sonic_modem.dir/fsk.cpp.o.d"
  "/root/repo/src/modem/ofdm.cpp" "src/modem/CMakeFiles/sonic_modem.dir/ofdm.cpp.o" "gcc" "src/modem/CMakeFiles/sonic_modem.dir/ofdm.cpp.o.d"
  "/root/repo/src/modem/packet.cpp" "src/modem/CMakeFiles/sonic_modem.dir/packet.cpp.o" "gcc" "src/modem/CMakeFiles/sonic_modem.dir/packet.cpp.o.d"
  "/root/repo/src/modem/profile.cpp" "src/modem/CMakeFiles/sonic_modem.dir/profile.cpp.o" "gcc" "src/modem/CMakeFiles/sonic_modem.dir/profile.cpp.o.d"
  "/root/repo/src/modem/qam.cpp" "src/modem/CMakeFiles/sonic_modem.dir/qam.cpp.o" "gcc" "src/modem/CMakeFiles/sonic_modem.dir/qam.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/sonic_util.dir/DependInfo.cmake"
  "/root/repo/build/src/fec/CMakeFiles/sonic_fec.dir/DependInfo.cmake"
  "/root/repo/build/src/dsp/CMakeFiles/sonic_dsp.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
