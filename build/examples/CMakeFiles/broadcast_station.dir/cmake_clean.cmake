file(REMOVE_RECURSE
  "CMakeFiles/broadcast_station.dir/broadcast_station.cpp.o"
  "CMakeFiles/broadcast_station.dir/broadcast_station.cpp.o.d"
  "broadcast_station"
  "broadcast_station.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/broadcast_station.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
