# Empty compiler generated dependencies file for broadcast_station.
# This may be replaced when dependencies are built.
