file(REMOVE_RECURSE
  "CMakeFiles/sonic_rx.dir/sonic_rx.cpp.o"
  "CMakeFiles/sonic_rx.dir/sonic_rx.cpp.o.d"
  "sonic_rx"
  "sonic_rx.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sonic_rx.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
