# Empty compiler generated dependencies file for sonic_rx.
# This may be replaced when dependencies are built.
