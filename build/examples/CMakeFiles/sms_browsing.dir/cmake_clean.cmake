file(REMOVE_RECURSE
  "CMakeFiles/sms_browsing.dir/sms_browsing.cpp.o"
  "CMakeFiles/sms_browsing.dir/sms_browsing.cpp.o.d"
  "sms_browsing"
  "sms_browsing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sms_browsing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
