# Empty compiler generated dependencies file for sms_browsing.
# This may be replaced when dependencies are built.
