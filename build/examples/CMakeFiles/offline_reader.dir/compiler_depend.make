# Empty compiler generated dependencies file for offline_reader.
# This may be replaced when dependencies are built.
