file(REMOVE_RECURSE
  "CMakeFiles/offline_reader.dir/offline_reader.cpp.o"
  "CMakeFiles/offline_reader.dir/offline_reader.cpp.o.d"
  "offline_reader"
  "offline_reader.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/offline_reader.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
