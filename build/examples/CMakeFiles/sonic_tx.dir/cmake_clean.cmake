file(REMOVE_RECURSE
  "CMakeFiles/sonic_tx.dir/sonic_tx.cpp.o"
  "CMakeFiles/sonic_tx.dir/sonic_tx.cpp.o.d"
  "sonic_tx"
  "sonic_tx.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sonic_tx.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
