# Empty compiler generated dependencies file for sonic_tx.
# This may be replaced when dependencies are built.
