# Empty dependencies file for sonic_tx.
# This may be replaced when dependencies are built.
