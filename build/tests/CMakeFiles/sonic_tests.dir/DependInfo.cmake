
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/dsp_test.cpp" "tests/CMakeFiles/sonic_tests.dir/dsp_test.cpp.o" "gcc" "tests/CMakeFiles/sonic_tests.dir/dsp_test.cpp.o.d"
  "/root/repo/tests/eval_test.cpp" "tests/CMakeFiles/sonic_tests.dir/eval_test.cpp.o" "gcc" "tests/CMakeFiles/sonic_tests.dir/eval_test.cpp.o.d"
  "/root/repo/tests/extensions_test.cpp" "tests/CMakeFiles/sonic_tests.dir/extensions_test.cpp.o" "gcc" "tests/CMakeFiles/sonic_tests.dir/extensions_test.cpp.o.d"
  "/root/repo/tests/fec_test.cpp" "tests/CMakeFiles/sonic_tests.dir/fec_test.cpp.o" "gcc" "tests/CMakeFiles/sonic_tests.dir/fec_test.cpp.o.d"
  "/root/repo/tests/fm_test.cpp" "tests/CMakeFiles/sonic_tests.dir/fm_test.cpp.o" "gcc" "tests/CMakeFiles/sonic_tests.dir/fm_test.cpp.o.d"
  "/root/repo/tests/image_test.cpp" "tests/CMakeFiles/sonic_tests.dir/image_test.cpp.o" "gcc" "tests/CMakeFiles/sonic_tests.dir/image_test.cpp.o.d"
  "/root/repo/tests/integration_test.cpp" "tests/CMakeFiles/sonic_tests.dir/integration_test.cpp.o" "gcc" "tests/CMakeFiles/sonic_tests.dir/integration_test.cpp.o.d"
  "/root/repo/tests/modem_test.cpp" "tests/CMakeFiles/sonic_tests.dir/modem_test.cpp.o" "gcc" "tests/CMakeFiles/sonic_tests.dir/modem_test.cpp.o.d"
  "/root/repo/tests/pipeline_test.cpp" "tests/CMakeFiles/sonic_tests.dir/pipeline_test.cpp.o" "gcc" "tests/CMakeFiles/sonic_tests.dir/pipeline_test.cpp.o.d"
  "/root/repo/tests/property_test.cpp" "tests/CMakeFiles/sonic_tests.dir/property_test.cpp.o" "gcc" "tests/CMakeFiles/sonic_tests.dir/property_test.cpp.o.d"
  "/root/repo/tests/sms_test.cpp" "tests/CMakeFiles/sonic_tests.dir/sms_test.cpp.o" "gcc" "tests/CMakeFiles/sonic_tests.dir/sms_test.cpp.o.d"
  "/root/repo/tests/sonic_core_test.cpp" "tests/CMakeFiles/sonic_tests.dir/sonic_core_test.cpp.o" "gcc" "tests/CMakeFiles/sonic_tests.dir/sonic_core_test.cpp.o.d"
  "/root/repo/tests/util_test.cpp" "tests/CMakeFiles/sonic_tests.dir/util_test.cpp.o" "gcc" "tests/CMakeFiles/sonic_tests.dir/util_test.cpp.o.d"
  "/root/repo/tests/web_test.cpp" "tests/CMakeFiles/sonic_tests.dir/web_test.cpp.o" "gcc" "tests/CMakeFiles/sonic_tests.dir/web_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/sonic_util.dir/DependInfo.cmake"
  "/root/repo/build/src/fec/CMakeFiles/sonic_fec.dir/DependInfo.cmake"
  "/root/repo/build/src/dsp/CMakeFiles/sonic_dsp.dir/DependInfo.cmake"
  "/root/repo/build/src/modem/CMakeFiles/sonic_modem.dir/DependInfo.cmake"
  "/root/repo/build/src/fm/CMakeFiles/sonic_fm.dir/DependInfo.cmake"
  "/root/repo/build/src/image/CMakeFiles/sonic_image.dir/DependInfo.cmake"
  "/root/repo/build/src/web/CMakeFiles/sonic_web.dir/DependInfo.cmake"
  "/root/repo/build/src/sms/CMakeFiles/sonic_sms.dir/DependInfo.cmake"
  "/root/repo/build/src/eval/CMakeFiles/sonic_eval.dir/DependInfo.cmake"
  "/root/repo/build/src/sonic/CMakeFiles/sonic_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
