file(REMOVE_RECURSE
  "CMakeFiles/sonic_tests.dir/dsp_test.cpp.o"
  "CMakeFiles/sonic_tests.dir/dsp_test.cpp.o.d"
  "CMakeFiles/sonic_tests.dir/eval_test.cpp.o"
  "CMakeFiles/sonic_tests.dir/eval_test.cpp.o.d"
  "CMakeFiles/sonic_tests.dir/extensions_test.cpp.o"
  "CMakeFiles/sonic_tests.dir/extensions_test.cpp.o.d"
  "CMakeFiles/sonic_tests.dir/fec_test.cpp.o"
  "CMakeFiles/sonic_tests.dir/fec_test.cpp.o.d"
  "CMakeFiles/sonic_tests.dir/fm_test.cpp.o"
  "CMakeFiles/sonic_tests.dir/fm_test.cpp.o.d"
  "CMakeFiles/sonic_tests.dir/image_test.cpp.o"
  "CMakeFiles/sonic_tests.dir/image_test.cpp.o.d"
  "CMakeFiles/sonic_tests.dir/integration_test.cpp.o"
  "CMakeFiles/sonic_tests.dir/integration_test.cpp.o.d"
  "CMakeFiles/sonic_tests.dir/modem_test.cpp.o"
  "CMakeFiles/sonic_tests.dir/modem_test.cpp.o.d"
  "CMakeFiles/sonic_tests.dir/pipeline_test.cpp.o"
  "CMakeFiles/sonic_tests.dir/pipeline_test.cpp.o.d"
  "CMakeFiles/sonic_tests.dir/property_test.cpp.o"
  "CMakeFiles/sonic_tests.dir/property_test.cpp.o.d"
  "CMakeFiles/sonic_tests.dir/sms_test.cpp.o"
  "CMakeFiles/sonic_tests.dir/sms_test.cpp.o.d"
  "CMakeFiles/sonic_tests.dir/sonic_core_test.cpp.o"
  "CMakeFiles/sonic_tests.dir/sonic_core_test.cpp.o.d"
  "CMakeFiles/sonic_tests.dir/util_test.cpp.o"
  "CMakeFiles/sonic_tests.dir/util_test.cpp.o.d"
  "CMakeFiles/sonic_tests.dir/web_test.cpp.o"
  "CMakeFiles/sonic_tests.dir/web_test.cpp.o.d"
  "sonic_tests"
  "sonic_tests.pdb"
  "sonic_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sonic_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
