# Empty compiler generated dependencies file for sonic_tests.
# This may be replaced when dependencies are built.
