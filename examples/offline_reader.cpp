// Users A and B from Figure 3: no SMS uplink at all. They passively listen
// to the SONIC broadcast, build a catalog of whatever pages fly by, and
// browse them offline — hyperlinks work when the target happens to be
// cached, and simply cannot be requested otherwise.
//
//   ./offline_reader
#include <cstdio>

#include "sonic/client.hpp"
#include "sonic/server.hpp"
#include "web/corpus.hpp"

using namespace sonic;

int main() {
  web::PkCorpus corpus;
  sms::SmsGateway gateway({3.0, 1.0, 0.0, 13});

  core::SonicServer::Params sp;
  sp.layout = web::LayoutParams{360, 2000, 12, 2};
  core::SonicServer server(&corpus, &gateway, sp);

  // A downlink-only client (no phone number, no gateway).
  core::SonicClient reader(nullptr, core::SonicClient::Params{});
  std::printf("offline reader: uplink available? %s\n\n", reader.has_uplink() ? "yes" : "no");

  // The station pushes one site's landing page plus its internal pages —
  // the "properly curated catalog" of §3.4.
  std::vector<std::string> push;
  for (int p = 0; p < 4; ++p) push.push_back(corpus.pages()[static_cast<std::size_t>(p)].url);
  server.push_pages(push, 0.0);

  double now = 0.0;
  for (const auto& broadcast : server.advance(1e9)) {
    now = broadcast.completed_at_s;
    for (const auto& frame : broadcast.bundle.frames) reader.on_frame(frame);
    std::printf("[%7.0fs] received broadcast of %-36s (%zu frames)\n", now,
                broadcast.bundle.metadata.url.c_str(), broadcast.bundle.frames.size());
  }
  reader.flush(now);

  std::printf("\ncatalog after the broadcast window:\n");
  for (const auto& entry : reader.catalog(now)) {
    std::printf("  %-40s coverage %5.1f%%\n", entry.url.c_str(), 100.0 * entry.coverage);
  }

  // Browse: open the landing page, follow its first link.
  const std::string home = corpus.pages()[0].url;
  const auto view = reader.open(home, now);
  if (!view) {
    std::fprintf(stderr, "landing page missing\n");
    return 1;
  }
  std::printf("\nopened %s (%dx%d, %zu links)\n", home.c_str(), view->image.width(),
              view->image.height(), view->click_map.size());

  int cached_hits = 0, dead_ends = 0;
  for (const auto& link : view->click_map) {
    const auto result = reader.tap(home, link.x + link.w / 2, link.y + link.h / 2, now);
    if (result == core::SonicClient::TapResult::kOpenedCached) {
      ++cached_hits;
    } else if (result == core::SonicClient::TapResult::kNoUplink) {
      ++dead_ends;
    }
  }
  std::printf("tapping every link: %d instant loads from cache, %d dead ends (no uplink)\n",
              cached_hits, dead_ends);
  std::printf("\n(downlink-only users browse whatever their area's listeners requested —\n");
  std::printf(" and leak nothing: §3.4, no privacy violation is possible for them)\n");
  return 0;
}
