// User-C's session from Figure 3: a phone with an FM receiver on the
// downlink and a paid SMS uplink. The user requests a page by SMS, gets an
// ACK with an ETA and a frequency, receives the broadcast, then taps a
// hyperlink — served instantly when cached, via a new SMS request when not.
//
//   ./sms_browsing
#include <cstdio>

#include "sonic/client.hpp"
#include "sonic/server.hpp"
#include "web/corpus.hpp"

using namespace sonic;

int main() {
  // --- infrastructure -------------------------------------------------------
  web::PkCorpus corpus;
  sms::SmsGateway gateway({3.0, 1.0, 0.0, 77});

  core::SonicServer::Params sp;
  sp.layout = web::LayoutParams{360, 2400, 12, 2};
  sp.rate_bps = 10000.0;  // the verified sonic-10k rate
  sp.transmitters = {{"lahore-fm", 93.7, 31.52, 74.35, 40.0}};
  core::SonicServer server(&corpus, &gateway, sp);

  core::SonicClient::Params cp;
  cp.phone_number = "+923001234567";
  cp.lat = 31.53;  // a user in Lahore
  cp.lon = 74.34;
  cp.device_width = 360;
  core::SonicClient user_c(&gateway, cp);

  double now = 0.0;
  const std::string url = corpus.pages()[0].url;

  // --- 1: request by SMS ----------------------------------------------------
  std::printf("[%6.1fs] user-C texts: %s\n", now, sms::encode_request({url, cp.lat, cp.lon}).c_str());
  user_c.request(url, now);

  now += 6.0;  // carrier store-and-forward
  server.poll_sms(now);

  now += 6.0;
  const auto acks = user_c.poll_acks(now);
  if (acks.empty() || !acks[0].accepted) {
    std::fprintf(stderr, "no ACK received\n");
    return 1;
  }
  std::printf("[%6.1fs] server ACK: tune to FM %.1f MHz, page in ~%.0f s\n", now,
              acks[0].frequency_mhz, acks[0].eta_s);

  // --- 2: broadcast ---------------------------------------------------------
  now += acks[0].eta_s + 10.0;
  const auto broadcasts = server.advance(now);
  if (broadcasts.empty()) {
    std::fprintf(stderr, "broadcast never completed\n");
    return 1;
  }
  const auto& bundle = broadcasts[0].bundle;
  std::printf("[%6.1fs] %s broadcasts %s: %zu frames (%zu bytes)\n", now,
              broadcasts[0].transmitter.name.c_str(), bundle.metadata.url.c_str(),
              bundle.frames.size(), bundle.total_bytes());

  // Frames reach user-C over the cable-connected radio: lossless (Fig 4a).
  for (const auto& frame : bundle.frames) user_c.on_frame(frame);
  user_c.flush(now);

  const auto view = user_c.open(url, now);
  std::printf("[%6.1fs] user-C opens %s: %dx%d on screen, %zu tappable links\n", now, url.c_str(),
              view->image.width(), view->image.height(), view->click_map.size());

  // --- 3: tap a link --------------------------------------------------------
  const auto& link = view->click_map.front();
  const int tap_x = link.x + link.w / 2;
  const int tap_y = link.y + link.h / 2;
  const auto result = user_c.tap(url, tap_x, tap_y, now);
  std::printf("[%6.1fs] user-C taps (%d,%d) -> %s: %s\n", now, tap_x, tap_y, link.href.c_str(),
              result == core::SonicClient::TapResult::kOpenedCached ? "already cached, instant load"
                                                                    : "not cached, requested via SMS");

  if (result == core::SonicClient::TapResult::kRequestedViaSms) {
    now += 8.0;
    server.poll_sms(now);
    now += 8.0;
    const auto acks2 = user_c.poll_acks(now);
    if (!acks2.empty() && acks2[0].accepted) {
      std::printf("[%6.1fs] server ACK for %s (ETA %.0f s)\n", now, acks2[0].url.c_str(),
                  acks2[0].eta_s);
      now += acks2[0].eta_s + 10.0;
      for (const auto& b : server.advance(now)) {
        for (const auto& frame : b.bundle.frames) user_c.on_frame(frame);
      }
      user_c.flush(now);
      const auto second = user_c.open(acks2[0].url, now);
      if (second) {
        std::printf("[%6.1fs] internal page %s delivered and opened\n", now, acks2[0].url.c_str());
      }
    }
  }

  // --- 4: the catalog -------------------------------------------------------
  std::printf("\nuser-C's catalog:\n");
  for (const auto& entry : user_c.catalog(now)) {
    std::printf("  %-40s coverage %5.1f%%  expires in %.0f h\n", entry.url.c_str(),
                100.0 * entry.coverage, (entry.expires_at_s - now) / 3600.0);
  }
  std::printf("\nSMS segments carried by the network: %d\n", gateway.segments_carried());
  return 0;
}
