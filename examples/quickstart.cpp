// Quickstart: the SONIC pipeline end to end, reproducing Figure 1.
//
// A webpage is rendered to an image, framed (§3.3), sent through the
// simulated FM radio + acoustic channel, reassembled, and written out three
// ways: intact delivery, ~10% frame loss with missing pixels left dark, and
// the same loss repaired by nearest-neighbor pixel interpolation.
//
//   ./quickstart [output_dir]
#include <cstdio>
#include <string>

#include "fm/link.hpp"
#include "image/raster.hpp"
#include "modem/ofdm.hpp"
#include "modem/profile.hpp"
#include "sonic/framing.hpp"
#include "util/rng.hpp"
#include "web/corpus.hpp"
#include "web/layout.hpp"

using namespace sonic;

namespace {

// Delivers a bundle over the FM link at the given acoustic distance and
// returns the frames the client's modem decoded.
std::vector<util::Bytes> deliver(const core::PageBundle& bundle, double distance_m,
                                 std::uint64_t seed) {
  modem::OfdmModem ofdm(*modem::profiles::get("sonic-10k"));
  fm::FmLinkConfig cfg;
  cfg.rf.rssi_db = -70.0;
  cfg.acoustic.distance_m = distance_m;
  cfg.seed = seed;
  std::vector<util::Bytes> received;
  constexpr std::size_t kPerBurst = 16;
  for (std::size_t off = 0; off < bundle.frames.size(); off += kPerBurst) {
    std::vector<util::Bytes> burst(
        bundle.frames.begin() + static_cast<std::ptrdiff_t>(off),
        bundle.frames.begin() + static_cast<std::ptrdiff_t>(std::min(off + kPerBurst, bundle.frames.size())));
    const auto audio = ofdm.modulate(burst);
    cfg.seed += 1;
    fm::FmLink link(cfg);
    const auto rx_audio = link.transmit(audio);
    if (const auto rx = ofdm.receive_one(rx_audio)) {
      for (const auto& f : rx->frames) {
        if (f) received.push_back(*f);
      }
    }
  }
  return received;
}

core::ReceivedPage assemble(const std::vector<util::Bytes>& frames,
                            image::InterpolationMode mode, std::uint32_t page_id) {
  core::PageAssembler assembler;
  for (const auto& f : frames) assembler.push(f);
  auto page = assembler.assemble(page_id, mode);
  if (!page) {
    std::fprintf(stderr, "fatal: page metadata never arrived\n");
    std::exit(1);
  }
  return std::move(*page);
}

}  // namespace

int main(int argc, char** argv) {
  const std::string out_dir = argc > 1 ? argv[1] : ".";

  // 1. "Fetch" and render a webpage (the synthetic Pakistani corpus stands
  //    in for the live web).
  web::PkCorpus corpus;
  const web::PageRef& ref = corpus.pages()[0];
  std::printf("SONIC quickstart\n");
  std::printf("  page:        %s (%s site)\n", ref.url.c_str(),
              web::category_name(corpus.category(ref.site)));

  web::LayoutParams layout;
  layout.width = 360;       // reduced from 1080 for a fast demo
  layout.max_height = 1600; // scaled-down PH cap
  const auto rendered = web::render_html(corpus.html(ref, 0), layout);
  std::printf("  rendered:    %dx%d px, %zu hyperlink regions\n", rendered.image.width(),
              rendered.image.height(), rendered.click_map.size());

  // 2. Frame it for broadcast (§3.3: 100-byte frames, quality-10 codec).
  const auto bundle = core::make_bundle(1, ref.url, rendered, {10, 94});
  const auto profile = *modem::profiles::get("sonic-10k");
  std::printf("  transport:   %zu frames (%zu bytes), ~%.0f s on air at %.1f kbps\n",
              bundle.frames.size(), bundle.total_bytes(),
              bundle.total_bytes() * 8.0 / profile.net_bit_rate(),
              profile.net_bit_rate() / 1000.0);

  // 3. Intact delivery: cable / internal FM tuner (paper: 0% loss).
  const auto clean_frames = deliver(bundle, 0.0, 1000);
  const auto clean = assemble(clean_frames, image::InterpolationMode::kLeft, 1);
  std::printf("  cable:       %zu/%zu frames, coverage %.1f%%\n", clean_frames.size(),
              bundle.frames.size(), 100.0 * clean.coverage);
  write_ppm(clean.image, out_dir + "/quickstart_intact.ppm");

  // 4. Lossy delivery: ~1 m over the air (paper: 10-20% median frame loss).
  //    Retry a few seeds until the channel gives a Figure-1-like loss rate.
  std::vector<util::Bytes> lossy_frames;
  for (std::uint64_t seed = 2000; seed < 2400; seed += 50) {
    lossy_frames = deliver(bundle, 1.0, seed);
    const double loss = 1.0 - static_cast<double>(lossy_frames.size()) / bundle.frames.size();
    if (loss > 0.04 && loss < 0.35) break;
  }
  const double loss = 1.0 - static_cast<double>(lossy_frames.size()) / bundle.frames.size();
  std::printf("  1 m air:     %zu/%zu frames (%.1f%% lost)\n", lossy_frames.size(),
              bundle.frames.size(), 100.0 * loss);

  const auto dark = assemble(lossy_frames, image::InterpolationMode::kNone, 1);
  write_ppm(dark.image, out_dir + "/quickstart_lossy_dark.ppm");
  const auto repaired = assemble(lossy_frames, image::InterpolationMode::kLeft, 1);
  write_ppm(repaired.image, out_dir + "/quickstart_lossy_interpolated.ppm");

  std::printf("  PSNR:        dark %.1f dB -> interpolated %.1f dB\n",
              image::psnr(rendered.image, dark.image), image::psnr(rendered.image, repaired.image));
  std::printf("  wrote %s/quickstart_{intact,lossy_dark,lossy_interpolated}.ppm\n", out_dir.c_str());
  return 0;
}
