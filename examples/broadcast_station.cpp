// A SONIC-enabled radio station's day (§3.1): the server preemptively
// pushes the popular-page catalog every morning and re-broadcasts pages as
// their content changes, while user requests jump the queue. Prints an
// hourly log of the broadcast schedule — a miniature of Figure 4(c) — and
// the pipeline's metrics registry at the end (renders, cache hit rate,
// render/encode wall time, queue waits).
//
//   ./broadcast_station [hours] [rate_kbps] [num_pages] [render_threads]
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "sonic/server.hpp"
#include "web/corpus.hpp"

using namespace sonic;

int main(int argc, char** argv) {
  const int hours = argc > 1 ? std::atoi(argv[1]) : 24;
  const double rate_kbps = argc > 2 ? std::atof(argv[2]) : 10.0;
  const int num_pages = argc > 3 ? std::atoi(argv[3]) : 40;
  const int threads = argc > 4 ? std::atoi(argv[4]) : 0;

  web::PkCorpus corpus;
  sms::SmsGateway gateway({3.0, 1.0, 0.0, 5});

  core::SonicServer::Params sp;
  sp.rate_bps = rate_kbps * 1000.0;
  sp.layout = web::LayoutParams{360, 3000, 12, 2};  // scaled-down renders
  sp.render_threads = threads;
  core::SonicServer server(&corpus, &gateway, sp);

  std::vector<std::string> catalog;
  for (int i = 0; i < num_pages && i < static_cast<int>(corpus.pages().size()); ++i) {
    catalog.push_back(corpus.pages()[static_cast<std::size_t>(i)].url);
  }

  std::printf("SONIC broadcast station: %d pages, %.0f kbps, %d hours, %d render threads\n",
              num_pages, rate_kbps, hours, threads);
  std::printf("%5s %10s %12s %10s %8s\n", "hour", "refreshed", "backlog(KB)", "sent", "queue");

  std::size_t total_sent = 0;
  for (int hour = 0; hour < hours; ++hour) {
    const double now = hour * 3600.0;
    // Hourly refresh: re-broadcast pages whose content changed (§3.1:
    // popular pages pushed preemptively; news churns fastest). The whole
    // changed set renders as one pipeline batch.
    std::vector<std::string> changed;
    for (const std::string& url : catalog) {
      const web::PageRef* ref = corpus.find(url);
      if (ref && corpus.changed_at(*ref, hour)) changed.push_back(url);
    }
    server.push_pages(changed, now);

    const auto done = server.advance((hour + 1) * 3600.0);
    total_sent += done.size();
    std::printf("%5d %10zu %12.0f %10zu %8zu\n", hour, changed.size(),
                server.total_backlog_bytes() / 1024.0, done.size(),
                server.total_queue_length());
  }

  std::printf("\nbroadcast complete: %zu page transmissions, final backlog %.0f KB\n", total_sent,
              server.total_backlog_bytes() / 1024.0);
  const std::size_t lookups = server.renders() + server.render_cache_hits();
  std::printf("render cache: %zu renders, %zu hits (%.0f%% hit rate)\n", server.renders(),
              server.render_cache_hits(),
              lookups ? 100.0 * static_cast<double>(server.render_cache_hits()) /
                            static_cast<double>(lookups)
                      : 0.0);
  std::printf("\npipeline metrics:\n%s", server.metrics().report().c_str());
  std::printf("(10 kbps keeps a backlog all day; rerun with 20 or 40 kbps to see it drain,\n");
  std::printf(" as in Figure 4(c) of the paper)\n");
  return 0;
}
