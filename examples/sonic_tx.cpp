// sonic_tx — encode a webpage from the corpus (or a local HTML file) into a
// broadcast-ready WAV file. Play it through any FM transmitter's audio
// input (or a speaker next to a phone) and decode with sonic_rx.
//
//   ./sonic_tx out.wav [--url <corpus-url>] [--html <file>] [--width 360]
//              [--quality 10] [--profile sonic-10k|audible-7k|robust-2k|cable-64k]
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

#include "bench_util.hpp"
#include "modem/ofdm.hpp"
#include "modem/profile.hpp"
#include "sonic/framing.hpp"
#include "util/wav.hpp"
#include "web/corpus.hpp"
#include "web/layout.hpp"

using namespace sonic;

namespace {

const char* arg_str(int argc, char** argv, const char* name, const char* fallback) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], name) == 0) return argv[i + 1];
  }
  return fallback;
}

modem::OfdmProfile profile_by_name(const std::string& name) {
  if (const auto p = modem::profiles::get(name)) return *p;
  std::fprintf(stderr, "unknown profile '%s', using sonic-10k\n", name.c_str());
  return *modem::profiles::get("sonic-10k");
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr, "usage: sonic_tx out.wav [--url u] [--html f] [--width w] [--quality q] [--profile p]\n");
    return 1;
  }
  const std::string out_path = argv[1];
  const int width = bench::arg_int(argc, argv, "--width", 360);
  const int quality = bench::arg_int(argc, argv, "--quality", 10);
  const auto profile = profile_by_name(arg_str(argc, argv, "--profile", "sonic-10k"));

  // Content: a local HTML file, or a corpus page (default: first landing).
  web::PkCorpus corpus;
  std::string html;
  std::string url;
  if (const char* file = arg_str(argc, argv, "--html", nullptr)) {
    std::ifstream in(file);
    if (!in) {
      std::fprintf(stderr, "cannot read %s\n", file);
      return 1;
    }
    std::ostringstream ss;
    ss << in.rdbuf();
    html = ss.str();
    url = file;
  } else {
    url = arg_str(argc, argv, "--url", corpus.pages()[0].url.c_str());
    const web::PageRef* ref = corpus.find(url);
    if (!ref) {
      std::fprintf(stderr, "unknown corpus url %s; available pages:\n", url.c_str());
      for (std::size_t i = 0; i < 8; ++i) std::fprintf(stderr, "  %s\n", corpus.pages()[i].url.c_str());
      return 1;
    }
    html = corpus.html(*ref, 0);
  }

  web::LayoutParams layout;
  layout.width = width;
  layout.max_height = 10000 * width / 1080;
  const auto page = web::render_html(html, layout);
  const auto bundle = core::make_bundle(1, url, page, {quality, 94});

  modem::OfdmModem modem(profile);
  std::vector<float> audio;
  constexpr std::size_t kPerBurst = 16;
  for (std::size_t off = 0; off < bundle.frames.size(); off += kPerBurst) {
    std::vector<util::Bytes> burst(
        bundle.frames.begin() + static_cast<std::ptrdiff_t>(off),
        bundle.frames.begin() + static_cast<std::ptrdiff_t>(std::min(off + kPerBurst, bundle.frames.size())));
    const auto b = modem.modulate(burst);
    audio.insert(audio.end(), b.begin(), b.end());
  }
  util::write_wav(out_path, audio, static_cast<int>(profile.sample_rate));

  std::printf("sonic_tx: %s\n", url.c_str());
  std::printf("  rendered %dx%d, %zu frames (%zu bytes), profile %s\n", page.image.width(),
              page.image.height(), bundle.frames.size(), bundle.total_bytes(), profile.name.c_str());
  std::printf("  wrote %s: %.1f s of audio at %.0f Hz\n", out_path.c_str(),
              static_cast<double>(audio.size()) / profile.sample_rate, profile.sample_rate);
  return 0;
}
