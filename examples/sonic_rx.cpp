// sonic_rx — decode a WAV recording of a SONIC broadcast back into webpage
// images (PPM) and a page report. Counterpart of sonic_tx.
//
//   ./sonic_rx in.wav [out_prefix] [--profile sonic-10k|...]
#include <cstdio>
#include <cstring>
#include <string>

#include "bench_util.hpp"
#include "image/raster.hpp"
#include "modem/ofdm.hpp"
#include "modem/profile.hpp"
#include "sonic/framing.hpp"
#include "util/wav.hpp"

using namespace sonic;

namespace {

const char* arg_str(int argc, char** argv, const char* name, const char* fallback) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], name) == 0) return argv[i + 1];
  }
  return fallback;
}

modem::OfdmProfile profile_by_name(const std::string& name) {
  if (const auto p = modem::profiles::get(name)) return *p;
  return *modem::profiles::get("sonic-10k");
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr, "usage: sonic_rx in.wav [out_prefix] [--profile p]\n");
    return 1;
  }
  const std::string in_path = argv[1];
  const std::string prefix = argc > 2 && argv[2][0] != '-' ? argv[2] : "sonic_rx";
  const auto profile = profile_by_name(arg_str(argc, argv, "--profile", "sonic-10k"));

  const auto wav = util::read_wav(in_path);
  std::printf("sonic_rx: %s (%.1f s at %d Hz)\n", in_path.c_str(),
              static_cast<double>(wav.samples.size()) / wav.sample_rate_hz, wav.sample_rate_hz);
  if (wav.sample_rate_hz != static_cast<int>(profile.sample_rate)) {
    std::fprintf(stderr, "warning: sample rate %d != profile's %.0f; decode may fail\n",
                 wav.sample_rate_hz, profile.sample_rate);
  }

  modem::OfdmModem modem(profile);
  core::PageAssembler assembler;
  std::size_t bursts = 0, frames_ok = 0, frames_total = 0;
  for (const auto& burst : modem.receive_all(wav.samples)) {
    ++bursts;
    frames_total += burst.frames.size();
    frames_ok += burst.frames_ok();
    for (const auto& frame : burst.frames) {
      if (frame) assembler.push(*frame);
    }
  }
  std::printf("  %zu bursts, %zu/%zu frames decoded (%.1f%% loss)\n", bursts, frames_ok,
              frames_total,
              frames_total ? 100.0 * (1.0 - static_cast<double>(frames_ok) / frames_total) : 0.0);

  int pages = 0;
  for (std::uint32_t page_id : assembler.known_pages()) {
    const auto page = assembler.assemble(page_id, image::InterpolationMode::kLeft);
    if (!page) {
      std::printf("  page %u: metadata missing, skipped\n", page_id);
      continue;
    }
    const std::string out = prefix + "_" + std::to_string(page_id) + ".ppm";
    write_ppm(page->image, out);
    std::printf("  page %u: %s %dx%d coverage %.1f%% links %zu -> %s\n", page_id,
                page->metadata.url.c_str(), page->image.width(), page->image.height(),
                100.0 * page->coverage, page->metadata.click_map.size(), out.c_str());
    ++pages;
  }
  return pages > 0 ? 0 : 2;
}
